# Empty compiler generated dependencies file for tcomp_eval.
# This may be replaced when dependencies are built.
