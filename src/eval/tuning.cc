#include "eval/tuning.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace tcomp {

std::vector<double> SortedKDistances(const Snapshot& snapshot, int k) {
  TCOMP_CHECK_GT(k, 0);
  const size_t n = snapshot.size();
  std::vector<double> kdist;
  kdist.reserve(n);
  std::vector<double> dists;
  for (size_t i = 0; i < n; ++i) {
    dists.clear();
    dists.reserve(n - 1);
    for (size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      dists.push_back(Distance(snapshot.pos(i), snapshot.pos(j)));
    }
    if (dists.size() < static_cast<size_t>(k)) {
      kdist.push_back(std::numeric_limits<double>::infinity());
      continue;
    }
    std::nth_element(dists.begin(), dists.begin() + (k - 1), dists.end());
    kdist.push_back(dists[static_cast<size_t>(k - 1)]);
  }
  std::sort(kdist.begin(), kdist.end());
  return kdist;
}

TuningSuggestion SuggestClusterParams(const SnapshotStream& stream,
                                      int k, double tail_trim,
                                      int max_snapshots) {
  TCOMP_CHECK_GT(max_snapshots, 0);
  TCOMP_CHECK_GE(tail_trim, 0.0);
  TCOMP_CHECK_LT(tail_trim, 1.0);

  TuningSuggestion suggestion;
  suggestion.params.mu = k + 1;
  if (stream.empty()) {
    suggestion.params.epsilon = 1.0;
    return suggestion;
  }

  // Evenly spaced sample snapshots.
  std::vector<double> kdist;
  size_t samples =
      std::min<size_t>(stream.size(), static_cast<size_t>(max_snapshots));
  for (size_t s = 0; s < samples; ++s) {
    size_t idx = s * stream.size() / samples;
    std::vector<double> snap_dists = SortedKDistances(stream[idx], k);
    kdist.insert(kdist.end(), snap_dists.begin(), snap_dists.end());
  }
  std::sort(kdist.begin(), kdist.end());
  // Strip unreachable objects (fewer than k neighbors anywhere) and the
  // extreme tail (isolated wanderers stretch the chord and hide the
  // knee).
  while (!kdist.empty() && std::isinf(kdist.back())) kdist.pop_back();
  size_t trimmed = static_cast<size_t>(
      std::floor((1.0 - tail_trim) * static_cast<double>(kdist.size())));
  const size_t total = kdist.size();
  if (trimmed < kdist.size()) kdist.resize(std::max<size_t>(trimmed, 1));
  if (kdist.empty()) {
    suggestion.params.epsilon = 1.0;
    suggestion.noise_fraction = 1.0;
    return suggestion;
  }

  // Knee: the index with maximum distance to the chord from (0, y0) to
  // (n-1, yN). With a flat head and rising tail, this is the corner
  // where in-cluster spacing ends and the noise regime begins.
  const size_t n = kdist.size();
  size_t knee = n - 1;
  if (n >= 3 && kdist.back() > kdist.front()) {
    double x_span = static_cast<double>(n - 1);
    double y_span = kdist.back() - kdist.front();
    double best = -1.0;
    for (size_t i = 0; i < n; ++i) {
      // Perpendicular distance to the chord, up to a constant factor.
      double d = std::abs(static_cast<double>(i) / x_span * y_span -
                          (kdist[i] - kdist.front()));
      if (d > best) {
        best = d;
        knee = i;
      }
    }
  }
  suggestion.params.epsilon = kdist[knee];
  suggestion.noise_fraction =
      1.0 - static_cast<double>(knee + 1) / static_cast<double>(total);
  return suggestion;
}

}  // namespace tcomp
