#ifndef TCOMP_EVAL_METRICS_H_
#define TCOMP_EVAL_METRICS_H_

#include <vector>

#include "core/types.h"

namespace tcomp {

/// |a ∩ b| / |a ∪ b| for sorted unique object sets.
double Jaccard(const ObjectSet& a, const ObjectSet& b);

/// Effectiveness of a companion-discovery run against ground truth
/// (paper Section V-D).
struct EffectivenessResult {
  /// matched / retrieved: the algorithm's selectivity. Redundant outputs
  /// (duplicates, non-closed subsets, mixed-group sets) count against it.
  double precision = 0.0;
  /// matched / truth: the algorithm's sensitivity.
  double recall = 0.0;
  int64_t matched = 0;
  int64_t retrieved = 0;
  int64_t truth = 0;
};

/// Scores retrieved companions against ground-truth groups with greedy
/// one-to-one matching: ground-truth groups are matched to their best
/// remaining retrieved set by Jaccard similarity, accepting matches with
/// Jaccard ≥ `jaccard_threshold`. One-to-one matching is what makes the
/// paper's observation measurable — CI and SW emit many redundant sets per
/// true group, and each unmatched duplicate costs precision.
EffectivenessResult ScoreCompanions(const std::vector<ObjectSet>& retrieved,
                                    const std::vector<ObjectSet>& truth,
                                    double jaccard_threshold = 0.5);

/// Coverage-style (many-to-one) scoring: a retrieved set is a true
/// positive if it matches *some* ground-truth group (Jaccard ≥ threshold),
/// and a group is recalled if *some* retrieved set matches it. Under
/// missing data a true group legitimately appears as several near-variants
/// (members temporarily dropped); this score asks whether the outputs
/// correspond to real groups at all, while ScoreCompanions() additionally
/// punishes redundancy.
EffectivenessResult ScoreCompanionsCoverage(
    const std::vector<ObjectSet>& retrieved,
    const std::vector<ObjectSet>& truth, double jaccard_threshold = 0.5);

}  // namespace tcomp

#endif  // TCOMP_EVAL_METRICS_H_
