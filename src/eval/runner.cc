#include "eval/runner.h"

#include "util/timer.h"

namespace tcomp {

RunResult RunStreamingAlgorithm(Algorithm algorithm,
                                const DiscoveryParams& params,
                                const SnapshotStream& stream) {
  RunResult out;
  out.algorithm = AlgorithmName(algorithm);
  std::unique_ptr<CompanionDiscoverer> discoverer =
      MakeDiscoverer(algorithm, params);
  Timer timer;
  timer.Start();
  for (const Snapshot& s : stream) {
    discoverer->ProcessSnapshot(s, nullptr);
  }
  timer.Stop();
  out.wall_seconds = timer.Seconds();
  out.stats = discoverer->stats();
  out.space_cost = out.stats.candidate_objects_peak;
  out.companions.reserve(discoverer->log().size());
  for (const Companion& c : discoverer->log().companions()) {
    out.companions.push_back(c.objects);
  }
  return out;
}

RunResult RunSwarmBaseline(const SwarmParams& params,
                           const SnapshotStream& stream) {
  RunResult out;
  out.algorithm = "SW";
  SwarmStats stats;
  Timer timer;
  timer.Start();
  std::vector<Swarm> swarms = MineClosedSwarms(stream, params, &stats);
  timer.Stop();
  out.wall_seconds = timer.Seconds();
  out.space_cost = stats.peak_candidate_objects;
  out.stats.distance_ops = stats.distance_ops;
  out.companions.reserve(swarms.size());
  for (Swarm& s : swarms) {
    out.companions.push_back(std::move(s.objects));
  }
  return out;
}

RunResult RunTraClusBaseline(const TraClusParams& params,
                             const SnapshotStream& stream) {
  RunResult out;
  out.algorithm = "TC";
  TraClusStats stats;
  Timer timer;
  timer.Start();
  std::vector<SegmentCluster> clusters = RunTraClus(stream, params, &stats);
  timer.Stop();
  out.wall_seconds = timer.Seconds();
  out.space_cost = 0;  // TC stores no companion candidates (paper V-B)
  out.companions.reserve(clusters.size());
  for (SegmentCluster& c : clusters) {
    out.companions.push_back(std::move(c.objects));
  }
  return out;
}

SwarmParams SwarmParamsFrom(const DiscoveryParams& params) {
  SwarmParams sp;
  sp.cluster = params.cluster;
  sp.min_objects = params.size_threshold;
  sp.min_snapshots = static_cast<int>(params.duration_threshold);
  return sp;
}

TraClusParams TraClusParamsFrom(const DiscoveryParams& params) {
  TraClusParams tp;
  // The segment ε needs headroom over the point ε: the TraClus distance
  // sums three components.
  tp.epsilon = params.cluster.epsilon * 2.0;
  tp.min_lines = params.cluster.mu;
  // Shorter segments keep the midpoint grid tight (reach = ε + max_len),
  // which bounds the neighbor-candidate count in dense corridors.
  tp.max_segment_length = params.cluster.epsilon * 10.0;
  return tp;
}

}  // namespace tcomp
