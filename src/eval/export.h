#ifndef TCOMP_EVAL_EXPORT_H_
#define TCOMP_EVAL_EXPORT_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "core/candidate.h"
#include "core/discoverer.h"
#include "core/timeline.h"
#include "util/status.h"

namespace tcomp {

/// Writers for downstream analysis pipelines: companions and run
/// statistics as JSON, companions as CSV. All output is deterministic
/// (insertion order preserved, fixed float formatting).

/// JSON: {"companions":[{"objects":[...],"duration":d,"snapshot":s},...]}
void WriteCompanionsJson(const std::vector<Companion>& companions,
                         std::ostream& out);

/// CSV: `duration,snapshot_index,size,objects` with objects
/// space-separated inside one field.
void WriteCompanionsCsv(const std::vector<Companion>& companions,
                        std::ostream& out);

/// JSON object with every DiscoveryStats counter.
void WriteStatsJson(const DiscoveryStats& stats, std::ostream& out);

/// JSON: {"episodes":[{"objects":[...],"begin":b,"end":e},...]}
void WriteEpisodesJson(const std::vector<CompanionEpisode>& episodes,
                       std::ostream& out);

/// File-level conveniences.
Status WriteCompanionsJsonFile(const std::vector<Companion>& companions,
                               const std::string& path);
Status WriteCompanionsCsvFile(const std::vector<Companion>& companions,
                              const std::string& path);

}  // namespace tcomp

#endif  // TCOMP_EVAL_EXPORT_H_
