#include "eval/table.h"

#include <algorithm>
#include <cstdio>

#include "util/logging.h"

namespace tcomp {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  TCOMP_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> width(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (size_t c = 0; c < row.size(); ++c) {
      os << " " << row[c] << std::string(width[c] - row[c].size(), ' ')
         << " |";
    }
    os << "\n";
  };
  auto print_sep = [&]() {
    os << "+";
    for (size_t c = 0; c < width.size(); ++c) {
      os << std::string(width[c] + 2, '-') << "+";
    }
    os << "\n";
  };
  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
}

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string FormatCount(int64_t value) {
  char buf[64];
  double v = static_cast<double>(value);
  if (value >= 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
  } else if (value >= 100'000) {
    std::snprintf(buf, sizeof(buf), "%.1fK", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  }
  return buf;
}

std::string FormatPercent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

}  // namespace tcomp
