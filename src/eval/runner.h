#ifndef TCOMP_EVAL_RUNNER_H_
#define TCOMP_EVAL_RUNNER_H_

#include <string>
#include <vector>

#include "baselines/swarm.h"
#include "baselines/traclus.h"
#include "core/discoverer.h"
#include "core/snapshot.h"

namespace tcomp {

/// Outcome of running one algorithm over one stream, normalized so the
/// five methods (CI, SC, BU, SW, TC) can share bench tables.
struct RunResult {
  std::string algorithm;
  double wall_seconds = 0.0;
  /// Peak memory-resident candidate size in objects (the paper's space
  /// metric). For TC this stays 0 — the paper excludes TC from the space
  /// comparison because it stores no companion candidates.
  int64_t space_cost = 0;
  /// Distinct object groups the method reports.
  std::vector<ObjectSet> companions;
  /// Detailed counters (streaming algorithms only).
  DiscoveryStats stats;
};

/// Runs one of the incremental algorithms (CI/SC/BU) over the stream.
RunResult RunStreamingAlgorithm(Algorithm algorithm,
                                const DiscoveryParams& params,
                                const SnapshotStream& stream);

/// Runs the swarm baseline (whole-dataset mining).
RunResult RunSwarmBaseline(const SwarmParams& params,
                           const SnapshotStream& stream);

/// Runs the TraClus baseline (whole-dataset sub-trajectory clustering).
RunResult RunTraClusBaseline(const TraClusParams& params,
                             const SnapshotStream& stream);

/// Derives SwarmParams from companion DiscoveryParams (mino = δs,
/// mint = δt in snapshots).
SwarmParams SwarmParamsFrom(const DiscoveryParams& params);

/// Derives TraClusParams from companion DiscoveryParams: the segment ε
/// scales with the point ε; δs/δt are ignored (TraClus has no equivalent —
/// the paper's observation that TC is flat in both).
TraClusParams TraClusParamsFrom(const DiscoveryParams& params);

}  // namespace tcomp

#endif  // TCOMP_EVAL_RUNNER_H_
