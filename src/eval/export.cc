#include "eval/export.h"

#include <cstdio>
#include <fstream>
#include <ostream>

namespace tcomp {
namespace {

void WriteObjectsArray(const ObjectSet& objects, std::ostream& out) {
  out << '[';
  for (size_t i = 0; i < objects.size(); ++i) {
    if (i) out << ',';
    out << objects[i];
  }
  out << ']';
}

std::string FormatNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

void WriteCompanionsJson(const std::vector<Companion>& companions,
                         std::ostream& out) {
  out << "{\"companions\":[";
  for (size_t i = 0; i < companions.size(); ++i) {
    if (i) out << ',';
    const Companion& c = companions[i];
    out << "{\"objects\":";
    WriteObjectsArray(c.objects, out);
    out << ",\"duration\":" << FormatNumber(c.duration)
        << ",\"snapshot\":" << c.snapshot_index << '}';
  }
  out << "]}\n";
}

void WriteCompanionsCsv(const std::vector<Companion>& companions,
                        std::ostream& out) {
  out << "duration,snapshot_index,size,objects\n";
  for (const Companion& c : companions) {
    out << FormatNumber(c.duration) << ',' << c.snapshot_index << ','
        << c.objects.size() << ',';
    for (size_t i = 0; i < c.objects.size(); ++i) {
      if (i) out << ' ';
      out << c.objects[i];
    }
    out << '\n';
  }
}

void WriteStatsJson(const DiscoveryStats& stats, std::ostream& out) {
  out << "{\"snapshots\":" << stats.snapshots
      << ",\"intersections\":" << stats.intersections
      << ",\"distance_ops\":" << stats.distance_ops
      << ",\"candidate_objects_peak\":" << stats.candidate_objects_peak
      << ",\"candidate_objects_last\":" << stats.candidate_objects_last
      << ",\"companions_reported\":" << stats.companions_reported
      << ",\"buddy_pairs_checked\":" << stats.buddy_pairs_checked
      << ",\"buddy_pairs_pruned\":" << stats.buddy_pairs_pruned
      << ",\"buddies_total\":" << stats.buddies_total
      << ",\"buddies_unchanged\":" << stats.buddies_unchanged
      << ",\"buddy_member_sum\":" << stats.buddy_member_sum
      << ",\"maintain_seconds\":" << FormatNumber(stats.maintain_seconds)
      << ",\"cluster_seconds\":" << FormatNumber(stats.cluster_seconds)
      << ",\"intersect_seconds\":"
      << FormatNumber(stats.intersect_seconds) << "}\n";
}

void WriteEpisodesJson(const std::vector<CompanionEpisode>& episodes,
                       std::ostream& out) {
  out << "{\"episodes\":[";
  for (size_t i = 0; i < episodes.size(); ++i) {
    if (i) out << ',';
    const CompanionEpisode& e = episodes[i];
    out << "{\"objects\":";
    WriteObjectsArray(e.objects, out);
    out << ",\"begin\":" << e.begin << ",\"end\":" << e.end << '}';
  }
  out << "]}\n";
}

Status WriteCompanionsJsonFile(const std::vector<Companion>& companions,
                               const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  WriteCompanionsJson(companions, out);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status WriteCompanionsCsvFile(const std::vector<Companion>& companions,
                              const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  WriteCompanionsCsv(companions, out);
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace tcomp
