#include "eval/metrics.h"

#include <algorithm>

#include "util/sorted_ops.h"

namespace tcomp {

double Jaccard(const ObjectSet& a, const ObjectSet& b) {
  if (a.empty() && b.empty()) return 1.0;
  size_t inter = SortedIntersectSize(a, b);
  size_t uni = a.size() + b.size() - inter;
  if (uni == 0) return 1.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

EffectivenessResult ScoreCompanions(const std::vector<ObjectSet>& retrieved,
                                    const std::vector<ObjectSet>& truth,
                                    double jaccard_threshold) {
  EffectivenessResult out;
  out.retrieved = static_cast<int64_t>(retrieved.size());
  out.truth = static_cast<int64_t>(truth.size());

  std::vector<bool> used(retrieved.size(), false);
  for (const ObjectSet& g : truth) {
    double best = 0.0;
    size_t best_idx = retrieved.size();
    for (size_t i = 0; i < retrieved.size(); ++i) {
      if (used[i]) continue;
      double j = Jaccard(retrieved[i], g);
      if (j > best) {
        best = j;
        best_idx = i;
      }
    }
    if (best_idx < retrieved.size() && best >= jaccard_threshold) {
      used[best_idx] = true;
      ++out.matched;
    }
  }

  out.precision = retrieved.empty()
                      ? 0.0
                      : static_cast<double>(out.matched) /
                            static_cast<double>(out.retrieved);
  out.recall = truth.empty() ? 0.0
                             : static_cast<double>(out.matched) /
                                   static_cast<double>(out.truth);
  return out;
}

EffectivenessResult ScoreCompanionsCoverage(
    const std::vector<ObjectSet>& retrieved,
    const std::vector<ObjectSet>& truth, double jaccard_threshold) {
  EffectivenessResult out;
  out.retrieved = static_cast<int64_t>(retrieved.size());
  out.truth = static_cast<int64_t>(truth.size());

  int64_t true_positives = 0;
  for (const ObjectSet& r : retrieved) {
    for (const ObjectSet& g : truth) {
      if (Jaccard(r, g) >= jaccard_threshold) {
        ++true_positives;
        break;
      }
    }
  }
  int64_t recalled = 0;
  for (const ObjectSet& g : truth) {
    for (const ObjectSet& r : retrieved) {
      if (Jaccard(r, g) >= jaccard_threshold) {
        ++recalled;
        break;
      }
    }
  }
  out.matched = recalled;
  out.precision = retrieved.empty()
                      ? 0.0
                      : static_cast<double>(true_positives) /
                            static_cast<double>(out.retrieved);
  out.recall = truth.empty() ? 0.0
                             : static_cast<double>(recalled) /
                                   static_cast<double>(out.truth);
  return out;
}

}  // namespace tcomp
