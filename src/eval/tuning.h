#ifndef TCOMP_EVAL_TUNING_H_
#define TCOMP_EVAL_TUNING_H_

#include <vector>

#include "core/dbscan.h"
#include "core/snapshot.h"

namespace tcomp {

/// Parameter suggestion for the clustering thresholds the paper sets "per
/// dataset" (Fig. 14): the classic sorted-k-distance heuristic of the
/// original DBSCAN paper (Ester et al. 1996). ε is read from the knee of
/// the sorted k-NN distance curve, μ = k + 1 (the neighborhood includes
/// the object itself).

/// Each object's distance to its k-th nearest neighbor, ascending.
/// Objects with fewer than k neighbors contribute +inf entries.
std::vector<double> SortedKDistances(const Snapshot& snapshot, int k);

struct TuningSuggestion {
  DbscanParams params;
  /// Fraction of objects whose k-distance exceeds the chosen ε (they
  /// would start as noise/border at this setting).
  double noise_fraction = 0.0;
};

/// Suggests (ε, μ) from sample snapshots of a stream. `k` is the density
/// count to calibrate for (μ = k+1). ε is read at the *knee* of the
/// sorted k-distance curve — the point of maximum distance to the chord
/// between the curve's endpoints — after trimming `tail_trim` of the
/// extreme tail (isolated wanderers would otherwise stretch the chord).
/// Deterministic; uses up to `max_snapshots` evenly spaced samples.
TuningSuggestion SuggestClusterParams(const SnapshotStream& stream,
                                      int k = 4,
                                      double tail_trim = 0.02,
                                      int max_snapshots = 5);

}  // namespace tcomp

#endif  // TCOMP_EVAL_TUNING_H_
