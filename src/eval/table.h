#ifndef TCOMP_EVAL_TABLE_H_
#define TCOMP_EVAL_TABLE_H_

#include <iostream>
#include <string>
#include <vector>

namespace tcomp {

/// Fixed-width ASCII table printer for the bench harnesses: each bench
/// prints the same rows/series its paper figure plots.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  void Print(std::ostream& os = std::cout) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision double formatting ("12.346").
std::string FormatDouble(double value, int precision = 3);

/// Engineering formatting with unit suffix ("1.44M", "25.0K", "321").
std::string FormatCount(int64_t value);

/// "12.3%" from a 0..1 fraction.
std::string FormatPercent(double fraction, int precision = 1);

}  // namespace tcomp

#endif  // TCOMP_EVAL_TABLE_H_
