#ifndef TCOMP_UTIL_SORTED_OPS_H_
#define TCOMP_UTIL_SORTED_OPS_H_

#include <algorithm>
#include <vector>

#include "util/logging.h"

namespace tcomp {

/// Set algebra on sorted, duplicate-free vectors. The companion-discovery
/// kernels store object-id sets this way: linear-merge intersection is the
/// inner loop the paper's "intersection times" metric counts, and sorted
/// vectors make it cache-friendly and allocation-light.

/// True if `v` is sorted ascending with no duplicates.
template <typename T>
bool IsSortedUnique(const std::vector<T>& v) {
  for (size_t i = 1; i < v.size(); ++i) {
    if (!(v[i - 1] < v[i])) return false;
  }
  return true;
}

/// Intersection of two sorted unique vectors into a reusable output
/// buffer (cleared first; must not alias `a` or `b`). The inner discovery
/// loops call this with a scratch vector so the common "intersection too
/// small, discard" case allocates nothing.
template <typename T>
void SortedIntersect(const std::vector<T>& a, const std::vector<T>& b,
                     std::vector<T>* out) {
  TCOMP_DCHECK(IsSortedUnique(a));
  TCOMP_DCHECK(IsSortedUnique(b));
  out->clear();
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(*out));
}

/// Returns the intersection of two sorted unique vectors.
template <typename T>
std::vector<T> SortedIntersect(const std::vector<T>& a,
                               const std::vector<T>& b) {
  std::vector<T> out;
  out.reserve(std::min(a.size(), b.size()));
  SortedIntersect(a, b, &out);
  return out;
}

/// |a ∩ b| without materializing the intersection.
template <typename T>
size_t SortedIntersectSize(const std::vector<T>& a, const std::vector<T>& b) {
  TCOMP_DCHECK(IsSortedUnique(a));
  TCOMP_DCHECK(IsSortedUnique(b));
  size_t n = 0;
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      ++n;
      ++ia;
      ++ib;
    }
  }
  return n;
}

/// Union of two sorted unique vectors into a reusable output buffer
/// (cleared first; must not alias `a` or `b`).
template <typename T>
void SortedUnion(const std::vector<T>& a, const std::vector<T>& b,
                 std::vector<T>* out) {
  TCOMP_DCHECK(IsSortedUnique(a));
  TCOMP_DCHECK(IsSortedUnique(b));
  out->clear();
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(*out));
}

/// Returns the union of two sorted unique vectors.
template <typename T>
std::vector<T> SortedUnion(const std::vector<T>& a, const std::vector<T>& b) {
  std::vector<T> out;
  out.reserve(a.size() + b.size());
  SortedUnion(a, b, &out);
  return out;
}

/// Returns a \ b for sorted unique vectors.
template <typename T>
std::vector<T> SortedDifference(const std::vector<T>& a,
                                const std::vector<T>& b) {
  TCOMP_DCHECK(IsSortedUnique(a));
  TCOMP_DCHECK(IsSortedUnique(b));
  std::vector<T> out;
  out.reserve(a.size());
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

/// Removes, in place, every element of sorted `b` from sorted `a`:
/// single compaction pass, no allocation.
template <typename T>
void SortedSubtractInPlace(std::vector<T>* a, const std::vector<T>& b) {
  TCOMP_DCHECK(IsSortedUnique(*a));
  TCOMP_DCHECK(IsSortedUnique(b));
  if (a->empty() || b.empty()) return;
  auto ib = b.begin();
  auto write = a->begin();
  for (auto read = a->begin(); read != a->end(); ++read) {
    while (ib != b.end() && *ib < *read) ++ib;
    if (ib != b.end() && !(*read < *ib)) continue;  // *read == *ib: drop
    if (write != read) *write = std::move(*read);
    ++write;
  }
  a->erase(write, a->end());
}

/// True if sorted unique `a` is a subset of sorted unique `b`. The size
/// and range comparisons reject most non-subset pairs in O(1) before the
/// element walk.
template <typename T>
bool SortedIsSubset(const std::vector<T>& a, const std::vector<T>& b) {
  TCOMP_DCHECK(IsSortedUnique(a));
  TCOMP_DCHECK(IsSortedUnique(b));
  if (a.empty()) return true;
  if (a.size() > b.size() || a.front() < b.front() || b.back() < a.back()) {
    return false;
  }
  return std::includes(b.begin(), b.end(), a.begin(), a.end());
}

/// True if the sorted unique vectors share at least one element. Early-exits
/// on the first hit, unlike SortedIntersect().size() > 0.
template <typename T>
bool SortedIntersects(const std::vector<T>& a, const std::vector<T>& b) {
  TCOMP_DCHECK(IsSortedUnique(a));
  TCOMP_DCHECK(IsSortedUnique(b));
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      return true;
    }
  }
  return false;
}

/// True if sorted unique `v` contains `x`.
template <typename T>
bool SortedContains(const std::vector<T>& v, const T& x) {
  return std::binary_search(v.begin(), v.end(), x);
}

/// Sorts and removes duplicates in place.
template <typename T>
void SortUnique(std::vector<T>* v) {
  std::sort(v->begin(), v->end());
  v->erase(std::unique(v->begin(), v->end()), v->end());
}

}  // namespace tcomp

#endif  // TCOMP_UTIL_SORTED_OPS_H_
