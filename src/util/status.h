#ifndef TCOMP_UTIL_STATUS_H_
#define TCOMP_UTIL_STATUS_H_

#include <string>
#include <type_traits>
#include <utility>

namespace tcomp {

/// Error categories used across the library. Kept deliberately small; the
/// message carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kCorruption,
  kOutOfRange,
  kInternal,
};

/// Lightweight success/error result, modeled on the Status types used by
/// production storage engines. The library does not use exceptions; any
/// operation that can fail (IO, parsing, configuration validation) returns
/// a Status or a StatusOr<T>.
///
/// Example:
///   Status s = ReadTrajectoryCsv(path, &records);
///   if (!s.ok()) { LOG(ERROR) << s.ToString(); return s; }
///
/// The class is [[nodiscard]]: silently dropping a Status return is a
/// compile error (-Werror=unused-result is always on, see the top-level
/// CMakeLists). A call site that genuinely cannot act on the error must
/// acknowledge it explicitly with a reason, e.g.
///   (void)pipeline.Stop();  // destructor: already logged by Stop()
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" form for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Returns early from the enclosing function if `expr` is a non-OK Status.
#define TCOMP_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::tcomp::Status _tcomp_status = (expr);         \
    if (!_tcomp_status.ok()) return _tcomp_status;  \
  } while (false)

/// Value-or-error result. Minimal: exactly what the IO and config paths
/// need, nothing more. [[nodiscard]] like Status: a dropped StatusOr is a
/// dropped error.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Constructs an error result. `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT
  /// Constructs a success result holding `value`.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  /// Converting copy/move from a StatusOr of a compatible value type
  /// (e.g. StatusOr<std::string> from StatusOr<const char*>).
  template <typename U,
            typename = std::enable_if_t<std::is_constructible_v<T, U>>>
  StatusOr(const StatusOr<U>& other)  // NOLINT
      : status_(other.status()) {
    if (other.ok()) value_ = T(other.value());
  }
  template <typename U,
            typename = std::enable_if_t<std::is_constructible_v<T, U>>>
  StatusOr(StatusOr<U>&& other)  // NOLINT
      : status_(other.status()) {
    if (other.ok()) value_ = T(std::move(other).value());
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Pre-condition: ok().
  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

 private:
  Status status_;
  T value_{};
};

}  // namespace tcomp

#endif  // TCOMP_UTIL_STATUS_H_
