#ifndef TCOMP_UTIL_STATUS_H_
#define TCOMP_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace tcomp {

/// Error categories used across the library. Kept deliberately small; the
/// message carries the detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIoError,
  kCorruption,
  kOutOfRange,
  kInternal,
};

/// Lightweight success/error result, modeled on the Status types used by
/// production storage engines. The library does not use exceptions; any
/// operation that can fail (IO, parsing, configuration validation) returns
/// a Status or a StatusOr<T>.
///
/// Example:
///   Status s = ReadTrajectoryCsv(path, &records);
///   if (!s.ok()) { LOG(ERROR) << s.ToString(); return s; }
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable "CODE: message" form for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Returns early from the enclosing function if `expr` is a non-OK Status.
#define TCOMP_RETURN_IF_ERROR(expr)                 \
  do {                                              \
    ::tcomp::Status _tcomp_status = (expr);         \
    if (!_tcomp_status.ok()) return _tcomp_status;  \
  } while (false)

/// Value-or-error result. Minimal: exactly what the IO and config paths
/// need, nothing more.
template <typename T>
class StatusOr {
 public:
  /// Constructs an error result. `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT
  /// Constructs a success result holding `value`.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Pre-condition: ok().
  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

 private:
  Status status_;
  T value_{};
};

}  // namespace tcomp

#endif  // TCOMP_UTIL_STATUS_H_
