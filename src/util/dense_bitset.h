#ifndef TCOMP_UTIL_DENSE_BITSET_H_
#define TCOMP_UTIL_DENSE_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tcomp {

/// Mirrors core/types.h (BitsetId = uint32_t, BitsetIdVector = sorted
/// vector<ObjectId>) without a util → core include.
using BitsetId = uint32_t;
using BitsetIdVector = std::vector<uint32_t>;

/// Word-parallel set algebra over a dense BitsetId universe.
///
/// The discovery inner loops intersect, subtract, and subset-test sorted
/// `ObjectSet` vectors billions of times per stream — the paper's own cost
/// model counts exactly these "intersection times". When the id universe
/// is dense (the generators and readers number objects from 0), a bitset
/// sized to the snapshot's maximum id turns each element operation into a
/// single bit probe and each whole-set operation into a 64-way-parallel
/// word loop, while staying bit-identical in results to the merge path in
/// util/sorted_ops.h (enforced by differential tests).
///
/// Ids at or beyond `universe()` are treated as "not representable":
/// Test() reports them absent and the sparse helpers skip them. Hybrid
/// loops rely on this — a candidate may retain ids that left the current
/// snapshot, and those can never match any cluster of the snapshot.
class DenseBitset {
 public:
  DenseBitset() = default;
  explicit DenseBitset(size_t universe) { Resize(universe); }

  /// Resizes to cover ids [0, universe) and clears every bit.
  void Resize(size_t universe);

  /// Number of representable ids (bits).
  size_t universe() const { return universe_; }

  /// True if `id` is in the set. Ids outside the universe are absent.
  bool Test(BitsetId id) const {
    if (static_cast<size_t>(id) >= universe_) return false;
    return (words_[id >> 6] >> (id & 63)) & 1u;
  }

  /// Inserts `id`; must be inside the universe.
  void Set(BitsetId id);
  /// Removes `id`; must be inside the universe.
  void Clear(BitsetId id);

  /// Removes every bit.
  void ClearAll();

  /// Inserts every id of sorted `ids` that fits the universe.
  void SetSparse(const BitsetIdVector& ids);
  /// Removes every id of sorted `ids` that fits the universe. Clearing an
  /// absent id is a no-op, so callers can clear a superset to reset.
  void ClearSparse(const BitsetIdVector& ids);

  /// Clears, then inserts every element of sorted `ids` that fits.
  void AssignSorted(const BitsetIdVector& ids);

  /// Population count.
  size_t Count() const;

  // --- Word-parallel kernels. Universes may differ: bits beyond either
  // operand's universe are treated as zero. ---

  /// this &= other.
  void IntersectWith(const DenseBitset& other);
  /// this |= other (grows the universe to cover `other` if needed).
  void UnionWith(const DenseBitset& other);
  /// this &= ~other.
  void SubtractWith(const DenseBitset& other);
  /// True if every bit of this is set in `other`.
  bool IsSubsetOf(const DenseBitset& other) const;
  /// True if the sets share at least one bit.
  bool Intersects(const DenseBitset& other) const;
  /// |this ∩ other| without materializing it.
  size_t IntersectCount(const DenseBitset& other) const;

  /// Extracts the members as a sorted BitsetIdVector (count-trailing-zeros
  /// word scan). The overload reuses `out`'s capacity.
  BitsetIdVector ToSorted() const;
  void ToSorted(BitsetIdVector* out) const;

 private:
  std::vector<uint64_t> words_;
  size_t universe_ = 0;
};

/// out = {x ∈ sorted `a` : x ∈ bits}. Preserves order, reuses `out`'s
/// capacity; `out` must not alias `a`. Identical to
/// SortedIntersect(a, bits.ToSorted()).
void IntersectInto(const BitsetIdVector& a, const DenseBitset& bits,
                   BitsetIdVector* out);

/// |{x ∈ a : x ∈ bits}| without materializing.
size_t IntersectCountWith(const BitsetIdVector& a, const DenseBitset& bits);

/// True if any element of sorted `a` is in `bits`.
bool IntersectsWith(const BitsetIdVector& a, const DenseBitset& bits);

// --- Kernel selection -----------------------------------------------------

/// Process-wide switch for the bitset fast paths. Defaults to enabled;
/// differential tests and the perf harness disable it to force the pure
/// merge path. Reads are relaxed atomics: flip it only between runs, not
/// while a discoverer is mid-snapshot.
void SetBitsetKernelsEnabled(bool enabled);
bool BitsetKernelsEnabled();

/// Density heuristic: true if a bitset over [0, universe) is worth
/// building for a set population of `set_bits` ids. Requires the id space
/// to be dense enough that words carry ≥1 member on average (sparse id
/// spaces — e.g. raw device ids from a file — would waste cache and
/// zeroing time) and caps the universe so a hostile id can't provoke a
/// huge allocation. See DESIGN.md §2 (set-algebra kernels).
inline constexpr uint64_t kMaxBitsetUniverse = uint64_t{1} << 24;  // 16.7M
inline bool BitsetProfitable(uint64_t universe, size_t set_bits) {
  return universe > 0 && universe <= kMaxBitsetUniverse &&
         universe <= uint64_t{set_bits} * 64;
}

}  // namespace tcomp

#endif  // TCOMP_UTIL_DENSE_BITSET_H_
