#ifndef TCOMP_UTIL_EPS_FILTER_H_
#define TCOMP_UTIL_EPS_FILTER_H_

#include <cstddef>
#include <cstdint>

namespace tcomp {

/// Batched ε-filter kernels over structure-of-arrays coordinates (ROADMAP
/// item 4): the snapshot hot paths — DbscanGrid range queries, the
/// incremental clusterer's FinishExact, the shard plane-sweep band loop —
/// all answer the same question ("which of these candidates are within ε
/// of the query point?") and all asked it one pointer-chased Point at a
/// time. These kernels take the candidates as contiguous double arrays so
/// the squared-distance compare auto-vectorizes.
///
/// Exact-compare contract: every lane evaluates literally
/// `dx*dx + dy*dy <= eps2` in double — the same expression, types, and
/// IEEE rounding as the scalar WithinEps/SquaredDistance pair
/// (core/types.h) — and the build never passes -ffast-math or a
/// fused-multiply-add target, so accepted sets are byte-identical to the
/// scalar path's, boundary coordinates included. The kernels are a pure
/// layout/throughput optimization; tests/soa_differential_test.cc pins
/// the equivalence end to end.

/// Process-wide kill switch for the SoA hot paths, mirroring
/// SetBitsetKernelsEnabled (PR 4) and SetIncrementalClusteringEnabled
/// (PR 6): default on; off routes every consumer through its scalar
/// loop, giving differential tests a pure baseline. Reading it is a
/// relaxed atomic load — callers may toggle it between snapshots, not
/// concurrently with a running filter.
void SetSoAKernelsEnabled(bool enabled);
bool SoAKernelsEnabled();

/// Filters the contiguous candidate range [begin, end) of xs/ys against
/// the query point (qx, qy): writes the positions whose squared distance
/// is <= eps2 to `out` (ascending, capacity at least end - begin) and
/// returns how many. This is the range form the grid backends use —
/// cell-sorted coordinate blocks make every 3×3 probe a handful of
/// contiguous ranges.
size_t EpsFilterBatch(const double* xs, const double* ys, uint32_t begin,
                      uint32_t end, double qx, double qy, double eps2,
                      uint32_t* out);

/// Index-list form: filters candidates cand[0..count) (indices into
/// xs/ys, any order) and writes the surviving *indices* — cand[k] values,
/// in input order — to `out` (capacity at least count). Returns how many.
/// Used where the candidate set is scattered (carried neighbor lists,
/// plane-sweep bands with skip rules applied first).
size_t EpsFilterGather(const double* xs, const double* ys,
                       const uint32_t* cand, size_t count, double qx,
                       double qy, double eps2, uint32_t* out);

}  // namespace tcomp

#endif  // TCOMP_UTIL_EPS_FILTER_H_
