#ifndef TCOMP_UTIL_THREAD_POOL_H_
#define TCOMP_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tcomp {

/// Fixed set of background workers for static fork/join parallelism over
/// snapshot-sized loops.
///
/// Deliberately work-stealing-free: RunShards() hands shard i to exactly
/// one participant (the caller runs shard 0, background worker w runs
/// shard w+1), so any data owned by a shard — a slice of `neighbors[]`, a
/// per-worker counter — is written by exactly one thread and the results
/// are bit-identical to running the shards sequentially. Determinism is
/// the contract: a shard's output may depend only on its shard index,
/// never on scheduling.
class ThreadPool {
 public:
  /// Spawns `num_workers` background threads (>= 0). The pool supports
  /// regions of up to num_workers + 1 shards (the caller participates).
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs body(shard, num_shards) for every shard in [0, num_shards).
  /// Shard 0 executes on the calling thread; shards 1..num_shards-1 on
  /// background workers. Blocks until every shard returns. Requires
  /// 1 <= num_shards <= num_workers() + 1. Not reentrant: body must not
  /// call RunShards on the same pool.
  void RunShards(int num_shards, const std::function<void(int, int)>& body);

  int num_workers() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop(int worker_index);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  const std::function<void(int, int)>* body_ = nullptr;  // guarded by mu_
  int num_shards_ = 0;                                   // guarded by mu_
  int remaining_ = 0;                                    // guarded by mu_
  uint64_t epoch_ = 0;                                   // guarded by mu_
  bool shutdown_ = false;                                // guarded by mu_
};

/// Shard count actually worth using for a loop of `n` items: the requested
/// thread count clamped to [1, n]. A result of 1 means "run serially".
int EffectiveShards(int threads, size_t n);

/// Runs body(shard, num_shards) with num_shards == max(threads, 1) on a
/// lazily created process-wide pool. threads <= 1 calls body(0, 1) inline
/// on the calling thread — the pool is never touched, so single-threaded
/// configurations behave exactly as if this facility did not exist.
/// Concurrent calls from different threads are serialized on the shared
/// pool; parallelize within one region, not across regions.
void ParallelForShards(int threads, const std::function<void(int, int)>& body);

/// Contiguous-slice helper over an index range: partitions [0, n) into
/// `threads` near-equal slices and runs body(begin, end, shard) for each.
/// Use when per-item cost is uniform; for triangular loops prefer
/// ParallelForShards with a strided (i = shard; i < n; i += num_shards)
/// walk, which balances the load while keeping per-item ownership fixed.
void ParallelFor(int threads, size_t n,
                 const std::function<void(size_t, size_t, int)>& body);

}  // namespace tcomp

#endif  // TCOMP_UTIL_THREAD_POOL_H_
