#ifndef TCOMP_UTIL_ARENA_H_
#define TCOMP_UTIL_ARENA_H_

#include <cstddef>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace tcomp {

/// Bump allocator for per-snapshot scratch. The hot paths (SoA snapshot
/// views, the ε-filter candidate/survivor buffers, the incremental
/// clusterer's cell index and id→index table) allocate a handful of flat
/// arrays every snapshot; individually heap-allocating them is pure churn
/// — the sizes are near-identical snapshot to snapshot. An Arena hands
/// out pointers by bumping a cursor through one retained block:
///
///   - AllocateArray<T>(n) returns n uninitialized T slots (T must be
///     trivially copyable and trivially destructible — no destructors
///     ever run);
///   - pointers stay valid until the next Reset(), never across it;
///   - Reset() rewinds the cursor and *keeps the capacity*, so after a
///     warm-up snapshot has established the high-water mark the steady
///     state performs zero heap allocations per snapshot (asserted by the
///     steady-state test in tests/soa_differential_test.cc).
///
/// Allocations that overflow the retained block go to overflow blocks
/// (existing pointers must never be invalidated mid-snapshot); Reset()
/// then consolidates the total into one larger retained block, so
/// overflow is a warm-up phenomenon, not a steady-state one.
///
/// Not thread-safe; one arena per owner, like the discoverers.
class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  template <typename T>
  T* AllocateArray(size_t count) {
    static_assert(std::is_trivially_copyable<T>::value &&
                      std::is_trivially_destructible<T>::value,
                  "Arena hands out raw uninitialized storage");
    const size_t bytes = count * sizeof(T);
    return static_cast<T*>(AllocateBytes(bytes, alignof(T)));
  }

  /// Rewinds the cursor; capacity (including any overflow taken since the
  /// last Reset) is consolidated into the single retained block.
  void Reset() {
    if (!overflow_.empty()) {
      // Grow the retained block to the whole high-water mark, rounded up
      // so repeated small overshoots converge instead of reallocating
      // every snapshot.
      size_t want = used_ + overflow_bytes_;
      size_t capacity = capacity_ < 64 ? 64 : capacity_;
      while (capacity < want) capacity *= 2;
      block_ = std::make_unique<unsigned char[]>(capacity);
      capacity_ = capacity;
      overflow_.clear();
      overflow_bytes_ = 0;
    }
    used_ = 0;
  }

  /// Total heap bytes this arena holds. Stable across snapshots once the
  /// workload's high-water mark has been seen — the no-heap-growth
  /// invariant the steady-state test pins.
  size_t allocated_bytes() const { return capacity_ + overflow_bytes_; }

  /// Bytes handed out since the last Reset() (diagnostic).
  size_t used_bytes() const { return used_ + overflow_bytes_; }

 private:
  void* AllocateBytes(size_t bytes, size_t align) {
    size_t aligned = (used_ + (align - 1)) & ~(align - 1);
    if (aligned + bytes <= capacity_) {
      used_ = aligned + bytes;
      return block_.get() + aligned;
    }
    // Overflow: a dedicated block, consolidated at the next Reset().
    // make_unique<unsigned char[]> storage is aligned for every
    // fundamental type (__STDCPP_DEFAULT_NEW_ALIGNMENT__ ≥ 16).
    overflow_.push_back(std::make_unique<unsigned char[]>(bytes));
    overflow_bytes_ += bytes;
    return overflow_.back().get();
  }

  std::unique_ptr<unsigned char[]> block_;
  size_t capacity_ = 0;
  size_t used_ = 0;
  std::vector<std::unique_ptr<unsigned char[]>> overflow_;
  size_t overflow_bytes_ = 0;
};

}  // namespace tcomp

#endif  // TCOMP_UTIL_ARENA_H_
