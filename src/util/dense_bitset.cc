#include "util/dense_bitset.h"

#include <algorithm>
#include <atomic>
#include <bit>

#include "util/logging.h"

namespace tcomp {

namespace {
std::atomic<bool> g_bitset_kernels_enabled{true};
}  // namespace

void SetBitsetKernelsEnabled(bool enabled) {
  g_bitset_kernels_enabled.store(enabled, std::memory_order_relaxed);
}

bool BitsetKernelsEnabled() {
  return g_bitset_kernels_enabled.load(std::memory_order_relaxed);
}

void DenseBitset::Resize(size_t universe) {
  universe_ = universe;
  words_.assign((universe + 63) / 64, 0);
}

void DenseBitset::Set(BitsetId id) {
  TCOMP_DCHECK(static_cast<size_t>(id) < universe_);
  words_[id >> 6] |= uint64_t{1} << (id & 63);
}

void DenseBitset::Clear(BitsetId id) {
  TCOMP_DCHECK(static_cast<size_t>(id) < universe_);
  words_[id >> 6] &= ~(uint64_t{1} << (id & 63));
}

void DenseBitset::ClearAll() {
  std::fill(words_.begin(), words_.end(), uint64_t{0});
}

void DenseBitset::SetSparse(const BitsetIdVector& ids) {
  for (BitsetId id : ids) {
    if (static_cast<size_t>(id) >= universe_) break;  // sorted: rest too big
    words_[id >> 6] |= uint64_t{1} << (id & 63);
  }
}

void DenseBitset::ClearSparse(const BitsetIdVector& ids) {
  for (BitsetId id : ids) {
    if (static_cast<size_t>(id) >= universe_) break;
    words_[id >> 6] &= ~(uint64_t{1} << (id & 63));
  }
}

void DenseBitset::AssignSorted(const BitsetIdVector& ids) {
  ClearAll();
  SetSparse(ids);
}

size_t DenseBitset::Count() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
  return n;
}

void DenseBitset::IntersectWith(const DenseBitset& other) {
  const size_t common = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < common; ++i) words_[i] &= other.words_[i];
  std::fill(words_.begin() + static_cast<ptrdiff_t>(common), words_.end(),
            uint64_t{0});
}

void DenseBitset::UnionWith(const DenseBitset& other) {
  if (other.words_.size() > words_.size()) {
    words_.resize(other.words_.size(), 0);
    universe_ = other.universe_;
  }
  for (size_t i = 0; i < other.words_.size(); ++i) {
    words_[i] |= other.words_[i];
  }
}

void DenseBitset::SubtractWith(const DenseBitset& other) {
  const size_t common = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < common; ++i) words_[i] &= ~other.words_[i];
}

bool DenseBitset::IsSubsetOf(const DenseBitset& other) const {
  const size_t common = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < common; ++i) {
    if (words_[i] & ~other.words_[i]) return false;
  }
  for (size_t i = common; i < words_.size(); ++i) {
    if (words_[i]) return false;
  }
  return true;
}

bool DenseBitset::Intersects(const DenseBitset& other) const {
  const size_t common = std::min(words_.size(), other.words_.size());
  for (size_t i = 0; i < common; ++i) {
    if (words_[i] & other.words_[i]) return true;
  }
  return false;
}

size_t DenseBitset::IntersectCount(const DenseBitset& other) const {
  const size_t common = std::min(words_.size(), other.words_.size());
  size_t n = 0;
  for (size_t i = 0; i < common; ++i) {
    n += static_cast<size_t>(std::popcount(words_[i] & other.words_[i]));
  }
  return n;
}

BitsetIdVector DenseBitset::ToSorted() const {
  BitsetIdVector out;
  ToSorted(&out);
  return out;
}

void DenseBitset::ToSorted(BitsetIdVector* out) const {
  out->clear();
  for (size_t i = 0; i < words_.size(); ++i) {
    uint64_t w = words_[i];
    while (w != 0) {
      out->push_back(static_cast<BitsetId>(
          i * 64 + static_cast<size_t>(std::countr_zero(w))));
      w &= w - 1;
    }
  }
}

void IntersectInto(const BitsetIdVector& a, const DenseBitset& bits,
                   BitsetIdVector* out) {
  out->clear();
  for (BitsetId id : a) {
    if (static_cast<size_t>(id) >= bits.universe()) break;  // sorted input
    if (bits.Test(id)) out->push_back(id);
  }
}

size_t IntersectCountWith(const BitsetIdVector& a, const DenseBitset& bits) {
  size_t n = 0;
  for (BitsetId id : a) {
    if (static_cast<size_t>(id) >= bits.universe()) break;
    if (bits.Test(id)) ++n;
  }
  return n;
}

bool IntersectsWith(const BitsetIdVector& a, const DenseBitset& bits) {
  for (BitsetId id : a) {
    if (static_cast<size_t>(id) >= bits.universe()) break;
    if (bits.Test(id)) return true;
  }
  return false;
}

}  // namespace tcomp
