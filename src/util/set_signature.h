#ifndef TCOMP_UTIL_SET_SIGNATURE_H_
#define TCOMP_UTIL_SET_SIGNATURE_H_

#include <cstdint>
#include <vector>

namespace tcomp {

/// O(1) subset prefilter for sorted id sets.
///
/// A signature folds a set into one 64-bit Bloom word (bit `id mod 64`
/// per member) plus its min/max id. `A ⊆ B` requires every Bloom bit of
/// A to be set in B and A's id range to sit inside B's, so
/// MaybeSubsetOf() rejects most non-subset pairs without touching a
/// single element; a `true` answer still needs the exact merge check
/// (SortedIsSubset). Closedness scans — IsClosedAgainst, the
/// CompanionLog's closed-mode superset/eviction passes — are quadratic
/// in candidate count and dominated by failed subset checks, which is
/// exactly what this filters.
struct SetSignature {
  uint64_t bloom = 0;
  /// min > max is the empty-set sentinel (empty ⊆ everything).
  uint32_t min_id = 1;
  uint32_t max_id = 0;

  /// Builds the signature of a sorted, duplicate-free id vector.
  static SetSignature Of(const std::vector<uint32_t>& sorted_ids) {
    SetSignature s;
    if (sorted_ids.empty()) return s;
    for (uint32_t id : sorted_ids) s.bloom |= uint64_t{1} << (id & 63);
    s.min_id = sorted_ids.front();
    s.max_id = sorted_ids.back();
    return s;
  }

  bool empty() const { return min_id > max_id; }

  /// False only if the underlying set can NOT be a subset of `outer`'s.
  /// Never false-rejects: if A ⊆ B then MaybeSubsetOf returns true.
  bool MaybeSubsetOf(const SetSignature& outer) const {
    if (empty()) return true;
    return (bloom & ~outer.bloom) == 0 && min_id >= outer.min_id &&
           max_id <= outer.max_id;
  }

  /// False only if the two underlying sets are PROVABLY disjoint: a
  /// shared element would contribute a shared Bloom bit and force the id
  /// ranges to overlap. Never false-rejects: if A ∩ B ≠ ∅, returns true.
  /// BU's atom intersection uses this to dismiss the typical
  /// nothing-in-common candidate×cluster pair in O(1).
  bool MaybeIntersects(const SetSignature& other) const {
    if (empty() || other.empty()) return false;
    return (bloom & other.bloom) != 0 && min_id <= other.max_id &&
           other.min_id <= max_id;
  }

  /// Folds one more member id into the signature.
  void AddId(uint32_t id) {
    bloom |= uint64_t{1} << (id & 63);
    if (empty()) {
      min_id = id;
      max_id = id;
      return;
    }
    if (id < min_id) min_id = id;
    if (id > max_id) max_id = id;
  }

  /// Becomes the signature of the union of both underlying sets — how an
  /// atom set's signature is composed from cached per-buddy signatures.
  void MergeUnion(const SetSignature& other) {
    if (other.empty()) return;
    if (empty()) {
      *this = other;
      return;
    }
    bloom |= other.bloom;
    if (other.min_id < min_id) min_id = other.min_id;
    if (other.max_id > max_id) max_id = other.max_id;
  }

  friend bool operator==(const SetSignature& a, const SetSignature& b) {
    return a.bloom == b.bloom && a.min_id == b.min_id &&
           a.max_id == b.max_id;
  }
};

}  // namespace tcomp

#endif  // TCOMP_UTIL_SET_SIGNATURE_H_
