#include "util/flags.h"

#include <cstdlib>

namespace tcomp {

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) {
      return Status::InvalidArgument("bare '--' is not a valid flag");
    }
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      std::string name = body.substr(0, eq);
      if (name.empty()) {
        return Status::InvalidArgument("flag with empty name: " + arg);
      }
      values_[name] = body.substr(eq + 1);
      continue;
    }
    // `--name value` form: consume the next token if it is not a flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[i + 1];
      ++i;
    } else {
      values_[body] = "true";
    }
  }
  return Status::OK();
}

std::vector<std::string> FlagParser::names() const {
  std::vector<std::string> names;
  names.reserve(values_.size());
  for (const auto& [name, value] : values_) names.push_back(name);
  return names;
}

bool FlagParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int FlagParser::GetInt(const std::string& name, int default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : std::atoi(it->second.c_str());
}

int64_t FlagParser::GetInt64(const std::string& name,
                             int64_t default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value
                             : std::atoll(it->second.c_str());
}

double FlagParser::GetDouble(const std::string& name,
                             double default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : std::atof(it->second.c_str());
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  const std::string& v = it->second;
  return v == "true" || v == "1" || v == "yes" || v == "on";
}

}  // namespace tcomp
