#include "util/flags.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <limits>

namespace tcomp {
namespace {

/// Trims leading/trailing ASCII whitespace (strtol skips leading space
/// itself, but trailing "\r" from Windows-edited scripts must not make a
/// value malformed).
std::string Trim(const std::string& text) {
  size_t begin = text.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) return "";
  size_t end = text.find_last_not_of(" \t\r\n");
  return text.substr(begin, end - begin + 1);
}

}  // namespace

StatusOr<int64_t> ParseInt64Text(const std::string& text) {
  std::string t = Trim(text);
  if (t.empty()) return Status::InvalidArgument("empty integer");
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(t.c_str(), &end, 10);
  if (end != t.c_str() + t.size()) {
    return Status::InvalidArgument("not an integer: '" + text + "'");
  }
  if (errno == ERANGE) {
    return Status::OutOfRange("integer out of range: '" + text + "'");
  }
  return static_cast<int64_t>(v);
}

StatusOr<double> ParseDoubleText(const std::string& text) {
  std::string t = Trim(text);
  if (t.empty()) return Status::InvalidArgument("empty number");
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(t.c_str(), &end);
  if (end != t.c_str() + t.size()) {
    return Status::InvalidArgument("not a number: '" + text + "'");
  }
  if (errno == ERANGE && (v == HUGE_VAL || v == -HUGE_VAL)) {
    return Status::OutOfRange("number out of range: '" + text + "'");
  }
  return v;
}

StatusOr<bool> ParseBoolText(const std::string& text) {
  std::string t = Trim(text);
  if (t == "true" || t == "1" || t == "yes" || t == "on") return true;
  if (t == "false" || t == "0" || t == "no" || t == "off") return false;
  return Status::InvalidArgument("not a boolean: '" + text + "'");
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body.empty()) {
      return Status::InvalidArgument("bare '--' is not a valid flag");
    }
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      std::string name = body.substr(0, eq);
      if (name.empty()) {
        return Status::InvalidArgument("flag with empty name: " + arg);
      }
      values_[name] = body.substr(eq + 1);
      continue;
    }
    // `--name value` form: consume the next token if it is not a flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[i + 1];
      ++i;
    } else {
      values_[body] = "true";
    }
  }
  return Status::OK();
}

std::vector<std::string> FlagParser::names() const {
  std::vector<std::string> names;
  names.reserve(values_.size());
  for (const auto& [name, value] : values_) names.push_back(name);
  return names;
}

bool FlagParser::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string FlagParser::GetString(const std::string& name,
                                  const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int FlagParser::GetInt(const std::string& name, int default_value) const {
  int out = default_value;
  (void)GetStrict(name, default_value, &out);  // lenient: default on error
  return out;
}

int64_t FlagParser::GetInt64(const std::string& name,
                             int64_t default_value) const {
  int64_t out = default_value;
  (void)GetStrict(name, default_value, &out);  // lenient: default on error
  return out;
}

double FlagParser::GetDouble(const std::string& name,
                             double default_value) const {
  double out = default_value;
  (void)GetStrict(name, default_value, &out);  // lenient: default on error
  return out;
}

bool FlagParser::GetBool(const std::string& name, bool default_value) const {
  bool out = default_value;
  (void)GetStrict(name, default_value, &out);  // lenient: default on error
  return out;
}

Status FlagParser::GetStrict(const std::string& name, int default_value,
                             int* out) const {
  *out = default_value;
  int64_t wide = default_value;
  TCOMP_RETURN_IF_ERROR(GetStrict(name, static_cast<int64_t>(default_value),
                                  &wide));
  if (wide < std::numeric_limits<int>::min() ||
      wide > std::numeric_limits<int>::max()) {
    return Status::OutOfRange("--" + name + ": value out of int range: " +
                              std::to_string(wide));
  }
  *out = static_cast<int>(wide);
  return Status::OK();
}

Status FlagParser::GetStrict(const std::string& name, int64_t default_value,
                             int64_t* out) const {
  *out = default_value;
  auto it = values_.find(name);
  if (it == values_.end()) return Status::OK();
  StatusOr<int64_t> parsed = ParseInt64Text(it->second);
  if (!parsed.ok()) {
    return Status(parsed.status().code(),
                  "--" + name + ": " + parsed.status().message());
  }
  *out = parsed.value();
  return Status::OK();
}

Status FlagParser::GetStrict(const std::string& name, double default_value,
                             double* out) const {
  *out = default_value;
  auto it = values_.find(name);
  if (it == values_.end()) return Status::OK();
  StatusOr<double> parsed = ParseDoubleText(it->second);
  if (!parsed.ok()) {
    return Status(parsed.status().code(),
                  "--" + name + ": " + parsed.status().message());
  }
  *out = parsed.value();
  return Status::OK();
}

Status FlagParser::GetStrict(const std::string& name, bool default_value,
                             bool* out) const {
  *out = default_value;
  auto it = values_.find(name);
  if (it == values_.end()) return Status::OK();
  StatusOr<bool> parsed = ParseBoolText(it->second);
  if (!parsed.ok()) {
    return Status(parsed.status().code(),
                  "--" + name + ": " + parsed.status().message());
  }
  *out = parsed.value();
  return Status::OK();
}

}  // namespace tcomp
