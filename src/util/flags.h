#ifndef TCOMP_UTIL_FLAGS_H_
#define TCOMP_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace tcomp {

/// Strict full-string numeric parsing. The entire token (modulo leading
/// and trailing ASCII whitespace) must parse and fit the result type;
/// trailing garbage ("12abc"), overflow, and empty input are errors, not
/// best-effort prefixes — atoi-style silent truncation has burned this
/// codebase's determinism claims before, so nothing here uses it.
StatusOr<int64_t> ParseInt64Text(const std::string& text);
StatusOr<double> ParseDoubleText(const std::string& text);
StatusOr<bool> ParseBoolText(const std::string& text);

/// Minimal command-line flag parser for the bench and example binaries.
/// Accepts `--name=value`, `--name value`, and bare `--name` (boolean true).
/// Anything not starting with `--` is collected as a positional argument.
///
/// Example:
///   FlagParser flags;
///   Status s = flags.Parse(argc, argv);
///   int n = flags.GetInt("objects", 1000);
///   bool full = flags.GetBool("full", false);
///
/// The two-argument getters are lenient: a missing *or malformed* value
/// yields the default. User-facing surfaces (the CLI) must use the strict
/// Status-returning getters instead, so `--mu abc` fails loudly rather
/// than running with a default.
class FlagParser {
 public:
  /// Parses argv. Returns InvalidArgument on malformed input (e.g. `--=x`).
  Status Parse(int argc, const char* const* argv);

  bool Has(const std::string& name) const;

  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int GetInt(const std::string& name, int default_value) const;
  int64_t GetInt64(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  /// Strict getters: `*out` receives the default when the flag is absent;
  /// a present-but-malformed value is an InvalidArgument error naming the
  /// flag. GetStrict(name, int) additionally rejects values outside int
  /// range.
  Status GetStrict(const std::string& name, int default_value,
                   int* out) const;
  Status GetStrict(const std::string& name, int64_t default_value,
                   int64_t* out) const;
  Status GetStrict(const std::string& name, double default_value,
                   double* out) const;
  Status GetStrict(const std::string& name, bool default_value,
                   bool* out) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// Every flag name that was passed, sorted ascending — lets a caller
  /// reject flags it does not understand instead of silently ignoring a
  /// typo (`--epsilom 24` would otherwise run with the default ε).
  std::vector<std::string> names() const;

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace tcomp

#endif  // TCOMP_UTIL_FLAGS_H_
