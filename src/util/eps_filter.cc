#include "util/eps_filter.h"

#include <algorithm>
#include <atomic>

// The exact-compare contract (util/eps_filter.h) requires every lane to
// round exactly like the scalar WithinEps walk. The wide clones below
// run on FMA-capable ISAs where GCC's default fp-contract=fast would
// fuse dx*dx + dy*dy into fma(dx, dx, dy*dy) and change the rounding of
// boundary-distance pairs, so this translation unit is compiled with
// -ffp-contract=off (set in src/CMakeLists.txt; the differential test
// exercises exact-ε boundary pairs, which is what catches a lost flag).

// Baseline x86-64 codegen is SSE2, which leaves 2x-8x of compare-lane
// width on the table on the AVX2/AVX-512 fleet hardware. target_clones
// emits one copy of each kernel per listed ISA plus the baseline and
// picks at load time via the glibc ifunc resolver — no global -march
// flag, so the rest of the binary stays portable. Contraction is off
// (above), so every clone performs the identical IEEE op sequence and
// the results are byte-identical across ISAs by construction.
#if defined(__x86_64__) && defined(__has_attribute) && !defined(__clang__)
#if __has_attribute(target_clones)
#define TCOMP_TARGET_CLONES \
  __attribute__((target_clones("avx2", "default")))
#endif
#endif
#ifndef TCOMP_TARGET_CLONES
#define TCOMP_TARGET_CLONES
#endif

namespace tcomp {

namespace {

std::atomic<bool> g_soa_kernels_enabled{true};

/// Chunk size for the mask-then-compact structure below: big enough that
/// the vectorized compare loop amortizes its prologue, small enough that
/// the mask and staging buffers live in L1 throughout.
constexpr uint32_t kChunk = 256;

/// Below this many candidates the mask-then-compact structure costs more
/// than it saves (two passes plus the vector prologue against a handful
/// of lanes); a plain scalar append wins. Same compare, same results —
/// this is a latency cutover, not a semantic branch.
constexpr uint32_t kScalarCutoff = 16;

}  // namespace

void SetSoAKernelsEnabled(bool enabled) {
  g_soa_kernels_enabled.store(enabled, std::memory_order_relaxed);
}

bool SoAKernelsEnabled() {
  return g_soa_kernels_enabled.load(std::memory_order_relaxed);
}

// Both kernels split each chunk into a branch-free compare pass that the
// compiler can vectorize (independent lanes, no control flow, contiguous
// loads) and a branch-free compaction pass (out[k] is written
// unconditionally; the cursor advances only on a hit). A fused
// compare-and-append loop would force the vectorizer to prove a
// conditional store safe, which baseline x86-64/AArch64 codegen cannot.

TCOMP_TARGET_CLONES
size_t EpsFilterBatch(const double* xs, const double* ys, uint32_t begin,
                      uint32_t end, double qx, double qy, double eps2,
                      uint32_t* out) {
  if (end - begin < kScalarCutoff) {
    size_t count = 0;
    for (uint32_t i = begin; i < end; ++i) {
      const double dx = xs[i] - qx;
      const double dy = ys[i] - qy;
      if (dx * dx + dy * dy <= eps2) out[count++] = i;
    }
    return count;
  }
  unsigned char hit[kChunk];
  size_t count = 0;
  for (uint32_t base = begin; base < end;) {
    const uint32_t lim = base + std::min<uint32_t>(kChunk, end - base);
    for (uint32_t i = base; i < lim; ++i) {
      const double dx = xs[i] - qx;
      const double dy = ys[i] - qy;
      hit[i - base] = dx * dx + dy * dy <= eps2 ? 1 : 0;
    }
    for (uint32_t i = base; i < lim; ++i) {
      out[count] = i;
      count += hit[i - base];
    }
    base = lim;
  }
  return count;
}

TCOMP_TARGET_CLONES
size_t EpsFilterGather(const double* xs, const double* ys,
                       const uint32_t* cand, size_t count, double qx,
                       double qy, double eps2, uint32_t* out) {
  if (count < kScalarCutoff) {
    size_t written = 0;
    for (size_t k = 0; k < count; ++k) {
      const uint32_t i = cand[k];
      const double dx = xs[i] - qx;
      const double dy = ys[i] - qy;
      if (dx * dx + dy * dy <= eps2) out[written++] = i;
    }
    return written;
  }
  double bx[kChunk];
  double by[kChunk];
  unsigned char hit[kChunk];
  size_t written = 0;
  for (size_t base = 0; base < count;) {
    const size_t lim =
        base + std::min<size_t>(kChunk, count - base);
    for (size_t k = base; k < lim; ++k) {
      const uint32_t i = cand[k];
      bx[k - base] = xs[i];
      by[k - base] = ys[i];
    }
    const size_t n = lim - base;
    for (size_t k = 0; k < n; ++k) {
      const double dx = bx[k] - qx;
      const double dy = by[k] - qy;
      hit[k] = dx * dx + dy * dy <= eps2 ? 1 : 0;
    }
    for (size_t k = 0; k < n; ++k) {
      out[written] = cand[base + k];
      written += hit[k];
    }
    base = lim;
  }
  return written;
}

}  // namespace tcomp
