#ifndef TCOMP_UTIL_TIMER_H_
#define TCOMP_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace tcomp {

/// Monotonic stopwatch. Accumulates across Start/Stop pairs so one timer
/// can measure a stage that runs once per snapshot over a whole stream.
class Timer {
 public:
  Timer() = default;

  void Start() { start_ = Clock::now(); running_ = true; }

  /// Stops the current interval and adds it to the accumulated total.
  void Stop() {
    if (!running_) return;
    accumulated_ += Clock::now() - start_;
    running_ = false;
  }

  void Reset() {
    accumulated_ = Duration::zero();
    running_ = false;
  }

  /// Accumulated time in seconds (includes the in-flight interval if the
  /// timer is currently running).
  double Seconds() const {
    Duration total = accumulated_;
    if (running_) total += Clock::now() - start_;
    return std::chrono::duration<double>(total).count();
  }

  double Milliseconds() const { return Seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  using Duration = Clock::duration;

  Duration accumulated_ = Duration::zero();
  Clock::time_point start_{};
  bool running_ = false;
};

/// RAII guard: times a scope into an accumulating Timer.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer* timer) : timer_(timer) { timer_->Start(); }
  ~ScopedTimer() { timer_->Stop(); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer* timer_;
};

}  // namespace tcomp

#endif  // TCOMP_UTIL_TIMER_H_
