#ifndef TCOMP_UTIL_RANDOM_H_
#define TCOMP_UTIL_RANDOM_H_

#include <cmath>
#include <cstdint>

namespace tcomp {

/// Deterministic PCG32 pseudo-random generator (O'Neill, pcg-random.org;
/// XSH-RR 64/32 variant). Used instead of <random> engines so that every
/// dataset generator produces byte-identical streams across standard
/// libraries and platforms — the experiment tables depend on it.
class Pcg32 {
 public:
  /// Seeds the generator. Two Pcg32 instances with the same (seed, stream)
  /// produce the same sequence.
  explicit Pcg32(uint64_t seed = 0x853c49e6748fea9bULL,
                 uint64_t stream = 0xda3e39cb94b95bdbULL)
      : state_(0), inc_((stream << 1u) | 1u) {
    NextU32();
    state_ += seed;
    NextU32();
  }

  /// Returns the next 32 uniformly distributed bits.
  uint32_t NextU32() {
    uint64_t old = state_;
    state_ = old * 6364136223846793005ULL + inc_;
    uint32_t xorshifted = static_cast<uint32_t>(((old >> 18u) ^ old) >> 27u);
    uint32_t rot = static_cast<uint32_t>(old >> 59u);
    return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
  }

  /// Returns an unbiased integer in [0, bound). bound must be > 0.
  uint32_t NextBounded(uint32_t bound) {
    // Lemire-style rejection of the biased low region.
    uint32_t threshold = (-bound) % bound;
    for (;;) {
      uint32_t r = NextU32();
      if (r >= threshold) return r % bound;
    }
  }

  /// Returns an integer in [lo, hi] inclusive. Requires lo <= hi.
  int NextInt(int lo, int hi) {
    return lo + static_cast<int>(
                    NextBounded(static_cast<uint32_t>(hi - lo + 1)));
  }

  /// Returns a double uniformly in [0, 1).
  double NextDouble() {
    return NextU32() * (1.0 / 4294967296.0);
  }

  /// Returns a double uniformly in [lo, hi).
  double NextDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Returns a standard-normal variate (Box–Muller, one value per call; the
  /// pair's second value is cached).
  double NextGaussian();

  /// Returns true with probability p.
  bool NextBernoulli(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
  uint64_t inc_;
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

inline double Pcg32::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Marsaglia polar method: no trig, still deterministic.
  double u, v, s;
  do {
    u = NextDouble(-1.0, 1.0);
    v = NextDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  double m = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * m;
  has_cached_gaussian_ = true;
  return u * m;
}

}  // namespace tcomp

#endif  // TCOMP_UTIL_RANDOM_H_
