#ifndef TCOMP_UTIL_LOGGING_H_
#define TCOMP_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace tcomp {
namespace internal {

enum class LogSeverity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

/// Stream-style log sink. Messages are written to stderr when the line is
/// destroyed; FATAL aborts the process after flushing.
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

/// Global minimum severity; messages below it are dropped. Default: WARNING
/// so library internals stay quiet in benchmarks unless asked.
void SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

/// Swallows a log stream without evaluating it (used by disabled DCHECKs).
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace tcomp

#define TCOMP_LOG_INFO \
  ::tcomp::internal::LogMessage(::tcomp::internal::LogSeverity::kInfo, \
                                __FILE__, __LINE__).stream()
#define TCOMP_LOG_WARNING \
  ::tcomp::internal::LogMessage(::tcomp::internal::LogSeverity::kWarning, \
                                __FILE__, __LINE__).stream()
#define TCOMP_LOG_ERROR \
  ::tcomp::internal::LogMessage(::tcomp::internal::LogSeverity::kError, \
                                __FILE__, __LINE__).stream()
#define TCOMP_LOG_FATAL \
  ::tcomp::internal::LogMessage(::tcomp::internal::LogSeverity::kFatal, \
                                __FILE__, __LINE__).stream()

#define TCOMP_LOG(severity) TCOMP_LOG_##severity

/// Invariant check, active in all build modes. Fails fast: the algorithms
/// here are deterministic, so a broken invariant is a bug, not bad input.
#define TCOMP_CHECK(cond)                                  \
  if (!(cond))                                             \
  TCOMP_LOG(FATAL) << "Check failed: " #cond " "

#define TCOMP_CHECK_GE(a, b) TCOMP_CHECK((a) >= (b))
#define TCOMP_CHECK_GT(a, b) TCOMP_CHECK((a) > (b))
#define TCOMP_CHECK_LE(a, b) TCOMP_CHECK((a) <= (b))
#define TCOMP_CHECK_LT(a, b) TCOMP_CHECK((a) < (b))
#define TCOMP_CHECK_EQ(a, b) TCOMP_CHECK((a) == (b))
#define TCOMP_CHECK_NE(a, b) TCOMP_CHECK((a) != (b))

#ifndef NDEBUG
#define TCOMP_DCHECK(cond) TCOMP_CHECK(cond)
#else
#define TCOMP_DCHECK(cond) \
  if (false) ::tcomp::internal::NullStream()
#endif

#endif  // TCOMP_UTIL_LOGGING_H_
