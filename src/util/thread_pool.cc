#include "util/thread_pool.h"

#include <algorithm>
#include <memory>

#include "util/logging.h"

namespace tcomp {

ThreadPool::ThreadPool(int num_workers) {
  TCOMP_CHECK_GE(num_workers, 0);
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int w = 0; w < num_workers; ++w) {
    workers_.emplace_back([this, w] { WorkerLoop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop(int worker_index) {
  uint64_t seen_epoch = 0;
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock,
                  [&] { return shutdown_ || epoch_ != seen_epoch; });
    if (shutdown_) return;
    seen_epoch = epoch_;
    if (worker_index + 1 >= num_shards_) continue;  // no shard this epoch
    const std::function<void(int, int)>* body = body_;
    int shards = num_shards_;
    lock.unlock();
    (*body)(worker_index + 1, shards);
    lock.lock();
    if (--remaining_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::RunShards(int num_shards,
                           const std::function<void(int, int)>& body) {
  TCOMP_CHECK_GE(num_shards, 1);
  TCOMP_CHECK_LE(num_shards, num_workers() + 1);
  if (num_shards == 1) {
    body(0, 1);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    body_ = &body;
    num_shards_ = num_shards;
    remaining_ = num_shards - 1;
    ++epoch_;
  }
  work_cv_.notify_all();
  body(0, num_shards);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return remaining_ == 0; });
  body_ = nullptr;
  num_shards_ = 0;
}

int EffectiveShards(int threads, size_t n) {
  if (threads <= 1 || n <= 1) return 1;
  return static_cast<int>(
      std::min<size_t>(static_cast<size_t>(threads), n));
}

namespace {

// One shared pool, grown on demand. The mutex is held for the whole
// parallel region: regions are serialized, which both protects the pool
// against resizing mid-flight and keeps the facility trivially safe for
// callers running independent streams on their own threads.
std::mutex g_pool_mu;
std::unique_ptr<ThreadPool>& GlobalPoolSlot() {
  static std::unique_ptr<ThreadPool> pool;
  return pool;
}

}  // namespace

void ParallelForShards(int threads,
                       const std::function<void(int, int)>& body) {
  if (threads <= 1) {
    body(0, 1);
    return;
  }
  std::lock_guard<std::mutex> lock(g_pool_mu);
  std::unique_ptr<ThreadPool>& pool = GlobalPoolSlot();
  if (pool == nullptr || pool->num_workers() < threads - 1) {
    pool.reset();  // join the smaller pool before replacing it
    pool = std::make_unique<ThreadPool>(threads - 1);
  }
  pool->RunShards(threads, body);
}

void ParallelFor(int threads, size_t n,
                 const std::function<void(size_t, size_t, int)>& body) {
  int shards = EffectiveShards(threads, n);
  if (shards == 1) {
    body(0, n, 0);
    return;
  }
  ParallelForShards(shards, [&](int shard, int num_shards) {
    size_t chunk = n / static_cast<size_t>(num_shards);
    size_t extra = n % static_cast<size_t>(num_shards);
    size_t s = static_cast<size_t>(shard);
    size_t begin = s * chunk + std::min(s, extra);
    size_t end = begin + chunk + (s < extra ? 1 : 0);
    body(begin, end, shard);
  });
}

}  // namespace tcomp
