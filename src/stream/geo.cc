#include "stream/geo.h"

#include <cmath>

namespace tcomp {
namespace {

constexpr double kEarthRadiusMeters = 6371008.8;  // mean Earth radius
constexpr double kPi = 3.14159265358979323846;

double Radians(double deg) { return deg * kPi / 180.0; }

}  // namespace

double HaversineMeters(LatLon a, LatLon b) {
  double lat1 = Radians(a.lat);
  double lat2 = Radians(b.lat);
  double dlat = Radians(b.lat - a.lat);
  double dlon = Radians(b.lon - a.lon);
  double h = std::sin(dlat / 2.0) * std::sin(dlat / 2.0) +
             std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2.0) *
                 std::sin(dlon / 2.0);
  return 2.0 * kEarthRadiusMeters * std::asin(std::sqrt(h));
}

LocalProjection::LocalProjection(LatLon reference) : reference_(reference) {
  meters_per_deg_lat_ = kEarthRadiusMeters * kPi / 180.0;
  meters_per_deg_lon_ = meters_per_deg_lat_ * std::cos(Radians(reference.lat));
}

Point LocalProjection::Project(LatLon p) const {
  return Point{(p.lon - reference_.lon) * meters_per_deg_lon_,
               (p.lat - reference_.lat) * meters_per_deg_lat_};
}

LatLon LocalProjection::Unproject(Point p) const {
  return LatLon{reference_.lat + p.y / meters_per_deg_lat_,
                reference_.lon + p.x / meters_per_deg_lon_};
}

}  // namespace tcomp
