#ifndef TCOMP_STREAM_GEO_H_
#define TCOMP_STREAM_GEO_H_

#include "core/types.h"

namespace tcomp {

/// A WGS-84 coordinate in degrees.
struct LatLon {
  double lat = 0.0;
  double lon = 0.0;
};

/// Great-circle distance in meters (haversine).
double HaversineMeters(LatLon a, LatLon b);

/// Equirectangular projection around a reference point: maps lat/lon to a
/// local metric plane (meters east / north of the reference). Accurate to
/// well under the ε values used for urban trajectory clustering over city-
/// scale extents, which is all the companion pipeline needs — GPS inputs
/// (e.g. GeoLife .plt files) pass through here before clustering.
class LocalProjection {
 public:
  explicit LocalProjection(LatLon reference);

  Point Project(LatLon p) const;
  LatLon Unproject(Point p) const;

  LatLon reference() const { return reference_; }

 private:
  LatLon reference_;
  double meters_per_deg_lat_;
  double meters_per_deg_lon_;
};

}  // namespace tcomp

#endif  // TCOMP_STREAM_GEO_H_
