#include "stream/sliding_window.h"

#include <cmath>

#include "util/logging.h"

namespace tcomp {

SlidingWindowSnapshotter::SlidingWindowSnapshotter(
    const SlidingWindowOptions& options)
    : options_(options) {
  TCOMP_CHECK_GT(options.snapshot_duration, 0.0);
  if (options.mode == WindowMode::kEqualLength) {
    TCOMP_CHECK_GT(options.window_length, 0.0);
  } else {
    TCOMP_CHECK_GT(options.min_objects, 0u);
  }
}

void SlidingWindowSnapshotter::EmitWindow(std::vector<Snapshot>* out) {
  if (window_.empty()) return;
  std::vector<ObjectPosition> positions;
  positions.reserve(window_.size());
  // tcomp-lint: allow(unordered-iter): Snapshot's ctor sorts by object id
  for (const auto& [oid, accum] : window_) {
    positions.push_back(ObjectPosition{
        oid, accum.sum / static_cast<double>(accum.count)});
  }
  out->push_back(Snapshot(std::move(positions), options_.snapshot_duration));
  window_.clear();
  ++emitted_;
}

Status SlidingWindowSnapshotter::Push(const TrajectoryRecord& record,
                                      std::vector<Snapshot>* out) {
  if (!std::isfinite(record.timestamp)) {
    return Status::InvalidArgument("non-finite record timestamp");
  }
  if (!std::isfinite(record.pos.x) || !std::isfinite(record.pos.y)) {
    // A NaN/Inf coordinate would poison the window average and, further
    // downstream, hit undefined behavior in the grid clusterers'
    // floor-and-cast cell computation. Reject it at the stream boundary.
    return Status::InvalidArgument("non-finite record position");
  }

  if (options_.mode == WindowMode::kEqualLength) {
    if (!window_started_) {
      // Anchor the first window at the first record's span boundary so
      // windows are [k·L, (k+1)·L) regardless of where the stream starts.
      window_start_ =
          std::floor(record.timestamp / options_.window_length) *
          options_.window_length;
      window_started_ = true;
    }
    // Close every window the new timestamp has moved past. Gaps produce no
    // empty snapshots — an empty window simply advances.
    while (record.timestamp >= window_start_ + options_.window_length) {
      EmitWindow(out);
      window_start_ += options_.window_length;
    }
    // Late records (timestamp < window_start_) fold into the current
    // window; see the class comment.
  }

  Accum& accum = window_[record.object];
  accum.sum = accum.sum + record.pos;
  ++accum.count;

  if (options_.mode == WindowMode::kEqualWidth &&
      window_.size() >= options_.min_objects) {
    EmitWindow(out);
  }
  return Status::OK();
}

void SlidingWindowSnapshotter::Flush(std::vector<Snapshot>* out) {
  EmitWindow(out);
  window_started_ = false;
}

}  // namespace tcomp
