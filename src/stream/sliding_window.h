#ifndef TCOMP_STREAM_SLIDING_WINDOW_H_
#define TCOMP_STREAM_SLIDING_WINDOW_H_

#include <unordered_map>
#include <vector>

#include "core/snapshot.h"
#include "stream/record.h"
#include "util/status.h"

namespace tcomp {

/// Snapshot-formation policy (paper Section VI).
enum class WindowMode {
  /// Equal length: one snapshot per fixed time span.
  kEqualLength,
  /// Equal width: a snapshot is emitted once enough distinct objects have
  /// reported a position.
  kEqualWidth,
};

struct SlidingWindowOptions {
  WindowMode mode = WindowMode::kEqualLength;
  /// Equal-length mode: time span of one snapshot, in seconds.
  double window_length = 60.0;
  /// Equal-width mode: distinct objects required to close a snapshot.
  size_t min_objects = 100;
  /// Duration value attached to emitted snapshots (the time unit candidate
  /// durations accumulate in). 1.0 makes δt mean "snapshots".
  double snapshot_duration = 1.0;
};

/// Batches a (possibly out-of-order, delayed) record stream into
/// snapshots using the sliding-window model of Section VI:
///  * multiple reports by one object within a window are averaged
///    (the paper's Fig. 22 multi-report rule);
///  * in equal-length mode a record with a timestamp past the current
///    window closes it (and any empty windows the gap spans);
///  * late records older than the current window are folded into the
///    current window rather than dropped — a bounded-staleness choice
///    matching the paper's tolerance discussion.
///
/// Empty-window contract: a window with no reports NEVER produces a
/// snapshot and never advances emitted(), wherever it occurs — a
/// mid-stream gap (the while loop skips over it), a trailing gap before
/// Flush(), or a Flush() with nothing buffered (including a second
/// Flush() in a row). Emitting zero-object snapshots would feed the
/// discoverers degenerate clustering inputs and make `snapshots_emitted`
/// depend on wall-clock gaps rather than data. Because the rule is the
/// same mid-stream and at end-of-stream, a batch run and a serve run over
/// the same records always agree on emitted() — the serve-vs-batch
/// differential test pins this.
///
/// Usage:
///   SlidingWindowSnapshotter win(options);
///   std::vector<Snapshot> ready;
///   for (const TrajectoryRecord& r : stream) {
///     win.Push(r, &ready);
///     for (const Snapshot& s : ready) discoverer->ProcessSnapshot(s, ...);
///     ready.clear();
///   }
///   win.Flush(&ready);
class SlidingWindowSnapshotter {
 public:
  explicit SlidingWindowSnapshotter(const SlidingWindowOptions& options);

  /// Feeds one record. Snapshots completed by it are appended to `out`.
  /// Returns InvalidArgument for non-finite timestamps.
  Status Push(const TrajectoryRecord& record, std::vector<Snapshot>* out);

  /// Emits the in-progress window (if it holds any reports).
  void Flush(std::vector<Snapshot>* out);

  /// Number of snapshots emitted so far.
  int64_t emitted() const { return emitted_; }

 private:
  struct Accum {
    Point sum;
    int count = 0;
  };

  void EmitWindow(std::vector<Snapshot>* out);

  SlidingWindowOptions options_;
  std::unordered_map<ObjectId, Accum> window_;
  double window_start_ = 0.0;
  bool window_started_ = false;
  int64_t emitted_ = 0;
};

}  // namespace tcomp

#endif  // TCOMP_STREAM_SLIDING_WINDOW_H_
