#ifndef TCOMP_STREAM_INACTIVE_PERIOD_H_
#define TCOMP_STREAM_INACTIVE_PERIOD_H_

#include <vector>

#include "core/snapshot.h"

namespace tcomp {

/// Missing-data tolerance (paper Section VI): if an object is absent from
/// a snapshot but its last report is at most `max_inactive_snapshots`
/// snapshots old, the system assumes it is still traveling with its
/// previous companions.
///
/// Filling is dead-reckoned: the object is placed at its last reported
/// position advanced by its last observed velocity × gap. For an object
/// that was moving with a group, that keeps it inside the group's cluster
/// (a plain position carry-forward would strand it several ε behind a
/// moving group within one snapshot, silently disabling the tolerance).
/// The extrapolation is wrong when the group turns during the outage —
/// which is exactly why precision degrades as the threshold grows
/// (Fig. 24a). An object seen only once has no velocity estimate and is
/// carried forward in place.
///
/// A threshold of 0 disables filling (strict mode).
class InactivePeriodFiller {
 public:
  explicit InactivePeriodFiller(int max_inactive_snapshots);

  /// Returns `snapshot` augmented with carried-forward objects.
  Snapshot Fill(const Snapshot& snapshot);

  /// Convenience: fills a whole stream.
  SnapshotStream FillStream(const SnapshotStream& stream);

  void Reset();

 private:
  struct LastSeen {
    Point pos;
    Point velocity;  // per snapshot; zero until two reports observed
    int64_t snapshot = -1;
  };

  int max_inactive_;
  int64_t current_ = 0;
  std::vector<LastSeen> last_;   // indexed by ObjectId
  std::vector<bool> known_;
};

}  // namespace tcomp

#endif  // TCOMP_STREAM_INACTIVE_PERIOD_H_
