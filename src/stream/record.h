#ifndef TCOMP_STREAM_RECORD_H_
#define TCOMP_STREAM_RECORD_H_

#include <cstdint>

#include "core/types.h"

namespace tcomp {

/// One raw stream item: an object reporting its position at a timestamp.
/// Items may arrive out of order and with per-device delays (paper Section
/// VI); the sliding window turns them into snapshots.
struct TrajectoryRecord {
  ObjectId object = 0;
  double timestamp = 0.0;  // seconds since stream epoch
  Point pos;
};

}  // namespace tcomp

#endif  // TCOMP_STREAM_RECORD_H_
