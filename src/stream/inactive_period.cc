#include "stream/inactive_period.h"

#include "util/logging.h"

namespace tcomp {

InactivePeriodFiller::InactivePeriodFiller(int max_inactive_snapshots)
    : max_inactive_(max_inactive_snapshots) {
  TCOMP_CHECK_GE(max_inactive_snapshots, 0);
}

void InactivePeriodFiller::Reset() {
  current_ = 0;
  last_.clear();
  known_.clear();
}

Snapshot InactivePeriodFiller::Fill(const Snapshot& snapshot) {
  std::vector<ObjectPosition> positions;
  positions.reserve(snapshot.size());
  for (size_t i = 0; i < snapshot.size(); ++i) {
    ObjectId oid = snapshot.id(i);
    positions.push_back(ObjectPosition{oid, snapshot.pos(i)});
    if (oid >= last_.size()) {
      last_.resize(oid + 1);
      known_.resize(oid + 1, false);
    }
    LastSeen& seen = last_[oid];
    if (known_[oid]) {
      int64_t gap = current_ - seen.snapshot;
      seen.velocity =
          (snapshot.pos(i) - seen.pos) / static_cast<double>(gap);
    }
    seen.pos = snapshot.pos(i);
    seen.snapshot = current_;
    known_[oid] = true;
  }
  if (max_inactive_ > 0) {
    for (ObjectId oid = 0; oid < known_.size(); ++oid) {
      if (!known_[oid] || snapshot.Contains(oid)) continue;
      int64_t gap = current_ - last_[oid].snapshot;
      if (gap <= max_inactive_) {
        // Dead reckoning: advance the last position by the last observed
        // velocity so the object stays with its moving companions.
        Point predicted =
            last_[oid].pos +
            last_[oid].velocity * static_cast<double>(gap);
        positions.push_back(ObjectPosition{oid, predicted});
      }
    }
  }
  ++current_;
  return Snapshot(std::move(positions), snapshot.duration());
}

SnapshotStream InactivePeriodFiller::FillStream(
    const SnapshotStream& stream) {
  SnapshotStream out;
  out.reserve(stream.size());
  for (const Snapshot& s : stream) out.push_back(Fill(s));
  return out;
}

}  // namespace tcomp
