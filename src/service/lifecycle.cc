#include "service/lifecycle.h"

#include <signal.h>

#include <atomic>
#include <chrono>
#include <thread>

namespace tcomp {
namespace {

// Written from the signal handler: must be a lock-free atomic of a
// signal-safe width, and nothing else may happen in the handler.
std::atomic<int> g_shutdown_signal{0};

void HandleShutdownSignal(int signum) {
  g_shutdown_signal.store(signum, std::memory_order_relaxed);
}

}  // namespace

void InstallShutdownSignalHandlers() {
  struct sigaction action;
  sigemptyset(&action.sa_mask);
  action.sa_handler = HandleShutdownSignal;
  // No SA_RESTART: blocking syscalls (poll in the accept/session loops)
  // return EINTR so those threads re-check the flag promptly.
  action.sa_flags = 0;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
}

bool ShutdownSignalReceived() {
  return g_shutdown_signal.load(std::memory_order_relaxed) != 0;
}

int ShutdownSignal() {
  return g_shutdown_signal.load(std::memory_order_relaxed);
}

void ResetShutdownSignalForTest() {
  g_shutdown_signal.store(0, std::memory_order_relaxed);
}

Status RunServiceUntilShutdown(CompanionServer* server,
                               ServicePipeline* pipeline) {
  while (!server->stop_requested() && !ShutdownSignalReceived()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  // Transport first: no new records can arrive while we drain.
  server->RequestStop();
  server->Wait();
  // Then the pipeline: drain queue → flush window → final checkpoint.
  return pipeline->Stop();
}

}  // namespace tcomp
