#ifndef TCOMP_SERVICE_SERVER_H_
#define TCOMP_SERVICE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "service/pipeline.h"
#include "service/socket.h"
#include "util/status.h"

namespace tcomp {

struct ServerOptions {
  /// Loopback port to listen on; 0 binds an ephemeral port (see port()).
  uint16_t port = 0;
  /// A session idle longer than this is disconnected.
  int read_timeout_ms = 60000;
  /// Per-response write budget; a client that stops reading is dropped.
  int write_timeout_ms = 10000;
  /// Granularity of the accept loop's stop-flag checks.
  int accept_poll_ms = 100;
};

/// Aggregated transport accounting (per-session parse errors fold in when
/// the session ends).
struct ServerCounters {
  int64_t sessions_opened = 0;
  int64_t sessions_closed = 0;
  int64_t parse_errors = 0;            // malformed/oversized lines, total
  int64_t midline_disconnects = 0;     // EOF with a partial line buffered
  int64_t read_timeouts = 0;           // sessions dropped for idleness
};

/// Loopback TCP front-end for one ServicePipeline: accepts clients on a
/// dedicated thread and serves each session on its own thread, pumping
/// bytes through LineFramer + ProtocolSession. A SHUTDOWN request (or
/// RequestStop() from the signal path) stops the accept loop and unwinds
/// every session; the caller then stops the pipeline, keeping the drain /
/// final-checkpoint sequencing in one place (service/lifecycle.cc).
class CompanionServer {
 public:
  CompanionServer(ServicePipeline* pipeline, const ServerOptions& options);
  ~CompanionServer();

  CompanionServer(const CompanionServer&) = delete;
  CompanionServer& operator=(const CompanionServer&) = delete;

  /// Binds, listens, and starts accepting. Call once.
  Status Start();

  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }

  /// Asynchronous stop trigger; idempotent, callable from any thread.
  void RequestStop();
  bool stop_requested() const {
    return stop_.load(std::memory_order_relaxed);
  }

  /// Joins the accept loop and every session thread. Returns only after
  /// RequestStop() (or a client SHUTDOWN) has been issued.
  void Wait();

  ServerCounters Counters() const;

  /// Session thread handles not yet reaped (includes live sessions).
  /// Exposed so tests can assert finished sessions are actually reaped.
  size_t SessionHandles() const;

 private:
  /// One connection's thread plus its completion flag. Heap-allocated so
  /// the handle stays put while sessions_ grows and shrinks around it;
  /// `done` is the thread's last store, after which the accept loop may
  /// join and destroy it.
  struct Session {
    std::thread thread;
    std::atomic<bool> done{false};
  };

  void AcceptLoop();
  void ServeConnection(Session* self, StreamSocket sock);
  /// Joins and discards every session whose thread has finished, so a
  /// long-running daemon does not accumulate dead thread handles.
  void ReapFinishedSessions();

  ServicePipeline* pipeline_;
  const ServerOptions options_;
  ListenSocket listener_;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::thread accept_thread_;

  mutable std::mutex mu_;             // guards sessions_ and counters_
  std::vector<std::unique_ptr<Session>> sessions_;
  ServerCounters counters_;
};

}  // namespace tcomp

#endif  // TCOMP_SERVICE_SERVER_H_
