#ifndef TCOMP_SERVICE_SERVER_H_
#define TCOMP_SERVICE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "service/admission.h"
#include "service/connection.h"
#include "service/pipeline.h"
#include "service/socket.h"
#include "util/status.h"

namespace tcomp {

struct ServerOptions {
  /// Loopback port to listen on; 0 binds an ephemeral port (see port()).
  uint16_t port = 0;
  /// A connection idle longer than this is disconnected.
  int read_timeout_ms = 60000;
  /// A connection whose peer stops reading (pending output makes no
  /// progress) for this long is dropped.
  int write_timeout_ms = 10000;
  /// Ceiling on the event loop's epoll_wait tick; also the stop-flag
  /// responsiveness bound (name kept from the thread-per-session server).
  int accept_poll_ms = 100;
  /// Per-connection write backpressure window: once this many response
  /// bytes are queued for a client, the server stops READING from that
  /// client until the backlog drains below half the window. One slow
  /// consumer throttles itself, never the loop or other clients.
  size_t write_backpressure_bytes = 256 * 1024;
  /// Hard cap on concurrent connections (0 = unlimited). Excess accepts
  /// get a best-effort error line and an immediate close.
  int max_connections = 0;
  /// Connection admission control driven by the PR 5 pipeline gauges
  /// (shed rate, p99 snapshot-close); disabled by default.
  AdmissionOptions admission;
};

/// Aggregated transport accounting (per-connection parse errors fold in
/// when the connection ends).
struct ServerCounters {
  int64_t sessions_opened = 0;
  int64_t sessions_closed = 0;
  int64_t parse_errors = 0;         // malformed lines/frames, total
  int64_t midline_disconnects = 0;  // EOF with a partial request buffered
  int64_t read_timeouts = 0;        // connections dropped for idleness
  int64_t write_timeouts = 0;       // dropped: peer stopped reading
  int64_t conns_rejected_limit = 0;      // over max_connections
  int64_t conns_rejected_admission = 0;  // admission breaker, kReject
  int64_t conns_shed_admission = 0;      // admission breaker, kShed
  int64_t accept_backoffs = 0;      // EMFILE-class accept stalls taken
  int64_t write_stalls = 0;         // reads paused by the write window
  int64_t binary_frames = 0;        // request frames decoded
  int64_t binary_records = 0;       // records received in INGEST batches
};

/// Loopback TCP front-end for one ServicePipeline: a single epoll event
/// loop drives a nonblocking listener and every connection's
/// ServiceConnection state machine — no thread per session. Both wire
/// protocols (text lines and binary frames) are served on the same port,
/// chosen per connection by its first byte. A SHUTDOWN request (or
/// RequestStop() from the signal path) drains every connection — parked
/// records are force-admitted, pending responses flushed, mid-frame
/// binary clients get a clean SHUTDOWN frame — before the caller stops
/// the pipeline (service/lifecycle.cc keeps that sequencing).
class CompanionServer {
 public:
  CompanionServer(ServicePipeline* pipeline, const ServerOptions& options);
  ~CompanionServer();

  CompanionServer(const CompanionServer&) = delete;
  CompanionServer& operator=(const CompanionServer&) = delete;

  /// Binds, listens, registers the server's metric series, and starts
  /// the event loop. Call once.
  Status Start();

  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }

  /// Asynchronous stop trigger; idempotent, callable from any thread.
  void RequestStop();
  bool stop_requested() const {
    return stop_.load(std::memory_order_relaxed);
  }

  /// Joins the event loop. Returns only after RequestStop() (or a client
  /// SHUTDOWN) has been issued.
  void Wait();

  ServerCounters Counters() const;

  /// Open connections currently owned by the event loop. (The name
  /// predates the event loop: it used to mean unreaped session-thread
  /// handles; "not yet cleaned up" now simply means "still open".)
  size_t SessionHandles() const;

 private:
  /// One connection's event-loop state: the socket, its protocol state
  /// machine, and flush/backpressure bookkeeping.
  struct Conn {
    StreamSocket sock;
    std::unique_ptr<ServiceConnection> logic;
    size_t out_off = 0;        // bytes of logic->out() already written
    uint32_t events = 0;       // epoll interest currently registered
    int idle_ms = 0;           // since last byte received
    int stall_ms = 0;          // since pending output last progressed
    bool read_paused = false;  // write window full or records parked
  };

  enum class CloseWhy { kEof, kError, kIdleTimeout, kWriteTimeout, kDrain };

  void EventLoop();
  void HandleAccepts();
  void HandleReadable(Conn* conn);
  /// One nonblocking drain attempt of conn's pending output. Returns
  /// false when the connection died (already closed and erased).
  bool FlushConn(Conn* conn);
  void UpdateInterest(Conn* conn);
  void CloseConn(int fd, CloseWhy why);
  void TickHousekeeping(int elapsed_ms);
  void SampleAdmission();
  void PublishMetrics();
  void DrainAndCloseAll();

  ServicePipeline* pipeline_;
  const ServerOptions options_;
  ListenSocket listener_;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  bool started_ = false;
  std::thread loop_thread_;
  int epoll_fd_ = -1;
  int wakeup_fd_ = -1;  // eventfd; RequestStop() kicks the loop
  bool listener_armed_ = false;
  int accept_backoff_ms_ = 0;       // current EMFILE backoff step
  int accept_backoff_left_ms_ = 0;  // remaining stall before re-arming

  // Ordered map so every sweep over connections (housekeeping, drain)
  // visits them deterministically; fd count stays far too small for the
  // lookup cost to matter.
  std::map<int, std::unique_ptr<Conn>> conns_;

  AdmissionController admission_;
  int admission_sample_left_ms_ = 0;
  int metrics_publish_left_ms_ = 0;

  mutable std::mutex mu_;  // guards counters_ (loop writes, callers read)
  ServerCounters counters_;

  // Event-loop metric series, registered into the pipeline's registry at
  // Start() (before the port is announced) so the exposition name set is
  // identical across runs and resume — values change, names never do.
  MetricCounter* m_conns_opened_ = nullptr;
  MetricCounter* m_conns_closed_ = nullptr;
  MetricCounter* m_parse_errors_ = nullptr;
  MetricCounter* m_rejected_admission_ = nullptr;
  MetricCounter* m_shed_admission_ = nullptr;
  MetricCounter* m_rejected_limit_ = nullptr;
  MetricCounter* m_binary_frames_ = nullptr;
  MetricCounter* m_binary_records_ = nullptr;
  MetricCounter* m_write_stalls_ = nullptr;
  MetricGauge* m_conns_open_ = nullptr;
  MetricGauge* m_admission_overloaded_ = nullptr;
};

}  // namespace tcomp

#endif  // TCOMP_SERVICE_SERVER_H_
