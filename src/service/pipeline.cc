#include "service/pipeline.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <utility>

#include "core/checkpoint.h"
#include "obs/discovery_metrics.h"
#include "util/logging.h"
#include "util/timer.h"

namespace tcomp {

ServicePipeline::ServicePipeline(const ServicePipelineOptions& options)
    : options_(options),
      queue_(options.queue_capacity, options.backpressure),
      window_(options.window),
      filler_(options.inactive_fill),
      stage_sink_(&metrics_) {}

ServicePipeline::~ServicePipeline() {
  Status s = Stop();
  if (!s.ok()) {
    TCOMP_LOG_WARNING << "pipeline shutdown: " << s.ToString();
  }
}

Status ServicePipeline::Start() {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (started_) return Status::InvalidArgument("pipeline already started");
  discoverer_ = MakeDiscoverer(options_.algorithm, options_.params);
  if (!options_.checkpoint_path.empty()) {
    std::ifstream probe(options_.checkpoint_path);
    if (probe.good()) {
      TCOMP_RETURN_IF_ERROR(LoadDiscovererFromFile(
          discoverer_.get(), options_.checkpoint_path));
      last_checkpoint_snapshot_ = discoverer_->stats().snapshots;
      resumed_ = true;
    }
  }
  // Stage reporting is timing-only: the serve-vs-batch differential runs
  // with the sink attached and stays byte-identical to the batch path.
  discoverer_->set_stage_sink(&stage_sink_);
  if (options_.shards > 1) {
    auto engine = std::make_unique<ShardedClusterEngine>(
        options_.params.cluster, options_.shards);
    engine->set_stage_sink(&stage_sink_);
    ShardedClusterEngine* raw = engine.get();
    if (discoverer_->SetClusterProvider(
            [raw](const Snapshot& snapshot, int64_t* distance_ops) {
              return raw->Cluster(snapshot, distance_ops);
            })) {
      shard_engine_ = std::move(engine);
    } else {
      // Fallback, not failure: the algorithm has no object-clustering
      // stage to shard (BU clusters buddies). Serve with the built-in
      // path — products are what --shards 1 would produce, i.e. still
      // byte-identical to batch — and say so once.
      shard_fallback_ = true;
      TCOMP_LOG_WARNING << "--shards " << options_.shards << " ignored: "
                        << discoverer_->name()
                        << " has no object-clustering stage to shard; "
                           "serving on the single-worker path";
    }
  }
  started_ = true;
  worker_ = std::thread(&ServicePipeline::WorkerLoop, this);
  return Status::OK();
}

Status ServicePipeline::Ingest(const TrajectoryRecord& record) {
  if (!std::isfinite(record.timestamp) || !std::isfinite(record.pos.x) ||
      !std::isfinite(record.pos.y)) {
    std::lock_guard<std::mutex> lock(state_mu_);
    ++records_invalid_;
    return Status::InvalidArgument("non-finite record field");
  }
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (!started_ || stopped_) {
      return Status::InvalidArgument("pipeline is not running");
    }
  }
  // The queue has its own lock; a kBlock stall here must not hold
  // state_mu_, or the worker could never drain and we would deadlock.
  // Admission latency includes any such stall — that is the signal: under
  // kBlock it is the backpressure the producer actually experienced.
  Timer admission_timer;
  admission_timer.Start();
  Status s = queue_.Push(record);
  admission_timer.Stop();
  stage_sink_.RecordStage(Stage::kIngestAdmission, admission_timer.Seconds());
  if (s.ok()) {
    std::lock_guard<std::mutex> lock(state_mu_);
    ++records_ingested_;
  }
  return s;
}

Status ServicePipeline::TryIngest(const TrajectoryRecord& record,
                                  bool* admitted) {
  *admitted = false;
  if (!std::isfinite(record.timestamp) || !std::isfinite(record.pos.x) ||
      !std::isfinite(record.pos.y)) {
    std::lock_guard<std::mutex> lock(state_mu_);
    ++records_invalid_;
    return Status::InvalidArgument("non-finite record field");
  }
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (!started_ || stopped_) {
      return Status::InvalidArgument("pipeline is not running");
    }
  }
  // Unlike Ingest(), a kBlock-full queue never stalls here: the event
  // loop parks the record and re-offers it on a later tick, so one slow
  // consumer cannot freeze every connection. Admission latency is only
  // recorded for the attempt that actually admits.
  Timer admission_timer;
  admission_timer.Start();
  Status s = queue_.TryPush(record, admitted);
  admission_timer.Stop();
  if (*admitted) {
    stage_sink_.RecordStage(Stage::kIngestAdmission,
                            admission_timer.Seconds());
    std::lock_guard<std::mutex> lock(state_mu_);
    ++records_ingested_;
  }
  return s;
}

void ServicePipeline::PushToWindow(const TrajectoryRecord& record) {
  // Records were validated at Ingest(); a Push failure here would mean
  // state corruption, so surface it loudly.
  Status s = window_.Push(record, &ready_);
  if (!s.ok()) {
    TCOMP_LOG_ERROR << "sliding window rejected queued record: "
                    << s.ToString();
    return;
  }
  ProcessReady();
}

void ServicePipeline::ProcessReady() {
  for (const Snapshot& snap : ready_) {
    Timer close_timer;
    close_timer.Start();
    discoverer_->ProcessSnapshot(filler_.Fill(snap), nullptr);
    close_timer.Stop();
    stage_sink_.RecordStage(Stage::kSnapshotClose, close_timer.Seconds());
    double wall_ms = close_timer.Seconds() * 1e3;
    if (options_.slow_snapshot_ms > 0.0 &&
        wall_ms > options_.slow_snapshot_ms) {
      // One structured line per slow snapshot: the whole-close wall time
      // plus the per-stage breakdown the discoverer just reported. The
      // stages are nested inside the close, so they need not sum to it
      // (fill, window bookkeeping, and report handling make the rest).
      char line[256];
      std::snprintf(
          line, sizeof(line),
          "slow snapshot: index=%lld wall_ms=%.3f maintain_ms=%.3f "
          "cluster_ms=%.3f intersect_ms=%.3f closure_ms=%.3f objects=%zu",
          static_cast<long long>(discoverer_->stats().snapshots),
          wall_ms, stage_sink_.last_seconds(Stage::kMaintain) * 1e3,
          stage_sink_.last_seconds(Stage::kCluster) * 1e3,
          stage_sink_.last_seconds(Stage::kIntersect) * 1e3,
          stage_sink_.last_seconds(Stage::kClosure) * 1e3, snap.size());
      TCOMP_LOG_WARNING << line;
    }
    if (options_.checkpoint_every > 0 &&
        discoverer_->stats().snapshots - last_checkpoint_snapshot_ >=
            options_.checkpoint_every) {
      Status s = CheckpointLocked();
      if (!s.ok()) {
        TCOMP_LOG_WARNING << "auto-checkpoint failed: " << s.ToString();
      }
    }
  }
  ready_.clear();
}

void ServicePipeline::DrainReorderBuffer(bool everything) {
  double watermark = max_timestamp_seen_ - options_.allowed_lateness;
  while (!reorder_.empty() &&
         (everything || reorder_.top().record.timestamp <= watermark)) {
    stage_sink_.RecordStage(
        Stage::kReorderHold,
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      reorder_.top().arrival)
            .count());
    PushToWindow(reorder_.top().record);
    reorder_.pop();
  }
}

void ServicePipeline::WorkerLoop() {
  TrajectoryRecord record;
  while (queue_.Pop(&record)) {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (options_.allowed_lateness <= 0.0) {
      // Lateness disabled: arrival order is stream order by contract, so
      // nothing is ever "late" and records_late_ stays 0.
      PushToWindow(record);
    } else {
      if (any_timestamp_seen_ &&
          record.timestamp <=
              max_timestamp_seen_ - options_.allowed_lateness) {
        // At or behind the watermark: its snapshot may already be closed.
        // `<=` matches DrainReorderBuffer's release rule — a record with
        // timestamp exactly at the watermark is immediately releasable,
        // i.e. the lateness bound no longer protects it, so it counts as
        // late. (It is still processed: the window folds it into the
        // current snapshot — bounded staleness, same as the batch path.)
        ++records_late_;
      }
      if (!any_timestamp_seen_ ||
          record.timestamp > max_timestamp_seen_) {
        max_timestamp_seen_ = record.timestamp;
        any_timestamp_seen_ = true;
      }
      reorder_.push(HeldRecord{record, std::chrono::steady_clock::now()});
      if (static_cast<int64_t>(reorder_.size()) > reorder_held_peak_) {
        reorder_held_peak_ = static_cast<int64_t>(reorder_.size());
      }
      DrainReorderBuffer(/*everything=*/false);
    }
    ++records_processed_;
    progress_cv_.notify_all();
  }
}

Status ServicePipeline::Flush() {
  std::unique_lock<std::mutex> lock(state_mu_);
  if (!started_ || stopped_) {
    return Status::InvalidArgument("pipeline is not running");
  }
  int64_t target = records_ingested_;
  // Records shed under kShedOldest leave the queue without ever reaching
  // the worker, so they count toward the barrier; waiting on processed
  // alone would never terminate once anything was shed. The queue is
  // FIFO for both pops and sheds, so processed + shed >= target means
  // every record admitted before this call has left the queue one way or
  // the other. (Queue-empty always satisfies the condition, and the
  // worker signals after every pop, so the wait cannot miss its wakeup.)
  progress_cv_.wait(lock, [&] {
    return stopped_ ||
           records_processed_ + queue_.Counters().shed >= target;
  });
  if (stopped_) {
    // A concurrent Stop() already drained the tail and wrote the final
    // checkpoint; re-running the drain here would process it twice.
    return Status::InvalidArgument("pipeline is not running");
  }
  DrainReorderBuffer(/*everything=*/true);
  window_.Flush(&ready_);
  ProcessReady();
  return Status::OK();
}

Status ServicePipeline::CheckpointLocked() {
  if (options_.checkpoint_path.empty()) return Status::OK();
  Timer write_timer;
  write_timer.Start();
  Status s = SaveDiscovererToFile(*discoverer_, options_.checkpoint_path);
  write_timer.Stop();
  stage_sink_.RecordStage(Stage::kCheckpointWrite, write_timer.Seconds());
  TCOMP_RETURN_IF_ERROR(s);
  ++checkpoints_written_;
  last_checkpoint_snapshot_ = discoverer_->stats().snapshots;
  return Status::OK();
}

Status ServicePipeline::Checkpoint() {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (!started_) return Status::InvalidArgument("pipeline is not running");
  return CheckpointLocked();
}

Status ServicePipeline::Stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (!started_ || stopped_) return Status::OK();
  }
  // Close the queue: producers start failing, the worker drains what is
  // left and exits. Join *without* state_mu_ (the worker takes it).
  queue_.Close();
  worker_.join();
  std::lock_guard<std::mutex> lock(state_mu_);
  stopped_ = true;
  progress_cv_.notify_all();
  // Everything admitted is now processed; emit the tail.
  DrainReorderBuffer(/*everything=*/true);
  window_.Flush(&ready_);
  ProcessReady();
  return CheckpointLocked();
}

bool ServicePipeline::started() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return started_;
}

std::vector<Companion> ServicePipeline::Companions() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (discoverer_ == nullptr) return {};
  return discoverer_->log().companions();
}

ServiceStats ServicePipeline::Stats() const {
  // Consistent cut, by fixed lock order: state_mu_ first, then the
  // queue's internal mutex inside Counters() — the same nesting Flush()
  // uses, so the order can never invert and deadlock. Holding state_mu_
  // freezes every pipeline counter (the worker bumps them only under
  // state_mu_) while Counters() samples pushed/popped/shed/depth in one
  // critical section of the queue mutex. Queue counters can still advance
  // relative to the frozen pipeline counters, but only in the direction
  // that preserves the ServiceStats invariants: a concurrent Push() grows
  // pushed before records_ingested_ is bumped (pushed >= ingested), and a
  // concurrent Pop() grows popped before the worker can take state_mu_ to
  // bump records_processed_ (popped >= processed, by at most the one
  // in-flight record). The depth sampled inside Counters() makes
  // pushed == popped + shed + depth exact, not torn.
  std::lock_guard<std::mutex> lock(state_mu_);
  ServiceStats stats;
  if (discoverer_ != nullptr) {
    stats.discovery = discoverer_->stats();
    stats.companions_distinct =
        static_cast<int64_t>(discoverer_->log().size());
  }
  stats.queue = queue_.Counters();
  stats.records_ingested = records_ingested_;
  stats.records_processed = records_processed_;
  stats.records_invalid = records_invalid_;
  stats.records_late = records_late_;
  stats.reorder_held_peak = reorder_held_peak_;
  stats.snapshots_emitted = window_.emitted();
  stats.checkpoints_written = checkpoints_written_;
  stats.resumed = resumed_;
  stats.shard_fallback = shard_fallback_;
  if (shard_engine_ != nullptr) {
    stats.shards = shard_engine_->num_shards();
    ShardEngineStats shard = shard_engine_->stats();
    stats.shard_snapshots = shard.snapshots;
    stats.shard_halo_objects = shard.halo_objects;
  }
  return stats;
}

std::string ServicePipeline::MetricsText() const {
  // Counter series are synced from the authoritative Stats() snapshot at
  // exposition time (their sources are monotonic, so Set() keeps counter
  // semantics); stage histograms record live and are read as-is. Every
  // series is (re-)registered on each call, so a single call exposes the
  // complete, deterministic name set — even before any data has flowed.
  ServiceStats stats = Stats();
  ExportDiscoveryMetrics(stats.discovery, stats.companions_distinct,
                         &metrics_);
  auto counter = [&](const char* name, const char* help, int64_t value) {
    metrics_.GetCounter(name, "", help)
        ->Set(static_cast<uint64_t>(value < 0 ? 0 : value));
  };
  auto gauge = [&](const char* name, const char* help, int64_t value) {
    metrics_.GetGauge(name, "", help)->Set(value);
  };
  counter("tcomp_records_ingested_total", "Records accepted by Ingest()",
          stats.records_ingested);
  counter("tcomp_records_processed_total",
          "Records consumed by the pipeline worker", stats.records_processed);
  counter("tcomp_records_invalid_total",
          "Records rejected before admission (non-finite fields)",
          stats.records_invalid);
  counter("tcomp_records_late_total",
          "Records at or behind the watermark on arrival",
          stats.records_late);
  counter("tcomp_queue_pushed_total", "Records admitted to the ingest queue",
          stats.queue.pushed);
  counter("tcomp_queue_popped_total",
          "Records handed from the queue to the worker", stats.queue.popped);
  counter("tcomp_queue_shed_total",
          "Records dropped by shed-oldest backpressure", stats.queue.shed);
  counter("tcomp_queue_rejected_total",
          "Pushes refused by reject backpressure", stats.queue.rejected);
  counter("tcomp_snapshots_emitted_total",
          "Snapshots closed by the sliding window", stats.snapshots_emitted);
  counter("tcomp_checkpoints_written_total", "Checkpoint files written",
          stats.checkpoints_written);
  gauge("tcomp_queue_depth", "Ingest queue depth at sampling time",
        stats.queue.depth);
  gauge("tcomp_queue_depth_peak", "High-watermark ingest queue depth",
        stats.queue.depth_peak);
  gauge("tcomp_reorder_held_peak",
        "High-watermark reorder-buffer size (records held)",
        stats.reorder_held_peak);
  gauge("tcomp_resumed", "1 if state was restored from a checkpoint",
        stats.resumed ? 1 : 0);
  gauge("tcomp_shard_fallback",
        "1 if --shards was requested but the algorithm cannot shard",
        stats.shard_fallback ? 1 : 0);
  // The engine's series (per-shard queue depths, halo counters) exist
  // only when sharding is live, so a server's exposed name set is stable
  // for its configuration. The pointer is written once in Start() under
  // state_mu_ (Stats() above synchronized with it); the engine's own
  // counters are monitoring-grade atomics.
  if (shard_engine_ != nullptr) shard_engine_->ExportMetrics(&metrics_);
  return metrics_.ExpositionText();
}

}  // namespace tcomp
