#include "service/pipeline.h"

#include <cmath>
#include <fstream>
#include <utility>

#include "core/checkpoint.h"
#include "util/logging.h"

namespace tcomp {

ServicePipeline::ServicePipeline(const ServicePipelineOptions& options)
    : options_(options),
      queue_(options.queue_capacity, options.backpressure),
      window_(options.window),
      filler_(options.inactive_fill) {}

ServicePipeline::~ServicePipeline() {
  Status s = Stop();
  if (!s.ok()) {
    TCOMP_LOG_WARNING << "pipeline shutdown: " << s.ToString();
  }
}

Status ServicePipeline::Start() {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (started_) return Status::InvalidArgument("pipeline already started");
  discoverer_ = MakeDiscoverer(options_.algorithm, options_.params);
  if (!options_.checkpoint_path.empty()) {
    std::ifstream probe(options_.checkpoint_path);
    if (probe.good()) {
      TCOMP_RETURN_IF_ERROR(LoadDiscovererFromFile(
          discoverer_.get(), options_.checkpoint_path));
      last_checkpoint_snapshot_ = discoverer_->stats().snapshots;
      resumed_ = true;
    }
  }
  started_ = true;
  worker_ = std::thread(&ServicePipeline::WorkerLoop, this);
  return Status::OK();
}

Status ServicePipeline::Ingest(const TrajectoryRecord& record) {
  if (!std::isfinite(record.timestamp) || !std::isfinite(record.pos.x) ||
      !std::isfinite(record.pos.y)) {
    std::lock_guard<std::mutex> lock(state_mu_);
    ++records_invalid_;
    return Status::InvalidArgument("non-finite record field");
  }
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (!started_ || stopped_) {
      return Status::InvalidArgument("pipeline is not running");
    }
  }
  // The queue has its own lock; a kBlock stall here must not hold
  // state_mu_, or the worker could never drain and we would deadlock.
  Status s = queue_.Push(record);
  if (s.ok()) {
    std::lock_guard<std::mutex> lock(state_mu_);
    ++records_ingested_;
  }
  return s;
}

void ServicePipeline::PushToWindow(const TrajectoryRecord& record) {
  // Records were validated at Ingest(); a Push failure here would mean
  // state corruption, so surface it loudly.
  Status s = window_.Push(record, &ready_);
  if (!s.ok()) {
    TCOMP_LOG_ERROR << "sliding window rejected queued record: "
                    << s.ToString();
    return;
  }
  ProcessReady();
}

void ServicePipeline::ProcessReady() {
  for (const Snapshot& snap : ready_) {
    discoverer_->ProcessSnapshot(filler_.Fill(snap), nullptr);
    if (options_.checkpoint_every > 0 &&
        discoverer_->stats().snapshots - last_checkpoint_snapshot_ >=
            options_.checkpoint_every) {
      Status s = CheckpointLocked();
      if (!s.ok()) {
        TCOMP_LOG_WARNING << "auto-checkpoint failed: " << s.ToString();
      }
    }
  }
  ready_.clear();
}

void ServicePipeline::DrainReorderBuffer(bool everything) {
  double watermark = max_timestamp_seen_ - options_.allowed_lateness;
  while (!reorder_.empty() &&
         (everything || reorder_.top().timestamp <= watermark)) {
    PushToWindow(reorder_.top());
    reorder_.pop();
  }
}

void ServicePipeline::WorkerLoop() {
  TrajectoryRecord record;
  while (queue_.Pop(&record)) {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (options_.allowed_lateness <= 0.0) {
      PushToWindow(record);
    } else {
      if (any_timestamp_seen_ &&
          record.timestamp <
              max_timestamp_seen_ - options_.allowed_lateness) {
        // Behind the watermark: its snapshot may already be closed. The
        // window folds it into the current one (bounded staleness), same
        // as the batch path; we only account for it here.
        ++records_late_;
      }
      if (!any_timestamp_seen_ ||
          record.timestamp > max_timestamp_seen_) {
        max_timestamp_seen_ = record.timestamp;
        any_timestamp_seen_ = true;
      }
      reorder_.push(record);
      if (static_cast<int64_t>(reorder_.size()) > reorder_held_peak_) {
        reorder_held_peak_ = static_cast<int64_t>(reorder_.size());
      }
      DrainReorderBuffer(/*everything=*/false);
    }
    ++records_processed_;
    progress_cv_.notify_all();
  }
}

Status ServicePipeline::Flush() {
  std::unique_lock<std::mutex> lock(state_mu_);
  if (!started_ || stopped_) {
    return Status::InvalidArgument("pipeline is not running");
  }
  int64_t target = records_ingested_;
  // Records shed under kShedOldest leave the queue without ever reaching
  // the worker, so they count toward the barrier; waiting on processed
  // alone would never terminate once anything was shed. The queue is
  // FIFO for both pops and sheds, so processed + shed >= target means
  // every record admitted before this call has left the queue one way or
  // the other. (Queue-empty always satisfies the condition, and the
  // worker signals after every pop, so the wait cannot miss its wakeup.)
  progress_cv_.wait(lock, [&] {
    return stopped_ ||
           records_processed_ + queue_.Counters().shed >= target;
  });
  if (stopped_) {
    // A concurrent Stop() already drained the tail and wrote the final
    // checkpoint; re-running the drain here would process it twice.
    return Status::InvalidArgument("pipeline is not running");
  }
  DrainReorderBuffer(/*everything=*/true);
  window_.Flush(&ready_);
  ProcessReady();
  return Status::OK();
}

Status ServicePipeline::CheckpointLocked() {
  if (options_.checkpoint_path.empty()) return Status::OK();
  TCOMP_RETURN_IF_ERROR(
      SaveDiscovererToFile(*discoverer_, options_.checkpoint_path));
  ++checkpoints_written_;
  last_checkpoint_snapshot_ = discoverer_->stats().snapshots;
  return Status::OK();
}

Status ServicePipeline::Checkpoint() {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (!started_) return Status::InvalidArgument("pipeline is not running");
  return CheckpointLocked();
}

Status ServicePipeline::Stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (!started_ || stopped_) return Status::OK();
  }
  // Close the queue: producers start failing, the worker drains what is
  // left and exits. Join *without* state_mu_ (the worker takes it).
  queue_.Close();
  worker_.join();
  std::lock_guard<std::mutex> lock(state_mu_);
  stopped_ = true;
  progress_cv_.notify_all();
  // Everything admitted is now processed; emit the tail.
  DrainReorderBuffer(/*everything=*/true);
  window_.Flush(&ready_);
  ProcessReady();
  return CheckpointLocked();
}

bool ServicePipeline::started() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return started_;
}

std::vector<Companion> ServicePipeline::Companions() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (discoverer_ == nullptr) return {};
  return discoverer_->log().companions();
}

ServiceStats ServicePipeline::Stats() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  ServiceStats stats;
  if (discoverer_ != nullptr) {
    stats.discovery = discoverer_->stats();
    stats.companions_distinct =
        static_cast<int64_t>(discoverer_->log().size());
  }
  stats.queue = queue_.Counters();
  stats.records_ingested = records_ingested_;
  stats.records_invalid = records_invalid_;
  stats.records_late = records_late_;
  stats.reorder_held_peak = reorder_held_peak_;
  stats.snapshots_emitted = window_.emitted();
  stats.checkpoints_written = checkpoints_written_;
  stats.resumed = resumed_;
  return stats;
}

}  // namespace tcomp
