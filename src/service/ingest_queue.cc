#include "service/ingest_queue.h"

#include <string>

#include "util/logging.h"

namespace tcomp {

const char* BackpressureModeName(BackpressureMode mode) {
  switch (mode) {
    case BackpressureMode::kBlock:
      return "block";
    case BackpressureMode::kShedOldest:
      return "shed";
    case BackpressureMode::kReject:
      return "reject";
  }
  return "unknown";
}

Status ParseBackpressureMode(const std::string& name,
                             BackpressureMode* mode) {
  if (name == "block") {
    *mode = BackpressureMode::kBlock;
  } else if (name == "shed" || name == "shed-oldest") {
    *mode = BackpressureMode::kShedOldest;
  } else if (name == "reject") {
    *mode = BackpressureMode::kReject;
  } else {
    return Status::InvalidArgument("unknown backpressure mode: " + name +
                                   " (expected block|shed|reject)");
  }
  return Status::OK();
}

IngestQueue::IngestQueue(size_t capacity, BackpressureMode mode)
    : capacity_(capacity), mode_(mode) {
  TCOMP_CHECK_GT(capacity, 0u);
}

Status IngestQueue::Push(const TrajectoryRecord& record) {
  std::unique_lock<std::mutex> lock(mu_);
  if (mode_ == BackpressureMode::kBlock) {
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
  }
  if (closed_) {
    return Status::InvalidArgument("ingest queue is closed");
  }
  if (items_.size() >= capacity_) {
    switch (mode_) {
      case BackpressureMode::kBlock:
        // Unreachable: the wait above only returns below capacity.
        break;
      case BackpressureMode::kShedOldest:
        items_.pop_front();
        ++counters_.shed;
        break;
      case BackpressureMode::kReject:
        ++counters_.rejected;
        return Status::OutOfRange("ingest queue full (capacity " +
                                  std::to_string(capacity_) + ")");
    }
  }
  items_.push_back(record);
  ++counters_.pushed;
  if (static_cast<int64_t>(items_.size()) > counters_.depth_peak) {
    counters_.depth_peak = static_cast<int64_t>(items_.size());
  }
  lock.unlock();
  not_empty_.notify_one();
  return Status::OK();
}

Status IngestQueue::TryPush(const TrajectoryRecord& record, bool* admitted) {
  *admitted = false;
  std::unique_lock<std::mutex> lock(mu_);
  if (closed_) {
    return Status::InvalidArgument("ingest queue is closed");
  }
  if (items_.size() >= capacity_) {
    switch (mode_) {
      case BackpressureMode::kBlock:
        // The caller retries later; nothing is counted until the record
        // is actually admitted or refused.
        return Status::OK();
      case BackpressureMode::kShedOldest:
        items_.pop_front();
        ++counters_.shed;
        break;
      case BackpressureMode::kReject:
        ++counters_.rejected;
        return Status::OutOfRange("ingest queue full (capacity " +
                                  std::to_string(capacity_) + ")");
    }
  }
  items_.push_back(record);
  ++counters_.pushed;
  if (static_cast<int64_t>(items_.size()) > counters_.depth_peak) {
    counters_.depth_peak = static_cast<int64_t>(items_.size());
  }
  *admitted = true;
  lock.unlock();
  not_empty_.notify_one();
  return Status::OK();
}

bool IngestQueue::Pop(TrajectoryRecord* out) {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
  if (items_.empty()) return false;  // closed and drained
  *out = items_.front();
  items_.pop_front();
  ++counters_.popped;
  lock.unlock();
  not_full_.notify_one();
  return true;
}

void IngestQueue::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool IngestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

size_t IngestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return items_.size();
}

IngestQueueCounters IngestQueue::Counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  IngestQueueCounters counters = counters_;
  counters.depth = static_cast<int64_t>(items_.size());
  return counters;
}

}  // namespace tcomp
