#include "service/server.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <utility>

#include "service/protocol.h"
#include "util/logging.h"

namespace tcomp {

CompanionServer::CompanionServer(ServicePipeline* pipeline,
                                 const ServerOptions& options)
    : pipeline_(pipeline), options_(options) {}

CompanionServer::~CompanionServer() {
  if (started_) {
    RequestStop();
    Wait();
  }
}

Status CompanionServer::Start() {
  if (started_) return Status::InvalidArgument("server already started");
  TCOMP_RETURN_IF_ERROR(ListenSocket::Listen(options_.port, &listener_));
  port_ = listener_.port();
  started_ = true;
  accept_thread_ = std::thread(&CompanionServer::AcceptLoop, this);
  return Status::OK();
}

// stop_ is a pure loop-exit flag: shutdown correctness comes from the
// joins in Wait(), not from ordering around the flag, so relaxed suffices.
void CompanionServer::RequestStop() {
  stop_.store(true, std::memory_order_relaxed);
}

void CompanionServer::Wait() {
  if (!started_) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  // The accept loop has exited, so sessions_ can no longer grow.
  std::vector<std::unique_ptr<Session>> sessions;
  {
    std::lock_guard<std::mutex> lock(mu_);
    sessions.swap(sessions_);
  }
  for (auto& session : sessions) session->thread.join();
}

ServerCounters CompanionServer::Counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

size_t CompanionServer::SessionHandles() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sessions_.size();
}

void CompanionServer::ReapFinishedSessions() {
  std::vector<std::unique_ptr<Session>> finished;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& session : sessions_) {
      // tcomp-lint: allow(atomic-strong-order): acquire pairs with the
      // release in ServeConnection; everything the session thread wrote
      // must be visible before we join and destroy it.
      if (session->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(session));
      }
    }
    sessions_.erase(
        std::remove(sessions_.begin(), sessions_.end(), nullptr),
        sessions_.end());
  }
  // `done` was each thread's final store, so these joins return at once.
  for (auto& session : finished) session->thread.join();
}

void CompanionServer::AcceptLoop() {
  int backoff_ms = 0;
  while (!stop_.load(std::memory_order_relaxed)) {
    ReapFinishedSessions();
    StreamSocket accepted;
    Status s = listener_.Accept(options_.accept_poll_ms, &accepted);
    if (s.code() == StatusCode::kOutOfRange) {
      // Transient resource exhaustion (EMFILE et al.): keep the listener
      // alive and retry with backoff — reaping above frees fds as
      // sessions finish. Exiting here would leave a daemon that can never
      // accept again.
      backoff_ms = std::min(backoff_ms == 0 ? 10 : backoff_ms * 2, 1000);
      TCOMP_LOG_WARNING << "accept (retrying in " << backoff_ms
                        << "ms): " << s.ToString();
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      continue;
    }
    if (!s.ok()) {
      // The listener itself is broken. A break alone would strand the
      // daemon alive-but-unreachable; request a full stop so
      // RunServiceUntilShutdown proceeds to drain and checkpoint.
      TCOMP_LOG_ERROR << "accept failed, stopping server: " << s.ToString();
      RequestStop();
      break;
    }
    backoff_ms = 0;
    if (!accepted.valid()) continue;  // poll timeout; re-check stop flag
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.sessions_opened;
    sessions_.push_back(std::make_unique<Session>());
    Session* session = sessions_.back().get();
    session->thread = std::thread(&CompanionServer::ServeConnection, this,
                                  session, std::move(accepted));
  }
  listener_.Close();
}

void CompanionServer::ServeConnection(Session* self, StreamSocket sock) {
  LineFramer framer;
  ProtocolSession session(pipeline_);
  char buf[4096];
  int idle_ms = 0;
  bool midline_eof = false;
  bool timed_out = false;
  // Short poll quanta keep the session responsive to the stop flag while
  // accumulating toward the configured idle timeout.
  const int quantum_ms = std::min(200, std::max(1, options_.read_timeout_ms));

  while (!stop_.load(std::memory_order_relaxed)) {
    size_t n = 0;
    Status rs = sock.Read(buf, sizeof(buf), quantum_ms, &n);
    if (rs.code() == StatusCode::kOutOfRange) {  // poll quantum elapsed
      idle_ms += quantum_ms;
      if (idle_ms >= options_.read_timeout_ms) {
        timed_out = true;
        break;
      }
      continue;
    }
    if (!rs.ok()) break;       // connection error
    if (n == 0) {              // orderly EOF
      midline_eof = framer.HasPartial();
      break;
    }
    idle_ms = 0;
    framer.Feed(buf, n);

    bool session_over = false;
    for (;;) {
      std::string line;
      LineFramer::Result r = framer.Next(&line);
      if (r == LineFramer::Result::kNeedMore) break;
      std::string response;
      bool shutdown_requested = false;
      if (r == LineFramer::Result::kOversize) {
        response = session.OversizeResponse();
      } else {
        response = session.HandleLine(line, &shutdown_requested);
      }
      // Respond before acting on SHUTDOWN so the client sees the ack.
      Status ws = sock.WriteAll(response, options_.write_timeout_ms);
      if (shutdown_requested) RequestStop();
      if (!ws.ok() || shutdown_requested) {
        session_over = true;
        break;
      }
    }
    if (session_over) break;
  }
  sock.Close();

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.sessions_closed;
    counters_.parse_errors += session.parse_errors();
    if (midline_eof) ++counters_.midline_disconnects;
    if (timed_out) ++counters_.read_timeouts;
  }
  // Last store: after this the accept loop may join and destroy *self.
  // tcomp-lint: allow(atomic-strong-order): release pairs with the
  // acquire load in ReapFinishedSessions.
  self->done.store(true, std::memory_order_release);
}

}  // namespace tcomp
