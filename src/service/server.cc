#include "service/server.h"

#include <errno.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>
#include <vector>

#include "core/stage.h"
#include "util/logging.h"
#include "util/timer.h"

namespace tcomp {
namespace {

/// Reads and discards the eventfd counter so a level-triggered epoll
/// stops reporting the wakeup fd as readable.
void DrainEventFd(int fd) {
  uint64_t value = 0;
  for (;;) {
    ssize_t rc = read(fd, &value, sizeof(value));
    if (rc < 0 && errno == EINTR) continue;
    // EAGAIN (already drained) and short reads both end the drain.
    break;
  }
}

}  // namespace

CompanionServer::CompanionServer(ServicePipeline* pipeline,
                                 const ServerOptions& options)
    : pipeline_(pipeline), options_(options), admission_(options.admission) {}

CompanionServer::~CompanionServer() {
  if (started_) {
    RequestStop();
    Wait();
  }
  // Backstop for a Start() that failed after creating the fds (the event
  // loop closes them on its way out otherwise).
  if (epoll_fd_ >= 0) close(epoll_fd_);
  if (wakeup_fd_ >= 0) close(wakeup_fd_);
}

Status CompanionServer::Start() {
  if (started_) return Status::InvalidArgument("server already started");
  TCOMP_RETURN_IF_ERROR(ListenSocket::Listen(options_.port, &listener_));
  TCOMP_RETURN_IF_ERROR(listener_.SetNonBlocking(true));
  port_ = listener_.port();

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    return Status::IoError(std::string("epoll_create1: ") + strerror(errno));
  }
  wakeup_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wakeup_fd_ < 0) {
    return Status::IoError(std::string("eventfd: ") + strerror(errno));
  }
  struct epoll_event ev;
  ev.events = EPOLLIN;
  ev.data.fd = wakeup_fd_;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wakeup_fd_, &ev) != 0) {
    return Status::IoError(std::string("epoll_ctl(wakeup): ") +
                           strerror(errno));
  }
  ev.events = EPOLLIN;
  ev.data.fd = listener_.fd();
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_.fd(), &ev) != 0) {
    return Status::IoError(std::string("epoll_ctl(listener): ") +
                           strerror(errno));
  }
  listener_armed_ = true;

  // Register every event-loop series up front: the exposition name set
  // must be identical across runs and resume regardless of which code
  // paths a particular run exercises.
  MetricsRegistry* reg = pipeline_->mutable_metrics();
  m_conns_opened_ = reg->GetCounter("tcomp_conns_opened_total", "",
                                    "Connections accepted by the event loop");
  m_conns_closed_ = reg->GetCounter("tcomp_conns_closed_total", "",
                                    "Connections closed by the event loop");
  m_parse_errors_ =
      reg->GetCounter("tcomp_conn_parse_errors_total", "",
                      "Malformed request lines and frames, all connections");
  m_rejected_admission_ = reg->GetCounter(
      "tcomp_conns_rejected_admission_total", "",
      "Connections refused with an error by the admission breaker");
  m_shed_admission_ =
      reg->GetCounter("tcomp_conns_shed_admission_total", "",
                      "Connections closed silently by the admission breaker");
  m_rejected_limit_ =
      reg->GetCounter("tcomp_conns_rejected_limit_total", "",
                      "Connections refused by the max-connections cap");
  m_binary_frames_ = reg->GetCounter("tcomp_binary_frames_total", "",
                                     "Binary request frames decoded");
  m_binary_records_ =
      reg->GetCounter("tcomp_binary_records_total", "",
                      "Records received in binary INGEST batches");
  m_write_stalls_ = reg->GetCounter(
      "tcomp_conn_write_stalls_total", "",
      "Reads paused because a client's write window filled");
  m_conns_open_ =
      reg->GetGauge("tcomp_conns_open", "", "Currently open connections");
  m_admission_overloaded_ = reg->GetGauge(
      "tcomp_admission_overloaded", "",
      "1 while the admission breaker considers the pipeline overloaded");

  started_ = true;
  loop_thread_ = std::thread(&CompanionServer::EventLoop, this);
  return Status::OK();
}

// stop_ is a pure loop-exit flag: shutdown correctness comes from the
// join in Wait(), not from ordering around the flag, so relaxed suffices.
void CompanionServer::RequestStop() {
  stop_.store(true, std::memory_order_relaxed);
  if (wakeup_fd_ >= 0) {
    uint64_t one = 1;
    // Best-effort kick: EINTR is retried; EAGAIN means the counter is
    // already nonzero, i.e. the loop is waking anyway.
    for (;;) {
      ssize_t rc = write(wakeup_fd_, &one, sizeof(one));
      if (rc < 0 && errno == EINTR) continue;
      break;
    }
  }
}

void CompanionServer::Wait() {
  if (!started_) return;
  if (loop_thread_.joinable()) loop_thread_.join();
}

ServerCounters CompanionServer::Counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

size_t CompanionServer::SessionHandles() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.sessions_opened > counters_.sessions_closed
             ? static_cast<size_t>(counters_.sessions_opened -
                                   counters_.sessions_closed)
             : 0;
}

void CompanionServer::EventLoop() {
  const int tick_ms = std::min(50, std::max(1, options_.accept_poll_ms));
  auto last_tick = std::chrono::steady_clock::now();
  std::vector<struct epoll_event> events(64);

  while (!stop_.load(std::memory_order_relaxed)) {
    int n = epoll_wait(epoll_fd_, events.data(),
                       static_cast<int>(events.size()), tick_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      TCOMP_LOG_ERROR << "epoll_wait failed, stopping server: "
                      << strerror(errno);
      RequestStop();
      break;
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const uint32_t ev = events[i].events;
      if (fd == wakeup_fd_) {
        DrainEventFd(wakeup_fd_);
        continue;
      }
      if (fd == listener_.fd()) {
        HandleAccepts();
        continue;
      }
      // The connection may have been closed by an earlier event in this
      // batch; stale entries simply miss.
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      if (ev & (EPOLLIN | EPOLLHUP | EPOLLERR)) {
        // HUP/ERR surface through the read path as EOF or an error.
        HandleReadable(it->second.get());
      }
      it = conns_.find(fd);
      if (it != conns_.end() && (ev & EPOLLOUT)) {
        if (FlushConn(it->second.get())) {
          UpdateInterest(it->second.get());
        }
      }
    }

    auto now = std::chrono::steady_clock::now();
    int elapsed_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(now - last_tick)
            .count());
    if (elapsed_ms > 0) {
      last_tick = now;
      TickHousekeeping(elapsed_ms);
    }
  }
  DrainAndCloseAll();
}

void CompanionServer::HandleAccepts() {
  if (!listener_armed_) return;
  for (;;) {
    if (stop_.load(std::memory_order_relaxed)) return;
    StreamSocket accepted;
    bool would_block = false;
    Status s = listener_.AcceptNonBlocking(&accepted, &would_block);
    if (s.code() == StatusCode::kOutOfRange) {
      // EMFILE-class exhaustion. Park the listener (deregister its
      // EPOLLIN so a level-triggered epoll does not spin on the pending
      // connection we cannot take) and re-arm after a backoff; closing
      // connections free fds in the meantime. The failed accept created
      // no fd, and every later failure path in this function closes the
      // accepted fd via StreamSocket's destructor — nothing leaks while
      // the backoff ticks down.
      accept_backoff_ms_ =
          std::min(accept_backoff_ms_ == 0 ? 10 : accept_backoff_ms_ * 2,
                   1000);
      accept_backoff_left_ms_ = accept_backoff_ms_;
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.accept_backoffs;
      }
      TCOMP_LOG_WARNING << "accept (backing off " << accept_backoff_ms_
                        << "ms): " << s.ToString();
      if (epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listener_.fd(), nullptr) == 0) {
        listener_armed_ = false;
      }
      return;
    }
    if (!s.ok()) {
      // The listener itself is broken. Request a full stop so
      // RunServiceUntilShutdown proceeds to drain and checkpoint instead
      // of stranding a daemon that is alive but unreachable.
      TCOMP_LOG_ERROR << "accept failed, stopping server: " << s.ToString();
      RequestStop();
      return;
    }
    if (would_block) return;
    if (!accepted.valid()) continue;  // peer vanished pre-accept
    accept_backoff_ms_ = 0;

    // From here on `accepted` owns the fd: every early `continue` below
    // destroys it and closes the descriptor — no failure path leaks the
    // fd that triggered it.
    if (options_.max_connections > 0 &&
        conns_.size() >= static_cast<size_t>(options_.max_connections)) {
      std::string line = "ERR OUT_OF_RANGE connection limit reached\n";
      size_t written = 0;
      bool wb = false;
      (void)accepted.WriteSome(line.data(), line.size(), &written, &wb);
      std::lock_guard<std::mutex> lock(mu_);
      ++counters_.conns_rejected_limit;
      continue;
    }
    if (admission_.enabled() && admission_.overloaded()) {
      if (admission_.policy() == AdmissionPolicy::kReject) {
        std::string line =
            "ERR OUT_OF_RANGE server overloaded, retry later\n";
        size_t written = 0;
        bool wb = false;
        (void)accepted.WriteSome(line.data(), line.size(), &written, &wb);
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.conns_rejected_admission;
      } else {
        std::lock_guard<std::mutex> lock(mu_);
        ++counters_.conns_shed_admission;
      }
      continue;
    }

    const int fd = accepted.fd();
    struct epoll_event ev;
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      // Registration failed: `accepted` still owns the fd and closes it
      // on this iteration's exit.
      TCOMP_LOG_WARNING << "epoll_ctl(conn): " << strerror(errno);
      continue;
    }
    auto conn = std::make_unique<Conn>();
    conn->sock = std::move(accepted);
    conn->logic = std::make_unique<ServiceConnection>(pipeline_);
    conn->events = EPOLLIN;
    conns_.emplace(fd, std::move(conn));
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.sessions_opened;
  }
}

void CompanionServer::HandleReadable(Conn* conn) {
  const int fd = conn->sock.fd();
  char buf[65536];
  for (;;) {
    size_t n = 0;
    bool would_block = false;
    Status s = conn->sock.ReadSome(buf, sizeof(buf), &n, &would_block);
    if (!s.ok()) {
      CloseConn(fd, CloseWhy::kError);
      return;
    }
    if (would_block) break;
    if (n == 0) {
      CloseConn(fd, CloseWhy::kEof);
      return;
    }
    conn->idle_ms = 0;
    conn->logic->Consume(buf, n);
    if (conn->logic->shutdown_requested()) RequestStop();
    if (conn->logic->fatal() || conn->logic->has_parked()) break;
    if (conn->logic->out().size() - conn->out_off >=
        options_.write_backpressure_bytes) {
      break;
    }
  }
  const size_t pending = conn->logic->out().size() - conn->out_off;
  const bool window_full = pending >= options_.write_backpressure_bytes;
  const bool pause = conn->logic->fatal() || conn->logic->has_parked() ||
                     window_full;
  if (pause && !conn->read_paused && window_full) {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.write_stalls;
  }
  conn->read_paused = pause;
  if (FlushConn(conn)) UpdateInterest(conn);
}

bool CompanionServer::FlushConn(Conn* conn) {
  std::string& out = conn->logic->out();
  if (conn->out_off >= out.size()) {
    if (conn->logic->fatal()) {
      CloseConn(conn->sock.fd(), CloseWhy::kError);
      return false;
    }
    return true;
  }
  Timer flush_timer;
  flush_timer.Start();
  size_t written = 0;
  bool would_block = false;
  Status s = conn->sock.WriteSome(out.data() + conn->out_off,
                                  out.size() - conn->out_off, &written,
                                  &would_block);
  flush_timer.Stop();
  pipeline_->stage_sink()->RecordStage(Stage::kConnFlush,
                                       flush_timer.Seconds());
  if (!s.ok()) {
    CloseConn(conn->sock.fd(), CloseWhy::kError);
    return false;
  }
  conn->out_off += written;
  if (written > 0) conn->stall_ms = 0;
  if (conn->out_off >= out.size()) {
    out.clear();
    conn->out_off = 0;
    if (conn->logic->fatal()) {
      // The error frame is on the wire; nothing more to say.
      CloseConn(conn->sock.fd(), CloseWhy::kError);
      return false;
    }
  }
  // Resume reading once the window drained below half — hysteresis so a
  // client hovering at the edge does not thrash interest updates.
  if (conn->read_paused && !conn->logic->has_parked() &&
      !conn->logic->fatal() &&
      out.size() - conn->out_off < options_.write_backpressure_bytes / 2) {
    conn->read_paused = false;
  }
  return true;
}

void CompanionServer::UpdateInterest(Conn* conn) {
  uint32_t want = 0;
  if (!conn->read_paused) want |= EPOLLIN;
  if (conn->out_off < conn->logic->out().size()) want |= EPOLLOUT;
  if (want == conn->events) return;
  struct epoll_event ev;
  ev.events = want;
  ev.data.fd = conn->sock.fd();
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->sock.fd(), &ev) == 0) {
    conn->events = want;
  }
}

void CompanionServer::CloseConn(int fd, CloseWhy why) {
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  ServiceConnection* logic = it->second->logic.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++counters_.sessions_closed;
    counters_.parse_errors += logic->parse_errors();
    counters_.binary_frames += logic->frames_decoded();
    counters_.binary_records += logic->records_batched();
    switch (why) {
      case CloseWhy::kEof:
        if (logic->has_partial_request()) ++counters_.midline_disconnects;
        break;
      case CloseWhy::kIdleTimeout:
        ++counters_.read_timeouts;
        break;
      case CloseWhy::kWriteTimeout:
        ++counters_.write_timeouts;
        break;
      case CloseWhy::kError:
      case CloseWhy::kDrain:
        break;
    }
  }
  // Closing the fd drops it from the epoll set automatically.
  conns_.erase(it);
}

void CompanionServer::TickHousekeeping(int elapsed_ms) {
  // Re-arm a parked listener once its backoff expires.
  if (!listener_armed_) {
    accept_backoff_left_ms_ -= elapsed_ms;
    if (accept_backoff_left_ms_ <= 0) {
      struct epoll_event ev;
      ev.events = EPOLLIN;
      ev.data.fd = listener_.fd();
      if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listener_.fd(), &ev) == 0) {
        listener_armed_ = true;
        HandleAccepts();  // catch up on the queue that built up
      }
    }
  }

  // Snapshot the fd set first: closing a connection mutates conns_.
  std::vector<int> fds;
  fds.reserve(conns_.size());
  for (const auto& entry : conns_) fds.push_back(entry.first);
  for (int fd : fds) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    Conn* conn = it->second.get();

    // Re-offer parked records; success may also unlock buffered parsing.
    if (conn->logic->has_parked()) {
      (void)conn->logic->RetryParked();
      if (!conn->logic->has_parked()) conn->idle_ms = 0;
    }
    if (conn->read_paused && !conn->logic->has_parked() &&
        !conn->logic->fatal() &&
        conn->logic->out().size() - conn->out_off <
            options_.write_backpressure_bytes / 2) {
      conn->read_paused = false;
    }
    if (!FlushConn(conn)) continue;  // connection died
    if (conn->logic->shutdown_requested()) RequestStop();

    const size_t pending = conn->logic->out().size() - conn->out_off;
    if (pending > 0) {
      conn->stall_ms += elapsed_ms;
      if (options_.write_timeout_ms > 0 &&
          conn->stall_ms >= options_.write_timeout_ms) {
        CloseConn(fd, CloseWhy::kWriteTimeout);
        continue;
      }
    }
    conn->idle_ms += elapsed_ms;
    if (options_.read_timeout_ms > 0 &&
        conn->idle_ms >= options_.read_timeout_ms) {
      CloseConn(fd, CloseWhy::kIdleTimeout);
      continue;
    }
    UpdateInterest(conn);
  }

  if (admission_.enabled()) {
    admission_sample_left_ms_ -= elapsed_ms;
    if (admission_sample_left_ms_ <= 0) {
      admission_sample_left_ms_ = 100;
      SampleAdmission();
    }
  }
  metrics_publish_left_ms_ -= elapsed_ms;
  if (metrics_publish_left_ms_ <= 0) {
    metrics_publish_left_ms_ = 250;
    PublishMetrics();
  }
}

void CompanionServer::SampleAdmission() {
  ServiceStats stats = pipeline_->Stats();
  AdmissionSample sample;
  // Offered = every record a client tried to push; refused = the ones
  // the queue dropped (shed evicts an old record to admit the new one,
  // reject refuses the new one outright).
  sample.offered = stats.queue.pushed + stats.queue.rejected;
  sample.refused = stats.queue.shed + stats.queue.rejected;
  sample.p99_close_ms =
      pipeline_->stage_sink()->histogram(Stage::kSnapshotClose)->Snap().p99() *
      1000.0;
  admission_.Update(sample);
}

void CompanionServer::PublishMetrics() {
  ServerCounters c;
  {
    std::lock_guard<std::mutex> lock(mu_);
    c = counters_;
  }
  m_conns_opened_->Set(static_cast<uint64_t>(c.sessions_opened));
  m_conns_closed_->Set(static_cast<uint64_t>(c.sessions_closed));
  m_parse_errors_->Set(static_cast<uint64_t>(c.parse_errors));
  m_rejected_admission_->Set(
      static_cast<uint64_t>(c.conns_rejected_admission));
  m_shed_admission_->Set(static_cast<uint64_t>(c.conns_shed_admission));
  m_rejected_limit_->Set(static_cast<uint64_t>(c.conns_rejected_limit));
  m_binary_frames_->Set(static_cast<uint64_t>(c.binary_frames));
  m_binary_records_->Set(static_cast<uint64_t>(c.binary_records));
  m_write_stalls_->Set(static_cast<uint64_t>(c.write_stalls));
  m_conns_open_->Set(static_cast<int64_t>(conns_.size()));
  m_admission_overloaded_->Set(admission_.overloaded() ? 1 : 0);
}

void CompanionServer::DrainAndCloseAll() {
  // Stop taking new work first.
  if (listener_armed_) {
    (void)epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listener_.fd(), nullptr);
    listener_armed_ = false;
  }
  listener_.Close();

  // Give every connection its goodbye — force-admit parked records
  // (completing acknowledged batches atomically; the pipeline is still
  // running at this point) and queue clean SHUTDOWN frames for binary
  // clients caught mid-frame.
  for (auto& entry : conns_) entry.second->logic->PrepareShutdown();

  // Best-effort flush with a bounded per-connection budget. These are
  // nonblocking fds: WriteAll's EAGAIN handling (poll + resume at the
  // unwritten suffix) is exactly what keeps a slow reader from seeing a
  // truncated response here.
  const int budget_ms =
      std::min(options_.write_timeout_ms > 0 ? options_.write_timeout_ms
                                             : 2000,
               2000);
  for (auto& entry : conns_) {
    Conn* conn = entry.second.get();
    std::string& out = conn->logic->out();
    if (conn->out_off < out.size()) {
      (void)conn->sock.WriteAll(out.substr(conn->out_off), budget_ms);
      conn->out_off = out.size();
    }
  }
  while (!conns_.empty()) {
    CloseConn(conns_.begin()->first, CloseWhy::kDrain);
  }
  PublishMetrics();
  // epoll_fd_/wakeup_fd_ stay open until the destructor: RequestStop()
  // may still be called concurrently (signal path, redundant client
  // SHUTDOWNs) and must be able to poke the eventfd safely.
}

}  // namespace tcomp
