#ifndef TCOMP_SERVICE_CONNECTION_H_
#define TCOMP_SERVICE_CONNECTION_H_

#include <cstdint>
#include <deque>
#include <string>

#include "service/binary_protocol.h"
#include "service/pipeline.h"
#include "service/protocol.h"

namespace tcomp {

/// Which wire protocol a connection speaks, decided by its first byte:
/// 0xAB (the binary request magic) selects binary framing, anything else
/// is the line protocol. The choice is sticky for the connection's life.
enum class WireProtocol { kUnknown, kText, kBinary };

/// One client's transport-free state machine for the event-loop server:
/// the loop feeds raw received bytes into Consume() and drains out(); a
/// test can do exactly the same without a socket. Handles protocol
/// sniffing, both framers, request dispatch, and response pipelining —
/// any number of requests may arrive in one read, and every response is
/// appended in request order.
///
/// Backpressure toward the pipeline is nonblocking: when the admission
/// queue is full under kBlock, the in-progress record batch is parked and
/// parsing pauses (responses stay in order); the server re-offers parked
/// records each tick via RetryParked(). The connection NEVER blocks the
/// event loop inside an admission call.
class ServiceConnection {
 public:
  explicit ServiceConnection(ServicePipeline* pipeline);

  /// Feeds received bytes and advances the state machine as far as
  /// admission allows. Responses accumulate in out().
  void Consume(const char* data, size_t n);

  /// Re-offers parked records, then resumes parsing buffered input.
  /// Returns true when any progress was made (records admitted or
  /// response bytes appended) — the server's cue to re-arm writes.
  bool RetryParked();

  /// Records waiting for queue room (kBlock backpressure).
  bool has_parked() const { return !parked_.empty(); }

  /// Graceful-drain hook, called by the server before closing during
  /// shutdown while the pipeline is still accepting: force-admits parked
  /// records with the blocking Ingest() (completing any fully-received
  /// batch atomically) and, when a binary client is caught mid-frame,
  /// appends one clean SHUTDOWN response frame — never a truncated one.
  /// The partially received frame itself is NOT admitted; the client
  /// re-sends it after resume, which is what keeps kill+resume
  /// byte-identical when the kill lands mid-INGEST-batch.
  void PrepareShutdown();

  /// True once a SHUTDOWN request was handled (response already queued).
  bool shutdown_requested() const { return shutdown_requested_; }

  /// True when the connection must be closed after out() drains
  /// (unrecoverable binary framing fault).
  bool fatal() const { return fatal_; }

  WireProtocol protocol() const { return protocol_; }

  /// True when the peer stopped mid-request (no final LF / incomplete
  /// frame) — the server's midline-disconnect accounting on EOF.
  bool has_partial_request() const;

  /// Malformed requests seen on this connection (text parse errors,
  /// oversize lines, bad frames).
  int64_t parse_errors() const { return session_.parse_errors(); }

  int64_t frames_decoded() const { return frames_decoded_; }
  int64_t records_batched() const { return records_batched_; }

  /// Pending response bytes. The server (or test) consumes from the
  /// front; Connection only ever appends.
  std::string& out() { return out_; }

 private:
  void Pump();
  void HandleTextLine(const std::string& line);
  void HandleFrame(const BinaryFrame& frame);
  /// Admits as much of parked_ as the queue accepts without blocking.
  /// Returns true on any admission/response progress.
  bool DrainParked();
  void FinishBatchIfComplete();
  void AppendBinaryError(const Status& status);

  ServicePipeline* pipeline_;
  ProtocolSession session_;
  WireProtocol protocol_ = WireProtocol::kUnknown;
  LineFramer line_framer_;
  BinaryFramer binary_framer_;

  std::string out_;
  std::deque<TrajectoryRecord> parked_;

  // An INGEST_BATCH whose ack is deferred until every record is disposed
  // of (admitted or refused). Text ingests park at most one record and
  // ack per record, so they never populate these.
  bool batch_open_ = false;
  uint64_t batch_accepted_ = 0;
  uint64_t batch_refused_ = 0;

  bool shutdown_requested_ = false;
  bool fatal_ = false;
  int64_t frames_decoded_ = 0;
  int64_t records_batched_ = 0;
};

}  // namespace tcomp

#endif  // TCOMP_SERVICE_CONNECTION_H_
