#include "service/binary_protocol.h"

#include <cstring>

namespace tcomp {
namespace {

void AppendU32(std::string* out, uint32_t v) {
  char b[4];
  b[0] = static_cast<char>(v & 0xFF);
  b[1] = static_cast<char>((v >> 8) & 0xFF);
  b[2] = static_cast<char>((v >> 16) & 0xFF);
  b[3] = static_cast<char>((v >> 24) & 0xFF);
  out->append(b, 4);
}

void AppendU64(std::string* out, uint64_t v) {
  AppendU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  AppendU32(out, static_cast<uint32_t>(v >> 32));
}

void AppendDouble(std::string* out, double v) {
  // Doubles travel as their IEEE-754 bit pattern, serialized LE via the
  // integer path so the wire format does not depend on host endianness.
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

uint32_t ReadU32(const char* p) {
  const unsigned char* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}

uint64_t ReadU64(const char* p) {
  return static_cast<uint64_t>(ReadU32(p)) |
         (static_cast<uint64_t>(ReadU32(p + 4)) << 32);
}

double ReadDouble(const char* p) {
  uint64_t bits = ReadU64(p);
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

}  // namespace

void BinaryFramer::Feed(const char* data, size_t n) {
  if (broken_) return;  // poisoned: nothing past the fault is trusted
  buffer_.append(data, n);
}

BinaryFramer::Result BinaryFramer::Next(BinaryFrame* frame,
                                        std::string* error) {
  if (broken_) {
    *error = reason_;
    return Result::kBad;
  }
  // Magic and version are validated as soon as their bytes exist — a
  // confused peer (text line, response stream) faults on its first bytes
  // instead of sitting unanswered below the header-size threshold.
  if (!buffer_.empty() &&
      static_cast<unsigned char>(buffer_[0]) != kBinaryRequestMagic) {
    broken_ = true;
    reason_ = "bad frame magic";
    *error = reason_;
    return Result::kBad;
  }
  if (buffer_.size() >= 2 &&
      static_cast<unsigned char>(buffer_[1]) != kBinaryVersion) {
    broken_ = true;
    reason_ = "unsupported frame version " +
              std::to_string(static_cast<unsigned char>(buffer_[1]));
    *error = reason_;
    return Result::kBad;
  }
  if (buffer_.size() < kBinaryRequestHeaderBytes) return Result::kNeedMore;
  const uint32_t payload_len = ReadU32(buffer_.data() + 4);
  if (payload_len > kMaxBinaryPayloadBytes) {
    // Unlike an oversized text line there is no LF to resync at: the
    // declared length is the only framing, and it just told us to skip
    // past the buffering cap. Poison the framer; the caller sends one
    // error frame and closes.
    broken_ = true;
    reason_ = "frame payload " + std::to_string(payload_len) +
              " bytes exceeds cap of " +
              std::to_string(kMaxBinaryPayloadBytes);
    buffer_.clear();
    *error = reason_;
    return Result::kBad;
  }
  const size_t total = kBinaryRequestHeaderBytes + payload_len;
  if (buffer_.size() < total) return Result::kNeedMore;
  frame->type = static_cast<uint8_t>(buffer_[2]);
  frame->arg = static_cast<uint8_t>(buffer_[3]);
  frame->payload.assign(buffer_, kBinaryRequestHeaderBytes, payload_len);
  buffer_.erase(0, total);
  return Result::kFrame;
}

std::string EncodeBinaryRequest(BinaryRequestType type, uint8_t arg,
                                const std::string& payload) {
  std::string out;
  out.reserve(kBinaryRequestHeaderBytes + payload.size());
  out.push_back(static_cast<char>(kBinaryRequestMagic));
  out.push_back(static_cast<char>(kBinaryVersion));
  out.push_back(static_cast<char>(type));
  out.push_back(static_cast<char>(arg));
  AppendU32(&out, static_cast<uint32_t>(payload.size()));
  out += payload;
  return out;
}

std::string EncodeIngestBatch(const TrajectoryRecord* records, size_t n) {
  std::string payload;
  payload.reserve(n * kBinaryRecordBytes);
  for (size_t i = 0; i < n; ++i) {
    AppendU32(&payload, records[i].object);
    AppendDouble(&payload, records[i].timestamp);
    AppendDouble(&payload, records[i].pos.x);
    AppendDouble(&payload, records[i].pos.y);
  }
  return EncodeBinaryRequest(BinaryRequestType::kIngestBatch, 0, payload);
}

Status DecodeIngestPayload(const std::string& payload,
                           std::vector<TrajectoryRecord>* out) {
  if (payload.size() % kBinaryRecordBytes != 0) {
    return Status::InvalidArgument(
        "INGEST_BATCH payload of " + std::to_string(payload.size()) +
        " bytes is not a multiple of the " +
        std::to_string(kBinaryRecordBytes) + "-byte record size");
  }
  const size_t n = payload.size() / kBinaryRecordBytes;
  out->clear();
  out->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const char* p = payload.data() + i * kBinaryRecordBytes;
    TrajectoryRecord r;
    r.object = ReadU32(p);
    r.timestamp = ReadDouble(p + 4);
    r.pos.x = ReadDouble(p + 12);
    r.pos.y = ReadDouble(p + 20);
    out->push_back(r);
  }
  return Status::OK();
}

std::string EncodeBinaryResponse(BinaryResponseType type, uint8_t code,
                                 uint64_t value, const std::string& payload) {
  std::string out;
  out.reserve(kBinaryResponseHeaderBytes + payload.size());
  out.push_back(static_cast<char>(kBinaryResponseMagic));
  out.push_back(static_cast<char>(kBinaryVersion));
  out.push_back(static_cast<char>(type));
  out.push_back(static_cast<char>(code));
  AppendU32(&out, static_cast<uint32_t>(payload.size()));
  AppendU64(&out, value);
  out += payload;
  return out;
}

void BinaryResponseReader::Feed(const char* data, size_t n) {
  if (broken_) return;
  buffer_.append(data, n);
}

BinaryResponseReader::Result BinaryResponseReader::Next(
    BinaryResponse* response, std::string* error) {
  if (broken_) {
    *error = reason_;
    return Result::kBad;
  }
  if (!buffer_.empty() &&
      static_cast<unsigned char>(buffer_[0]) != kBinaryResponseMagic) {
    broken_ = true;
    reason_ = "bad response frame header";
    *error = reason_;
    return Result::kBad;
  }
  if (buffer_.size() >= 2 &&
      static_cast<unsigned char>(buffer_[1]) != kBinaryVersion) {
    broken_ = true;
    reason_ = "bad response frame header";
    *error = reason_;
    return Result::kBad;
  }
  if (buffer_.size() < kBinaryResponseHeaderBytes) return Result::kNeedMore;
  const uint32_t payload_len = ReadU32(buffer_.data() + 4);
  if (payload_len > kMaxBinaryPayloadBytes) {
    broken_ = true;
    reason_ = "response payload exceeds cap";
    *error = reason_;
    return Result::kBad;
  }
  const size_t total = kBinaryResponseHeaderBytes + payload_len;
  if (buffer_.size() < total) return Result::kNeedMore;
  response->type = static_cast<uint8_t>(buffer_[2]);
  response->code = static_cast<uint8_t>(buffer_[3]);
  response->value = ReadU64(buffer_.data() + 8);
  response->payload.assign(buffer_, kBinaryResponseHeaderBytes, payload_len);
  buffer_.erase(0, total);
  return Result::kFrame;
}

}  // namespace tcomp
