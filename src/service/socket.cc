#include "service/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>

namespace tcomp {
namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + std::string(strerror(errno)));
}

/// Waits for `events` on fd. Returns OK with *ready=false on timeout.
Status PollFd(int fd, short events, int timeout_ms, bool* ready) {
  struct pollfd pfd;
  pfd.fd = fd;
  pfd.events = events;
  pfd.revents = 0;
  for (;;) {
    int rc = poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;  // signals are handled elsewhere
      return Errno("poll");
    }
    *ready = rc > 0;
    return Status::OK();
  }
}

Status SetFdNonBlocking(int fd, bool enable, const char* what) {
  if (fd < 0) return Status::IoError(std::string(what) + " on closed socket");
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  int want = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want != flags && fcntl(fd, F_SETFL, want) < 0) {
    return Errno("fcntl(F_SETFL)");
  }
  return Status::OK();
}

}  // namespace

StreamSocket::~StreamSocket() { Close(); }

StreamSocket::StreamSocket(StreamSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)) {}

StreamSocket& StreamSocket::operator=(StreamSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void StreamSocket::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status StreamSocket::Connect(uint16_t port, int timeout_ms,
                             StreamSocket* out) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  StreamSocket sock(fd);

  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  // Loopback connects complete immediately or fail; a plain blocking
  // connect with the kernel's timeout is fine (timeout_ms guards reads).
  (void)timeout_ms;
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
              sizeof(addr)) != 0) {
    return Errno("connect to 127.0.0.1:" + std::to_string(port));
  }
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  *out = std::move(sock);
  return Status::OK();
}

Status StreamSocket::Read(char* buf, size_t n, int timeout_ms,
                          size_t* read_out) {
  *read_out = 0;
  if (fd_ < 0) return Status::IoError("read on closed socket");
  for (;;) {
    bool ready = false;
    TCOMP_RETURN_IF_ERROR(PollFd(fd_, POLLIN, timeout_ms, &ready));
    if (!ready) return Status::OutOfRange("read timeout");
    ssize_t rc = read(fd_, buf, n);
    if (rc < 0) {
      if (errno == EINTR) continue;
      // A nonblocking descriptor can report ready and still return
      // EAGAIN (spurious wakeup, or another thread drained it). That is
      // a "not yet", not an error: re-poll instead of tearing the
      // session down.
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Errno("read");
    }
    *read_out = static_cast<size_t>(rc);
    return Status::OK();
  }
}

Status StreamSocket::WriteAll(const std::string& data, int timeout_ms) {
  if (fd_ < 0) return Status::IoError("write on closed socket");
  size_t off = 0;
  while (off < data.size()) {
    bool ready = false;
    TCOMP_RETURN_IF_ERROR(PollFd(fd_, POLLOUT, timeout_ms, &ready));
    if (!ready) return Status::OutOfRange("write timeout");
    ssize_t rc = write(fd_, data.data() + off, data.size() - off);
    if (rc < 0) {
      if (errno == EINTR) continue;
      // On a nonblocking descriptor a full send buffer surfaces as
      // EAGAIN even right after POLLOUT (the slow-reader race). Failing
      // here used to abandon the unwritten suffix — the peer saw a
      // response truncated mid-frame. Re-poll and resume at `off`.
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Errno("write");
    }
    off += static_cast<size_t>(rc);
  }
  return Status::OK();
}

Status StreamSocket::SetNonBlocking(bool enable) {
  return SetFdNonBlocking(fd_, enable, "fcntl");
}

Status StreamSocket::ReadSome(char* buf, size_t n, size_t* read_out,
                              bool* would_block) {
  *read_out = 0;
  *would_block = false;
  if (fd_ < 0) return Status::IoError("read on closed socket");
  for (;;) {
    ssize_t rc = read(fd_, buf, n);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        *would_block = true;
        return Status::OK();
      }
      return Errno("read");
    }
    *read_out = static_cast<size_t>(rc);
    return Status::OK();
  }
}

Status StreamSocket::WriteSome(const char* data, size_t n, size_t* written,
                               bool* would_block) {
  *written = 0;
  *would_block = false;
  if (fd_ < 0) return Status::IoError("write on closed socket");
  while (*written < n) {
    ssize_t rc = write(fd_, data + *written, n - *written);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        *would_block = true;
        return Status::OK();
      }
      return Errno("write");
    }
    *written += static_cast<size_t>(rc);
  }
  return Status::OK();
}

ListenSocket::~ListenSocket() { Close(); }

ListenSocket::ListenSocket(ListenSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0)) {}

ListenSocket& ListenSocket::operator=(ListenSocket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

void ListenSocket::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status ListenSocket::Listen(uint16_t port, ListenSocket* out) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  ListenSocket sock;
  sock.fd_ = fd;

  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  struct sockaddr_in addr;
  memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
           sizeof(addr)) != 0) {
    return Errno("bind 127.0.0.1:" + std::to_string(port));
  }
  if (listen(fd, 16) != 0) return Errno("listen");

  socklen_t len = sizeof(addr);
  if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
      0) {
    return Errno("getsockname");
  }
  sock.port_ = ntohs(addr.sin_port);
  *out = std::move(sock);
  return Status::OK();
}

Status ListenSocket::Accept(int timeout_ms, StreamSocket* accepted) {
  *accepted = StreamSocket();
  if (fd_ < 0) return Status::IoError("accept on closed socket");
  bool ready = false;
  TCOMP_RETURN_IF_ERROR(PollFd(fd_, POLLIN, timeout_ms, &ready));
  if (!ready) return Status::OK();  // timeout: *accepted stays invalid
  for (;;) {
    int fd = accept(fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // The pending connection died before we got to it: nothing to
      // serve, nothing wrong with the listener. Report it like a poll
      // timeout so the caller simply re-polls.
      if (errno == ECONNABORTED || errno == EPROTO) return Status::OK();
      // Resource exhaustion is transient — sessions closing will free
      // fds/buffers — and must not kill the listener. OutOfRange is the
      // transport's "retry later" code (see socket.h).
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        return Status::OutOfRange("accept: " + std::string(strerror(errno)));
      }
      return Errno("accept");
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    *accepted = StreamSocket(fd);
    return Status::OK();
  }
}

Status ListenSocket::AcceptNonBlocking(StreamSocket* accepted,
                                       bool* would_block) {
  *accepted = StreamSocket();
  *would_block = false;
  if (fd_ < 0) return Status::IoError("accept on closed socket");
  for (;;) {
    int fd = accept4(fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        *would_block = true;
        return Status::OK();
      }
      // Same taxonomy as Accept(): a peer that vanished before we got
      // to it is a non-event; resource exhaustion is transient.
      if (errno == ECONNABORTED || errno == EPROTO) return Status::OK();
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        return Status::OutOfRange("accept: " + std::string(strerror(errno)));
      }
      return Errno("accept");
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    *accepted = StreamSocket(fd);
    return Status::OK();
  }
}

Status ListenSocket::SetNonBlocking(bool enable) {
  return SetFdNonBlocking(fd_, enable, "fcntl");
}

}  // namespace tcomp
