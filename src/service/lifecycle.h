#ifndef TCOMP_SERVICE_LIFECYCLE_H_
#define TCOMP_SERVICE_LIFECYCLE_H_

#include "service/pipeline.h"
#include "service/server.h"
#include "util/status.h"

namespace tcomp {

/// Installs SIGINT/SIGTERM handlers that only set a flag — every
/// consequence (stop accepting, drain the queue, close the open snapshot,
/// write the final checkpoint) runs on ordinary threads, so the shutdown
/// path is just as async-signal-safe as the steady state. Idempotent.
void InstallShutdownSignalHandlers();

/// True once SIGINT or SIGTERM has been received.
bool ShutdownSignalReceived();

/// The signal number received, or 0. (For log messages.)
int ShutdownSignal();

/// Test hook: clears the flag so one process can exercise several
/// install/receive cycles.
void ResetShutdownSignalForTest();

/// Runs the service until a shutdown signal or a client SHUTDOWN, then
/// performs the graceful sequence: stop accepting and unwind sessions,
/// drain the ingest queue, flush the reorder buffer and the in-progress
/// window through the discoverer, and write the final checkpoint. The
/// server must be Start()ed and the pipeline running. Returns the
/// pipeline's shutdown status.
Status RunServiceUntilShutdown(CompanionServer* server,
                               ServicePipeline* pipeline);

}  // namespace tcomp

#endif  // TCOMP_SERVICE_LIFECYCLE_H_
