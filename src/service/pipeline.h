#ifndef TCOMP_SERVICE_PIPELINE_H_
#define TCOMP_SERVICE_PIPELINE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <vector>

#include "core/candidate.h"
#include "core/discoverer.h"
#include "obs/metrics.h"
#include "obs/stage_timer.h"
#include "service/ingest_queue.h"
#include "shard/sharded_engine.h"
#include "stream/inactive_period.h"
#include "stream/record.h"
#include "stream/sliding_window.h"
#include "util/status.h"

namespace tcomp {

struct ServicePipelineOptions {
  Algorithm algorithm = Algorithm::kBuddy;
  DiscoveryParams params;
  SlidingWindowOptions window;
  /// Carry-forward threshold for objects missing from a snapshot
  /// (stream/inactive_period.h); 0 disables filling.
  int inactive_fill = 0;

  /// Admission queue between protocol sessions and the worker.
  size_t queue_capacity = 4096;
  BackpressureMode backpressure = BackpressureMode::kBlock;

  /// Watermark lateness bound, in stream seconds. 0 keeps arrival order:
  /// records go straight into the sliding window exactly as the batch
  /// path feeds them (the differential tests rely on this). > 0 holds
  /// records in a reorder buffer and releases them in timestamp order
  /// once the watermark — max timestamp seen minus this bound — passes
  /// them, so bounded out-of-order arrival cannot close a snapshot early.
  double allowed_lateness = 0.0;

  /// Checkpoint file. Empty disables checkpointing entirely. If the file
  /// exists at Start(), the discoverer state is restored from it
  /// (resume-on-restart).
  std::string checkpoint_path;
  /// Auto-checkpoint period in snapshots (0 = only on Stop()).
  int64_t checkpoint_every = 0;

  /// Slow-snapshot log threshold in wall milliseconds: a snapshot whose
  /// close (window → discoverer) exceeds it emits one structured WARNING
  /// line with the per-stage breakdown. 0 disables the log. Logging only —
  /// never affects processing or results.
  double slow_snapshot_ms = 0.0;

  /// Shard count for the C-step (--shards). 1 (the default) reproduces
  /// the single-worker path exactly; > 1 routes each snapshot's
  /// clustering through the sharded engine (src/shard/) — partition →
  /// per-shard ε-neighborhoods → deterministic merge — with products
  /// byte-identical to the batch path at every shard count
  /// (shard_differential_test pins this). Algorithms without an object
  /// clustering stage (BU) fall back to the built-in path with one
  /// WARNING; no shard state survives a snapshot close, so checkpoints
  /// taken at one shard count resume at any other.
  int shards = 1;
};

/// Pipeline-level counters; discovery and queue counters ride along so one
/// Stats() call captures a consistent picture of every stage.
///
/// Consistency contract (see Stats() for the locking that provides it):
///   queue.pushed == queue.popped + queue.shed + queue.depth
///   queue.popped >= records_processed            (≤ 1 record in flight)
///   queue.pushed >= records_ingested             (bump follows the push)
struct ServiceStats {
  DiscoveryStats discovery;
  IngestQueueCounters queue;
  int64_t records_ingested = 0;   // accepted by Ingest()
  int64_t records_processed = 0;  // consumed by the worker
  int64_t records_invalid = 0;    // rejected before admission (non-finite)
  int64_t records_late = 0;       // arrived behind the watermark
  int64_t reorder_held_peak = 0;  // high-watermark reorder-buffer size
  int64_t snapshots_emitted = 0;  // windows closed by the worker
  int64_t checkpoints_written = 0;
  int64_t companions_distinct = 0;  // deduplicated log size
  bool resumed = false;           // state restored from a checkpoint

  // Sharded C-step (zeros / defaults when options.shards == 1):
  int shards = 1;                  // shard count actually serving
  bool shard_fallback = false;     // --shards > 1 but the algorithm has
                                   // no object clustering to shard (BU)
  int64_t shard_snapshots = 0;     // snapshots clustered by the engine
  int64_t shard_halo_objects = 0;  // Σ halo replicas across snapshots
};

/// The long-running companion-discovery daemon core: a bounded ingest
/// queue feeding the SlidingWindow → CompanionDiscoverer chain on one
/// dedicated worker thread. Producers call Ingest() from any thread;
/// queries are served from a consistent view at any time. The clustering
/// stage inside the discoverer parallelizes over the process-wide
/// ThreadPool when options.params.cluster.threads > 1, exactly as the
/// batch path does.
///
/// Lifecycle: Start() → {Ingest() | Flush() | queries}* → Stop().
/// Stop() drains the queue, flushes the reorder buffer and the open
/// window, writes a final checkpoint, and joins the worker; it is
/// idempotent and also runs from the destructor as a backstop.
class ServicePipeline {
 public:
  explicit ServicePipeline(const ServicePipelineOptions& options);
  ~ServicePipeline();

  ServicePipeline(const ServicePipeline&) = delete;
  ServicePipeline& operator=(const ServicePipeline&) = delete;

  /// Creates the discoverer (restoring checkpoint state if present) and
  /// starts the worker. Must be called exactly once, before anything else.
  Status Start();

  /// Validates and admits one record (thread-safe). Backpressure policy
  /// decides what happens at capacity — kBlock stalls the caller, kReject
  /// returns OutOfRange, kShedOldest always succeeds.
  Status Ingest(const TrajectoryRecord& record);

  /// Nonblocking variant for the event-loop front-end, which must never
  /// sleep inside an admission call. Semantics match Ingest() except
  /// under kBlock at capacity, where it returns OK with *admitted=false
  /// and the caller retries once the worker drains. *admitted is false on
  /// every non-OK status too.
  Status TryIngest(const TrajectoryRecord& record, bool* admitted);

  /// Barrier: waits until every record admitted before the call has been
  /// processed, then pushes the reorder buffer and the in-progress window
  /// through the discoverer. Queries after Flush() see all prior ingests.
  Status Flush();

  /// Writes a checkpoint of the discoverer state now (thread-safe).
  /// NotFound-free no-op returning OK when checkpointing is disabled.
  Status Checkpoint();

  /// Graceful shutdown: close queue, drain, flush, final checkpoint.
  Status Stop();

  bool started() const;

  /// Snapshot of the deduplicated companion log (thread-safe copy).
  std::vector<Companion> Companions() const;
  /// Consistent counter snapshot across every stage (thread-safe).
  ServiceStats Stats() const;

  /// Deterministic, name-sorted Prometheus-style exposition of every
  /// pipeline metric: stage latency histograms, queue/record counters,
  /// and the discovery counters. Names and labels are byte-identical
  /// across runs; only timing-valued series differ. Thread-safe.
  std::string MetricsText() const;
  /// The registry behind MetricsText(); stage histograms and counters can
  /// be inspected directly (tests, embedding applications).
  const MetricsRegistry& metrics() const { return metrics_; }
  /// Mutable access for co-located components (the event-loop server)
  /// that publish their own series into the same exposition. The registry
  /// is internally synchronized.
  MetricsRegistry* mutable_metrics() { return &metrics_; }
  /// The pipeline's stage sink; the server records its connection-layer
  /// stages (frame decode, connection flush) through it so every stage
  /// lands in one histogram family.
  MetricsStageSink* stage_sink() { return &stage_sink_; }

  const ServicePipelineOptions& options() const { return options_; }

 private:
  void WorkerLoop();
  /// Releases ripe reorder-buffer records into the window. Caller holds
  /// state_mu_. `everything` forces a full drain (flush/stop).
  void DrainReorderBuffer(bool everything);
  void PushToWindow(const TrajectoryRecord& record);
  void ProcessReady();  // feeds ready_ snapshots to the discoverer
  Status CheckpointLocked();

  const ServicePipelineOptions options_;
  IngestQueue queue_;

  // state_mu_ guards everything below: the window/discoverer chain, the
  // reorder buffer, and the pipeline counters. The worker holds it while
  // processing one record; queries take it for the copy-out.
  mutable std::mutex state_mu_;
  std::condition_variable progress_cv_;  // signaled per processed record
  // Declared before discoverer_ so the engine outlives the discoverer
  // holding its provider closure. Created in Start() iff options_.shards
  // > 1 and the algorithm accepts an external C-step; never reset after.
  std::unique_ptr<ShardedClusterEngine> shard_engine_;
  bool shard_fallback_ = false;  // set in Start(); immutable after
  std::unique_ptr<CompanionDiscoverer> discoverer_;
  SlidingWindowSnapshotter window_;
  InactivePeriodFiller filler_;
  std::vector<Snapshot> ready_;
  // Reorder-buffer entry: the record plus its arrival instant, so the
  // release path can report how long the watermark held it back. The
  // arrival time never participates in ordering — products are identical
  // with or without it.
  struct HeldRecord {
    TrajectoryRecord record;
    std::chrono::steady_clock::time_point arrival;
  };
  // Min-heap on timestamp (greater-than comparator) for watermarking.
  struct LaterTimestamp {
    bool operator()(const HeldRecord& a, const HeldRecord& b) const {
      return a.record.timestamp > b.record.timestamp;
    }
  };
  std::priority_queue<HeldRecord, std::vector<HeldRecord>, LaterTimestamp>
      reorder_;
  double max_timestamp_seen_ = 0.0;
  bool any_timestamp_seen_ = false;
  int64_t records_ingested_ = 0;  // admitted to the queue
  int64_t records_processed_ = 0;  // consumed by the worker
  int64_t records_invalid_ = 0;
  int64_t records_late_ = 0;
  int64_t reorder_held_peak_ = 0;
  int64_t checkpoints_written_ = 0;
  int64_t last_checkpoint_snapshot_ = 0;
  bool resumed_ = false;

  // Observability. The registry's instruments are internally atomic:
  // recording does not take state_mu_, and exposition (MetricsText) takes
  // state_mu_ only to sync the authoritative pipeline counters in. The
  // stage sink is wired into the discoverer at Start() and shared with
  // the pipeline's own stages (admission, reorder hold, snapshot close,
  // checkpoint write). Mutable: publishing counters is observation, not
  // state mutation.
  mutable MetricsRegistry metrics_;
  MetricsStageSink stage_sink_;

  std::thread worker_;
  // Serializes Stop() end to end (a protocol SHUTDOWN and the signal path
  // can race); state_mu_ cannot be held across the worker join.
  //
  // Canonical acquisition order: stop_mu_ BEFORE state_mu_, never the
  // reverse. Stop() holds stop_mu_ across its state_mu_ critical
  // sections; any path that held state_mu_ while taking stop_mu_ would
  // deadlock against it (the PR 5 Stats() inversion). Enforced by the
  // lock-order pass in tools/analyze.
  std::mutex stop_mu_;
  bool started_ = false;   // guarded by state_mu_
  bool stopped_ = false;   // guarded by state_mu_
};

}  // namespace tcomp

#endif  // TCOMP_SERVICE_PIPELINE_H_
