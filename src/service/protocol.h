#ifndef TCOMP_SERVICE_PROTOCOL_H_
#define TCOMP_SERVICE_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "service/pipeline.h"
#include "stream/record.h"
#include "util/status.h"

namespace tcomp {

/// The service speaks a line-delimited ASCII protocol over a byte stream
/// (TCP or an in-process pair). One request per line, LF-terminated (a
/// trailing CR is stripped, so telnet/netcat work):
///
///   INGEST <object> <timestamp> <x> <y>
///   QUERY companions | stats | buddies | metrics
///   FLUSH
///   SHUTDOWN
///
/// Responses: single-line replies are `OK <detail>` or
/// `ERR <CODE> <message>`. Multi-record replies open with `OK <n>`,
/// carry n payload lines, and close with a lone `.` — a client reads
/// until the dot without counting. Payload lines for `QUERY companions`
/// use the exact CSV row format of eval/export.h
/// (`duration,snapshot_index,size,objects`), so streamed results are
/// byte-comparable with the batch CLI's --out-csv files. `QUERY metrics`
/// returns the pipeline's Prometheus-style exposition text
/// (ServicePipeline::MetricsText): name-sorted, deterministic in names
/// and labels, scrapeable with `feed --query "QUERY metrics"` or netcat.

/// Longest accepted request line (bytes, excluding the LF). Anything
/// longer is a protocol error; the session discards until the next LF and
/// keeps serving.
inline constexpr size_t kMaxRequestLineBytes = 4096;

/// Splits a byte stream into protocol lines with a hard length cap.
/// Feed() appends raw bytes as they arrive; Next() extracts completed
/// lines. An overlong line flips the framer into discard mode until its
/// terminating LF, reporting kOversize exactly once per offending line —
/// a hostile or corrupt client cannot make the server buffer grow
/// unboundedly or wedge the session.
class LineFramer {
 public:
  explicit LineFramer(size_t max_line_bytes = kMaxRequestLineBytes);

  void Feed(const char* data, size_t n);

  enum class Result {
    kLine,      // *line holds a complete request line (CR/LF stripped)
    kNeedMore,  // no complete line buffered; Feed() more bytes
    kOversize,  // an overlong line was (or is being) discarded
  };
  Result Next(std::string* line);

  /// True when the stream ended mid-line (disconnect without a final LF).
  bool HasPartial() const { return !buffer_.empty() || discarding_; }

 private:
  const size_t max_line_bytes_;
  std::string buffer_;
  bool discarding_ = false;        // inside an overlong line
  bool oversize_reported_ = false;  // kOversize already returned for it
};

/// A parsed request.
struct Request {
  enum class Type { kIngest, kQuery, kFlush, kShutdown };
  enum class QueryKind { kCompanions, kStats, kBuddies, kMetrics };
  Type type = Type::kFlush;
  QueryKind query = QueryKind::kStats;
  TrajectoryRecord record;  // kIngest only
};

/// Parses one request line. Rejects non-ASCII bytes (the protocol is
/// ASCII; anything else — including valid UTF-8 multibyte sequences — is
/// a framing error), unknown verbs, wrong arity, and non-finite or
/// unparsable numeric fields.
Status ParseRequest(const std::string& line, Request* request);

/// Formats the text protocol's `ERR <CODE> <message>\n` line (newlines in
/// the message are flattened to spaces). Shared by the line sessions and
/// the event-loop connection driver.
std::string ProtocolErrorLine(const Status& status);

/// One query's result: `count` is the <n> of the text protocol's `OK <n>`
/// header (companion count for `companions`, payload line count
/// otherwise) and `body` is the payload bytes. The binary protocol ships
/// the same `body` verbatim, which is what makes query responses
/// byte-comparable across protocols.
struct QueryResult {
  uint64_t count = 0;
  std::string body;
};

/// One client's request/response state machine, independent of any
/// transport: the server pumps socket bytes through it, and tests drive
/// it directly in-process. Responses always end with '\n' and never
/// throw; a malformed line yields `ERR ...` and the session stays usable.
class ProtocolSession {
 public:
  explicit ProtocolSession(ServicePipeline* pipeline);

  /// Handles one complete request line; returns the full response (one or
  /// more '\n'-terminated lines). Sets *shutdown_requested on SHUTDOWN so
  /// the transport can initiate the graceful server stop (drain + final
  /// checkpoint happen there); it is never unset.
  std::string HandleLine(const std::string& line, bool* shutdown_requested);

  /// Runs one query against the pipeline. Used by HandleLine and by the
  /// binary-frame dispatcher, so both protocols serve identical payload
  /// bytes.
  QueryResult RunQuery(Request::QueryKind kind);

  /// Response for a line the framer flagged as oversized.
  std::string OversizeResponse();

  /// Counts one externally detected malformed request (e.g. a bad binary
  /// frame on a sniffed connection) against this session.
  void CountParseError() { ++parse_errors_; }

  /// Malformed lines seen on this session (parse errors + oversize).
  int64_t parse_errors() const { return parse_errors_; }

 private:
  ServicePipeline* pipeline_;
  int64_t parse_errors_ = 0;
};

}  // namespace tcomp

#endif  // TCOMP_SERVICE_PROTOCOL_H_
