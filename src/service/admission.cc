#include "service/admission.h"

namespace tcomp {

const char* AdmissionPolicyName(AdmissionPolicy policy) {
  switch (policy) {
    case AdmissionPolicy::kReject:
      return "reject";
    case AdmissionPolicy::kShed:
      return "shed";
  }
  return "unknown";
}

Status ParseAdmissionPolicy(const std::string& name,
                            AdmissionPolicy* policy) {
  if (name == "reject") {
    *policy = AdmissionPolicy::kReject;
  } else if (name == "shed") {
    *policy = AdmissionPolicy::kShed;
  } else {
    return Status::InvalidArgument("unknown admission policy: " + name +
                                   " (expected reject|shed)");
  }
  return Status::OK();
}

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options) {}

void AdmissionController::Update(const AdmissionSample& sample) {
  if (!enabled()) return;
  if (!baseline_set_) {
    // First sample only anchors the window; counters before the server
    // started watching say nothing about current load.
    window_offered_base_ = sample.offered;
    window_refused_base_ = sample.refused;
    baseline_set_ = true;
  } else {
    const int64_t d_offered = sample.offered - window_offered_base_;
    const int64_t d_refused = sample.refused - window_refused_base_;
    if (d_offered >= options_.min_window_records && d_offered > 0) {
      shed_rate_ = static_cast<double>(d_refused) /
                   static_cast<double>(d_offered);
      window_offered_base_ = sample.offered;
      window_refused_base_ = sample.refused;
    } else if (d_offered <= 0 && d_refused <= 0) {
      // Counter reset (pipeline restarted underneath us): re-anchor.
      window_offered_base_ = sample.offered;
      window_refused_base_ = sample.refused;
      shed_rate_ = 0.0;
    }
    // Otherwise the window keeps accumulating toward min_window_records.
  }
  const bool shed_trip =
      options_.max_shed_rate > 0.0 && shed_rate_ > options_.max_shed_rate;
  const bool p99_trip = options_.max_p99_ms > 0.0 &&
                        sample.p99_close_ms > options_.max_p99_ms;
  overloaded_ = shed_trip || p99_trip;
}

}  // namespace tcomp
