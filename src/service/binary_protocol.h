#ifndef TCOMP_SERVICE_BINARY_PROTOCOL_H_
#define TCOMP_SERVICE_BINARY_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "stream/record.h"
#include "util/status.h"

namespace tcomp {

/// Batched binary framing, multiplexed with the text protocol on the same
/// port. A connection's first byte selects the protocol: every text verb
/// starts with an ASCII letter (< 0x80), while a binary request frame
/// starts with the magic byte 0xAB — a value the text parser rejects as a
/// framing error, so neither protocol can be mistaken for the other.
///
/// Request frame (little-endian, 8-byte header + payload):
///
///   offset  size  field
///   0       1     magic 0xAB
///   1       1     version (currently 1)
///   2       1     type: 1=INGEST_BATCH 2=QUERY 3=FLUSH 4=SHUTDOWN
///   3       1     arg: QUERY kind (0=companions 1=stats 2=buddies
///                 3=metrics); 0 otherwise
///   4       4     payload length in bytes (uint32 LE)
///
/// An INGEST_BATCH payload is N consecutive 28-byte records:
///
///   0       4     object id (uint32 LE)
///   4       8     timestamp (IEEE-754 double, LE)
///   12      8     x (double, LE)
///   20      8     y (double, LE)
///
/// Records travel as raw IEEE-754 bits, so a batch INGEST admits exactly
/// the doubles the client held — the byte-identity contract with batch
/// `discover` needs no printf/strtod round trip. Other request types
/// carry an empty payload.
///
/// Response frame (16-byte header + payload):
///
///   0       1     magic 0xBA
///   1       1     version (currently 1)
///   2       1     type: 1=OK 2=ERR 3=SHUTDOWN
///   3       1     status code (StatusCode numeric value; 0 for OK)
///   4       4     payload length in bytes (uint32 LE)
///   8       8     value (uint64 LE): accepted-record count for
///                 INGEST_BATCH, the query's `OK <n>` count for QUERY,
///                 0 otherwise
///
/// An OK INGEST_BATCH response's payload is a uint64 LE count of records
/// the pipeline refused (shed/rejected/invalid); a QUERY response's
/// payload is byte-identical to the text protocol's payload body (the
/// lines between `OK <n>` and `.`). ERR and SHUTDOWN payloads are a
/// human-readable message. A SHUTDOWN response frame is also what a
/// binary client receives mid-frame when the server drains: a clean,
/// complete frame — never a truncated one.

inline constexpr uint8_t kBinaryRequestMagic = 0xAB;
inline constexpr uint8_t kBinaryResponseMagic = 0xBA;
inline constexpr uint8_t kBinaryVersion = 1;
inline constexpr size_t kBinaryRequestHeaderBytes = 8;
inline constexpr size_t kBinaryResponseHeaderBytes = 16;
inline constexpr size_t kBinaryRecordBytes = 28;

/// Hard cap on a declared payload length. Bounds per-connection buffering
/// exactly like kMaxRequestLineBytes bounds text lines; at 28 bytes per
/// record a maximal frame still batches ~150k records — far past the
/// point where syscall overhead stops mattering.
inline constexpr size_t kMaxBinaryPayloadBytes = 4u << 20;

enum class BinaryRequestType : uint8_t {
  kIngestBatch = 1,
  kQuery = 2,
  kFlush = 3,
  kShutdown = 4,
};

enum class BinaryResponseType : uint8_t {
  kOk = 1,
  kErr = 2,
  kShutdown = 3,
};

/// One decoded request frame.
struct BinaryFrame {
  uint8_t type = 0;  // BinaryRequestType numeric value
  uint8_t arg = 0;
  std::string payload;
};

/// Accumulates raw bytes and yields complete request frames. Unlike the
/// text framer there is no resync point inside a corrupt binary stream —
/// a bad magic/version or an over-cap length poisons the framer (kBad,
/// with a sticky reason) and the connection must be torn down after an
/// error frame is sent.
class BinaryFramer {
 public:
  void Feed(const char* data, size_t n);

  enum class Result {
    kFrame,     // *frame holds a complete request frame
    kNeedMore,  // header or payload still incomplete
    kBad,       // unrecoverable framing fault; *error says why
  };
  Result Next(BinaryFrame* frame, std::string* error);

  /// True when the stream ended (or is pausing) mid-frame.
  bool HasPartial() const { return broken_ || !buffer_.empty(); }

  /// Bytes currently buffered toward the next frame.
  size_t buffered_bytes() const { return buffer_.size(); }

 private:
  std::string buffer_;
  bool broken_ = false;
  std::string reason_;
};

/// Builds a request frame around an already-encoded payload.
std::string EncodeBinaryRequest(BinaryRequestType type, uint8_t arg,
                                const std::string& payload);

/// Encodes `n` records as an INGEST_BATCH frame (header + N·28 bytes).
std::string EncodeIngestBatch(const TrajectoryRecord* records, size_t n);

/// Decodes an INGEST_BATCH payload. InvalidArgument when the length is
/// not a multiple of the record size.
Status DecodeIngestPayload(const std::string& payload,
                           std::vector<TrajectoryRecord>* out);

/// Builds a response frame. `code` is the StatusCode numeric value.
std::string EncodeBinaryResponse(BinaryResponseType type, uint8_t code,
                                 uint64_t value, const std::string& payload);

/// One decoded response frame (client side).
struct BinaryResponse {
  uint8_t type = 0;  // BinaryResponseType numeric value
  uint8_t code = 0;
  uint64_t value = 0;
  std::string payload;
};

/// Client-side accumulator for response frames; same contract as
/// BinaryFramer but for the server→client direction.
class BinaryResponseReader {
 public:
  void Feed(const char* data, size_t n);

  enum class Result { kFrame, kNeedMore, kBad };
  Result Next(BinaryResponse* response, std::string* error);

  bool HasPartial() const { return broken_ || !buffer_.empty(); }

 private:
  std::string buffer_;
  bool broken_ = false;
  std::string reason_;
};

}  // namespace tcomp

#endif  // TCOMP_SERVICE_BINARY_PROTOCOL_H_
