#ifndef TCOMP_SERVICE_INGEST_QUEUE_H_
#define TCOMP_SERVICE_INGEST_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "stream/record.h"
#include "util/status.h"

namespace tcomp {

/// What Push() does when the queue is at capacity (the feed is faster than
/// the pipeline drains).
enum class BackpressureMode {
  /// Block the producer until a consumer makes room. Lossless; propagates
  /// the stall to the network client (its writes eventually block too).
  kBlock,
  /// Drop the *oldest* queued record to admit the new one. Keeps the queue
  /// current under overload at the cost of losing the stalest data — the
  /// right trade for live monitoring, where a fresher snapshot beats a
  /// complete-but-late one.
  kShedOldest,
  /// Refuse the new record with Status::OutOfRange, leaving the queue
  /// untouched. The client sees the error and decides (retry, slow down).
  kReject,
};

const char* BackpressureModeName(BackpressureMode mode);

/// Parses "block" / "shed" / "reject". Returns InvalidArgument otherwise.
Status ParseBackpressureMode(const std::string& name, BackpressureMode* mode);

/// Occupancy and loss counters, readable at any time via Counters().
/// `depth` is sampled in the same critical section as the counters, so
/// one Counters() call always satisfies pushed == popped + shed + depth
/// exactly — reading depth() separately could tear against a concurrent
/// push or pop.
struct IngestQueueCounters {
  int64_t pushed = 0;    // records accepted into the queue
  int64_t popped = 0;    // records handed to consumers
  int64_t shed = 0;      // records dropped by kShedOldest
  int64_t rejected = 0;  // pushes refused by kReject
  int64_t depth = 0;     // queue occupancy at sampling time
  int64_t depth_peak = 0;  // high-watermark queue depth
};

/// Bounded multi-producer / multi-consumer queue of trajectory records —
/// the admission stage of the streaming service. Producers are protocol
/// sessions (one per connected client); the consumer is the pipeline
/// worker. All three backpressure policies keep the queue depth at or
/// below `capacity` at every instant.
///
/// Close() wakes everyone: pending and future pushes fail with
/// FailedPrecondition-like InvalidArgument, and Pop() drains the remaining
/// items before returning false.
class IngestQueue {
 public:
  IngestQueue(size_t capacity, BackpressureMode mode);

  IngestQueue(const IngestQueue&) = delete;
  IngestQueue& operator=(const IngestQueue&) = delete;

  /// Admits one record subject to the backpressure policy. Returns
  /// OutOfRange when kReject refuses, InvalidArgument after Close().
  Status Push(const TrajectoryRecord& record);

  /// Nonblocking admission attempt for event-loop producers that must
  /// never sleep. Identical to Push() under kShedOldest/kReject; under
  /// kBlock a full queue returns OK with *admitted=false instead of
  /// stalling — the caller parks the record and retries when the worker
  /// has drained. OutOfRange (kReject full) and InvalidArgument (closed)
  /// as in Push(), both with *admitted=false.
  Status TryPush(const TrajectoryRecord& record, bool* admitted);

  /// Blocks until a record is available or the queue is closed and empty.
  /// Returns false exactly when the stream is over (closed + drained).
  bool Pop(TrajectoryRecord* out);

  /// Marks the stream complete. Idempotent.
  void Close();

  bool closed() const;
  size_t capacity() const { return capacity_; }
  BackpressureMode mode() const { return mode_; }
  /// Current depth (racy by nature; for monitoring only).
  size_t depth() const;
  IngestQueueCounters Counters() const;

 private:
  const size_t capacity_;
  const BackpressureMode mode_;

  mutable std::mutex mu_;
  std::condition_variable not_full_;   // signaled on pop / close
  std::condition_variable not_empty_;  // signaled on push / close
  std::deque<TrajectoryRecord> items_;  // guarded by mu_
  bool closed_ = false;                 // guarded by mu_
  IngestQueueCounters counters_;        // guarded by mu_
};

}  // namespace tcomp

#endif  // TCOMP_SERVICE_INGEST_QUEUE_H_
