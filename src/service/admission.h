#ifndef TCOMP_SERVICE_ADMISSION_H_
#define TCOMP_SERVICE_ADMISSION_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace tcomp {

/// What the acceptor does with a NEW connection while overloaded.
/// Existing connections are never touched — admission control guards the
/// front door only, so in-flight work finishes deterministically.
enum class AdmissionPolicy {
  /// Send a one-line `ERR OUT_OF_RANGE ...` (best-effort) then close, so
  /// a well-behaved client knows to back off and retry.
  kReject,
  /// Close silently. Cheapest possible disposal when the server cannot
  /// even afford the goodbye write.
  kShed,
};

const char* AdmissionPolicyName(AdmissionPolicy policy);

/// Parses "reject" / "shed". InvalidArgument otherwise.
Status ParseAdmissionPolicy(const std::string& name, AdmissionPolicy* policy);

struct AdmissionOptions {
  /// Overload trips when the windowed shed fraction — (shed + rejected) /
  /// offered records since the previous evaluation window — exceeds this.
  /// 0 disables the shed-rate trigger.
  double max_shed_rate = 0.0;
  /// Overload trips when the pipeline's p99 snapshot-close latency (the
  /// PR 5 histogram, milliseconds) exceeds this. 0 disables the trigger.
  double max_p99_ms = 0.0;
  AdmissionPolicy policy = AdmissionPolicy::kReject;
  /// A shed-rate window only closes once this many records were offered;
  /// smaller windows keep accumulating, so a handful of sheds during a
  /// lull cannot trip the breaker.
  int64_t min_window_records = 64;
};

/// Cumulative queue counters plus the latency gauge, sampled by the
/// server from ServicePipeline::Stats() and the stage histograms.
struct AdmissionSample {
  int64_t offered = 0;      // pushed + shed + rejected, cumulative
  int64_t refused = 0;      // shed + rejected, cumulative
  double p99_close_ms = 0.0;  // p99 snapshot-close latency
};

/// Pure decision core for connection admission — no clocks, no locks, no
/// I/O: the server feeds it counter samples on its own cadence and asks
/// `overloaded()` per accepted connection, and unit tests feed it
/// synthetic samples directly. Overload is evaluated per sample; the
/// breaker closes again as soon as a sample shows both gauges back under
/// their thresholds.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options);

  /// True when any trigger is configured; a disabled controller never
  /// reports overload and the server skips sampling entirely.
  bool enabled() const {
    return options_.max_shed_rate > 0.0 || options_.max_p99_ms > 0.0;
  }

  /// Feeds one cumulative sample and re-evaluates the overload state.
  void Update(const AdmissionSample& sample);

  bool overloaded() const { return overloaded_; }
  /// Shed fraction over the last closed window ([0,1]).
  double shed_rate() const { return shed_rate_; }
  AdmissionPolicy policy() const { return options_.policy; }

 private:
  const AdmissionOptions options_;
  int64_t window_offered_base_ = 0;
  int64_t window_refused_base_ = 0;
  bool baseline_set_ = false;
  double shed_rate_ = 0.0;
  bool overloaded_ = false;
};

}  // namespace tcomp

#endif  // TCOMP_SERVICE_ADMISSION_H_
