#include "service/blast.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <thread>
#include <vector>

#include "core/discoverer.h"
#include "data/group_model.h"
#include "data/trajectory_io.h"
#include "eval/export.h"
#include "obs/metrics.h"
#include "service/binary_protocol.h"
#include "service/protocol.h"
#include "service/socket.h"
#include "stream/inactive_period.h"
#include "stream/sliding_window.h"

namespace tcomp {
namespace {

constexpr int kConnectTimeoutMs = 5000;
constexpr int kIoTimeoutMs = 30000;

/// Per-client outcome of one curve point.
struct ClientTotals {
  int64_t sent = 0;
  int64_t accepted = 0;
  int64_t refused = 0;
  Status status;  // first transport/protocol failure, if any
};

/// Blocking line-protocol client (the load side runs ordinary blocking
/// sockets; only the server side is nonblocking).
class TextClient {
 public:
  Status Connect(uint16_t port) {
    return StreamSocket::Connect(port, kConnectTimeoutMs, &sock_);
  }

  Status Send(const std::string& data) {
    return sock_.WriteAll(data, kIoTimeoutMs);
  }

  Status ReadLine(std::string* line) {
    for (;;) {
      LineFramer::Result r = framer_.Next(line);
      if (r == LineFramer::Result::kLine) return Status::OK();
      if (r == LineFramer::Result::kOversize) {
        return Status::Corruption("oversized response line");
      }
      char buf[4096];
      size_t n = 0;
      TCOMP_RETURN_IF_ERROR(sock_.Read(buf, sizeof(buf), kIoTimeoutMs, &n));
      if (n == 0) return Status::IoError("server closed the connection");
      framer_.Feed(buf, n);
    }
  }

 private:
  StreamSocket sock_;
  LineFramer framer_{1 << 20};
};

/// Blocking binary-frame client.
class BinaryClient {
 public:
  Status Connect(uint16_t port) {
    return StreamSocket::Connect(port, kConnectTimeoutMs, &sock_);
  }

  Status Send(const std::string& frame) {
    return sock_.WriteAll(frame, kIoTimeoutMs);
  }

  Status ReadFrame(BinaryResponse* response) {
    for (;;) {
      std::string error;
      BinaryResponseReader::Result r = reader_.Next(response, &error);
      if (r == BinaryResponseReader::Result::kFrame) return Status::OK();
      if (r == BinaryResponseReader::Result::kBad) {
        return Status::Corruption(error);
      }
      char buf[4096];
      size_t n = 0;
      TCOMP_RETURN_IF_ERROR(sock_.Read(buf, sizeof(buf), kIoTimeoutMs, &n));
      if (n == 0) return Status::IoError("server closed the connection");
      reader_.Feed(buf, n);
    }
  }

 private:
  StreamSocket sock_;
  BinaryResponseReader reader_;
};

std::string FormatIngestLine(const TrajectoryRecord& r) {
  // %.17g round-trips doubles exactly — same contract as tcomp feed.
  char line[256];
  std::snprintf(line, sizeof(line), "INGEST %u %.17g %.17g %.17g\n",
                r.object, r.timestamp, r.pos.x, r.pos.y);
  return line;
}

uint64_t ReadLeU64(const std::string& payload) {
  uint64_t v = 0;
  for (size_t i = 0; i < 8 && i < payload.size(); ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(payload[i]))
         << (8 * i);
  }
  return v;
}

/// One paced synthetic client for one curve point. Cycles through the
/// shared scenario with its own object-id offset (streams never alias)
/// and a per-cycle timestamp offset (time always advances). Closed-loop:
/// every request waits for its ack, and the ack round trip is the latency
/// sample.
void BlastWorker(uint16_t port, bool binary,
                 const std::vector<TrajectoryRecord>* base,
                 double cycle_span, uint32_t object_offset,
                 double records_per_sec, double seconds, int batch_records,
                 LatencyHistogram* rtt, ClientTotals* totals) {
  TextClient text;
  BinaryClient bin;
  Status cs = binary ? bin.Connect(port) : text.Connect(port);
  if (!cs.ok()) {
    totals->status = cs;
    return;
  }

  const int per_request = binary ? batch_records : 1;
  const double request_interval =
      records_per_sec > 0.0 ? per_request / records_per_sec : 0.0;

  using Clock = std::chrono::steady_clock;
  const Clock::time_point start = Clock::now();
  const Clock::time_point deadline =
      start + std::chrono::duration_cast<Clock::duration>(
                  std::chrono::duration<double>(seconds));
  Clock::time_point next_send = start;

  size_t cursor = 0;
  int64_t cycle = 0;
  std::vector<TrajectoryRecord> batch;
  batch.reserve(static_cast<size_t>(per_request));

  while (Clock::now() < deadline) {
    batch.clear();
    for (int i = 0; i < per_request; ++i) {
      TrajectoryRecord r = (*base)[cursor];
      r.object += object_offset;
      r.timestamp += static_cast<double>(cycle) * cycle_span;
      batch.push_back(r);
      if (++cursor == base->size()) {
        cursor = 0;
        ++cycle;
      }
    }

    Clock::time_point send_start = Clock::now();
    if (binary) {
      std::string frame = EncodeIngestBatch(batch.data(), batch.size());
      Status s = bin.Send(frame);
      BinaryResponse response;
      if (s.ok()) s = bin.ReadFrame(&response);
      if (!s.ok()) {
        totals->status = s;
        return;
      }
      totals->sent += static_cast<int64_t>(batch.size());
      if (response.type == static_cast<uint8_t>(BinaryResponseType::kOk)) {
        totals->accepted += static_cast<int64_t>(response.value);
        totals->refused += static_cast<int64_t>(ReadLeU64(response.payload));
      } else {
        totals->refused += static_cast<int64_t>(batch.size());
      }
    } else {
      Status s = text.Send(FormatIngestLine(batch[0]));
      std::string reply;
      if (s.ok()) s = text.ReadLine(&reply);
      if (!s.ok()) {
        totals->status = s;
        return;
      }
      ++totals->sent;
      if (reply.rfind("OK", 0) == 0) {
        ++totals->accepted;
      } else {
        ++totals->refused;
      }
    }
    double rtt_seconds =
        std::chrono::duration<double>(Clock::now() - send_start).count();
    rtt->Record(rtt_seconds);

    if (request_interval > 0.0) {
      next_send += std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(request_interval));
      Clock::time_point now = Clock::now();
      if (next_send > now) {
        std::this_thread::sleep_until(std::min(next_send, deadline));
      } else if (now - next_send > std::chrono::seconds(1)) {
        // Hopelessly behind the pace (offered load exceeds capacity):
        // stop accumulating debt so a later, lighter stretch does not
        // burst-compensate. The point simply saturates.
        next_send = now;
      }
    }
  }
}

/// Measures one saturation-curve point against a running server.
Status RunPoint(ServicePipeline* pipeline, uint16_t port, bool binary,
                const BlastOptions& options,
                const std::vector<TrajectoryRecord>& base, double cycle_span,
                double offered_rps, BlastPoint* point) {
  point->offered_rps = offered_rps;

  ServiceStats before = pipeline->Stats();
  LatencyHistogram rtt;
  std::vector<ClientTotals> totals(static_cast<size_t>(options.clients));
  std::vector<std::thread> workers;
  workers.reserve(totals.size());

  // Object-id offsets keep client streams disjoint; the scenario never
  // uses ids at or above its object count, so spacing by the scenario
  // width is collision-free.
  const uint32_t id_stride =
      static_cast<uint32_t>(options.objects) + 1;
  const double per_client_rps = offered_rps / options.clients;

  using Clock = std::chrono::steady_clock;
  Clock::time_point start = Clock::now();
  for (int c = 0; c < options.clients; ++c) {
    workers.emplace_back(BlastWorker, port, binary, &base, cycle_span,
                         static_cast<uint32_t>(c) * id_stride,
                         per_client_rps, options.seconds_per_point,
                         options.batch_records, &rtt,
                         &totals[static_cast<size_t>(c)]);
  }
  for (std::thread& w : workers) w.join();
  point->elapsed_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  for (const ClientTotals& t : totals) {
    if (!t.status.ok()) return t.status;
    point->records_sent += t.sent;
    point->records_accepted += t.accepted;
    point->records_refused += t.refused;
  }
  if (point->elapsed_seconds > 0.0) {
    point->achieved_rps =
        static_cast<double>(point->records_accepted) / point->elapsed_seconds;
  }

  ServiceStats after = pipeline->Stats();
  int64_t offered = (after.queue.pushed + after.queue.rejected) -
                    (before.queue.pushed + before.queue.rejected);
  int64_t refused = (after.queue.shed + after.queue.rejected) -
                    (before.queue.shed + before.queue.rejected);
  if (offered > 0) {
    point->shed_fraction =
        static_cast<double>(refused) / static_cast<double>(offered);
  }

  LatencyHistogram::Snapshot snap = rtt.Snap();
  point->p50_ms = snap.p50() * 1e3;
  point->p95_ms = snap.p95() * 1e3;
  point->p99_ms = snap.p99() * 1e3;
  return Status::OK();
}

/// Runs one full saturation curve against a fresh self-hosted service.
Status RunCurve(const BlastOptions& options,
                const std::vector<TrajectoryRecord>& base, double cycle_span,
                bool binary, BlastCurve* curve) {
  curve->protocol = binary ? "binary" : "text";

  ServicePipelineOptions popts = options.pipeline;
  popts.checkpoint_path.clear();
  // Overload must shed, not stall: a kBlock queue would park every client
  // at saturation and the curve would measure the parking lot.
  popts.backpressure = BackpressureMode::kShedOldest;
  ServicePipeline pipeline(popts);
  TCOMP_RETURN_IF_ERROR(pipeline.Start());

  ServerOptions sopts = options.server;
  sopts.port = 0;
  CompanionServer server(&pipeline, sopts);
  TCOMP_RETURN_IF_ERROR(server.Start());

  Status result = Status::OK();
  for (double offered : options.offered_rates) {
    BlastPoint point;
    result = RunPoint(&pipeline, server.port(), binary, options, base,
                      cycle_span, offered, &point);
    if (!result.ok()) break;
    curve->points.push_back(point);
  }

  server.RequestStop();
  server.Wait();
  Status stop = pipeline.Stop();
  if (result.ok()) result = stop;
  return result;
}

/// The in-process batch reference: records → sliding window → discoverer,
/// exactly as `tcomp discover` runs it, rendered as companion CSV.
Status BatchReference(const ServicePipelineOptions& popts,
                      const std::vector<TrajectoryRecord>& records,
                      std::string* csv, uint64_t* companions) {
  auto discoverer = MakeDiscoverer(popts.algorithm, popts.params);
  SlidingWindowSnapshotter window(popts.window);
  InactivePeriodFiller filler(popts.inactive_fill);
  std::vector<Snapshot> ready;
  std::vector<Companion> newly;
  auto process = [&](const Snapshot& snap) {
    newly.clear();
    discoverer->ProcessSnapshot(filler.Fill(snap), &newly);
  };
  for (const TrajectoryRecord& r : records) {
    TCOMP_RETURN_IF_ERROR(window.Push(r, &ready));
    for (const Snapshot& snap : ready) process(snap);
    ready.clear();
  }
  window.Flush(&ready);
  for (const Snapshot& snap : ready) process(snap);

  std::ostringstream out;
  WriteCompanionsCsv(discoverer->log().companions(), out);
  *csv = out.str();
  *companions = discoverer->log().companions().size();
  return Status::OK();
}

/// Streams the scenario through one protocol against a fresh lossless
/// service and returns the QUERY companions payload body.
Status ServeReference(const BlastOptions& options,
                      const std::vector<TrajectoryRecord>& records,
                      bool binary, std::string* body) {
  ServicePipelineOptions popts = options.pipeline;
  popts.checkpoint_path.clear();
  popts.backpressure = BackpressureMode::kBlock;  // nothing may be refused
  ServicePipeline pipeline(popts);
  TCOMP_RETURN_IF_ERROR(pipeline.Start());
  ServerOptions sopts = options.server;
  sopts.port = 0;
  CompanionServer server(&pipeline, sopts);
  TCOMP_RETURN_IF_ERROR(server.Start());

  Status result = Status::OK();
  if (binary) {
    BinaryClient client;
    result = client.Connect(server.port());
    const size_t batch =
        static_cast<size_t>(std::max(1, options.batch_records));
    for (size_t i = 0; result.ok() && i < records.size(); i += batch) {
      size_t n = std::min(batch, records.size() - i);
      result = client.Send(EncodeIngestBatch(&records[i], n));
      BinaryResponse response;
      if (result.ok()) result = client.ReadFrame(&response);
      if (result.ok() &&
          (response.type != static_cast<uint8_t>(BinaryResponseType::kOk) ||
           response.value != n || ReadLeU64(response.payload) != 0)) {
        result = Status::Internal("lossless ingest refused records");
      }
    }
    if (result.ok()) {
      result = client.Send(
          EncodeBinaryRequest(BinaryRequestType::kFlush, 0, ""));
      BinaryResponse response;
      if (result.ok()) result = client.ReadFrame(&response);
      if (result.ok()) {
        result = client.Send(EncodeBinaryRequest(
            BinaryRequestType::kQuery,
            static_cast<uint8_t>(Request::QueryKind::kCompanions), ""));
      }
      if (result.ok()) result = client.ReadFrame(&response);
      if (result.ok()) *body = response.payload;
    }
  } else {
    TextClient client;
    result = client.Connect(server.port());
    // Pipelined in chunks: responses come back in request order, so one
    // bulk write + N reads per chunk keeps the pass fast without any
    // per-record round trip.
    const size_t chunk = 64;
    for (size_t i = 0; result.ok() && i < records.size(); i += chunk) {
      size_t n = std::min(chunk, records.size() - i);
      std::string lines;
      for (size_t j = 0; j < n; ++j) {
        lines += FormatIngestLine(records[i + j]);
      }
      result = client.Send(lines);
      for (size_t j = 0; result.ok() && j < n; ++j) {
        std::string reply;
        result = client.ReadLine(&reply);
        if (result.ok() && reply.rfind("OK", 0) != 0) {
          result = Status::Internal("lossless ingest refused: " + reply);
        }
      }
    }
    if (result.ok()) result = client.Send("FLUSH\nQUERY companions\n");
    std::string reply;
    if (result.ok()) result = client.ReadLine(&reply);  // OK flushed
    if (result.ok()) result = client.ReadLine(&reply);  // OK <n>
    while (result.ok()) {
      std::string line;
      result = client.ReadLine(&line);
      if (!result.ok()) break;
      if (line == ".") break;
      *body += line;
      *body += '\n';
    }
  }

  server.RequestStop();
  server.Wait();
  Status stop = pipeline.Stop();
  if (result.ok()) result = stop;
  return result;
}

void AppendJsonDouble(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", std::isfinite(v) ? v : -1.0);
  *out += buf;
}

}  // namespace

std::vector<TrajectoryRecord> BlastTraffic(int objects, int snapshots,
                                           uint64_t seed) {
  // The bench suite's "coherent" recipe, scaled to the requested size:
  // tight groups against light clutter, unit-scale speeds.
  GroupModelOptions opts;
  opts.num_objects = objects;
  opts.num_snapshots = snapshots;
  opts.area_size = 170.0 * std::sqrt(static_cast<double>(std::max(1, objects)));
  opts.group_speed = 1.0;
  opts.free_speed = 1.5;
  opts.member_jitter = 0.8;
  opts.seed = seed;
  GroupDataset dataset = GenerateGroupStream(opts);
  return StreamToRecords(dataset.stream, /*seconds_per_snapshot=*/1.0);
}

Status RunBlast(const BlastOptions& options, BlastReport* report) {
  if (options.clients < 1) {
    return Status::InvalidArgument("blast needs at least one client");
  }
  if (options.batch_records < 1 ||
      static_cast<size_t>(options.batch_records) * kBinaryRecordBytes >
          kMaxBinaryPayloadBytes) {
    return Status::InvalidArgument("invalid --batch record count");
  }
  if (options.seconds_per_point <= 0.0) {
    return Status::InvalidArgument("seconds per point must be positive");
  }
  if (!options.pipeline.checkpoint_path.empty()) {
    return Status::InvalidArgument("blast does not support checkpoints");
  }

  std::vector<double> rates = options.offered_rates;
  if (rates.empty()) rates = {2000.0, 10000.0, 50000.0, 250000.0};
  for (double r : rates) {
    if (!(r > 0.0)) {
      return Status::InvalidArgument("offered rates must be positive");
    }
  }
  BlastOptions resolved = options;
  resolved.offered_rates = rates;

  std::vector<TrajectoryRecord> base =
      BlastTraffic(options.objects, options.snapshots, options.seed);
  if (base.empty()) {
    return Status::InvalidArgument("blast scenario produced no records");
  }
  // One cycle spans [0, last snapshot]; the next cycle starts one
  // snapshot later, so per-client time is strictly increasing.
  const double cycle_span = base.back().timestamp + 1.0;

  report->clients = options.clients;
  report->batch_records = options.batch_records;
  report->seconds_per_point = options.seconds_per_point;
  report->traffic_records = static_cast<int64_t>(base.size());

  if (options.verify_products) {
    std::string reference;
    uint64_t companions = 0;
    TCOMP_RETURN_IF_ERROR(
        BatchReference(options.pipeline, base, &reference, &companions));
    std::string text_body;
    TCOMP_RETURN_IF_ERROR(
        ServeReference(resolved, base, /*binary=*/false, &text_body));
    std::string binary_body;
    TCOMP_RETURN_IF_ERROR(
        ServeReference(resolved, base, /*binary=*/true, &binary_body));
    report->verify.ran = true;
    report->verify.text_identical = (text_body == reference);
    report->verify.binary_identical = (binary_body == reference);
    report->verify.records = static_cast<int64_t>(base.size());
    report->verify.companions = companions;
  }

  if (options.run_text) {
    BlastCurve curve;
    TCOMP_RETURN_IF_ERROR(
        RunCurve(resolved, base, cycle_span, /*binary=*/false, &curve));
    report->curves.push_back(std::move(curve));
  }
  if (options.run_binary) {
    BlastCurve curve;
    TCOMP_RETURN_IF_ERROR(
        RunCurve(resolved, base, cycle_span, /*binary=*/true, &curve));
    report->curves.push_back(std::move(curve));
  }
  return Status::OK();
}

std::string BlastReportJson(const BlastReport& report) {
  std::string out;
  out += "{\n  \"bench\": \"blast\",\n";
  out += "  \"clients\": " + std::to_string(report.clients) + ",\n";
  out += "  \"batch_records\": " + std::to_string(report.batch_records) +
         ",\n";
  out += "  \"seconds_per_point\": ";
  AppendJsonDouble(&out, report.seconds_per_point);
  out += ",\n  \"traffic_records\": " +
         std::to_string(report.traffic_records) + ",\n";
  out += "  \"verify\": {\"ran\": ";
  out += report.verify.ran ? "true" : "false";
  out += ", \"text_identical\": ";
  out += report.verify.text_identical ? "true" : "false";
  out += ", \"binary_identical\": ";
  out += report.verify.binary_identical ? "true" : "false";
  out += ", \"records\": " + std::to_string(report.verify.records);
  out += ", \"companions\": " + std::to_string(report.verify.companions);
  out += "},\n  \"curves\": [";
  for (size_t c = 0; c < report.curves.size(); ++c) {
    const BlastCurve& curve = report.curves[c];
    out += c ? ",\n    {" : "\n    {";
    out += "\"protocol\": \"" + curve.protocol + "\", \"points\": [";
    for (size_t p = 0; p < curve.points.size(); ++p) {
      const BlastPoint& point = curve.points[p];
      out += p ? ",\n      {" : "\n      {";
      out += "\"offered_rps\": ";
      AppendJsonDouble(&out, point.offered_rps);
      out += ", \"achieved_rps\": ";
      AppendJsonDouble(&out, point.achieved_rps);
      out += ", \"shed_fraction\": ";
      AppendJsonDouble(&out, point.shed_fraction);
      out += ", \"p50_ms\": ";
      AppendJsonDouble(&out, point.p50_ms);
      out += ", \"p95_ms\": ";
      AppendJsonDouble(&out, point.p95_ms);
      out += ", \"p99_ms\": ";
      AppendJsonDouble(&out, point.p99_ms);
      out += ", \"records_sent\": " + std::to_string(point.records_sent);
      out += ", \"records_accepted\": " +
             std::to_string(point.records_accepted);
      out += ", \"records_refused\": " +
             std::to_string(point.records_refused);
      out += ", \"elapsed_seconds\": ";
      AppendJsonDouble(&out, point.elapsed_seconds);
      out += "}";
    }
    out += "\n    ]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace tcomp
