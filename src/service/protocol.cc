#include "service/protocol.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <vector>

#include "eval/export.h"

namespace tcomp {
namespace {

/// The protocol is printable ASCII plus tab. Anything else — control
/// bytes, 0x7F, and every byte ≥ 0x80 (which covers all multi-byte UTF-8
/// and any invalid encoding) — is a framing error, not data.
bool IsProtocolText(const std::string& line) {
  for (unsigned char c : line) {
    if (c == '\t') continue;
    if (c < 0x20 || c > 0x7E) return false;
  }
  return true;
}

std::vector<std::string> SplitTokens(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

bool ParseFiniteDouble(const std::string& token, double* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  double v = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) return false;
  if (!std::isfinite(v)) return false;
  *out = v;
  return true;
}

bool ParseObjectId(const std::string& token, ObjectId* out) {
  if (token.empty()) return false;
  for (char c : token) {
    if (c < '0' || c > '9') return false;
  }
  char* end = nullptr;
  unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size()) return false;
  if (v > 0xFFFFFFFFull) return false;
  *out = static_cast<ObjectId>(v);
  return true;
}

/// Status code → the protocol's error token.
const char* CodeToken(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kCorruption:
      return "CORRUPTION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kInternal:
      return "INTERNAL";
  }
  return "INTERNAL";
}

std::string ErrLine(const char* token, const std::string& message) {
  std::string out = "ERR ";
  out += token;
  if (!message.empty()) {
    out += ' ';
    // Keep the reply a single line whatever the message contains.
    for (char c : message) out += (c == '\n' || c == '\r') ? ' ' : c;
  }
  out += '\n';
  return out;
}

std::string ErrLine(const Status& status) {
  return ErrLine(CodeToken(status.code()), status.message());
}

}  // namespace

std::string ProtocolErrorLine(const Status& status) { return ErrLine(status); }

LineFramer::LineFramer(size_t max_line_bytes)
    : max_line_bytes_(max_line_bytes) {}

void LineFramer::Feed(const char* data, size_t n) {
  buffer_.append(data, n);
}

LineFramer::Result LineFramer::Next(std::string* line) {
  for (;;) {
    size_t lf = buffer_.find('\n');
    if (discarding_) {
      if (lf == std::string::npos) {
        // Still inside the overlong line; drop what we have so the buffer
        // cannot grow without bound.
        buffer_.clear();
        if (!oversize_reported_) {
          oversize_reported_ = true;
          return Result::kOversize;
        }
        return Result::kNeedMore;
      }
      buffer_.erase(0, lf + 1);
      discarding_ = false;
      bool reported = oversize_reported_;
      oversize_reported_ = false;
      if (!reported) return Result::kOversize;
      continue;  // the overlong line is fully consumed; look for the next
    }
    if (lf == std::string::npos) {
      if (buffer_.size() > max_line_bytes_) {
        discarding_ = true;
        continue;
      }
      return Result::kNeedMore;
    }
    if (lf > max_line_bytes_) {
      buffer_.erase(0, lf + 1);
      return Result::kOversize;
    }
    line->assign(buffer_, 0, lf);
    buffer_.erase(0, lf + 1);
    if (!line->empty() && line->back() == '\r') line->pop_back();
    return Result::kLine;
  }
}

Status ParseRequest(const std::string& line, Request* request) {
  if (!IsProtocolText(line)) {
    return Status::InvalidArgument("non-ASCII byte in request line");
  }
  std::vector<std::string> tokens = SplitTokens(line);
  if (tokens.empty()) {
    return Status::InvalidArgument("empty request");
  }
  const std::string& verb = tokens[0];
  if (verb == "INGEST") {
    if (tokens.size() != 5) {
      return Status::InvalidArgument(
          "INGEST expects: INGEST <object> <timestamp> <x> <y>");
    }
    TrajectoryRecord record;
    if (!ParseObjectId(tokens[1], &record.object)) {
      return Status::InvalidArgument("bad object id: " + tokens[1]);
    }
    if (!ParseFiniteDouble(tokens[2], &record.timestamp)) {
      return Status::InvalidArgument("bad timestamp: " + tokens[2]);
    }
    if (!ParseFiniteDouble(tokens[3], &record.pos.x) ||
        !ParseFiniteDouble(tokens[4], &record.pos.y)) {
      return Status::InvalidArgument("bad coordinate");
    }
    request->type = Request::Type::kIngest;
    request->record = record;
    return Status::OK();
  }
  if (verb == "QUERY") {
    if (tokens.size() != 2) {
      return Status::InvalidArgument(
          "QUERY expects: QUERY companions|stats|buddies|metrics");
    }
    request->type = Request::Type::kQuery;
    if (tokens[1] == "companions") {
      request->query = Request::QueryKind::kCompanions;
    } else if (tokens[1] == "stats") {
      request->query = Request::QueryKind::kStats;
    } else if (tokens[1] == "buddies") {
      request->query = Request::QueryKind::kBuddies;
    } else if (tokens[1] == "metrics") {
      request->query = Request::QueryKind::kMetrics;
    } else {
      return Status::InvalidArgument("unknown query: " + tokens[1]);
    }
    return Status::OK();
  }
  if (verb == "FLUSH") {
    if (tokens.size() != 1) {
      return Status::InvalidArgument("FLUSH takes no arguments");
    }
    request->type = Request::Type::kFlush;
    return Status::OK();
  }
  if (verb == "SHUTDOWN") {
    if (tokens.size() != 1) {
      return Status::InvalidArgument("SHUTDOWN takes no arguments");
    }
    request->type = Request::Type::kShutdown;
    return Status::OK();
  }
  return Status::InvalidArgument("unknown command: " + verb);
}

ProtocolSession::ProtocolSession(ServicePipeline* pipeline)
    : pipeline_(pipeline) {}

std::string ProtocolSession::OversizeResponse() {
  ++parse_errors_;
  return ErrLine("INVALID_ARGUMENT",
                 "request line exceeds " +
                     std::to_string(kMaxRequestLineBytes) + " bytes");
}

std::string ProtocolSession::HandleLine(const std::string& line,
                                        bool* shutdown_requested) {
  Request request;
  Status s = ParseRequest(line, &request);
  if (!s.ok()) {
    ++parse_errors_;
    return ErrLine(s);
  }
  switch (request.type) {
    case Request::Type::kIngest: {
      Status is = pipeline_->Ingest(request.record);
      return is.ok() ? "OK\n" : ErrLine(is);
    }
    case Request::Type::kFlush: {
      Status fs = pipeline_->Flush();
      return fs.ok() ? "OK flushed\n" : ErrLine(fs);
    }
    case Request::Type::kShutdown: {
      *shutdown_requested = true;
      return "OK shutting-down\n";
    }
    case Request::Type::kQuery:
      break;
  }

  QueryResult result = RunQuery(request.query);
  std::ostringstream out;
  out << "OK " << result.count << '\n' << result.body << ".\n";
  return out.str();
}

QueryResult ProtocolSession::RunQuery(Request::QueryKind kind) {
  QueryResult result;
  std::ostringstream out;
  switch (kind) {
    case Request::QueryKind::kCompanions: {
      std::vector<Companion> companions = pipeline_->Companions();
      result.count = companions.size();
      // Payload is the batch CLI's exact --out-csv content (header
      // included), so streamed and batch results diff byte-for-byte.
      WriteCompanionsCsv(companions, out);
      result.body = out.str();
      return result;
    }
    case Request::QueryKind::kStats: {
      ServiceStats stats = pipeline_->Stats();
      std::ostringstream body;
      body << "records_ingested=" << stats.records_ingested << '\n'
           << "records_processed=" << stats.records_processed << '\n'
           << "records_invalid=" << stats.records_invalid << '\n'
           << "records_late=" << stats.records_late << '\n'
           << "reorder_held_peak=" << stats.reorder_held_peak << '\n'
           << "queue_pushed=" << stats.queue.pushed << '\n'
           << "queue_popped=" << stats.queue.popped << '\n'
           << "queue_shed=" << stats.queue.shed << '\n'
           << "queue_rejected=" << stats.queue.rejected << '\n'
           << "queue_depth=" << stats.queue.depth << '\n'
           << "queue_depth_peak=" << stats.queue.depth_peak << '\n'
           << "snapshots=" << stats.discovery.snapshots << '\n'
           << "snapshots_emitted=" << stats.snapshots_emitted << '\n'
           << "intersections=" << stats.discovery.intersections << '\n'
           << "candidate_objects_peak="
           << stats.discovery.candidate_objects_peak << '\n'
           << "companions_reported=" << stats.discovery.companions_reported
           << '\n'
           << "companions_distinct=" << stats.companions_distinct << '\n'
           << "checkpoints_written=" << stats.checkpoints_written << '\n'
           << "resumed=" << (stats.resumed ? 1 : 0) << '\n';
      std::string text = body.str();
      size_t lines = 0;
      for (char c : text) lines += (c == '\n');
      result.count = lines;
      result.body = std::move(text);
      return result;
    }
    case Request::QueryKind::kBuddies: {
      ServiceStats stats = pipeline_->Stats();
      const DiscoveryStats& d = stats.discovery;
      std::ostringstream body;
      body << "buddy_pairs_checked=" << d.buddy_pairs_checked << '\n'
           << "buddy_pairs_pruned=" << d.buddy_pairs_pruned << '\n'
           << "buddies_total=" << d.buddies_total << '\n'
           << "buddies_unchanged=" << d.buddies_unchanged << '\n'
           << "buddy_member_sum=" << d.buddy_member_sum << '\n';
      char avg[64];
      std::snprintf(avg, sizeof(avg), "average_buddy_size=%.6g\n",
                    d.average_buddy_size());
      body << avg;
      std::string text = body.str();
      size_t lines = 0;
      for (char c : text) lines += (c == '\n');
      result.count = lines;
      result.body = std::move(text);
      return result;
    }
    case Request::QueryKind::kMetrics: {
      // Exposition text is '\n'-terminated per line and never contains a
      // bare "." line (every line starts with '#' or a metric name), so
      // the dot terminator frames it unambiguously.
      std::string text = pipeline_->MetricsText();
      size_t lines = 0;
      for (char c : text) lines += (c == '\n');
      result.count = lines;
      result.body = std::move(text);
      return result;
    }
  }
  return result;
}

}  // namespace tcomp
