#ifndef TCOMP_SERVICE_BLAST_H_
#define TCOMP_SERVICE_BLAST_H_

#include <cstdint>
#include <string>
#include <vector>

#include "service/pipeline.h"
#include "service/server.h"
#include "stream/record.h"
#include "util/status.h"

namespace tcomp {

/// Configuration of the blast load generator: a self-hosted pipeline +
/// event-loop server is driven by N concurrent synthetic clients at a
/// sequence of offered record rates, producing a saturation curve per
/// wire protocol. Traffic comes from the group-movement generator
/// (deterministic in `seed`); each client streams an object-disjoint copy
/// of the same scenario so concurrent clients never alias object ids.
struct BlastOptions {
  int clients = 4;
  /// Total offered load per curve point, in records/second across all
  /// clients. Empty selects the default 4-point curve.
  std::vector<double> offered_rates;
  double seconds_per_point = 2.0;
  bool run_text = true;
  bool run_binary = true;
  /// Records per binary INGEST_BATCH frame.
  int batch_records = 256;
  /// Objects in the synthetic scenario (per client).
  int objects = 100;
  /// Snapshots in the synthetic scenario; clients cycle through it with a
  /// per-cycle timestamp offset, so streamed time always advances.
  int snapshots = 30;
  uint64_t seed = 405;
  /// Run the single-client differential pass: the full scenario streamed
  /// through each protocol (lossless backpressure) must produce companion
  /// CSV byte-identical to the in-process batch path.
  bool verify_products = true;
  /// Pipeline template (algorithm, thresholds, window, queue). The load
  /// phase overrides backpressure to kShedOldest so saturation sheds
  /// instead of stalling the clients; the verify pass overrides it to
  /// kBlock so nothing is ever refused. checkpoint_path must be empty.
  ServicePipelineOptions pipeline;
  /// Server template for the self-hosted front-end (port is always
  /// ephemeral).
  ServerOptions server;
};

/// One measured point of the saturation curve.
struct BlastPoint {
  double offered_rps = 0.0;   // target rate the clients paced toward
  double achieved_rps = 0.0;  // records acknowledged / elapsed
  /// Fraction of admitted records the pipeline later refused or evicted
  /// (queue shed + rejected over pushed + rejected), from server-side
  /// stats deltas across the point.
  double shed_fraction = 0.0;
  // Client-observed ingest-admission round-trip latency, per request
  // (one record for text, one batch frame for binary).
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  int64_t records_sent = 0;
  int64_t records_accepted = 0;  // acknowledged by the server
  int64_t records_refused = 0;   // refused in acks (invalid/reject-full)
  double elapsed_seconds = 0.0;
};

struct BlastCurve {
  std::string protocol;  // "text" or "binary"
  std::vector<BlastPoint> points;
};

/// Result of the differential product check (see
/// BlastOptions::verify_products).
struct BlastVerify {
  bool ran = false;
  bool text_identical = false;
  bool binary_identical = false;
  int64_t records = 0;       // scenario records streamed per protocol
  uint64_t companions = 0;   // companion count of the batch reference
};

struct BlastReport {
  int clients = 0;
  int batch_records = 0;
  double seconds_per_point = 0.0;
  int64_t traffic_records = 0;  // records in one scenario cycle
  BlastVerify verify;
  std::vector<BlastCurve> curves;
};

/// The blast scenario: the bench suite's "coherent" group-movement recipe
/// flattened to records at one snapshot per second. Deterministic in all
/// three arguments.
std::vector<TrajectoryRecord> BlastTraffic(int objects, int snapshots,
                                           uint64_t seed);

/// Runs the full blast benchmark (verification pass, then one saturation
/// curve per enabled protocol, each against a fresh self-hosted
/// pipeline + server). Fails fast on configuration or transport errors;
/// overload is a measurement, never an error.
Status RunBlast(const BlastOptions& options, BlastReport* report);

/// Renders the report as a deterministic JSON document (insertion-ordered
/// keys, fixed float formatting) for tools/bench_json.py.
std::string BlastReportJson(const BlastReport& report);

}  // namespace tcomp

#endif  // TCOMP_SERVICE_BLAST_H_
