#include "service/connection.h"

#include <utility>
#include <vector>

#include "util/timer.h"

namespace tcomp {

ServiceConnection::ServiceConnection(ServicePipeline* pipeline)
    : pipeline_(pipeline), session_(pipeline) {}

void ServiceConnection::Consume(const char* data, size_t n) {
  if (fatal_ || n == 0) return;
  if (protocol_ == WireProtocol::kUnknown) {
    // First byte decides. Every text verb starts with an ASCII letter;
    // 0xAB can only open a binary request frame (the text parser rejects
    // bytes >= 0x80 outright), so the sniff is unambiguous.
    protocol_ = (static_cast<unsigned char>(data[0]) == kBinaryRequestMagic)
                    ? WireProtocol::kBinary
                    : WireProtocol::kText;
  }
  if (protocol_ == WireProtocol::kBinary) {
    binary_framer_.Feed(data, n);
  } else {
    line_framer_.Feed(data, n);
  }
  Pump();
}

void ServiceConnection::Pump() {
  // Parsing pauses while records are parked: responses must stay in
  // request order, and the parked batch's ack is still pending.
  while (!fatal_ && parked_.empty()) {
    if (protocol_ == WireProtocol::kText) {
      std::string line;
      LineFramer::Result r = line_framer_.Next(&line);
      if (r == LineFramer::Result::kNeedMore) return;
      if (r == LineFramer::Result::kOversize) {
        out_ += session_.OversizeResponse();
        continue;
      }
      HandleTextLine(line);
    } else if (protocol_ == WireProtocol::kBinary) {
      BinaryFrame frame;
      std::string error;
      BinaryFramer::Result r = binary_framer_.Next(&frame, &error);
      if (r == BinaryFramer::Result::kNeedMore) return;
      if (r == BinaryFramer::Result::kBad) {
        // No resync point exists past a framing fault: answer with one
        // complete error frame, then the server closes after the flush.
        session_.CountParseError();
        AppendBinaryError(Status::InvalidArgument(error));
        fatal_ = true;
        return;
      }
      HandleFrame(frame);
    } else {
      return;  // no bytes seen yet
    }
  }
}

void ServiceConnection::HandleTextLine(const std::string& line) {
  Request request;
  Status s = ParseRequest(line, &request);
  if (!s.ok()) {
    session_.CountParseError();
    out_ += ProtocolErrorLine(s);
    return;
  }
  switch (request.type) {
    case Request::Type::kIngest: {
      bool admitted = false;
      Status is = pipeline_->TryIngest(request.record, &admitted);
      if (!is.ok()) {
        out_ += ProtocolErrorLine(is);
      } else if (admitted) {
        out_ += "OK\n";
      } else {
        // kBlock backpressure: ack once the queue takes it.
        parked_.push_back(request.record);
      }
      return;
    }
    case Request::Type::kFlush: {
      Status fs = pipeline_->Flush();
      out_ += fs.ok() ? "OK flushed\n" : ProtocolErrorLine(fs);
      return;
    }
    case Request::Type::kShutdown:
      shutdown_requested_ = true;
      out_ += "OK shutting-down\n";
      return;
    case Request::Type::kQuery: {
      QueryResult result = session_.RunQuery(request.query);
      out_ += "OK " + std::to_string(result.count) + "\n";
      out_ += result.body;
      out_ += ".\n";
      return;
    }
  }
}

void ServiceConnection::HandleFrame(const BinaryFrame& frame) {
  ++frames_decoded_;
  switch (static_cast<BinaryRequestType>(frame.type)) {
    case BinaryRequestType::kIngestBatch: {
      Timer decode_timer;
      decode_timer.Start();
      std::vector<TrajectoryRecord> records;
      Status ds = DecodeIngestPayload(frame.payload, &records);
      decode_timer.Stop();
      pipeline_->stage_sink()->RecordStage(Stage::kFrameDecode,
                                           decode_timer.Seconds());
      if (!ds.ok()) {
        // The frame boundary itself was sound — only the payload is
        // malformed — so this is recoverable: error frame, keep serving.
        session_.CountParseError();
        AppendBinaryError(ds);
        return;
      }
      records_batched_ += static_cast<int64_t>(records.size());
      batch_open_ = true;
      batch_accepted_ = 0;
      batch_refused_ = 0;
      for (size_t i = 0; i < records.size(); ++i) {
        bool admitted = false;
        Status is = pipeline_->TryIngest(records[i], &admitted);
        if (is.ok() && admitted) {
          ++batch_accepted_;
        } else if (is.ok()) {
          // Queue full under kBlock: park the unadmitted tail and defer
          // the ack; RetryParked() finishes the batch.
          for (size_t j = i; j < records.size(); ++j) {
            parked_.push_back(records[j]);
          }
          return;
        } else {
          ++batch_refused_;  // invalid record or reject-full
        }
      }
      FinishBatchIfComplete();
      return;
    }
    case BinaryRequestType::kQuery: {
      if (frame.arg > static_cast<uint8_t>(Request::QueryKind::kMetrics)) {
        session_.CountParseError();
        AppendBinaryError(Status::InvalidArgument(
            "unknown query kind " + std::to_string(frame.arg)));
        return;
      }
      QueryResult result =
          session_.RunQuery(static_cast<Request::QueryKind>(frame.arg));
      out_ += EncodeBinaryResponse(BinaryResponseType::kOk, 0, result.count,
                                   result.body);
      return;
    }
    case BinaryRequestType::kFlush: {
      Status fs = pipeline_->Flush();
      if (fs.ok()) {
        out_ += EncodeBinaryResponse(BinaryResponseType::kOk, 0, 0, "");
      } else {
        AppendBinaryError(fs);
      }
      return;
    }
    case BinaryRequestType::kShutdown:
      shutdown_requested_ = true;
      out_ += EncodeBinaryResponse(BinaryResponseType::kOk, 0, 0,
                                   "shutting-down");
      return;
  }
  session_.CountParseError();
  AppendBinaryError(Status::InvalidArgument("unknown frame type " +
                                            std::to_string(frame.type)));
}

bool ServiceConnection::DrainParked() {
  bool progress = false;
  while (!parked_.empty()) {
    bool admitted = false;
    Status s = pipeline_->TryIngest(parked_.front(), &admitted);
    if (s.ok() && !admitted) break;  // still full; try again next tick
    parked_.pop_front();
    progress = true;
    if (batch_open_) {
      if (s.ok()) {
        ++batch_accepted_;
      } else {
        ++batch_refused_;
      }
    } else {
      out_ += s.ok() ? "OK\n" : ProtocolErrorLine(s);
    }
  }
  if (parked_.empty()) FinishBatchIfComplete();
  return progress;
}

void ServiceConnection::FinishBatchIfComplete() {
  if (!batch_open_ || !parked_.empty()) return;
  std::string refused_payload;
  refused_payload.reserve(8);
  uint64_t refused = batch_refused_;
  for (int i = 0; i < 8; ++i) {
    refused_payload.push_back(static_cast<char>(refused & 0xFF));
    refused >>= 8;
  }
  out_ += EncodeBinaryResponse(BinaryResponseType::kOk, 0, batch_accepted_,
                               refused_payload);
  batch_open_ = false;
  batch_accepted_ = 0;
  batch_refused_ = 0;
}

bool ServiceConnection::RetryParked() {
  if (fatal_) return false;
  size_t out_before = out_.size();
  bool progress = DrainParked();
  if (parked_.empty()) Pump();  // resume parsing buffered requests
  return progress || out_.size() != out_before;
}

void ServiceConnection::PrepareShutdown() {
  // The pipeline is still running (the server drains connections before
  // ServicePipeline::Stop()), so the blocking Ingest() completes any
  // fully received batch atomically — admitted prefixes are never split
  // inside a frame the client saw acknowledged.
  while (!parked_.empty()) {
    Status s = pipeline_->Ingest(parked_.front());
    parked_.pop_front();
    if (batch_open_) {
      if (s.ok()) {
        ++batch_accepted_;
      } else {
        ++batch_refused_;
      }
    } else {
      out_ += s.ok() ? "OK\n" : ProtocolErrorLine(s);
    }
  }
  FinishBatchIfComplete();
  if (protocol_ == WireProtocol::kBinary && !fatal_ &&
      binary_framer_.HasPartial()) {
    // The client is mid-frame: nothing of the partial frame was (or will
    // be) admitted. Send one complete SHUTDOWN frame — never a truncated
    // response — so the client knows to re-send the whole frame after
    // the server resumes.
    out_ += EncodeBinaryResponse(
        BinaryResponseType::kShutdown, 0, 0,
        "server shutting down; partial frame not admitted, re-send it");
  }
}

bool ServiceConnection::has_partial_request() const {
  switch (protocol_) {
    case WireProtocol::kText:
      return line_framer_.HasPartial();
    case WireProtocol::kBinary:
      return binary_framer_.HasPartial();
    case WireProtocol::kUnknown:
      return false;
  }
  return false;
}

void ServiceConnection::AppendBinaryError(const Status& status) {
  out_ += EncodeBinaryResponse(BinaryResponseType::kErr,
                               static_cast<uint8_t>(status.code()), 0,
                               status.message());
}

}  // namespace tcomp
