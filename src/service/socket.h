#ifndef TCOMP_SERVICE_SOCKET_H_
#define TCOMP_SERVICE_SOCKET_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace tcomp {

/// Thin RAII wrappers over loopback POSIX TCP sockets — the only
/// transport the service needs, kept deliberately minimal so everything
/// above it (framing, protocol, sessions) is testable in-process without
/// a real socket. All operations take millisecond timeouts implemented
/// with poll(); a timeout is reported as Status::OutOfRange so callers
/// can distinguish "slow peer" from "broken peer" (IoError).
class StreamSocket {
 public:
  StreamSocket() = default;
  explicit StreamSocket(int fd) : fd_(fd) {}
  ~StreamSocket();

  StreamSocket(StreamSocket&& other) noexcept;
  StreamSocket& operator=(StreamSocket&& other) noexcept;
  StreamSocket(const StreamSocket&) = delete;
  StreamSocket& operator=(const StreamSocket&) = delete;

  /// Connects to 127.0.0.1:port.
  static Status Connect(uint16_t port, int timeout_ms, StreamSocket* out);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  /// Reads up to `n` bytes into `buf`. Returns the byte count via *read;
  /// 0 means orderly EOF. OutOfRange on timeout.
  Status Read(char* buf, size_t n, int timeout_ms, size_t* read);

  /// Writes all of `data`, waiting up to timeout_ms for each chunk.
  Status WriteAll(const std::string& data, int timeout_ms);

 private:
  int fd_ = -1;
};

/// Listening socket bound to 127.0.0.1. Port 0 binds an ephemeral port;
/// port() reports the actual one.
class ListenSocket {
 public:
  ListenSocket() = default;
  ~ListenSocket();

  ListenSocket(ListenSocket&& other) noexcept;
  ListenSocket& operator=(ListenSocket&& other) noexcept;
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  static Status Listen(uint16_t port, ListenSocket* out);

  bool valid() const { return fd_ >= 0; }
  uint16_t port() const { return port_; }
  void Close();

  /// Waits up to timeout_ms for a connection. On timeout — and when the
  /// pending connection was aborted by the peer before we accepted it —
  /// returns OK with *accepted invalid, so the caller's accept loop can
  /// poll its stop flag between waits without treating that as an error.
  /// Transient resource exhaustion (EMFILE and friends) is reported as
  /// OutOfRange: the listener is still healthy, retry after backing off.
  /// Anything else (IoError) means the listener itself is broken.
  Status Accept(int timeout_ms, StreamSocket* accepted);

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace tcomp

#endif  // TCOMP_SERVICE_SOCKET_H_
