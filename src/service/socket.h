#ifndef TCOMP_SERVICE_SOCKET_H_
#define TCOMP_SERVICE_SOCKET_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace tcomp {

/// Thin RAII wrappers over loopback POSIX TCP sockets — the only
/// transport the service needs, kept deliberately minimal so everything
/// above it (framing, protocol, sessions) is testable in-process without
/// a real socket. All operations take millisecond timeouts implemented
/// with poll(); a timeout is reported as Status::OutOfRange so callers
/// can distinguish "slow peer" from "broken peer" (IoError).
class StreamSocket {
 public:
  StreamSocket() = default;
  explicit StreamSocket(int fd) : fd_(fd) {}
  ~StreamSocket();

  StreamSocket(StreamSocket&& other) noexcept;
  StreamSocket& operator=(StreamSocket&& other) noexcept;
  StreamSocket(const StreamSocket&) = delete;
  StreamSocket& operator=(const StreamSocket&) = delete;

  /// Connects to 127.0.0.1:port.
  static Status Connect(uint16_t port, int timeout_ms, StreamSocket* out);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  void Close();

  /// Reads up to `n` bytes into `buf`. Returns the byte count via *read;
  /// 0 means orderly EOF. OutOfRange on timeout. Works on both blocking
  /// and nonblocking descriptors: a spurious wakeup (poll ready but the
  /// read itself reporting EAGAIN) re-polls instead of failing.
  Status Read(char* buf, size_t n, int timeout_ms, size_t* read);

  /// Writes all of `data`, waiting up to timeout_ms for each chunk.
  /// Safe on nonblocking descriptors: a short write or EAGAIN between
  /// poll and write re-polls and resumes at the unwritten suffix, so a
  /// slow reader can never cause dropped or interleaved response bytes.
  Status WriteAll(const std::string& data, int timeout_ms);

  /// Toggles O_NONBLOCK on the descriptor.
  Status SetNonBlocking(bool enable);

  /// Single nonblocking read attempt (no poll). On success *read_out is
  /// the byte count (0 = orderly EOF, *would_block=false). When the
  /// socket has no data right now, returns OK with *would_block=true.
  Status ReadSome(char* buf, size_t n, size_t* read_out, bool* would_block);

  /// Single nonblocking write attempt (no poll). *written is how much of
  /// [data, data+n) the kernel took; *would_block=true when the send
  /// buffer is full (possibly after a short write).
  Status WriteSome(const char* data, size_t n, size_t* written,
                   bool* would_block);

 private:
  int fd_ = -1;
};

/// Listening socket bound to 127.0.0.1. Port 0 binds an ephemeral port;
/// port() reports the actual one.
class ListenSocket {
 public:
  ListenSocket() = default;
  ~ListenSocket();

  ListenSocket(ListenSocket&& other) noexcept;
  ListenSocket& operator=(ListenSocket&& other) noexcept;
  ListenSocket(const ListenSocket&) = delete;
  ListenSocket& operator=(const ListenSocket&) = delete;

  static Status Listen(uint16_t port, ListenSocket* out);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  uint16_t port() const { return port_; }
  void Close();

  /// Waits up to timeout_ms for a connection. On timeout — and when the
  /// pending connection was aborted by the peer before we accepted it —
  /// returns OK with *accepted invalid, so the caller's accept loop can
  /// poll its stop flag between waits without treating that as an error.
  /// Transient resource exhaustion (EMFILE and friends) is reported as
  /// OutOfRange: the listener is still healthy, retry after backing off.
  /// Anything else (IoError) means the listener itself is broken.
  Status Accept(int timeout_ms, StreamSocket* accepted);

  /// Single accept attempt via accept4(SOCK_NONBLOCK | SOCK_CLOEXEC) —
  /// the event-loop entry point; the listener itself should be
  /// nonblocking. Same error taxonomy as Accept(), plus
  /// *would_block=true (with OK, *accepted invalid) when no connection
  /// is pending. Accepted sockets come back already nonblocking.
  Status AcceptNonBlocking(StreamSocket* accepted, bool* would_block);

  /// Toggles O_NONBLOCK on the listening descriptor.
  Status SetNonBlocking(bool enable);

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace tcomp

#endif  // TCOMP_SERVICE_SOCKET_H_
