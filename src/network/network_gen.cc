#include "network/network_gen.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "util/logging.h"
#include "util/random.h"

namespace tcomp {
namespace {

/// A rectilinear route on the grid: drive along x to the target column,
/// then along y to the target row. Parameterized by driven distance.
class GridRoute {
 public:
  GridRoute() = default;
  GridRoute(Point from, Point to) : from_(from), to_(to) {
    leg1_ = std::abs(to.x - from.x);
    leg2_ = std::abs(to.y - from.y);
  }

  double length() const { return leg1_ + leg2_; }

  Point At(double s) const {
    s = std::clamp(s, 0.0, length());
    if (s <= leg1_) {
      double dir = to_.x >= from_.x ? 1.0 : -1.0;
      return Point{from_.x + dir * s, from_.y};
    }
    double dir = to_.y >= from_.y ? 1.0 : -1.0;
    return Point{to_.x, from_.y + dir * (s - leg1_)};
  }

 private:
  Point from_;
  Point to_;
  double leg1_ = 0.0;
  double leg2_ = 0.0;
};

}  // namespace

NetworkTrafficDataset GenerateNetworkTraffic(
    const NetworkTrafficOptions& options) {
  TCOMP_CHECK_GT(options.num_vehicles, 0);
  Pcg32 rng(options.seed);

  NetworkTrafficDataset out;
  out.graph = RoadGraph::Grid(options.grid_width, options.grid_height,
                              options.spacing);
  out.graph.Freeze();

  auto random_intersection = [&]() {
    return Point{rng.NextInt(0, options.grid_width - 1) * options.spacing,
                 rng.NextInt(0, options.grid_height - 1) * options.spacing};
  };

  const int n = options.num_vehicles;
  // Leaders drive routes; followers replay the leader's track delayed by
  // (position in platoon)·headway meters ≙ headway/speed snapshots.
  std::vector<int32_t> leader_of(n, -1);
  std::vector<int32_t> rank_in_platoon(n, 0);
  struct LeaderState {
    GridRoute route;
    double driven = 0.0;
    std::deque<Point> history;  // one entry per snapshot
  };
  std::vector<LeaderState> state(n);

  int platooned = static_cast<int>(options.platoon_fraction * n);
  int uid = 0;
  while (uid < platooned) {
    int size = rng.NextInt(options.platoon_size_min,
                           options.platoon_size_max);
    size = std::min(size, platooned - uid);
    if (size <= 0) break;
    ObjectSet members;
    for (int k = 0; k < size; ++k) {
      members.push_back(static_cast<ObjectId>(uid + k));
      if (k > 0) {
        leader_of[uid + k] = uid;
        rank_in_platoon[uid + k] = k;
      }
    }
    out.ground_truth.push_back(std::move(members));
    uid += size;
  }
  for (int i = 0; i < n; ++i) {
    if (leader_of[i] >= 0) continue;
    Point start = random_intersection();
    state[i].route = GridRoute(start, random_intersection());
  }

  // Warm-up: leaders accumulate enough history for the longest follower
  // delay before the first emitted snapshot.
  int max_delay = static_cast<int>(
      std::ceil(options.platoon_size_max * options.headway /
                options.speed)) + 1;

  out.stream.reserve(options.num_snapshots);
  for (int t = -max_delay; t < options.num_snapshots; ++t) {
    // Advance leaders and independents.
    for (int i = 0; i < n; ++i) {
      if (leader_of[i] >= 0) continue;
      LeaderState& ls = state[i];
      ls.driven += options.speed * rng.NextDouble(0.85, 1.15);
      if (ls.driven >= ls.route.length()) {
        Point here = ls.route.At(ls.route.length());
        ls.route = GridRoute(here, random_intersection());
        ls.driven = 0.0;
      }
      ls.history.push_back(ls.route.At(ls.driven));
      if (static_cast<int>(ls.history.size()) > max_delay + 1) {
        ls.history.pop_front();
      }
    }
    if (t < 0) continue;

    std::vector<ObjectPosition> positions;
    positions.reserve(n);
    for (int i = 0; i < n; ++i) {
      Point p;
      if (leader_of[i] < 0) {
        p = state[i].history.back();
      } else {
        const LeaderState& ls = state[leader_of[i]];
        // Delay in snapshots for this follower's headway.
        double delay_snapshots =
            rank_in_platoon[i] * options.headway / options.speed;
        int whole = static_cast<int>(delay_snapshots);
        size_t last = ls.history.size() - 1;
        size_t idx = last - std::min<size_t>(last, whole + 1);
        size_t idx2 = last - std::min<size_t>(last, whole);
        double frac = delay_snapshots - whole;
        Point older = ls.history[idx];
        Point newer = ls.history[idx2];
        p = newer + (older - newer) * frac;
      }
      p.x += options.gps_noise * rng.NextGaussian();
      p.y += options.gps_noise * rng.NextGaussian();
      positions.push_back(ObjectPosition{static_cast<ObjectId>(i), p});
    }
    out.stream.push_back(
        Snapshot(std::move(positions), options.snapshot_duration));
  }
  return out;
}

}  // namespace tcomp
