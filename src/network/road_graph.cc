#include "network/road_graph.h"

#include <algorithm>
#include <cmath>
#include <queue>
#include <unordered_map>

#include "util/logging.h"

namespace tcomp {
namespace {

/// Distance from point `p` to segment (a, b), and the projection offset
/// from `a` along the segment.
double PointToSegment(Point p, Point a, Point b, double* offset) {
  Point d = b - a;
  double len2 = d.x * d.x + d.y * d.y;
  if (len2 == 0.0) {
    *offset = 0.0;
    return Distance(p, a);
  }
  double t = ((p.x - a.x) * d.x + (p.y - a.y) * d.y) / len2;
  t = std::clamp(t, 0.0, 1.0);
  Point proj = a + d * t;
  *offset = t * std::sqrt(len2);
  return Distance(p, proj);
}

}  // namespace

NodeId RoadGraph::AddNode(Point pos) {
  nodes_.push_back(pos);
  adjacency_.emplace_back();
  frozen_ = false;
  return static_cast<NodeId>(nodes_.size() - 1);
}

StatusOr<EdgeId> RoadGraph::AddEdge(NodeId from, NodeId to, double length) {
  if (from >= nodes_.size() || to >= nodes_.size()) {
    return Status::InvalidArgument("edge endpoint out of range");
  }
  if (from == to) {
    return Status::InvalidArgument("self-loop edges are not allowed");
  }
  Edge e;
  e.from = from;
  e.to = to;
  e.length = length > 0.0 ? length : Distance(nodes_[from], nodes_[to]);
  edges_.push_back(e);
  EdgeId id = static_cast<EdgeId>(edges_.size() - 1);
  adjacency_[from].push_back(id);
  adjacency_[to].push_back(id);
  frozen_ = false;
  return id;
}

Point RoadGraph::Coordinates(const NetworkPosition& p) const {
  const Edge& e = edges_[p.edge];
  double t = e.length == 0.0 ? 0.0 : std::clamp(p.offset / e.length, 0.0,
                                                1.0);
  return nodes_[e.from] + (nodes_[e.to] - nodes_[e.from]) * t;
}

std::vector<std::pair<NodeId, double>> RoadGraph::NodesWithin(
    const NetworkPosition& source, double bound) const {
  const Edge& e = edges_[source.edge];
  // Seed the frontier with the two endpoints of the source edge.
  using QueueItem = std::pair<double, NodeId>;  // (distance, node)
  std::priority_queue<QueueItem, std::vector<QueueItem>,
                      std::greater<QueueItem>>
      frontier;
  std::unordered_map<NodeId, double> best;
  auto relax = [&](NodeId n, double d) {
    if (d > bound) return;
    auto it = best.find(n);
    if (it != best.end() && it->second <= d) return;
    best[n] = d;
    frontier.push({d, n});
  };
  relax(e.from, source.offset);
  relax(e.to, e.length - source.offset);

  std::vector<std::pair<NodeId, double>> out;
  while (!frontier.empty()) {
    auto [d, n] = frontier.top();
    frontier.pop();
    auto it = best.find(n);
    if (it == best.end() || it->second < d) continue;  // stale entry
    out.push_back({n, d});
    for (EdgeId eid : adjacency_[n]) {
      const Edge& edge = edges_[eid];
      NodeId other = edge.from == n ? edge.to : edge.from;
      relax(other, d + edge.length);
    }
  }
  return out;
}

double RoadGraph::NetworkDistance(const NetworkPosition& a,
                                  const NetworkPosition& b,
                                  double bound) const {
  double direct = kInfinity;
  if (a.edge == b.edge) {
    direct = std::abs(a.offset - b.offset);
    if (direct <= 0.0) return 0.0;
  }
  // Via endpoints: bounded Dijkstra from a, then attach b's edge.
  const Edge& eb = edges_[b.edge];
  double best = direct;
  for (const auto& [node, dist] : NodesWithin(a, std::min(bound, best))) {
    if (node == eb.from) {
      best = std::min(best, dist + b.offset);
    }
    if (node == eb.to) {
      best = std::min(best, dist + eb.length - b.offset);
    }
  }
  return best <= bound ? best : kInfinity;
}

void RoadGraph::CellRangeForEdge(EdgeId e, int64_t* x0, int64_t* y0,
                                 int64_t* x1, int64_t* y1) const {
  Point a = nodes_[edges_[e].from];
  Point b = nodes_[edges_[e].to];
  *x0 = static_cast<int64_t>(std::floor(std::min(a.x, b.x) / cell_size_));
  *y0 = static_cast<int64_t>(std::floor(std::min(a.y, b.y) / cell_size_));
  *x1 = static_cast<int64_t>(std::floor(std::max(a.x, b.x) / cell_size_));
  *y1 = static_cast<int64_t>(std::floor(std::max(a.y, b.y) / cell_size_));
}

void RoadGraph::Freeze() const {
  if (frozen_ || edges_.empty()) {
    frozen_ = true;
    return;
  }
  // Cell size: the mean edge length keeps per-cell edge lists short.
  double total = 0.0;
  for (const Edge& e : edges_) total += e.length;
  cell_size_ = std::max(1e-9, total / static_cast<double>(edges_.size()));

  int64_t min_x = std::numeric_limits<int64_t>::max();
  int64_t min_y = std::numeric_limits<int64_t>::max();
  int64_t max_x = std::numeric_limits<int64_t>::min();
  int64_t max_y = std::numeric_limits<int64_t>::min();
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    int64_t x0, y0, x1, y1;
    CellRangeForEdge(e, &x0, &y0, &x1, &y1);
    min_x = std::min(min_x, x0);
    min_y = std::min(min_y, y0);
    max_x = std::max(max_x, x1);
    max_y = std::max(max_y, y1);
  }
  grid_min_x_ = min_x;
  grid_min_y_ = min_y;
  grid_w_ = max_x - min_x + 1;
  grid_h_ = max_y - min_y + 1;
  cells_.assign(static_cast<size_t>(grid_w_ * grid_h_), {});
  for (EdgeId e = 0; e < edges_.size(); ++e) {
    int64_t x0, y0, x1, y1;
    CellRangeForEdge(e, &x0, &y0, &x1, &y1);
    for (int64_t x = x0; x <= x1; ++x) {
      for (int64_t y = y0; y <= y1; ++y) {
        cells_[static_cast<size_t>((y - grid_min_y_) * grid_w_ +
                                   (x - grid_min_x_))]
            .push_back(e);
      }
    }
  }
  frozen_ = true;
}

NetworkPosition RoadGraph::Snap(Point p, double* snap_distance) const {
  TCOMP_CHECK_GT(edges_.size(), 0u) << "cannot snap onto an empty graph";
  Freeze();

  NetworkPosition best_pos;
  double best = kInfinity;
  auto consider = [&](EdgeId e) {
    double offset;
    double d = PointToSegment(p, nodes_[edges_[e].from],
                              nodes_[edges_[e].to], &offset);
    if (d < best) {
      best = d;
      best_pos = NetworkPosition{e, offset};
    }
  };

  // Expand search rings around p's cell. A candidate found at distance d
  // rules out edges beyond ring floor(d/cell)+1 (cells at ring r contain
  // only geometry at distance > (r-1)·cell), so the scan stops as soon as
  // the ring index passes that limit.
  int64_t cx = static_cast<int64_t>(std::floor(p.x / cell_size_));
  int64_t cy = static_cast<int64_t>(std::floor(p.y / cell_size_));
  int64_t max_ring = grid_w_ + grid_h_;  // covers any in-grid point
  for (int64_t ring = 0; ring <= max_ring; ++ring) {
    if (best < kInfinity) {
      int64_t limit =
          static_cast<int64_t>(std::floor(best / cell_size_)) + 1;
      if (ring > limit) break;
    }
    for (int64_t x = cx - ring; x <= cx + ring; ++x) {
      for (int64_t y = cy - ring; y <= cy + ring; ++y) {
        if (std::max(std::abs(x - cx), std::abs(y - cy)) != ring) continue;
        if (x < grid_min_x_ || y < grid_min_y_ ||
            x >= grid_min_x_ + grid_w_ || y >= grid_min_y_ + grid_h_) {
          continue;
        }
        for (EdgeId e :
             cells_[static_cast<size_t>((y - grid_min_y_) * grid_w_ +
                                        (x - grid_min_x_))]) {
          consider(e);
        }
      }
    }
  }
  if (best == kInfinity) {
    // Point far outside the indexed area: fall back to a full scan.
    for (EdgeId e = 0; e < edges_.size(); ++e) consider(e);
  }
  if (snap_distance != nullptr) *snap_distance = best;
  return best_pos;
}

RoadGraph RoadGraph::Grid(int width, int height, double spacing) {
  TCOMP_CHECK_GT(width, 0);
  TCOMP_CHECK_GT(height, 0);
  RoadGraph g;
  for (int j = 0; j < height; ++j) {
    for (int i = 0; i < width; ++i) {
      g.AddNode(Point{i * spacing, j * spacing});
    }
  }
  auto id = [width](int i, int j) {
    return static_cast<NodeId>(j * width + i);
  };
  for (int j = 0; j < height; ++j) {
    for (int i = 0; i < width; ++i) {
      if (i + 1 < width) {
        g.AddEdge(id(i, j), id(i + 1, j)).ok();
      }
      if (j + 1 < height) {
        g.AddEdge(id(i, j), id(i, j + 1)).ok();
      }
    }
  }
  return g;
}

}  // namespace tcomp
