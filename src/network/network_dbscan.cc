#include "network/network_dbscan.h"

#include <algorithm>
#include <unordered_map>

#include "core/smart_closed.h"
#include "util/logging.h"
#include "util/sorted_ops.h"

namespace tcomp {

Clustering NetworkDbscan(const Snapshot& snapshot, const RoadGraph& graph,
                         const DbscanParams& params,
                         NetworkDbscanStats* stats) {
  const size_t n = snapshot.size();
  const double eps = params.epsilon;
  NetworkDbscanStats local;

  // Map-match every object and bucket by edge.
  std::vector<NetworkPosition> pos(n);
  std::unordered_map<EdgeId, std::vector<uint32_t>> by_edge;
  for (uint32_t i = 0; i < n; ++i) {
    pos[i] = graph.Snap(snapshot.pos(i));
    ++local.snap_operations;
    by_edge[pos[i].edge].push_back(i);
  }

  // Neighbor lists under network distance.
  std::vector<std::vector<uint32_t>> neighbors(n);
  for (uint32_t i = 0; i < n; ++i) {
    neighbors[i].push_back(i);

    // Same-edge neighbors: direct along-edge distance. (A detour through
    // the endpoints cannot beat the direct distance on a shortest-path
    // metric with positive edge lengths, but the via-endpoint pass below
    // covers exotic multigraphs anyway.)
    for (uint32_t j : by_edge[pos[i].edge]) {
      if (j == i) continue;
      ++local.distance_evaluations;
      if (std::abs(pos[i].offset - pos[j].offset) <= eps) {
        neighbors[i].push_back(j);
      }
    }

    // Cross-edge neighbors through one bounded expansion.
    ++local.expansions;
    std::unordered_map<NodeId, double> node_dist;
    for (const auto& [node, d] : graph.NodesWithin(pos[i], eps)) {
      node_dist[node] = d;
    }
    // tcomp-lint: allow(unordered-iter): neighbors[i] is SortUnique'd below
    for (const auto& [node, d] : node_dist) {
      for (EdgeId eid : graph.EdgesAt(node)) {
        auto it = by_edge.find(eid);
        if (it == by_edge.end()) continue;
        const RoadGraph::Edge& edge = graph.edge(eid);
        for (uint32_t j : it->second) {
          if (j == i || pos[j].edge == pos[i].edge) continue;
          double via = edge.from == node
                           ? d + pos[j].offset
                           : d + edge.length - pos[j].offset;
          ++local.distance_evaluations;
          if (via <= eps) neighbors[i].push_back(j);
        }
      }
    }
    SortUnique(&neighbors[i]);
  }

  std::vector<bool> core(n, false);
  for (uint32_t i = 0; i < n; ++i) {
    core[i] = neighbors[i].size() >= static_cast<size_t>(params.mu);
  }

  if (stats != nullptr) {
    stats->snap_operations += local.snap_operations;
    stats->expansions += local.expansions;
    stats->distance_evaluations += local.distance_evaluations;
  }
  return internal::BuildClusteringFromCores(snapshot, core, neighbors);
}

std::unique_ptr<CompanionDiscoverer> MakeNetworkDiscoverer(
    const RoadGraph& graph, const DiscoveryParams& params) {
  graph.Freeze();
  DbscanParams cluster = params.cluster;
  return std::make_unique<SmartClosedDiscoverer>(
      params, [&graph, cluster](const Snapshot& snapshot) {
        return NetworkDbscan(snapshot, graph, cluster);
      });
}

}  // namespace tcomp
