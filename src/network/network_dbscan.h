#ifndef TCOMP_NETWORK_NETWORK_DBSCAN_H_
#define TCOMP_NETWORK_NETWORK_DBSCAN_H_

#include <cstdint>
#include <memory>

#include "core/dbscan.h"
#include "core/discoverer.h"
#include "core/snapshot.h"
#include "network/road_graph.h"

namespace tcomp {

struct NetworkDbscanStats {
  int64_t snap_operations = 0;      // map-matching calls
  int64_t expansions = 0;           // bounded Dijkstra expansions
  int64_t distance_evaluations = 0;  // object-pair network distances
};

/// Density clustering of a snapshot under *road-network* distance (the
/// paper's Section VIII extension): each object is map-matched onto the
/// graph, and N_ε(o) contains the objects within network distance ε —
/// two platoons on parallel avenues one block apart are Euclidean-close
/// but network-far, and only this clustering separates them.
///
/// Output follows the exact deterministic Clustering spec of
/// core/dbscan.h, so the result plugs into the smart-and-closed companion
/// machinery unchanged.
///
/// Implementation: objects are bucketed per edge; each object runs one
/// bounded Dijkstra (radius ε) from its network position and scores
/// same-edge neighbors directly and cross-edge neighbors through the
/// expansion's node distances.
Clustering NetworkDbscan(const Snapshot& snapshot, const RoadGraph& graph,
                         const DbscanParams& params,
                         NetworkDbscanStats* stats = nullptr);

/// A smart-and-closed companion discoverer whose "traveling together"
/// relation is network-constrained density connection. `graph` must
/// outlive the discoverer.
std::unique_ptr<CompanionDiscoverer> MakeNetworkDiscoverer(
    const RoadGraph& graph, const DiscoveryParams& params);

}  // namespace tcomp

#endif  // TCOMP_NETWORK_NETWORK_DBSCAN_H_
