#ifndef TCOMP_NETWORK_ROAD_GRAPH_H_
#define TCOMP_NETWORK_ROAD_GRAPH_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "core/types.h"
#include "util/status.h"

namespace tcomp {

using NodeId = uint32_t;
using EdgeId = uint32_t;

/// A position on the road network: a point `offset` meters from the
/// `From()` endpoint of edge `edge`.
struct NetworkPosition {
  EdgeId edge = 0;
  double offset = 0.0;
};

/// An undirected road network embedded in the plane (paper Section VIII
/// future work: companion discovery "in more complex scenarios, such as
/// road networks"). Nodes are intersections with coordinates; edges are
/// road segments with lengths (defaulting to the Euclidean node
/// distance). The graph answers the two queries network-constrained
/// clustering needs: bounded-radius shortest-path expansion and
/// map-matching of free points onto the nearest edge.
class RoadGraph {
 public:
  struct Edge {
    NodeId from = 0;
    NodeId to = 0;
    double length = 0.0;
  };

  /// Adds a node at `pos`; returns its id (dense, starting at 0).
  NodeId AddNode(Point pos);

  /// Adds an undirected edge. `length` ≤ 0 means "use the Euclidean
  /// distance between the endpoints". Returns the edge id, or an error
  /// for invalid node ids / self-loops.
  StatusOr<EdgeId> AddEdge(NodeId from, NodeId to, double length = 0.0);

  size_t num_nodes() const { return nodes_.size(); }
  size_t num_edges() const { return edges_.size(); }
  Point node_pos(NodeId n) const { return nodes_[n]; }
  const Edge& edge(EdgeId e) const { return edges_[e]; }

  /// Edges incident to `n` (ids into edge()).
  const std::vector<EdgeId>& EdgesAt(NodeId n) const {
    return adjacency_[n];
  }

  /// The planar coordinates of a network position.
  Point Coordinates(const NetworkPosition& p) const;

  /// Shortest network distance between two positions, capped at `bound`:
  /// returns +inf when the true distance exceeds it (bounded Dijkstra —
  /// the ε-neighborhood primitive of network DBSCAN). Positions on the
  /// same edge use the along-edge distance if it is shorter than any
  /// detour through the endpoints.
  double NetworkDistance(const NetworkPosition& a, const NetworkPosition& b,
                         double bound) const;

  /// Bounded single-source shortest paths from a network position:
  /// returns (node, distance) pairs for every node within `bound`.
  std::vector<std::pair<NodeId, double>> NodesWithin(
      const NetworkPosition& source, double bound) const;

  /// Maps a planar point to the nearest network position (and optionally
  /// its snap distance). Linear scan over edges accelerated by a coarse
  /// bounding-box grid built lazily on first use; call Freeze() after
  /// construction for deterministic timing.
  NetworkPosition Snap(Point p, double* snap_distance = nullptr) const;

  /// Builds the spatial index (idempotent).
  void Freeze() const;

  /// Convenience: a w×h Manhattan grid with `spacing` between
  /// intersections (node (i,j) = j*w + i).
  static RoadGraph Grid(int width, int height, double spacing);

  static constexpr double kInfinity =
      std::numeric_limits<double>::infinity();

 private:
  struct CellKey {
    int64_t cx;
    int64_t cy;
    bool operator==(const CellKey& o) const {
      return cx == o.cx && cy == o.cy;
    }
  };
  struct CellKeyHash {
    size_t operator()(const CellKey& k) const {
      uint64_t h = static_cast<uint64_t>(k.cx) * 0x9e3779b97f4a7c15ULL;
      h ^= static_cast<uint64_t>(k.cy) + 0x9e3779b97f4a7c15ULL + (h << 6) +
           (h >> 2);
      return static_cast<size_t>(h);
    }
  };

  std::vector<Point> nodes_;
  std::vector<Edge> edges_;
  std::vector<std::vector<EdgeId>> adjacency_;

  // Lazy spatial index over edges for Snap().
  mutable bool frozen_ = false;
  mutable double cell_size_ = 0.0;
  mutable std::vector<std::vector<EdgeId>> cells_;
  mutable int64_t grid_min_x_ = 0, grid_min_y_ = 0;
  mutable int64_t grid_w_ = 0, grid_h_ = 0;

  void CellRangeForEdge(EdgeId e, int64_t* x0, int64_t* y0, int64_t* x1,
                        int64_t* y1) const;
};

}  // namespace tcomp

#endif  // TCOMP_NETWORK_ROAD_GRAPH_H_
