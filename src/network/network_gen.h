#ifndef TCOMP_NETWORK_NETWORK_GEN_H_
#define TCOMP_NETWORK_NETWORK_GEN_H_

#include <cstdint>

#include "core/snapshot.h"
#include "core/types.h"
#include "network/road_graph.h"

namespace tcomp {

/// Generator for road-network-constrained traffic: vehicles drive the
/// grid network along rectilinear routes between random intersections;
/// platoon followers replay their leader's positions with a fixed time
/// delay (so the platoon stays strung out *along the road*, exactly the
/// structure Euclidean clustering mishandles at junctions and on parallel
/// avenues).
struct NetworkTrafficOptions {
  int grid_width = 12;
  int grid_height = 12;
  double spacing = 400.0;  // meters between intersections

  int num_vehicles = 300;
  int num_snapshots = 120;
  double snapshot_duration = 1.0;
  /// Meters driven per snapshot.
  double speed = 150.0;
  /// Fraction of vehicles organized in platoons.
  double platoon_fraction = 0.4;
  int platoon_size_min = 4;
  int platoon_size_max = 10;
  /// Followers trail the vehicle ahead by this many meters of road.
  double headway = 15.0;
  /// GPS noise (σ, meters) — small relative to ε so map-matching stays
  /// unambiguous.
  double gps_noise = 3.0;

  uint64_t seed = 31;
};

struct NetworkTrafficDataset {
  RoadGraph graph;
  SnapshotStream stream;
  /// Platoon membership (ground truth companions).
  std::vector<ObjectSet> ground_truth;
};

NetworkTrafficDataset GenerateNetworkTraffic(
    const NetworkTrafficOptions& options);

}  // namespace tcomp

#endif  // TCOMP_NETWORK_NETWORK_GEN_H_
