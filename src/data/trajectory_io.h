#ifndef TCOMP_DATA_TRAJECTORY_IO_H_
#define TCOMP_DATA_TRAJECTORY_IO_H_

#include <string>
#include <vector>

#include "core/snapshot.h"
#include "stream/geo.h"
#include "stream/record.h"
#include "util/status.h"

namespace tcomp {

/// A GPS point as found in raw trajectory files (before projection).
struct GpsRecord {
  ObjectId object = 0;
  double timestamp = 0.0;  // seconds
  LatLon pos;
};

/// Reads a record CSV: one `object_id,timestamp,x,y` row per line
/// (header lines starting with '#' or a non-numeric field are skipped).
/// Appends to `*records`.
Status ReadRecordCsv(const std::string& path,
                     std::vector<TrajectoryRecord>* records);

/// Writes records as the CSV format ReadRecordCsv() accepts.
Status WriteRecordCsv(const std::string& path,
                      const std::vector<TrajectoryRecord>& records);

/// Reads one GeoLife .plt file (6 header lines; then
/// `lat,lon,0,altitude,serial_days,date,time` rows) as `object`'s
/// trajectory. Timestamps are the serial day converted to seconds.
Status ReadGeoLifePlt(const std::string& path, ObjectId object,
                      std::vector<GpsRecord>* records);

/// Reads one T-Drive taxi file (`taxi_id,YYYY-MM-DD HH:MM:SS,lon,lat`
/// rows, no header) — the paper's D1 source format. The taxi id in the
/// file is used as the object id; timestamps become seconds since the
/// Unix epoch (the datetimes are treated as UTC — only differences
/// matter downstream).
Status ReadTDriveTxt(const std::string& path,
                     std::vector<GpsRecord>* records);

/// Projects GPS records into the local metric plane around the first
/// record (or a caller-provided reference).
std::vector<TrajectoryRecord> ProjectGpsRecords(
    const std::vector<GpsRecord>& records);
std::vector<TrajectoryRecord> ProjectGpsRecords(
    const std::vector<GpsRecord>& records, LatLon reference);

/// Flattens a snapshot stream into records (snapshot i → timestamp
/// i·seconds_per_snapshot), e.g. to exercise the sliding window or write
/// generated datasets out as CSV.
std::vector<TrajectoryRecord> StreamToRecords(const SnapshotStream& stream,
                                              double seconds_per_snapshot);

}  // namespace tcomp

#endif  // TCOMP_DATA_TRAJECTORY_IO_H_
