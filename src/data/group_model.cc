#include "data/group_model.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/random.h"

namespace tcomp {
namespace {

constexpr double kTwoPi = 6.28318530717958647692;

struct Group {
  Point center;
  Point target;
  std::vector<uint32_t> members;  // object indices
  bool alive = true;
};

struct FreeObject {
  Point pos;
  Point target;
};

Point RandomPoint(Pcg32& rng, double area) {
  return Point{rng.NextDouble(0.0, area), rng.NextDouble(0.0, area)};
}

/// Moves `pos` toward `target` by at most `speed`; re-rolls the target on
/// arrival. Returns the new position.
Point StepToward(Point pos, Point* target, double speed, Pcg32& rng,
                 double area) {
  double d = Distance(pos, *target);
  if (d <= speed) {
    Point arrived = *target;
    *target = RandomPoint(rng, area);
    return arrived;
  }
  Point dir = (*target - pos) / d;
  return pos + dir * speed;
}

Point DiscOffset(Pcg32& rng, double radius) {
  // Uniform in a disc (rejection-free via sqrt radius).
  double r = radius * std::sqrt(rng.NextDouble());
  double theta = rng.NextDouble(0.0, kTwoPi);
  return Point{r * std::cos(theta), r * std::sin(theta)};
}

}  // namespace

GroupDataset GenerateGroupStream(const GroupModelOptions& options) {
  TCOMP_CHECK_GT(options.num_objects, 0);
  TCOMP_CHECK_GT(options.num_snapshots, 0);
  TCOMP_CHECK_GE(options.max_group_size, options.min_group_size);
  Pcg32 rng(options.seed);

  const uint32_t n = static_cast<uint32_t>(options.num_objects);
  const double area = options.area_size;

  // Object state.
  std::vector<Point> offsets(n);     // in-group offset (grouped objects)
  std::vector<int32_t> group_of(n, -1);
  std::vector<FreeObject> free_state(n);

  // Partition the grouped objects into groups.
  std::vector<Group> groups;
  uint32_t grouped_count =
      static_cast<uint32_t>(options.group_fraction * n);
  uint32_t next = 0;
  while (next < grouped_count) {
    uint32_t size = static_cast<uint32_t>(rng.NextInt(
        options.min_group_size, options.max_group_size));
    size = std::min(size, grouped_count - next);
    if (size == 0) break;
    Group g;
    g.center = RandomPoint(rng, area);
    g.target = RandomPoint(rng, area);
    for (uint32_t k = 0; k < size; ++k) {
      uint32_t oid = next + k;
      g.members.push_back(oid);
      group_of[oid] = static_cast<int32_t>(groups.size());
      offsets[oid] = DiscOffset(rng, options.group_spread);
    }
    next += size;
    groups.push_back(std::move(g));
  }
  for (uint32_t oid = next; oid < n; ++oid) {
    free_state[oid].pos = RandomPoint(rng, area);
    free_state[oid].target = RandomPoint(rng, area);
  }

  GroupDataset out;
  out.stream.reserve(options.num_snapshots);

  for (int t = 0; t < options.num_snapshots; ++t) {
    // --- Advance group centers. ---
    for (Group& g : groups) {
      if (!g.alive) continue;
      g.center =
          StepToward(g.center, &g.target, options.group_speed, rng, area);
    }

    // --- Membership churn: leaves. ---
    for (Group& g : groups) {
      if (!g.alive) continue;
      for (size_t k = 0; k < g.members.size();) {
        if (g.members.size() > 2 &&
            rng.NextBernoulli(options.leave_probability)) {
          uint32_t oid = g.members[k];
          group_of[oid] = -1;
          free_state[oid].pos = g.center + offsets[oid];
          free_state[oid].target = RandomPoint(rng, area);
          g.members.erase(g.members.begin() + static_cast<int64_t>(k));
        } else {
          ++k;
        }
      }
    }

    // --- Splits. ---
    size_t num_groups_now = groups.size();
    for (size_t gi = 0; gi < num_groups_now; ++gi) {
      Group& g = groups[gi];
      if (!g.alive || g.members.size() < 6) continue;
      if (!rng.NextBernoulli(options.split_probability)) continue;
      Group half;
      half.center = g.center;
      half.target = RandomPoint(rng, area);
      size_t take = g.members.size() / 2;
      for (size_t k = 0; k < take; ++k) {
        uint32_t oid = g.members.back();
        g.members.pop_back();
        half.members.push_back(oid);
        group_of[oid] = static_cast<int32_t>(groups.size());
      }
      groups.push_back(std::move(half));
    }

    // --- Merges. ---
    if (options.merge_distance > 0.0) {
      for (size_t i = 0; i < groups.size(); ++i) {
        if (!groups[i].alive) continue;
        for (size_t j = i + 1; j < groups.size(); ++j) {
          if (!groups[j].alive) continue;
          if (Distance(groups[i].center, groups[j].center) >
              options.merge_distance) {
            continue;
          }
          for (uint32_t oid : groups[j].members) {
            groups[i].members.push_back(oid);
            group_of[oid] = static_cast<int32_t>(i);
            offsets[oid] = DiscOffset(rng, options.group_spread);
          }
          groups[j].members.clear();
          groups[j].alive = false;
        }
      }
    }

    // --- Advance free objects. ---
    for (uint32_t oid = 0; oid < n; ++oid) {
      if (group_of[oid] >= 0) continue;
      FreeObject& f = free_state[oid];
      f.pos = StepToward(f.pos, &f.target, options.free_speed, rng, area);
    }

    // --- Emit the snapshot. ---
    std::vector<ObjectPosition> positions;
    positions.reserve(n);
    for (uint32_t oid = 0; oid < n; ++oid) {
      Point p;
      if (group_of[oid] >= 0) {
        const Group& g = groups[static_cast<size_t>(group_of[oid])];
        p = g.center + offsets[oid];
      } else {
        p = free_state[oid].pos;
      }
      p.x += options.member_jitter * rng.NextGaussian();
      p.y += options.member_jitter * rng.NextGaussian();
      positions.push_back(ObjectPosition{oid, p});
    }
    out.stream.push_back(
        Snapshot(std::move(positions), options.snapshot_duration));
  }

  for (const Group& g : groups) {
    if (!g.alive || g.members.empty()) continue;
    ObjectSet set(g.members.begin(), g.members.end());
    std::sort(set.begin(), set.end());
    out.final_groups.push_back(std::move(set));
  }
  return out;
}

}  // namespace tcomp
