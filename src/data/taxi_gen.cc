#include "data/taxi_gen.h"

#include <algorithm>
#include <vector>

#include "util/logging.h"
#include "util/random.h"

namespace tcomp {
namespace {

/// A vehicle walking the grid: heading 0..3 = +x, +y, -x, -y.
struct GridWalker {
  Point pos;
  int heading = 0;
  double to_next = 0.0;  // distance to the next intersection

  static const Point kDirs[4];
};

const Point GridWalker::kDirs[4] = {
    {1.0, 0.0}, {0.0, 1.0}, {-1.0, 0.0}, {0.0, -1.0}};

class GridCity {
 public:
  GridCity(double block, int blocks) : block_(block), blocks_(blocks) {}

  double extent() const { return block_ * blocks_; }

  GridWalker SpawnAtIntersection(Pcg32& rng) const {
    GridWalker w;
    int ix = rng.NextInt(1, blocks_ - 1);
    int iy = rng.NextInt(1, blocks_ - 1);
    w.pos = Point{ix * block_, iy * block_};
    w.heading = rng.NextInt(0, 3);
    w.to_next = block_;
    return w;
  }

  /// Drives the walker `dist` meters, turning randomly at intersections
  /// (straight 50%, left 25%, right 25%, adjusted at the boundary).
  void Drive(GridWalker* w, double dist, Pcg32& rng) const {
    while (dist > 0.0) {
      if (w->to_next > dist) {
        w->pos = w->pos + GridWalker::kDirs[w->heading] * dist;
        w->to_next -= dist;
        return;
      }
      w->pos = w->pos + GridWalker::kDirs[w->heading] * w->to_next;
      dist -= w->to_next;
      w->to_next = block_;
      // Pick the next heading; re-roll until it stays inside the city.
      for (int attempt = 0; attempt < 8; ++attempt) {
        int turn = rng.NextInt(0, 3);
        int heading = w->heading;
        if (turn == 1) heading = (heading + 1) % 4;       // left, 25%
        else if (turn == 2) heading = (heading + 3) % 4;  // right, 25%
        Point probe = w->pos + GridWalker::kDirs[heading] * block_;
        if (probe.x >= 0.0 && probe.x <= extent() && probe.y >= 0.0 &&
            probe.y <= extent()) {
          w->heading = heading;
          break;
        }
        // Against the wall: force a turn on the next attempt.
        w->heading = (w->heading + 1) % 4;
      }
    }
  }

 private:
  double block_;
  int blocks_;
};

}  // namespace

SnapshotStream GenerateTaxi(const TaxiOptions& options) {
  TCOMP_CHECK_GT(options.num_taxis, 0);
  Pcg32 rng(options.seed);
  GridCity city(options.block_size, options.grid_blocks);

  const int n = options.num_taxis;
  // Platoon assignment: leaders walk the grid; followers shadow their
  // leader with a persistent offset.
  std::vector<int32_t> leader_of(n, -1);  // -1: independent or leader
  std::vector<Point> follower_offset(n);
  std::vector<GridWalker> walker(n);

  int platooned = static_cast<int>(options.platoon_fraction * n);
  int uid = 0;
  while (uid < platooned) {
    int size = rng.NextInt(options.platoon_size_min,
                           options.platoon_size_max);
    size = std::min(size, platooned - uid);
    if (size <= 0) break;
    int leader = uid;
    walker[leader] = city.SpawnAtIntersection(rng);
    for (int k = 1; k < size; ++k) {
      int f = uid + k;
      leader_of[f] = leader;
      follower_offset[f] =
          Point{rng.NextDouble(-options.platoon_spread,
                               options.platoon_spread),
                rng.NextDouble(-options.platoon_spread,
                               options.platoon_spread)};
    }
    uid += size;
  }
  for (; uid < n; ++uid) {
    walker[uid] = city.SpawnAtIntersection(rng);
  }

  SnapshotStream stream;
  stream.reserve(options.num_snapshots);
  for (int t = 0; t < options.num_snapshots; ++t) {
    // Move leaders and independents.
    for (int i = 0; i < n; ++i) {
      if (leader_of[i] >= 0) continue;
      // Speed varies per taxi per interval (traffic).
      double dist = options.speed * rng.NextDouble(0.6, 1.3);
      city.Drive(&walker[i], dist, rng);
    }
    // Followers defect occasionally and become independent walkers.
    for (int i = 0; i < n; ++i) {
      if (leader_of[i] < 0) continue;
      if (rng.NextBernoulli(options.defect_probability)) {
        walker[i] = walker[leader_of[i]];
        leader_of[i] = -1;
      }
    }

    std::vector<ObjectPosition> positions;
    positions.reserve(n);
    for (int i = 0; i < n; ++i) {
      Point p = leader_of[i] >= 0
                    ? walker[leader_of[i]].pos + follower_offset[i]
                    : walker[i].pos;
      p.x += options.gps_noise * rng.NextGaussian();
      p.y += options.gps_noise * rng.NextGaussian();
      positions.push_back(ObjectPosition{static_cast<ObjectId>(i), p});
    }
    stream.push_back(
        Snapshot(std::move(positions), options.snapshot_duration));
  }
  return stream;
}

}  // namespace tcomp
