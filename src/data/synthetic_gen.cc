#include "data/synthetic_gen.h"

#include "data/military_gen.h"
#include "data/taxi_gen.h"

namespace tcomp {
namespace {

DiscoveryParams DefaultThresholds(double epsilon, int mu) {
  DiscoveryParams p;
  p.cluster.epsilon = epsilon;
  p.cluster.mu = mu;
  p.size_threshold = 10;      // paper default δs
  p.duration_threshold = 10;  // paper default δt (snapshots)
  p.buddy_radius = 0.0;       // ε/2
  return p;
}

}  // namespace

Dataset MakeTaxiD1(int num_snapshots, uint64_t seed) {
  TaxiOptions options;
  options.num_snapshots = num_snapshots;
  options.seed = seed;
  Dataset d;
  d.name = "D1-taxi";
  d.stream = GenerateTaxi(options);
  d.default_params = DefaultThresholds(/*epsilon=*/80.0, /*mu=*/4);
  return d;
}

Dataset MakeMilitaryD2(int num_snapshots, uint64_t seed) {
  MilitaryOptions options;
  options.num_snapshots = num_snapshots;
  options.seed = seed;
  MilitaryDataset md = GenerateMilitary(options);
  Dataset d;
  d.name = "D2-military";
  d.stream = std::move(md.stream);
  d.ground_truth = std::move(md.ground_truth);
  d.default_params = DefaultThresholds(/*epsilon=*/24.0, /*mu=*/5);
  return d;
}

Dataset MakeSyntheticDataset(const std::string& name, int num_objects,
                             int num_snapshots, uint64_t seed) {
  GroupModelOptions options;
  options.num_objects = num_objects;
  options.num_snapshots = num_snapshots;
  options.seed = seed;
  GroupDataset gd = GenerateGroupStream(options);
  Dataset d;
  d.name = name;
  d.stream = std::move(gd.stream);
  d.default_params = DefaultThresholds(/*epsilon=*/20.0, /*mu=*/4);
  return d;
}

Dataset MakeSyntheticD3(int num_snapshots, uint64_t seed) {
  return MakeSyntheticDataset("D3-syn1k", 1000, num_snapshots, seed);
}

Dataset MakeSyntheticD4(int num_snapshots, uint64_t seed) {
  return MakeSyntheticDataset("D4-syn10k", 10000, num_snapshots, seed);
}

}  // namespace tcomp
