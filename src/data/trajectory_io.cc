#include "data/trajectory_io.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>

namespace tcomp {
namespace {

/// Splits a CSV line; no quoting support (trajectory files don't use it).
std::vector<std::string> SplitCsv(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream in(line);
  while (std::getline(in, field, ',')) fields.push_back(field);
  return fields;
}

/// Strict full-field parse: the whole field (modulo surrounding
/// whitespace, so "\r"-terminated Windows lines still load) must be
/// numeric. A prefix parse ("12abc" → 12) would silently corrupt a
/// dataset instead of failing the load.
bool ParseDouble(const std::string& s, double* out) {
  size_t begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return false;
  size_t end_idx = s.find_last_not_of(" \t\r");
  char* end = nullptr;
  *out = std::strtod(s.c_str() + begin, &end);
  return end == s.c_str() + end_idx + 1;
}

/// A getline loop ends on EOF *or* on a hard read error; only the former
/// is a complete file. Treating badbit as EOF silently truncates the
/// dataset and reports OK — the exact failure the Status discipline
/// exists to prevent.
Status CheckStreamEnd(const std::istream& in, const std::string& path) {
  if (in.bad()) {
    return Status::IoError("read error before end of " + path);
  }
  return Status::OK();
}

}  // namespace

Status ReadRecordCsv(const std::string& path,
                     std::vector<TrajectoryRecord>* records) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::string line;
  int64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::vector<std::string> fields = SplitCsv(line);
    if (fields.size() < 4) {
      return Status::Corruption(path + ":" + std::to_string(lineno) +
                                ": expected 4 fields");
    }
    double oid, ts, x, y;
    if (!ParseDouble(fields[0], &oid)) continue;  // header row
    if (!ParseDouble(fields[1], &ts) || !ParseDouble(fields[2], &x) ||
        !ParseDouble(fields[3], &y)) {
      return Status::Corruption(path + ":" + std::to_string(lineno) +
                                ": malformed numeric field");
    }
    records->push_back(TrajectoryRecord{
        static_cast<ObjectId>(oid), ts, Point{x, y}});
  }
  return CheckStreamEnd(in, path);
}

Status WriteRecordCsv(const std::string& path,
                      const std::vector<TrajectoryRecord>& records) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open " + path + " for writing");
  out << "# object_id,timestamp,x,y\n";
  char buf[160];
  for (const TrajectoryRecord& r : records) {
    std::snprintf(buf, sizeof(buf), "%u,%.3f,%.3f,%.3f\n", r.object,
                  r.timestamp, r.pos.x, r.pos.y);
    out << buf;
  }
  if (!out) return Status::IoError("write failed: " + path);
  return Status::OK();
}

Status ReadGeoLifePlt(const std::string& path, ObjectId object,
                      std::vector<GpsRecord>* records) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::string line;
  // GeoLife .plt files carry six header lines.
  for (int i = 0; i < 6 && std::getline(in, line); ++i) {
  }
  int64_t lineno = 6;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitCsv(line);
    if (fields.size() < 5) {
      return Status::Corruption(path + ":" + std::to_string(lineno) +
                                ": expected ≥5 fields");
    }
    double lat, lon, days;
    if (!ParseDouble(fields[0], &lat) || !ParseDouble(fields[1], &lon) ||
        !ParseDouble(fields[4], &days)) {
      return Status::Corruption(path + ":" + std::to_string(lineno) +
                                ": malformed numeric field");
    }
    records->push_back(
        GpsRecord{object, days * 86400.0, LatLon{lat, lon}});
  }
  return CheckStreamEnd(in, path);
}

namespace {

/// Parses "YYYY-MM-DD HH:MM:SS" into seconds since the Unix epoch,
/// treating the wall time as UTC. Returns false on malformed input.
/// Self-contained civil-time math (days-from-civil algorithm) — no
/// dependence on the process time zone.
bool ParseDateTime(const std::string& text, double* seconds) {
  int y, mo, d, h, mi, s;
  if (std::sscanf(text.c_str(), "%d-%d-%d %d:%d:%d", &y, &mo, &d, &h, &mi,
                  &s) != 6) {
    return false;
  }
  if (mo < 1 || mo > 12 || d < 1 || d > 31 || h < 0 || h > 23 || mi < 0 ||
      mi > 59 || s < 0 || s > 60) {
    return false;
  }
  // Howard Hinnant's days_from_civil.
  int64_t yy = y - (mo <= 2 ? 1 : 0);
  int64_t era = (yy >= 0 ? yy : yy - 399) / 400;
  int64_t yoe = yy - era * 400;
  int64_t doy = (153 * (mo + (mo > 2 ? -3 : 9)) + 2) / 5 + d - 1;
  int64_t doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
  int64_t days = era * 146097 + doe - 719468;
  *seconds = static_cast<double>(days * 86400 + h * 3600 + mi * 60 + s);
  return true;
}

}  // namespace

Status ReadTDriveTxt(const std::string& path,
                     std::vector<GpsRecord>* records) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  std::string line;
  int64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitCsv(line);
    if (fields.size() < 4) {
      return Status::Corruption(path + ":" + std::to_string(lineno) +
                                ": expected 4 fields");
    }
    double id, lon, lat, ts;
    if (!ParseDouble(fields[0], &id) || !ParseDouble(fields[2], &lon) ||
        !ParseDouble(fields[3], &lat) ||
        !ParseDateTime(fields[1], &ts)) {
      return Status::Corruption(path + ":" + std::to_string(lineno) +
                                ": malformed field");
    }
    records->push_back(GpsRecord{static_cast<ObjectId>(id), ts,
                                 LatLon{lat, lon}});
  }
  return CheckStreamEnd(in, path);
}

std::vector<TrajectoryRecord> ProjectGpsRecords(
    const std::vector<GpsRecord>& records, LatLon reference) {
  LocalProjection projection(reference);
  std::vector<TrajectoryRecord> out;
  out.reserve(records.size());
  for (const GpsRecord& r : records) {
    out.push_back(
        TrajectoryRecord{r.object, r.timestamp, projection.Project(r.pos)});
  }
  return out;
}

std::vector<TrajectoryRecord> ProjectGpsRecords(
    const std::vector<GpsRecord>& records) {
  if (records.empty()) return {};
  return ProjectGpsRecords(records, records.front().pos);
}

std::vector<TrajectoryRecord> StreamToRecords(const SnapshotStream& stream,
                                              double seconds_per_snapshot) {
  std::vector<TrajectoryRecord> out;
  out.reserve(static_cast<size_t>(TotalRecords(stream)));
  for (size_t i = 0; i < stream.size(); ++i) {
    const Snapshot& s = stream[i];
    double ts = static_cast<double>(i) * seconds_per_snapshot;
    for (size_t k = 0; k < s.size(); ++k) {
      out.push_back(TrajectoryRecord{s.id(k), ts, s.pos(k)});
    }
  }
  return out;
}

}  // namespace tcomp
