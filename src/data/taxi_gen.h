#ifndef TCOMP_DATA_TAXI_GEN_H_
#define TCOMP_DATA_TAXI_GEN_H_

#include <cstdint>

#include "core/snapshot.h"

namespace tcomp {

/// Substitute for the paper's GeoLife/T-Drive taxi dataset (D1): taxis
/// move on a Manhattan grid road network with random turns at
/// intersections, sampled every five minutes over ~4 hours (500 objects,
/// 50 snapshots, 25 K records in the default configuration).
///
/// A configurable fraction of taxis travel in small platoons (shared
/// route, small offsets) so the stream contains the weak, transient
/// co-travel structure real taxi data shows: many short-lived companion
/// candidates, heavy candidate churn, few long-lived companions.
struct TaxiOptions {
  int num_taxis = 500;
  int num_snapshots = 50;
  double snapshot_duration = 1.0;

  double block_size = 400.0;   // meters between intersections
  int grid_blocks = 40;        // city is grid_blocks × grid_blocks blocks
  /// Distance driven per snapshot (meters per 5 minutes ≈ 30 km/h).
  double speed = 2500.0;
  /// GPS noise (σ, meters).
  double gps_noise = 10.0;

  /// Fraction of taxis organized in platoons following a shared route.
  double platoon_fraction = 0.25;
  int platoon_size_min = 4;
  int platoon_size_max = 14;
  /// Lateral/longitudinal jitter of platoon followers, meters.
  double platoon_spread = 25.0;
  /// Per-follower per-snapshot probability of leaving its platoon.
  double defect_probability = 0.01;

  uint64_t seed = 11;
};

SnapshotStream GenerateTaxi(const TaxiOptions& options);

}  // namespace tcomp

#endif  // TCOMP_DATA_TAXI_GEN_H_
