#include "data/degrade.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/random.h"

namespace tcomp {

SnapshotStream DropReports(const SnapshotStream& stream, double fraction,
                           uint64_t seed) {
  TCOMP_CHECK_GE(fraction, 0.0);
  TCOMP_CHECK_LT(fraction, 1.0);
  Pcg32 rng(seed);

  // Outage lengths are uniform in [2, 6] (mean 4); the per-snapshot
  // probability of *entering* an outage is tuned so the expected dropped
  // fraction matches `fraction`.
  constexpr double kMeanOutage = 4.0;
  const double start_probability = fraction / kMeanOutage;

  // Remaining outage length per object id.
  std::vector<int> outage;
  SnapshotStream out;
  out.reserve(stream.size());
  for (const Snapshot& s : stream) {
    std::vector<ObjectPosition> kept;
    kept.reserve(s.size());
    for (size_t i = 0; i < s.size(); ++i) {
      ObjectId oid = s.id(i);
      if (oid >= outage.size()) outage.resize(oid + 1, 0);
      if (outage[oid] > 0) {
        --outage[oid];
        continue;  // silent
      }
      if (fraction > 0.0 && rng.NextBernoulli(start_probability)) {
        outage[oid] = rng.NextInt(2, 6) - 1;  // this snapshot counts
        continue;
      }
      kept.push_back(ObjectPosition{oid, s.pos(i)});
    }
    out.push_back(Snapshot(std::move(kept), s.duration()));
  }
  return out;
}

SnapshotStream JitterReports(const SnapshotStream& stream,
                             double max_delay_snapshots, uint64_t seed) {
  TCOMP_CHECK_GE(max_delay_snapshots, 0.0);
  Pcg32 rng(seed);
  std::vector<std::vector<ObjectPosition>> buckets(stream.size());
  for (size_t t = 0; t < stream.size(); ++t) {
    const Snapshot& s = stream[t];
    for (size_t i = 0; i < s.size(); ++i) {
      double delay = rng.NextDouble(0.0, max_delay_snapshots);
      size_t target =
          std::min(stream.size() - 1, t + static_cast<size_t>(delay));
      buckets[target].push_back(ObjectPosition{s.id(i), s.pos(i)});
    }
  }
  SnapshotStream out;
  out.reserve(stream.size());
  for (size_t t = 0; t < stream.size(); ++t) {
    // An object may land twice in one bucket (its own report + a delayed
    // one); keep the freshest (later-pushed) report.
    std::sort(buckets[t].begin(), buckets[t].end(),
              [](const ObjectPosition& a, const ObjectPosition& b) {
                return a.id < b.id;
              });
    std::vector<ObjectPosition> unique;
    for (const ObjectPosition& p : buckets[t]) {
      if (!unique.empty() && unique.back().id == p.id) {
        unique.back() = p;
      } else {
        unique.push_back(p);
      }
    }
    out.push_back(Snapshot(std::move(unique), stream[t].duration()));
  }
  return out;
}

}  // namespace tcomp
