#ifndef TCOMP_DATA_MILITARY_GEN_H_
#define TCOMP_DATA_MILITARY_GEN_H_

#include <cstdint>
#include <vector>

#include "core/snapshot.h"
#include "core/types.h"

namespace tcomp {

/// Substitute for the paper's CBMANET military dataset (D2): an infantry
/// battalion of `num_units` units organized in `num_teams` teams (25–30
/// units each) marches from a start point to a destination along two
/// routes over `num_snapshots` snapshots at one-minute sampling. The team
/// partition is retained as effectiveness ground truth (paper Section
/// V-D).
///
/// Teams march in column formation: members hold persistent slots in a
/// files×ranks grid around the team center with small Gaussian formation
/// noise, and team starts are staggered so teams stay spatially separated
/// on the shared route.
struct MilitaryOptions {
  int num_units = 780;
  int num_teams = 30;
  int num_snapshots = 180;
  double snapshot_duration = 1.0;

  /// Straight-line distance between the endpoints, meters.
  double route_length = 30000.0;
  /// Lateral offset between the two routes, meters.
  double route_separation = 4000.0;
  /// Column formation: lateral/longitudinal spacing between unit slots.
  double slot_spacing = 8.0;
  int files = 5;  // units per rank
  /// Per-snapshot Gaussian noise (σ) on each unit position.
  double formation_noise = 1.5;
  /// Gap between consecutive team starts on one route, meters.
  double team_gap = 900.0;
  /// Per-unit per-snapshot probability of straggling (dropping behind its
  /// team for a few snapshots). Introduces mild intra-team churn.
  double straggle_probability = 0.0005;

  /// Expected number of detachment events per team. Two kinds, both
  /// creating the short-lived *cross-team* groups behind the paper's
  /// Fig. 20/21 precision curves (same-team subsets are closed-companion
  /// suppressed, so only cross-team mixtures can be false positives):
  ///  * joint patrol — squads from two adjacent teams on a route meet
  ///    halfway between their columns and patrol together for
  ///    detach_duration_min..max snapshots (group size 2×squad, 10–24:
  ///    the δs sweep filters these);
  ///  * liaison — a squad embeds at the rear of the team ahead of it,
  ///    extending that team's column (group size team+squad, ~31–42:
  ///    only the δt sweep filters these).
  /// Events may repeat with the same squad after a gap — non-consecutive
  /// co-movement that swarms accept but companions reject.
  /// Set to 0 for perfectly clean marches.
  double detachments_per_team = 1.0;
  int squad_size_min = 5;
  int squad_size_max = 12;
  int detach_duration_min = 4;
  int detach_duration_max = 10;
  /// Lateral offset of a joint patrol from the route, meters (≫ ε keeps
  /// it a separate cluster).
  double detach_offset = 120.0;

  uint64_t seed = 7;
};

struct MilitaryDataset {
  SnapshotStream stream;
  /// Team partition — the ground truth companions.
  std::vector<ObjectSet> ground_truth;
};

MilitaryDataset GenerateMilitary(const MilitaryOptions& options);

}  // namespace tcomp

#endif  // TCOMP_DATA_MILITARY_GEN_H_
