#ifndef TCOMP_DATA_GROUP_MODEL_H_
#define TCOMP_DATA_GROUP_MODEL_H_

#include <cstdint>
#include <vector>

#include "core/snapshot.h"
#include "core/types.h"

namespace tcomp {

/// Configuration of the group-movement generator: objects are organized in
/// groups that travel toward random waypoints; members keep a persistent
/// offset inside the group plus per-snapshot jitter. Groups shed members
/// (who become independent wanderers), occasionally split in two, and merge
/// when they drift close — the churn that drives candidate pruning and
/// buddy split/merge dynamics in the paper's synthetic experiments.
struct GroupModelOptions {
  int num_objects = 1000;
  int num_snapshots = 1440;
  double snapshot_duration = 1.0;

  /// Side length of the square world.
  double area_size = 20000.0;
  /// Fraction of objects initially assigned to groups; the rest wander
  /// independently (clutter for the clustering stage).
  double group_fraction = 0.85;
  int min_group_size = 15;
  int max_group_size = 35;
  /// Group-center speed per snapshot.
  double group_speed = 60.0;
  /// Member offsets are drawn uniformly in a disc of this radius around
  /// the group center.
  double group_spread = 25.0;
  /// Per-snapshot Gaussian jitter (σ) added to each member position.
  double member_jitter = 2.0;
  /// Independent-object speed per snapshot.
  double free_speed = 80.0;

  /// Per-member, per-snapshot probability of leaving its group.
  double leave_probability = 0.0005;
  /// Per-group, per-snapshot probability of splitting in two halves.
  double split_probability = 0.001;
  /// Two groups merge when their centers are within this distance
  /// (0 disables merging).
  double merge_distance = 30.0;

  uint64_t seed = 42;
};

/// A generated stream plus its evolving group structure.
struct GroupDataset {
  SnapshotStream stream;
  /// Group membership at the final snapshot (diagnostic; the military
  /// generator provides stable ground truth instead).
  std::vector<ObjectSet> final_groups;
};

/// Generates a stream under the group-movement model. Deterministic in
/// `options.seed`.
GroupDataset GenerateGroupStream(const GroupModelOptions& options);

}  // namespace tcomp

#endif  // TCOMP_DATA_GROUP_MODEL_H_
