#ifndef TCOMP_DATA_SYNTHETIC_GEN_H_
#define TCOMP_DATA_SYNTHETIC_GEN_H_

#include <string>
#include <vector>

#include "core/discoverer.h"
#include "core/snapshot.h"
#include "data/group_model.h"

namespace tcomp {

/// One of the paper's evaluation datasets together with the clustering
/// parameters tuned for it ("ε and μ are set according to different
/// datasets", Fig. 14) and, where available, ground-truth groups.
struct Dataset {
  std::string name;
  SnapshotStream stream;
  std::vector<ObjectSet> ground_truth;  // empty if none
  DiscoveryParams default_params;
};

/// Paper-scale snapshot counts; the bench harnesses accept a `--snapshots`
/// override because CI on the full D4 is O(n²)·1440 (see DESIGN.md §3).
inline constexpr int kD1Snapshots = 50;
inline constexpr int kD2Snapshots = 180;
inline constexpr int kD3Snapshots = 1440;
inline constexpr int kD4Snapshots = 1440;

/// D1′ — taxi substitute: 500 objects, 5-minute sampling, 50 snapshots.
Dataset MakeTaxiD1(int num_snapshots = kD1Snapshots, uint64_t seed = 11);

/// D2′ — military substitute: 780 units in 30 teams, two routes,
/// 180 snapshots, team partition as ground truth.
Dataset MakeMilitaryD2(int num_snapshots = kD2Snapshots, uint64_t seed = 7);

/// D3′ — synthetic: 1,000 objects under the group-movement model,
/// 1,440 snapshots (1.44 M records at full scale).
Dataset MakeSyntheticD3(int num_snapshots = kD3Snapshots,
                        uint64_t seed = 42);

/// D4′ — synthetic: 10,000 objects, 1,440 snapshots (14.4 M records).
Dataset MakeSyntheticD4(int num_snapshots = kD4Snapshots,
                        uint64_t seed = 43);

/// Generic group-model dataset with the shared D3/D4 parameterization at
/// an arbitrary object count (used by scaling benches).
Dataset MakeSyntheticDataset(const std::string& name, int num_objects,
                             int num_snapshots, uint64_t seed);

}  // namespace tcomp

#endif  // TCOMP_DATA_SYNTHETIC_GEN_H_
