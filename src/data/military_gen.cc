#include "data/military_gen.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/random.h"

namespace tcomp {
namespace {

constexpr double kPi = 3.14159265358979323846;

/// Route r (0 or 1): a gently curving path from (0, ±sep/2) that converges
/// on the shared destination (L, 0). Parameterized by distance s ∈ [0, L]
/// along the x axis (curvature is mild, so x ≈ arc length).
struct Route {
  double length;
  double separation;
  int side;  // +1 or -1

  Point At(double s) const {
    // Linear extensions before the start and past the destination keep
    // staggered teams spatially separated for the whole stream (they march
    // up to the start and through the objective rather than piling up).
    if (s < 0.0) return Point{s, OnRouteY(0.0)};
    if (s > length) return Point{s, OnRouteY(length)};
    return Point{s, OnRouteY(s)};
  }

  double OnRouteY(double x) const {
    double frac = x / length;
    double base = side * (separation / 2.0) * (1.0 - 0.85 * frac);
    double wiggle = 0.03 * separation *
                    std::sin(3.0 * kPi * frac + (side > 0 ? 0.3 : 1.1));
    return base + wiggle;
  }

  /// Unit tangent at s (finite differences — plenty for formation math).
  Point TangentAt(double s) const {
    const double h = 10.0;
    Point a = At(s - h);
    Point b = At(s + h);
    double d = Distance(a, b);
    if (d == 0.0) return Point{1.0, 0.0};
    return (b - a) / d;
  }
};

}  // namespace

MilitaryDataset GenerateMilitary(const MilitaryOptions& options) {
  TCOMP_CHECK_GT(options.num_teams, 0);
  TCOMP_CHECK_GE(options.num_units, options.num_teams);
  Pcg32 rng(options.seed);

  const int teams = options.num_teams;
  const int units = options.num_units;

  // Team sizes: start uniform, then shuffle units between random pairs of
  // teams within ±(base-25, 30-base) so sizes spread over [25, 30] for the
  // default configuration (the paper: "each team has 25 to 30 units")
  // while the total stays exact.
  const int base = units / teams;
  std::vector<int> team_size(teams, base);
  int leftover = units - base * teams;
  for (int i = 0; i < leftover; ++i) ++team_size[i];
  const int lo = std::max(1, std::min(base - 1, 25));
  const int hi = std::max(base + 1, 30);
  for (int round = 0; round < teams * 4; ++round) {
    int i = rng.NextInt(0, teams - 1);
    int j = rng.NextInt(0, teams - 1);
    if (i == j) continue;
    if (team_size[i] < hi && team_size[j] > lo) {
      ++team_size[i];
      --team_size[j];
    }
  }

  Route routes[2] = {
      Route{options.route_length, options.route_separation, +1},
      Route{options.route_length, options.route_separation, -1},
  };

  // Assign teams to routes alternately and stagger their starts.
  std::vector<int> route_of(teams);
  std::vector<double> lead(teams);
  int per_route_count[2] = {0, 0};
  for (int g = 0; g < teams; ++g) {
    int r = g % 2;
    route_of[g] = r;
    lead[g] = per_route_count[r] * options.team_gap;
    ++per_route_count[r];
  }
  double max_lead =
      std::max(per_route_count[0], per_route_count[1]) * options.team_gap;
  // Speed so the last team reaches the destination by the final snapshot.
  double speed =
      (options.route_length + max_lead) / std::max(1, options.num_snapshots);

  // Per-unit state.
  std::vector<int> team_of(units);
  std::vector<int> slot_of(units);
  std::vector<double> lag(units, 0.0);
  MilitaryDataset out;
  {
    int uid = 0;
    for (int g = 0; g < teams; ++g) {
      ObjectSet members;
      for (int k = 0; k < team_size[g]; ++k, ++uid) {
        team_of[uid] = g;
        slot_of[uid] = k;
        members.push_back(static_cast<ObjectId>(uid));
      }
      out.ground_truth.push_back(std::move(members));
    }
  }

  // Detachment schedule: per snapshot, per unit, how to place the unit.
  enum class Duty : int8_t { kFormation = 0, kJointPatrol, kLiaison };
  struct Override {
    Duty duty = Duty::kFormation;
    int16_t partner_team = -1;  // patrol partner / liaison host
    int16_t squad_index = -1;   // slot inside the detached squad
    int8_t side = 1;            // patrol side of the route
  };
  std::vector<std::vector<Override>> duty(
      options.num_snapshots, std::vector<Override>(units));
  if (options.detachments_per_team > 0.0) {
    // First unit id of each team (slots are contiguous).
    std::vector<int> first_uid(teams, 0);
    for (int g = 1; g < teams; ++g) {
      first_uid[g] = first_uid[g - 1] + team_size[g - 1];
    }
    for (int g = 0; g + 2 < teams; ++g) {
      // Partner = the next team on the same route (routes alternate).
      int partner = g + 2;
      int events = 0;
      for (int k = 0; k < 3; ++k) {
        if (rng.NextBernoulli(options.detachments_per_team / 3.0)) ++events;
      }
      if (events == 0) continue;
      if (team_size[g] < 2 * options.squad_size_min ||
          team_size[partner] < 2 * options.squad_size_min) {
        continue;
      }
      bool joint = rng.NextBernoulli(0.5);
      int squad_g = rng.NextInt(
          options.squad_size_min,
          std::min(options.squad_size_max,
                   team_size[g] - options.squad_size_min));
      int squad_p = rng.NextInt(
          options.squad_size_min,
          std::min(options.squad_size_max,
                   team_size[partner] - options.squad_size_min));
      int8_t side = rng.NextBernoulli(0.5) ? 1 : -1;
      int cursor = rng.NextInt(5, std::max(6, options.num_snapshots / 2));
      for (int e = 0; e < events; ++e) {
        int duration = rng.NextInt(options.detach_duration_min,
                                   options.detach_duration_max);
        int end = std::min(options.num_snapshots, cursor + duration);
        for (int t = cursor; t < end; ++t) {
          // The squad is the last `squad` slots of its team.
          for (int k = 0; k < squad_g; ++k) {
            int uid = first_uid[g] + team_size[g] - squad_g + k;
            duty[t][uid] = Override{
                joint ? Duty::kJointPatrol : Duty::kLiaison,
                static_cast<int16_t>(partner), static_cast<int16_t>(k),
                side};
          }
          if (joint) {
            for (int k = 0; k < squad_p; ++k) {
              int uid =
                  first_uid[partner] + team_size[partner] - squad_p + k;
              duty[t][uid] = Override{
                  Duty::kJointPatrol, static_cast<int16_t>(g),
                  static_cast<int16_t>(squad_g + k), side};
            }
          }
        }
        cursor = end + rng.NextInt(8, 16);
        if (cursor >= options.num_snapshots) break;
      }
    }
  }

  out.stream.reserve(options.num_snapshots);
  for (int t = 0; t < options.num_snapshots; ++t) {
    std::vector<ObjectPosition> positions;
    positions.reserve(units);
    for (int uid = 0; uid < units; ++uid) {
      int g = team_of[uid];
      const Route& route = routes[route_of[g]];

      // Straggling: a unit occasionally drops behind, then catches up.
      if (rng.NextBernoulli(options.straggle_probability)) {
        lag[uid] += rng.NextDouble(20.0, 60.0);
      }
      lag[uid] *= 0.90;

      const Override& od = duty[static_cast<size_t>(t)][uid];
      Point p;
      if (od.duty == Duty::kJointPatrol) {
        // Patrol camp: halfway between the two columns, offset from the
        // route; members form their own files×ranks grid there.
        int other = od.partner_team;
        double s_own = speed * t - lead[g];
        double s_other = speed * t - lead[other];
        const Route& r_own = routes[route_of[g]];
        Point mid = (r_own.At(s_own) + r_own.At(s_other)) / 2.0;
        Point tangent = r_own.TangentAt((s_own + s_other) / 2.0);
        Point normal{-tangent.y, tangent.x};
        int rank = od.squad_index / options.files;
        int file = od.squad_index % options.files;
        double across =
            (file - (options.files - 1) / 2.0) * options.slot_spacing;
        double along = -rank * options.slot_spacing;
        p = mid + normal * (options.detach_offset * od.side) +
            tangent * along + normal * across;
      } else if (od.duty == Duty::kLiaison) {
        // Embedded at the rear of the host team's column.
        int host = od.partner_team;
        double s_host = speed * t - lead[host];
        const Route& r_host = routes[route_of[host]];
        Point center = r_host.At(s_host);
        Point tangent = r_host.TangentAt(s_host);
        Point normal{-tangent.y, tangent.x};
        int slot = team_size[host] + od.squad_index;
        int rank = slot / options.files;
        int file = slot % options.files;
        double across =
            (file - (options.files - 1) / 2.0) * options.slot_spacing;
        double along = -rank * options.slot_spacing;
        p = center + tangent * along + normal * across;
      } else {
        double s = speed * t - lead[g] - lag[uid];
        Point center = route.At(s);
        Point tangent = route.TangentAt(s);
        Point normal{-tangent.y, tangent.x};
        int rank = slot_of[uid] / options.files;
        int file = slot_of[uid] % options.files;
        double across =
            (file - (options.files - 1) / 2.0) * options.slot_spacing;
        double along = -rank * options.slot_spacing;
        p = center + tangent * along + normal * across;
      }
      p.x += options.formation_noise * rng.NextGaussian();
      p.y += options.formation_noise * rng.NextGaussian();
      positions.push_back(ObjectPosition{static_cast<ObjectId>(uid), p});
    }
    out.stream.push_back(
        Snapshot(std::move(positions), options.snapshot_duration));
  }
  return out;
}

}  // namespace tcomp
