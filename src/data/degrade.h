#ifndef TCOMP_DATA_DEGRADE_H_
#define TCOMP_DATA_DEGRADE_H_

#include <cstdint>

#include "core/snapshot.h"

namespace tcomp {

/// Randomly removes `fraction` of the (object, snapshot) reports from a
/// stream — the paper's Section VI missing-data experiment ("we randomly
/// remove 10% data from D2"). Removal is *bursty*: an object enters an
/// outage lasting 2–6 snapshots (mean 4), modeling a device going silent
/// for a stretch rather than dropping isolated reports — only bursty
/// outages make the inactive-period threshold a meaningful knob (an
/// isolated missing report is healed by inactive=1 regardless).
/// Deterministic in `seed`.
SnapshotStream DropReports(const SnapshotStream& stream, double fraction,
                           uint64_t seed);

/// Delays each report by a per-object constant plus per-report jitter, in
/// snapshot units; reports whose delayed time falls into a later snapshot
/// move there (coarse network-delay model for robustness tests).
SnapshotStream JitterReports(const SnapshotStream& stream,
                             double max_delay_snapshots, uint64_t seed);

}  // namespace tcomp

#endif  // TCOMP_DATA_DEGRADE_H_
