#include "core/dbscan.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <unordered_map>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace tcomp {

namespace {
std::atomic<bool> g_incremental_clustering_enabled{true};
}  // namespace

void SetIncrementalClusteringEnabled(bool enabled) {
  g_incremental_clustering_enabled.store(enabled, std::memory_order_relaxed);
}

bool IncrementalClusteringEnabled() {
  return g_incremental_clustering_enabled.load(std::memory_order_relaxed);
}

double GridCellWidth(double eps, double max_abs_coord) {
  // 2⁻⁴⁰ is ~8000x the relative rounding of a double division, so the pad
  // dominates every floor(x / cell) error while widening cells by less
  // than one part in 10¹¹ for realistic |coord|/eps ratios.
  constexpr double kPad = 0x1p-40;
  return eps * (1.0 + kPad) + max_abs_coord * kPad;
}

namespace internal {

Clustering BuildClusteringFromCores(
    const Snapshot& snapshot, const std::vector<bool>& core,
    const std::vector<std::vector<uint32_t>>& neighbors) {
  const size_t n = snapshot.size();
  Clustering result;
  result.labels.assign(n, -1);
  result.core = core;

  DisjointSets sets(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!core[i]) continue;
    for (uint32_t j : neighbors[i]) {
      if (core[j]) sets.Union(i, j);
    }
  }

  // Border objects join the cluster of their lowest-index core neighbor.
  // neighbors[] lists are ascending, so the first core hit is the lowest.
  std::vector<uint32_t> attach_to(n, 0);
  std::vector<bool> attached(n, false);
  for (uint32_t i = 0; i < n; ++i) {
    if (core[i]) {
      attach_to[i] = i;
      attached[i] = true;
      continue;
    }
    for (uint32_t j : neighbors[i]) {
      if (core[j]) {
        attach_to[i] = j;
        attached[i] = true;
        break;
      }
    }
  }

  // Number clusters by first appearance in index order.
  std::unordered_map<uint32_t, int32_t> root_to_label;
  for (uint32_t i = 0; i < n; ++i) {
    if (!attached[i]) continue;
    uint32_t root = sets.Find(attach_to[i]);
    auto it = root_to_label.find(root);
    int32_t label;
    if (it == root_to_label.end()) {
      label = static_cast<int32_t>(result.clusters.size());
      root_to_label.emplace(root, label);
      result.clusters.emplace_back();
    } else {
      label = it->second;
    }
    result.labels[i] = label;
    // Indices ascend => ids ascend, so each cluster vector stays sorted.
    result.clusters[static_cast<size_t>(label)].push_back(snapshot.id(i));
  }
  return result;
}

}  // namespace internal

Clustering Dbscan(const Snapshot& snapshot, const DbscanParams& params,
                  int64_t* distance_ops) {
  const size_t n = snapshot.size();
  const double eps2 = params.epsilon * params.epsilon;
  std::vector<std::vector<uint32_t>> neighbors(n);
  int64_t ops = 0;
  for (uint32_t i = 0; i < n; ++i) {
    neighbors[i].push_back(i);
  }
  const int shards = EffectiveShards(params.threads, n);
  if (shards == 1) {
    for (uint32_t i = 0; i < n; ++i) {
      for (uint32_t j = i + 1; j < n; ++j) {
        ++ops;
        if (WithinEps(snapshot.pos(i), snapshot.pos(j), eps2)) {
          neighbors[i].push_back(j);
          neighbors[j].push_back(i);
        }
      }
    }
  } else {
    // Each worker owns a strided set of rows (row i of the upper triangle
    // is computed entirely by shard i % num_shards; striding balances the
    // triangular row lengths). Workers never touch shared state: hits go
    // into the owned row of `upper`, ops into a per-shard counter. The
    // serial scatter below then reproduces the exact adjacency the serial
    // loop builds, and the ops total is the same n(n-1)/2.
    std::vector<std::vector<uint32_t>> upper(n);
    std::vector<int64_t> shard_ops(static_cast<size_t>(shards), 0);
    ParallelForShards(shards, [&](int shard, int num_shards) {
      int64_t local_ops = 0;
      for (uint32_t i = static_cast<uint32_t>(shard); i < n;
           i += static_cast<uint32_t>(num_shards)) {
        Point pi = snapshot.pos(i);
        for (uint32_t j = i + 1; j < n; ++j) {
          ++local_ops;
          if (WithinEps(pi, snapshot.pos(j), eps2)) {
            upper[i].push_back(j);
          }
        }
      }
      shard_ops[static_cast<size_t>(shard)] = local_ops;
    });
    for (int64_t s : shard_ops) ops += s;
    for (uint32_t i = 0; i < n; ++i) {
      for (uint32_t j : upper[i]) {
        neighbors[i].push_back(j);
        neighbors[j].push_back(i);
      }
    }
  }
  // Restore ascending order (j<i entries were appended after i itself).
  for (auto& list : neighbors) std::sort(list.begin(), list.end());

  std::vector<bool> core(n, false);
  for (uint32_t i = 0; i < n; ++i) {
    core[i] = neighbors[i].size() >= static_cast<size_t>(params.mu);
  }
  if (distance_ops != nullptr) *distance_ops += ops;
  return internal::BuildClusteringFromCores(snapshot, core, neighbors);
}

namespace {

struct CellKey {
  int64_t cx;
  int64_t cy;
  bool operator==(const CellKey& o) const { return cx == o.cx && cy == o.cy; }
};

struct CellKeyHash {
  size_t operator()(const CellKey& k) const {
    uint64_t h = static_cast<uint64_t>(k.cx) * 0x9e3779b97f4a7c15ULL;
    h ^= static_cast<uint64_t>(k.cy) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
    return static_cast<size_t>(h);
  }
};

}  // namespace

Clustering DbscanGrid(const Snapshot& snapshot, const DbscanParams& params,
                      int64_t* distance_ops) {
  const size_t n = snapshot.size();
  const double eps = params.epsilon;
  const double eps2 = eps * eps;
  TCOMP_CHECK_GT(eps, 0.0);

  double max_abs = 0.0;
  for (uint32_t i = 0; i < n; ++i) {
    Point p = snapshot.pos(i);
    // Defense in depth behind the stream-ingest validation: casting
    // floor(NaN/Inf) to int64_t is undefined behavior, so a non-finite
    // coordinate must never reach cell_of.
    TCOMP_CHECK(std::isfinite(p.x) && std::isfinite(p.y))
        << "non-finite coordinate for object " << snapshot.id(i);
    max_abs = std::max({max_abs, std::fabs(p.x), std::fabs(p.y)});
  }
  // Padded cell width: with cells of exactly eps, the rounding of
  // floor(x / eps) at large |x| can put a pair at distance exactly eps
  // two cells apart, and the 3×3 scan would miss it (the flat backend
  // would not — an eps-boundary disagreement). GridCellWidth pads the
  // width so adjacent-cell coverage is guaranteed; membership is still
  // decided exactly by WithinEps below.
  const double cell_width = GridCellWidth(eps, max_abs);
  std::unordered_map<CellKey, std::vector<uint32_t>, CellKeyHash> grid;
  grid.reserve(n);
  auto cell_of = [cell_width](Point p) {
    return CellKey{static_cast<int64_t>(std::floor(p.x / cell_width)),
                   static_cast<int64_t>(std::floor(p.y / cell_width))};
  };
  for (uint32_t i = 0; i < n; ++i) {
    grid[cell_of(snapshot.pos(i))].push_back(i);
  }

  int64_t ops = 0;
  std::vector<std::vector<uint32_t>> neighbors(n);
  const int shards = EffectiveShards(params.threads, n);
  std::vector<int64_t> shard_ops(static_cast<size_t>(shards), 0);
  // Row i of `neighbors` is owned by shard i % num_shards; the grid is
  // read-only here, so the probe order — and therefore every row and the
  // per-row op count — is identical to the serial sweep.
  ParallelForShards(shards, [&](int shard, int num_shards) {
    int64_t local_ops = 0;
    for (uint32_t i = static_cast<uint32_t>(shard); i < n;
         i += static_cast<uint32_t>(num_shards)) {
      CellKey c = cell_of(snapshot.pos(i));
      for (int64_t dx = -1; dx <= 1; ++dx) {
        for (int64_t dy = -1; dy <= 1; ++dy) {
          auto it = grid.find(CellKey{c.cx + dx, c.cy + dy});
          if (it == grid.end()) continue;
          for (uint32_t j : it->second) {
            if (j == i) continue;
            ++local_ops;
            if (WithinEps(snapshot.pos(i), snapshot.pos(j), eps2)) {
              neighbors[i].push_back(j);
            }
          }
        }
      }
      neighbors[i].push_back(i);
      std::sort(neighbors[i].begin(), neighbors[i].end());
    }
    shard_ops[static_cast<size_t>(shard)] = local_ops;
  });
  for (int64_t s : shard_ops) ops += s;

  std::vector<bool> core(n, false);
  for (uint32_t i = 0; i < n; ++i) {
    core[i] = neighbors[i].size() >= static_cast<size_t>(params.mu);
  }
  if (distance_ops != nullptr) *distance_ops += ops;
  return internal::BuildClusteringFromCores(snapshot, core, neighbors);
}

}  // namespace tcomp
