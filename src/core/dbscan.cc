#include "core/dbscan.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <iterator>
#include <unordered_map>
#include <utility>

#include "util/eps_filter.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace tcomp {

namespace {
std::atomic<bool> g_incremental_clustering_enabled{true};
}  // namespace

void SetIncrementalClusteringEnabled(bool enabled) {
  g_incremental_clustering_enabled.store(enabled, std::memory_order_relaxed);
}

bool IncrementalClusteringEnabled() {
  return g_incremental_clustering_enabled.load(std::memory_order_relaxed);
}

double GridCellWidth(double eps, double max_abs_coord) {
  // 2⁻⁴⁰ is ~8000x the relative rounding of a double division, so the pad
  // dominates every floor(x / cell) error while widening cells by less
  // than one part in 10¹¹ for realistic |coord|/eps ratios.
  constexpr double kPad = 0x1p-40;
  return eps * (1.0 + kPad) + max_abs_coord * kPad;
}

namespace internal {

Clustering BuildClusteringFromCores(
    const Snapshot& snapshot, const std::vector<bool>& core,
    const std::vector<std::vector<uint32_t>>& neighbors) {
  const size_t n = snapshot.size();
  Clustering result;
  result.labels.assign(n, -1);
  result.core = core;

  DisjointSets sets(n);
  for (uint32_t i = 0; i < n; ++i) {
    if (!core[i]) continue;
    for (uint32_t j : neighbors[i]) {
      if (core[j]) sets.Union(i, j);
    }
  }

  // Border objects join the cluster of their lowest-index core neighbor.
  // neighbors[] lists are ascending, so the first core hit is the lowest.
  std::vector<uint32_t> attach_to(n, 0);
  std::vector<bool> attached(n, false);
  for (uint32_t i = 0; i < n; ++i) {
    if (core[i]) {
      attach_to[i] = i;
      attached[i] = true;
      continue;
    }
    for (uint32_t j : neighbors[i]) {
      if (core[j]) {
        attach_to[i] = j;
        attached[i] = true;
        break;
      }
    }
  }

  // Number clusters by first appearance in index order.
  std::unordered_map<uint32_t, int32_t> root_to_label;
  for (uint32_t i = 0; i < n; ++i) {
    if (!attached[i]) continue;
    uint32_t root = sets.Find(attach_to[i]);
    auto it = root_to_label.find(root);
    int32_t label;
    if (it == root_to_label.end()) {
      label = static_cast<int32_t>(result.clusters.size());
      root_to_label.emplace(root, label);
      result.clusters.emplace_back();
    } else {
      label = it->second;
    }
    result.labels[i] = label;
    // Indices ascend => ids ascend, so each cluster vector stays sorted.
    result.clusters[static_cast<size_t>(label)].push_back(snapshot.id(i));
  }
  return result;
}

}  // namespace internal

Clustering Dbscan(const Snapshot& snapshot, const DbscanParams& params,
                  int64_t* distance_ops) {
  const size_t n = snapshot.size();
  const double eps2 = params.epsilon * params.epsilon;
  std::vector<std::vector<uint32_t>> neighbors(n);
  int64_t ops = 0;
  for (uint32_t i = 0; i < n; ++i) {
    neighbors[i].push_back(i);
  }
  const int shards = EffectiveShards(params.threads, n);
  if (shards == 1) {
    for (uint32_t i = 0; i < n; ++i) {
      for (uint32_t j = i + 1; j < n; ++j) {
        ++ops;
        // tcomp-lint: allow(soa-raw-loop): reference O(n²) backend —
        // the paper's cost model for CI/SC; deliberately unaccelerated
        // so distance_ops stays the figure the paper plots.
        if (WithinEps(snapshot.pos(i), snapshot.pos(j), eps2)) {
          neighbors[i].push_back(j);
          neighbors[j].push_back(i);
        }
      }
    }
  } else {
    // Each worker owns a strided set of rows (row i of the upper triangle
    // is computed entirely by shard i % num_shards; striding balances the
    // triangular row lengths). Workers never touch shared state: hits go
    // into the owned row of `upper`, ops into a per-shard counter. The
    // serial scatter below then reproduces the exact adjacency the serial
    // loop builds, and the ops total is the same n(n-1)/2.
    std::vector<std::vector<uint32_t>> upper(n);
    std::vector<int64_t> shard_ops(static_cast<size_t>(shards), 0);
    ParallelForShards(shards, [&](int shard, int num_shards) {
      int64_t local_ops = 0;
      for (uint32_t i = static_cast<uint32_t>(shard); i < n;
           i += static_cast<uint32_t>(num_shards)) {
        Point pi = snapshot.pos(i);
        for (uint32_t j = i + 1; j < n; ++j) {
          ++local_ops;
          // tcomp-lint: allow(soa-raw-loop): reference O(n²) backend —
          // the paper's cost model for CI/SC; deliberately unaccelerated
          // so distance_ops stays the figure the paper plots.
          if (WithinEps(pi, snapshot.pos(j), eps2)) {
            upper[i].push_back(j);
          }
        }
      }
      shard_ops[static_cast<size_t>(shard)] = local_ops;
    });
    for (int64_t s : shard_ops) ops += s;
    for (uint32_t i = 0; i < n; ++i) {
      for (uint32_t j : upper[i]) {
        neighbors[i].push_back(j);
        neighbors[j].push_back(i);
      }
    }
  }
  // Restore ascending order (j<i entries were appended after i itself).
  for (auto& list : neighbors) std::sort(list.begin(), list.end());

  std::vector<bool> core(n, false);
  for (uint32_t i = 0; i < n; ++i) {
    core[i] = neighbors[i].size() >= static_cast<size_t>(params.mu);
  }
  if (distance_ops != nullptr) *distance_ops += ops;
  return internal::BuildClusteringFromCores(snapshot, core, neighbors);
}

namespace {

struct CellKey {
  int64_t cx;
  int64_t cy;
  bool operator==(const CellKey& o) const { return cx == o.cx && cy == o.cy; }
};

struct CellKeyHash {
  size_t operator()(const CellKey& k) const {
    uint64_t h = static_cast<uint64_t>(k.cx) * 0x9e3779b97f4a7c15ULL;
    h ^= static_cast<uint64_t>(k.cy) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
    return static_cast<size_t>(h);
  }
};

/// SoA fast path for DbscanGrid: grid-sorted coordinate arrays + the
/// batched ε-filter kernel. The grid becomes a sorted flat array of
/// (cell, point) entries, so every 3×3 probe is a handful of contiguous
/// ranges over coordinates permuted into grid order — exactly the shape
/// EpsFilterBatch streams. Products and distance_ops are byte-identical
/// to the scalar branch: the kernel evaluates the same closed-ball
/// predicate over the same candidate multiset (each range element counts
/// one op; the point itself sits in exactly one range and is subtracted),
/// and rows are sorted either way.
Clustering DbscanGridSoA(const Snapshot& snapshot, const DbscanParams& params,
                         double cell_width, int64_t* distance_ops) {
  const size_t n = snapshot.size();
  const double eps2 = params.epsilon * params.epsilon;

  struct Entry {
    int64_t cx;
    int64_t cy;
    uint32_t idx;
  };
  std::vector<Entry> entries(n);
  for (uint32_t i = 0; i < n; ++i) {
    const Point p = snapshot.pos(i);
    entries[i] = Entry{static_cast<int64_t>(std::floor(p.x / cell_width)),
                       static_cast<int64_t>(std::floor(p.y / cell_width)), i};
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    if (a.cx != b.cx) return a.cx < b.cx;
    if (a.cy != b.cy) return a.cy < b.cy;
    return a.idx < b.idx;
  });

  // Grid-order permutation of the coordinates plus the map back to
  // snapshot indices.
  std::vector<double> gx(n);
  std::vector<double> gy(n);
  std::vector<uint32_t> order(n);
  for (size_t k = 0; k < n; ++k) {
    const uint32_t i = entries[k].idx;
    const Point p = snapshot.pos(i);
    order[k] = i;
    gx[k] = p.x;
    gy[k] = p.y;
  }

  // Occupied cells with their [begin, end) range in grid order, plus each
  // point's cell.
  struct UCell {
    int64_t cx;
    int64_t cy;
    uint32_t begin;
    uint32_t end;
  };
  std::vector<UCell> cells;
  for (uint32_t k = 0; k < n; ++k) {
    if (cells.empty() || cells.back().cx != entries[k].cx ||
        cells.back().cy != entries[k].cy) {
      cells.push_back(UCell{entries[k].cx, entries[k].cy, k, k + 1});
    } else {
      cells.back().end = k + 1;
    }
  }

  // Forward plane-sweep span table. The 3×3 candidate relation is
  // symmetric, so each unordered pair needs evaluating only once: point
  // k probes the tail of its own cell (grid positions > k) plus the
  // forward half-neighborhood — cell (cx, cy+1) and the cx+1 column
  // (cy-1..cy+1). Every surviving pair then feeds both rows in the
  // scatter below, exactly the upper-triangle structure of the flat
  // Dbscan backend. Adjacent forward cells are consecutive in grid
  // order whenever occupied, so the cx+1 column typically collapses to
  // one merged span — ranges long enough for the kernel's vector path.
  // distance_ops accounting: the scalar branch counts every ordered
  // candidate pair, i.e. each unordered pair twice; the sweep evaluates
  // each unordered pair once and counts it twice, so the recorded
  // figure — the paper's cost-model metric — is identical.
  std::vector<uint32_t> span_offset(cells.size() + 1, 0);
  std::vector<std::pair<uint32_t, uint32_t>> spans;
  spans.reserve(cells.size() * 3);
  const auto cell_pos_less = [](const UCell& a, const UCell& b) {
    if (a.cx != b.cx) return a.cx < b.cx;
    return a.cy < b.cy;
  };
  constexpr int64_t kForward[4][2] = {{0, 1}, {1, -1}, {1, 0}, {1, 1}};
  for (size_t c = 0; c < cells.size(); ++c) {
    const size_t first_span = spans.size();
    for (const int64_t* d : kForward) {
      const UCell probe{cells[c].cx + d[0], cells[c].cy + d[1], 0, 0};
      auto it = std::lower_bound(cells.begin(), cells.end(), probe,
                                 cell_pos_less);
      if (it != cells.end() && it->cx == probe.cx && it->cy == probe.cy) {
        if (spans.size() > first_span && spans.back().second == it->begin) {
          spans.back().second = it->end;
        } else {
          spans.emplace_back(it->begin, it->end);
        }
      }
    }
    span_offset[c + 1] = static_cast<uint32_t>(spans.size());
  }
  // Survivor staging must cover the longest merged span and the largest
  // own-cell tail.
  uint32_t max_span_len = 0;
  for (const std::pair<uint32_t, uint32_t>& s : spans) {
    max_span_len = std::max(max_span_len, s.second - s.first);
  }
  for (const UCell& c : cells) {
    max_span_len = std::max(max_span_len, c.end - c.begin);
  }

  // Phase 1 (parallel): forward survivor lists, one owner per cell —
  // shard s sweeps cells s, s+T, ..., and fwd[i] is written only by the
  // shard owning i's cell, so rows never race. Phase 2 (serial) mirrors
  // each surviving pair into both rows; content is independent of the
  // shard count because phase 1 rows are.
  int64_t ops = 0;
  std::vector<std::vector<uint32_t>> fwd(n);
  const int shards = EffectiveShards(params.threads, n);
  std::vector<int64_t> shard_ops(static_cast<size_t>(shards), 0);
  ParallelForShards(shards, [&](int shard, int num_shards) {
    int64_t local_ops = 0;
    std::vector<uint32_t> surv(max_span_len);
    for (size_t c = static_cast<size_t>(shard); c < cells.size();
         c += static_cast<size_t>(num_shards)) {
      for (uint32_t k = cells[c].begin; k < cells[c].end; ++k) {
        const uint32_t i = order[k];
        const double px = gx[k];
        const double py = gy[k];
        std::vector<uint32_t>& row = fwd[i];
        // One up-front block instead of doubling through the emit loops;
        // dense-regime rows run ~10-20 forward survivors.
        row.reserve(16);
        if (k + 1 < cells[c].end) {
          local_ops += cells[c].end - (k + 1);
          const size_t kept = EpsFilterBatch(gx.data(), gy.data(), k + 1,
                                             cells[c].end, px, py, eps2,
                                             surv.data());
          for (size_t t = 0; t < kept; ++t) row.push_back(order[surv[t]]);
        }
        for (uint32_t s = span_offset[c]; s < span_offset[c + 1]; ++s) {
          local_ops += spans[s].second - spans[s].first;
          const size_t kept =
              EpsFilterBatch(gx.data(), gy.data(), spans[s].first,
                             spans[s].second, px, py, eps2, surv.data());
          for (size_t t = 0; t < kept; ++t) row.push_back(order[surv[t]]);
        }
      }
    }
    shard_ops[static_cast<size_t>(shard)] = local_ops;
  });
  for (int64_t s : shard_ops) ops += 2 * s;

  // Phase 2: mirror the surviving pairs. The full row for i is the
  // ascending union of {i}, its forward survivors, and every j that saw
  // i in its own forward sweep. Scattering the reverse edges in
  // ascending i order makes each reverse segment pre-sorted, so one
  // small sort (forward list plus self) and one linear merge replace
  // the full-row sort — rows come out exactly as the scalar branch's
  // sorted rows, at a fraction of the comparisons.
  std::vector<uint32_t> rev_off(n + 1, 0);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j : fwd[i]) ++rev_off[j + 1];
  }
  for (uint32_t i = 0; i < n; ++i) rev_off[i + 1] += rev_off[i];
  std::vector<uint32_t> rev_buf(rev_off[n]);
  {
    std::vector<uint32_t> cursor(rev_off.begin(), rev_off.end() - 1);
    for (uint32_t i = 0; i < n; ++i) {
      for (uint32_t j : fwd[i]) rev_buf[cursor[j]++] = i;
    }
  }
  std::vector<std::vector<uint32_t>> neighbors(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::vector<uint32_t>& f = fwd[i];
    f.push_back(i);
    std::sort(f.begin(), f.end());
    std::vector<uint32_t>& row = neighbors[i];
    const uint32_t rb = rev_off[i];
    const uint32_t re = rev_off[i + 1];
    row.reserve(f.size() + (re - rb));
    std::merge(f.begin(), f.end(), rev_buf.begin() + rb,
               rev_buf.begin() + re, std::back_inserter(row));
  }

  std::vector<bool> core(n, false);
  for (uint32_t i = 0; i < n; ++i) {
    core[i] = neighbors[i].size() >= static_cast<size_t>(params.mu);
  }
  if (distance_ops != nullptr) *distance_ops += ops;
  return internal::BuildClusteringFromCores(snapshot, core, neighbors);
}

}  // namespace

Clustering DbscanGrid(const Snapshot& snapshot, const DbscanParams& params,
                      int64_t* distance_ops) {
  const size_t n = snapshot.size();
  const double eps = params.epsilon;
  const double eps2 = eps * eps;
  TCOMP_CHECK_GT(eps, 0.0);

  double max_abs = 0.0;
  for (uint32_t i = 0; i < n; ++i) {
    Point p = snapshot.pos(i);
    // Defense in depth behind the stream-ingest validation: casting
    // floor(NaN/Inf) to int64_t is undefined behavior, so a non-finite
    // coordinate must never reach cell_of.
    TCOMP_CHECK(std::isfinite(p.x) && std::isfinite(p.y))
        << "non-finite coordinate for object " << snapshot.id(i);
    max_abs = std::max({max_abs, std::fabs(p.x), std::fabs(p.y)});
  }
  // Padded cell width: with cells of exactly eps, the rounding of
  // floor(x / eps) at large |x| can put a pair at distance exactly eps
  // two cells apart, and the 3×3 scan would miss it (the flat backend
  // would not — an eps-boundary disagreement). GridCellWidth pads the
  // width so adjacent-cell coverage is guaranteed; membership is still
  // decided exactly by WithinEps below.
  const double cell_width = GridCellWidth(eps, max_abs);
  if (SoAKernelsEnabled()) {
    return DbscanGridSoA(snapshot, params, cell_width, distance_ops);
  }
  std::unordered_map<CellKey, std::vector<uint32_t>, CellKeyHash> grid;
  grid.reserve(n);
  auto cell_of = [cell_width](Point p) {
    return CellKey{static_cast<int64_t>(std::floor(p.x / cell_width)),
                   static_cast<int64_t>(std::floor(p.y / cell_width))};
  };
  for (uint32_t i = 0; i < n; ++i) {
    grid[cell_of(snapshot.pos(i))].push_back(i);
  }

  int64_t ops = 0;
  std::vector<std::vector<uint32_t>> neighbors(n);
  const int shards = EffectiveShards(params.threads, n);
  std::vector<int64_t> shard_ops(static_cast<size_t>(shards), 0);
  // Row i of `neighbors` is owned by shard i % num_shards; the grid is
  // read-only here, so the probe order — and therefore every row and the
  // per-row op count — is identical to the serial sweep.
  ParallelForShards(shards, [&](int shard, int num_shards) {
    int64_t local_ops = 0;
    for (uint32_t i = static_cast<uint32_t>(shard); i < n;
         i += static_cast<uint32_t>(num_shards)) {
      CellKey c = cell_of(snapshot.pos(i));
      for (int64_t dx = -1; dx <= 1; ++dx) {
        for (int64_t dy = -1; dy <= 1; ++dy) {
          auto it = grid.find(CellKey{c.cx + dx, c.cy + dy});
          if (it == grid.end()) continue;
          for (uint32_t j : it->second) {
            if (j == i) continue;
            ++local_ops;
            // tcomp-lint: allow(soa-raw-loop): sanctioned scalar fallback
            // — the baseline DbscanGridSoA is differentially tested
            // against when the SoA switch is off.
            if (WithinEps(snapshot.pos(i), snapshot.pos(j), eps2)) {
              neighbors[i].push_back(j);
            }
          }
        }
      }
      neighbors[i].push_back(i);
      std::sort(neighbors[i].begin(), neighbors[i].end());
    }
    shard_ops[static_cast<size_t>(shard)] = local_ops;
  });
  for (int64_t s : shard_ops) ops += s;

  std::vector<bool> core(n, false);
  for (uint32_t i = 0; i < n; ++i) {
    core[i] = neighbors[i].size() >= static_cast<size_t>(params.mu);
  }
  if (distance_ops != nullptr) *distance_ops += ops;
  return internal::BuildClusteringFromCores(snapshot, core, neighbors);
}

}  // namespace tcomp
