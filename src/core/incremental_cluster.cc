#include "core/incremental_cluster.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <ostream>
#include <string>

#include "util/eps_filter.h"
#include "util/logging.h"
#include "util/timer.h"

namespace tcomp {
namespace {

/// Mirrors kMaxCheckpointCount (core/discoverer.h): counts beyond this
/// cannot come from a real run, so LoadState refuses them instead of
/// attempting a huge resize from a corrupt stream.
constexpr uint64_t kMaxStateCount = 1ull << 24;

void InsertSorted(std::vector<ObjectId>& list, ObjectId id) {
  list.insert(std::lower_bound(list.begin(), list.end(), id), id);
}

void EraseSorted(std::vector<ObjectId>& list, ObjectId id) {
  auto it = std::lower_bound(list.begin(), list.end(), id);
  if (it != list.end() && *it == id) list.erase(it);
}

/// Serializes a double so the round trip is bit-exact regardless of the
/// stream's precision settings (checkpoints may be written through
/// streams that never called setprecision). Parsing uses strtod because
/// libstdc++'s istream hexfloat extraction is unreliable.
void WriteHexDouble(std::ostream& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%a", v);
  out << buf;
}

bool ParseHexDouble(const std::string& token, double* out) {
  const char* s = token.c_str();
  char* end = nullptr;
  double v = std::strtod(s, &end);
  if (end == s || end == nullptr || *end != '\0') return false;
  *out = v;
  return true;
}

}  // namespace

IncrementalClusterer::IncrementalClusterer(const DbscanParams& params)
    : params_(params) {
  TCOMP_CHECK_GT(params.epsilon, 0.0);
  const double delta = 0.5 * params.epsilon;  // Lemma-style slack Δ = ε/2
  delta2_ = delta * delta;
  // rₑ = ε + 2Δ = 2ε, padded by 1e-9 relative so double rounding in the
  // triangle-inequality bound can never exclude a true ε-pair.
  re_pad_ = 2.0 * params.epsilon * (1.0 + 1e-9);
  re_pad2_ = re_pad_ * re_pad_;
}

void IncrementalClusterer::Reset() {
  has_state_ = false;
  ids_.clear();
  anchors_.clear();
  lists_.clear();
}

namespace {

/// Strict-weak order on (cx, cy) only: equal_range over an index sorted
/// by (cx, cy, idx) partitions correctly under it, and including idx in
/// the sort keeps the within-cell order a total (hence reproducible)
/// order even though no output depends on it.
template <typename Entry>
bool CellPosLess(const Entry& a, const Entry& b) {
  if (a.cx != b.cx) return a.cx < b.cx;
  return a.cy < b.cy;
}

}  // namespace

double IncrementalClusterer::BuildCellIndex() {
  double max_abs = 0.0;
  for (const Point& a : anchors_) {
    TCOMP_CHECK(std::isfinite(a.x) && std::isfinite(a.y))
        << "non-finite anchor coordinate";
    max_abs = std::max({max_abs, std::fabs(a.x), std::fabs(a.y)});
  }
  const double cell = GridCellWidth(re_pad_, max_abs);
  cell_count_ = anchors_.size();
  cell_index_ = arena_.AllocateArray<CellEntry>(cell_count_);
  for (size_t i = 0; i < cell_count_; ++i) {
    const Point a = anchors_[i];
    cell_index_[i] =
        CellEntry{static_cast<int64_t>(std::floor(a.x / cell)),
                  static_cast<int64_t>(std::floor(a.y / cell)),
                  static_cast<uint32_t>(i)};
  }
  std::sort(cell_index_, cell_index_ + cell_count_,
            [](const CellEntry& a, const CellEntry& b) {
              if (a.cx != b.cx) return a.cx < b.cx;
              if (a.cy != b.cy) return a.cy < b.cy;
              return a.idx < b.idx;
            });
  return cell;
}

void IncrementalClusterer::RefreshIndexLookup() {
  const size_t n = ids_.size();
  dense_lookup_ = false;
  if (n == 0) return;
  // ids_ is ascending, so back() is the maximum. Beyond 4n the table's
  // O(max_id) fill/footprint stops paying for itself; binary search then.
  const uint64_t max_id = ids_.back();
  if (max_id <= 4 * static_cast<uint64_t>(n) + 1024) {
    // Arena storage is uninitialized; only slots for present ids are
    // written, and IndexOfId is only ever queried for present ids.
    index_of_ = arena_.AllocateArray<uint32_t>(max_id + 1);
    for (uint32_t i = 0; i < n; ++i) index_of_[ids_[i]] = i;
    dense_lookup_ = true;
  }
}

uint32_t IncrementalClusterer::IndexOfId(ObjectId id) const {
  if (dense_lookup_) return index_of_[id];
  return static_cast<uint32_t>(
      std::lower_bound(ids_.begin(), ids_.end(), id) - ids_.begin());
}

void IncrementalClusterer::RebuildFromScratch(const Snapshot& snapshot,
                                              int64_t* ops) {
  ids_ = snapshot.ids();
  anchors_ = snapshot.points();
  has_state_ = true;
  RebuildListsFromAnchors(ops);
}

void IncrementalClusterer::RebuildListsFromAnchors(int64_t* ops) {
  const size_t n = ids_.size();
  lists_.assign(n, {});

  const double cell = BuildCellIndex();
  for (uint32_t i = 0; i < n; ++i) {
    const Point a = anchors_[i];
    const int64_t cx = static_cast<int64_t>(std::floor(a.x / cell));
    const int64_t cy = static_cast<int64_t>(std::floor(a.y / cell));
    for (int64_t dx = -1; dx <= 1; ++dx) {
      for (int64_t dy = -1; dy <= 1; ++dy) {
        auto range = std::equal_range(cell_index_, cell_index_ + cell_count_,
                                      CellEntry{cx + dx, cy + dy, 0},
                                      CellPosLess<CellEntry>);
        for (auto it = range.first; it != range.second; ++it) {
          const uint32_t h = it->idx;
          if (h <= i) continue;  // the 3×3 scan is symmetric: pair once
          if (ops != nullptr) ++*ops;
          // tcomp-lint: allow(soa-raw-loop): anchor probes are rₑ-radius
          // superset tests over AoS anchors_, not the per-snapshot ε hot
          // path; batching them would change nothing downstream.
          if (WithinEps(a, anchors_[h], re_pad2_)) {
            lists_[i].push_back(ids_[h]);
            lists_[h].push_back(ids_[i]);
          }
        }
      }
    }
  }
  // Probe order is cell order, not id order; restore the sorted invariant.
  for (std::vector<ObjectId>& list : lists_) {
    std::sort(list.begin(), list.end());
  }
}

Clustering IncrementalClusterer::FinishExact(const Snapshot& snapshot,
                                             int64_t* ops,
                                             ClusterDeltaStats* delta) {
  const size_t n = snapshot.size();
  const double eps2 = params_.epsilon * params_.epsilon;
  // ids_ == snapshot.ids() here (both the rebuild and the repair path end
  // by adopting the snapshot's id set), so the scratch table resolves
  // list entries without a per-edge binary search.
  RefreshIndexLookup();
  std::vector<std::vector<uint32_t>> neighbors(n);
  Timer filter_timer;
  filter_timer.Start();
  if (SoAKernelsEnabled()) {
    // SoA path: gather each row's carried candidates (the list tail with
    // id > self, so each symmetric pair is filtered exactly once — same
    // pair set, same op count as the scalar walk below), stream them
    // through EpsFilterGather, and emit surviving pairs as packed
    // (row << 32 | col) edges into the arena. Rows are then built with
    // exact reserves and sorted — ascending, the scalar row order.
    const SnapshotSoA soa = BuildSnapshotSoA(snapshot, &arena_);
    size_t total_list = 0;
    size_t max_list = 0;
    for (const std::vector<ObjectId>& list : lists_) {
      total_list += list.size();
      max_list = std::max(max_list, list.size());
    }
    uint32_t* cand = arena_.AllocateArray<uint32_t>(max_list);
    uint32_t* surv = arena_.AllocateArray<uint32_t>(max_list);
    // Every surviving pair contributes both directions; Σ tails ==
    // total_list / 2 pairs, so total_list bounds the edge count.
    uint64_t* edges = arena_.AllocateArray<uint64_t>(total_list);
    size_t edge_count = 0;
    int64_t lanes = 0;
    int64_t batches = 0;
    for (uint32_t i = 0; i < n; ++i) {
      const std::vector<ObjectId>& list = lists_[i];
      auto tail = std::upper_bound(list.begin(), list.end(), ids_[i]);
      size_t m = 0;
      for (auto it = tail; it != list.end(); ++it) cand[m++] = IndexOfId(*it);
      if (m == 0) continue;
      *ops += static_cast<int64_t>(m);
      lanes += static_cast<int64_t>(m);
      ++batches;
      const size_t kept = EpsFilterGather(soa.x, soa.y, cand, m, soa.x[i],
                                          soa.y[i], eps2, surv);
      for (size_t k = 0; k < kept; ++k) {
        const uint64_t j = surv[k];
        edges[edge_count++] = (static_cast<uint64_t>(i) << 32) | j;
        edges[edge_count++] = (j << 32) | i;
      }
    }
    uint32_t* degree = arena_.AllocateArray<uint32_t>(n);
    std::fill(degree, degree + n, 0u);
    for (size_t e = 0; e < edge_count; ++e) ++degree[edges[e] >> 32];
    for (uint32_t i = 0; i < n; ++i) {
      neighbors[i].reserve(degree[i] + 1);
      neighbors[i].push_back(i);
    }
    for (size_t e = 0; e < edge_count; ++e) {
      neighbors[edges[e] >> 32].push_back(static_cast<uint32_t>(edges[e]));
    }
    for (uint32_t i = 0; i < n; ++i) {
      std::sort(neighbors[i].begin(), neighbors[i].end());
    }
    if (delta != nullptr) {
      delta->soa_batches += batches;
      delta->soa_lanes += lanes;
    }
  } else {
    for (uint32_t i = 0; i < n; ++i) {
      // Mirror pushes from earlier rows are all < i, the lists_ walk below
      // only appends indices > i in ascending id order, so every neighbor
      // row comes out ascending without a sort.
      neighbors[i].push_back(i);
      const ObjectId self = ids_[i];
      const Point pi = snapshot.pos(i);
      for (ObjectId u : lists_[i]) {
        if (u <= self) continue;  // symmetric lists: filter each pair once
        const size_t j = IndexOfId(u);
        ++*ops;
        // tcomp-lint: allow(soa-raw-loop): this IS the sanctioned scalar
        // fallback the SoA branch above is differentially tested against.
        if (WithinEps(pi, snapshot.pos(j), eps2)) {
          neighbors[i].push_back(static_cast<uint32_t>(j));
          neighbors[j].push_back(i);
        }
      }
    }
  }
  filter_timer.Stop();
  if (delta != nullptr) delta->eps_filter_seconds += filter_timer.Seconds();
  std::vector<bool> core(n, false);
  for (uint32_t i = 0; i < n; ++i) {
    core[i] = neighbors[i].size() >= static_cast<size_t>(params_.mu);
  }
  return internal::BuildClusteringFromCores(snapshot, core, neighbors);
}

Clustering IncrementalClusterer::Cluster(const Snapshot& snapshot,
                                         int64_t* distance_ops,
                                         ClusterDeltaStats* delta) {
  if (!IncrementalClusteringEnabled()) {
    // Kill switch: drop carried state (a later re-enable must re-probe
    // from scratch, exactly like an uninterrupted toggled run) and
    // delegate to the reference implementation, threads and all.
    Reset();
    return Dbscan(snapshot, params_, distance_ops);
  }

  // All per-snapshot scratch (cell index, id→index table, SoA view, edge
  // buffers) lives until here and no longer; after the warm-up snapshot
  // has sized the arena this is the only allocation event per snapshot —
  // a cursor rewind.
  arena_.Reset();

  const size_t n = snapshot.size();
  int64_t ops = 0;
  bool fell_back = false;
  size_t reprobed = 0;

  if (!has_state_) {
    fell_back = true;
    RebuildFromScratch(snapshot, &ops);
  } else {
    const std::vector<IdMergeItem> merged =
        MergeIdSequences(ids_, snapshot.ids());
    std::vector<bool> dirty(n, false);
    size_t appeared = 0;
    size_t moved = 0;
    size_t disappeared = 0;
    for (const IdMergeItem& m : merged) {
      if (m.index_b == Snapshot::kNpos) {
        ++disappeared;
        continue;
      }
      if (m.index_a == Snapshot::kNpos) {
        dirty[m.index_b] = true;
        ++appeared;
        continue;
      }
      // Stability predicate: still within Δ of the anchor? This is a
      // real distance evaluation, so it counts toward distance_ops.
      ++ops;
      // tcomp-lint: allow(soa-raw-loop): the stability test is O(n) over
      // an ordered merge mixing two index spaces; a gather into SoA form
      // would cost more than the compare it feeds.
      if (!WithinEps(snapshot.pos(m.index_b), anchors_[m.index_a], delta2_)) {
        dirty[m.index_b] = true;
        ++moved;
      }
    }

    // Fallback trigger: when more than 30% of the population churned, the
    // symmetric list surgery costs more than it saves — re-probe in full.
    // (The other trigger, no carried state, was handled above.)
    const size_t churn = appeared + moved + disappeared;
    if (churn * 10 > n * 3) {
      fell_back = true;
      RebuildFromScratch(snapshot, &ops);
    } else {
      reprobed = appeared + moved;

      // 1. Symmetric edge removal for everything that left or moved.
      //    (Dirty-set closure: a stable object adjacent to a mover keeps
      //    its anchor, but its list is repaired right here — the mover
      //    deletes the stale edge and re-adds it below if still in
      //    range, so "adjacency to a mover" never needs its own flag.)
      RefreshIndexLookup();  // resolves old ids_ (pre re-index below)
      for (const IdMergeItem& m : merged) {
        const bool gone = m.index_b == Snapshot::kNpos;
        if (!gone && (m.index_a == Snapshot::kNpos || !dirty[m.index_b])) {
          continue;  // arrival (no old edges) or stable survivor
        }
        std::vector<ObjectId>& own = lists_[m.index_a];
        for (ObjectId u : own) EraseSorted(lists_[IndexOfId(u)], m.id);
        own.clear();
      }

      // 2. Re-index the carried state to the new snapshot's index space;
      //    movers and arrivals re-anchor to their current position.
      std::vector<Point> new_anchors(n);
      std::vector<std::vector<ObjectId>> new_lists(n);
      for (const IdMergeItem& m : merged) {
        if (m.index_b == Snapshot::kNpos) continue;
        if (m.index_a != Snapshot::kNpos && !dirty[m.index_b]) {
          new_anchors[m.index_b] = anchors_[m.index_a];
          new_lists[m.index_b] = std::move(lists_[m.index_a]);
        } else {
          new_anchors[m.index_b] = snapshot.pos(m.index_b);
        }
      }
      ids_ = snapshot.ids();
      anchors_ = std::move(new_anchors);
      lists_ = std::move(new_lists);

      // 3. Probe only the dirty anchors against the rₑ-grid. A pair of
      //    two dirty objects is seen from both probes; the h-side guard
      //    keeps exactly one evaluation per pair.
      const double cell = BuildCellIndex();
      for (uint32_t d = 0; d < n; ++d) {
        if (!dirty[d]) continue;
        const Point a = anchors_[d];
        const int64_t cx = static_cast<int64_t>(std::floor(a.x / cell));
        const int64_t cy = static_cast<int64_t>(std::floor(a.y / cell));
        for (int64_t dx = -1; dx <= 1; ++dx) {
          for (int64_t dy = -1; dy <= 1; ++dy) {
            auto range = std::equal_range(cell_index_,
                                          cell_index_ + cell_count_,
                                          CellEntry{cx + dx, cy + dy, 0},
                                          CellPosLess<CellEntry>);
            for (auto it = range.first; it != range.second; ++it) {
              const uint32_t h = it->idx;
              if (h == d) continue;
              if (dirty[h] && h < d) continue;  // evaluated at the h probe
              ++ops;
              // tcomp-lint: allow(soa-raw-loop): dirty-anchor rₑ probes
              // touch only the churned minority; see the rebuild-path
              // rationale above.
              if (WithinEps(a, anchors_[h], re_pad2_)) {
                InsertSorted(lists_[d], ids_[h]);
                InsertSorted(lists_[h], ids_[d]);
              }
            }
          }
        }
      }
    }
  }

  if (delta != nullptr) {
    if (fell_back) {
      delta->dirty += static_cast<int64_t>(n);
      ++delta->full_rebuilds;
    } else {
      delta->reuse += static_cast<int64_t>(n - reprobed);
      delta->dirty += static_cast<int64_t>(reprobed);
    }
  }
  Clustering result = FinishExact(snapshot, &ops, delta);
  if (distance_ops != nullptr) *distance_ops += ops;
  return result;
}

void IncrementalClusterer::SaveState(std::ostream& out) const {
  out << "clusterer " << (has_state_ ? 1 : 0) << ' ' << ids_.size() << '\n';
  for (size_t i = 0; i < ids_.size(); ++i) {
    out << ids_[i] << ' ';
    WriteHexDouble(out, anchors_[i].x);
    out << ' ';
    WriteHexDouble(out, anchors_[i].y);
    out << '\n';
  }
}

Status IncrementalClusterer::LoadState(std::istream& in) {
  std::string tag;
  int has = 0;
  uint64_t count = 0;
  if (!(in >> tag >> has >> count) || tag != "clusterer") {
    return Status::Corruption("expected 'clusterer' section");
  }
  if (has != 0 && has != 1) {
    return Status::Corruption("bad clusterer state flag");
  }
  if (count > kMaxStateCount || (has == 0 && count != 0)) {
    return Status::Corruption("implausible clusterer state count");
  }
  Reset();
  std::vector<ObjectId> ids(count);
  std::vector<Point> anchors(count);
  for (uint64_t i = 0; i < count; ++i) {
    std::string x_token;
    std::string y_token;
    if (!(in >> ids[i] >> x_token >> y_token)) {
      return Status::Corruption("bad clusterer anchor record");
    }
    if (i > 0 && ids[i] <= ids[i - 1]) {
      return Status::Corruption("clusterer anchor ids out of order");
    }
    if (!ParseHexDouble(x_token, &anchors[i].x) ||
        !ParseHexDouble(y_token, &anchors[i].y) ||
        !std::isfinite(anchors[i].x) || !std::isfinite(anchors[i].y)) {
      return Status::Corruption("bad clusterer anchor coordinate");
    }
  }
  if (has == 0) return Status::OK();
  if (!IncrementalClusteringEnabled()) {
    // Honor the *current* kill-switch mode, not the mode at save time: an
    // uninterrupted run with the layer off would have dropped this state
    // (Cluster() resets before delegating), so a resumed run must too.
    return Status::OK();
  }
  ids_ = std::move(ids);
  anchors_ = std::move(anchors);
  has_state_ = true;
  // The neighbor lists are a pure function of the anchors; rebuilding
  // them here (uncounted — the uninterrupted run never paid for this)
  // reproduces the carried graph bit-for-bit.
  arena_.Reset();  // the rebuild's cell index is per-call scratch too
  RebuildListsFromAnchors(nullptr);
  return Status::OK();
}

}  // namespace tcomp
