#ifndef TCOMP_CORE_CHECKPOINT_H_
#define TCOMP_CORE_CHECKPOINT_H_

#include <string>

#include "core/discoverer.h"
#include "util/status.h"

namespace tcomp {

/// Checkpoint/restore for long-running stream monitors: a discoverer's
/// complete state (candidate sets, buddy structures, companion log, cost
/// counters) round-trips through a versioned text record, so after a
/// process restart the monitor resumes exactly where it left off —
/// continuing the stream after LoadDiscovererFromFile() yields the same
/// companions and counters as an uninterrupted run (asserted by
/// tests/checkpoint_test.cc).
///
/// Usage:
///   SaveDiscovererToFile(*discoverer, "state.ckpt");
///   ...restart...
///   auto discoverer = MakeDiscoverer(algorithm, same_params);
///   LoadDiscovererFromFile(discoverer.get(), "state.ckpt");
///
/// The restoring discoverer must be constructed with the same algorithm
/// and parameters as the saved one (the algorithm is verified from the
/// header; parameters are the caller's responsibility, as they are not
/// part of the mutable state).
Status SaveDiscoverer(const CompanionDiscoverer& discoverer,
                      std::ostream& out);
Status LoadDiscoverer(CompanionDiscoverer* discoverer, std::istream& in);

Status SaveDiscovererToFile(const CompanionDiscoverer& discoverer,
                            const std::string& path);
Status LoadDiscovererFromFile(CompanionDiscoverer* discoverer,
                              const std::string& path);

}  // namespace tcomp

#endif  // TCOMP_CORE_CHECKPOINT_H_
