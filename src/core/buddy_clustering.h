#ifndef TCOMP_CORE_BUDDY_CLUSTERING_H_
#define TCOMP_CORE_BUDDY_CLUSTERING_H_

#include <cstdint>

#include "core/buddy.h"
#include "core/dbscan.h"
#include "core/snapshot.h"

namespace tcomp {

/// Counters for one buddy-based clustering call (Algorithm 4); the Lemma-3
/// pruning rate is the paper's ">80% of objects pruned" claim (Section
/// V-C), quantified by `pairs_pruned / pairs_checked`.
struct BuddyClusteringStats {
  int64_t pairs_checked = 0;    // buddy pairs examined
  int64_t pairs_pruned = 0;     // buddy pairs dismissed by Lemma 3
  int64_t lemma2_buddies = 0;   // density-connected buddies (Lemma 2)
  int64_t lemma4_shortcuts = 0;  // whole-buddy unions via Lemma 4
  int64_t distance_ops = 0;     // object-level distance evaluations
};

/// Algorithm 4: density-based clustering of one snapshot driven by the
/// buddy set instead of raw object pairs.
///
/// The buddies act as a clustered spatial index:
///  * Lemma 3 prunes buddy pairs too far apart to contain any ε-close
///    object pair — their members are never compared;
///  * Lemma 2 marks every member of a tight, large buddy
///    (|b| ≥ μ+1, γ ≤ ε/2) as a core object with zero distance work;
///  * Lemma 4 unions two density-connected buddies wholesale as soon as
///    one ε-close cross pair is found.
///
/// The output is exactly the clustering Dbscan() produces for the same
/// snapshot and parameters (the lemmas are pruning rules, not
/// approximations, and the deterministic labeling spec is shared).
///
/// Pre-condition: `buddies` was updated with this snapshot (Algorithm 4
/// line 1 — the discoverer calls BuddySet::Update first), so every object
/// in the snapshot belongs to exactly one buddy.
Clustering BuddyBasedClustering(const Snapshot& snapshot,
                                const BuddySet& buddies,
                                const DbscanParams& params,
                                BuddyClusteringStats* stats = nullptr);

}  // namespace tcomp

#endif  // TCOMP_CORE_BUDDY_CLUSTERING_H_
