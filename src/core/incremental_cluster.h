#ifndef TCOMP_CORE_INCREMENTAL_CLUSTER_H_
#define TCOMP_CORE_INCREMENTAL_CLUSTER_H_

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "core/dbscan.h"
#include "core/snapshot.h"
#include "core/types.h"
#include "util/arena.h"
#include "util/status.h"

namespace tcomp {

/// Per-run counters for the incremental layer; accumulated into
/// DiscoveryStats by the discoverers that embed a clusterer.
struct ClusterDeltaStats {
  /// Objects whose carried neighborhood state was reused as-is.
  int64_t reuse = 0;
  /// Objects re-probed against the spatial grid (movers, arrivals, plus
  /// every object of a fallback snapshot).
  int64_t dirty = 0;
  /// Snapshots where the stability test could not bound the churn and the
  /// whole snapshot was re-clustered from scratch.
  int64_t full_rebuilds = 0;

  /// SoA ε-filter kernel activity (util/eps_filter.h): batches dispatched
  /// and candidate lanes streamed. Zero when SoAKernelsEnabled() is off.
  int64_t soa_batches = 0;
  int64_t soa_lanes = 0;
  /// Wall time spent in the exact ε-filter portion of FinishExact
  /// (neighbor-graph construction), whichever kernel served it. Timing
  /// only — never read back into control flow.
  double eps_filter_seconds = 0.0;
};

/// Exact snapshot-to-snapshot density clustering (ROADMAP item 4,
/// following the evolutionary-clustering direction in PAPERS.md): instead
/// of re-running DBSCAN from scratch each snapshot, the clusterer carries
/// a *candidate-neighbor graph* across snapshots and only repairs the
/// parts the stream actually changed.
///
/// The invariant (details in DESIGN.md):
///
///  - every object has an **anchor** — its position the last time it was
///    probed — and a sorted, symmetric list of the objects whose anchors
///    lie within the extended radius rₑ = 2ε (= ε + 2·Δ with slack
///    Δ = ε/2, padded for floating point);
///  - an object is **stable** while it stays within Δ of its anchor;
///    otherwise (moved beyond Δ, appeared, or anchor unknown) it is
///    **dirty** and is re-probed: its anchor snaps to the current
///    position and its list is rebuilt from an rₑ-grid;
///  - by the triangle inequality, two objects within ε of each other are
///    within Δ + ε + Δ = rₑ of their anchors, so the carried lists are a
///    superset of the true ε-neighbor pairs. The exact ε-graph is then
///    recovered by filtering every listed pair through the shared
///    WithinEps predicate on *current* positions.
///
/// The final labeling runs through the same BuildClusteringFromCores
/// finishing step as every other backend, so the output is byte-identical
/// to full DBSCAN on every snapshot — including label numbering, border
/// attachment, and noise — by construction, not by luck. When stability
/// cannot be proven cheaply (no carried state, or churn above the
/// fallback threshold) the snapshot is conservatively re-probed in full.
///
/// The layer is process-gated by SetIncrementalClusteringEnabled(); when
/// off, Cluster() drops its carried state and delegates to the reference
/// Dbscan() (ops accounting then matches the pre-incremental behavior
/// exactly). The clusterer is deliberately serial: its products and its
/// distance_ops are independent of DbscanParams::threads.
///
/// Not thread-safe; one instance per stream, like the discoverers.
class IncrementalClusterer {
 public:
  explicit IncrementalClusterer(const DbscanParams& params);

  /// Clusters `snapshot`, reusing carried state where the stability
  /// predicate allows. `distance_ops` (if non-null) is incremented by the
  /// number of distance evaluations; `delta` (if non-null) accumulates
  /// the reuse/dirty/fallback counters.
  Clustering Cluster(const Snapshot& snapshot, int64_t* distance_ops,
                     ClusterDeltaStats* delta);

  /// Drops all carried state; the next Cluster() call re-probes in full.
  void Reset();

  /// Checkpointing: the carried state is part of a discoverer's stream
  /// state — resuming from a checkpoint must replay exactly like the
  /// uninterrupted run, ops counters included. Anchors are serialized as
  /// hex floats (bit-exact round trip); the neighbor lists are a pure
  /// function of the anchors and are rebuilt on load (uncounted — the
  /// uninterrupted run never paid for them either).
  void SaveState(std::ostream& out) const;
  Status LoadState(std::istream& in);

  bool has_state() const { return has_state_; }

  /// Heap bytes held by the per-snapshot scratch arena (SoA views, cell
  /// index, id→index table, edge buffers). Stable across snapshots once
  /// the workload's high-water mark has been seen — the no-heap-growth
  /// invariant tests/soa_differential_test.cc pins.
  size_t ScratchArenaBytes() const { return arena_.allocated_bytes(); }

 private:
  /// Re-anchors every object of `snapshot` and rebuilds the neighbor
  /// lists from an rₑ-grid. Counts one distance op per candidate pair
  /// tested when `ops` is non-null.
  void RebuildFromScratch(const Snapshot& snapshot, int64_t* ops);

  /// Rebuilds lists_ from ids_/anchors_ alone (the lists are a pure
  /// function of the anchors). Shared by the rebuild and load paths.
  void RebuildListsFromAnchors(int64_t* ops);

  /// The exact ε-filter + core/label finishing step over carried lists.
  /// Routes the filter through the batched SoA kernels when
  /// SoAKernelsEnabled(), through the scalar WithinEps walk otherwise —
  /// byte-identical products and distance_ops either way. `delta` (may be
  /// null) accumulates soa_batches/soa_lanes/eps_filter_seconds.
  Clustering FinishExact(const Snapshot& snapshot, int64_t* ops,
                         ClusterDeltaStats* delta);

  /// Refreshes the id → index scratch table from ids_. Queries through
  /// IndexOfId are only ever made for ids present in ids_, so stale
  /// entries for departed ids never need clearing.
  void RefreshIndexLookup();
  uint32_t IndexOfId(ObjectId id) const;

  /// Rebuilds cell_index_ (the rₑ-grid as a sorted flat array — cheaper
  /// than a node-based hash map rebuilt every snapshot) and returns the
  /// cell width used.
  double BuildCellIndex();

  DbscanParams params_;
  double delta2_;    // (ε/2)², the stability slack, squared
  double re_pad_;    // 2ε padded for FP: probe radius for anchor lists
  double re_pad2_;   // re_pad_²

  bool has_state_ = false;
  std::vector<ObjectId> ids_;                  // ascending; == last snapshot
  std::vector<Point> anchors_;                 // parallel to ids_
  std::vector<std::vector<ObjectId>> lists_;   // sorted, symmetric, no self

  // Per-snapshot scratch, arena-allocated: cell_index_ is the anchor grid
  // sorted by (cx, cy, idx); index_of_ is the dense id → index table,
  // valid only when dense_lookup_ is set (sparse id spaces fall back to
  // binary search over ids_). Pointers are valid until the arena's next
  // Reset(), which happens only at Cluster() entry and in LoadState() —
  // never mid-snapshot. The arena retains its capacity across snapshots,
  // so the steady state allocates nothing from the heap.
  struct CellEntry {
    int64_t cx;
    int64_t cy;
    uint32_t idx;
  };
  Arena arena_;
  CellEntry* cell_index_ = nullptr;
  size_t cell_count_ = 0;
  uint32_t* index_of_ = nullptr;
  bool dense_lookup_ = false;
};

}  // namespace tcomp

#endif  // TCOMP_CORE_INCREMENTAL_CLUSTER_H_
