#include "core/snapshot.h"

#include <algorithm>

#include "util/logging.h"

namespace tcomp {

Snapshot::Snapshot(std::vector<ObjectPosition> positions, double duration)
    : duration_(duration) {
  std::sort(positions.begin(), positions.end(),
            [](const ObjectPosition& a, const ObjectPosition& b) {
              return a.id < b.id;
            });
  ids_.reserve(positions.size());
  points_.reserve(positions.size());
  for (const ObjectPosition& p : positions) {
    if (!ids_.empty() && ids_.back() == p.id) {
      TCOMP_LOG(FATAL) << "duplicate object id " << p.id
                       << " in snapshot; resolve multi-reports upstream";
    }
    ids_.push_back(p.id);
    points_.push_back(p.pos);
  }
}

SnapshotSoA BuildSnapshotSoA(const Snapshot& snapshot, Arena* arena) {
  const size_t n = snapshot.size();
  SnapshotSoA soa;
  soa.size = n;
  double* xs = arena->AllocateArray<double>(n);
  double* ys = arena->AllocateArray<double>(n);
  ObjectId* ids = arena->AllocateArray<ObjectId>(n);
  for (size_t i = 0; i < n; ++i) {
    const Point p = snapshot.pos(i);
    xs[i] = p.x;
    ys[i] = p.y;
    ids[i] = snapshot.id(i);
  }
  soa.x = xs;
  soa.y = ys;
  soa.id = ids;
  return soa;
}

size_t Snapshot::IndexOf(ObjectId id) const {
  auto it = std::lower_bound(ids_.begin(), ids_.end(), id);
  if (it == ids_.end() || *it != id) return kNpos;
  return static_cast<size_t>(it - ids_.begin());
}

std::vector<IdMergeItem> MergeIdSequences(const std::vector<ObjectId>& a,
                                          const std::vector<ObjectId>& b) {
  std::vector<IdMergeItem> merged;
  merged.reserve(std::max(a.size(), b.size()));
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() || j < b.size()) {
    IdMergeItem item;
    if (j >= b.size() || (i < a.size() && a[i] < b[j])) {
      item.id = a[i];
      item.index_a = i++;
    } else if (i >= a.size() || b[j] < a[i]) {
      item.id = b[j];
      item.index_b = j++;
    } else {
      item.id = a[i];
      item.index_a = i++;
      item.index_b = j++;
    }
    merged.push_back(item);
  }
  return merged;
}

int64_t TotalRecords(const SnapshotStream& stream) {
  int64_t n = 0;
  for (const Snapshot& s : stream) n += static_cast<int64_t>(s.size());
  return n;
}

}  // namespace tcomp
