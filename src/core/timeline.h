#ifndef TCOMP_CORE_TIMELINE_H_
#define TCOMP_CORE_TIMELINE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "core/discoverer.h"
#include "core/types.h"

namespace tcomp {

/// A contiguous lifetime of one companion: the object set stayed
/// qualified from snapshot `begin` through snapshot `end` (inclusive).
struct CompanionEpisode {
  ObjectSet objects;
  int64_t begin = 0;
  int64_t end = 0;

  int64_t length() const { return end - begin + 1; }
};

/// Reconstructs companion lifetimes from a discoverer's report stream
/// (attach with Track()). Under Definition 4 a persisting group
/// re-qualifies every δt snapshots; the timeline stitches qualification
/// events of the same object set into episodes: an event at snapshot s
/// with duration d covers [s-d+1, s], and events whose covers touch or
/// overlap merge into one episode.
///
/// This answers the monitoring questions the companion *set* alone
/// cannot: when did a group form, how long did it persist, did it
/// dissolve and re-form (separate episodes), and what was traveling
/// together at a given instant.
class CompanionTimeline {
 public:
  /// Subscribes this timeline to `discoverer`'s reports (replaces any
  /// previously installed sink). The timeline must outlive the
  /// discoverer's processing.
  void Track(CompanionDiscoverer* discoverer);

  /// Feeds one qualification event directly (what Track() wires up).
  void Observe(const ObjectSet& objects, double duration,
               int64_t snapshot_index);

  /// All episodes, ordered by (objects, begin). Adjacent episodes of one
  /// set are already merged.
  std::vector<CompanionEpisode> Episodes() const;

  /// Episodes whose cover contains `snapshot_index`.
  std::vector<CompanionEpisode> ActiveAt(int64_t snapshot_index) const;

  /// The longest episode, or nullopt-like empty episode when none.
  CompanionEpisode Longest() const;

  size_t distinct_sets() const { return episodes_.size(); }
  void Clear();

 private:
  // Per object set: episodes sorted by begin; the last one is "open" for
  // extension by subsequent events.
  std::map<ObjectSet, std::vector<CompanionEpisode>> episodes_;
};

}  // namespace tcomp

#endif  // TCOMP_CORE_TIMELINE_H_
