#ifndef TCOMP_CORE_CANDIDATE_H_
#define TCOMP_CORE_CANDIDATE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "core/types.h"
#include "util/set_signature.h"

namespace tcomp {

/// A companion candidate (paper Definition 4): an object group that has
/// stayed density-connected for `duration` time units so far, with size
/// already ≥ δs (smaller groups are dropped immediately).
struct Candidate {
  Candidate() = default;
  /// The constructor derives `signature` from `objects` so the O(1)
  /// closedness prefilter can never observe a stale signature. Callers
  /// that fill `objects` after construction (checkpoint restore) must
  /// reassign `signature` themselves.
  Candidate(ObjectSet objects_in, double duration_in)
      : objects(std::move(objects_in)),
        duration(duration_in),
        signature(SetSignature::Of(objects)) {}

  ObjectSet objects;       // sorted ascending
  double duration = 0.0;   // accumulated snapshot durations
  SetSignature signature;  // O(1) subset prefilter over `objects`
};

/// A qualified traveling companion (paper Definition 3).
struct Companion {
  ObjectSet objects;
  double duration = 0.0;     // duration when last reported
  int64_t snapshot_index = 0;  // stream index at first qualification
};

/// Deduplicated log of every companion a discoverer has reported. A
/// companion that persists is re-reported by the algorithms each snapshot
/// with growing duration; the log keeps one entry per distinct object set,
/// remembering the first snapshot at which it qualified and the longest
/// duration seen.
///
/// In *closed mode* (Definition 5 applied to the output, as SC and BU do —
/// the paper attributes CI's low precision to "redundant and non-closed
/// companions in the results"), a companion is dropped when a superset
/// with equal-or-longer duration is already logged, and logging a new
/// companion evicts logged subsets with equal-or-shorter durations.
class CompanionLog {
 public:
  CompanionLog() = default;
  explicit CompanionLog(bool closed_mode) : closed_mode_(closed_mode) {}

  void set_closed_mode(bool closed_mode) { closed_mode_ = closed_mode; }

  /// Records a qualifying (objects, duration) pair observed at
  /// `snapshot_index`. Returns true if this object set is new to the log
  /// (and, in closed mode, survives the closedness check).
  bool Report(const ObjectSet& objects, double duration,
              int64_t snapshot_index);

  /// Inserts a companion verbatim — no dedup or closedness checks. For
  /// checkpoint restore only; the entry must not duplicate an existing
  /// set.
  void RestoreEntry(Companion companion);

  bool closed_mode() const { return closed_mode_; }

  /// Logged companions, insertion-ordered (closed-mode evictions leave
  /// later entries in place).
  const std::vector<Companion>& companions() const;
  size_t size() const { return index_.size(); }
  void Clear();

 private:
  bool closed_mode_ = false;
  // `companions_` may hold tombstones (empty object sets) after closed-
  // mode evictions; `materialized_` caches the compacted view.
  mutable std::vector<Companion> materialized_;
  mutable bool dirty_ = false;
  std::vector<Companion> companions_;
  // Subset prefilters, parallel to `companions_` (tombstoned entries keep
  // a stale signature but are unreachable through `index_`).
  std::vector<SetSignature> signatures_;
  std::map<ObjectSet, size_t> index_;  // objects -> position in companions_
};

/// True if candidate set `objects` (with `duration`) passes the closedness
/// check of paper Definition 5 against the candidates in `against`: it is
/// *not* closed (and should be dropped) iff some candidate in `against` is
/// a superset with duration ≥ `duration`.
bool IsClosedAgainst(const ObjectSet& objects, double duration,
                     const std::vector<Candidate>& against);

/// Sum of candidate sizes — the paper's space-cost metric ("size of the
/// candidate set, # of objects").
int64_t TotalCandidateObjects(const std::vector<Candidate>& candidates);

}  // namespace tcomp

#endif  // TCOMP_CORE_CANDIDATE_H_
