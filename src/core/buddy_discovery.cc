#include "core/buddy_discovery.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <string>
#include <unordered_map>

#include "util/dense_bitset.h"
#include "util/logging.h"
#include "util/sorted_ops.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace tcomp {
namespace {

/// Caps the total per-snapshot memory spent on cluster bitsets (each
/// cluster gets its own universe-sized bitset during the I-step).
constexpr uint64_t kMaxClusterBitsetBytes = uint64_t{32} << 20;  // 32 MiB

/// Clusters with fewer loose objects than this answer membership probes
/// faster by binary search than a bitset build would amortize. Buddy
/// compression usually leaves only a handful of loose objects per cluster,
/// so the bar is low: every candidate probes every cluster, and the build
/// is a short memset plus one word-OR per loose object.
constexpr size_t kMinLooseObjectsForBitset = 4;

double EffectiveBuddyRadius(const DiscoveryParams& params) {
  if (params.buddy_radius > 0.0) return params.buddy_radius;
  // Paper recommendation: δγ = ε/2, the largest radius for which Lemma 2
  // can certify density-connected buddies.
  return params.cluster.epsilon / 2.0;
}

}  // namespace

BuddyDiscoverer::BuddyDiscoverer(const DiscoveryParams& params)
    : params_(params), buddies_(EffectiveBuddyRadius(params)) {
  // Like SC, BU reports only closed companions (Definition 5 on outputs).
  log_.set_closed_mode(true);
  buddies_.set_threads(params.cluster.threads);
}

BuddyId BuddyDiscoverer::LiveBuddyOf(ObjectId oid) const {
  const Buddy* b = buddies_.FindBuddyOfObject(oid);
  return b == nullptr ? kNoLiveBuddy : b->id;
}

void BuddyDiscoverer::EnsureIndexed(BuddyId id) {
  if (index_.Contains(id)) return;
  const Buddy* b = buddies_.FindBuddyById(id);
  TCOMP_CHECK(b != nullptr) << "buddy " << id
                            << " is neither indexed nor live";
  index_.Register(id, b->members);
}

void BuddyDiscoverer::ProcessSnapshot(
    const Snapshot& snapshot, std::vector<Companion>* newly_qualified) {
  // --- M-step: buddy maintenance + candidate token expansion. ---
  Timer maintain_timer;
  maintain_timer.Start();
  if (!initialized_) {
    buddies_.Initialize(snapshot);
    initialized_ = true;
    stats_.buddies_total += static_cast<int64_t>(buddies_.buddies().size());
    for (const Buddy& b : buddies_.buddies()) {
      stats_.buddy_member_sum += static_cast<int64_t>(b.members.size());
    }
  } else {
    BuddyMaintenanceStats mstats;
    buddies_.Update(snapshot, &mstats);
    stats_.buddies_total += mstats.total;
    stats_.buddies_unchanged += mstats.unchanged;
    stats_.buddy_member_sum += mstats.member_sum;
    stats_.distance_ops += mstats.distance_ops;

    // Replace retired buddy tokens in stored candidates by their objects
    // (Definition 7: the index knows every referenced id's membership).
    // Expansion is per-candidate independent (the index is read-only
    // here), so candidates are strided over the thread pool.
    const std::vector<BuddyId>& retired = buddies_.retired_ids();
    if (!retired.empty()) {
      ParallelForShards(
          EffectiveShards(params_.cluster.threads, candidates_.size()),
          [&](int shard, int num_shards) {
            for (size_t k = static_cast<size_t>(shard);
                 k < candidates_.size();
                 k += static_cast<size_t>(num_shards)) {
              index_.ExpandRetired(retired, &candidates_[k]);
            }
          });
    }
  }
  maintain_timer.Stop();
  stats_.maintain_seconds += maintain_timer.Seconds();
  RecordStage(Stage::kMaintain, maintain_timer.Seconds());

  // --- C-step: buddy-based clustering (Algorithm 4). ---
  Timer cluster_timer;
  cluster_timer.Start();
  BuddyClusteringStats cstats;
  Clustering clustering =
      BuddyBasedClustering(snapshot, buddies_, params_.cluster, &cstats);
  cluster_timer.Stop();
  stats_.cluster_seconds += cluster_timer.Seconds();
  RecordStage(Stage::kCluster, cluster_timer.Seconds());
  stats_.buddy_pairs_checked += cstats.pairs_checked;
  stats_.buddy_pairs_pruned += cstats.pairs_pruned;
  stats_.distance_ops += cstats.distance_ops;

  // --- I-step: smart-and-closed intersection over atom sets. ---
  Timer intersect_timer;
  intersect_timer.Start();
  const size_t min_size = static_cast<size_t>(params_.size_threshold);

  // Atomize clusters: a buddy wholly inside a cluster becomes one token;
  // straddling buddies contribute loose objects.
  std::vector<AtomSet> cluster_atoms(clustering.clusters.size());
  for (size_t ci = 0; ci < clustering.clusters.size(); ++ci) {
    const ObjectSet& cluster = clustering.clusters[ci];
    AtomSet& atoms = cluster_atoms[ci];
    atoms.size = cluster.size();
    // Group consecutive members by live buddy; a buddy's member list is
    // wholly inside the cluster iff its member count here matches.
    std::unordered_map<BuddyId, uint32_t> counts;
    for (ObjectId o : cluster) {
      BuddyId b = LiveBuddyOf(o);
      TCOMP_DCHECK(b != kNoLiveBuddy);
      ++counts[b];
    }
    for (ObjectId o : cluster) {
      BuddyId b = LiveBuddyOf(o);
      const Buddy* buddy = buddies_.FindBuddyOfObject(o);
      if (buddy != nullptr && counts[b] == buddy->members.size()) {
        atoms.buddy_ids.push_back(b);
      } else {
        atoms.objects.push_back(o);
      }
    }
    SortUnique(&atoms.buddy_ids);
    for (BuddyId b : atoms.buddy_ids) EnsureIndexed(b);
    // `objects` is already sorted (cluster is sorted) and unique.
    // The cluster's expanded set is the raw cluster itself; its signature
    // feeds the O(1) disjointness prefilter in IntersectAtomSets and the
    // closedness prefilter below. Unlike the membership bitsets, Bloom
    // signatures work at any id density, so this is gated only on the
    // kill switch.
    if (BitsetKernelsEnabled()) {
      atoms.signature = SetSignature::Of(cluster);
      atoms.signature_valid = true;
    }
  }

  // Per-cluster membership bitsets over the loose objects: every candidate
  // probes every cluster, so the build cost amortizes into O(1) membership
  // tests inside IntersectAtomSets. Built only for dense id universes and
  // for clusters whose loose-object list is big enough to beat binary
  // search; cluster atoms are read-only during the parallel I-step, so the
  // shards share them safely. Empty-universe bitsets signal "use merges".
  const uint64_t universe =
      snapshot.empty() ? 0 : uint64_t{snapshot.ids().back()} + 1;
  const bool use_bitset =
      BitsetKernelsEnabled() && BitsetProfitable(universe, snapshot.size()) &&
      cluster_atoms.size() * (universe / 8 + 1) <= kMaxClusterBitsetBytes;
  std::vector<DenseBitset> cluster_bits(cluster_atoms.size());
  if (use_bitset) {
    for (size_t ci = 0; ci < cluster_atoms.size(); ++ci) {
      if (cluster_atoms[ci].objects.size() < kMinLooseObjectsForBitset) {
        continue;
      }
      cluster_bits[ci].Resize(universe);
      cluster_bits[ci].SetSparse(cluster_atoms[ci].objects);
    }
  }

  auto buddy_of = [this](ObjectId oid) { return LiveBuddyOf(oid); };

  auto report = [&](const AtomSet& atoms, double duration) {
    ReportCompanion(index_.Expand(atoms), duration, newly_qualified);
  };

  std::vector<AtomSet> next;
  next.reserve(candidates_.size() + cluster_atoms.size());

  // Candidates intersect against the clusters independently of each other
  // (cluster atoms, index, and buddy set are read-only here); only the
  // outputs — companion reports and surviving candidates — are order
  // sensitive. So each candidate is processed by one shard into a private
  // outcome, and the outcomes are replayed serially in candidate order:
  // the report sequence, the `next` sequence, and the intersections total
  // are bit-identical to the serial loop.
  struct CandidateOutcome {
    // (qualified, product) in the order the serial loop would emit them.
    std::vector<std::pair<bool, AtomSet>> events;
    int64_t intersections = 0;
  };
  std::vector<CandidateOutcome> outcomes(candidates_.size());
  auto process_candidate = [&](size_t ci) {
    CandidateOutcome& outcome = outcomes[ci];
    double duration = candidates_[ci].duration + snapshot.duration();
    AtomSet working = std::move(candidates_[ci]);

    auto intersect_with = [&](const AtomSet& c, const DenseBitset& c_bits) {
      ++outcome.intersections;
      AtomIntersection inter = IntersectAtomSets(
          working, c, index_, buddy_of,
          c_bits.universe() > 0 ? &c_bits : nullptr);
      if (!inter.any_overlap) return;  // working set unchanged
      working = std::move(inter.remaining);
      if (inter.result.size < min_size) return;
      inter.result.duration = duration;
      // Qualified companions are output and leave the candidate set
      // (Definition 4: candidate duration < δt).
      outcome.events.emplace_back(duration >= params_.duration_threshold,
                                  std::move(inter.result));
    };

    // Probe the cluster holding the candidate's first object before the
    // rest: an intact candidate is consumed there and the Lemma-1 early
    // stop fires at once. Products don't depend on scan order (hard
    // clustering).
    int32_t first_label = -1;
    {
      ObjectId probe;
      bool has_probe = false;
      if (!working.buddy_ids.empty()) {
        probe = index_.MembersOf(working.buddy_ids.front()).front();
        has_probe = true;
      } else if (!working.objects.empty()) {
        probe = working.objects.front();
        has_probe = true;
      }
      if (has_probe) {
        size_t idx = snapshot.IndexOf(probe);
        if (idx != Snapshot::kNpos) first_label = clustering.labels[idx];
      }
    }
    if (first_label >= 0) {
      const size_t f = static_cast<size_t>(first_label);
      intersect_with(cluster_atoms[f], cluster_bits[f]);
    }
    for (size_t k = 0; k < cluster_atoms.size(); ++k) {
      if (working.size < min_size) break;  // smart early stop (Lemma 1)
      if (static_cast<int32_t>(k) == first_label) continue;
      intersect_with(cluster_atoms[k], cluster_bits[k]);
    }
  };
  ParallelForShards(
      EffectiveShards(params_.cluster.threads, candidates_.size()),
      [&](int shard, int num_shards) {
        for (size_t ci = static_cast<size_t>(shard); ci < candidates_.size();
             ci += static_cast<size_t>(num_shards)) {
          process_candidate(ci);
        }
      });
  for (CandidateOutcome& outcome : outcomes) {
    stats_.intersections += outcome.intersections;
    for (auto& [qualified, product] : outcome.events) {
      if (qualified) {
        report(product, product.duration);
      } else {
        next.push_back(std::move(product));
      }
    }
  }
  outcomes.clear();

  // New clusters enter as candidates only if closed (Definition 5).
  // Closure runs inside the I-step timer (stats_.intersect_seconds keeps
  // covering the whole I-step); the nested timer splits it out for the
  // stage sink.
  Timer closure_timer;
  closure_timer.Start();
  for (AtomSet& c : cluster_atoms) {
    if (c.size < min_size) continue;
    double duration = snapshot.duration();
    bool closed = true;
    for (const AtomSet& r : next) {
      // Signature prefilter: c ⊆ r is impossible unless c's Bloom bits
      // and id range sit inside r's. Skips most of the quadratic scan;
      // never false-rejects, so the exact check still decides.
      if (r.duration >= duration &&
          (!c.signature_valid || !r.signature_valid ||
           c.signature.MaybeSubsetOf(r.signature)) &&
          AtomSetIsSubset(c, r, index_, buddy_of)) {
        closed = false;
        break;
      }
    }
    if (!closed) continue;
    c.duration = duration;
    if (duration >= params_.duration_threshold) {
      report(c, duration);
    } else {
      next.push_back(std::move(c));
    }
  }
  closure_timer.Stop();

  candidates_ = std::move(next);

  // Prune the index down to the ids still referenced by candidates.
  std::vector<BuddyId> referenced;
  for (const AtomSet& r : candidates_) {
    referenced.insert(referenced.end(), r.buddy_ids.begin(),
                      r.buddy_ids.end());
  }
  SortUnique(&referenced);
  index_.PruneExcept(referenced);

  intersect_timer.Stop();
  stats_.intersect_seconds += intersect_timer.Seconds();
  RecordStage(Stage::kIntersect,
              intersect_timer.Seconds() - closure_timer.Seconds());
  RecordStage(Stage::kClosure, closure_timer.Seconds());

  // Space cost: atoms stored in candidates plus the index's single copy of
  // each referenced buddy's member list.
  int64_t space = index_.stored_objects();
  for (const AtomSet& r : candidates_) {
    space += static_cast<int64_t>(r.atom_count());
  }
  stats_.candidate_objects_last = space;
  stats_.candidate_objects_peak =
      std::max(stats_.candidate_objects_peak, space);
  ++stats_.snapshots;
  ++snapshot_index_;
}

void BuddyDiscoverer::Reset() {
  buddies_.Clear();
  index_.Clear();
  candidates_.clear();
  initialized_ = false;
  log_.Clear();
  stats_ = DiscoveryStats{};
  snapshot_index_ = 0;
}


Status BuddyDiscoverer::SaveState(std::ostream& out) const {
  SaveCommon(out);
  out << "initialized " << (initialized_ ? 1 : 0) << '\n';

  BuddySet::SerializedState state = buddies_.ExportState();
  out << "buddyset " << state.next_id << ' ' << state.buddies.size()
      << '\n';
  for (const Buddy& b : state.buddies) {
    out << b.id << ' ' << b.radius << ' ' << b.coord_sum.x << ' '
        << b.coord_sum.y << ' ' << b.members.size();
    for (ObjectId o : b.members) out << ' ' << o;
    out << '\n';
  }
  out << "lastpos " << state.last_positions.size() << '\n';
  for (const auto& [oid, pos] : state.last_positions) {
    out << oid << ' ' << pos.x << ' ' << pos.y << '\n';
  }

  // Index entries, id-sorted for a deterministic file.
  std::vector<BuddyId> ids;
  ids.reserve(index_.entries().size());
  // tcomp-lint: allow(unordered-iter): only collects keys; sorted below
  for (const auto& [id, members] : index_.entries()) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  out << "index " << ids.size() << '\n';
  for (BuddyId id : ids) {
    const ObjectSet& members = index_.entries().at(id);
    out << id << ' ' << members.size();
    for (ObjectId o : members) out << ' ' << o;
    out << '\n';
  }

  out << "candidates " << candidates_.size() << '\n';
  for (const AtomSet& r : candidates_) {
    out << r.duration << ' ' << r.size << ' ' << r.buddy_ids.size();
    for (BuddyId b : r.buddy_ids) out << ' ' << b;
    out << ' ' << r.objects.size();
    for (ObjectId o : r.objects) out << ' ' << o;
    out << '\n';
  }
  return Status::OK();
}

Status BuddyDiscoverer::LoadState(std::istream& in) {
  TCOMP_RETURN_IF_ERROR(LoadCommon(in));
  std::string tag;
  int initialized = 0;
  if (!(in >> tag >> initialized) || tag != "initialized") {
    return Status::Corruption("expected 'initialized' section");
  }
  initialized_ = initialized != 0;

  BuddySet::SerializedState state;
  size_t nbuddies = 0;
  if (!(in >> tag >> state.next_id >> nbuddies) || tag != "buddyset") {
    return Status::Corruption("expected 'buddyset' section");
  }
  // Every count below is bounded before the resize it sizes, so a corrupt
  // checkpoint fails with Corruption instead of a huge allocation.
  if (nbuddies > kMaxCheckpointCount) {
    return Status::Corruption("implausible buddy count");
  }
  state.buddies.resize(nbuddies);
  for (Buddy& b : state.buddies) {
    size_t n = 0;
    if (!(in >> b.id >> b.radius >> b.coord_sum.x >> b.coord_sum.y >> n)) {
      return Status::Corruption("bad buddy record");
    }
    if (n > kMaxCheckpointCount) {
      return Status::Corruption("implausible buddy member count");
    }
    b.members.resize(n);
    for (size_t k = 0; k < n; ++k) {
      if (!(in >> b.members[k])) {
        return Status::Corruption("bad buddy member");
      }
    }
  }
  size_t npos = 0;
  if (!(in >> tag >> npos) || tag != "lastpos") {
    return Status::Corruption("expected 'lastpos' section");
  }
  if (npos > kMaxCheckpointCount) {
    return Status::Corruption("implausible lastpos count");
  }
  state.last_positions.resize(npos);
  for (auto& [oid, pos] : state.last_positions) {
    if (!(in >> oid >> pos.x >> pos.y)) {
      return Status::Corruption("bad lastpos record");
    }
  }
  buddies_.ImportState(state);

  size_t nindex = 0;
  if (!(in >> tag >> nindex) || tag != "index") {
    return Status::Corruption("expected 'index' section");
  }
  index_.Clear();
  for (size_t i = 0; i < nindex; ++i) {
    BuddyId id = 0;
    size_t n = 0;
    if (!(in >> id >> n)) return Status::Corruption("bad index record");
    if (n > kMaxCheckpointCount) {
      return Status::Corruption("implausible index member count");
    }
    ObjectSet members(n);
    for (size_t k = 0; k < n; ++k) {
      if (!(in >> members[k])) {
        return Status::Corruption("bad index member");
      }
    }
    index_.Register(id, members);
  }

  size_t ncand = 0;
  if (!(in >> tag >> ncand) || tag != "candidates") {
    return Status::Corruption("expected 'candidates' section");
  }
  if (ncand > kMaxCheckpointCount) {
    return Status::Corruption("implausible candidate count");
  }
  candidates_.clear();
  candidates_.reserve(ncand);
  for (size_t i = 0; i < ncand; ++i) {
    AtomSet r;
    size_t nb = 0;
    if (!(in >> r.duration >> r.size >> nb)) {
      return Status::Corruption("bad atom candidate record");
    }
    if (nb > kMaxCheckpointCount) {
      return Status::Corruption("implausible candidate token count");
    }
    r.buddy_ids.resize(nb);
    for (size_t k = 0; k < nb; ++k) {
      if (!(in >> r.buddy_ids[k])) {
        return Status::Corruption("bad candidate buddy token");
      }
      if (!index_.Contains(r.buddy_ids[k])) {
        return Status::Corruption("candidate references unindexed buddy");
      }
    }
    size_t no = 0;
    if (!(in >> no)) return Status::Corruption("bad candidate record");
    if (no > kMaxCheckpointCount) {
      return Status::Corruption("implausible candidate object count");
    }
    r.objects.resize(no);
    for (size_t k = 0; k < no; ++k) {
      if (!(in >> r.objects[k])) {
        return Status::Corruption("bad candidate object");
      }
    }
    // Signatures are derived state, not persisted; rebuild from the index
    // (loaded above) so the prefilters resume immediately — but only in
    // the mode the process is running in *now*, not the mode at save
    // time. An uninterrupted kernels-off run never composes signatures
    // (ProcessSnapshot gates on BitsetKernelsEnabled()), so a resumed
    // kernels-off run must not either: a candidate resurrected with
    // signature_valid=true would diverge from it the moment the switch
    // is toggled back on mid-stream.
    if (BitsetKernelsEnabled()) {
      r.signature = index_.ComposeSignature(r);
      r.signature_valid = true;
    }
    candidates_.push_back(std::move(r));
  }
  return Status::OK();
}

}  // namespace tcomp
