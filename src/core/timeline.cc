#include "core/timeline.h"

#include <algorithm>
#include <cmath>

namespace tcomp {

void CompanionTimeline::Track(CompanionDiscoverer* discoverer) {
  discoverer->set_report_sink(
      [this](const ObjectSet& objects, double duration,
             int64_t snapshot_index) {
        Observe(objects, duration, snapshot_index);
      });
}

void CompanionTimeline::Observe(const ObjectSet& objects, double duration,
                                int64_t snapshot_index) {
  // The event certifies co-travel over the closed snapshot interval
  // [s - ceil(d) + 1, s] (durations are in snapshot-duration units; with
  // unit snapshots d is the snapshot count).
  int64_t span = std::max<int64_t>(1, static_cast<int64_t>(
                                          std::llround(duration)));
  int64_t begin = snapshot_index - span + 1;
  std::vector<CompanionEpisode>& list = episodes_[objects];
  if (!list.empty() && begin <= list.back().end + 1) {
    // Touches or overlaps the open episode: extend it.
    list.back().end = std::max(list.back().end, snapshot_index);
    list.back().begin = std::min(list.back().begin, begin);
  } else {
    list.push_back(CompanionEpisode{objects, begin, snapshot_index});
  }
}

std::vector<CompanionEpisode> CompanionTimeline::Episodes() const {
  std::vector<CompanionEpisode> out;
  for (const auto& [set, list] : episodes_) {
    out.insert(out.end(), list.begin(), list.end());
  }
  return out;
}

std::vector<CompanionEpisode> CompanionTimeline::ActiveAt(
    int64_t snapshot_index) const {
  std::vector<CompanionEpisode> out;
  for (const auto& [set, list] : episodes_) {
    for (const CompanionEpisode& e : list) {
      if (e.begin <= snapshot_index && snapshot_index <= e.end) {
        out.push_back(e);
      }
    }
  }
  return out;
}

CompanionEpisode CompanionTimeline::Longest() const {
  CompanionEpisode best;
  best.begin = 1;
  best.end = 0;  // length 0 marker
  for (const auto& [set, list] : episodes_) {
    for (const CompanionEpisode& e : list) {
      if (e.length() > best.length()) best = e;
    }
  }
  return best;
}

void CompanionTimeline::Clear() { episodes_.clear(); }

}  // namespace tcomp
