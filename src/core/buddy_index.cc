#include "core/buddy_index.h"

#include <algorithm>

#include "util/dense_bitset.h"
#include "util/logging.h"
#include "util/sorted_ops.h"

namespace tcomp {

void BuddyIndex::Register(BuddyId id, const ObjectSet& members) {
  auto it = members_.find(id);
  if (it != members_.end()) {
    stored_objects_ -= static_cast<int64_t>(it->second.size());
    it->second = members;
  } else {
    members_.emplace(id, members);
  }
  signatures_[id] = SetSignature::Of(members);
  stored_objects_ += static_cast<int64_t>(members.size());
}

const ObjectSet& BuddyIndex::MembersOf(BuddyId id) const {
  auto it = members_.find(id);
  TCOMP_CHECK(it != members_.end()) << "buddy " << id << " not indexed";
  return it->second;
}

const SetSignature& BuddyIndex::SignatureOf(BuddyId id) const {
  auto it = signatures_.find(id);
  TCOMP_CHECK(it != signatures_.end()) << "buddy " << id << " not indexed";
  return it->second;
}

SetSignature BuddyIndex::ComposeSignature(const AtomSet& set) const {
  SetSignature s;
  for (BuddyId b : set.buddy_ids) s.MergeUnion(SignatureOf(b));
  for (ObjectId o : set.objects) s.AddId(o);
  return s;
}

ObjectSet BuddyIndex::Expand(const AtomSet& set) const {
  ObjectSet out = set.objects;
  for (BuddyId b : set.buddy_ids) {
    const ObjectSet& members = MembersOf(b);
    out.insert(out.end(), members.begin(), members.end());
  }
  SortUnique(&out);
  return out;
}

void BuddyIndex::ExpandRetired(const std::vector<BuddyId>& retired,
                               AtomSet* set) const {
  TCOMP_DCHECK(IsSortedUnique(retired));
  std::vector<BuddyId> kept;
  kept.reserve(set->buddy_ids.size());
  bool any = false;
  for (BuddyId b : set->buddy_ids) {
    if (std::binary_search(retired.begin(), retired.end(), b)) {
      const ObjectSet& members = MembersOf(b);
      set->objects.insert(set->objects.end(), members.begin(),
                          members.end());
      any = true;
    } else {
      kept.push_back(b);
    }
  }
  if (!any) return;
  set->buddy_ids = std::move(kept);
  SortUnique(&set->objects);
  // Object count is unchanged by expansion; `size` stays valid.
}

void BuddyIndex::PruneExcept(const std::vector<BuddyId>& referenced) {
  TCOMP_DCHECK(IsSortedUnique(referenced));
  for (auto it = members_.begin(); it != members_.end();) {
    if (!std::binary_search(referenced.begin(), referenced.end(),
                            it->first)) {
      stored_objects_ -= static_cast<int64_t>(it->second.size());
      signatures_.erase(it->first);
      it = members_.erase(it);
    } else {
      ++it;
    }
  }
}

void BuddyIndex::Clear() {
  members_.clear();
  signatures_.clear();
  stored_objects_ = 0;
}

AtomIntersection IntersectAtomSets(const AtomSet& r, const AtomSet& c,
                                   const BuddyIndex& index,
                                   const BuddyOfFn& buddy_of,
                                   const DenseBitset* c_object_bits) {
  AtomIntersection out;
  TCOMP_DCHECK(c_object_bits == nullptr ||
               c_object_bits->Count() == c.objects.size());

  const bool kernels = BitsetKernelsEnabled();
  // O(1) disjointness prefilter: a zero Bloom-AND or non-overlapping id
  // ranges proves the expanded sets share nothing, which is exactly the
  // any_overlap=false answer the merge probes below would reach.
  if (kernels && r.signature_valid && c.signature_valid &&
      !r.signature.MaybeIntersects(c.signature)) {
    return out;
  }

  // Membership of an object in the cluster's loose-object list: one bit
  // probe when the caller supplied the cluster's bitset, else a binary
  // search. Both answer the same question; only the cost differs.
  auto in_c_objects = [&](ObjectId o) {
    return c_object_bits != nullptr ? c_object_bits->Test(o)
                                    : SortedContains(c.objects, o);
  };

  // Allocation-free disjointness probe first: most candidate×cluster
  // pairs share nothing, and the full path below allocates several
  // vectors.
  bool overlap = SortedIntersects(r.buddy_ids, c.buddy_ids);
  if (!overlap && !c.objects.empty()) {
    for (BuddyId b : r.buddy_ids) {
      const ObjectSet& members = index.MembersOf(b);
      if (c_object_bits != nullptr ? IntersectsWith(members, *c_object_bits)
                                   : SortedIntersects(members, c.objects)) {
        overlap = true;
        break;
      }
    }
  }
  if (!overlap) {
    for (ObjectId o : r.objects) {
      BuddyId bo = buddy_of(o);
      if ((bo != kNoLiveBuddy && SortedContains(c.buddy_ids, bo)) ||
          in_c_objects(o)) {
        overlap = true;
        break;
      }
    }
  }
  if (!overlap) return out;  // any_overlap stays false
  out.any_overlap = true;

  // Whole-buddy token matches: O(1) per token, members never touched.
  std::vector<BuddyId> shared = SortedIntersect(r.buddy_ids, c.buddy_ids);
  out.result.buddy_ids = shared;
  size_t result_size = 0;
  for (BuddyId b : shared) result_size += index.MembersOf(b).size();

  // Unmatched candidate buddies may straddle the cluster boundary: the
  // cluster then lists the inside members as loose objects.
  ObjectSet matched;  // reused across tokens
  for (BuddyId b : r.buddy_ids) {
    if (std::binary_search(shared.begin(), shared.end(), b)) continue;
    const ObjectSet& members = index.MembersOf(b);
    if (c_object_bits != nullptr) {
      IntersectInto(members, *c_object_bits, &matched);
    } else {
      SortedIntersect(members, c.objects, &matched);
    }
    if (matched.empty()) {
      out.remaining.buddy_ids.push_back(b);
      out.remaining.size += members.size();
      continue;
    }
    // Partially matched: the token dissolves — matched members join the
    // result, the rest stay in the candidate as loose objects. Given
    // o ∈ members, o ∈ matched ⟺ o ∈ c.objects, so the bitset answers
    // this split too.
    for (ObjectId o : members) {
      bool hit = c_object_bits != nullptr
                     ? c_object_bits->Test(o)
                     : std::binary_search(matched.begin(), matched.end(), o);
      if (hit) {
        out.result.objects.push_back(o);
      } else {
        out.remaining.objects.push_back(o);
      }
    }
  }

  // Loose candidate objects: inside one of the cluster's buddy tokens, or
  // among the cluster's loose objects, or unmatched.
  for (ObjectId o : r.objects) {
    BuddyId bo = buddy_of(o);
    bool is_matched =
        (bo != kNoLiveBuddy && SortedContains(c.buddy_ids, bo)) ||
        in_c_objects(o);
    if (is_matched) {
      out.result.objects.push_back(o);
    } else {
      out.remaining.objects.push_back(o);
    }
  }

  SortUnique(&out.result.objects);
  SortUnique(&out.remaining.objects);
  out.result.size = result_size + out.result.objects.size();
  out.remaining.size += out.remaining.objects.size();
  // Fresh atom sets get fresh signatures so the prefilter keeps working
  // down the candidate's lifetime; O(atom_count), no expansion.
  if (kernels) {
    out.result.signature = index.ComposeSignature(out.result);
    out.result.signature_valid = true;
    out.remaining.signature = index.ComposeSignature(out.remaining);
    out.remaining.signature_valid = true;
  }
  return out;
}

bool AtomSetIsSubset(const AtomSet& inner, const AtomSet& outer,
                     const BuddyIndex& index, const BuddyOfFn& buddy_of) {
  if (inner.size > outer.size) return false;
  for (BuddyId b : inner.buddy_ids) {
    if (SortedContains(outer.buddy_ids, b)) continue;
    for (ObjectId o : index.MembersOf(b)) {
      if (!SortedContains(outer.objects, o)) return false;
    }
  }
  for (ObjectId o : inner.objects) {
    BuddyId bo = buddy_of(o);
    if (bo != kNoLiveBuddy && SortedContains(outer.buddy_ids, bo)) continue;
    if (!SortedContains(outer.objects, o)) return false;
  }
  return true;
}

}  // namespace tcomp
