#include "core/buddy_index.h"

#include <algorithm>

#include "util/logging.h"
#include "util/sorted_ops.h"

namespace tcomp {

void BuddyIndex::Register(BuddyId id, const ObjectSet& members) {
  auto it = members_.find(id);
  if (it != members_.end()) {
    stored_objects_ -= static_cast<int64_t>(it->second.size());
    it->second = members;
  } else {
    members_.emplace(id, members);
  }
  stored_objects_ += static_cast<int64_t>(members.size());
}

const ObjectSet& BuddyIndex::MembersOf(BuddyId id) const {
  auto it = members_.find(id);
  TCOMP_CHECK(it != members_.end()) << "buddy " << id << " not indexed";
  return it->second;
}

ObjectSet BuddyIndex::Expand(const AtomSet& set) const {
  ObjectSet out = set.objects;
  for (BuddyId b : set.buddy_ids) {
    const ObjectSet& members = MembersOf(b);
    out.insert(out.end(), members.begin(), members.end());
  }
  SortUnique(&out);
  return out;
}

void BuddyIndex::ExpandRetired(const std::vector<BuddyId>& retired,
                               AtomSet* set) const {
  TCOMP_DCHECK(IsSortedUnique(retired));
  std::vector<BuddyId> kept;
  kept.reserve(set->buddy_ids.size());
  bool any = false;
  for (BuddyId b : set->buddy_ids) {
    if (std::binary_search(retired.begin(), retired.end(), b)) {
      const ObjectSet& members = MembersOf(b);
      set->objects.insert(set->objects.end(), members.begin(),
                          members.end());
      any = true;
    } else {
      kept.push_back(b);
    }
  }
  if (!any) return;
  set->buddy_ids = std::move(kept);
  SortUnique(&set->objects);
  // Object count is unchanged by expansion; `size` stays valid.
}

void BuddyIndex::PruneExcept(const std::vector<BuddyId>& referenced) {
  TCOMP_DCHECK(IsSortedUnique(referenced));
  for (auto it = members_.begin(); it != members_.end();) {
    if (!std::binary_search(referenced.begin(), referenced.end(),
                            it->first)) {
      stored_objects_ -= static_cast<int64_t>(it->second.size());
      it = members_.erase(it);
    } else {
      ++it;
    }
  }
}

void BuddyIndex::Clear() {
  members_.clear();
  stored_objects_ = 0;
}

AtomIntersection IntersectAtomSets(const AtomSet& r, const AtomSet& c,
                                   const BuddyIndex& index,
                                   const BuddyOfFn& buddy_of) {
  AtomIntersection out;

  // Allocation-free disjointness probe first: most candidate×cluster
  // pairs share nothing, and the full path below allocates several
  // vectors.
  bool overlap = SortedIntersects(r.buddy_ids, c.buddy_ids);
  if (!overlap && !c.objects.empty()) {
    for (BuddyId b : r.buddy_ids) {
      if (SortedIntersects(index.MembersOf(b), c.objects)) {
        overlap = true;
        break;
      }
    }
  }
  if (!overlap) {
    for (ObjectId o : r.objects) {
      BuddyId bo = buddy_of(o);
      if ((bo != kNoLiveBuddy && SortedContains(c.buddy_ids, bo)) ||
          SortedContains(c.objects, o)) {
        overlap = true;
        break;
      }
    }
  }
  if (!overlap) return out;  // any_overlap stays false
  out.any_overlap = true;

  // Whole-buddy token matches: O(1) per token, members never touched.
  std::vector<BuddyId> shared = SortedIntersect(r.buddy_ids, c.buddy_ids);
  out.result.buddy_ids = shared;
  size_t result_size = 0;
  for (BuddyId b : shared) result_size += index.MembersOf(b).size();

  // Unmatched candidate buddies may straddle the cluster boundary: the
  // cluster then lists the inside members as loose objects.
  for (BuddyId b : r.buddy_ids) {
    if (std::binary_search(shared.begin(), shared.end(), b)) continue;
    const ObjectSet& members = index.MembersOf(b);
    ObjectSet matched = SortedIntersect(members, c.objects);
    if (matched.empty()) {
      out.remaining.buddy_ids.push_back(b);
      out.remaining.size += members.size();
      continue;
    }
    // Partially matched: the token dissolves — matched members join the
    // result, the rest stay in the candidate as loose objects.
    for (ObjectId o : members) {
      if (std::binary_search(matched.begin(), matched.end(), o)) {
        out.result.objects.push_back(o);
      } else {
        out.remaining.objects.push_back(o);
      }
    }
  }

  // Loose candidate objects: inside one of the cluster's buddy tokens, or
  // among the cluster's loose objects, or unmatched.
  for (ObjectId o : r.objects) {
    BuddyId bo = buddy_of(o);
    bool matched =
        (bo != kNoLiveBuddy && SortedContains(c.buddy_ids, bo)) ||
        SortedContains(c.objects, o);
    if (matched) {
      out.result.objects.push_back(o);
    } else {
      out.remaining.objects.push_back(o);
    }
  }

  SortUnique(&out.result.objects);
  SortUnique(&out.remaining.objects);
  out.result.size = result_size + out.result.objects.size();
  out.remaining.size += out.remaining.objects.size();
  return out;
}

bool AtomSetIsSubset(const AtomSet& inner, const AtomSet& outer,
                     const BuddyIndex& index, const BuddyOfFn& buddy_of) {
  if (inner.size > outer.size) return false;
  for (BuddyId b : inner.buddy_ids) {
    if (SortedContains(outer.buddy_ids, b)) continue;
    for (ObjectId o : index.MembersOf(b)) {
      if (!SortedContains(outer.objects, o)) return false;
    }
  }
  for (ObjectId o : inner.objects) {
    BuddyId bo = buddy_of(o);
    if (bo != kNoLiveBuddy && SortedContains(outer.buddy_ids, bo)) continue;
    if (!SortedContains(outer.objects, o)) return false;
  }
  return true;
}

}  // namespace tcomp
