#include "core/candidate.h"

#include <algorithm>

#include "util/dense_bitset.h"
#include "util/sorted_ops.h"

namespace tcomp {

bool CompanionLog::Report(const ObjectSet& objects, double duration,
                          int64_t snapshot_index) {
  auto it = index_.find(objects);
  if (it != index_.end()) {
    Companion& existing = companions_[it->second];
    if (duration > existing.duration) {
      existing.duration = duration;
      dirty_ = true;
    }
    return false;
  }
  const SetSignature signature = SetSignature::Of(objects);
  // The O(1) signature prefilter rejects most pairs before the element
  // merge. It can only skip work, never change an answer
  // (differential-tested), but it honors the kernel kill switch so that
  // "kernels off" is the pure baseline for perf attribution.
  const bool prefilter = BitsetKernelsEnabled();
  if (closed_mode_) {
    // Drop if dominated by a logged superset (Definition 5 on outputs).
    for (const auto& [set, pos] : index_) {
      if (set.size() >= objects.size() &&
          companions_[pos].duration >= duration &&
          (!prefilter || signature.MaybeSubsetOf(signatures_[pos])) &&
          SortedIsSubset(objects, set)) {
        return false;
      }
    }
    // Evict logged subsets this companion dominates.
    for (auto eit = index_.begin(); eit != index_.end();) {
      if (eit->first.size() <= objects.size() &&
          companions_[eit->second].duration <= duration &&
          (!prefilter || signatures_[eit->second].MaybeSubsetOf(signature)) &&
          SortedIsSubset(eit->first, objects)) {
        companions_[eit->second].objects.clear();  // tombstone
        eit = index_.erase(eit);
        dirty_ = true;
      } else {
        ++eit;
      }
    }
  }
  index_.emplace(objects, companions_.size());
  companions_.push_back(Companion{objects, duration, snapshot_index});
  signatures_.push_back(signature);
  dirty_ = true;
  return true;
}

void CompanionLog::RestoreEntry(Companion companion) {
  TCOMP_DCHECK(index_.find(companion.objects) == index_.end());
  index_.emplace(companion.objects, companions_.size());
  signatures_.push_back(SetSignature::Of(companion.objects));
  companions_.push_back(std::move(companion));
  dirty_ = true;
}

const std::vector<Companion>& CompanionLog::companions() const {
  if (dirty_) {
    materialized_.clear();
    materialized_.reserve(index_.size());
    for (const Companion& c : companions_) {
      if (!c.objects.empty()) materialized_.push_back(c);
    }
    dirty_ = false;
  }
  return materialized_;
}

void CompanionLog::Clear() {
  companions_.clear();
  materialized_.clear();
  signatures_.clear();
  index_.clear();
  dirty_ = false;
}

bool IsClosedAgainst(const ObjectSet& objects, double duration,
                     const std::vector<Candidate>& against) {
  const SetSignature signature = SetSignature::Of(objects);
  const bool prefilter = BitsetKernelsEnabled();
  for (const Candidate& r : against) {
    TCOMP_DCHECK(r.signature == SetSignature::Of(r.objects));
    if (r.duration >= duration && r.objects.size() >= objects.size() &&
        (!prefilter || signature.MaybeSubsetOf(r.signature)) &&
        SortedIsSubset(objects, r.objects)) {
      return false;
    }
  }
  return true;
}

int64_t TotalCandidateObjects(const std::vector<Candidate>& candidates) {
  int64_t total = 0;
  for (const Candidate& r : candidates) {
    total += static_cast<int64_t>(r.objects.size());
  }
  return total;
}

}  // namespace tcomp
