#ifndef TCOMP_CORE_SMART_CLOSED_H_
#define TCOMP_CORE_SMART_CLOSED_H_

#include <functional>
#include <utility>
#include <vector>

#include "core/discoverer.h"
#include "core/incremental_cluster.h"

namespace tcomp {

/// Pluggable per-snapshot clustering for SmartClosedDiscoverer. Must obey
/// the Clustering spec of core/dbscan.h (deterministic labels, hard
/// clustering). Lets the smart-and-closed machinery run over any notion
/// of "density connected" — e.g. road-network distance (src/network/).
using ClusteringFn = std::function<Clustering(const Snapshot&)>;

/// Algorithm 2: the smart-and-closed discoverer (SC). Improves CI with:
///  * smart intersection (Lemma 1) — objects already matched by earlier
///    clusters are removed from the candidate's working set, and the scan
///    over clusters stops as soon as fewer than δs objects remain;
///  * closed candidates (Definition 5) — a new cluster is only stored if
///    no existing candidate with the same-or-superset objects and an equal
///    or longer duration already exists.
/// SC's output is the *closed* subset of CI's output: every companion SC
/// reports is also reported by CI, and every companion CI reports is a
/// subset of some SC companion with equal or longer duration (dropping a
/// non-closed cluster only drops dominated chains). This is why the paper
/// measures CI's precision below SC's — CI emits the redundant non-closed
/// companions too. Costs are roughly halved relative to CI.
class SmartClosedDiscoverer : public CompanionDiscoverer {
 public:
  explicit SmartClosedDiscoverer(const DiscoveryParams& params);

  /// Variant with a custom clustering (e.g. network-constrained DBSCAN).
  /// `params.cluster` is ignored in favor of whatever `clustering`
  /// implements; δs/δt apply unchanged.
  SmartClosedDiscoverer(const DiscoveryParams& params,
                        ClusteringFn clustering);

  void ProcessSnapshot(const Snapshot& snapshot,
                       std::vector<Companion>* newly_qualified) override;
  Algorithm algorithm() const override { return Algorithm::kSmartClosed; }
  void Reset() override;

  Status SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;

  /// SC's C-step clusters raw objects, so an external backend slots in
  /// directly. Takes precedence over a ClusteringFn passed at
  /// construction (in practice the two are never combined: ClusteringFn
  /// carries a different *metric*, the provider a different *execution*).
  bool SetClusterProvider(ClusterProvider provider) override {
    cluster_provider_ = std::move(provider);
    return true;
  }

  const std::vector<Candidate>& candidates() const { return candidates_; }

 private:
  DiscoveryParams params_;
  /// External clustering backend; empty = clustering_fn_, then the
  /// built-in incremental clusterer.
  ClusterProvider cluster_provider_;
  ClusteringFn clustering_fn_;  // empty = built-in DBSCAN
  std::vector<Candidate> candidates_;
  /// Built-in clustering path only (unused when clustering_fn_ is set —
  /// a custom metric has no anchor/triangle-inequality structure to
  /// exploit). Exact and gated by SetIncrementalClusteringEnabled().
  IncrementalClusterer clusterer_;
};

}  // namespace tcomp

#endif  // TCOMP_CORE_SMART_CLOSED_H_
