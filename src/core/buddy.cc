#include "core/buddy.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/logging.h"
#include "util/sorted_ops.h"
#include "util/thread_pool.h"

namespace tcomp {
namespace {

constexpr uint32_t kNoBuddy = static_cast<uint32_t>(-1);

struct CellKey {
  int64_t cx;
  int64_t cy;
  bool operator==(const CellKey& o) const { return cx == o.cx && cy == o.cy; }
};

struct CellKeyHash {
  size_t operator()(const CellKey& k) const {
    uint64_t h = static_cast<uint64_t>(k.cx) * 0x9e3779b97f4a7c15ULL;
    h ^= static_cast<uint64_t>(k.cy) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
    return static_cast<size_t>(h);
  }
};

}  // namespace

BuddySet::BuddySet(double radius_threshold)
    : radius_threshold_(radius_threshold) {
  TCOMP_CHECK_GT(radius_threshold, 0.0);
}

BuddySet::SerializedState BuddySet::ExportState() const {
  SerializedState state;
  state.next_id = next_id_;
  state.buddies = buddies_;
  for (ObjectId oid = 0; oid < has_pos_.size(); ++oid) {
    if (has_pos_[oid]) state.last_positions.push_back({oid, last_pos_[oid]});
  }
  return state;
}

void BuddySet::ImportState(const SerializedState& state) {
  Clear();
  next_id_ = state.next_id;
  buddies_ = state.buddies;
  for (const auto& [oid, pos] : state.last_positions) {
    if (oid >= last_pos_.size()) {
      last_pos_.resize(oid + 1, Point{});
      has_pos_.resize(oid + 1, false);
    }
    last_pos_[oid] = pos;
    has_pos_[oid] = true;
  }
  RebuildObjectMap();
}

void BuddySet::Clear() {
  buddies_.clear();
  retired_ids_.clear();
  object_to_buddy_.clear();
  last_pos_.clear();
  has_pos_.clear();
  next_id_ = 0;
}

void BuddySet::RebuildObjectMap() {
  std::fill(object_to_buddy_.begin(), object_to_buddy_.end(), kNoBuddy);
  for (uint32_t bi = 0; bi < buddies_.size(); ++bi) {
    for (ObjectId oid : buddies_[bi].members) {
      if (oid >= object_to_buddy_.size()) {
        object_to_buddy_.resize(oid + 1, kNoBuddy);
      }
      object_to_buddy_[oid] = bi;
    }
  }
}

const Buddy* BuddySet::FindBuddyById(BuddyId id) const {
  auto it = std::lower_bound(
      buddies_.begin(), buddies_.end(), id,
      [](const Buddy& b, BuddyId target) { return b.id < target; });
  if (it == buddies_.end() || it->id != id) return nullptr;
  return &*it;
}

const Buddy* BuddySet::FindBuddyOfObject(ObjectId id) const {
  if (id >= object_to_buddy_.size()) return nullptr;
  uint32_t bi = object_to_buddy_[id];
  if (bi == kNoBuddy) return nullptr;
  return &buddies_[bi];
}

void BuddySet::Initialize(const Snapshot& snapshot) {
  Clear();
  const size_t n = snapshot.size();
  if (n == 0) return;

  // Record positions.
  ObjectId max_id = snapshot.id(n - 1);
  last_pos_.assign(max_id + 1, Point{});
  has_pos_.assign(max_id + 1, false);
  for (size_t i = 0; i < n; ++i) {
    last_pos_[snapshot.id(i)] = snapshot.pos(i);
    has_pos_[snapshot.id(i)] = true;
  }

  // Grid over 2·δγ cells: any two members of one buddy are within 2·δγ of
  // each other, so a seed's potential members all live in the 3×3 block.
  const double cell = 2.0 * radius_threshold_;
  std::unordered_map<CellKey, std::vector<uint32_t>, CellKeyHash> grid;
  auto cell_of = [cell](Point p) {
    return CellKey{static_cast<int64_t>(std::floor(p.x / cell)),
                   static_cast<int64_t>(std::floor(p.y / cell))};
  };
  for (uint32_t i = 0; i < n; ++i) {
    grid[cell_of(snapshot.pos(i))].push_back(i);
  }

  std::vector<bool> assigned(n, false);
  for (uint32_t i = 0; i < n; ++i) {
    if (assigned[i]) continue;
    assigned[i] = true;
    Buddy b;
    b.id = NextId();
    b.members = {snapshot.id(i)};
    b.coord_sum = snapshot.pos(i);
    b.radius = 0.0;

    // Nearest-first greedy growth (paper: "merge with nearest neighbors,
    // stop when the radius exceeds the threshold").
    std::vector<uint32_t> candidates;
    CellKey c = cell_of(snapshot.pos(i));
    for (int64_t dx = -1; dx <= 1; ++dx) {
      for (int64_t dy = -1; dy <= 1; ++dy) {
        auto it = grid.find(CellKey{c.cx + dx, c.cy + dy});
        if (it == grid.end()) continue;
        for (uint32_t j : it->second) {
          if (!assigned[j]) candidates.push_back(j);
        }
      }
    }
    std::sort(candidates.begin(), candidates.end(),
              [&](uint32_t a, uint32_t bidx) {
                // tcomp-lint: allow(soa-raw-loop): sort-comparator keys,
                // not an ε-filter — survivor sets are not computed here,
                // so there is no batch to stream.
                double da = SquaredDistance(snapshot.pos(a), snapshot.pos(i));
                double db =
                    // tcomp-lint: allow(soa-raw-loop): same comparator
                    // key as the line above.
                    SquaredDistance(snapshot.pos(bidx), snapshot.pos(i));
                if (da != db) return da < db;
                return a < bidx;
              });

    std::vector<uint32_t> member_indices = {i};
    for (uint32_t j : candidates) {
      // Tentatively add j and verify every member stays within δγ of the
      // shifted center.
      Point new_sum = b.coord_sum + snapshot.pos(j);
      double new_count = static_cast<double>(member_indices.size() + 1);
      Point new_center = new_sum / new_count;
      double max_dist = Distance(snapshot.pos(j), new_center);
      for (uint32_t m : member_indices) {
        max_dist = std::max(max_dist, Distance(snapshot.pos(m), new_center));
      }
      if (max_dist > radius_threshold_) break;  // nearest-first: stop here
      assigned[j] = true;
      member_indices.push_back(j);
      b.coord_sum = new_sum;
      b.members.push_back(snapshot.id(j));
      b.radius = max_dist;
    }
    SortUnique(&b.members);
    buddies_.push_back(std::move(b));
  }
  RebuildObjectMap();
}

void BuddySet::Update(const Snapshot& snapshot,
                      BuddyMaintenanceStats* stats) {
  retired_ids_.clear();
  BuddyMaintenanceStats local;
  const BuddyId first_new_id = next_id_;

  // Refresh last known positions; carry forward absent objects.
  for (size_t i = 0; i < snapshot.size(); ++i) {
    ObjectId oid = snapshot.id(i);
    if (oid >= last_pos_.size()) {
      last_pos_.resize(oid + 1, Point{});
      has_pos_.resize(oid + 1, false);
      object_to_buddy_.resize(oid + 1, kNoBuddy);
    }
    last_pos_[oid] = snapshot.pos(i);
    has_pos_[oid] = true;
  }

  std::vector<Buddy> next;
  next.reserve(buddies_.size());
  std::vector<Buddy> born;  // changed buddies, ids assigned at the end

  // --- Split phase (Algorithm 3, lines 1–8). ---
  // Buddies split independently of each other: each reads the shared
  // last-position table and produces only its own outcome, so the sweep
  // runs on the thread pool (buddy bi owned by shard bi % num_shards) and
  // a serial stitch below replays the outcomes in buddy order —
  // reproducing the exact `born`/`next`/`retired_ids_` sequences and
  // counter totals of the serial sweep.
  struct SplitOutcome {
    std::vector<Buddy> singles;  // split-out singletons, in member order
    Buddy remainder;
    bool split_any = false;
    int64_t distance_ops = 0;
  };
  std::vector<SplitOutcome> outcomes(buddies_.size());
  auto split_one = [&](size_t bi) {
    const Buddy& b = buddies_[bi];
    SplitOutcome& out = outcomes[bi];
    // Exact center from current member positions (equivalent to the
    // paper's incremental "add the member shifts to the stored sum").
    Point sum{};
    for (ObjectId oid : b.members) sum = sum + last_pos_[oid];
    double count = static_cast<double>(b.members.size());

    ObjectSet survivors;
    survivors.reserve(b.members.size());
    for (ObjectId oid : b.members) {
      ++out.distance_ops;
      Point center = sum / count;
      if (count > 1.0 &&
          Distance(last_pos_[oid], center) > radius_threshold_) {
        // Split out as a singleton buddy; remove its contribution.
        Buddy single;
        single.members = {oid};
        single.coord_sum = last_pos_[oid];
        single.radius = 0.0;
        out.singles.push_back(std::move(single));
        sum = sum - last_pos_[oid];
        count -= 1.0;
        out.split_any = true;
      } else {
        survivors.push_back(oid);
      }
    }

    out.remainder.members = std::move(survivors);
    out.remainder.coord_sum = sum;
    Point center = sum / count;
    double radius = 0.0;
    for (ObjectId oid : out.remainder.members) {
      ++out.distance_ops;
      radius = std::max(radius, Distance(last_pos_[oid], center));
    }
    out.remainder.radius = radius;
  };
  const int shards = EffectiveShards(threads_, buddies_.size());
  ParallelForShards(shards, [&](int shard, int num_shards) {
    for (size_t bi = static_cast<size_t>(shard); bi < buddies_.size();
         bi += static_cast<size_t>(num_shards)) {
      split_one(bi);
    }
  });
  for (size_t bi = 0; bi < buddies_.size(); ++bi) {
    SplitOutcome& out = outcomes[bi];
    local.distance_ops += out.distance_ops;
    local.splits += static_cast<int64_t>(out.singles.size());
    for (Buddy& single : out.singles) born.push_back(std::move(single));
    if (out.split_any) {
      retired_ids_.push_back(buddies_[bi].id);
      born.push_back(std::move(out.remainder));
    } else {
      // membership unchanged: id survives (so far)
      out.remainder.id = buddies_[bi].id;
      next.push_back(std::move(out.remainder));
    }
  }
  outcomes.clear();

  // Objects never seen before this snapshot become singleton buddies.
  for (size_t i = 0; i < snapshot.size(); ++i) {
    ObjectId oid = snapshot.id(i);
    if (object_to_buddy_[oid] == kNoBuddy) {
      Buddy single;
      single.members = {oid};
      single.coord_sum = snapshot.pos(i);
      single.radius = 0.0;
      born.push_back(std::move(single));
    }
  }

  // Merge working list: survivors first (stable ids), then the newly born.
  // `changed[i]` tracks whether entry i must receive a fresh id.
  std::vector<Buddy> work = std::move(next);
  std::vector<bool> changed(work.size(), false);
  for (Buddy& b : born) {
    work.push_back(std::move(b));
    changed.push_back(true);
  }

  // --- Merge phase (Algorithm 3, lines 10–13). Sweeps until fixpoint.
  // The merge condition d + γi + γj ≤ 2δγ implies d ≤ 2δγ, so a grid on
  // buddy centers with 2δγ cells restricts each sweep to 3×3-cell
  // candidate pairs (pairs skipped by the grid provably fail the
  // condition; the check itself is unchanged).
  std::vector<bool> dead(work.size(), false);
  const double cell = 2.0 * radius_threshold_;
  bool merged_any = true;
  while (merged_any) {
    merged_any = false;
    std::unordered_map<CellKey, std::vector<uint32_t>, CellKeyHash> grid;
    for (uint32_t k = 0; k < work.size(); ++k) {
      if (dead[k]) continue;
      Point c = work[k].center();
      grid[CellKey{static_cast<int64_t>(std::floor(c.x / cell)),
                   static_cast<int64_t>(std::floor(c.y / cell))}]
          .push_back(k);
    }
    for (size_t i = 0; i < work.size(); ++i) {
      if (dead[i]) continue;
      Point ci_now = work[i].center();
      CellKey base{static_cast<int64_t>(std::floor(ci_now.x / cell)),
                   static_cast<int64_t>(std::floor(ci_now.y / cell))};
      for (int64_t dx = -1; dx <= 1; ++dx) {
        for (int64_t dy = -1; dy <= 1; ++dy) {
          auto it = grid.find(CellKey{base.cx + dx, base.cy + dy});
          if (it == grid.end()) continue;
          for (uint32_t j : it->second) {
        if (j <= i || dead[j] || dead[i]) continue;
        ++local.distance_ops;
        Point ci = work[i].center();
        Point cj = work[j].center();
        double d = Distance(ci, cj);
        if (d + work[i].radius + work[j].radius >
            2.0 * radius_threshold_) {
          continue;
        }
        // Merge j into i without touching member coordinates: centers add
        // via coordinate sums; the radius gets the conservative bound
        // max(γi + d·mj/m, γj + d·mi/m), tightened next pass.
        double mi = static_cast<double>(work[i].members.size());
        double mj = static_cast<double>(work[j].members.size());
        double m = mi + mj;
        double bound = std::max(work[i].radius + d * mj / m,
                                work[j].radius + d * mi / m);
        if (!changed[i]) {
          retired_ids_.push_back(work[i].id);
          changed[i] = true;
        }
        if (!changed[j]) {
          retired_ids_.push_back(work[j].id);
        }
        work[i].members = SortedUnion(work[i].members, work[j].members);
        work[i].coord_sum = work[i].coord_sum + work[j].coord_sum;
        work[i].radius = bound;
        dead[j] = true;
        merged_any = true;
        ++local.merges;
          }
        }
      }
    }
  }

  // Finalize: surviving unchanged buddies keep their ids; changed ones get
  // fresh ids (assigned in list order, so ids stay creation-ordered).
  buddies_.clear();
  for (size_t i = 0; i < work.size(); ++i) {
    if (dead[i]) continue;
    if (changed[i]) work[i].id = NextId();
    buddies_.push_back(std::move(work[i]));
  }
  std::sort(buddies_.begin(), buddies_.end(),
            [](const Buddy& a, const Buddy& b) { return a.id < b.id; });
  RebuildObjectMap();

  local.total = static_cast<int64_t>(buddies_.size());
  for (const Buddy& b : buddies_) {
    local.member_sum += static_cast<int64_t>(b.members.size());
    // "Unchanged" = the id predates this pass (ids assigned this pass are
    // ≥ first_new_id).
    if (b.id < first_new_id) ++local.unchanged;
  }
  std::sort(retired_ids_.begin(), retired_ids_.end());
  if (stats != nullptr) {
    stats->unchanged += local.unchanged;
    stats->splits += local.splits;
    stats->merges += local.merges;
    stats->total += local.total;
    stats->member_sum += local.member_sum;
    stats->distance_ops += local.distance_ops;
  }
}

}  // namespace tcomp
