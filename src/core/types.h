#ifndef TCOMP_CORE_TYPES_H_
#define TCOMP_CORE_TYPES_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace tcomp {

/// Identifier of a moving object. Objects are dense-numbered from 0 by the
/// dataset generators and readers.
using ObjectId = uint32_t;

/// Identifier of a traveling buddy. Buddy ids are never reused within one
/// stream: every split/merge product receives a fresh id, so "same id"
/// always means "same membership".
using BuddyId = uint32_t;

/// A set of object ids, stored sorted ascending without duplicates. All
/// cluster/candidate/companion kernels rely on this representation (see
/// util/sorted_ops.h).
using ObjectSet = std::vector<ObjectId>;

/// A 2-D position in the local metric plane (meters, or the generator's
/// abstract unit). GPS inputs are projected before entering the pipeline
/// (see stream/geo.h).
struct Point {
  double x = 0.0;
  double y = 0.0;
};

inline Point operator+(Point a, Point b) { return {a.x + b.x, a.y + b.y}; }
inline Point operator-(Point a, Point b) { return {a.x - b.x, a.y - b.y}; }
inline Point operator*(Point p, double k) { return {p.x * k, p.y * k}; }
inline Point operator/(Point p, double k) { return {p.x / k, p.y / k}; }

inline double SquaredDistance(Point a, Point b) {
  double dx = a.x - b.x;
  double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

inline double Distance(Point a, Point b) {
  return std::sqrt(SquaredDistance(a, b));
}

}  // namespace tcomp

#endif  // TCOMP_CORE_TYPES_H_
