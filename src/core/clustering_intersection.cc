#include "core/clustering_intersection.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <string>

#include "util/dense_bitset.h"
#include "util/sorted_ops.h"
#include "util/timer.h"

namespace tcomp {

ClusteringIntersectionDiscoverer::ClusteringIntersectionDiscoverer(
    const DiscoveryParams& params)
    : params_(params), clusterer_(params.cluster) {}

void ClusteringIntersectionDiscoverer::ProcessSnapshot(
    const Snapshot& snapshot, std::vector<Companion>* newly_qualified) {
  Timer cluster_timer;
  cluster_timer.Start();
  Clustering clustering;
  if (cluster_provider_) {
    // External C-step backend (e.g. the sharded engine). The provider
    // owns its own reuse strategy, so the incremental reuse/dirty
    // counters stay 0 on this path.
    clustering = cluster_provider_(snapshot, &stats_.distance_ops);
  } else {
    ClusterDeltaStats cluster_delta;
    clustering =
        clusterer_.Cluster(snapshot, &stats_.distance_ops, &cluster_delta);
    stats_.cluster_reuse += cluster_delta.reuse;
    stats_.cluster_dirty += cluster_delta.dirty;
    stats_.cluster_full_rebuilds += cluster_delta.full_rebuilds;
    stats_.soa_batches += cluster_delta.soa_batches;
    stats_.soa_lanes += cluster_delta.soa_lanes;
    stats_.eps_filter_seconds += cluster_delta.eps_filter_seconds;
    if (cluster_delta.eps_filter_seconds > 0.0) {
      RecordStage(Stage::kEpsFilter, cluster_delta.eps_filter_seconds);
    }
  }
  cluster_timer.Stop();
  stats_.cluster_seconds += cluster_timer.Seconds();
  RecordStage(Stage::kCluster, cluster_timer.Seconds());

  Timer intersect_timer;
  intersect_timer.Start();
  const size_t min_size = static_cast<size_t>(params_.size_threshold);
  std::vector<Candidate> next;
  next.reserve(candidates_.size() + clustering.clusters.size());

  auto report = [&](const ObjectSet& objects, double duration) {
    ReportCompanion(objects, duration, newly_qualified);
  };

  // Word-parallel fast path: with a dense id universe each cluster's
  // membership lives in a bitset, built on the cluster's first probe and
  // then shared by every candidate, so a candidate×cluster intersection
  // walks only the candidate's objects — O(|r|) bit probes instead of the
  // merge's O(|r| + |c|) element walk — with no per-candidate setup. The
  // products are identical to the merge path (differential-tested); only
  // the cost changes. Candidate ids beyond the snapshot's id range can't
  // match any cluster, so the bitset probes skip them.
  const uint64_t universe =
      snapshot.empty() ? 0 : uint64_t{snapshot.ids().back()} + 1;
  const bool use_bitset = BitsetKernelsEnabled() && !candidates_.empty() &&
                          BitsetProfitable(universe, snapshot.size());
  std::vector<DenseBitset> cluster_bits(
      use_bitset ? clustering.clusters.size() : 0);
  ObjectSet inter;  // reused across pairs; moved out only when kept

  // Lines 4–11: intersect every candidate with every cluster. A result
  // whose duration reaches δt is *output* as a companion and leaves the
  // candidate set — Definition 4 requires candidates to have duration
  // < δt (this is also what lets larger δt shrink the working set,
  // Fig. 17).
  for (const Candidate& r : candidates_) {
    for (size_t k = 0; k < clustering.clusters.size(); ++k) {
      const ObjectSet& c = clustering.clusters[k];
      ++stats_.intersections;
      if (use_bitset) {
        DenseBitset& bits = cluster_bits[k];
        if (bits.universe() == 0) {  // first probe of this cluster
          bits.Resize(universe);
          bits.SetSparse(c);
        }
        IntersectInto(r.objects, bits, &inter);
      } else {
        SortedIntersect(r.objects, c, &inter);
      }
      if (inter.size() < min_size) continue;
      double duration = r.duration + snapshot.duration();
      if (duration >= params_.duration_threshold) {
        report(inter, duration);
      } else {
        next.push_back(Candidate{std::move(inter), duration});
        inter = ObjectSet();
      }
    }
  }

  // Line 12: every new cluster becomes a candidate, unconditionally.
  for (const ObjectSet& c : clustering.clusters) {
    if (c.size() < min_size) continue;
    double duration = snapshot.duration();
    if (duration >= params_.duration_threshold) {
      report(c, duration);
    } else {
      next.push_back(Candidate{c, duration});
    }
  }

  candidates_ = std::move(next);
  intersect_timer.Stop();
  stats_.intersect_seconds += intersect_timer.Seconds();
  // CI has no closure check (new clusters are admitted unconditionally),
  // so kClosure records no samples for this algorithm.
  RecordStage(Stage::kIntersect, intersect_timer.Seconds());

  stats_.candidate_objects_last = TotalCandidateObjects(candidates_);
  stats_.candidate_objects_peak =
      std::max(stats_.candidate_objects_peak, stats_.candidate_objects_last);
  ++stats_.snapshots;
  ++snapshot_index_;
}

void ClusteringIntersectionDiscoverer::Reset() {
  candidates_.clear();
  clusterer_.Reset();
  log_.Clear();
  stats_ = DiscoveryStats{};
  snapshot_index_ = 0;
}


Status ClusteringIntersectionDiscoverer::SaveState(std::ostream& out) const {
  SaveCommon(out);
  out << "candidates " << candidates_.size() << '\n';
  for (const Candidate& r : candidates_) {
    out << r.duration << ' ' << r.objects.size();
    for (ObjectId o : r.objects) out << ' ' << o;
    out << '\n';
  }
  clusterer_.SaveState(out);
  return Status::OK();
}

Status ClusteringIntersectionDiscoverer::LoadState(std::istream& in) {
  TCOMP_RETURN_IF_ERROR(LoadCommon(in));
  std::string tag;
  size_t count = 0;
  if (!(in >> tag >> count) || tag != "candidates") {
    return Status::Corruption("expected 'candidates' section");
  }
  if (count > kMaxCheckpointCount) {
    return Status::Corruption("implausible candidate count");
  }
  candidates_.clear();
  candidates_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Candidate r;
    size_t n = 0;
    if (!(in >> r.duration >> n)) {
      return Status::Corruption("bad candidate record");
    }
    if (n > kMaxCheckpointCount) {
      return Status::Corruption("implausible candidate size");
    }
    r.objects.resize(n);
    for (size_t k = 0; k < n; ++k) {
      if (!(in >> r.objects[k])) {
        return Status::Corruption("bad candidate member");
      }
    }
    r.signature = SetSignature::Of(r.objects);
    candidates_.push_back(std::move(r));
  }
  return clusterer_.LoadState(in);
}

}  // namespace tcomp
