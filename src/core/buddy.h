#ifndef TCOMP_CORE_BUDDY_H_
#define TCOMP_CORE_BUDDY_H_

#include <cstdint>
#include <vector>

#include "core/snapshot.h"
#include "core/types.h"

namespace tcomp {

/// A traveling buddy (paper Definition 6): a micro-group of objects whose
/// members all lie within the radius threshold δγ of the group's geometric
/// center. Buddies store the object *relationship* (membership), not the
/// object coordinates; they are maintained incrementally along the stream.
///
/// Identity contract: a BuddyId is never reused and always denotes one
/// fixed membership. Any membership change (split or merge) retires the
/// old id(s) and assigns fresh ones, so "the id survived the snapshot"
/// is exactly the paper's "the buddy stays unchanged" condition that the
/// buddy index relies on.
struct Buddy {
  BuddyId id = 0;
  ObjectSet members;   // sorted ascending
  /// Sum of member coordinates. The geometric center is coord_sum/size;
  /// storing the sum makes the paper's incremental center updates exact
  /// (split = subtract the member, merge = add the sums).
  Point coord_sum;
  /// Distance from the center to the farthest member (γ in the paper).
  /// Exact after every maintenance pass; a conservative upper bound
  /// immediately after a merge (tightened at the next pass). Lemmas 2–4
  /// only ever need an upper bound, so correctness never depends on
  /// radius ≤ δγ holding exactly.
  double radius = 0.0;

  size_t size() const { return members.size(); }
  Point center() const {
    return coord_sum / static_cast<double>(members.size());
  }
};

/// Counters from one maintenance pass (Algorithm 3); feeds Fig. 18/19.
struct BuddyMaintenanceStats {
  int64_t splits = 0;        // members split out as singleton buddies
  int64_t merges = 0;        // merge operations performed
  int64_t unchanged = 0;     // buddies whose id survived the pass
  int64_t total = 0;         // buddy count after the pass
  int64_t member_sum = 0;    // Σ|b| after the pass
  int64_t distance_ops = 0;  // distance evaluations during the pass
};

/// The dynamically maintained buddy set of one stream (Algorithm 3).
///
/// Usage:
///   BuddySet buddies(delta_gamma);
///   buddies.Initialize(first_snapshot);
///   for each later snapshot: buddies.Update(snapshot, &stats);
class BuddySet {
 public:
  /// `radius_threshold` is δγ. The paper recommends δγ = ε/2 (the largest
  /// value for which Lemma 2 can apply).
  explicit BuddySet(double radius_threshold);

  /// Builds the initial buddies from the first snapshot by greedily
  /// merging each object with its nearest neighbors until the radius
  /// threshold is reached (paper Section IV-A). One-time O(n²)-bounded
  /// cost, grid-accelerated in practice.
  void Initialize(const Snapshot& snapshot);

  /// One maintenance pass for a new snapshot: updates centers from the
  /// members' current positions, splits members that drifted beyond δγ,
  /// then merges buddy pairs satisfying
  ///   dist(cen_i, cen_j) + γi + γj ≤ 2·δγ.
  /// Objects absent from `snapshot` keep their last known position.
  /// If `stats` is non-null the pass's counters are added to it.
  void Update(const Snapshot& snapshot, BuddyMaintenanceStats* stats);

  /// Current buddies, ascending by id.
  const std::vector<Buddy>& buddies() const { return buddies_; }

  /// Ids retired during the last Update() call (their membership changed);
  /// the buddy index uses this to expand affected candidates.
  const std::vector<BuddyId>& retired_ids() const { return retired_ids_; }

  double radius_threshold() const { return radius_threshold_; }

  /// Parallelism for the per-buddy split sweep in Update(). The split
  /// phase is embarrassingly parallel across buddies (each buddy reads
  /// shared positions and writes only its own outcome); results are
  /// bit-identical at any thread count. 1 (the default) never touches the
  /// thread pool. The merge fixpoint stays serial: a merge changes the
  /// centers later pair checks read, so its sweep order is semantic.
  void set_threads(int threads) { threads_ = threads < 1 ? 1 : threads; }
  int threads() const { return threads_; }

  /// The buddy currently containing `id`, or nullptr.
  const Buddy* FindBuddyOfObject(ObjectId id) const;

  /// The live buddy with this id, or nullptr (binary search; buddies_ is
  /// id-sorted).
  const Buddy* FindBuddyById(BuddyId id) const;

  void Clear();

  /// Complete serializable state (checkpoint/restore support).
  struct SerializedState {
    BuddyId next_id = 0;
    std::vector<Buddy> buddies;
    /// Last known position per object (carry-forward memory).
    std::vector<std::pair<ObjectId, Point>> last_positions;
  };
  SerializedState ExportState() const;
  void ImportState(const SerializedState& state);

 private:
  BuddyId NextId() { return next_id_++; }

  /// Rebuilds the member->buddy map after membership changes.
  void RebuildObjectMap();

  double radius_threshold_;
  int threads_ = 1;
  BuddyId next_id_ = 0;
  std::vector<Buddy> buddies_;            // ascending by id
  std::vector<BuddyId> retired_ids_;      // from the last Update()
  std::vector<uint32_t> object_to_buddy_;  // ObjectId -> index in buddies_
  // Last known position per object (carry-forward for absent objects).
  std::vector<Point> last_pos_;
  std::vector<bool> has_pos_;
};

}  // namespace tcomp

#endif  // TCOMP_CORE_BUDDY_H_
