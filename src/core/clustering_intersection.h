#ifndef TCOMP_CORE_CLUSTERING_INTERSECTION_H_
#define TCOMP_CORE_CLUSTERING_INTERSECTION_H_

#include <utility>
#include <vector>

#include "core/discoverer.h"
#include "core/incremental_cluster.h"

namespace tcomp {

/// Algorithm 1: the clustering-and-intersection baseline (CI), the
/// streaming adaptation of the convoy-discovery framework. Each snapshot is
/// DBSCAN-clustered, every stored candidate is intersected with every
/// cluster, all sufficiently large intersection results are kept, and every
/// new cluster is added as a fresh candidate — no pruning of any kind.
/// Time O(n₁² + n₁·n₂) per snapshot (Proposition 1).
class ClusteringIntersectionDiscoverer : public CompanionDiscoverer {
 public:
  explicit ClusteringIntersectionDiscoverer(const DiscoveryParams& params);

  void ProcessSnapshot(const Snapshot& snapshot,
                       std::vector<Companion>* newly_qualified) override;
  Algorithm algorithm() const override {
    return Algorithm::kClusteringIntersection;
  }
  void Reset() override;

  Status SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;

  /// CI's C-step clusters raw objects, so an external backend slots in
  /// directly (the sharded engine uses this).
  bool SetClusterProvider(ClusterProvider provider) override {
    cluster_provider_ = std::move(provider);
    return true;
  }

  /// Candidate set after the last snapshot (exposed for tests that verify
  /// the paper's worked example, Fig. 4).
  const std::vector<Candidate>& candidates() const { return candidates_; }

 private:
  DiscoveryParams params_;
  std::vector<Candidate> candidates_;
  /// External clustering backend; empty = the built-in incremental
  /// clusterer below. Products are identical either way (both sides obey
  /// the Clustering determinism spec; differential-tested).
  ClusterProvider cluster_provider_;
  /// Snapshot-to-snapshot clustering state; exact (byte-identical to
  /// Dbscan) and process-gated by SetIncrementalClusteringEnabled().
  IncrementalClusterer clusterer_;
};

}  // namespace tcomp

#endif  // TCOMP_CORE_CLUSTERING_INTERSECTION_H_
