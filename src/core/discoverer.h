#ifndef TCOMP_CORE_DISCOVERER_H_
#define TCOMP_CORE_DISCOVERER_H_

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "core/candidate.h"
#include "core/dbscan.h"
#include "core/snapshot.h"
#include "core/stage.h"
#include "util/status.h"

namespace tcomp {

/// Parameters shared by every companion-discovery algorithm.
struct DiscoveryParams {
  /// Density clustering thresholds ε and μ (Definitions 1–2).
  DbscanParams cluster;
  /// Companion size threshold δs (Definition 3).
  int size_threshold = 10;
  /// Companion duration threshold δt, in the stream's time unit. With
  /// unit-duration snapshots this is "number of snapshots".
  double duration_threshold = 10.0;
  /// Buddy radius threshold δγ (Definition 6); only the buddy-based
  /// algorithm reads it. If ≤ 0 it defaults to ε/2, the paper's
  /// recommended setting (Lemma 2 requires δγ ≤ ε/2).
  double buddy_radius = 0.0;
};

/// Cost counters every discoverer maintains; these are exactly the
/// quantities the paper's figures plot.
struct DiscoveryStats {
  int64_t snapshots = 0;
  /// Candidate×cluster intersection operations (Figs. 4/6/13 trace this).
  int64_t intersections = 0;
  /// Pairwise distance evaluations in the clustering stage.
  int64_t distance_ops = 0;
  /// Peak over snapshots of the stored candidate-set size in objects —
  /// the paper's space-cost metric (Figs. 15b, 16b, 17b, 23b).
  int64_t candidate_objects_peak = 0;
  /// Candidate-set size after the most recent snapshot.
  int64_t candidate_objects_last = 0;
  /// Companion reports before deduplication.
  int64_t companions_reported = 0;

  // Buddy-based discovery only (zero elsewhere):
  int64_t buddy_pairs_checked = 0;   // pairs examined by Lemma 3
  int64_t buddy_pairs_pruned = 0;    // pairs pruned by Lemma 3
  int64_t buddies_total = 0;         // Σ per-snapshot buddy count
  int64_t buddies_unchanged = 0;     // Σ per-snapshot unchanged buddies
  int64_t buddy_member_sum = 0;      // Σ per-snapshot Σ|b| (avg size calc)

  // Incremental clustering layer (core/incremental_cluster.h); zero for
  // algorithms that re-cluster from scratch (BU) and when the layer is
  // disabled. `cluster_reuse / (cluster_reuse + cluster_dirty)` is the
  // fraction of object-snapshots whose neighborhood state was carried
  // over — the coherence the layer exploits.
  int64_t cluster_reuse = 0;          // Σ per-snapshot stable objects
  int64_t cluster_dirty = 0;          // Σ per-snapshot reprobed objects
  int64_t cluster_full_rebuilds = 0;  // snapshots that fell back to full

  // SoA ε-filter kernels (util/eps_filter.h): batches dispatched and
  // candidate lanes streamed through them. Zero when the SoA switch is
  // off or the algorithm's clustering path has no batched filter.
  // Monitoring-grade only: NOT serialized by SaveCommon (the values
  // differ between SoA-on and SoA-off runs of identical products, so
  // they must stay out of the checkpoint byte stream) — they restart
  // from zero after a resume, like process counters do.
  int64_t soa_batches = 0;
  int64_t soa_lanes = 0;

  /// Per-stage wall time in seconds: M-step (buddy maintenance), C-step
  /// (clustering), I-step (candidate intersection). Fig. 19.
  double maintain_seconds = 0.0;
  double cluster_seconds = 0.0;
  double intersect_seconds = 0.0;
  /// Wall time inside the C-step's ε-neighborhood filtering portion
  /// (whichever kernel served it). A subset of cluster_seconds; not
  /// serialized, same rationale as the soa_* counters.
  double eps_filter_seconds = 0.0;

  double total_seconds() const {
    return maintain_seconds + cluster_seconds + intersect_seconds;
  }
  double average_buddy_size() const {
    return buddies_total == 0
               ? 0.0
               : static_cast<double>(buddy_member_sum) /
                     static_cast<double>(buddies_total);
  }
};

/// Upper bound on any element count read from a checkpoint stream
/// (companion-log entries, members per companion, candidates, buddies,
/// ...). Counts beyond it cannot come from a real run — LoadState returns
/// Status::Corruption instead of attempting a multi-GB `resize` from a
/// corrupt or hostile file.
inline constexpr uint64_t kMaxCheckpointCount = 1ull << 24;  // 16.7M

/// The companion-discovery algorithms of the paper.
enum class Algorithm {
  kClusteringIntersection,  // CI — Algorithm 1 (convoy-style baseline)
  kSmartClosed,             // SC — Algorithm 2
  kBuddy,                   // BU — Algorithm 5
};

const char* AlgorithmName(Algorithm algorithm);

/// Incremental traveling-companion discoverer: feed snapshots in stream
/// order; qualified companions are reported as soon as their duration
/// crosses δt (paper problem definition, Section II).
///
/// Thread-compatibility: instances are stateful and not thread-safe; use
/// one instance per stream.
class CompanionDiscoverer {
 public:
  /// Observer invoked on *every* qualification event (before the log's
  /// deduplication/closedness filtering): a persisting companion fires
  /// once per snapshot it stays qualified. Used by CompanionTimeline to
  /// reconstruct companion lifetimes.
  using ReportSink =
      std::function<void(const ObjectSet& objects, double duration,
                         int64_t snapshot_index)>;

  virtual ~CompanionDiscoverer() = default;

  /// Processes the next snapshot. If `newly_qualified` is non-null, the
  /// companions whose object set qualified for the first time during this
  /// snapshot are appended to it.
  virtual void ProcessSnapshot(const Snapshot& snapshot,
                               std::vector<Companion>* newly_qualified) = 0;

  /// Every distinct companion reported so far.
  const CompanionLog& log() const { return log_; }

  const DiscoveryStats& stats() const { return stats_; }

  void set_report_sink(ReportSink sink) { report_sink_ = std::move(sink); }

  /// Observability hook: per-snapshot stage durations (maintain, cluster,
  /// intersect, closure) are reported here in addition to the cumulative
  /// DiscoveryStats seconds. Null (the default) disables reporting. The
  /// sink must outlive the discoverer and only ever receives timing
  /// values — it cannot influence products (the differential suites pin
  /// byte-identical output with and without a sink attached).
  void set_stage_sink(StageTimerSink* sink) { stage_sink_ = sink; }

  /// Replaces the algorithm's per-snapshot object clustering with an
  /// external backend (the sharded C-step engine, a spatial index, ...).
  /// The provider must obey the Clustering determinism spec of
  /// core/dbscan.h, in which case products are unchanged by construction
  /// — only where the distance evaluations happen moves. Returns false
  /// when the algorithm has no object-clustering stage to replace (BU
  /// clusters buddies, not raw objects); callers must then fall back to
  /// the built-in path (see ServicePipeline's --shards fallback story).
  /// Pass an empty provider to restore the built-in clustering.
  virtual bool SetClusterProvider(ClusterProvider provider) {
    (void)provider;
    return false;
  }

  virtual Algorithm algorithm() const = 0;
  std::string name() const { return AlgorithmName(algorithm()); }

  /// Drops all stream state (candidates, buddies, log, stats). The
  /// report sink is kept.
  virtual void Reset() = 0;

  /// Checkpointing: writes/restores the complete stream state (candidate
  /// sets, buddy structures, companion log, counters) as a versioned text
  /// record, so a monitoring process can resume a stream after a restart.
  /// See core/checkpoint.h for the file-level convenience wrappers.
  /// LoadState() replaces the current state; the parameters the
  /// discoverer was constructed with must match the saved run's.
  virtual Status SaveState(std::ostream& out) const = 0;
  virtual Status LoadState(std::istream& in) = 0;

 protected:
  /// Serialization helpers for the state every algorithm shares
  /// (defined in discoverer.cc).
  void SaveCommon(std::ostream& out) const;
  Status LoadCommon(std::istream& in);
  /// Shared reporting path: feeds the sink, the deduplicating log, and
  /// the caller's newly-qualified list. Implementations call this for
  /// every qualifying candidate.
  void ReportCompanion(const ObjectSet& objects, double duration,
                       std::vector<Companion>* newly_qualified) {
    ++stats_.companions_reported;
    if (report_sink_) report_sink_(objects, duration, snapshot_index_);
    if (log_.Report(objects, duration, snapshot_index_) &&
        newly_qualified != nullptr) {
      newly_qualified->push_back(
          Companion{objects, duration, snapshot_index_});
    }
  }

  /// Forwards one stage duration to the sink, if any. Timing only — never
  /// read back, never branching on the value.
  void RecordStage(Stage stage, double seconds) {
    if (stage_sink_ != nullptr) stage_sink_->RecordStage(stage, seconds);
  }

  CompanionLog log_;
  DiscoveryStats stats_;
  ReportSink report_sink_;
  StageTimerSink* stage_sink_ = nullptr;
  int64_t snapshot_index_ = 0;
};

/// Factory for the three incremental algorithms.
std::unique_ptr<CompanionDiscoverer> MakeDiscoverer(
    Algorithm algorithm, const DiscoveryParams& params);

}  // namespace tcomp

#endif  // TCOMP_CORE_DISCOVERER_H_
