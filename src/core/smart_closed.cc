#include "core/smart_closed.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <string>

#include "util/dense_bitset.h"
#include "util/sorted_ops.h"
#include "util/timer.h"

namespace tcomp {

SmartClosedDiscoverer::SmartClosedDiscoverer(const DiscoveryParams& params)
    : params_(params), clusterer_(params.cluster) {
  // SC reports only closed companions (Definition 5 applied to outputs);
  // emitting the redundant non-closed ones is CI's failure mode.
  log_.set_closed_mode(true);
}

SmartClosedDiscoverer::SmartClosedDiscoverer(const DiscoveryParams& params,
                                             ClusteringFn clustering)
    : params_(params),
      clustering_fn_(std::move(clustering)),
      clusterer_(params.cluster) {
  log_.set_closed_mode(true);
}

void SmartClosedDiscoverer::ProcessSnapshot(
    const Snapshot& snapshot, std::vector<Companion>* newly_qualified) {
  Timer cluster_timer;
  cluster_timer.Start();
  Clustering clustering;
  if (cluster_provider_) {
    // External C-step backend (e.g. the sharded engine); the incremental
    // reuse/dirty counters stay 0 on this path.
    clustering = cluster_provider_(snapshot, &stats_.distance_ops);
  } else if (clustering_fn_) {
    clustering = clustering_fn_(snapshot);
  } else {
    ClusterDeltaStats cluster_delta;
    clustering =
        clusterer_.Cluster(snapshot, &stats_.distance_ops, &cluster_delta);
    stats_.cluster_reuse += cluster_delta.reuse;
    stats_.cluster_dirty += cluster_delta.dirty;
    stats_.cluster_full_rebuilds += cluster_delta.full_rebuilds;
    stats_.soa_batches += cluster_delta.soa_batches;
    stats_.soa_lanes += cluster_delta.soa_lanes;
    stats_.eps_filter_seconds += cluster_delta.eps_filter_seconds;
    if (cluster_delta.eps_filter_seconds > 0.0) {
      RecordStage(Stage::kEpsFilter, cluster_delta.eps_filter_seconds);
    }
  }
  cluster_timer.Stop();
  stats_.cluster_seconds += cluster_timer.Seconds();
  RecordStage(Stage::kCluster, cluster_timer.Seconds());

  Timer intersect_timer;
  intersect_timer.Start();
  const size_t min_size = static_cast<size_t>(params_.size_threshold);
  std::vector<Candidate> next;
  next.reserve(candidates_.size() + clustering.clusters.size());

  auto report = [&](const ObjectSet& objects, double duration) {
    ReportCompanion(objects, duration, newly_qualified);
  };

  // Word-parallel fast path: clusters are fixed for the whole snapshot
  // while the candidate's working set shrinks (Lemma 1), so the bitsets
  // live on the *cluster* side — built lazily on a cluster's first probe
  // and shared by every candidate after that. Each later probe walks only
  // the candidate's remaining objects, O(|remaining|) instead of the
  // merge's O(|remaining| + |c|), with no per-candidate setup (the
  // Lemma-1 early stop means most candidates probe one or two clusters,
  // too few to amortize anything per-candidate). Products match the merge
  // path bit for bit (differential-tested).
  const uint64_t universe =
      snapshot.empty() ? 0 : uint64_t{snapshot.ids().back()} + 1;
  const bool use_bitset = BitsetKernelsEnabled() && !candidates_.empty() &&
                          BitsetProfitable(universe, snapshot.size());
  std::vector<DenseBitset> cluster_bits(
      use_bitset ? clustering.clusters.size() : 0);
  ObjectSet inter;  // reused across pairs; moved out only when kept

  for (const Candidate& r : candidates_) {
    // Working copy; matched objects are removed after each intersection
    // (smart intersection, Lemma 1).
    ObjectSet remaining = r.objects;
    double duration = r.duration + snapshot.duration();

    auto intersect_with = [&](size_t k) {
      const ObjectSet& c = clustering.clusters[k];
      ++stats_.intersections;
      if (use_bitset) {
        DenseBitset& bits = cluster_bits[k];
        if (bits.universe() == 0) {  // first probe of this cluster
          bits.Resize(universe);
          bits.SetSparse(c);
        }
        IntersectInto(remaining, bits, &inter);
      } else {
        SortedIntersect(remaining, c, &inter);
      }
      if (inter.empty()) return;
      SortedSubtractInPlace(&remaining, inter);
      if (inter.size() < min_size) return;
      // Qualified companions are output and leave the candidate set
      // (Definition 4: candidate duration < δt).
      if (duration >= params_.duration_threshold) {
        report(inter, duration);
      } else {
        next.push_back(Candidate{std::move(inter), duration});
        inter = ObjectSet();
      }
    };

    // Probe the cluster holding the candidate's first object before the
    // rest: an intact candidate is consumed by that one intersection and
    // the Lemma-1 early stop fires immediately. Products are independent
    // of scan order (hard clustering), so only cost changes.
    int32_t first_label = -1;
    if (!r.objects.empty()) {
      size_t idx = snapshot.IndexOf(r.objects.front());
      if (idx != Snapshot::kNpos) first_label = clustering.labels[idx];
    }
    if (first_label >= 0) {
      intersect_with(static_cast<size_t>(first_label));
    }
    for (size_t k = 0; k < clustering.clusters.size(); ++k) {
      // Line 6: once fewer than δs objects remain, no further cluster can
      // produce a qualifying result — stop early.
      if (remaining.size() < min_size) break;
      if (static_cast<int32_t>(k) == first_label) continue;
      intersect_with(k);
    }
  }

  // Lines 14–15: new clusters are stored only if closed (Definition 5).
  // The closure scan is timed separately for the stage sink; it runs
  // inside the I-step timer, so stats_.intersect_seconds keeps its
  // historical meaning (whole I-step) while the sink sees the split.
  Timer closure_timer;
  closure_timer.Start();
  for (const ObjectSet& c : clustering.clusters) {
    if (c.size() < min_size) continue;
    double duration = snapshot.duration();
    if (!IsClosedAgainst(c, duration, next)) continue;
    if (duration >= params_.duration_threshold) {
      report(c, duration);
    } else {
      next.push_back(Candidate{c, duration});
    }
  }
  closure_timer.Stop();

  candidates_ = std::move(next);
  intersect_timer.Stop();
  stats_.intersect_seconds += intersect_timer.Seconds();
  RecordStage(Stage::kIntersect,
              intersect_timer.Seconds() - closure_timer.Seconds());
  RecordStage(Stage::kClosure, closure_timer.Seconds());

  stats_.candidate_objects_last = TotalCandidateObjects(candidates_);
  stats_.candidate_objects_peak =
      std::max(stats_.candidate_objects_peak, stats_.candidate_objects_last);
  ++stats_.snapshots;
  ++snapshot_index_;
}

void SmartClosedDiscoverer::Reset() {
  candidates_.clear();
  clusterer_.Reset();
  log_.Clear();
  stats_ = DiscoveryStats{};
  snapshot_index_ = 0;
}


Status SmartClosedDiscoverer::SaveState(std::ostream& out) const {
  SaveCommon(out);
  out << "candidates " << candidates_.size() << '\n';
  for (const Candidate& r : candidates_) {
    out << r.duration << ' ' << r.objects.size();
    for (ObjectId o : r.objects) out << ' ' << o;
    out << '\n';
  }
  clusterer_.SaveState(out);
  return Status::OK();
}

Status SmartClosedDiscoverer::LoadState(std::istream& in) {
  TCOMP_RETURN_IF_ERROR(LoadCommon(in));
  std::string tag;
  size_t count = 0;
  if (!(in >> tag >> count) || tag != "candidates") {
    return Status::Corruption("expected 'candidates' section");
  }
  if (count > kMaxCheckpointCount) {
    return Status::Corruption("implausible candidate count");
  }
  candidates_.clear();
  candidates_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    Candidate r;
    size_t n = 0;
    if (!(in >> r.duration >> n)) {
      return Status::Corruption("bad candidate record");
    }
    if (n > kMaxCheckpointCount) {
      return Status::Corruption("implausible candidate size");
    }
    r.objects.resize(n);
    for (size_t k = 0; k < n; ++k) {
      if (!(in >> r.objects[k])) {
        return Status::Corruption("bad candidate member");
      }
    }
    r.signature = SetSignature::Of(r.objects);
    candidates_.push_back(std::move(r));
  }
  return clusterer_.LoadState(in);
}

}  // namespace tcomp
