#include "core/buddy_clustering.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace tcomp {
namespace {

constexpr uint32_t kAbsent = static_cast<uint32_t>(-1);

struct CellKey {
  int64_t cx;
  int64_t cy;
  bool operator==(const CellKey& o) const { return cx == o.cx && cy == o.cy; }
};

struct CellKeyHash {
  size_t operator()(const CellKey& k) const {
    uint64_t h = static_cast<uint64_t>(k.cx) * 0x9e3779b97f4a7c15ULL;
    h ^= static_cast<uint64_t>(k.cy) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
    return static_cast<size_t>(h);
  }
};

}  // namespace

Clustering BuddyBasedClustering(const Snapshot& snapshot,
                                const BuddySet& buddies,
                                const DbscanParams& params,
                                BuddyClusteringStats* stats) {
  const size_t n = snapshot.size();
  const double eps = params.epsilon;
  const double eps2 = eps * eps;
  const size_t mu = static_cast<size_t>(params.mu);
  BuddyClusteringStats local;

  const std::vector<Buddy>& blist = buddies.buddies();
  const size_t m = blist.size();

  // Member snapshot-indices per buddy (members absent from the snapshot
  // are skipped; upstream carry-forward normally prevents that).
  std::vector<std::vector<uint32_t>> members(m);
  std::vector<uint32_t> buddy_of(n, kAbsent);
  for (size_t b = 0; b < m; ++b) {
    members[b].reserve(blist[b].members.size());
    for (ObjectId oid : blist[b].members) {
      size_t idx = snapshot.IndexOf(oid);
      if (idx == Snapshot::kNpos) continue;
      members[b].push_back(static_cast<uint32_t>(idx));
      buddy_of[idx] = static_cast<uint32_t>(b);
    }
    std::sort(members[b].begin(), members[b].end());
  }
  for (size_t i = 0; i < n; ++i) {
    TCOMP_DCHECK(buddy_of[i] != kAbsent)
        << "object " << snapshot.id(i) << " is in no buddy; call "
        << "BuddySet::Update with this snapshot first";
  }

  // Density-connected buddies (Lemma 2): every member is core.
  std::vector<bool> dcb(m, false);
  for (size_t b = 0; b < m; ++b) {
    if (members[b].size() >= mu + 1 && blist[b].radius <= eps / 2.0) {
      dcb[b] = true;
      ++local.lemma2_buddies;
    }
  }

  // Buddy adjacency under Lemma 3. Pairs pruned here never reach the
  // object level. A grid over buddy centers skips pairs whose centers are
  // so far apart that the Lemma-3 condition d − γi − γj > ε holds
  // trivially (cell size covers ε + 2·γmax); grid-skipped pairs count as
  // Lemma-3-pruned — same criterion, evaluated geometrically.
  std::vector<std::vector<uint32_t>> adjacent(m);
  {
    double gamma_max = 0.0;
    int64_t nonempty = 0;
    for (size_t b = 0; b < m; ++b) {
      if (members[b].empty()) continue;
      ++nonempty;
      gamma_max = std::max(gamma_max, blist[b].radius);
    }
    local.pairs_checked += nonempty * (nonempty - 1) / 2;

    const double cell = eps + 2.0 * gamma_max;
    std::unordered_map<CellKey, std::vector<uint32_t>, CellKeyHash> grid;
    auto cell_of = [cell](Point p) {
      return CellKey{static_cast<int64_t>(std::floor(p.x / cell)),
                     static_cast<int64_t>(std::floor(p.y / cell))};
    };
    for (size_t b = 0; b < m; ++b) {
      if (members[b].empty()) continue;
      grid[cell_of(blist[b].center())].push_back(static_cast<uint32_t>(b));
    }
    int64_t linked = 0;
    for (size_t i = 0; i < m; ++i) {
      if (members[i].empty()) continue;
      CellKey c = cell_of(blist[i].center());
      for (int64_t dx = -1; dx <= 1; ++dx) {
        for (int64_t dy = -1; dy <= 1; ++dy) {
          auto it = grid.find(CellKey{c.cx + dx, c.cy + dy});
          if (it == grid.end()) continue;
          for (uint32_t j : it->second) {
            if (j <= i) continue;
            double d = Distance(blist[i].center(), blist[j].center());
            // The Lemma-3 prune subtracts disk radii from the center
            // distance, which has no squared form; it only discards pairs
            // provably beyond ε — membership is still decided by WithinEps
            // downstream.
            // tcomp-lint: allow(sqrt-eps): lemma bound needs the true root
            if (d - blist[i].radius - blist[j].radius > eps) continue;
            adjacent[i].push_back(j);
            adjacent[j].push_back(static_cast<uint32_t>(i));
            ++linked;
          }
        }
      }
    }
    local.pairs_pruned += nonempty * (nonempty - 1) / 2 - linked;
    for (std::vector<uint32_t>& list : adjacent) {
      std::sort(list.begin(), list.end());
    }
  }

  // Core flags. Members of density-connected buddies are core for free;
  // everyone else counts ε-neighbors (self included) over its own buddy
  // plus adjacent buddies, stopping early at μ. The scan is per-buddy
  // independent (each object belongs to exactly one buddy), so it runs on
  // the thread pool: shard s owns buddies s, s+T, ... and writes only its
  // buddies' entries of the byte vector (vector<bool> would pack bits and
  // race) plus a per-shard op counter. Results are bit-identical to the
  // serial scan at any thread count.
  std::vector<uint8_t> core8(n, 0);
  const int core_shards = EffectiveShards(params.threads, m);
  std::vector<int64_t> core_shard_ops(static_cast<size_t>(core_shards), 0);
  ParallelForShards(core_shards, [&](int shard, int num_shards) {
    int64_t shard_ops = 0;
    for (size_t b = static_cast<size_t>(shard); b < m;
         b += static_cast<size_t>(num_shards)) {
      if (dcb[b]) {
        for (uint32_t idx : members[b]) core8[idx] = 1;
        continue;
      }
      for (uint32_t idx : members[b]) {
        size_t count = 1;  // self
        Point p = snapshot.pos(idx);
        auto scan = [&](const std::vector<uint32_t>& list) {
          for (uint32_t other : list) {
            if (other == idx) continue;
            ++shard_ops;
            // tcomp-lint: allow(soa-raw-loop): the ≥μ early stop (return
            // on the μ-th hit) is the whole optimization; a batched
            // filter would evaluate the full list and change
            // distance_ops.
            if (WithinEps(p, snapshot.pos(other), eps2)) {
              ++count;
              if (count >= mu) return true;
            }
          }
          return false;
        };
        bool done = scan(members[b]);
        if (!done) {
          for (uint32_t nb : adjacent[b]) {
            if (scan(members[nb])) {
              done = true;
              break;
            }
          }
        }
        core8[idx] = count >= mu ? 1 : 0;
      }
    }
    core_shard_ops[static_cast<size_t>(shard)] = shard_ops;
  });
  for (int64_t s : core_shard_ops) local.distance_ops += s;
  std::vector<bool> core(core8.begin(), core8.end());

  // Union core objects into clusters.
  internal::DisjointSets sets(n);

  // Within one buddy: a density-connected buddy is fully ε-close, so its
  // cores chain directly; otherwise check in-buddy core pairs.
  for (size_t b = 0; b < m; ++b) {
    const std::vector<uint32_t>& mem = members[b];
    if (dcb[b]) {
      for (size_t k = 1; k < mem.size(); ++k) sets.Union(mem[0], mem[k]);
      continue;
    }
    for (size_t a = 0; a < mem.size(); ++a) {
      if (!core[mem[a]]) continue;
      for (size_t c = a + 1; c < mem.size(); ++c) {
        if (!core[mem[c]]) continue;
        ++local.distance_ops;
        // tcomp-lint: allow(soa-raw-loop): in-buddy core pairs — buddies
        // are δγ-sized (a handful of members), far below any batch
        // break-even.
        if (WithinEps(snapshot.pos(mem[a]), snapshot.pos(mem[c]), eps2)) {
          sets.Union(mem[a], mem[c]);
        }
      }
    }
  }

  // Across adjacent buddy pairs. Lemma 4 short-circuits pairs of
  // density-connected buddies at the first ε-close cross pair.
  for (size_t i = 0; i < m; ++i) {
    for (uint32_t j : adjacent[i]) {
      if (j <= i) continue;  // each unordered pair once
      bool both_dcb = dcb[i] && dcb[j];
      bool shortcut_done = false;
      for (uint32_t a : members[i]) {
        if (shortcut_done) break;
        for (uint32_t c : members[j]) {
          ++local.distance_ops;
          // tcomp-lint: allow(soa-raw-loop): Lemma 4 short-circuits at
          // the first ε-close cross pair; batching would evaluate pairs
          // the scalar walk never reaches and change distance_ops.
          if (!WithinEps(snapshot.pos(a), snapshot.pos(c), eps2)) {
            continue;
          }
          if (both_dcb) {
            // Lemma 4: all objects of both buddies are density connected.
            sets.Union(a, c);
            ++local.lemma4_shortcuts;
            shortcut_done = true;
            break;
          }
          if (core[a] && core[c]) sets.Union(a, c);
        }
      }
    }
  }

  // Border attachment: lowest-index core neighbor within ε, searched over
  // the own buddy and adjacent buddies (farther cores are excluded by
  // Lemma 3). Matches the deterministic rule of Dbscan().
  Clustering result;
  result.labels.assign(n, -1);
  result.core = core;
  std::vector<uint32_t> attach_to(n, kAbsent);
  for (size_t i = 0; i < n; ++i) {
    if (core[i]) {
      attach_to[i] = static_cast<uint32_t>(i);
      continue;
    }
    uint32_t best = kAbsent;
    Point p = snapshot.pos(i);
    uint32_t b = buddy_of[i];
    auto consider = [&](const std::vector<uint32_t>& list) {
      for (uint32_t other : list) {
        if (other == i || !core[other]) continue;
        if (other >= best) continue;  // only lower indices can improve
        ++local.distance_ops;
        // tcomp-lint: allow(soa-raw-loop): the `other >= best` pruning
        // makes the candidate set data-dependent mid-walk; a precomputed
        // batch would evaluate pruned pairs and change distance_ops.
        if (WithinEps(p, snapshot.pos(other), eps2)) best = other;
      }
    };
    consider(members[b]);
    for (uint32_t nb : adjacent[b]) consider(members[nb]);
    attach_to[i] = best;
  }

  std::unordered_map<uint32_t, int32_t> root_to_label;
  for (uint32_t i = 0; i < n; ++i) {
    if (attach_to[i] == kAbsent) continue;
    uint32_t root = sets.Find(attach_to[i]);
    auto it = root_to_label.find(root);
    int32_t label;
    if (it == root_to_label.end()) {
      label = static_cast<int32_t>(result.clusters.size());
      root_to_label.emplace(root, label);
      result.clusters.emplace_back();
    } else {
      label = it->second;
    }
    result.labels[i] = label;
    result.clusters[static_cast<size_t>(label)].push_back(snapshot.id(i));
  }

  if (stats != nullptr) {
    stats->pairs_checked += local.pairs_checked;
    stats->pairs_pruned += local.pairs_pruned;
    stats->lemma2_buddies += local.lemma2_buddies;
    stats->lemma4_shortcuts += local.lemma4_shortcuts;
    stats->distance_ops += local.distance_ops;
  }
  return result;
}

}  // namespace tcomp
