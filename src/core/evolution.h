#ifndef TCOMP_CORE_EVOLUTION_H_
#define TCOMP_CORE_EVOLUTION_H_

#include <cstdint>
#include <vector>

#include "core/timeline.h"

namespace tcomp {

/// How companion populations evolve: one group continuing under changed
/// membership, several groups merging into one, or one group splitting
/// apart — the phenomena the group-movement scenarios (herds, convoys,
/// infected-contact monitoring from the paper's Example 4) care about.
struct EvolutionEvent {
  enum class Kind { kContinuation, kMerge, kSplit };
  Kind kind = Kind::kContinuation;
  /// Indices into the episode list passed to AnalyzeEvolution.
  std::vector<size_t> sources;
  std::vector<size_t> targets;
  /// Snapshot around which the transition happened (the earliest target
  /// begin).
  int64_t snapshot = 0;
};

struct EvolutionOptions {
  /// Maximum gap (snapshots) between a source episode's end and a target
  /// episode's begin for them to be linked. Episodes may also overlap.
  int64_t max_gap = 2;
  /// Minimum shared-member fraction, relative to the smaller episode,
  /// for a link.
  double min_overlap = 0.5;
};

/// Links episodes whose memberships overlap across a temporal boundary
/// and classifies the transitions:
///  * one source → one target: continuation (membership drift);
///  * ≥2 sources → one target: merge;
///  * one source → ≥2 targets: split.
/// A target participating in a merge is not re-reported as a
/// continuation (and likewise for split sources).
std::vector<EvolutionEvent> AnalyzeEvolution(
    const std::vector<CompanionEpisode>& episodes,
    const EvolutionOptions& options = {});

}  // namespace tcomp

#endif  // TCOMP_CORE_EVOLUTION_H_
