#ifndef TCOMP_CORE_SNAPSHOT_H_
#define TCOMP_CORE_SNAPSHOT_H_

#include <cstddef>
#include <vector>

#include "core/types.h"
#include "util/arena.h"

namespace tcomp {

/// One object's position inside a snapshot.
struct ObjectPosition {
  ObjectId id = 0;
  Point pos;
};

/// A snapshot: the projection of all objects' positions over one time span
/// (paper Section II / VI). Objects are stored sorted by id so snapshots
/// can be joined by index and diffed in linear time.
///
/// A snapshot carries its `duration` (the time span it covers, in the
/// stream's time unit — minutes for the paper's datasets); candidate
/// durations accumulate these values.
class Snapshot {
 public:
  Snapshot() = default;

  /// Builds a snapshot from unsorted positions. Duplicate ids must have
  /// been resolved upstream (the sliding window averages multi-reports).
  Snapshot(std::vector<ObjectPosition> positions, double duration);

  size_t size() const { return ids_.size(); }
  bool empty() const { return ids_.empty(); }
  double duration() const { return duration_; }

  /// The i-th object id, ascending in i.
  ObjectId id(size_t i) const { return ids_[i]; }
  /// Position of the i-th object (same index space as id()).
  Point pos(size_t i) const { return points_[i]; }

  const std::vector<ObjectId>& ids() const { return ids_; }
  const std::vector<Point>& points() const { return points_; }

  /// Index of `id` in this snapshot, or npos if the object is absent.
  static constexpr size_t kNpos = static_cast<size_t>(-1);
  size_t IndexOf(ObjectId id) const;

  /// True if the object reported a position in this snapshot.
  bool Contains(ObjectId id) const { return IndexOf(id) != kNpos; }

 private:
  std::vector<ObjectId> ids_;    // sorted ascending
  std::vector<Point> points_;    // parallel to ids_
  double duration_ = 1.0;
};

/// Structure-of-arrays view of one snapshot: the same objects, same index
/// space, but coordinates split into contiguous x[] / y[] arrays so the
/// batched ε-filter kernels (util/eps_filter.h) stream them with unit
/// stride instead of hopping 16-byte Point pairs. Built once per snapshot
/// into a per-snapshot Arena — the view borrows the arena's storage and
/// is invalidated by the arena's next Reset(), exactly like every other
/// per-snapshot scratch array.
struct SnapshotSoA {
  size_t size = 0;
  const double* x = nullptr;   // x[i] == snapshot.pos(i).x
  const double* y = nullptr;   // y[i] == snapshot.pos(i).y
  const ObjectId* id = nullptr;  // id[i] == snapshot.id(i), ascending
};

/// Splits `snapshot` into the SoA layout, allocating the three arrays
/// from `arena`. One linear pass; the copy is the price of admission for
/// vectorized distance math and is amortized over every ε-query the
/// consumer makes against the snapshot.
SnapshotSoA BuildSnapshotSoA(const Snapshot& snapshot, Arena* arena);

/// One row of a two-way ordered merge over object-id sequences: the id
/// plus its index in each input (Snapshot::kNpos when absent). Exactly one
/// row per distinct id, ids ascending.
struct IdMergeItem {
  ObjectId id = 0;
  size_t index_a = Snapshot::kNpos;
  size_t index_b = Snapshot::kNpos;
};

/// Linear-time ordered merge of two ascending id sequences (the invariant
/// Snapshot maintains). The workhorse for snapshot diffing: consecutive
/// snapshots share most ids, and the merge classifies each id as
/// present-in-both / only-in-a / only-in-b in one pass. Used by the
/// incremental clusterer and the R-tree maintenance path.
std::vector<IdMergeItem> MergeIdSequences(const std::vector<ObjectId>& a,
                                          const std::vector<ObjectId>& b);

/// A fully materialized stream: the snapshot sequence the discoverers
/// consume. Produced by dataset generators or by the sliding window.
using SnapshotStream = std::vector<Snapshot>;

/// Total number of (object, position) records in a stream.
int64_t TotalRecords(const SnapshotStream& stream);

}  // namespace tcomp

#endif  // TCOMP_CORE_SNAPSHOT_H_
