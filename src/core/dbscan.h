#ifndef TCOMP_CORE_DBSCAN_H_
#define TCOMP_CORE_DBSCAN_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "core/snapshot.h"
#include "core/types.h"

namespace tcomp {

/// Density clustering parameters (paper Definitions 1–2): `epsilon` is the
/// distance threshold ε, `mu` the density threshold μ. The ε-neighborhood
/// N_ε(o) includes o itself (dist(o,o)=0 ≤ ε), so an object is a *core*
/// object iff at least `mu` objects (itself included) lie within ε.
///
/// `threads` parallelizes the neighbor-computation stage across a static
/// thread pool (util/thread_pool.h). Results — labels, core flags,
/// clusters, and the distance_ops counter — are bit-identical at every
/// thread count; 1 (the default) bypasses the pool entirely.
struct DbscanParams {
  double epsilon = 1.0;
  int mu = 3;
  int threads = 1;
};

/// The single ε-neighborhood convention every clustering backend shares:
/// objects at *exactly* ε apart are neighbors (closed ball, `<= eps²`),
/// matching Definition 1's dist(o, o') ≤ ε. Flat DBSCAN, the grid
/// backend, the R-tree/quad-tree backends, and the buddy-based clustering
/// all answer eps-membership through this one predicate so a boundary
/// point can never be a neighbor in one backend and noise in another.
/// `eps2` is ε² (square once at the call site, compare many times).
inline bool WithinEps(Point a, Point b, double eps2) {
  return SquaredDistance(a, b) <= eps2;
}

/// Cell width for an ε-bucketed uniform grid whose 3×3 neighborhood scan
/// is guaranteed to cover every pair within `eps`, even at the edge of
/// floating-point resolution. A naive `floor(x / eps)` bucketing can put
/// two coordinates exactly `eps` apart two cells apart once |x| grows to
/// ~eps·2^52 (the division's rounding error reaches a whole cell), and a
/// pair at distance exactly eps that straddles a cell border is then
/// missed by the scan. Padding the width by max|coord|·2⁻⁴⁰ (plus a
/// relative ε pad) keeps |floor(x₁/c) − floor(x₂/c)| ≤ 1 whenever
/// |x₁ − x₂| ≤ eps, at the cost of a slightly denser grid.
double GridCellWidth(double eps, double max_abs_coord);

/// Process-wide kill switch for the incremental snapshot-to-snapshot
/// clustering layer (core/incremental_cluster.h), mirroring the bitset
/// kernel switch in util/dense_bitset.h. Defaults to enabled. Turning it
/// off makes every discoverer re-cluster each snapshot from scratch;
/// cluster products are identical either way (the incremental layer is
/// exact by construction) — only the distance-evaluation cost changes.
/// Relaxed atomics: toggling is a test/ops affordance, not a
/// synchronization point.
void SetIncrementalClusteringEnabled(bool enabled);
bool IncrementalClusteringEnabled();

/// Result of clustering one snapshot.
///
/// The labeling is deterministic: clusters are numbered by their smallest
/// member index, and a border object (non-core with ≥1 core within ε) is
/// assigned to the cluster of its lowest-index core neighbor. Objects that
/// are neither core nor border are noise (label -1). Every clustering
/// implementation in this library follows the same spec, so results are
/// comparable across algorithms ("hard clustering", paper footnote 2).
struct Clustering {
  /// Per snapshot-index label; -1 = noise.
  std::vector<int32_t> labels;
  /// Per snapshot-index core flag.
  std::vector<bool> core;
  /// Object-id sets per cluster, sorted ascending; cluster k = clusters[k].
  std::vector<ObjectSet> clusters;
};

/// Pluggable snapshot-clustering backend: given a snapshot, produce the
/// Clustering described above — same determinism spec, same closed-ball
/// neighborhood — incrementing `distance_ops` (never null is not
/// guaranteed; check) by the distance evaluations spent. The sharded
/// C-step engine (src/shard/) is injected through this type; see
/// CompanionDiscoverer::SetClusterProvider and ConvoyParams.
using ClusterProvider =
    std::function<Clustering(const Snapshot& snapshot, int64_t* distance_ops)>;

/// Reference density-based clustering, O(n²) pairwise distances (the cost
/// model the paper assumes for the CI/SC baselines). If `distance_ops` is
/// non-null it is incremented by the number of distance evaluations.
Clustering Dbscan(const Snapshot& snapshot, const DbscanParams& params,
                  int64_t* distance_ops = nullptr);

/// Grid-accelerated density clustering with identical output to Dbscan().
/// Buckets objects into an ε×ε grid and only compares 3×3 neighborhoods.
/// Used by generators/examples where a fast exact clustering is needed and
/// as a reference point in the clustering microbenchmarks.
Clustering DbscanGrid(const Snapshot& snapshot, const DbscanParams& params,
                      int64_t* distance_ops = nullptr);

namespace internal {

/// Shared finishing step: given core flags and an adjacency oracle, builds
/// the deterministic Clustering described above. Exposed for the
/// buddy-based clustering implementation.
Clustering BuildClusteringFromCores(
    const Snapshot& snapshot, const std::vector<bool>& core,
    const std::vector<std::vector<uint32_t>>& neighbors);

/// Union-find over snapshot indices with smallest-index representatives,
/// shared by the clustering implementations.
class DisjointSets {
 public:
  explicit DisjointSets(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<uint32_t>(i);
  }

  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  /// Unions the two sets; the smaller root index becomes the
  /// representative, keeping labels deterministic.
  void Union(uint32_t a, uint32_t b) {
    a = Find(a);
    b = Find(b);
    if (a == b) return;
    if (a < b) {
      parent_[b] = a;
    } else {
      parent_[a] = b;
    }
  }

 private:
  std::vector<uint32_t> parent_;
};

}  // namespace internal
}  // namespace tcomp

#endif  // TCOMP_CORE_DBSCAN_H_
