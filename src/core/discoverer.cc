#include "core/discoverer.h"

#include <istream>
#include <ostream>
#include <string>

#include "core/buddy_discovery.h"
#include "core/clustering_intersection.h"
#include "core/smart_closed.h"
#include "util/logging.h"

namespace tcomp {

void CompanionDiscoverer::SaveCommon(std::ostream& out) const {
  out << "common " << snapshot_index_ << '\n';
  const DiscoveryStats& s = stats_;
  out << "stats " << s.snapshots << ' ' << s.intersections << ' '
      << s.distance_ops << ' ' << s.candidate_objects_peak << ' '
      << s.candidate_objects_last << ' ' << s.companions_reported << ' '
      << s.buddy_pairs_checked << ' ' << s.buddy_pairs_pruned << ' '
      << s.buddies_total << ' ' << s.buddies_unchanged << ' '
      << s.buddy_member_sum << ' ' << s.cluster_reuse << ' '
      << s.cluster_dirty << ' ' << s.cluster_full_rebuilds << ' '
      << s.maintain_seconds << ' ' << s.cluster_seconds << ' '
      << s.intersect_seconds << '\n';
  const std::vector<Companion>& companions = log_.companions();
  out << "log " << companions.size() << '\n';
  for (const Companion& c : companions) {
    out << c.snapshot_index << ' ' << c.duration << ' '
        << c.objects.size();
    for (ObjectId o : c.objects) out << ' ' << o;
    out << '\n';
  }
}

Status CompanionDiscoverer::LoadCommon(std::istream& in) {
  std::string tag;
  if (!(in >> tag) || tag != "common") {
    return Status::Corruption("expected 'common' section");
  }
  if (!(in >> snapshot_index_)) {
    return Status::Corruption("bad snapshot index");
  }
  if (!(in >> tag) || tag != "stats") {
    return Status::Corruption("expected 'stats' section");
  }
  DiscoveryStats s;
  if (!(in >> s.snapshots >> s.intersections >> s.distance_ops >>
        s.candidate_objects_peak >> s.candidate_objects_last >>
        s.companions_reported >> s.buddy_pairs_checked >>
        s.buddy_pairs_pruned >> s.buddies_total >> s.buddies_unchanged >>
        s.buddy_member_sum >> s.cluster_reuse >> s.cluster_dirty >>
        s.cluster_full_rebuilds >> s.maintain_seconds >>
        s.cluster_seconds >> s.intersect_seconds)) {
    return Status::Corruption("bad stats record");
  }
  stats_ = s;
  size_t count = 0;
  if (!(in >> tag >> count) || tag != "log") {
    return Status::Corruption("expected 'log' section");
  }
  if (count > kMaxCheckpointCount) {
    return Status::Corruption("implausible companion-log count " +
                              std::to_string(count));
  }
  log_.Clear();
  for (size_t i = 0; i < count; ++i) {
    Companion c;
    size_t n = 0;
    if (!(in >> c.snapshot_index >> c.duration >> n)) {
      return Status::Corruption("bad companion record");
    }
    if (n > kMaxCheckpointCount) {
      return Status::Corruption("implausible companion size " +
                                std::to_string(n));
    }
    c.objects.resize(n);
    for (size_t k = 0; k < n; ++k) {
      if (!(in >> c.objects[k])) {
        return Status::Corruption("bad companion member");
      }
    }
    log_.RestoreEntry(std::move(c));
  }
  return Status::OK();
}

const char* AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kClusteringIntersection:
      return "CI";
    case Algorithm::kSmartClosed:
      return "SC";
    case Algorithm::kBuddy:
      return "BU";
  }
  return "unknown";
}

std::unique_ptr<CompanionDiscoverer> MakeDiscoverer(
    Algorithm algorithm, const DiscoveryParams& params) {
  TCOMP_CHECK_GT(params.cluster.epsilon, 0.0);
  TCOMP_CHECK_GT(params.cluster.mu, 0);
  TCOMP_CHECK_GT(params.size_threshold, 0);
  switch (algorithm) {
    case Algorithm::kClusteringIntersection:
      return std::make_unique<ClusteringIntersectionDiscoverer>(params);
    case Algorithm::kSmartClosed:
      return std::make_unique<SmartClosedDiscoverer>(params);
    case Algorithm::kBuddy:
      return std::make_unique<BuddyDiscoverer>(params);
  }
  TCOMP_LOG(FATAL) << "unknown algorithm";
  return nullptr;
}

}  // namespace tcomp
