#include "core/evolution.h"

#include <algorithm>
#include <map>

#include "util/sorted_ops.h"

namespace tcomp {
namespace {

struct Link {
  size_t source;
  size_t target;
};

}  // namespace

std::vector<EvolutionEvent> AnalyzeEvolution(
    const std::vector<CompanionEpisode>& episodes,
    const EvolutionOptions& options) {
  // Candidate links: target begins in (source.begin, source.end + gap],
  // memberships overlap enough, and the pair differs. The begin ordering
  // keeps links pointing forward in time.
  std::vector<Link> links;
  for (size_t i = 0; i < episodes.size(); ++i) {
    for (size_t j = 0; j < episodes.size(); ++j) {
      if (i == j) continue;
      const CompanionEpisode& a = episodes[i];
      const CompanionEpisode& b = episodes[j];
      if (b.begin <= a.begin) continue;
      if (b.begin > a.end + options.max_gap) continue;
      size_t shared = SortedIntersectSize(a.objects, b.objects);
      size_t smaller = std::min(a.objects.size(), b.objects.size());
      if (smaller == 0) continue;
      if (static_cast<double>(shared) <
          options.min_overlap * static_cast<double>(smaller)) {
        continue;
      }
      links.push_back(Link{i, j});
    }
  }

  std::map<size_t, std::vector<size_t>> targets_of;  // source -> targets
  std::map<size_t, std::vector<size_t>> sources_of;  // target -> sources
  for (const Link& l : links) {
    targets_of[l.source].push_back(l.target);
    sources_of[l.target].push_back(l.source);
  }

  std::vector<EvolutionEvent> events;
  std::vector<bool> consumed_as_merge_target(episodes.size(), false);
  std::vector<bool> consumed_as_split_source(episodes.size(), false);

  // Merges: a target fed by several sources.
  for (const auto& [target, sources] : sources_of) {
    if (sources.size() < 2) continue;
    EvolutionEvent e;
    e.kind = EvolutionEvent::Kind::kMerge;
    e.sources = sources;
    std::sort(e.sources.begin(), e.sources.end());
    e.targets = {target};
    e.snapshot = episodes[target].begin;
    consumed_as_merge_target[target] = true;
    events.push_back(std::move(e));
  }
  // Splits: a source feeding several targets.
  for (const auto& [source, targets] : targets_of) {
    if (targets.size() < 2) continue;
    EvolutionEvent e;
    e.kind = EvolutionEvent::Kind::kSplit;
    e.sources = {source};
    e.targets = targets;
    std::sort(e.targets.begin(), e.targets.end());
    e.snapshot = episodes[e.targets.front()].begin;
    consumed_as_split_source[source] = true;
    events.push_back(std::move(e));
  }
  // Plain continuations: 1-1 links not already explained above.
  for (const Link& l : links) {
    if (targets_of[l.source].size() != 1) continue;
    if (sources_of[l.target].size() != 1) continue;
    if (consumed_as_merge_target[l.target] ||
        consumed_as_split_source[l.source]) {
      continue;
    }
    EvolutionEvent e;
    e.kind = EvolutionEvent::Kind::kContinuation;
    e.sources = {l.source};
    e.targets = {l.target};
    e.snapshot = episodes[l.target].begin;
    events.push_back(std::move(e));
  }

  std::sort(events.begin(), events.end(),
            [](const EvolutionEvent& a, const EvolutionEvent& b) {
              if (a.snapshot != b.snapshot) return a.snapshot < b.snapshot;
              if (a.kind != b.kind) return a.kind < b.kind;
              return a.sources < b.sources;
            });
  return events;
}

}  // namespace tcomp
