#ifndef TCOMP_CORE_BUDDY_INDEX_H_
#define TCOMP_CORE_BUDDY_INDEX_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "core/buddy.h"
#include "core/types.h"
#include "util/dense_bitset.h"
#include "util/set_signature.h"

namespace tcomp {

/// A candidate or cluster in the buddy-compressed representation used by
/// Algorithm 5: whole unchanged buddies are stored as single BID tokens,
/// everything else as loose object ids. The two parts are disjoint (no
/// loose object is a member of a listed buddy).
struct AtomSet {
  std::vector<BuddyId> buddy_ids;  // sorted ascending
  ObjectSet objects;               // sorted ascending, disjoint from buddies
  double duration = 0.0;

  /// Total object count (buddy members + loose objects); kept cached
  /// because the discovery loop tests it constantly against δs.
  size_t size = 0;

  /// Bloom/bounds signature of the *expanded* object set, meaningful only
  /// while `signature_valid`. The kernel layer maintains it (composed from
  /// cached per-buddy signatures, so no expansion happens) to answer the
  /// disjointness and subset prefilters in O(1). The expanded set is
  /// invariant for a live candidate — buddy retirement trades tokens for
  /// the same objects — so validity survives ExpandRetired.
  SetSignature signature;
  bool signature_valid = false;

  /// Storage cost in atoms — what the buddy index actually keeps in
  /// memory: one token per buddy plus the loose objects.
  size_t atom_count() const { return buddy_ids.size() + objects.size(); }
};

/// The buddy index (paper Definition 7): BID → member objects, for every
/// buddy id referenced by stored candidates or clusters. Candidates store
/// BIDs; the index owns the single copy of each buddy's member list and
/// answers expansion queries when a buddy changes.
class BuddyIndex {
 public:
  /// Registers (or refreshes) a buddy's membership.
  void Register(BuddyId id, const ObjectSet& members);

  /// Membership of `id`. The id must be registered.
  const ObjectSet& MembersOf(BuddyId id) const;

  /// Signature of `id`'s member set, cached at Register time. The id must
  /// be registered.
  const SetSignature& SignatureOf(BuddyId id) const;

  /// Signature of `set`'s expanded object set, composed from the cached
  /// per-buddy signatures in O(atom_count) without expanding anything.
  SetSignature ComposeSignature(const AtomSet& set) const;

  bool Contains(BuddyId id) const { return members_.count(id) > 0; }

  /// Expands an atom set to its full object-id set.
  ObjectSet Expand(const AtomSet& set) const;

  /// Replaces, in `set`, every buddy token whose id appears in the sorted
  /// list `retired` by its member objects (paper: "when the buddy changes,
  /// the system updates all the candidates in CanIDs and replaces BID with
  /// the corresponding objects").
  void ExpandRetired(const std::vector<BuddyId>& retired, AtomSet* set) const;

  /// Drops every entry whose id is not in the sorted list `referenced`.
  void PruneExcept(const std::vector<BuddyId>& referenced);

  /// Total objects stored in the index (one copy per registered buddy) —
  /// part of BU's space-cost accounting.
  int64_t stored_objects() const { return stored_objects_; }
  size_t size() const { return members_.size(); }
  void Clear();

  /// Raw entries (checkpoint/restore support).
  const std::unordered_map<BuddyId, ObjectSet>& entries() const {
    return members_;
  }

 private:
  std::unordered_map<BuddyId, ObjectSet> members_;
  std::unordered_map<BuddyId, SetSignature> signatures_;
  int64_t stored_objects_ = 0;
};

/// Oracle mapping an object to its current live buddy id (or
/// `kNoLiveBuddy`). The intersection kernel uses it to detect loose
/// candidate objects that sit inside a cluster's buddy token.
using BuddyOfFn = std::function<BuddyId(ObjectId)>;
constexpr BuddyId kNoLiveBuddy = static_cast<BuddyId>(-1);

/// Result of one buddy-aware intersection.
struct AtomIntersection {
  /// False iff the candidate and cluster share no object at all; in that
  /// case `result` and `remaining` are left empty and the caller keeps
  /// its working set unchanged (allocation-free fast path — most
  /// candidate×cluster pairs in a stream are disjoint).
  bool any_overlap = false;
  AtomSet result;
  /// What remains of the candidate after removing the matched atoms
  /// (smart intersection, Algorithm 5 line 10). Partially matched buddy
  /// tokens are expanded: matched members go to `result`, unmatched ones
  /// become loose objects here.
  AtomSet remaining;
};

/// Intersects candidate `r` with cluster `c` (both in atom form, both
/// referring to the same snapshot's live buddies). Shared buddy tokens
/// match in O(1) per token without touching their members — the shortcut
/// that makes BU's per-intersection cost low. `index` must know every
/// buddy id appearing in `r` and `c`.
///
/// `c_object_bits`, when non-null, must hold exactly `c.objects` as a
/// DenseBitset; the kernel then answers every loose-object membership
/// probe with one bit test instead of a binary search. The caller builds
/// it once per cluster per snapshot (each cluster is probed by every
/// candidate), and results are identical with or without it.
AtomIntersection IntersectAtomSets(const AtomSet& r, const AtomSet& c,
                                   const BuddyIndex& index,
                                   const BuddyOfFn& buddy_of,
                                   const DenseBitset* c_object_bits = nullptr);

/// True if the object set denoted by `inner` is a subset of the one
/// denoted by `outer` (used for the closed-candidate check without
/// expanding either side). `index` must know every referenced buddy id.
bool AtomSetIsSubset(const AtomSet& inner, const AtomSet& outer,
                     const BuddyIndex& index, const BuddyOfFn& buddy_of);

}  // namespace tcomp

#endif  // TCOMP_CORE_BUDDY_INDEX_H_
