#include "core/stage.h"

namespace tcomp {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kIngestAdmission:
      return "ingest_admission";
    case Stage::kReorderHold:
      return "reorder_hold";
    case Stage::kSnapshotClose:
      return "snapshot_close";
    case Stage::kMaintain:
      return "maintain";
    case Stage::kCluster:
      return "cluster";
    case Stage::kEpsFilter:
      return "eps_filter";
    case Stage::kIntersect:
      return "intersect";
    case Stage::kClosure:
      return "closure";
    case Stage::kCheckpointWrite:
      return "checkpoint_write";
    case Stage::kShardRoute:
      return "shard_route";
    case Stage::kShardCluster:
      return "shard_cluster";
    case Stage::kMergeStitch:
      return "merge_stitch";
    case Stage::kFrameDecode:
      return "frame_decode";
    case Stage::kConnFlush:
      return "conn_flush";
  }
  return "unknown";
}

}  // namespace tcomp
