#ifndef TCOMP_CORE_STAGE_H_
#define TCOMP_CORE_STAGE_H_

namespace tcomp {

/// The pipeline stages the paper's evaluation measures (Section VII,
/// Figs. 14–19). Every discoverer — CI, SC, BU — and the convoy baseline
/// report the same stage names, so dashboards and the slow-snapshot log
/// read identically whichever algorithm is serving. A stage an algorithm
/// does not have (CI has no closure check, only BU maintains buddies)
/// simply records no samples; the series still exists, with count 0.
enum class Stage {
  kIngestAdmission,  // Ingest(): admission-queue push (incl. kBlock stall)
  kReorderHold,      // watermark reorder buffer: arrival → release
  kSnapshotClose,    // window close → discoverer done (whole snapshot)
  kMaintain,         // M-step: buddy split/merge maintenance (BU)
  kCluster,          // C-step: density clustering
  kEpsFilter,        // ε-neighborhood filtering inside the C-step: the
                     // batched SoA kernels (util/eps_filter.h) or their
                     // scalar fallback. Nests inside kCluster, like the
                     // shard stages; zero samples on paths that do not
                     // time their filter portion separately.
  kIntersect,        // I-step: candidate × cluster intersections
  kClosure,          // closedness checks on new clusters (SC, BU, convoy)
  kCheckpointWrite,  // checkpoint serialization + file write
  // Sharded C-step (src/shard/): zero samples unless --shards > 1 routes
  // the snapshot-clustering stage through the sharded engine. The three
  // stages nest inside kCluster (partition → per-shard work → stitch).
  kShardRoute,       // partition: stripe assignment + halo computation
  kShardCluster,     // per-shard ε-neighborhood work, submit → all done
  kMergeStitch,      // cross-shard merge: union-find stitch + finishing
  // Event-loop connection layer (src/service/server.cc): zero samples
  // unless `serve` is running. Both sit outside kSnapshotClose.
  kFrameDecode,      // socket bytes → parsed requests (text or binary)
  kConnFlush,        // queued response bytes → socket, one drain attempt
};
inline constexpr int kStageCount = 14;

/// Stable lowercase identifier used as the `stage` label value.
const char* StageName(Stage stage);

/// Where instrumented code reports per-snapshot stage durations. The
/// interface is deliberately minimal so core algorithms depend only on
/// this header, not on any metrics backend; a null sink (the default in
/// CompanionDiscoverer) makes instrumentation a pointer test. The
/// MetricsRegistry-backed implementation lives in obs/stage_timer.h —
/// the dependency points upward (obs → core), never back down.
class StageTimerSink {
 public:
  virtual ~StageTimerSink() = default;
  virtual void RecordStage(Stage stage, double seconds) = 0;
};

}  // namespace tcomp

#endif  // TCOMP_CORE_STAGE_H_
