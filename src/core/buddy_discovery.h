#ifndef TCOMP_CORE_BUDDY_DISCOVERY_H_
#define TCOMP_CORE_BUDDY_DISCOVERY_H_

#include <vector>

#include "core/buddy.h"
#include "core/buddy_clustering.h"
#include "core/buddy_index.h"
#include "core/discoverer.h"

namespace tcomp {

/// Algorithm 5: buddy-based companion discovery (BU).
///
/// Per snapshot:
///  * M-step — maintain the traveling-buddy set (Algorithm 3) and expand
///    retired buddy tokens inside stored candidates via the buddy index;
///  * C-step — buddy-based clustering (Algorithm 4);
///  * I-step — smart-and-closed candidate intersection over the
///    buddy-compressed atom representation: unchanged buddies intersect as
///    single tokens, so both the per-intersection time and the candidate
///    storage shrink (paper Example 6).
///
/// BU reports exactly the companions SC reports (the clustering is
/// identical and the atom algebra is an exact compressed encoding of SC's
/// object-set algebra) — the property behind "BU and SC have the same
/// precision and recall" in the paper's Section V-D.
class BuddyDiscoverer : public CompanionDiscoverer {
 public:
  explicit BuddyDiscoverer(const DiscoveryParams& params);

  void ProcessSnapshot(const Snapshot& snapshot,
                       std::vector<Companion>* newly_qualified) override;
  Algorithm algorithm() const override { return Algorithm::kBuddy; }
  void Reset() override;

  Status SaveState(std::ostream& out) const override;
  Status LoadState(std::istream& in) override;

  /// The live buddy set (exposed for tests and the Fig. 18 bench).
  const BuddySet& buddy_set() const { return buddies_; }

  /// Stored candidates in atom form (exposed for tests).
  const std::vector<AtomSet>& candidates() const { return candidates_; }

  /// δγ actually in use (params.buddy_radius, defaulted to ε/2).
  double buddy_radius() const { return buddies_.radius_threshold(); }

 private:
  void EnsureIndexed(BuddyId id);
  BuddyId LiveBuddyOf(ObjectId oid) const;

  DiscoveryParams params_;
  BuddySet buddies_;
  BuddyIndex index_;
  std::vector<AtomSet> candidates_;
  bool initialized_ = false;
};

}  // namespace tcomp

#endif  // TCOMP_CORE_BUDDY_DISCOVERY_H_
