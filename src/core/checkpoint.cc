#include "core/checkpoint.h"

#include <cstdio>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace tcomp {
namespace {

constexpr char kMagic[] = "tcomp-checkpoint";
// Version 2: the stats line gained the cluster_reuse / cluster_dirty /
// cluster_full_rebuilds counters, and CI/SC records carry the incremental
// clusterer's anchor state. Version-1 checkpoints are rejected (the
// counters cannot be reconstructed after the fact).
constexpr int kVersion = 2;

}  // namespace

Status SaveDiscoverer(const CompanionDiscoverer& discoverer,
                      std::ostream& out) {
  out << kMagic << ' ' << kVersion << ' ' << discoverer.name() << '\n';
  // 17 significant digits round-trip IEEE doubles exactly.
  out << std::setprecision(17);
  Status s = discoverer.SaveState(out);
  if (!s.ok()) return s;
  out << "end\n";
  if (!out) return Status::IoError("checkpoint write failed");
  return Status::OK();
}

Status LoadDiscoverer(CompanionDiscoverer* discoverer, std::istream& in) {
  std::string magic, algo;
  int version = 0;
  if (!(in >> magic >> version >> algo)) {
    return Status::Corruption("checkpoint header unreadable");
  }
  if (magic != kMagic) {
    return Status::Corruption("not a tcomp checkpoint");
  }
  if (version != kVersion) {
    return Status::Corruption("unsupported checkpoint version " +
                              std::to_string(version));
  }
  if (algo != discoverer->name()) {
    return Status::InvalidArgument(
        "checkpoint was written by algorithm " + algo + ", not " +
        discoverer->name());
  }
  Status s = discoverer->LoadState(in);
  if (!s.ok()) return s;
  std::string tail;
  if (!(in >> tail) || tail != "end") {
    return Status::Corruption("checkpoint trailer missing");
  }
  return Status::OK();
}

Status SaveDiscovererToFile(const CompanionDiscoverer& discoverer,
                            const std::string& path) {
  // Write-then-rename: a crash mid-write must never destroy the previous
  // good checkpoint at `path`. The record is written to a sibling .tmp
  // file and renamed into place only once it is complete; a failed or
  // interrupted save leaves at worst a stale .tmp behind, which the next
  // successful save overwrites.
  const std::string tmp = path + ".tmp";
  Status s;
  {
    std::ofstream out(tmp);
    if (!out) {
      return Status::IoError("cannot open " + tmp + " for writing");
    }
    s = SaveDiscoverer(discoverer, out);
    if (s.ok()) {
      out.flush();
      if (!out) s = Status::IoError("checkpoint write to " + tmp + " failed");
    }
  }
  if (!s.ok()) {
    // Best-effort cleanup: the write failure is the error worth reporting;
    // a stale .tmp is harmless and overwritten by the next save.
    (void)std::remove(tmp.c_str());
    return s;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    (void)std::remove(tmp.c_str());  // best-effort, rename is the error
    return Status::IoError("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

Status LoadDiscovererFromFile(CompanionDiscoverer* discoverer,
                              const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open " + path);
  return LoadDiscoverer(discoverer, in);
}

}  // namespace tcomp
