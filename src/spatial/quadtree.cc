#include "spatial/quadtree.h"

#include <algorithm>
#include <cmath>

#include "core/dbscan.h"
#include "util/logging.h"

namespace tcomp {
namespace {

/// Squared distance from `p` to the square cell (center, half).
double CellDistance2(Point p, Point center, double half) {
  double dx = std::max(std::abs(p.x - center.x) - half, 0.0);
  double dy = std::max(std::abs(p.y - center.y) - half, 0.0);
  return dx * dx + dy * dy;
}

}  // namespace

QuadTree::QuadTree(Point origin, double extent, int bucket_capacity,
                   int max_depth)
    : origin_(origin),
      extent_(extent),
      bucket_capacity_(bucket_capacity),
      max_depth_(max_depth) {
  TCOMP_CHECK_GT(extent, 0.0);
  TCOMP_CHECK_GT(bucket_capacity, 0);
  nodes_.emplace_back();
}

void QuadTree::Clear() {
  nodes_.clear();
  nodes_.emplace_back();
  count_ = 0;
}

Point QuadTree::Clamp(Point p) const {
  p.x = std::clamp(p.x, origin_.x, origin_.x + extent_);
  p.y = std::clamp(p.y, origin_.y, origin_.y + extent_);
  return p;
}

int QuadTree::Quadrant(Point p, Point center) const {
  return (p.x >= center.x ? 1 : 0) + (p.y >= center.y ? 2 : 0);
}

void QuadTree::Split(int32_t n, Point center, double half, int depth) {
  std::vector<Item> items = std::move(nodes_[n].items);
  nodes_[n].leaf = false;
  for (int q = 0; q < 4; ++q) {
    nodes_[n].children[q] = static_cast<int32_t>(nodes_.size());
    nodes_.emplace_back();  // may reallocate; children stored first
  }
  for (const Item& item : items) {
    int q = Quadrant(item.pos, center);
    nodes_[static_cast<size_t>(nodes_[n].children[q])].items.push_back(
        item);
  }
  // A pathological all-same-point bucket re-splits immediately; depth
  // capping in Insert() prevents runaway recursion.
  (void)half;
  (void)depth;
}

void QuadTree::Insert(ObjectId id, Point p) {
  p = Clamp(p);
  int32_t n = 0;
  Point center{origin_.x + extent_ / 2.0, origin_.y + extent_ / 2.0};
  double half = extent_ / 2.0;
  int depth = 1;
  while (!nodes_[n].leaf) {
    int q = Quadrant(p, center);
    center.x += (q & 1) ? half / 2.0 : -half / 2.0;
    center.y += (q & 2) ? half / 2.0 : -half / 2.0;
    half /= 2.0;
    n = nodes_[n].children[q];
    ++depth;
  }
  nodes_[n].items.push_back(Item{id, p});
  ++count_;
  if (nodes_[n].items.size() >
          static_cast<size_t>(bucket_capacity_) &&
      depth < max_depth_) {
    Split(n, center, half, depth);
  }
}

bool QuadTree::Delete(ObjectId id, Point p) {
  p = Clamp(p);
  int32_t n = 0;
  Point center{origin_.x + extent_ / 2.0, origin_.y + extent_ / 2.0};
  double half = extent_ / 2.0;
  std::vector<int32_t> path;
  while (!nodes_[n].leaf) {
    path.push_back(n);
    int q = Quadrant(p, center);
    center.x += (q & 1) ? half / 2.0 : -half / 2.0;
    center.y += (q & 2) ? half / 2.0 : -half / 2.0;
    half /= 2.0;
    n = nodes_[n].children[q];
  }
  std::vector<Item>& items = nodes_[n].items;
  for (size_t i = 0; i < items.size(); ++i) {
    if (items[i].id == id && items[i].pos.x == p.x &&
        items[i].pos.y == p.y) {
      items.erase(items.begin() + static_cast<int64_t>(i));
      --count_;
      // Collapse sparse parents back into leaves (keeps the tree tight
      // under sustained deletes). Only the immediate parent is checked —
      // amortized cleanup, invariants unaffected.
      if (!path.empty()) {
        int32_t parent = path.back();
        size_t total = 0;
        bool all_leaves = true;
        for (int q = 0; q < 4; ++q) {
          const Node& child =
              nodes_[static_cast<size_t>(nodes_[parent].children[q])];
          if (!child.leaf) {
            all_leaves = false;
            break;
          }
          total += child.items.size();
        }
        if (all_leaves &&
            total <= static_cast<size_t>(bucket_capacity_) / 2) {
          std::vector<Item> merged;
          for (int q = 0; q < 4; ++q) {
            Node& child =
                nodes_[static_cast<size_t>(nodes_[parent].children[q])];
            merged.insert(merged.end(), child.items.begin(),
                          child.items.end());
            child.items.clear();
            nodes_[parent].children[q] = -1;
          }
          nodes_[parent].leaf = true;
          nodes_[parent].items = std::move(merged);
        }
      }
      return true;
    }
  }
  return false;
}

bool QuadTree::Update(ObjectId id, Point from, Point to) {
  if (!Delete(id, from)) return false;
  Insert(id, to);
  return true;
}

std::vector<ObjectId> QuadTree::Search(Point center, double radius) const {
  std::vector<ObjectId> out;
  double r2 = radius * radius;
  struct Frame {
    int32_t n;
    Point center;
    double half;
  };
  std::vector<Frame> stack = {
      {0,
       Point{origin_.x + extent_ / 2.0, origin_.y + extent_ / 2.0},
       extent_ / 2.0}};
  while (!stack.empty()) {
    Frame f = stack.back();
    stack.pop_back();
    ++nodes_visited_;
    if (CellDistance2(center, f.center, f.half) > r2) continue;
    const Node& node = nodes_[static_cast<size_t>(f.n)];
    if (node.leaf) {
      for (const Item& item : node.items) {
        if (WithinEps(item.pos, center, r2)) {
          out.push_back(item.id);
        }
      }
      continue;
    }
    for (int q = 0; q < 4; ++q) {
      Point child_center{
          f.center.x + ((q & 1) ? f.half / 2.0 : -f.half / 2.0),
          f.center.y + ((q & 2) ? f.half / 2.0 : -f.half / 2.0)};
      stack.push_back(Frame{node.children[q], child_center, f.half / 2.0});
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool QuadTree::CheckNode(int32_t n, Point center, double half, int depth,
                         size_t* seen) const {
  const Node& node = nodes_[static_cast<size_t>(n)];
  if (depth > max_depth_) return false;
  if (node.leaf) {
    for (const Item& item : node.items) {
      if (std::abs(item.pos.x - center.x) > half + 1e-9 ||
          std::abs(item.pos.y - center.y) > half + 1e-9) {
        return false;
      }
    }
    *seen += node.items.size();
    return true;
  }
  if (!node.items.empty()) return false;
  for (int q = 0; q < 4; ++q) {
    if (node.children[q] < 0) return false;
    Point child_center{center.x + ((q & 1) ? half / 2.0 : -half / 2.0),
                       center.y + ((q & 2) ? half / 2.0 : -half / 2.0)};
    if (!CheckNode(node.children[q], child_center, half / 2.0, depth + 1,
                   seen)) {
      return false;
    }
  }
  return true;
}

bool QuadTree::CheckInvariants() const {
  size_t seen = 0;
  if (!CheckNode(0,
                 Point{origin_.x + extent_ / 2.0,
                       origin_.y + extent_ / 2.0},
                 extent_ / 2.0, 1, &seen)) {
    return false;
  }
  return seen == count_;
}

}  // namespace tcomp
