#include "spatial/rtree.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/logging.h"

namespace tcomp {

void Rect::Extend(const Rect& o) {
  min_x = std::min(min_x, o.min_x);
  min_y = std::min(min_y, o.min_y);
  max_x = std::max(max_x, o.max_x);
  max_y = std::max(max_y, o.max_y);
}

double Rect::EnlargementFor(const Rect& o) const {
  Rect grown = *this;
  grown.Extend(o);
  return grown.Area() - Area();
}

namespace {

double RectPointDistance2(const Rect& r, Point p) {
  double dx = std::max({r.min_x - p.x, 0.0, p.x - r.max_x});
  double dy = std::max({r.min_y - p.y, 0.0, p.y - r.max_y});
  return dx * dx + dy * dy;
}

}  // namespace

RTree::RTree(int max_entries)
    : max_entries_(max_entries), min_entries_(std::max(2, max_entries / 2)) {
  TCOMP_CHECK_GE(max_entries, 4);
}

int32_t RTree::NewNode(bool leaf, int32_t parent) {
  int32_t idx;
  if (!free_nodes_.empty()) {
    idx = free_nodes_.back();
    free_nodes_.pop_back();
    nodes_[idx] = Node{};
  } else {
    idx = static_cast<int32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  nodes_[idx].leaf = leaf;
  nodes_[idx].parent = parent;
  return idx;
}

Rect RTree::NodeRect(int32_t n) const {
  const Node& node = nodes_[n];
  TCOMP_DCHECK(!node.entries.empty());
  Rect r = node.entries[0].rect;
  for (size_t i = 1; i < node.entries.size(); ++i) {
    r.Extend(node.entries[i].rect);
  }
  return r;
}

void RTree::RefreshUpward(int32_t n) {
  while (nodes_[n].parent >= 0) {
    int32_t parent = nodes_[n].parent;
    for (Entry& e : nodes_[parent].entries) {
      if (e.child == n) {
        e.rect = NodeRect(n);
        break;
      }
    }
    n = parent;
  }
}

void RTree::HandleOverflow(int32_t n) {
  while (n >= 0 &&
         nodes_[n].entries.size() > static_cast<size_t>(max_entries_)) {
    // Quadratic split (Guttman): pick the pair wasting the most area as
    // seeds, then assign greedily by enlargement.
    std::vector<Entry> entries = std::move(nodes_[n].entries);
    size_t seed_a = 0, seed_b = 1;
    double worst = -1.0;
    for (size_t i = 0; i < entries.size(); ++i) {
      for (size_t j = i + 1; j < entries.size(); ++j) {
        Rect merged = entries[i].rect;
        merged.Extend(entries[j].rect);
        double waste = merged.Area() - entries[i].rect.Area() -
                       entries[j].rect.Area();
        if (waste > worst) {
          worst = waste;
          seed_a = i;
          seed_b = j;
        }
      }
    }

    int32_t sibling = NewNode(nodes_[n].leaf, nodes_[n].parent);
    std::vector<Entry> group_a = {entries[seed_a]};
    std::vector<Entry> group_b = {entries[seed_b]};
    Rect rect_a = entries[seed_a].rect;
    Rect rect_b = entries[seed_b].rect;
    for (size_t i = 0; i < entries.size(); ++i) {
      if (i == seed_a || i == seed_b) continue;
      size_t remaining = entries.size() - i;
      // Force-assign to honor the minimum fill.
      if (group_a.size() + remaining <= static_cast<size_t>(min_entries_)) {
        group_a.push_back(entries[i]);
        rect_a.Extend(entries[i].rect);
        continue;
      }
      if (group_b.size() + remaining <= static_cast<size_t>(min_entries_)) {
        group_b.push_back(entries[i]);
        rect_b.Extend(entries[i].rect);
        continue;
      }
      double grow_a = rect_a.EnlargementFor(entries[i].rect);
      double grow_b = rect_b.EnlargementFor(entries[i].rect);
      if (grow_a < grow_b || (grow_a == grow_b &&
                              group_a.size() <= group_b.size())) {
        group_a.push_back(entries[i]);
        rect_a.Extend(entries[i].rect);
      } else {
        group_b.push_back(entries[i]);
        rect_b.Extend(entries[i].rect);
      }
    }
    nodes_[n].entries = std::move(group_a);
    nodes_[sibling].entries = std::move(group_b);
    if (!nodes_[sibling].leaf) {
      for (const Entry& e : nodes_[sibling].entries) {
        nodes_[e.child].parent = sibling;
      }
    }

    int32_t parent = nodes_[n].parent;
    if (parent < 0) {
      // Root split: grow the tree.
      int32_t new_root = NewNode(/*leaf=*/false, -1);
      nodes_[n].parent = new_root;
      nodes_[sibling].parent = new_root;
      nodes_[new_root].entries.push_back(Entry{NodeRect(n), n, 0});
      nodes_[new_root].entries.push_back(Entry{NodeRect(sibling), sibling,
                                               0});
      root_ = new_root;
      return;
    }
    for (Entry& e : nodes_[parent].entries) {
      if (e.child == n) {
        e.rect = NodeRect(n);
        break;
      }
    }
    nodes_[parent].entries.push_back(Entry{NodeRect(sibling), sibling, 0});
    n = parent;
  }
  if (n >= 0) RefreshUpward(n);
}

void RTree::Insert(ObjectId id, Point p) {
  Rect r = Rect::ForPoint(p);
  if (root_ < 0) {
    root_ = NewNode(/*leaf=*/true, -1);
  }
  // Choose leaf by least enlargement, ties by smaller area.
  int32_t n = root_;
  while (!nodes_[n].leaf) {
    Entry* best = nullptr;
    double best_growth = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (Entry& e : nodes_[n].entries) {
      double growth = e.rect.EnlargementFor(r);
      double area = e.rect.Area();
      if (growth < best_growth ||
          (growth == best_growth && area < best_area)) {
        best = &e;
        best_growth = growth;
        best_area = area;
      }
    }
    best->rect.Extend(r);
    n = best->child;
  }
  nodes_[n].entries.push_back(Entry{r, -1, id});
  ++count_;
  if (nodes_[n].entries.size() > static_cast<size_t>(max_entries_)) {
    HandleOverflow(n);
  } else {
    RefreshUpward(n);
  }
}

void RTree::CollectPoints(int32_t n, std::vector<Entry>* out) const {
  const Node& node = nodes_[n];
  if (node.leaf) {
    out->insert(out->end(), node.entries.begin(), node.entries.end());
    return;
  }
  for (const Entry& e : node.entries) CollectPoints(e.child, out);
}

bool RTree::Delete(ObjectId id, Point p) {
  if (root_ < 0) return false;
  Rect r = Rect::ForPoint(p);
  // Find the leaf holding the entry.
  int32_t found_leaf = -1;
  size_t found_idx = 0;
  std::vector<int32_t> stack = {root_};
  while (!stack.empty()) {
    int32_t n = stack.back();
    stack.pop_back();
    const Node& node = nodes_[n];
    if (node.leaf) {
      for (size_t i = 0; i < node.entries.size(); ++i) {
        if (node.entries[i].id == id &&
            node.entries[i].rect.min_x == p.x &&
            node.entries[i].rect.min_y == p.y) {
          found_leaf = n;
          found_idx = i;
          break;
        }
      }
      if (found_leaf >= 0) break;
    } else {
      for (const Entry& e : node.entries) {
        if (e.rect.Intersects(r)) stack.push_back(e.child);
      }
    }
  }
  if (found_leaf < 0) return false;

  nodes_[found_leaf].entries.erase(nodes_[found_leaf].entries.begin() +
                                   static_cast<int64_t>(found_idx));
  --count_;

  // Condense: walk upward removing underfull nodes; orphaned points are
  // reinserted (point tree — subtrees reduce to their points).
  std::vector<Entry> orphans;
  int32_t n = found_leaf;
  while (n != root_ &&
         nodes_[n].entries.size() < static_cast<size_t>(min_entries_)) {
    int32_t parent = nodes_[n].parent;
    CollectPoints(n, &orphans);
    auto& pe = nodes_[parent].entries;
    for (size_t i = 0; i < pe.size(); ++i) {
      if (pe[i].child == n) {
        pe.erase(pe.begin() + static_cast<int64_t>(i));
        break;
      }
    }
    free_nodes_.push_back(n);
    n = parent;
  }
  if (!nodes_[n].entries.empty()) RefreshUpward(n);

  // Shrink the root: a non-leaf root with one child hands over.
  while (root_ >= 0 && !nodes_[root_].leaf &&
         nodes_[root_].entries.size() == 1) {
    int32_t child = nodes_[root_].entries[0].child;
    nodes_[child].parent = -1;
    free_nodes_.push_back(root_);
    root_ = child;
  }
  if (root_ >= 0 && nodes_[root_].leaf && nodes_[root_].entries.empty() &&
      count_ == 0) {
    free_nodes_.push_back(root_);
    root_ = -1;
  }

  count_ -= orphans.size();
  for (const Entry& e : orphans) {
    Insert(e.id, Point{e.rect.min_x, e.rect.min_y});
  }
  return true;
}

bool RTree::Update(ObjectId id, Point from, Point to) {
  if (!Delete(id, from)) return false;
  Insert(id, to);
  return true;
}

std::vector<ObjectId> RTree::Search(Point center, double radius) const {
  std::vector<ObjectId> out;
  if (root_ < 0) return out;
  double r2 = radius * radius;
  Rect query{center.x - radius, center.y - radius, center.x + radius,
             center.y + radius};
  std::vector<int32_t> stack = {root_};
  while (!stack.empty()) {
    int32_t n = stack.back();
    stack.pop_back();
    ++nodes_visited_;
    const Node& node = nodes_[n];
    if (node.leaf) {
      for (const Entry& e : node.entries) {
        Point p{e.rect.min_x, e.rect.min_y};
        if (WithinEps(p, center, r2)) out.push_back(e.id);
      }
    } else {
      for (const Entry& e : node.entries) {
        if (e.rect.Intersects(query) &&
            RectPointDistance2(e.rect, center) <= r2) {
          stack.push_back(e.child);
        }
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

int RTree::height() const {
  if (root_ < 0) return 0;
  int h = 1;
  int32_t n = root_;
  while (!nodes_[n].leaf) {
    n = nodes_[n].entries[0].child;
    ++h;
  }
  return h;
}

void RTree::BulkLoad(const std::vector<ObjectPosition>& items) {
  nodes_.clear();
  free_nodes_.clear();
  root_ = -1;
  count_ = items.size();
  if (items.empty()) return;

  // Sort-Tile-Recursive: sort by x, slice into vertical strips of
  // ~sqrt(n/M) width, sort each strip by y, pack leaves.
  std::vector<ObjectPosition> sorted = items;
  std::sort(sorted.begin(), sorted.end(),
            [](const ObjectPosition& a, const ObjectPosition& b) {
              if (a.pos.x != b.pos.x) return a.pos.x < b.pos.x;
              return a.pos.y < b.pos.y;
            });
  const size_t M = static_cast<size_t>(max_entries_);
  size_t leaf_count = (sorted.size() + M - 1) / M;
  size_t strips = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(leaf_count))));
  size_t per_strip = (sorted.size() + strips - 1) / strips;

  std::vector<int32_t> level;  // current level's node indices
  for (size_t s = 0; s < strips; ++s) {
    size_t begin = s * per_strip;
    if (begin >= sorted.size()) break;
    size_t end = std::min(sorted.size(), begin + per_strip);
    std::sort(sorted.begin() + static_cast<int64_t>(begin),
              sorted.begin() + static_cast<int64_t>(end),
              [](const ObjectPosition& a, const ObjectPosition& b) {
                if (a.pos.y != b.pos.y) return a.pos.y < b.pos.y;
                return a.pos.x < b.pos.x;
              });
    for (size_t i = begin; i < end; i += M) {
      int32_t leaf = NewNode(/*leaf=*/true, -1);
      for (size_t k = i; k < std::min(end, i + M); ++k) {
        nodes_[leaf].entries.push_back(
            Entry{Rect::ForPoint(sorted[k].pos), -1, sorted[k].id});
      }
      level.push_back(leaf);
    }
  }

  // Pack upper levels until one root remains.
  while (level.size() > 1) {
    std::vector<int32_t> upper;
    for (size_t i = 0; i < level.size(); i += M) {
      int32_t n = NewNode(/*leaf=*/false, -1);
      for (size_t k = i; k < std::min(level.size(), i + M); ++k) {
        nodes_[level[k]].parent = n;
        nodes_[n].entries.push_back(Entry{NodeRect(level[k]), level[k], 0});
      }
      upper.push_back(n);
    }
    level = std::move(upper);
  }
  root_ = level[0];
}

bool RTree::CheckNode(int32_t n, int depth, int leaf_depth,
                      size_t* points) const {
  const Node& node = nodes_[n];
  if (node.leaf) {
    if (depth != leaf_depth) return false;
    *points += node.entries.size();
    return true;
  }
  for (const Entry& e : node.entries) {
    if (nodes_[e.child].parent != n) return false;
    Rect actual = NodeRect(e.child);
    if (actual.min_x < e.rect.min_x - 1e-9 ||
        actual.min_y < e.rect.min_y - 1e-9 ||
        actual.max_x > e.rect.max_x + 1e-9 ||
        actual.max_y > e.rect.max_y + 1e-9) {
      return false;
    }
    if (!CheckNode(e.child, depth + 1, leaf_depth, points)) return false;
  }
  return true;
}

bool RTree::CheckInvariants() const {
  if (root_ < 0) return count_ == 0;
  size_t points = 0;
  if (!CheckNode(root_, 1, height(), &points)) return false;
  return points == count_;
}

Clustering DbscanRtree(const Snapshot& snapshot, const DbscanParams& params,
                       RTree* tree, const Snapshot* previous) {
  if (previous == nullptr) {
    std::vector<ObjectPosition> items;
    items.reserve(snapshot.size());
    for (size_t i = 0; i < snapshot.size(); ++i) {
      items.push_back(ObjectPosition{snapshot.id(i), snapshot.pos(i)});
    }
    tree->BulkLoad(items);
  } else {
    // Incremental maintenance: delete+reinsert every moved object —
    // the per-snapshot update pattern the paper cites as too costly.
    // One linear merge instead of a binary search per object.
    for (const IdMergeItem& m :
         MergeIdSequences(previous->ids(), snapshot.ids())) {
      if (m.index_b == Snapshot::kNpos) {
        tree->Delete(m.id, previous->pos(m.index_a));
      } else if (m.index_a == Snapshot::kNpos) {
        tree->Insert(m.id, snapshot.pos(m.index_b));
      } else if (snapshot.pos(m.index_b).x != previous->pos(m.index_a).x ||
                 snapshot.pos(m.index_b).y != previous->pos(m.index_a).y) {
        tree->Update(m.id, previous->pos(m.index_a),
                     snapshot.pos(m.index_b));
      }
    }
  }

  const size_t n = snapshot.size();
  std::vector<std::vector<uint32_t>> neighbors(n);
  for (uint32_t i = 0; i < n; ++i) {
    std::vector<ObjectId> hits =
        tree->Search(snapshot.pos(i), params.epsilon);
    neighbors[i].reserve(hits.size());
    for (ObjectId id : hits) {
      size_t idx = snapshot.IndexOf(id);
      TCOMP_DCHECK(idx != Snapshot::kNpos);
      neighbors[i].push_back(static_cast<uint32_t>(idx));
    }
    // Search returns id-sorted hits; indices are id-ordered too.
  }
  std::vector<bool> core(n, false);
  for (uint32_t i = 0; i < n; ++i) {
    core[i] = neighbors[i].size() >= static_cast<size_t>(params.mu);
  }
  return internal::BuildClusteringFromCores(snapshot, core, neighbors);
}

}  // namespace tcomp
