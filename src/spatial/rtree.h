#ifndef TCOMP_SPATIAL_RTREE_H_
#define TCOMP_SPATIAL_RTREE_H_

#include <cstdint>
#include <vector>

#include "core/dbscan.h"
#include "core/snapshot.h"
#include "core/types.h"

namespace tcomp {

/// Axis-aligned bounding rectangle.
struct Rect {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;

  static Rect ForPoint(Point p) { return {p.x, p.y, p.x, p.y}; }

  bool Intersects(const Rect& o) const {
    return min_x <= o.max_x && o.min_x <= max_x && min_y <= o.max_y &&
           o.min_y <= max_y;
  }
  void Extend(const Rect& o);
  double Area() const { return (max_x - min_x) * (max_y - min_y); }
  double EnlargementFor(const Rect& o) const;
};

/// A point R-tree (Guttman 1984, quadratic split) with STR bulk loading
/// and incremental insert/delete.
///
/// This exists to *measure the paper's motivation*, not to serve the
/// discovery pipeline: Section IV argues that "maintaining traditional
/// spatial indexes (such as R-tree or quad-tree) at each time snapshot
/// incurs high cost" [21], which is why traveling buddies store object
/// relationships instead of coordinates. bench_index_maintenance puts
/// that claim under a stopwatch: per-snapshot rebuild vs. incremental
/// delete+reinsert vs. buddy maintenance.
class RTree {
 public:
  /// `max_entries` per node (min is max/2, classic 40% fill on splits).
  explicit RTree(int max_entries = 8);

  /// Discards contents and bulk-loads with Sort-Tile-Recursive packing.
  void BulkLoad(const std::vector<ObjectPosition>& items);

  void Insert(ObjectId id, Point p);

  /// Removes the entry (id at position p); returns false if absent.
  /// The position must match what was inserted (point R-tree).
  bool Delete(ObjectId id, Point p);

  /// Updates an object's position (delete + reinsert — the maintenance
  /// pattern whose cost the paper cites).
  bool Update(ObjectId id, Point from, Point to);

  /// Ids of all points within Euclidean `radius` of `center`, ascending.
  std::vector<ObjectId> Search(Point center, double radius) const;

  size_t size() const { return count_; }
  int height() const;
  /// Nodes visited by queries since the last ResetStats (cost metric).
  int64_t nodes_visited() const { return nodes_visited_; }
  void ResetStats() { nodes_visited_ = 0; }

  /// Internal consistency check (tests): every child rect within its
  /// parent rect, leaf depth uniform, entry count matches.
  bool CheckInvariants() const;

 private:
  struct Entry {
    Rect rect;
    int32_t child = -1;  // internal: node index; leaf: -1
    ObjectId id = 0;     // leaf payload
  };
  struct Node {
    bool leaf = true;
    int32_t parent = -1;
    std::vector<Entry> entries;
  };

  int32_t NewNode(bool leaf, int32_t parent);
  Rect NodeRect(int32_t n) const;
  /// Refreshes the parent-entry rects from `n` up to the root.
  void RefreshUpward(int32_t n);
  /// Splits overfull node `n`, propagating splits upward.
  void HandleOverflow(int32_t n);
  /// Collects every point entry in `n`'s subtree.
  void CollectPoints(int32_t n, std::vector<Entry>* out) const;
  bool CheckNode(int32_t n, int depth, int leaf_depth,
                 size_t* points) const;

  int max_entries_;
  int min_entries_;
  std::vector<Node> nodes_;
  std::vector<int32_t> free_nodes_;
  int32_t root_ = -1;
  size_t count_ = 0;
  mutable int64_t nodes_visited_ = 0;
};

/// Reference DBSCAN whose ε-neighborhood queries go through an R-tree.
/// Output matches Dbscan()/DbscanGrid() exactly. `rebuild` selects the
/// maintenance strategy being measured: true bulk-loads a fresh tree for
/// the snapshot, false incrementally Updates `tree` from the previous
/// positions (tree must then contain exactly the previous snapshot).
Clustering DbscanRtree(const Snapshot& snapshot, const DbscanParams& params,
                       RTree* tree, const Snapshot* previous);

}  // namespace tcomp

#endif  // TCOMP_SPATIAL_RTREE_H_
