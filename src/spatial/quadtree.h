#ifndef TCOMP_SPATIAL_QUADTREE_H_
#define TCOMP_SPATIAL_QUADTREE_H_

#include <cstdint>
#include <vector>

#include "core/types.h"

namespace tcomp {

/// A bucket PR-quadtree over a fixed square region — the second
/// "traditional spatial index" the paper names when motivating traveling
/// buddies (Section IV). Supports insert, delete, point moves, and
/// circular range queries; bench_index_maintenance measures its
/// per-snapshot maintenance cost against the alternatives.
class QuadTree {
 public:
  /// Indexes points inside the square [origin, origin+extent)²; points
  /// outside are clamped into the boundary cells (the generators keep
  /// objects in-region, the clamp just avoids UB on GPS noise).
  QuadTree(Point origin, double extent, int bucket_capacity = 16,
           int max_depth = 16);

  void Insert(ObjectId id, Point p);
  bool Delete(ObjectId id, Point p);
  bool Update(ObjectId id, Point from, Point to);

  /// Ids within Euclidean `radius` of `center`, ascending.
  std::vector<ObjectId> Search(Point center, double radius) const;

  size_t size() const { return count_; }
  int64_t nodes_visited() const { return nodes_visited_; }
  void ResetStats() { nodes_visited_ = 0; }
  void Clear();

  /// Consistency check: every stored point inside its cell, counts add
  /// up, depth bounded.
  bool CheckInvariants() const;

 private:
  struct Item {
    ObjectId id;
    Point pos;
  };
  struct Node {
    // children[0..3] = NW, NE, SW, SE; -1 when this is a leaf.
    int32_t children[4] = {-1, -1, -1, -1};
    std::vector<Item> items;  // leaf payload
    bool leaf = true;
  };

  Point Clamp(Point p) const;
  int Quadrant(Point p, Point center) const;
  void Split(int32_t n, Point center, double half, int depth);
  bool CheckNode(int32_t n, Point center, double half, int depth,
                 size_t* seen) const;

  Point origin_;
  double extent_;
  int bucket_capacity_;
  int max_depth_;
  std::vector<Node> nodes_;
  size_t count_ = 0;
  mutable int64_t nodes_visited_ = 0;
};

}  // namespace tcomp

#endif  // TCOMP_SPATIAL_QUADTREE_H_
