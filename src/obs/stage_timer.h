#ifndef TCOMP_OBS_STAGE_TIMER_H_
#define TCOMP_OBS_STAGE_TIMER_H_

#include <atomic>

#include "core/stage.h"
#include "obs/metrics.h"

namespace tcomp {

/// StageTimerSink backed by a MetricsRegistry: one
/// `tcomp_stage_seconds{stage="..."}` histogram per stage, all registered
/// at construction so every consumer exposes the identical series set and
/// the hot path is a few relaxed atomic adds. Also keeps the most recent
/// value per stage (atomic doubles) so the pipeline can assemble a
/// per-snapshot breakdown for the slow-snapshot warning without touching
/// the histograms again.
///
/// The Stage enum and the StageTimerSink interface live in core/stage.h
/// so the algorithm layer never includes obs/ headers.
class MetricsStageSink : public StageTimerSink {
 public:
  explicit MetricsStageSink(MetricsRegistry* registry);

  void RecordStage(Stage stage, double seconds) override;

  LatencyHistogram* histogram(Stage stage) const {
    return histograms_[static_cast<int>(stage)];
  }
  /// Seconds from the most recent RecordStage() for `stage` (0 before the
  /// first sample). Monitoring-grade: reads are atomic but a concurrent
  /// recorder may land between two reads of different stages.
  double last_seconds(Stage stage) const {
    return last_seconds_[static_cast<int>(stage)].load(
        std::memory_order_relaxed);
  }

 private:
  LatencyHistogram* histograms_[kStageCount];
  std::atomic<double> last_seconds_[kStageCount] = {};
};

}  // namespace tcomp

#endif  // TCOMP_OBS_STAGE_TIMER_H_
