#ifndef TCOMP_OBS_METRICS_H_
#define TCOMP_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace tcomp {

/// Monotonic event counter. Value operations are lock-free relaxed
/// atomics — cheap enough for the ingest hot path — and the counter is
/// owned by a MetricsRegistry, so its address is stable for the
/// registry's lifetime and can be cached by instrumented code.
class MetricCounter {
 public:
  void Increment() { Add(1); }
  void Add(uint64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  /// Overwrites the value. Used by code that keeps its authoritative
  /// counters elsewhere (e.g. under a pipeline mutex) and syncs them into
  /// the registry at exposition time; such counters stay monotonic
  /// because their source is.
  void Set(uint64_t v) { value_.store(v, std::memory_order_relaxed); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (queue depth, peak sizes, ...).
class MetricGauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Fixed log2-bucket latency histogram. Recording is a handful of relaxed
/// atomic adds — no allocation, no lock, no floating-point accumulation
/// shared across threads — so it is safe in the worker hot loop and for
/// concurrent recorders.
///
/// Buckets are powers of two in *microseconds*: bucket 0 counts samples
/// below 1 µs, bucket i (i ≥ 1) counts samples in [2^(i-1), 2^i) µs, and
/// one overflow bucket catches everything at or above 2^(kBucketCount-1)
/// µs (≈ 67 s). Bucket boundaries are compile-time constants, so two
/// histograms always expose byte-identical bucket label sets.
class LatencyHistogram {
 public:
  /// Finite buckets; upper bound of bucket i is 2^i µs. The last finite
  /// bound is 2^(kBucketCount-1) µs ≈ 67.1 s, wide enough for any stage
  /// this codebase times.
  static constexpr int kBucketCount = 27;

  /// Upper bound of finite bucket `i`, in seconds.
  static double BucketUpperBoundSeconds(int i) {
    return static_cast<double>(uint64_t{1} << i) * 1e-6;
  }

  void Record(double seconds);

  /// Point-in-time copy with derived quantiles. Concurrent recorders make
  /// the copy approximate (counts may be mid-update), but every read is a
  /// valid atomic load, so the snapshot is always well-formed.
  struct Snapshot {
    uint64_t buckets[kBucketCount + 1] = {};  // last slot = overflow
    uint64_t count = 0;
    double sum_seconds = 0.0;
    /// Upper bound (seconds) of the bucket holding the q-quantile sample;
    /// +inf when it lands in the overflow bucket, 0 when count == 0.
    /// Deterministic for a given bucket content — no interpolation.
    double Quantile(double q) const;
    double p50() const { return Quantile(0.50); }
    double p95() const { return Quantile(0.95); }
    double p99() const { return Quantile(0.99); }
  };
  Snapshot Snap() const;

 private:
  std::atomic<uint64_t> buckets_[kBucketCount + 1] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_nanos_{0};
};

/// Process-local metric registry: owns counters, gauges, and histograms
/// and renders them as deterministic, name-sorted Prometheus-style text
/// or JSON. Registration takes a mutex and may allocate; it is meant for
/// setup time (instrumented code caches the returned pointer and then
/// records lock-free). Registering the same family+labels again returns
/// the existing instrument.
///
/// Exposition determinism: families iterate in name order and series in
/// label order (both std::map), histogram bucket lines in ascending `le`
/// order, and all numeric formatting goes through fixed printf formats —
/// two registries with the same instruments produce byte-identical
/// name/label text, which the golden test pins.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// `labels` is the pre-rendered label body without braces, e.g.
  /// `stage="cluster"`, or empty for an unlabeled series. `help` is kept
  /// from the first registration of a family.
  MetricCounter* GetCounter(const std::string& family,
                            const std::string& labels,
                            const std::string& help);
  MetricGauge* GetGauge(const std::string& family, const std::string& labels,
                        const std::string& help);
  LatencyHistogram* GetHistogram(const std::string& family,
                                 const std::string& labels,
                                 const std::string& help);

  /// Prometheus-style text: `# HELP` / `# TYPE` per family, then one line
  /// per series (histograms expand to `_bucket{...,le="..."}`, `_sum`,
  /// `_count`). Name-sorted and byte-deterministic in names/labels.
  std::string ExpositionText() const;

  /// The same content as a single JSON object with `counters`, `gauges`,
  /// and `histograms` keys (histograms carry count/sum/p50/p95/p99 and
  /// the full bucket array). Name-sorted.
  std::string JsonText() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Series {
    std::unique_ptr<MetricCounter> counter;
    std::unique_ptr<MetricGauge> gauge;
    std::unique_ptr<LatencyHistogram> histogram;
  };
  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    std::map<std::string, Series> series;  // key: label body
  };

  Family* GetFamily(const std::string& name, Kind kind,
                    const std::string& help);

  mutable std::mutex mu_;  // guards the maps; instrument values are atomic
  std::map<std::string, Family> families_;
};

}  // namespace tcomp

#endif  // TCOMP_OBS_METRICS_H_
