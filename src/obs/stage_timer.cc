#include "obs/stage_timer.h"

#include <string>

namespace tcomp {

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kIngestAdmission:
      return "ingest_admission";
    case Stage::kReorderHold:
      return "reorder_hold";
    case Stage::kSnapshotClose:
      return "snapshot_close";
    case Stage::kMaintain:
      return "maintain";
    case Stage::kCluster:
      return "cluster";
    case Stage::kIntersect:
      return "intersect";
    case Stage::kClosure:
      return "closure";
    case Stage::kCheckpointWrite:
      return "checkpoint_write";
    case Stage::kShardRoute:
      return "shard_route";
    case Stage::kShardCluster:
      return "shard_cluster";
    case Stage::kMergeStitch:
      return "merge_stitch";
  }
  return "unknown";
}

MetricsStageSink::MetricsStageSink(MetricsRegistry* registry) {
  for (int i = 0; i < kStageCount; ++i) {
    std::string labels = "stage=\"";
    labels += StageName(static_cast<Stage>(i));
    labels += '"';
    histograms_[i] = registry->GetHistogram(
        "tcomp_stage_seconds", labels,
        "Per-snapshot wall time of each pipeline stage, in seconds");
  }
}

void MetricsStageSink::RecordStage(Stage stage, double seconds) {
  histograms_[static_cast<int>(stage)]->Record(seconds);
  last_seconds_[static_cast<int>(stage)].store(seconds,
                                               std::memory_order_relaxed);
}

}  // namespace tcomp
