#include "obs/stage_timer.h"

#include <string>

namespace tcomp {

MetricsStageSink::MetricsStageSink(MetricsRegistry* registry) {
  for (int i = 0; i < kStageCount; ++i) {
    std::string labels = "stage=\"";
    labels += StageName(static_cast<Stage>(i));
    labels += '"';
    histograms_[i] = registry->GetHistogram(
        "tcomp_stage_seconds", labels,
        "Per-snapshot wall time of each pipeline stage, in seconds");
  }
}

void MetricsStageSink::RecordStage(Stage stage, double seconds) {
  histograms_[static_cast<int>(stage)]->Record(seconds);
  last_seconds_[static_cast<int>(stage)].store(seconds,
                                               std::memory_order_relaxed);
}

}  // namespace tcomp
