#include "obs/discovery_metrics.h"

namespace tcomp {

void ExportDiscoveryMetrics(const DiscoveryStats& stats,
                            int64_t companions_distinct,
                            MetricsRegistry* registry) {
  auto counter = [&](const char* name, const char* help, int64_t value) {
    registry->GetCounter(name, "", help)
        ->Set(static_cast<uint64_t>(value < 0 ? 0 : value));
  };
  auto gauge = [&](const char* name, const char* help, int64_t value) {
    registry->GetGauge(name, "", help)->Set(value);
  };
  counter("tcomp_snapshots_processed_total",
          "Snapshots fed through the discoverer", stats.snapshots);
  counter("tcomp_intersections_total",
          "Candidate x cluster intersection operations (Figs. 4/6/13)",
          stats.intersections);
  counter("tcomp_distance_ops_total",
          "Pairwise distance evaluations in the clustering stage",
          stats.distance_ops);
  counter("tcomp_companions_reported_total",
          "Companion qualification events before deduplication",
          stats.companions_reported);
  counter("tcomp_buddy_pairs_checked_total",
          "Buddy pairs examined by Lemma 3 (BU only)",
          stats.buddy_pairs_checked);
  counter("tcomp_buddy_pairs_pruned_total",
          "Buddy pairs pruned by Lemma 3 (BU only)",
          stats.buddy_pairs_pruned);
  counter("tcomp_buddies_total", "Sum of per-snapshot buddy counts (BU only)",
          stats.buddies_total);
  counter("tcomp_buddies_unchanged_total",
          "Sum of per-snapshot unchanged buddies (BU only)",
          stats.buddies_unchanged);
  counter("tcomp_cluster_reuse_total",
          "Object-snapshots whose neighborhood state the incremental "
          "clustering layer carried over",
          stats.cluster_reuse);
  counter("tcomp_cluster_dirty_total",
          "Object-snapshots re-probed by the incremental clustering layer",
          stats.cluster_dirty);
  counter("tcomp_cluster_full_rebuilds_total",
          "Snapshots where incremental clustering fell back to a full "
          "re-probe",
          stats.cluster_full_rebuilds);
  counter("tcomp_soa_batches_total",
          "Batches dispatched to the SoA eps-filter kernels",
          stats.soa_batches);
  counter("tcomp_soa_lanes_total",
          "Candidate lanes streamed through the SoA eps-filter kernels",
          stats.soa_lanes);
  gauge("tcomp_candidate_objects_peak",
        "Peak stored candidate-set size in objects (Figs. 15b-17b)",
        stats.candidate_objects_peak);
  gauge("tcomp_candidate_objects_last",
        "Candidate-set size after the most recent snapshot",
        stats.candidate_objects_last);
  gauge("tcomp_companions_distinct",
        "Deduplicated companion-log size", companions_distinct);
}

}  // namespace tcomp
