#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace tcomp {
namespace {

/// Index of the finite bucket covering `us` microseconds: 0 for values
/// below 1 µs, otherwise floor(log2(us)) + 1 — i.e. the bit width of the
/// integer microsecond value.
int BucketIndex(uint64_t us) {
  int width = 0;
  while (us != 0) {
    us >>= 1;
    ++width;
  }
  return width;
}

/// Formats a double with a fixed, locale-independent printf format so the
/// exposition bytes do not depend on stream state or platform defaults.
std::string FormatDouble(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

/// JSON has no literal for infinity; 1e999 overflows to +inf in every
/// consumer we care about (Python, jq) while staying a valid number token.
std::string JsonDouble(double v) {
  if (std::isinf(v)) return v > 0 ? "1e999" : "-1e999";
  return FormatDouble(v);
}

const char* KindName(int kind) {
  switch (kind) {
    case 0:
      return "counter";
    case 1:
      return "gauge";
    default:
      return "histogram";
  }
}

}  // namespace

void LatencyHistogram::Record(double seconds) {
  if (!(seconds >= 0.0)) seconds = 0.0;  // NaN/negative clock glitches
  double us = seconds * 1e6;
  int bucket;
  if (us >= static_cast<double>(uint64_t{1} << (kBucketCount - 1))) {
    bucket = kBucketCount;  // overflow slot
  } else {
    bucket = BucketIndex(static_cast<uint64_t>(us));
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(static_cast<uint64_t>(seconds * 1e9),
                       std::memory_order_relaxed);
}

LatencyHistogram::Snapshot LatencyHistogram::Snap() const {
  Snapshot snap;
  for (int i = 0; i <= kBucketCount; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum_seconds =
      static_cast<double>(sum_nanos_.load(std::memory_order_relaxed)) * 1e-9;
  return snap;
}

double LatencyHistogram::Snapshot::Quantile(double q) const {
  if (count == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-quantile sample, 1-based: ceil(q·count), with a small
  // backoff so 0.95 × 100 (inexact in binary) still lands on rank 95 —
  // the tests pin exact hand-computed answers.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count) - 1e-9));
  if (rank == 0) rank = 1;
  if (rank > count) rank = count;
  uint64_t cumulative = 0;
  for (int i = 0; i < kBucketCount; ++i) {
    cumulative += buckets[i];
    if (cumulative >= rank) return BucketUpperBoundSeconds(i);
  }
  return std::numeric_limits<double>::infinity();
}

MetricsRegistry::Family* MetricsRegistry::GetFamily(const std::string& name,
                                                    Kind kind,
                                                    const std::string& help) {
  Family& fam = families_[name];
  if (fam.series.empty()) {
    fam.kind = kind;
    fam.help = help;
  }
  return &fam;
}

MetricCounter* MetricsRegistry::GetCounter(const std::string& family,
                                           const std::string& labels,
                                           const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* fam = GetFamily(family, Kind::kCounter, help);
  Series& s = fam->series[labels];
  if (s.counter == nullptr) s.counter = std::make_unique<MetricCounter>();
  return s.counter.get();
}

MetricGauge* MetricsRegistry::GetGauge(const std::string& family,
                                       const std::string& labels,
                                       const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* fam = GetFamily(family, Kind::kGauge, help);
  Series& s = fam->series[labels];
  if (s.gauge == nullptr) s.gauge = std::make_unique<MetricGauge>();
  return s.gauge.get();
}

LatencyHistogram* MetricsRegistry::GetHistogram(const std::string& family,
                                                const std::string& labels,
                                                const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Family* fam = GetFamily(family, Kind::kHistogram, help);
  Series& s = fam->series[labels];
  if (s.histogram == nullptr) {
    s.histogram = std::make_unique<LatencyHistogram>();
  }
  return s.histogram.get();
}

std::string MetricsRegistry::ExpositionText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, fam] : families_) {
    out << "# HELP " << name << ' ' << fam.help << '\n';
    out << "# TYPE " << name << ' '
        << KindName(static_cast<int>(fam.kind)) << '\n';
    for (const auto& [labels, series] : fam.series) {
      switch (fam.kind) {
        case Kind::kCounter:
          out << name;
          if (!labels.empty()) out << '{' << labels << '}';
          out << ' ' << series.counter->Value() << '\n';
          break;
        case Kind::kGauge:
          out << name;
          if (!labels.empty()) out << '{' << labels << '}';
          out << ' ' << series.gauge->Value() << '\n';
          break;
        case Kind::kHistogram: {
          LatencyHistogram::Snapshot snap = series.histogram->Snap();
          std::string prefix = labels.empty() ? "" : labels + ",";
          uint64_t cumulative = 0;
          for (int i = 0; i < LatencyHistogram::kBucketCount; ++i) {
            cumulative += snap.buckets[i];
            out << name << "_bucket{" << prefix << "le=\""
                << FormatDouble(
                       LatencyHistogram::BucketUpperBoundSeconds(i))
                << "\"} " << cumulative << '\n';
          }
          cumulative += snap.buckets[LatencyHistogram::kBucketCount];
          out << name << "_bucket{" << prefix << "le=\"+Inf\"} "
              << cumulative << '\n';
          out << name << "_sum";
          if (!labels.empty()) out << '{' << labels << '}';
          out << ' ' << FormatDouble(snap.sum_seconds) << '\n';
          out << name << "_count";
          if (!labels.empty()) out << '{' << labels << '}';
          out << ' ' << snap.count << '\n';
          break;
        }
      }
    }
  }
  return out.str();
}

std::string MetricsRegistry::JsonText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  auto series_name = [](const std::string& name, const std::string& labels) {
    std::string full = name;
    if (!labels.empty()) {
      full += '{';
      for (char c : labels) {
        if (c == '"') full += '\\';
        full += c;
      }
      full += '}';
    }
    return full;
  };
  out << "{\n";
  for (int pass = 0; pass < 3; ++pass) {
    Kind want = static_cast<Kind>(pass);
    out << "  \"" << KindName(pass) << 's' << "\": {";
    bool first = true;
    for (const auto& [name, fam] : families_) {
      if (fam.kind != want) continue;
      for (const auto& [labels, series] : fam.series) {
        out << (first ? "\n" : ",\n");
        first = false;
        out << "    \"" << series_name(name, labels) << "\": ";
        switch (fam.kind) {
          case Kind::kCounter:
            out << series.counter->Value();
            break;
          case Kind::kGauge:
            out << series.gauge->Value();
            break;
          case Kind::kHistogram: {
            LatencyHistogram::Snapshot snap = series.histogram->Snap();
            out << "{\"count\": " << snap.count
                << ", \"sum_seconds\": " << JsonDouble(snap.sum_seconds)
                << ", \"p50\": " << JsonDouble(snap.p50())
                << ", \"p95\": " << JsonDouble(snap.p95())
                << ", \"p99\": " << JsonDouble(snap.p99())
                << ", \"buckets\": [";
            for (int i = 0; i <= LatencyHistogram::kBucketCount; ++i) {
              if (i > 0) out << ", ";
              out << snap.buckets[i];
            }
            out << "]}";
            break;
          }
        }
      }
    }
    out << (first ? "}" : "\n  }") << (pass + 1 < 3 ? ",\n" : "\n");
  }
  out << "}\n";
  return out.str();
}

}  // namespace tcomp
