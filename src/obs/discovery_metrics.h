#ifndef TCOMP_OBS_DISCOVERY_METRICS_H_
#define TCOMP_OBS_DISCOVERY_METRICS_H_

#include <cstdint>

#include "core/discoverer.h"
#include "obs/metrics.h"

namespace tcomp {

/// Publishes a DiscoveryStats snapshot into `registry` under stable
/// `tcomp_*` names (see DESIGN.md for the metric → paper-figure mapping).
/// Idempotent: series are registered on first call and overwritten on
/// every call, so callers sync at exposition time (QUERY metrics, the
/// batch --stats-json dump) rather than on the hot path. The counter
/// sources are monotonic, so Set() preserves counter semantics.
void ExportDiscoveryMetrics(const DiscoveryStats& stats,
                            int64_t companions_distinct,
                            MetricsRegistry* registry);

}  // namespace tcomp

#endif  // TCOMP_OBS_DISCOVERY_METRICS_H_
