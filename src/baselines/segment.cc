#include "baselines/segment.h"

#include <algorithm>
#include <cmath>

namespace tcomp {
namespace {

double Dot(Point a, Point b) { return a.x * b.x + a.y * b.y; }
double Cross(Point a, Point b) { return a.x * b.y - a.y * b.x; }

/// Perpendicular distance from `p` to the infinite line through the base
/// segment (s, e); `t_out` receives the projection parameter.
double PointToLine(Point p, Point s, Point e, double* t_out) {
  Point d = e - s;
  double len2 = Dot(d, d);
  if (len2 == 0.0) {
    *t_out = 0.0;
    return Distance(p, s);
  }
  double t = Dot(p - s, d) / len2;
  *t_out = t;
  Point proj = s + d * t;
  return Distance(p, proj);
}

/// log2(x+1): the practical guard against log(0) used by TraClus
/// implementations for MDL encoding lengths.
double Log2p1(double x) { return std::log2(x + 1.0); }

}  // namespace

SegmentDistanceComponents SegmentDistance(const Segment& a,
                                          const Segment& b) {
  // The longer segment is the base.
  const Segment& base = a.Length() >= b.Length() ? a : b;
  const Segment& other = a.Length() >= b.Length() ? b : a;

  SegmentDistanceComponents out;

  double t1, t2;
  double l_perp1 = PointToLine(other.start, base.start, base.end, &t1);
  double l_perp2 = PointToLine(other.end, base.start, base.end, &t2);
  if (l_perp1 + l_perp2 > 0.0) {
    out.perpendicular =
        (l_perp1 * l_perp1 + l_perp2 * l_perp2) / (l_perp1 + l_perp2);
  }

  // Parallel distance: distance from each projection to the nearer base
  // endpoint, measured outside the base segment; TraClus takes the min.
  double base_len = base.Length();
  auto overhang = [base_len](double t) {
    if (t < 0.0) return -t * base_len;
    if (t > 1.0) return (t - 1.0) * base_len;
    return 0.0;
  };
  out.parallel = std::min(overhang(t1), overhang(t2));

  // Angular distance.
  Point db = base.end - base.start;
  Point d_other = other.end - other.start;
  double other_len = other.Length();
  if (base_len == 0.0 || other_len == 0.0) {
    out.angular = 0.0;
  } else {
    double cosang = Dot(db, d_other) / (base_len * other_len);
    if (cosang < 0.0) {
      out.angular = other_len;  // θ ≥ 90°
    } else {
      double sinang =
          std::abs(Cross(db, d_other)) / (base_len * other_len);
      out.angular = other_len * sinang;
    }
  }
  return out;
}

std::vector<size_t> PartitionTrajectory(const std::vector<Point>& points,
                                        double cost_advantage) {
  std::vector<size_t> cps;
  const size_t n = points.size();
  if (n == 0) return cps;
  cps.push_back(0);
  if (n == 1) return cps;

  size_t start = 0;
  size_t length = 1;
  while (start + length < n) {
    size_t curr = start + length;
    // MDL(par): encode the shortcut (start→curr) plus the deviation of
    // the original points from it.
    double cost_par = Log2p1(Distance(points[start], points[curr]));
    Segment hypothesis{points[start], points[curr], 0};
    for (size_t k = start; k < curr; ++k) {
      Segment piece{points[k], points[k + 1], 0};
      SegmentDistanceComponents d = SegmentDistance(hypothesis, piece);
      // L(D|H): per-edge encoding cost of the deviation (TraClus eq. 5).
      cost_par += Log2p1(d.perpendicular) + Log2p1(d.angular);
    }

    // MDL(nopar): encode every original edge as-is (no deviation term).
    double cost_nopar = 0.0;
    for (size_t k = start; k < curr; ++k) {
      cost_nopar += Log2p1(Distance(points[k], points[k + 1]));
    }

    // length == 1 compares an edge against itself; floating-point residue
    // in the projection can make cost_par epsilon-greater, and a trigger
    // there would not advance `start` (infinite loop). A single edge is
    // never partitionable, so only consider longer hypotheses.
    if (length > 1 && cost_par > cost_nopar + cost_advantage) {
      cps.push_back(curr - 1);
      start = curr - 1;
      length = 1;
    } else {
      ++length;
    }
  }
  cps.push_back(n - 1);
  // Collapse a duplicate if the loop closed exactly at the end.
  if (cps.size() >= 2 && cps[cps.size() - 2] == cps.back()) cps.pop_back();
  return cps;
}

}  // namespace tcomp
