#include "baselines/swarm.h"

#include <algorithm>

#include "util/logging.h"
#include "util/sorted_ops.h"

namespace tcomp {
namespace {

/// Per-snapshot cluster labels, indexed [t][object_id]; -1 = noise/absent.
struct LabelMatrix {
  std::vector<std::vector<int32_t>> labels;
  std::vector<std::vector<ObjectSet>> clusters;  // [t][label] -> members
  ObjectId max_id = 0;
};

LabelMatrix BuildLabels(const SnapshotStream& stream,
                        const DbscanParams& params, int64_t* distance_ops) {
  LabelMatrix m;
  for (const Snapshot& s : stream) {
    if (!s.empty()) m.max_id = std::max(m.max_id, s.id(s.size() - 1));
  }
  m.labels.reserve(stream.size());
  m.clusters.reserve(stream.size());
  for (const Snapshot& s : stream) {
    Clustering c = Dbscan(s, params, distance_ops);
    std::vector<int32_t> row(m.max_id + 1, -1);
    for (size_t i = 0; i < s.size(); ++i) row[s.id(i)] = c.labels[i];
    m.labels.push_back(std::move(row));
    m.clusters.push_back(std::move(c.clusters));
  }
  return m;
}

/// The ObjectGrowth depth-first miner.
class ObjectGrowth {
 public:
  ObjectGrowth(const LabelMatrix& matrix, const SwarmParams& params,
               SwarmStats* stats)
      : m_(matrix),
        mino_(static_cast<size_t>(params.min_objects)),
        mint_(static_cast<size_t>(params.min_snapshots)),
        stats_(stats),
        count_(matrix.max_id + 1, 0),
        in_set_(matrix.max_id + 1, false) {}

  std::vector<Swarm> Mine() {
    for (ObjectId o = 0; o <= m_.max_id; ++o) {
      std::vector<int32_t> support;
      for (size_t t = 0; t < m_.labels.size(); ++t) {
        if (m_.labels[t][o] >= 0) {
          support.push_back(static_cast<int32_t>(t));
        }
      }
      ObjectSet set = {o};
      in_set_[o] = true;
      Grow(&set, support);
      in_set_[o] = false;
    }
    return std::move(results_);
  }

 private:
  void Bump(int64_t stack_objects) {
    if (stats_ == nullptr) return;
    int64_t now = stack_objects + reported_objects_;
    stats_->peak_candidate_objects =
        std::max(stats_->peak_candidate_objects, now);
  }

  void Grow(ObjectSet* set, const std::vector<int32_t>& support) {
    if (stats_ != nullptr) ++stats_->nodes_explored;
    if (support.size() < mint_) {
      if (stats_ != nullptr) ++stats_->apriori_pruned;
      return;
    }
    stack_objects_ += static_cast<int64_t>(set->size());
    Bump(stack_objects_);

    // One counting pass over the clusters containing this set in its
    // support snapshots: count[o'] = #snapshots of `support` where o'
    // shares the set's cluster.
    const ObjectId rep = set->front();
    std::vector<ObjectId> touched;
    for (int32_t t : support) {
      int32_t label = m_.labels[static_cast<size_t>(t)][rep];
      TCOMP_DCHECK(label >= 0);
      for (ObjectId o :
           m_.clusters[static_cast<size_t>(t)][static_cast<size_t>(label)]) {
        if (in_set_[o]) continue;
        if (count_[o] == 0) touched.push_back(o);
        ++count_[o];
      }
    }

    const ObjectId max_member = set->back();
    bool pruned = false;
    bool closed_forward = true;
    // Backward pruning: a smaller-id object with full support means a
    // lexicographically earlier branch enumerates this set's closure.
    for (ObjectId o : touched) {
      if (o < max_member && count_[o] == support.size()) {
        pruned = true;
        if (stats_ != nullptr) ++stats_->backward_pruned;
        break;
      }
    }

    if (!pruned) {
      // Forward extensions in ascending id order (determinism).
      std::vector<ObjectId> extensions;
      for (ObjectId o : touched) {
        if (o > max_member && count_[o] >= mint_) extensions.push_back(o);
        if (o > max_member && count_[o] == support.size()) {
          closed_forward = false;
        }
      }
      std::sort(extensions.begin(), extensions.end());

      // Counters must be clean before recursing (children run their own
      // counting pass).
      for (ObjectId o : touched) count_[o] = 0;
      touched.clear();

      for (ObjectId o : extensions) {
        std::vector<int32_t> sub;
        sub.reserve(support.size());
        for (int32_t t : support) {
          if (m_.labels[static_cast<size_t>(t)][o] ==
              m_.labels[static_cast<size_t>(t)][rep]) {
            sub.push_back(t);
          }
        }
        set->push_back(o);
        in_set_[o] = true;
        Grow(set, sub);
        in_set_[o] = false;
        set->pop_back();
      }

      if (closed_forward && set->size() >= mino_) {
        results_.push_back(Swarm{*set, support});
        reported_objects_ += static_cast<int64_t>(set->size());
        Bump(stack_objects_);
      }
    }

    for (ObjectId o : touched) count_[o] = 0;
    stack_objects_ -= static_cast<int64_t>(set->size());
  }

  const LabelMatrix& m_;
  const size_t mino_;
  const size_t mint_;
  SwarmStats* stats_;
  std::vector<uint32_t> count_;
  std::vector<bool> in_set_;
  std::vector<Swarm> results_;
  int64_t stack_objects_ = 0;
  int64_t reported_objects_ = 0;
};

}  // namespace

std::vector<Swarm> MineClosedSwarms(const SnapshotStream& stream,
                                    const SwarmParams& params,
                                    SwarmStats* stats) {
  TCOMP_CHECK_GT(params.min_objects, 0);
  TCOMP_CHECK_GT(params.min_snapshots, 0);
  int64_t distance_ops = 0;
  LabelMatrix matrix = BuildLabels(stream, params.cluster, &distance_ops);
  if (stats != nullptr) stats->distance_ops += distance_ops;
  ObjectGrowth miner(matrix, params, stats);
  return miner.Mine();
}

}  // namespace tcomp
