#include "baselines/traclus.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>

#include "util/logging.h"
#include "util/sorted_ops.h"

namespace tcomp {
namespace {

struct CellKey {
  int64_t cx;
  int64_t cy;
  bool operator==(const CellKey& o) const { return cx == o.cx && cy == o.cy; }
};

struct CellKeyHash {
  size_t operator()(const CellKey& k) const {
    uint64_t h = static_cast<uint64_t>(k.cx) * 0x9e3779b97f4a7c15ULL;
    h ^= static_cast<uint64_t>(k.cy) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
    return static_cast<size_t>(h);
  }
};

/// Extracts each object's trajectory (its position sequence over the
/// stream) keyed by object id.
std::unordered_map<ObjectId, std::vector<Point>> ExtractTrajectories(
    const SnapshotStream& stream) {
  std::unordered_map<ObjectId, std::vector<Point>> out;
  for (const Snapshot& s : stream) {
    for (size_t i = 0; i < s.size(); ++i) {
      out[s.id(i)].push_back(s.pos(i));
    }
  }
  return out;
}

/// Subdivides a segment into pieces no longer than `max_len`.
void EmitBounded(const Segment& seg, double max_len,
                 std::vector<Segment>* out) {
  double len = seg.Length();
  if (len <= max_len) {
    out->push_back(seg);
    return;
  }
  int pieces = static_cast<int>(std::ceil(len / max_len));
  Point delta = (seg.end - seg.start) / static_cast<double>(pieces);
  Point cursor = seg.start;
  for (int k = 0; k < pieces; ++k) {
    Point next = (k == pieces - 1) ? seg.end : cursor + delta;
    out->push_back(Segment{cursor, next, seg.object});
    cursor = next;
  }
}

}  // namespace

std::vector<SegmentCluster> RunTraClus(const SnapshotStream& stream,
                                       const TraClusParams& params,
                                       TraClusStats* stats) {
  TCOMP_CHECK_GT(params.epsilon, 0.0);
  TraClusStats local;

  // --- Phase 1: MDL partitioning into characteristic segments. ---
  std::vector<Segment> segments;
  {
    auto trajectories = ExtractTrajectories(stream);
    // Deterministic order.
    std::vector<ObjectId> ids;
    ids.reserve(trajectories.size());
    for (const auto& [oid, pts] : trajectories) ids.push_back(oid);
    std::sort(ids.begin(), ids.end());
    for (ObjectId oid : ids) {
      const std::vector<Point>& pts = trajectories[oid];
      std::vector<size_t> cps =
          PartitionTrajectory(pts, params.mdl_cost_advantage);
      local.characteristic_points += static_cast<int64_t>(cps.size());
      for (size_t k = 0; k + 1 < cps.size(); ++k) {
        Segment seg{pts[cps[k]], pts[cps[k + 1]], oid};
        if (seg.Length() == 0.0) continue;
        EmitBounded(seg, params.max_segment_length, &segments);
      }
    }
  }
  local.segments_total = static_cast<int64_t>(segments.size());

  // --- Phase 2: line-segment DBSCAN. ---
  // Spatial index on midpoints: two segments of length ≤ Lmax can only be
  // within distance ε if their midpoints are within ε + Lmax (each
  // component distance is ≥ midpoint distance − (len_a+len_b)/2).
  const double reach = params.epsilon + params.max_segment_length;
  const size_t m = segments.size();
  std::unordered_map<CellKey, std::vector<uint32_t>, CellKeyHash> grid;
  auto cell_of = [reach](Point p) {
    return CellKey{static_cast<int64_t>(std::floor(p.x / reach)),
                   static_cast<int64_t>(std::floor(p.y / reach))};
  };
  for (uint32_t i = 0; i < m; ++i) {
    grid[cell_of(segments[i].Midpoint())].push_back(i);
  }

  auto neighbors_of = [&](uint32_t i) {
    std::vector<uint32_t> result;
    CellKey c = cell_of(segments[i].Midpoint());
    for (int64_t dx = -1; dx <= 1; ++dx) {
      for (int64_t dy = -1; dy <= 1; ++dy) {
        auto it = grid.find(CellKey{c.cx + dx, c.cy + dy});
        if (it == grid.end()) continue;
        for (uint32_t j : it->second) {
          if (j == i) continue;
          ++local.segment_distance_ops;
          SegmentDistanceComponents d =
              SegmentDistance(segments[i], segments[j]);
          if (d.Total(params.w_perpendicular, params.w_parallel,
                      params.w_angular) <= params.epsilon) {
            result.push_back(j);
          }
        }
      }
    }
    std::sort(result.begin(), result.end());
    return result;
  };

  const size_t min_lines = static_cast<size_t>(params.min_lines);
  std::vector<int32_t> label(m, -2);  // -2 unvisited, -1 noise
  std::vector<bool> enqueued(m, false);
  int32_t next_label = 0;
  for (uint32_t i = 0; i < m; ++i) {
    if (label[i] != -2) continue;
    std::vector<uint32_t> seeds = neighbors_of(i);
    if (seeds.size() + 1 < min_lines) {
      label[i] = -1;
      continue;
    }
    int32_t cluster = next_label++;
    label[i] = cluster;
    // Standard DBSCAN expansion; `enqueued` keeps the queue duplicate-free
    // (neighbor lists overlap heavily inside dense corridors).
    std::vector<uint32_t> queue;
    for (uint32_t s : seeds) {
      queue.push_back(s);
      enqueued[s] = true;
    }
    for (size_t qi = 0; qi < queue.size(); ++qi) {
      uint32_t j = queue[qi];
      if (label[j] == -1) label[j] = cluster;  // border
      if (label[j] != -2) continue;
      label[j] = cluster;
      std::vector<uint32_t> js = neighbors_of(j);
      if (js.size() + 1 >= min_lines) {
        for (uint32_t s : js) {
          if (!enqueued[s] && label[s] <= -1) {
            queue.push_back(s);
            enqueued[s] = true;
          }
        }
      }
    }
    for (uint32_t s : queue) enqueued[s] = false;
  }

  // Assemble clusters; enforce trajectory cardinality ≥ min_lines.
  std::vector<SegmentCluster> clusters(
      static_cast<size_t>(std::max<int32_t>(next_label, 0)));
  for (uint32_t i = 0; i < m; ++i) {
    if (label[i] < 0) continue;
    SegmentCluster& c = clusters[static_cast<size_t>(label[i])];
    c.segments.push_back(segments[i]);
    c.objects.push_back(segments[i].object);
  }
  std::vector<SegmentCluster> result;
  for (SegmentCluster& c : clusters) {
    SortUnique(&c.objects);
    if (c.objects.size() >= min_lines) {
      result.push_back(std::move(c));
    }
  }

  if (stats != nullptr) {
    stats->segments_total += local.segments_total;
    stats->segment_distance_ops += local.segment_distance_ops;
    stats->characteristic_points += local.characteristic_points;
  }
  return result;
}

}  // namespace tcomp
