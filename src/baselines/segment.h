#ifndef TCOMP_BASELINES_SEGMENT_H_
#define TCOMP_BASELINES_SEGMENT_H_

#include <cstdint>
#include <vector>

#include "core/types.h"

namespace tcomp {

/// A directed line segment belonging to one object's trajectory.
struct Segment {
  Point start;
  Point end;
  ObjectId object = 0;

  double Length() const { return Distance(start, end); }
  Point Midpoint() const { return (start + end) / 2.0; }
};

/// The three TraClus distance components between segments (Lee et al.,
/// SIGMOD 2007). The longer segment acts as the base.
struct SegmentDistanceComponents {
  double perpendicular = 0.0;
  double parallel = 0.0;
  double angular = 0.0;

  double Total(double w_perp, double w_par, double w_ang) const {
    return w_perp * perpendicular + w_par * parallel + w_ang * angular;
  }
};

/// Computes the TraClus distance components:
///  * d⊥ — weighted mean (l⊥1²+l⊥2²)/(l⊥1+l⊥2) of the endpoint
///    projections of the shorter segment onto the longer;
///  * d∥ — min of the parallel overhangs;
///  * dθ — ‖shorter‖·sin θ (θ < 90°), ‖shorter‖ otherwise.
SegmentDistanceComponents SegmentDistance(const Segment& a,
                                          const Segment& b);

/// MDL-based approximate trajectory partitioning: returns the indices of
/// the characteristic points of `points` (always including the first and
/// last). `cost_advantage` biases against over-partitioning (the MDL
/// comparison uses costPar > costNopar + cost_advantage).
std::vector<size_t> PartitionTrajectory(const std::vector<Point>& points,
                                        double cost_advantage = 0.0);

}  // namespace tcomp

#endif  // TCOMP_BASELINES_SEGMENT_H_
