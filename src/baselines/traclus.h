#ifndef TCOMP_BASELINES_TRACLUS_H_
#define TCOMP_BASELINES_TRACLUS_H_

#include <cstdint>
#include <vector>

#include "baselines/segment.h"
#include "core/snapshot.h"
#include "core/types.h"

namespace tcomp {

/// Parameters of the TraClus baseline (Lee, Han, Whang — SIGMOD 2007):
/// partition-and-group sub-trajectory clustering. TraClus ignores time
/// entirely — the paper uses it to show that direction-based trajectory
/// clustering cannot recover traveling companions.
struct TraClusParams {
  /// Segment-distance threshold ε for the line-segment DBSCAN.
  double epsilon = 25.0;
  /// Density threshold: minimum number of ε-neighbor segments.
  int min_lines = 5;
  /// Distance-component weights (w⊥, w∥, wθ).
  double w_perpendicular = 1.0;
  double w_parallel = 1.0;
  double w_angular = 1.0;
  /// MDL partitioning bias (higher → fewer characteristic points).
  double mdl_cost_advantage = 0.0;
  /// Segments longer than this are subdivided before clustering; bounds
  /// the spatial-index search radius (engineering addition — documented
  /// in DESIGN.md; does not change which segments are ε-close).
  double max_segment_length = 500.0;
};

/// One sub-trajectory cluster.
struct SegmentCluster {
  std::vector<Segment> segments;
  /// Distinct objects contributing segments — the "object group" used
  /// when TraClus is scored against companion ground truth.
  ObjectSet objects;
};

struct TraClusStats {
  int64_t segments_total = 0;
  int64_t segment_distance_ops = 0;
  int64_t characteristic_points = 0;
};

/// Runs partition-and-group over a whole stream: each object's snapshot
/// sequence forms its trajectory; MDL partitioning extracts
/// characteristic segments; segments are density-clustered with the
/// TraClus distance. Clusters whose segments come from fewer than
/// `min_lines` distinct objects are discarded (trajectory-cardinality
/// check).
std::vector<SegmentCluster> RunTraClus(const SnapshotStream& stream,
                                       const TraClusParams& params,
                                       TraClusStats* stats = nullptr);

}  // namespace tcomp

#endif  // TCOMP_BASELINES_TRACLUS_H_
