#ifndef TCOMP_BASELINES_SWARM_H_
#define TCOMP_BASELINES_SWARM_H_

#include <cstdint>
#include <vector>

#include "core/dbscan.h"
#include "core/snapshot.h"
#include "core/types.h"

namespace tcomp {

/// Parameters of the swarm baseline (Li et al., VLDB 2010): a swarm is a
/// pair (O, T) with |O| ≥ min_objects objects that appear in a common
/// density cluster in at least min_snapshots snapshots — the snapshots
/// need NOT be consecutive (the "relaxed temporal" property that makes
/// swarms a superset of traveling companions).
struct SwarmParams {
  DbscanParams cluster;
  int min_objects = 10;    // mino — maps to the companion δs
  int min_snapshots = 10;  // mint — maps to the companion δt
};

/// A closed swarm: no proper object-superset has the same snapshot
/// support, and no extra snapshot supports the same object set.
struct Swarm {
  ObjectSet objects;
  std::vector<int32_t> snapshots;  // sorted, possibly non-consecutive
};

/// Cost counters for the bench harnesses.
struct SwarmStats {
  int64_t distance_ops = 0;      // clustering stage
  int64_t nodes_explored = 0;    // ObjectGrowth search nodes
  int64_t apriori_pruned = 0;    // nodes cut by |T| < mint
  int64_t backward_pruned = 0;   // nodes cut by backward pruning
  /// Peak working-set size in objects (candidate object sets on the DFS
  /// stack + per-snapshot cluster labels) — the space metric the paper
  /// compares in Fig. 15(b).
  int64_t peak_candidate_objects = 0;
};

/// Mines all closed swarms with the ObjectGrowth algorithm: depth-first
/// object-set growth in id order with apriori pruning (a set whose
/// snapshot support is below mint cannot be repaired by growing),
/// backward pruning (a skipped smaller-id object with identical support
/// proves this branch is covered by an earlier one), and forward closure
/// checking.
///
/// This is a whole-dataset algorithm — it cannot emit results until the
/// stream is complete, which is exactly the limitation the paper's
/// streaming algorithms remove.
std::vector<Swarm> MineClosedSwarms(const SnapshotStream& stream,
                                    const SwarmParams& params,
                                    SwarmStats* stats = nullptr);

}  // namespace tcomp

#endif  // TCOMP_BASELINES_SWARM_H_
