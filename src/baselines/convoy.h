#ifndef TCOMP_BASELINES_CONVOY_H_
#define TCOMP_BASELINES_CONVOY_H_

#include <cstdint>
#include <vector>

#include "core/dbscan.h"
#include "core/snapshot.h"
#include "core/types.h"
#include "core/stage.h"

namespace tcomp {

/// Parameters of offline convoy discovery (Jeung, Yiu, Zhou, Jensen,
/// Shen — VLDB 2008): a convoy is a group of ≥ min_objects objects
/// density-connected in every snapshot of a *consecutive* interval of
/// length ≥ min_lifetime. Convoys sit between companions (streaming,
/// reported incrementally) and swarms (non-consecutive support).
struct ConvoyParams {
  DbscanParams cluster;
  int min_objects = 10;   // m
  int min_lifetime = 10;  // k, in snapshots
  /// External per-snapshot clustering backend (e.g. the sharded engine,
  /// src/shard/); empty uses the built-in incremental clusterer. Must
  /// obey the Clustering determinism spec of core/dbscan.h — convoy
  /// products are then identical by construction (differential-tested).
  ClusterProvider cluster_provider;
};

/// A maximal convoy: `objects` were density-connected in every snapshot
/// of [begin, end], the interval cannot be extended, and no object
/// superset shares a covering interval.
struct Convoy {
  ObjectSet objects;
  int32_t begin = 0;
  int32_t end = 0;

  int32_t lifetime() const { return end - begin + 1; }
};

struct ConvoyStats {
  int64_t distance_ops = 0;
  int64_t intersections = 0;
  int64_t peak_candidates = 0;
};

/// CMC-style convoy discovery: sweep the stream once, maintain candidate
/// (object set, start) pairs, intersect them with each snapshot's density
/// clusters, and emit a candidate as a convoy when it stops extending (or
/// at end-of-stream) with lifetime ≥ k. Outputs are maximal: dominated
/// convoys (subset objects AND covered interval) are filtered.
///
/// This is the whole-dataset algorithm the paper's CI baseline adapts to
/// streams; unlike CI it reports exact lifetimes [begin, end] but cannot
/// emit anything until a convoy *ends*.
///
/// `stage_sink`, if non-null, receives per-snapshot cluster / intersect /
/// closure durations under the same stage names the incremental
/// discoverers report, so convoy-baseline runs slot into the same
/// dashboards. Timing only; products are unaffected.
std::vector<Convoy> DiscoverConvoys(const SnapshotStream& stream,
                                    const ConvoyParams& params,
                                    ConvoyStats* stats = nullptr,
                                    StageTimerSink* stage_sink = nullptr);

}  // namespace tcomp

#endif  // TCOMP_BASELINES_CONVOY_H_
