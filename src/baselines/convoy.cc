#include "baselines/convoy.h"

#include <algorithm>
#include <map>

#include "core/incremental_cluster.h"
#include "util/dense_bitset.h"
#include "util/logging.h"
#include "util/sorted_ops.h"
#include "util/timer.h"

namespace tcomp {
namespace {

struct Cand {
  ObjectSet objects;
  int32_t begin = 0;
  int32_t last = 0;  // last snapshot the set was co-clustered
};

}  // namespace

std::vector<Convoy> DiscoverConvoys(const SnapshotStream& stream,
                                    const ConvoyParams& params,
                                    ConvoyStats* stats,
                                    StageTimerSink* stage_sink) {
  TCOMP_CHECK_GT(params.min_objects, 0);
  TCOMP_CHECK_GT(params.min_lifetime, 0);
  const size_t m = static_cast<size_t>(params.min_objects);
  ConvoyStats local;

  std::vector<Cand> candidates;
  std::vector<Convoy> results;

  auto emit = [&](const Cand& v) {
    if (v.last - v.begin + 1 >= params.min_lifetime) {
      results.push_back(Convoy{v.objects, v.begin, v.last});
    }
  };

  // Fresh per call, so repeated DiscoverConvoys() runs are deterministic;
  // the incremental state only spans this stream. Products are identical
  // to per-snapshot Dbscan (and to this function before the clusterer
  // existed) by the layer's byte-identity guarantee.
  IncrementalClusterer clusterer(params.cluster);

  for (size_t t = 0; t < stream.size(); ++t) {
    Timer cluster_timer;
    cluster_timer.Start();
    Clustering clustering =
        params.cluster_provider
            ? params.cluster_provider(stream[t], &local.distance_ops)
            : clusterer.Cluster(stream[t], &local.distance_ops, nullptr);
    cluster_timer.Stop();
    if (stage_sink != nullptr) {
      stage_sink->RecordStage(Stage::kCluster, cluster_timer.Seconds());
    }
    Timer intersect_timer;
    intersect_timer.Start();
    const int32_t now = static_cast<int32_t>(t);

    // Products, deduplicated by object set keeping the earliest begin
    // (the longest-covering chain dominates).
    std::map<ObjectSet, Cand> next;
    auto add = [&](ObjectSet objects, int32_t begin) {
      auto it = next.find(objects);
      if (it == next.end()) {
        Cand c{std::move(objects), begin, now};
        next.emplace(c.objects, c);
      } else if (begin < it->second.begin) {
        it->second.begin = begin;
      }
    };

    // Word-parallel fast path, as in the CI discoverer: cluster-side
    // bitsets built lazily on first probe and shared by every candidate,
    // so each candidate×cluster intersection walks only the candidate's
    // objects when the snapshot's id universe is dense.
    const Snapshot& snap = stream[t];
    const uint64_t universe =
        snap.empty() ? 0 : uint64_t{snap.ids().back()} + 1;
    const bool use_bitset = BitsetKernelsEnabled() && !candidates.empty() &&
                            BitsetProfitable(universe, snap.size());
    std::vector<DenseBitset> cluster_bits(
        use_bitset ? clustering.clusters.size() : 0);
    ObjectSet inter;  // reused across pairs; moved out only when kept

    for (const Cand& v : candidates) {
      bool continued_whole = false;
      for (size_t k = 0; k < clustering.clusters.size(); ++k) {
        const ObjectSet& c = clustering.clusters[k];
        ++local.intersections;
        if (use_bitset) {
          DenseBitset& bits = cluster_bits[k];
          if (bits.universe() == 0) {  // first probe of this cluster
            bits.Resize(universe);
            bits.SetSparse(c);
          }
          IntersectInto(v.objects, bits, &inter);
        } else {
          SortedIntersect(v.objects, c, &inter);
        }
        if (inter.size() < m) continue;
        if (inter.size() == v.objects.size()) continued_whole = true;
        add(std::move(inter), v.begin);
        inter = ObjectSet();
      }
      // The set broke apart this snapshot: its interval is maximal in
      // time — report it (subset products keep running with the same
      // begin, so object-maximality is resolved by the final filter).
      if (!continued_whole) emit(v);
    }

    intersect_timer.Stop();

    // Fresh clusters open new chains unless dominated by a running one
    // (a subset of a running candidate has been co-clustered for that
    // candidate's whole interval already). The dominance scan is the
    // convoy analogue of the closure check, so it reports as kClosure.
    Timer closure_timer;
    closure_timer.Start();
    for (const ObjectSet& c : clustering.clusters) {
      if (c.size() < m) continue;
      bool dominated = false;
      for (const auto& [objects, cand] : next) {
        if (objects.size() >= c.size() && SortedIsSubset(c, objects)) {
          dominated = true;
          break;
        }
      }
      if (!dominated) add(c, now);
    }
    closure_timer.Stop();
    if (stage_sink != nullptr) {
      stage_sink->RecordStage(Stage::kIntersect, intersect_timer.Seconds());
      stage_sink->RecordStage(Stage::kClosure, closure_timer.Seconds());
    }

    candidates.clear();
    candidates.reserve(next.size());
    int64_t stored = 0;
    for (auto& [objects, cand] : next) {
      stored += static_cast<int64_t>(objects.size());
      candidates.push_back(std::move(cand));
    }
    local.peak_candidates = std::max(local.peak_candidates, stored);
  }
  // End of stream closes every running chain.
  for (const Cand& v : candidates) emit(v);

  // Maximality filter: drop convoys dominated in both objects and time.
  std::vector<Convoy> maximal;
  for (size_t i = 0; i < results.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < results.size() && !dominated; ++j) {
      if (i == j) continue;
      const Convoy& a = results[i];
      const Convoy& b = results[j];
      bool subset = a.objects.size() <= b.objects.size() &&
                    SortedIsSubset(a.objects, b.objects);
      bool covered = b.begin <= a.begin && a.end <= b.end;
      if (subset && covered) {
        // Strict domination, or tie broken toward the earlier entry.
        if (a.objects != b.objects || a.begin != b.begin ||
            a.end != b.end || j < i) {
          dominated = true;
        }
      }
    }
    if (!dominated) maximal.push_back(results[i]);
  }

  std::sort(maximal.begin(), maximal.end(),
            [](const Convoy& a, const Convoy& b) {
              if (a.begin != b.begin) return a.begin < b.begin;
              if (a.end != b.end) return a.end < b.end;
              return a.objects < b.objects;
            });
  if (stats != nullptr) {
    stats->distance_ops += local.distance_ops;
    stats->intersections += local.intersections;
    stats->peak_candidates =
        std::max(stats->peak_candidates, local.peak_candidates);
  }
  return maximal;
}

}  // namespace tcomp
