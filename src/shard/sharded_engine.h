#ifndef TCOMP_SHARD_SHARDED_ENGINE_H_
#define TCOMP_SHARD_SHARDED_ENGINE_H_

#include <atomic>
#include <cstdint>

#include "core/dbscan.h"
#include "core/snapshot.h"
#include "obs/metrics.h"
#include "core/stage.h"
#include "shard/merge.h"
#include "shard/partition.h"
#include "shard/shard_worker.h"

namespace tcomp {

/// Cumulative counters of the sharded engine; monitoring-grade relaxed
/// atomics inside the engine, sampled by stats() / ExportMetrics().
struct ShardEngineStats {
  int64_t snapshots = 0;       // snapshots routed through the engine
  int64_t routed_objects = 0;  // Σ snapshot sizes
  int64_t halo_objects = 0;    // Σ halo replicas across all snapshots
  int64_t halo_peak = 0;       // largest per-snapshot halo total
  int64_t merge_fanin_last = 0;  // effective shard count, last snapshot
};

/// The sharded C-step: partition → per-shard ε-neighborhoods → merge
/// stitch, producing a Clustering byte-identical to Dbscan() on the whole
/// snapshot (shard_partition_test and shard_differential_test pin this).
/// Injected into a discoverer through CompanionDiscoverer::
/// SetClusterProvider, replacing its per-snapshot clustering while the
/// M/I-steps run unchanged.
///
/// Shard 0 is always computed inline on the calling thread; shards
/// 1..N-1 run on the pool's dedicated workers (their queues back the
/// per-shard depth gauges). Snapshots are processed one at a time —
/// Cluster() returns only after the merge — so no shard state survives a
/// snapshot close. That is the whole checkpoint story: a checkpoint taken
/// under --shards K resumes at any other shard count because there is
/// nothing shard-shaped to save (DESIGN.md §1.8).
///
/// Thread-safety: Cluster() from one thread at a time (the pipeline
/// worker); stats() and ExportMetrics() are safe concurrently with it.
class ShardedClusterEngine {
 public:
  ShardedClusterEngine(const DbscanParams& params, int num_shards);

  ShardedClusterEngine(const ShardedClusterEngine&) = delete;
  ShardedClusterEngine& operator=(const ShardedClusterEngine&) = delete;

  /// Clusters `snapshot` across the shards. `distance_ops`, if non-null,
  /// is incremented by the engine's distance evaluations (deterministic
  /// for a fixed shard count; not comparable across shard counts — the
  /// differential contract compares products, not op counts).
  Clustering Cluster(const Snapshot& snapshot, int64_t* distance_ops);

  /// Timing-only per-snapshot stage reporting (shard_route,
  /// shard_cluster, merge_stitch). The sink must outlive the engine.
  void set_stage_sink(StageTimerSink* sink) { stage_sink_ = sink; }

  int num_shards() const { return num_shards_; }
  ShardEngineStats stats() const;

  /// Registers and refreshes the engine's gauge/counter series on
  /// `registry`: per-shard queue depth and peak (shard 0 reads 0 — it
  /// runs inline on the close thread), halo counters, merge fan-in. The
  /// name set is deterministic for a fixed shard count.
  void ExportMetrics(MetricsRegistry* registry) const;

 private:
  const DbscanParams params_;
  const int num_shards_;
  ShardWorkerPool pool_;  // num_shards_ - 1 workers, shards 1..N-1
  StageTimerSink* stage_sink_ = nullptr;

  std::atomic<int64_t> snapshots_{0};
  std::atomic<int64_t> routed_objects_{0};
  std::atomic<int64_t> halo_objects_{0};
  std::atomic<int64_t> halo_peak_{0};
  std::atomic<int64_t> merge_fanin_last_{0};
};

}  // namespace tcomp

#endif  // TCOMP_SHARD_SHARDED_ENGINE_H_
