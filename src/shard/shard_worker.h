#ifndef TCOMP_SHARD_SHARD_WORKER_H_
#define TCOMP_SHARD_SHARD_WORKER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/dbscan.h"
#include "core/snapshot.h"
#include "shard/partition.h"

namespace tcomp {

/// One shard's contribution to a snapshot: the exact ε-neighbor list of
/// every owned index (global snapshot indices, ascending, self included —
/// the representation BuildClusteringFromCores consumes), plus the
/// distance evaluations spent producing them.
struct ShardResult {
  /// Parallel to ShardSlice::owned.
  std::vector<std::vector<uint32_t>> neighbors;
  int64_t distance_ops = 0;
};

/// Computes the exact ε-neighborhoods of a slice's owned indices over
/// owned ∪ halo, via a column-sorted flat grid (entries sorted by
/// (ε-column, y, local) — no unordered containers, same idiom as the
/// incremental clusterer's anchor grid) whose probes binary-search the
/// exact y-range instead of walking whole cell rows, cutting the
/// candidate region from 9ε² to ~6ε². Pure function of (snapshot, slice,
/// params):
/// deterministic results and deterministic distance_ops, whichever thread
/// runs it. Exact because the slice's halo invariant guarantees every
/// true ε-neighbor of an owned index is present locally, and membership
/// is decided by the shared WithinEps predicate.
ShardResult ComputeShardNeighbors(const Snapshot& snapshot,
                                  const ShardSlice& slice,
                                  const DbscanParams& params);

/// Countdown latch for one snapshot's fan-out: the caller waits until
/// every submitted shard task has called Done().
class ShardBarrier {
 public:
  explicit ShardBarrier(int count);

  void Done();
  void Wait();

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int remaining_;  // guarded by mu_
};

/// N dedicated shard workers, each with its own FIFO task queue — unlike
/// the work-stealing-free shared pool in util/thread_pool.h, tasks here
/// are routed to a *specific* worker, so per-shard queue depth is a
/// meaningful backlog signal (exported as gauges by the engine). Workers
/// live for the pool's lifetime; queues drain fully before the
/// destructor joins.
///
/// Thread-safety: Submit() may be called from any thread; depth() /
/// depth_peak() are relaxed-atomic reads safe concurrently with the
/// workers (monitoring-grade, like every gauge in src/obs/).
///
/// On a host with a single hardware thread the pool runs every task
/// inline on the submitting thread instead of spawning workers: fan-out
/// threads cannot overlap there, so dedicated workers would only add
/// futex wake-ups and context switches to every snapshot. Shard
/// decomposition (and therefore every product and counter) is unaffected
/// — only where the stripe tasks execute changes.
class ShardWorkerPool {
 public:
  explicit ShardWorkerPool(int num_workers);
  ~ShardWorkerPool();

  ShardWorkerPool(const ShardWorkerPool&) = delete;
  ShardWorkerPool& operator=(const ShardWorkerPool&) = delete;

  void Submit(int worker, std::function<void()> task);

  int num_workers() const { return static_cast<int>(workers_.size()); }
  /// True when tasks run inline on the submitting thread (single-hardware-
  /// thread host); exposed for tests and diagnostics.
  bool inline_mode() const { return inline_mode_; }
  /// Queue depth of `worker` now (tasks submitted, not yet finished).
  int64_t depth(int worker) const;
  /// High-watermark of depth() since construction.
  int64_t depth_peak(int worker) const;

 private:
  struct Worker {
    std::thread thread;
    std::mutex mu;
    std::condition_variable cv;
    std::deque<std::function<void()>> queue;  // guarded by mu
    bool shutdown = false;                    // guarded by mu
    std::atomic<int64_t> depth{0};
    std::atomic<int64_t> depth_peak{0};
  };

  void WorkerLoop(Worker* worker);

  bool inline_mode_ = false;
  std::vector<std::unique_ptr<Worker>> workers_;
};

}  // namespace tcomp

#endif  // TCOMP_SHARD_SHARD_WORKER_H_
