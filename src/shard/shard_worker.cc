#include "shard/shard_worker.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/eps_filter.h"

namespace tcomp {
namespace {

/// Flat grid entry, sorted by (cx, y, local index): ε-wide columns as one
/// contiguous sorted array, each column ordered by raw y so a probe can
/// binary-search the exact [y-ε, y+ε] band instead of walking whole cell
/// rows — a 3-column probe covers ~6ε² of candidate area versus 9ε² for
/// a 3×3 cell walk. The order is total and value-determined (positions
/// are finite, ties broken by local index), so iteration — and therefore
/// distance_ops — is deterministic.
struct CellEntry {
  int64_t cx = 0;
  double y = 0.0;
  uint32_t local = 0;
};

bool CellLess(const CellEntry& a, const CellEntry& b) {
  if (a.cx != b.cx) return a.cx < b.cx;
  if (a.y != b.y) return a.y < b.y;
  return a.local < b.local;
}

/// First-entry offset of one distinct column in the sorted grid.
struct ColumnSpan {
  int64_t cx = 0;
  uint32_t begin = 0;
};

}  // namespace

ShardResult ComputeShardNeighbors(const Snapshot& snapshot,
                                  const ShardSlice& slice,
                                  const DbscanParams& params) {
  ShardResult result;
  result.neighbors.resize(slice.owned.size());
  if (slice.owned.empty()) return result;

  // Scratch persists across calls on each thread: the kernel runs once
  // per stripe per snapshot, and reallocating four n-sized arrays every
  // call showed up as real per-snapshot cost at fleet-scale populations.
  // Every element is rewritten below, so carried capacity is the only
  // state that survives a call.
  static thread_local std::vector<uint32_t> local;
  static thread_local std::vector<CellEntry> grid;
  static thread_local std::vector<ColumnSpan> columns;
  static thread_local std::vector<uint32_t> row_of_local;
  // Accepted (row, neighbor) edges, packed row<<32|index. Buffering them
  // flat and sizing each output row exactly once replaces the ~log(row)
  // reallocations per row that incremental push_backs would cost — at
  // fleet scale that is tens of thousands of heap round-trips per
  // snapshot, more than the distance math itself.
  static thread_local std::vector<uint64_t> edges;
  static thread_local std::vector<uint32_t> degree;
  // SoA mirrors of the sorted grid (sgx/sgy = point coordinates, sglocal
  // = local index, all in grid order) plus the candidate/survivor staging
  // for EpsFilterGather. Built only when the SoA kernels are on.
  static thread_local std::vector<double> sgx;
  static thread_local std::vector<double> sgy;
  static thread_local std::vector<uint32_t> sglocal;
  static thread_local std::vector<uint32_t> cand;
  static thread_local std::vector<uint32_t> surv;

  // Local working set: owned ∪ halo, ascending (both inputs are sorted
  // and disjoint by the partition contract).
  local.resize(slice.owned.size() + slice.halo.size());
  std::merge(slice.owned.begin(), slice.owned.end(), slice.halo.begin(),
             slice.halo.end(), local.begin());

  double max_abs = 0.0;
  for (uint32_t g : local) {
    Point p = snapshot.pos(g);
    max_abs = std::max({max_abs, std::fabs(p.x), std::fabs(p.y)});
  }
  const double cell = GridCellWidth(params.epsilon, max_abs);
  const double eps2 = params.epsilon * params.epsilon;

  grid.clear();
  grid.reserve(local.size());
  for (size_t j = 0; j < local.size(); ++j) {
    Point p = snapshot.pos(local[j]);
    grid.push_back(CellEntry{static_cast<int64_t>(std::floor(p.x / cell)),
                             p.y, static_cast<uint32_t>(j)});
  }
  std::sort(grid.begin(), grid.end(), CellLess);

  // Column directory: (cx, first-entry offset) per distinct column, plus
  // a sentinel carrying the total size so [begin(c), begin(c+1)) is every
  // column's span.
  columns.clear();
  for (uint32_t e = 0; e < grid.size(); ++e) {
    if (columns.empty() || columns.back().cx != grid[e].cx) {
      columns.push_back(ColumnSpan{grid[e].cx, e});
    }
  }
  columns.push_back(ColumnSpan{0, static_cast<uint32_t>(grid.size())});

  // Grid-order SoA mirror for the batched ε-filter: sgy duplicates the
  // sort key (band cursors advance over it with unit stride), sgx/sgy
  // together feed EpsFilterGather, sglocal maps survivors back. The
  // copies are exact, so cursor positions and accepted sets cannot
  // diverge from the scalar walk.
  const bool use_soa = SoAKernelsEnabled();
  if (use_soa) {
    const size_t m = grid.size();
    sgx.resize(m);
    sgy.resize(m);
    sglocal.resize(m);
    cand.resize(m);
    surv.resize(m);
    for (size_t e = 0; e < m; ++e) {
      const uint32_t k = grid[e].local;
      sgx[e] = snapshot.pos(local[k]).x;
      sgy[e] = grid[e].y;
      sglocal[e] = k;
    }
  }

  // Owned row of each local position (kNoRow for halo entries): mirror
  // pushes resolve the partner row in O(1).
  constexpr uint32_t kNoRow = 0xffffffffu;
  row_of_local.assign(local.size(), kNoRow);
  {
    size_t t = 0;
    for (size_t k = 0; k < local.size() && t < slice.owned.size(); ++k) {
      if (local[k] == slice.owned[t]) {
        row_of_local[k] = static_cast<uint32_t>(t++);
      }
    }
  }

  // Plane sweep in grid order: sources walk each column bottom-up, so the
  // [y - ε, y + ε] band in each of the up-to-three probe columns advances
  // monotonically — three forward-only cursors replace per-point binary
  // searches, and the traversal is sequential in memory.
  //
  // Owned–owned pairs are evaluated once, from the side with the smaller
  // local position, and mirrored into the partner's row (the same
  // pair-once discipline as the incremental clusterer's rebuild — the
  // candidate relation is symmetric, so each pair is seen exactly once).
  // Owned–halo pairs are always evaluated from the owned side: halo
  // points have no row here, so there is no mirror to rely on.
  const size_t ncols = columns.size() - 1;  // last entry is the sentinel
  for (size_t ci = 0; ci < ncols; ++ci) {
    const int64_t cx = columns[ci].cx;
    // Probe columns for sources in column ci: cx-1 and cx+1, when
    // occupied, sit immediately beside ci in the directory.
    size_t cols[3];
    uint32_t lo[3];
    int ncol = 0;
    if (ci > 0 && columns[ci - 1].cx == cx - 1) cols[ncol++] = ci - 1;
    cols[ncol++] = ci;
    if (ci + 1 < ncols && columns[ci + 1].cx == cx + 1) cols[ncol++] = ci + 1;
    for (int c = 0; c < ncol; ++c) lo[c] = columns[cols[c]].begin;

    for (uint32_t src = columns[ci].begin; src < columns[ci + 1].begin;
         ++src) {
      const uint32_t k_src = grid[src].local;
      const uint32_t row = row_of_local[k_src];
      if (row == kNoRow) continue;  // halo: candidate only, never a source
      const uint32_t g = local[k_src];
      const Point p = snapshot.pos(g);
      // The band bound is the padded `cell` width, not raw ε:
      // GridCellWidth's margin absorbs the rounding of p.y ± cell at this
      // coordinate magnitude, so a neighbor at exactly ε along y can
      // never fall outside the searched band.
      const double y_lo = p.y - cell;
      const double y_hi = p.y + cell;
      for (int c = 0; c < ncol; ++c) {
        const uint32_t end = columns[cols[c] + 1].begin;
        uint32_t e = lo[c];
        if (use_soa) {
          // Gather-first: the skip rules (self, mirrored owned–owned
          // pair) run before anything is counted or compared — exactly
          // as in the scalar walk below — then the surviving band
          // positions stream through the batched kernel in one go.
          while (e < end && sgy[e] < y_lo) ++e;
          lo[c] = e;  // source y only grows within the column
          size_t m = 0;
          for (; e < end && sgy[e] <= y_hi; ++e) {
            const uint32_t k = sglocal[e];
            if (k == k_src) continue;  // self
            const uint32_t partner_row = row_of_local[k];
            if (partner_row != kNoRow && k < k_src) continue;  // mirrored
            cand[m++] = e;
          }
          result.distance_ops += static_cast<int64_t>(m);
          const size_t kept = EpsFilterGather(sgx.data(), sgy.data(),
                                              cand.data(), m, p.x, p.y,
                                              eps2, surv.data());
          for (size_t s = 0; s < kept; ++s) {
            const uint32_t k = sglocal[surv[s]];
            edges.push_back((static_cast<uint64_t>(row) << 32) | local[k]);
            const uint32_t partner_row = row_of_local[k];
            if (partner_row != kNoRow) {
              edges.push_back((static_cast<uint64_t>(partner_row) << 32) | g);
            }
          }
          continue;
        }
        while (e < end && grid[e].y < y_lo) ++e;
        lo[c] = e;  // source y only grows within the column
        for (; e < end && grid[e].y <= y_hi; ++e) {
          const uint32_t k = grid[e].local;
          if (k == k_src) continue;  // self
          const uint32_t partner_row = row_of_local[k];
          if (partner_row != kNoRow && k < k_src) continue;  // mirrored
          ++result.distance_ops;
          const uint32_t j = local[k];
          // tcomp-lint: allow(soa-raw-loop): sanctioned scalar fallback —
          // the SoA gather branch above is differentially tested against
          // this walk with the kill switch off.
          if (WithinEps(p, snapshot.pos(j), eps2)) {
            edges.push_back((static_cast<uint64_t>(row) << 32) | j);
            if (partner_row != kNoRow) {
              edges.push_back((static_cast<uint64_t>(partner_row) << 32) | g);
            }
          }
        }
      }
    }
  }
  // Materialize the rows: exact-size reserve (self + accepted edges),
  // fill, then one sort per row to restore the ascending-index invariant
  // the merge stage consumes.
  degree.assign(slice.owned.size(), 1);  // N_ε(o) includes o (Definition 1)
  for (uint64_t e : edges) ++degree[static_cast<uint32_t>(e >> 32)];
  for (size_t t = 0; t < slice.owned.size(); ++t) {
    result.neighbors[t].reserve(degree[t]);
    result.neighbors[t].push_back(slice.owned[t]);
  }
  for (uint64_t e : edges) {
    result.neighbors[static_cast<uint32_t>(e >> 32)].push_back(
        static_cast<uint32_t>(e));
  }
  edges.clear();
  for (std::vector<uint32_t>& row : result.neighbors) {
    std::sort(row.begin(), row.end());
  }
  return result;
}

ShardBarrier::ShardBarrier(int count) : remaining_(count) {}

void ShardBarrier::Done() {
  std::lock_guard<std::mutex> lock(mu_);
  if (--remaining_ <= 0) cv_.notify_all();
}

void ShardBarrier::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return remaining_ <= 0; });
}

ShardWorkerPool::ShardWorkerPool(int num_workers) {
  if (num_workers < 0) num_workers = 0;
  inline_mode_ = std::thread::hardware_concurrency() <= 1;
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    auto worker = std::make_unique<Worker>();
    if (!inline_mode_) {
      worker->thread =
          std::thread(&ShardWorkerPool::WorkerLoop, this, worker.get());
    }
    workers_.push_back(std::move(worker));
  }
}

ShardWorkerPool::~ShardWorkerPool() {
  for (auto& worker : workers_) {
    {
      std::lock_guard<std::mutex> lock(worker->mu);
      worker->shutdown = true;
    }
    worker->cv.notify_all();
  }
  for (auto& worker : workers_) {
    if (worker->thread.joinable()) worker->thread.join();
  }
}

void ShardWorkerPool::Submit(int worker, std::function<void()> task) {
  Worker& w = *workers_[static_cast<size_t>(worker)];
  if (inline_mode_) {
    // Single-hardware-thread host: run here and now. The gauges still
    // move (depth pulses to 1) so dashboards stay uniform across hosts.
    const int64_t depth = w.depth.fetch_add(1, std::memory_order_relaxed) + 1;
    if (depth > w.depth_peak.load(std::memory_order_relaxed)) {
      w.depth_peak.store(depth, std::memory_order_relaxed);
    }
    task();
    w.depth.fetch_sub(1, std::memory_order_relaxed);
    return;
  }
  int64_t depth_now;
  {
    std::lock_guard<std::mutex> lock(w.mu);
    w.queue.push_back(std::move(task));
    depth_now = w.depth.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  // Peak maintenance races only against other Submit()s to the same
  // worker; a lost update can under-report the peak by a sample, never
  // invent one (monitoring-grade, like the queue gauges in src/service/).
  if (depth_now > w.depth_peak.load(std::memory_order_relaxed)) {
    w.depth_peak.store(depth_now, std::memory_order_relaxed);
  }
  w.cv.notify_one();
}

int64_t ShardWorkerPool::depth(int worker) const {
  return workers_[static_cast<size_t>(worker)]->depth.load(
      std::memory_order_relaxed);
}

int64_t ShardWorkerPool::depth_peak(int worker) const {
  return workers_[static_cast<size_t>(worker)]->depth_peak.load(
      std::memory_order_relaxed);
}

void ShardWorkerPool::WorkerLoop(Worker* worker) {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(worker->mu);
      worker->cv.wait(lock, [&] {
        return worker->shutdown || !worker->queue.empty();
      });
      if (worker->queue.empty()) return;  // shutdown with a drained queue
      task = std::move(worker->queue.front());
      worker->queue.pop_front();
    }
    task();
    worker->depth.fetch_sub(1, std::memory_order_relaxed);
  }
}

}  // namespace tcomp
