#include "shard/merge.h"

#include <utility>

namespace tcomp {

Clustering MergeShardResults(const Snapshot& snapshot, const ShardPlan& plan,
                             std::vector<ShardResult>&& results, int mu,
                             int64_t* distance_ops) {
  const size_t n = snapshot.size();
  std::vector<std::vector<uint32_t>> neighbors(n);
  std::vector<bool> core(n, false);
  const size_t min_neighbors = mu < 0 ? 0 : static_cast<size_t>(mu);

  for (size_t k = 0; k < plan.slices.size(); ++k) {
    const ShardSlice& slice = plan.slices[k];
    ShardResult& result = results[k];
    for (size_t t = 0; t < slice.owned.size(); ++t) {
      const uint32_t g = slice.owned[t];
      neighbors[g] = std::move(result.neighbors[t]);
      core[g] = neighbors[g].size() >= min_neighbors;
    }
    if (distance_ops != nullptr) *distance_ops += result.distance_ops;
  }
  return internal::BuildClusteringFromCores(snapshot, core, neighbors);
}

}  // namespace tcomp
