#ifndef TCOMP_SHARD_MERGE_H_
#define TCOMP_SHARD_MERGE_H_

#include <cstdint>
#include <vector>

#include "core/dbscan.h"
#include "core/snapshot.h"
#include "shard/partition.h"
#include "shard/shard_worker.h"

namespace tcomp {

/// Deterministic merge stage: stitches the per-shard ε-neighborhood
/// results back into one global Clustering, byte-identical to Dbscan() on
/// the whole snapshot.
///
/// Why this is exact (DESIGN.md §1.8): the slices partition the index
/// space and each shard computed the *complete* ε-neighbor list of every
/// owned index (halo invariant), so assembling them in shard order yields
/// the same global neighbor lists a single-machine pass would produce.
/// Core flags are then |N_ε| ≥ μ, and the shared
/// internal::BuildClusteringFromCores finisher — union-find over
/// core-core edges with smallest-index representatives, border objects
/// attached to their lowest-index core neighbor — IS the cross-shard
/// stitch: a cluster spanning a stripe border is joined through the
/// core-core edges both owners report for the halo overlap. Determinism
/// does not depend on shard completion order, only on the (fixed) slice
/// contents; `results[k]` must be the output of ComputeShardNeighbors on
/// `plan.slices[k]`.
///
/// `distance_ops`, if non-null, is incremented by the sum of the shard
/// op counts, in shard order (deterministic for a fixed plan).
Clustering MergeShardResults(const Snapshot& snapshot, const ShardPlan& plan,
                             std::vector<ShardResult>&& results, int mu,
                             int64_t* distance_ops);

}  // namespace tcomp

#endif  // TCOMP_SHARD_MERGE_H_
