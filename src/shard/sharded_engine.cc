#include "shard/sharded_engine.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "util/timer.h"

namespace tcomp {

ShardedClusterEngine::ShardedClusterEngine(const DbscanParams& params,
                                           int num_shards)
    : params_(params),
      num_shards_(num_shards < 1 ? 1 : num_shards),
      pool_(num_shards_ - 1) {}

Clustering ShardedClusterEngine::Cluster(const Snapshot& snapshot,
                                         int64_t* distance_ops) {
  Timer route_timer;
  route_timer.Start();
  ShardPlan plan = PartitionSnapshot(snapshot, num_shards_, params_.epsilon);
  route_timer.Stop();
  if (stage_sink_ != nullptr) {
    stage_sink_->RecordStage(Stage::kShardRoute, route_timer.Seconds());
  }
  snapshots_.fetch_add(1, std::memory_order_relaxed);
  routed_objects_.fetch_add(static_cast<int64_t>(snapshot.size()),
                            std::memory_order_relaxed);
  halo_objects_.fetch_add(plan.halo_objects, std::memory_order_relaxed);
  if (plan.halo_objects > halo_peak_.load(std::memory_order_relaxed)) {
    halo_peak_.store(plan.halo_objects, std::memory_order_relaxed);
  }
  merge_fanin_last_.store(static_cast<int64_t>(plan.slices.size()),
                          std::memory_order_relaxed);

  Timer work_timer;
  work_timer.Start();
  const size_t shards = plan.slices.size();
  std::vector<ShardResult> results(shards);
  if (shards > 1) {
    ShardBarrier barrier(static_cast<int>(shards) - 1);
    for (size_t k = 1; k < shards; ++k) {
      const ShardSlice* slice = &plan.slices[k];
      ShardResult* out = &results[k];
      pool_.Submit(static_cast<int>(k) - 1, [this, &snapshot, slice, out,
                                             &barrier] {
        *out = ComputeShardNeighbors(snapshot, *slice, params_);
        barrier.Done();
      });
    }
    results[0] = ComputeShardNeighbors(snapshot, plan.slices[0], params_);
    barrier.Wait();
  } else {
    results[0] = ComputeShardNeighbors(snapshot, plan.slices[0], params_);
  }
  work_timer.Stop();
  if (stage_sink_ != nullptr) {
    stage_sink_->RecordStage(Stage::kShardCluster, work_timer.Seconds());
  }

  Timer merge_timer;
  merge_timer.Start();
  Clustering clustering = MergeShardResults(snapshot, plan,
                                            std::move(results), params_.mu,
                                            distance_ops);
  merge_timer.Stop();
  if (stage_sink_ != nullptr) {
    stage_sink_->RecordStage(Stage::kMergeStitch, merge_timer.Seconds());
  }
  return clustering;
}

ShardEngineStats ShardedClusterEngine::stats() const {
  ShardEngineStats stats;
  stats.snapshots = snapshots_.load(std::memory_order_relaxed);
  stats.routed_objects = routed_objects_.load(std::memory_order_relaxed);
  stats.halo_objects = halo_objects_.load(std::memory_order_relaxed);
  stats.halo_peak = halo_peak_.load(std::memory_order_relaxed);
  stats.merge_fanin_last =
      merge_fanin_last_.load(std::memory_order_relaxed);
  return stats;
}

void ShardedClusterEngine::ExportMetrics(MetricsRegistry* registry) const {
  ShardEngineStats stats = this->stats();
  registry->GetGauge("tcomp_shards", "", "Configured shard count (--shards)")
      ->Set(num_shards_);
  registry
      ->GetCounter("tcomp_shard_snapshots_total", "",
                   "Snapshots clustered by the sharded engine")
      ->Set(static_cast<uint64_t>(stats.snapshots));
  registry
      ->GetCounter("tcomp_shard_routed_objects_total", "",
                   "Objects routed to shard stripes")
      ->Set(static_cast<uint64_t>(stats.routed_objects));
  registry
      ->GetCounter("tcomp_shard_halo_objects_total", "",
                   "Halo replicas shipped to neighboring shards")
      ->Set(static_cast<uint64_t>(stats.halo_objects));
  registry
      ->GetGauge("tcomp_shard_halo_peak", "",
                 "Largest per-snapshot halo total")
      ->Set(stats.halo_peak);
  registry
      ->GetGauge("tcomp_shard_merge_fanin", "",
                 "Effective shard count of the most recent snapshot")
      ->Set(stats.merge_fanin_last);
  for (int k = 0; k < num_shards_; ++k) {
    std::string labels = "shard=\"" + std::to_string(k) + "\"";
    // Shard 0 runs inline on the close thread and has no queue.
    const int64_t depth = k == 0 ? 0 : pool_.depth(k - 1);
    const int64_t peak = k == 0 ? 0 : pool_.depth_peak(k - 1);
    registry
        ->GetGauge("tcomp_shard_queue_depth", labels,
                   "Per-shard task queue depth at sampling time")
        ->Set(depth);
    registry
        ->GetGauge("tcomp_shard_queue_depth_peak", labels,
                   "High-watermark per-shard task queue depth")
        ->Set(peak);
  }
}

}  // namespace tcomp
