#include "shard/partition.h"

#include <algorithm>
#include <cmath>

#include "core/dbscan.h"

namespace tcomp {

int EffectiveShardCount(int requested, size_t n) {
  if (requested < 1) return 1;
  size_t cap = n / kMinOwnedPerShard;
  if (cap < 1) cap = 1;
  return static_cast<int>(
      std::min<size_t>(static_cast<size_t>(requested), cap));
}

ShardPlan PartitionSnapshot(const Snapshot& snapshot, int num_shards,
                            double epsilon) {
  const size_t n = snapshot.size();
  ShardPlan plan;
  const int shards = EffectiveShardCount(num_shards, n);
  plan.slices.resize(static_cast<size_t>(shards));
  if (n == 0) return plan;

  // Pick the wider bounding-box axis; ties go to x. max_abs feeds the
  // same floating-point pad the grid backends use, so the halo radius is
  // ≥ ε by at least the rounding slack of the coordinate magnitudes.
  double min_x = snapshot.pos(0).x, max_x = min_x;
  double min_y = snapshot.pos(0).y, max_y = min_y;
  double max_abs = 0.0;
  for (size_t i = 0; i < n; ++i) {
    Point p = snapshot.pos(i);
    min_x = std::min(min_x, p.x);
    max_x = std::max(max_x, p.x);
    min_y = std::min(min_y, p.y);
    max_y = std::max(max_y, p.y);
    max_abs = std::max({max_abs, std::fabs(p.x), std::fabs(p.y)});
  }
  plan.split_by_x = (max_x - min_x) >= (max_y - min_y);

  // Axis coordinates, materialized once: every comparison below reads a
  // flat double array instead of chasing Point loads through the
  // snapshot.
  static thread_local std::vector<double> coords;
  static thread_local std::vector<uint32_t> order;
  coords.resize(n);
  for (size_t i = 0; i < n; ++i) {
    Point p = snapshot.pos(i);
    coords[i] = plan.split_by_x ? p.x : p.y;
  }

  // Deterministic stripe membership: ranks under the (axis coordinate,
  // index) total order, cut at n·k/shards. Equal coordinates may
  // straddle a stripe boundary; the halo radius covers them (|Δcoord| =
  // 0 ≤ radius), so correctness never depends on where the tie lands.
  //
  // The segments are produced by nth_element bisection, not a full sort:
  // slice membership is rank-defined, so partitioning at the cut ranks
  // yields the identical slices for O(n log shards) cheap swaps instead
  // of an O(n log n) comparison sort — the route stage runs once per
  // snapshot, and at fleet scale the sort dominated it. Segments are
  // internally unordered; nothing below depends on their order.
  order.resize(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
  auto rank_less = [&](uint32_t a, uint32_t b) {
    if (coords[a] != coords[b]) return coords[a] < coords[b];
    return a < b;
  };
  std::vector<size_t> cuts(static_cast<size_t>(shards) + 1);
  for (int k = 0; k <= shards; ++k) {
    cuts[static_cast<size_t>(k)] =
        n * static_cast<size_t>(k) / static_cast<size_t>(shards);
  }
  std::vector<std::pair<int, int>> stack = {{0, shards}};
  while (!stack.empty()) {
    auto [a, b] = stack.back();
    stack.pop_back();
    if (b - a <= 1) continue;
    const int m = (a + b) / 2;
    std::nth_element(order.begin() + static_cast<ptrdiff_t>(cuts[a]),
                     order.begin() + static_cast<ptrdiff_t>(cuts[m]),
                     order.begin() + static_cast<ptrdiff_t>(cuts[b]),
                     rank_less);
    stack.push_back({a, m});
    stack.push_back({m, b});
  }

  // Coordinate interval of each segment (one linear pass; the segments
  // are unordered inside, so the extremes are not at the ends).
  std::vector<double> seg_lo(static_cast<size_t>(shards));
  std::vector<double> seg_hi(static_cast<size_t>(shards));
  for (int k = 0; k < shards; ++k) {
    double lo = coords[order[cuts[static_cast<size_t>(k)]]];
    double hi = lo;
    for (size_t j = cuts[static_cast<size_t>(k)] + 1;
         j < cuts[static_cast<size_t>(k) + 1]; ++j) {
      lo = std::min(lo, coords[order[j]]);
      hi = std::max(hi, coords[order[j]]);
    }
    seg_lo[static_cast<size_t>(k)] = lo;
    seg_hi[static_cast<size_t>(k)] = hi;
  }

  const double radius = GridCellWidth(epsilon, max_abs);
  for (int k = 0; k < shards; ++k) {
    ShardSlice& slice = plan.slices[static_cast<size_t>(k)];
    slice.owned.assign(
        order.begin() + static_cast<ptrdiff_t>(cuts[static_cast<size_t>(k)]),
        order.begin() +
            static_cast<ptrdiff_t>(cuts[static_cast<size_t>(k) + 1]));
    std::sort(slice.owned.begin(), slice.owned.end());

    // Halo: everything outside the stripe whose coordinate is within
    // `radius` of the stripe's coordinate interval [lo, hi] — the same
    // value-based membership as ever. Neighbor segments are scanned
    // whole (they are unordered inside); a segment whose interval lies
    // entirely beyond the radius ends the scan in that direction.
    const double lo = seg_lo[static_cast<size_t>(k)];
    const double hi = seg_hi[static_cast<size_t>(k)];
    for (int j = k; j-- > 0;) {
      if (seg_hi[static_cast<size_t>(j)] < lo - radius) break;
      for (size_t e = cuts[static_cast<size_t>(j)];
           e < cuts[static_cast<size_t>(j) + 1]; ++e) {
        if (coords[order[e]] >= lo - radius) slice.halo.push_back(order[e]);
      }
    }
    for (int j = k + 1; j < shards; ++j) {
      if (seg_lo[static_cast<size_t>(j)] > hi + radius) break;
      for (size_t e = cuts[static_cast<size_t>(j)];
           e < cuts[static_cast<size_t>(j) + 1]; ++e) {
        if (coords[order[e]] <= hi + radius) slice.halo.push_back(order[e]);
      }
    }
    std::sort(slice.halo.begin(), slice.halo.end());
    plan.halo_objects += static_cast<int64_t>(slice.halo.size());
  }
  return plan;
}

}  // namespace tcomp
