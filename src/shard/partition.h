#ifndef TCOMP_SHARD_PARTITION_H_
#define TCOMP_SHARD_PARTITION_H_

#include <cstdint>
#include <vector>

#include "core/snapshot.h"

namespace tcomp {

/// One shard's slice of a snapshot. Both lists hold snapshot indices
/// (Snapshot's dense 0..n-1 index space, ascending), never object ids —
/// the merge stage needs index-space neighbor lists for the shared
/// BuildClusteringFromCores finisher, and indices compare cheaper.
struct ShardSlice {
  /// Indices this shard is responsible for: it must produce the exact
  /// ε-neighborhood of every owned index. Slices partition 0..n-1.
  std::vector<uint32_t> owned;
  /// Read-only replicas from neighboring stripes whose split-axis
  /// coordinate lies within the padded halo radius of this stripe's
  /// coordinate interval. A superset of the true out-of-stripe
  /// ε-neighbors (the padding errs toward inclusion; the per-shard
  /// WithinEps filter is what is exact).
  std::vector<uint32_t> halo;
};

/// A deterministic decomposition of one snapshot into shard slices.
struct ShardPlan {
  std::vector<ShardSlice> slices;
  /// True when stripes cut the x axis, false for y (the wider bbox side
  /// is cut, so halos stay thin for elongated point sets).
  bool split_by_x = true;
  /// Σ |slice.halo| — the replication cost of this plan.
  int64_t halo_objects = 0;
};

/// Shards with fewer owned objects than this are not worth a task
/// hand-off; PartitionSnapshot collapses the shard count until every
/// stripe meets it (or one shard remains).
inline constexpr size_t kMinOwnedPerShard = 32;

/// The shard count PartitionSnapshot will actually use for a snapshot of
/// `n` objects: `requested` clamped so every stripe owns at least
/// kMinOwnedPerShard objects. Deterministic in (requested, n) — resuming
/// a stream at a different --shards value re-plans every snapshot from
/// scratch, so no plan state needs checkpointing.
int EffectiveShardCount(int requested, size_t n);

/// Splits `snapshot` into EffectiveShardCount stripes of near-equal
/// object count along the wider bounding-box axis, each with an ε-halo of
/// neighboring-stripe objects. Wholly deterministic: stripe boundaries
/// come from the (coordinate, index)-sorted order, and owned/halo lists
/// are ascending.
///
/// Exactness invariant (DESIGN.md §1.8): for every owned index i, every
/// index j with dist(i, j) ≤ ε is in owned ∪ halo of i's slice. The halo
/// radius is GridCellWidth(epsilon, max|coord|) — ε padded for floating
/// point — so an exact-boundary neighbor can never be excluded by the
/// coordinate comparison that admits halo members.
ShardPlan PartitionSnapshot(const Snapshot& snapshot, int num_shards,
                            double epsilon);

}  // namespace tcomp

#endif  // TCOMP_SHARD_PARTITION_H_
