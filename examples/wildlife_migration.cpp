// Wildlife migration — the paper's third motivating application:
// "Scientists would like to study the pathways of species migration"
// and "families of birds, deer and other animals often move together".
//
//   $ ./wildlife_migration
//
// Herds migrate across a 20 km range, occasionally splitting in two or
// merging at water holes; individual animals stray. The example shows
// how the discovered companions track the herd structure over time, and
// how the traveling-buddy statistics expose the micro-group structure
// (families) inside herds.

#include <cstdio>

#include "core/buddy_discovery.h"
#include "data/group_model.h"

int main() {
  using namespace tcomp;

  GroupModelOptions options;
  options.num_objects = 500;
  options.num_snapshots = 200;
  options.area_size = 20000.0;
  options.min_group_size = 20;
  options.max_group_size = 45;
  options.group_fraction = 0.9;
  options.group_speed = 80.0;
  options.split_probability = 0.004;   // herds split...
  options.merge_distance = 60.0;       // ...and merge at shared spots
  options.leave_probability = 0.0008;  // strays
  options.seed = 99;
  GroupDataset herds = GenerateGroupStream(options);

  DiscoveryParams params;
  params.cluster.epsilon = 25.0;
  params.cluster.mu = 4;
  params.size_threshold = 15;      // a herd, not a family
  params.duration_threshold = 30;  // sustained co-migration

  BuddyDiscoverer discoverer(params);
  int64_t reports_by_quarter[4] = {0, 0, 0, 0};
  for (size_t t = 0; t < herds.stream.size(); ++t) {
    std::vector<Companion> newly;
    discoverer.ProcessSnapshot(herds.stream[t], &newly);
    reports_by_quarter[t * 4 / herds.stream.size()] +=
        static_cast<int64_t>(newly.size());
  }

  std::printf("herd discovery over %zu snapshots:\n", herds.stream.size());
  for (int q = 0; q < 4; ++q) {
    std::printf("  quarter %d: %lld new herd groupings\n", q + 1,
                static_cast<long long>(reports_by_quarter[q]));
  }

  std::printf("\ndistinct co-migrating herds found: %zu\n",
              discoverer.log().size());
  size_t biggest = 0;
  double longest = 0;
  for (const Companion& c : discoverer.log().companions()) {
    biggest = std::max(biggest, c.objects.size());
    longest = std::max(longest, c.duration);
  }
  std::printf("largest herd: %zu animals; longest co-migration: %.0f "
              "snapshots\n", biggest, longest);

  // The buddy set inside the discoverer mirrors the family micro-groups.
  const DiscoveryStats& stats = discoverer.stats();
  std::printf("\nmicro-group (family) structure: avg buddy size %.2f, "
              "%.1f%% of buddies unchanged per snapshot\n",
              stats.average_buddy_size(),
              100.0 * static_cast<double>(stats.buddies_unchanged) /
                  static_cast<double>(stats.buddies_total));
  std::printf("final snapshot ground truth: %zu herds in the generator\n",
              herds.final_groups.size());
  return 0;
}
