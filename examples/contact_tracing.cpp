// Contact tracing — the paper's Example 4 motivation: "in the scenario of
// infected disease monitoring, the people in the two clusters should then
// be watched together since the disease may spread among them."
//
//   $ ./contact_tracing
//
// Walking groups move through a district; occasionally two groups merge
// for a while (a shared market, a gathering) and later separate. The
// pipeline discovers the companions, reconstructs their lifetimes
// (CompanionTimeline), and the evolution analyzer flags every merge —
// i.e., every potential cross-group exposure event — with the groups and
// the time window involved.

#include <cstdio>

#include "core/discoverer.h"
#include "core/evolution.h"
#include "core/timeline.h"
#include "data/group_model.h"

int main() {
  using namespace tcomp;

  GroupModelOptions options;
  options.num_objects = 260;
  options.num_snapshots = 160;
  options.area_size = 3000.0;   // a district, not a continent
  options.min_group_size = 8;
  options.max_group_size = 16;
  options.group_speed = 40.0;
  options.merge_distance = 60.0;   // groups meeting merge for a while
  options.split_probability = 0.006;  // ...and later drift apart
  options.leave_probability = 0.0005;
  options.seed = 77;
  GroupDataset district = GenerateGroupStream(options);

  DiscoveryParams params;
  params.cluster.epsilon = 20.0;
  params.cluster.mu = 4;
  params.size_threshold = 6;
  params.duration_threshold = 10;

  auto discoverer = MakeDiscoverer(Algorithm::kBuddy, params);
  CompanionTimeline timeline;
  timeline.Track(discoverer.get());
  for (const Snapshot& s : district.stream) {
    discoverer->ProcessSnapshot(s, nullptr);
  }

  std::vector<CompanionEpisode> episodes = timeline.Episodes();
  EvolutionOptions evo;
  evo.max_gap = static_cast<int64_t>(params.duration_threshold);
  std::vector<EvolutionEvent> events = AnalyzeEvolution(episodes, evo);

  std::printf("district monitoring: %zu people, %zu snapshots, "
              "%zu group episodes\n\n",
              static_cast<size_t>(options.num_objects),
              district.stream.size(), episodes.size());

  int merges = 0, splits = 0, continuations = 0;
  for (const EvolutionEvent& e : events) {
    switch (e.kind) {
      case EvolutionEvent::Kind::kMerge: {
        ++merges;
        size_t exposed = 0;
        for (size_t src : e.sources) {
          exposed += episodes[src].objects.size();
        }
        std::printf("[t=%3lld] EXPOSURE: %zu groups merged into one of "
                    "%zu people — watch all %zu members together\n",
                    static_cast<long long>(e.snapshot), e.sources.size(),
                    episodes[e.targets[0]].objects.size(), exposed);
        break;
      }
      case EvolutionEvent::Kind::kSplit:
        ++splits;
        std::printf("[t=%3lld] group of %zu split into %zu groups — "
                    "exposure carries into each\n",
                    static_cast<long long>(e.snapshot),
                    episodes[e.sources[0]].objects.size(),
                    e.targets.size());
        break;
      case EvolutionEvent::Kind::kContinuation:
        ++continuations;
        break;
    }
  }

  std::printf("\n%d merges (exposure events), %d splits, "
              "%d quiet membership changes\n",
              merges, splits, continuations);
  CompanionEpisode longest = timeline.Longest();
  if (longest.length() > 0) {
    std::printf("longest continuously-together group: %zu people for "
                "%lld snapshots\n",
                longest.objects.size(),
                static_cast<long long>(longest.length()));
  }
  return 0;
}
