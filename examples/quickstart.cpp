// Quickstart: discover traveling companions from a snapshot stream in
// ~60 lines.
//
//   $ ./quickstart
//
// Three groups of objects wander a 2 km square; one pair of groups later
// merges. The buddy-based discoverer (BU, the paper's contribution)
// reports companions incrementally, as soon as each group has stayed
// together for δt snapshots.

#include <cstdio>

#include "core/discoverer.h"
#include "data/group_model.h"

int main() {
  using namespace tcomp;

  // 1. A synthetic stream: 120 objects in groups of 8-15, 60 snapshots.
  GroupModelOptions options;
  options.num_objects = 120;
  options.num_snapshots = 60;
  options.area_size = 2000.0;
  options.min_group_size = 8;
  options.max_group_size = 15;
  options.seed = 2026;
  GroupDataset data = GenerateGroupStream(options);

  // 2. Discovery parameters: density thresholds (ε, μ) define "close",
  //    δs/δt define how large and long-lived a companion must be.
  DiscoveryParams params;
  params.cluster.epsilon = 20.0;  // meters
  params.cluster.mu = 4;
  params.size_threshold = 8;       // δs
  params.duration_threshold = 12;  // δt, in snapshots

  // 3. Feed snapshots; companions pop out as soon as they qualify.
  auto discoverer = MakeDiscoverer(Algorithm::kBuddy, params);
  int64_t t = 0;
  for (const Snapshot& snapshot : data.stream) {
    std::vector<Companion> newly;
    discoverer->ProcessSnapshot(snapshot, &newly);
    for (const Companion& c : newly) {
      std::printf("snapshot %3lld: companion of %zu objects {%u, %u, ... }"
                  " traveling together for %.0f snapshots\n",
                  static_cast<long long>(t), c.objects.size(),
                  c.objects[0], c.objects[1], c.duration);
    }
    ++t;
  }

  // 4. Summary.
  const DiscoveryStats& stats = discoverer->stats();
  std::printf("\n%zu distinct companions; %lld intersections; "
              "%.1f%% of buddy pairs pruned by Lemma 3\n",
              discoverer->log().size(),
              static_cast<long long>(stats.intersections),
              100.0 * static_cast<double>(stats.buddy_pairs_pruned) /
                  static_cast<double>(stats.buddy_pairs_checked));
  return 0;
}
