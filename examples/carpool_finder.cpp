// Car-pool matching — the paper's first motivating application:
// "commuters want to discover people with the same route to share car
// pools."
//
//   $ ./carpool_finder [--commuters N] [--days D]
//
// Synthetic commuters drive a grid city every morning: most follow their
// own home→office route; some share a corridor for long stretches. The
// pipeline discovers groups that travel together for at least δt
// five-minute intervals — the car-pool candidates — and prints a ranked
// list.

#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "core/discoverer.h"
#include "data/taxi_gen.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace tcomp;

  FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return 1;
  const int commuters = flags.GetInt("commuters", 400);
  const int days = flags.GetInt("days", 1);

  // The grid-city generator doubles as a commuter model: platoons are
  // households/colleagues already sharing cars; everyone else drives
  // alone. 5-minute position reports over ~4 hours of driving per day.
  TaxiOptions options;
  options.num_taxis = commuters;
  options.num_snapshots = 48 * days;
  options.platoon_fraction = 0.30;  // commuters on shared corridors
  options.platoon_size_min = 3;
  options.platoon_size_max = 9;
  options.defect_probability = 0.005;
  options.seed = 7;
  SnapshotStream stream = GenerateTaxi(options);

  DiscoveryParams params;
  params.cluster.epsilon = 80.0;   // ~lane-level co-location in meters
  params.cluster.mu = 3;
  params.size_threshold = 3;       // a car pool needs ≥3 riders
  params.duration_threshold = 12;  // ≥1 hour of shared route

  auto discoverer = MakeDiscoverer(Algorithm::kBuddy, params);
  for (const Snapshot& snapshot : stream) {
    discoverer->ProcessSnapshot(snapshot, nullptr);
  }

  // Rank pools by duration, then size.
  std::vector<Companion> pools(discoverer->log().companions());
  std::sort(pools.begin(), pools.end(),
            [](const Companion& a, const Companion& b) {
              if (a.duration != b.duration) return a.duration > b.duration;
              return a.objects.size() > b.objects.size();
            });

  std::printf("car-pool candidates among %d commuters "
              "(>=%d riders, >=%.0f shared 5-min intervals):\n\n",
              commuters, params.size_threshold,
              params.duration_threshold);
  int shown = 0;
  for (const Companion& pool : pools) {
    if (shown++ >= 10) break;
    std::printf("  pool #%d: %zu riders, %.0f intervals together, riders:",
                shown, pool.objects.size(), pool.duration);
    for (size_t i = 0; i < std::min<size_t>(6, pool.objects.size()); ++i) {
      std::printf(" C%u", pool.objects[i]);
    }
    if (pool.objects.size() > 6) std::printf(" ...");
    std::printf("\n");
  }
  if (pools.empty()) {
    std::printf("  (none found — lower --commuters or thresholds)\n");
  }
  std::printf("\n%zu candidate pools in total\n", pools.size());
  return 0;
}
