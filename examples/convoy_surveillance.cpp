// Military surveillance — the paper's fourth motivating application and
// its effectiveness testbed (dataset D2): a battlefield monitoring system
// watches an area, batches sensor reports into snapshots, and must report
// the units that move in formation (the teams) while the march is still
// in progress.
//
//   $ ./convoy_surveillance [--teams N] [--drop F]
//
// Ground truth (the team partition) is known, so the example prints a
// live alert feed and closes with precision/recall — exactly the paper's
// Section V-D evaluation in miniature.

#include <cstdio>

#include "core/discoverer.h"
#include "data/degrade.h"
#include "data/military_gen.h"
#include "eval/metrics.h"
#include "stream/inactive_period.h"
#include "util/flags.h"

int main(int argc, char** argv) {
  using namespace tcomp;

  FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return 1;
  const int teams = flags.GetInt("teams", 30);
  const double drop = flags.GetDouble("drop", 0.05);

  MilitaryOptions options;
  options.num_teams = teams;
  options.num_units = teams * 26;
  options.num_snapshots = 180;  // 3 hours at 1-minute sampling
  MilitaryDataset data = GenerateMilitary(options);

  // Sensor dropouts + the paper's inactive-period tolerance.
  SnapshotStream degraded = DropReports(data.stream, drop, /*seed=*/5);
  InactivePeriodFiller filler(/*max_inactive_snapshots=*/2);

  DiscoveryParams params;
  params.cluster.epsilon = 24.0;
  params.cluster.mu = 5;
  params.size_threshold = 15;      // a team-sized formation
  params.duration_threshold = 20;  // 20 minutes of sustained co-movement

  auto discoverer = MakeDiscoverer(Algorithm::kBuddy, params);
  int alerts = 0;
  for (size_t t = 0; t < degraded.size(); ++t) {
    std::vector<Companion> newly;
    discoverer->ProcessSnapshot(filler.Fill(degraded[t]), &newly);
    for (const Companion& c : newly) {
      if (alerts < 12) {
        std::printf("[t+%3zu min] ALERT: formation of %zu units detected "
                    "(moving together for %.0f min)\n",
                    t, c.objects.size(), c.duration);
      }
      ++alerts;
    }
  }
  if (alerts > 12) std::printf("... %d more alerts\n", alerts - 12);

  std::vector<ObjectSet> retrieved;
  for (const Companion& c : discoverer->log().companions()) {
    retrieved.push_back(c.objects);
  }
  EffectivenessResult strict =
      ScoreCompanions(retrieved, data.ground_truth, 0.5);
  EffectivenessResult coverage =
      ScoreCompanionsCoverage(retrieved, data.ground_truth, 0.35);

  std::printf("\nground truth: %d teams; retrieved: %zu formations\n",
              teams, retrieved.size());
  std::printf("one-to-one   precision %.1f%%  recall %.1f%%\n",
              100.0 * strict.precision, 100.0 * strict.recall);
  std::printf("coverage     precision %.1f%%  recall %.1f%%\n",
              100.0 * coverage.precision, 100.0 * coverage.recall);
  return 0;
}
