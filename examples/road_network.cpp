// Road-network companion discovery — the paper's Section VIII future
// work ("we plan to extend the companion discovery technique to more
// complex scenarios, such as road networks"), implemented in
// src/network/.
//
//   $ ./road_network
//
// Vehicles drive a 12×12 city grid; platoons travel strung out along the
// road. The example contrasts Euclidean and network-constrained
// discovery on the same stream: across a block, two unrelated platoons
// on parallel avenues are Euclidean-close but network-far.

#include <algorithm>
#include <cstdio>

#include "core/discoverer.h"
#include "eval/metrics.h"
#include "network/network_dbscan.h"
#include "network/network_gen.h"

int main() {
  using namespace tcomp;

  NetworkTrafficOptions options;
  options.num_vehicles = 300;
  options.num_snapshots = 80;
  options.platoon_size_min = 5;
  options.platoon_size_max = 10;
  options.seed = 31;
  NetworkTrafficDataset city = GenerateNetworkTraffic(options);
  std::printf("city: %zu intersections, %zu road segments, %d vehicles, "
              "%zu platoons\n",
              city.graph.num_nodes(), city.graph.num_edges(),
              options.num_vehicles, city.ground_truth.size());

  DiscoveryParams params;
  // ε at half a block: wide enough that straight-line distance reaches
  // across to parallel avenues, while road distance does not.
  params.cluster.epsilon = 200.0;
  params.cluster.mu = 3;
  params.size_threshold = 5;
  params.duration_threshold = 15;

  // Euclidean discovery (straight-line ε) vs network discovery (road
  // distance ε) on the same stream.
  auto euclid = MakeDiscoverer(Algorithm::kSmartClosed, params);
  auto network = MakeNetworkDiscoverer(city.graph, params);
  for (const Snapshot& s : city.stream) {
    euclid->ProcessSnapshot(s, nullptr);
    network->ProcessSnapshot(s, nullptr);
  }

  auto score = [&](const CompanionDiscoverer& d) {
    std::vector<ObjectSet> retrieved;
    for (const Companion& c : d.log().companions()) {
      retrieved.push_back(c.objects);
    }
    return ScoreCompanions(retrieved, city.ground_truth, 0.5);
  };
  EffectivenessResult e = score(*euclid);
  EffectivenessResult n = score(*network);

  std::printf("\n%-22s %10s %10s %10s\n", "", "groups", "precision",
              "recall");
  std::printf("%-22s %10zu %9.1f%% %9.1f%%\n", "Euclidean epsilon",
              euclid->log().size(), 100.0 * e.precision, 100.0 * e.recall);
  std::printf("%-22s %10zu %9.1f%% %9.1f%%\n", "network epsilon",
              network->log().size(), 100.0 * n.precision,
              100.0 * n.recall);

  std::printf("\nwhy they differ: with straight-line distance, platoons "
              "passing on parallel\navenues or opposite sides of an "
              "intersection get merged into one cluster;\nthe road metric "
              "knows they are a block of driving apart.\n");
  return 0;
}
