// End-to-end stream monitor — the paper's Section VI pipeline: raw
// position reports arrive out of order with per-device delays and
// dropouts; a sliding window batches them into snapshots (averaging
// multi-reports), the inactive-period rule tolerates missing data, and
// companions are reported while the stream is still flowing.
//
//   $ ./stream_monitor [--window equal-length|equal-width]
//
// This is the deployment-shaped example: everything the library does
// between a socket and an alert.

#include <cstdio>
#include <string>

#include "core/discoverer.h"
#include "data/military_gen.h"
#include "data/trajectory_io.h"
#include "stream/inactive_period.h"
#include "stream/sliding_window.h"
#include "util/flags.h"
#include "util/random.h"

int main(int argc, char** argv) {
  using namespace tcomp;

  FlagParser flags;
  if (!flags.Parse(argc, argv).ok()) return 1;
  const std::string mode = flags.GetString("window", "equal-length");

  // Source: a military march, flattened to timestamped records.
  MilitaryOptions options;
  options.num_teams = 10;
  options.num_units = 260;
  options.num_snapshots = 120;
  MilitaryDataset data = GenerateMilitary(options);
  std::vector<TrajectoryRecord> records =
      StreamToRecords(data.stream, /*seconds_per_snapshot=*/60.0);

  // Network effects: per-report jitter within the minute, 4% loss, and
  // local reordering.
  Pcg32 rng(123);
  std::vector<TrajectoryRecord> wire;
  wire.reserve(records.size());
  for (TrajectoryRecord r : records) {
    if (rng.NextBernoulli(0.04)) continue;
    r.timestamp += rng.NextDouble(0.0, 55.0);
    wire.push_back(r);
  }
  for (size_t i = 0; i + 1 < wire.size(); i += 2) {
    if (rng.NextBernoulli(0.25)) std::swap(wire[i], wire[i + 1]);
  }

  // Sliding window (Section VI): equal-length (fixed 60 s span) or
  // equal-width (snapshot closes once 260 objects reported).
  SlidingWindowOptions wopts;
  if (mode == "equal-width") {
    wopts.mode = WindowMode::kEqualWidth;
    wopts.min_objects = 260;
  } else {
    wopts.mode = WindowMode::kEqualLength;
    wopts.window_length = 60.0;
  }
  SlidingWindowSnapshotter window(wopts);
  InactivePeriodFiller filler(/*max_inactive_snapshots=*/2);

  DiscoveryParams params;
  params.cluster.epsilon = 24.0;
  params.cluster.mu = 5;
  params.size_threshold = 12;
  params.duration_threshold = 15;
  auto discoverer = MakeDiscoverer(Algorithm::kBuddy, params);

  int64_t pushed = 0, snapshots = 0, alerts = 0;
  std::vector<Snapshot> ready;
  for (const TrajectoryRecord& r : wire) {
    if (!window.Push(r, &ready).ok()) continue;
    ++pushed;
    for (const Snapshot& s : ready) {
      ++snapshots;
      std::vector<Companion> newly;
      discoverer->ProcessSnapshot(filler.Fill(s), &newly);
      for (const Companion& c : newly) {
        if (alerts < 8) {
          std::printf("[snapshot %3lld, %6lld records in] group of %zu "
                      "moving together %.0f min\n",
                      static_cast<long long>(snapshots),
                      static_cast<long long>(pushed), c.objects.size(),
                      c.duration);
        }
        ++alerts;
      }
    }
    ready.clear();
  }
  window.Flush(&ready);
  for (const Snapshot& s : ready) {
    discoverer->ProcessSnapshot(filler.Fill(s), nullptr);
    ++snapshots;
  }

  std::printf("\nwindow mode        %s\nrecords delivered  %zu\n"
              "snapshots formed   %lld\nalerts raised      %lld\n"
              "distinct groups    %zu\n",
              mode.c_str(), wire.size(), static_cast<long long>(snapshots),
              static_cast<long long>(alerts), discoverer->log().size());
  return 0;
}
