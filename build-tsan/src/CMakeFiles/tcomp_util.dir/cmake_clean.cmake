file(REMOVE_RECURSE
  "CMakeFiles/tcomp_util.dir/util/flags.cc.o"
  "CMakeFiles/tcomp_util.dir/util/flags.cc.o.d"
  "CMakeFiles/tcomp_util.dir/util/logging.cc.o"
  "CMakeFiles/tcomp_util.dir/util/logging.cc.o.d"
  "CMakeFiles/tcomp_util.dir/util/status.cc.o"
  "CMakeFiles/tcomp_util.dir/util/status.cc.o.d"
  "CMakeFiles/tcomp_util.dir/util/thread_pool.cc.o"
  "CMakeFiles/tcomp_util.dir/util/thread_pool.cc.o.d"
  "libtcomp_util.a"
  "libtcomp_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcomp_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
