file(REMOVE_RECURSE
  "libtcomp_util.a"
)
