# Empty dependencies file for tcomp_util.
# This may be replaced when dependencies are built.
