# Empty dependencies file for tcomp_core.
# This may be replaced when dependencies are built.
