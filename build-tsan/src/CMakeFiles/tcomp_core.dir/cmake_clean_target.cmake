file(REMOVE_RECURSE
  "libtcomp_core.a"
)
