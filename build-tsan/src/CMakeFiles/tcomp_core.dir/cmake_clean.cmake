file(REMOVE_RECURSE
  "CMakeFiles/tcomp_core.dir/core/buddy.cc.o"
  "CMakeFiles/tcomp_core.dir/core/buddy.cc.o.d"
  "CMakeFiles/tcomp_core.dir/core/buddy_clustering.cc.o"
  "CMakeFiles/tcomp_core.dir/core/buddy_clustering.cc.o.d"
  "CMakeFiles/tcomp_core.dir/core/buddy_discovery.cc.o"
  "CMakeFiles/tcomp_core.dir/core/buddy_discovery.cc.o.d"
  "CMakeFiles/tcomp_core.dir/core/buddy_index.cc.o"
  "CMakeFiles/tcomp_core.dir/core/buddy_index.cc.o.d"
  "CMakeFiles/tcomp_core.dir/core/candidate.cc.o"
  "CMakeFiles/tcomp_core.dir/core/candidate.cc.o.d"
  "CMakeFiles/tcomp_core.dir/core/checkpoint.cc.o"
  "CMakeFiles/tcomp_core.dir/core/checkpoint.cc.o.d"
  "CMakeFiles/tcomp_core.dir/core/clustering_intersection.cc.o"
  "CMakeFiles/tcomp_core.dir/core/clustering_intersection.cc.o.d"
  "CMakeFiles/tcomp_core.dir/core/dbscan.cc.o"
  "CMakeFiles/tcomp_core.dir/core/dbscan.cc.o.d"
  "CMakeFiles/tcomp_core.dir/core/discoverer.cc.o"
  "CMakeFiles/tcomp_core.dir/core/discoverer.cc.o.d"
  "CMakeFiles/tcomp_core.dir/core/evolution.cc.o"
  "CMakeFiles/tcomp_core.dir/core/evolution.cc.o.d"
  "CMakeFiles/tcomp_core.dir/core/smart_closed.cc.o"
  "CMakeFiles/tcomp_core.dir/core/smart_closed.cc.o.d"
  "CMakeFiles/tcomp_core.dir/core/snapshot.cc.o"
  "CMakeFiles/tcomp_core.dir/core/snapshot.cc.o.d"
  "CMakeFiles/tcomp_core.dir/core/timeline.cc.o"
  "CMakeFiles/tcomp_core.dir/core/timeline.cc.o.d"
  "libtcomp_core.a"
  "libtcomp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcomp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
