
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/buddy.cc" "src/CMakeFiles/tcomp_core.dir/core/buddy.cc.o" "gcc" "src/CMakeFiles/tcomp_core.dir/core/buddy.cc.o.d"
  "/root/repo/src/core/buddy_clustering.cc" "src/CMakeFiles/tcomp_core.dir/core/buddy_clustering.cc.o" "gcc" "src/CMakeFiles/tcomp_core.dir/core/buddy_clustering.cc.o.d"
  "/root/repo/src/core/buddy_discovery.cc" "src/CMakeFiles/tcomp_core.dir/core/buddy_discovery.cc.o" "gcc" "src/CMakeFiles/tcomp_core.dir/core/buddy_discovery.cc.o.d"
  "/root/repo/src/core/buddy_index.cc" "src/CMakeFiles/tcomp_core.dir/core/buddy_index.cc.o" "gcc" "src/CMakeFiles/tcomp_core.dir/core/buddy_index.cc.o.d"
  "/root/repo/src/core/candidate.cc" "src/CMakeFiles/tcomp_core.dir/core/candidate.cc.o" "gcc" "src/CMakeFiles/tcomp_core.dir/core/candidate.cc.o.d"
  "/root/repo/src/core/checkpoint.cc" "src/CMakeFiles/tcomp_core.dir/core/checkpoint.cc.o" "gcc" "src/CMakeFiles/tcomp_core.dir/core/checkpoint.cc.o.d"
  "/root/repo/src/core/clustering_intersection.cc" "src/CMakeFiles/tcomp_core.dir/core/clustering_intersection.cc.o" "gcc" "src/CMakeFiles/tcomp_core.dir/core/clustering_intersection.cc.o.d"
  "/root/repo/src/core/dbscan.cc" "src/CMakeFiles/tcomp_core.dir/core/dbscan.cc.o" "gcc" "src/CMakeFiles/tcomp_core.dir/core/dbscan.cc.o.d"
  "/root/repo/src/core/discoverer.cc" "src/CMakeFiles/tcomp_core.dir/core/discoverer.cc.o" "gcc" "src/CMakeFiles/tcomp_core.dir/core/discoverer.cc.o.d"
  "/root/repo/src/core/evolution.cc" "src/CMakeFiles/tcomp_core.dir/core/evolution.cc.o" "gcc" "src/CMakeFiles/tcomp_core.dir/core/evolution.cc.o.d"
  "/root/repo/src/core/smart_closed.cc" "src/CMakeFiles/tcomp_core.dir/core/smart_closed.cc.o" "gcc" "src/CMakeFiles/tcomp_core.dir/core/smart_closed.cc.o.d"
  "/root/repo/src/core/snapshot.cc" "src/CMakeFiles/tcomp_core.dir/core/snapshot.cc.o" "gcc" "src/CMakeFiles/tcomp_core.dir/core/snapshot.cc.o.d"
  "/root/repo/src/core/timeline.cc" "src/CMakeFiles/tcomp_core.dir/core/timeline.cc.o" "gcc" "src/CMakeFiles/tcomp_core.dir/core/timeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/tcomp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
