# Empty dependencies file for tcomp_network.
# This may be replaced when dependencies are built.
