file(REMOVE_RECURSE
  "libtcomp_network.a"
)
