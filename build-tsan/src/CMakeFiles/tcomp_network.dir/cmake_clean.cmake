file(REMOVE_RECURSE
  "CMakeFiles/tcomp_network.dir/network/network_dbscan.cc.o"
  "CMakeFiles/tcomp_network.dir/network/network_dbscan.cc.o.d"
  "CMakeFiles/tcomp_network.dir/network/network_gen.cc.o"
  "CMakeFiles/tcomp_network.dir/network/network_gen.cc.o.d"
  "CMakeFiles/tcomp_network.dir/network/road_graph.cc.o"
  "CMakeFiles/tcomp_network.dir/network/road_graph.cc.o.d"
  "libtcomp_network.a"
  "libtcomp_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcomp_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
