
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/network/network_dbscan.cc" "src/CMakeFiles/tcomp_network.dir/network/network_dbscan.cc.o" "gcc" "src/CMakeFiles/tcomp_network.dir/network/network_dbscan.cc.o.d"
  "/root/repo/src/network/network_gen.cc" "src/CMakeFiles/tcomp_network.dir/network/network_gen.cc.o" "gcc" "src/CMakeFiles/tcomp_network.dir/network/network_gen.cc.o.d"
  "/root/repo/src/network/road_graph.cc" "src/CMakeFiles/tcomp_network.dir/network/road_graph.cc.o" "gcc" "src/CMakeFiles/tcomp_network.dir/network/road_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/tcomp_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/tcomp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
