# Empty dependencies file for tcomp_data.
# This may be replaced when dependencies are built.
