
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/degrade.cc" "src/CMakeFiles/tcomp_data.dir/data/degrade.cc.o" "gcc" "src/CMakeFiles/tcomp_data.dir/data/degrade.cc.o.d"
  "/root/repo/src/data/group_model.cc" "src/CMakeFiles/tcomp_data.dir/data/group_model.cc.o" "gcc" "src/CMakeFiles/tcomp_data.dir/data/group_model.cc.o.d"
  "/root/repo/src/data/military_gen.cc" "src/CMakeFiles/tcomp_data.dir/data/military_gen.cc.o" "gcc" "src/CMakeFiles/tcomp_data.dir/data/military_gen.cc.o.d"
  "/root/repo/src/data/synthetic_gen.cc" "src/CMakeFiles/tcomp_data.dir/data/synthetic_gen.cc.o" "gcc" "src/CMakeFiles/tcomp_data.dir/data/synthetic_gen.cc.o.d"
  "/root/repo/src/data/taxi_gen.cc" "src/CMakeFiles/tcomp_data.dir/data/taxi_gen.cc.o" "gcc" "src/CMakeFiles/tcomp_data.dir/data/taxi_gen.cc.o.d"
  "/root/repo/src/data/trajectory_io.cc" "src/CMakeFiles/tcomp_data.dir/data/trajectory_io.cc.o" "gcc" "src/CMakeFiles/tcomp_data.dir/data/trajectory_io.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/tcomp_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/tcomp_stream.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/tcomp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
