file(REMOVE_RECURSE
  "libtcomp_data.a"
)
