file(REMOVE_RECURSE
  "CMakeFiles/tcomp_data.dir/data/degrade.cc.o"
  "CMakeFiles/tcomp_data.dir/data/degrade.cc.o.d"
  "CMakeFiles/tcomp_data.dir/data/group_model.cc.o"
  "CMakeFiles/tcomp_data.dir/data/group_model.cc.o.d"
  "CMakeFiles/tcomp_data.dir/data/military_gen.cc.o"
  "CMakeFiles/tcomp_data.dir/data/military_gen.cc.o.d"
  "CMakeFiles/tcomp_data.dir/data/synthetic_gen.cc.o"
  "CMakeFiles/tcomp_data.dir/data/synthetic_gen.cc.o.d"
  "CMakeFiles/tcomp_data.dir/data/taxi_gen.cc.o"
  "CMakeFiles/tcomp_data.dir/data/taxi_gen.cc.o.d"
  "CMakeFiles/tcomp_data.dir/data/trajectory_io.cc.o"
  "CMakeFiles/tcomp_data.dir/data/trajectory_io.cc.o.d"
  "libtcomp_data.a"
  "libtcomp_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcomp_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
