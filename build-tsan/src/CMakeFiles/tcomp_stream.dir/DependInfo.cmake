
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/geo.cc" "src/CMakeFiles/tcomp_stream.dir/stream/geo.cc.o" "gcc" "src/CMakeFiles/tcomp_stream.dir/stream/geo.cc.o.d"
  "/root/repo/src/stream/inactive_period.cc" "src/CMakeFiles/tcomp_stream.dir/stream/inactive_period.cc.o" "gcc" "src/CMakeFiles/tcomp_stream.dir/stream/inactive_period.cc.o.d"
  "/root/repo/src/stream/sliding_window.cc" "src/CMakeFiles/tcomp_stream.dir/stream/sliding_window.cc.o" "gcc" "src/CMakeFiles/tcomp_stream.dir/stream/sliding_window.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/tcomp_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/tcomp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
