file(REMOVE_RECURSE
  "libtcomp_stream.a"
)
