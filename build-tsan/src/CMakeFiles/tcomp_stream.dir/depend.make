# Empty dependencies file for tcomp_stream.
# This may be replaced when dependencies are built.
