file(REMOVE_RECURSE
  "CMakeFiles/tcomp_stream.dir/stream/geo.cc.o"
  "CMakeFiles/tcomp_stream.dir/stream/geo.cc.o.d"
  "CMakeFiles/tcomp_stream.dir/stream/inactive_period.cc.o"
  "CMakeFiles/tcomp_stream.dir/stream/inactive_period.cc.o.d"
  "CMakeFiles/tcomp_stream.dir/stream/sliding_window.cc.o"
  "CMakeFiles/tcomp_stream.dir/stream/sliding_window.cc.o.d"
  "libtcomp_stream.a"
  "libtcomp_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcomp_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
