file(REMOVE_RECURSE
  "CMakeFiles/tcomp_baselines.dir/baselines/convoy.cc.o"
  "CMakeFiles/tcomp_baselines.dir/baselines/convoy.cc.o.d"
  "CMakeFiles/tcomp_baselines.dir/baselines/segment.cc.o"
  "CMakeFiles/tcomp_baselines.dir/baselines/segment.cc.o.d"
  "CMakeFiles/tcomp_baselines.dir/baselines/swarm.cc.o"
  "CMakeFiles/tcomp_baselines.dir/baselines/swarm.cc.o.d"
  "CMakeFiles/tcomp_baselines.dir/baselines/traclus.cc.o"
  "CMakeFiles/tcomp_baselines.dir/baselines/traclus.cc.o.d"
  "libtcomp_baselines.a"
  "libtcomp_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcomp_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
