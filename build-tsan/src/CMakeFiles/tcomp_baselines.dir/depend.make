# Empty dependencies file for tcomp_baselines.
# This may be replaced when dependencies are built.
