file(REMOVE_RECURSE
  "libtcomp_baselines.a"
)
