file(REMOVE_RECURSE
  "CMakeFiles/tcomp_spatial.dir/spatial/quadtree.cc.o"
  "CMakeFiles/tcomp_spatial.dir/spatial/quadtree.cc.o.d"
  "CMakeFiles/tcomp_spatial.dir/spatial/rtree.cc.o"
  "CMakeFiles/tcomp_spatial.dir/spatial/rtree.cc.o.d"
  "libtcomp_spatial.a"
  "libtcomp_spatial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcomp_spatial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
