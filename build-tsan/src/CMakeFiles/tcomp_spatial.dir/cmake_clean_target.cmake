file(REMOVE_RECURSE
  "libtcomp_spatial.a"
)
