# Empty dependencies file for tcomp_spatial.
# This may be replaced when dependencies are built.
