file(REMOVE_RECURSE
  "CMakeFiles/tcomp_eval.dir/eval/export.cc.o"
  "CMakeFiles/tcomp_eval.dir/eval/export.cc.o.d"
  "CMakeFiles/tcomp_eval.dir/eval/metrics.cc.o"
  "CMakeFiles/tcomp_eval.dir/eval/metrics.cc.o.d"
  "CMakeFiles/tcomp_eval.dir/eval/runner.cc.o"
  "CMakeFiles/tcomp_eval.dir/eval/runner.cc.o.d"
  "CMakeFiles/tcomp_eval.dir/eval/table.cc.o"
  "CMakeFiles/tcomp_eval.dir/eval/table.cc.o.d"
  "CMakeFiles/tcomp_eval.dir/eval/tuning.cc.o"
  "CMakeFiles/tcomp_eval.dir/eval/tuning.cc.o.d"
  "libtcomp_eval.a"
  "libtcomp_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcomp_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
