
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/export.cc" "src/CMakeFiles/tcomp_eval.dir/eval/export.cc.o" "gcc" "src/CMakeFiles/tcomp_eval.dir/eval/export.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/CMakeFiles/tcomp_eval.dir/eval/metrics.cc.o" "gcc" "src/CMakeFiles/tcomp_eval.dir/eval/metrics.cc.o.d"
  "/root/repo/src/eval/runner.cc" "src/CMakeFiles/tcomp_eval.dir/eval/runner.cc.o" "gcc" "src/CMakeFiles/tcomp_eval.dir/eval/runner.cc.o.d"
  "/root/repo/src/eval/table.cc" "src/CMakeFiles/tcomp_eval.dir/eval/table.cc.o" "gcc" "src/CMakeFiles/tcomp_eval.dir/eval/table.cc.o.d"
  "/root/repo/src/eval/tuning.cc" "src/CMakeFiles/tcomp_eval.dir/eval/tuning.cc.o" "gcc" "src/CMakeFiles/tcomp_eval.dir/eval/tuning.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/tcomp_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/tcomp_baselines.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/tcomp_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/tcomp_stream.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/tcomp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
