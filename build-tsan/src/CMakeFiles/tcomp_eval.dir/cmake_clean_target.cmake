file(REMOVE_RECURSE
  "libtcomp_eval.a"
)
