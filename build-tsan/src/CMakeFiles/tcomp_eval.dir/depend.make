# Empty dependencies file for tcomp_eval.
# This may be replaced when dependencies are built.
