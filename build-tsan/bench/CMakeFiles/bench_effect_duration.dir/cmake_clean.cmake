file(REMOVE_RECURSE
  "CMakeFiles/bench_effect_duration.dir/bench_effect_duration.cc.o"
  "CMakeFiles/bench_effect_duration.dir/bench_effect_duration.cc.o.d"
  "bench_effect_duration"
  "bench_effect_duration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_effect_duration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
