# Empty compiler generated dependencies file for bench_effect_duration.
# This may be replaced when dependencies are built.
