file(REMOVE_RECURSE
  "CMakeFiles/bench_inactive_effect.dir/bench_inactive_effect.cc.o"
  "CMakeFiles/bench_inactive_effect.dir/bench_inactive_effect.cc.o.d"
  "bench_inactive_effect"
  "bench_inactive_effect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inactive_effect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
