# Empty dependencies file for bench_inactive_effect.
# This may be replaced when dependencies are built.
