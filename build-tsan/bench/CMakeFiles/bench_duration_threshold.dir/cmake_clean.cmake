file(REMOVE_RECURSE
  "CMakeFiles/bench_duration_threshold.dir/bench_duration_threshold.cc.o"
  "CMakeFiles/bench_duration_threshold.dir/bench_duration_threshold.cc.o.d"
  "bench_duration_threshold"
  "bench_duration_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_duration_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
