# Empty dependencies file for bench_duration_threshold.
# This may be replaced when dependencies are built.
