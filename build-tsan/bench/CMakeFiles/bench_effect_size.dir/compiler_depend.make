# Empty compiler generated dependencies file for bench_effect_size.
# This may be replaced when dependencies are built.
