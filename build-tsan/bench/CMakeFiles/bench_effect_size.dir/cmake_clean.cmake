file(REMOVE_RECURSE
  "CMakeFiles/bench_effect_size.dir/bench_effect_size.cc.o"
  "CMakeFiles/bench_effect_size.dir/bench_effect_size.cc.o.d"
  "bench_effect_size"
  "bench_effect_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_effect_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
