file(REMOVE_RECURSE
  "CMakeFiles/bench_index_maintenance.dir/bench_index_maintenance.cc.o"
  "CMakeFiles/bench_index_maintenance.dir/bench_index_maintenance.cc.o.d"
  "bench_index_maintenance"
  "bench_index_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_index_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
