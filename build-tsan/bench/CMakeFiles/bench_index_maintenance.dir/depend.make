# Empty dependencies file for bench_index_maintenance.
# This may be replaced when dependencies are built.
