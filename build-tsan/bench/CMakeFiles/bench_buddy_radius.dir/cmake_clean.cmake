file(REMOVE_RECURSE
  "CMakeFiles/bench_buddy_radius.dir/bench_buddy_radius.cc.o"
  "CMakeFiles/bench_buddy_radius.dir/bench_buddy_radius.cc.o.d"
  "bench_buddy_radius"
  "bench_buddy_radius.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_buddy_radius.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
