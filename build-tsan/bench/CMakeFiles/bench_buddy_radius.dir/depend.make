# Empty dependencies file for bench_buddy_radius.
# This may be replaced when dependencies are built.
