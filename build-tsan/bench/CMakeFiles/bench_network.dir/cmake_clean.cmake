file(REMOVE_RECURSE
  "CMakeFiles/bench_network.dir/bench_network.cc.o"
  "CMakeFiles/bench_network.dir/bench_network.cc.o.d"
  "bench_network"
  "bench_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
