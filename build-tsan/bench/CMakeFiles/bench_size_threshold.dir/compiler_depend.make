# Empty compiler generated dependencies file for bench_size_threshold.
# This may be replaced when dependencies are built.
