file(REMOVE_RECURSE
  "CMakeFiles/bench_size_threshold.dir/bench_size_threshold.cc.o"
  "CMakeFiles/bench_size_threshold.dir/bench_size_threshold.cc.o.d"
  "bench_size_threshold"
  "bench_size_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_size_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
