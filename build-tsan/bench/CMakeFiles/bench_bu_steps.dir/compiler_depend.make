# Empty compiler generated dependencies file for bench_bu_steps.
# This may be replaced when dependencies are built.
