file(REMOVE_RECURSE
  "CMakeFiles/bench_bu_steps.dir/bench_bu_steps.cc.o"
  "CMakeFiles/bench_bu_steps.dir/bench_bu_steps.cc.o.d"
  "bench_bu_steps"
  "bench_bu_steps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bu_steps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
