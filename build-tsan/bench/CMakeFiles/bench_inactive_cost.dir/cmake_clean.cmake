file(REMOVE_RECURSE
  "CMakeFiles/bench_inactive_cost.dir/bench_inactive_cost.cc.o"
  "CMakeFiles/bench_inactive_cost.dir/bench_inactive_cost.cc.o.d"
  "bench_inactive_cost"
  "bench_inactive_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_inactive_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
