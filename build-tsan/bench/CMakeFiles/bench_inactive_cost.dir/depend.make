# Empty dependencies file for bench_inactive_cost.
# This may be replaced when dependencies are built.
