# Empty dependencies file for tcomp_cli.
# This may be replaced when dependencies are built.
