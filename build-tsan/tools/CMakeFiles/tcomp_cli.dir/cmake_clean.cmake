file(REMOVE_RECURSE
  "CMakeFiles/tcomp_cli.dir/tcomp_cli.cc.o"
  "CMakeFiles/tcomp_cli.dir/tcomp_cli.cc.o.d"
  "tcomp"
  "tcomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcomp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
