# Empty dependencies file for convoy_surveillance.
# This may be replaced when dependencies are built.
