file(REMOVE_RECURSE
  "CMakeFiles/convoy_surveillance.dir/convoy_surveillance.cpp.o"
  "CMakeFiles/convoy_surveillance.dir/convoy_surveillance.cpp.o.d"
  "convoy_surveillance"
  "convoy_surveillance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convoy_surveillance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
