
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/road_network.cpp" "examples/CMakeFiles/road_network.dir/road_network.cpp.o" "gcc" "examples/CMakeFiles/road_network.dir/road_network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-tsan/src/CMakeFiles/tcomp_eval.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/tcomp_baselines.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/tcomp_data.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/tcomp_stream.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/tcomp_network.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/tcomp_spatial.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/tcomp_core.dir/DependInfo.cmake"
  "/root/repo/build-tsan/src/CMakeFiles/tcomp_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
