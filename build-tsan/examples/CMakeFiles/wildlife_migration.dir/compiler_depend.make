# Empty compiler generated dependencies file for wildlife_migration.
# This may be replaced when dependencies are built.
