file(REMOVE_RECURSE
  "CMakeFiles/wildlife_migration.dir/wildlife_migration.cpp.o"
  "CMakeFiles/wildlife_migration.dir/wildlife_migration.cpp.o.d"
  "wildlife_migration"
  "wildlife_migration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wildlife_migration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
