file(REMOVE_RECURSE
  "CMakeFiles/carpool_finder.dir/carpool_finder.cpp.o"
  "CMakeFiles/carpool_finder.dir/carpool_finder.cpp.o.d"
  "carpool_finder"
  "carpool_finder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/carpool_finder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
