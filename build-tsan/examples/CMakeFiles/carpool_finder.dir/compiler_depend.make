# Empty compiler generated dependencies file for carpool_finder.
# This may be replaced when dependencies are built.
