# Empty compiler generated dependencies file for bu_equivalence_test.
# This may be replaced when dependencies are built.
