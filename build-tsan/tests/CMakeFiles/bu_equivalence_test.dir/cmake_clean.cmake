file(REMOVE_RECURSE
  "CMakeFiles/bu_equivalence_test.dir/bu_equivalence_test.cc.o"
  "CMakeFiles/bu_equivalence_test.dir/bu_equivalence_test.cc.o.d"
  "bu_equivalence_test"
  "bu_equivalence_test.pdb"
  "bu_equivalence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bu_equivalence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
