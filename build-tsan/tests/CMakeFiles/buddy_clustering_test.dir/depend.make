# Empty dependencies file for buddy_clustering_test.
# This may be replaced when dependencies are built.
