file(REMOVE_RECURSE
  "CMakeFiles/buddy_clustering_test.dir/buddy_clustering_test.cc.o"
  "CMakeFiles/buddy_clustering_test.dir/buddy_clustering_test.cc.o.d"
  "buddy_clustering_test"
  "buddy_clustering_test.pdb"
  "buddy_clustering_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buddy_clustering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
