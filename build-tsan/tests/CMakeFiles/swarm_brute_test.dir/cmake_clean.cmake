file(REMOVE_RECURSE
  "CMakeFiles/swarm_brute_test.dir/swarm_brute_test.cc.o"
  "CMakeFiles/swarm_brute_test.dir/swarm_brute_test.cc.o.d"
  "swarm_brute_test"
  "swarm_brute_test.pdb"
  "swarm_brute_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swarm_brute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
