# Empty dependencies file for swarm_brute_test.
# This may be replaced when dependencies are built.
