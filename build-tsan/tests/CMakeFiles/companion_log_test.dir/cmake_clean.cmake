file(REMOVE_RECURSE
  "CMakeFiles/companion_log_test.dir/companion_log_test.cc.o"
  "CMakeFiles/companion_log_test.dir/companion_log_test.cc.o.d"
  "companion_log_test"
  "companion_log_test.pdb"
  "companion_log_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/companion_log_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
