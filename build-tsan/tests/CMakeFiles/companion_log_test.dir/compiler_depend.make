# Empty compiler generated dependencies file for companion_log_test.
# This may be replaced when dependencies are built.
