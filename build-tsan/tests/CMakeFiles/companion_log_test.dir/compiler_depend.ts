# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for companion_log_test.
