file(REMOVE_RECURSE
  "CMakeFiles/degrade_test.dir/degrade_test.cc.o"
  "CMakeFiles/degrade_test.dir/degrade_test.cc.o.d"
  "degrade_test"
  "degrade_test.pdb"
  "degrade_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/degrade_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
