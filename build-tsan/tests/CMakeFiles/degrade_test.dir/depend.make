# Empty dependencies file for degrade_test.
# This may be replaced when dependencies are built.
