# Empty compiler generated dependencies file for swarm_test.
# This may be replaced when dependencies are built.
