file(REMOVE_RECURSE
  "CMakeFiles/swarm_test.dir/swarm_test.cc.o"
  "CMakeFiles/swarm_test.dir/swarm_test.cc.o.d"
  "swarm_test"
  "swarm_test.pdb"
  "swarm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swarm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
