# Empty dependencies file for inactive_period_test.
# This may be replaced when dependencies are built.
