file(REMOVE_RECURSE
  "CMakeFiles/inactive_period_test.dir/inactive_period_test.cc.o"
  "CMakeFiles/inactive_period_test.dir/inactive_period_test.cc.o.d"
  "inactive_period_test"
  "inactive_period_test.pdb"
  "inactive_period_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inactive_period_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
