# Empty dependencies file for sorted_ops_test.
# This may be replaced when dependencies are built.
