file(REMOVE_RECURSE
  "CMakeFiles/sorted_ops_test.dir/sorted_ops_test.cc.o"
  "CMakeFiles/sorted_ops_test.dir/sorted_ops_test.cc.o.d"
  "sorted_ops_test"
  "sorted_ops_test.pdb"
  "sorted_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sorted_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
