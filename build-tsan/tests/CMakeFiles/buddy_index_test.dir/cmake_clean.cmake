file(REMOVE_RECURSE
  "CMakeFiles/buddy_index_test.dir/buddy_index_test.cc.o"
  "CMakeFiles/buddy_index_test.dir/buddy_index_test.cc.o.d"
  "buddy_index_test"
  "buddy_index_test.pdb"
  "buddy_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buddy_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
