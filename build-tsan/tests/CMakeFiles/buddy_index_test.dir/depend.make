# Empty dependencies file for buddy_index_test.
# This may be replaced when dependencies are built.
