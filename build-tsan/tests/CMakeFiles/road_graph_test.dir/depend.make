# Empty dependencies file for road_graph_test.
# This may be replaced when dependencies are built.
