file(REMOVE_RECURSE
  "CMakeFiles/road_graph_test.dir/road_graph_test.cc.o"
  "CMakeFiles/road_graph_test.dir/road_graph_test.cc.o.d"
  "road_graph_test"
  "road_graph_test.pdb"
  "road_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/road_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
