file(REMOVE_RECURSE
  "CMakeFiles/ci_sc_test.dir/ci_sc_test.cc.o"
  "CMakeFiles/ci_sc_test.dir/ci_sc_test.cc.o.d"
  "ci_sc_test"
  "ci_sc_test.pdb"
  "ci_sc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ci_sc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
