# Empty dependencies file for ci_sc_test.
# This may be replaced when dependencies are built.
