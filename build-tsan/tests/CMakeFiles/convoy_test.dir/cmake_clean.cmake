file(REMOVE_RECURSE
  "CMakeFiles/convoy_test.dir/convoy_test.cc.o"
  "CMakeFiles/convoy_test.dir/convoy_test.cc.o.d"
  "convoy_test"
  "convoy_test.pdb"
  "convoy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convoy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
