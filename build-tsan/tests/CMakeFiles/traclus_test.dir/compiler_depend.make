# Empty compiler generated dependencies file for traclus_test.
# This may be replaced when dependencies are built.
