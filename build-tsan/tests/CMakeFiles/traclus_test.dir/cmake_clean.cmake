file(REMOVE_RECURSE
  "CMakeFiles/traclus_test.dir/traclus_test.cc.o"
  "CMakeFiles/traclus_test.dir/traclus_test.cc.o.d"
  "traclus_test"
  "traclus_test.pdb"
  "traclus_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traclus_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
