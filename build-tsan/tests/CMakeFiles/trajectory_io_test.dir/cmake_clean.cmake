file(REMOVE_RECURSE
  "CMakeFiles/trajectory_io_test.dir/trajectory_io_test.cc.o"
  "CMakeFiles/trajectory_io_test.dir/trajectory_io_test.cc.o.d"
  "trajectory_io_test"
  "trajectory_io_test.pdb"
  "trajectory_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trajectory_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
