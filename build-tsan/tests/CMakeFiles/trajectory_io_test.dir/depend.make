# Empty dependencies file for trajectory_io_test.
# This may be replaced when dependencies are built.
