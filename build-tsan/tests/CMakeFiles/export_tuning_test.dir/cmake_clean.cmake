file(REMOVE_RECURSE
  "CMakeFiles/export_tuning_test.dir/export_tuning_test.cc.o"
  "CMakeFiles/export_tuning_test.dir/export_tuning_test.cc.o.d"
  "export_tuning_test"
  "export_tuning_test.pdb"
  "export_tuning_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/export_tuning_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
