# Empty compiler generated dependencies file for export_tuning_test.
# This may be replaced when dependencies are built.
