# Empty dependencies file for buddy_test.
# This may be replaced when dependencies are built.
