file(REMOVE_RECURSE
  "CMakeFiles/buddy_test.dir/buddy_test.cc.o"
  "CMakeFiles/buddy_test.dir/buddy_test.cc.o.d"
  "buddy_test"
  "buddy_test.pdb"
  "buddy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buddy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
