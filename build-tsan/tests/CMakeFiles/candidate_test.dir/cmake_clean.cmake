file(REMOVE_RECURSE
  "CMakeFiles/candidate_test.dir/candidate_test.cc.o"
  "CMakeFiles/candidate_test.dir/candidate_test.cc.o.d"
  "candidate_test"
  "candidate_test.pdb"
  "candidate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/candidate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
