# Empty dependencies file for network_dbscan_test.
# This may be replaced when dependencies are built.
