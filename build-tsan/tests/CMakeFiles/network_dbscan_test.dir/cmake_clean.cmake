file(REMOVE_RECURSE
  "CMakeFiles/network_dbscan_test.dir/network_dbscan_test.cc.o"
  "CMakeFiles/network_dbscan_test.dir/network_dbscan_test.cc.o.d"
  "network_dbscan_test"
  "network_dbscan_test.pdb"
  "network_dbscan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_dbscan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
