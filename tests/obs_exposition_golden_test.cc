// Golden-file test for the Prometheus-style exposition format. The
// format is a public surface (QUERY metrics payload, scrape targets), so
// any byte-level change must be deliberate: regenerate with
//   TCOMP_UPDATE_GOLDEN=1 ./obs_exposition_golden_test
// and review the diff like any other contract change.
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/stage_timer.h"

#ifndef TCOMP_GOLDEN_DIR
#error "TCOMP_GOLDEN_DIR must be defined by the build"
#endif

namespace tcomp {
namespace {

std::string GoldenPath() {
  return std::string(TCOMP_GOLDEN_DIR) + "/metrics_exposition.golden";
}

/// A registry with one instrument of each kind plus the full stage-sink
/// series set, all with fixed values — every byte of the rendering is
/// deterministic.
std::string RenderFixture() {
  MetricsRegistry registry;
  MetricsStageSink sink(&registry);
  registry.GetCounter("tcomp_records_ingested_total", "",
                      "Records accepted by Ingest()")
      ->Set(12345);
  registry
      .GetCounter("tcomp_queue_shed_total", "", "Records shed under load")
      ->Set(7);
  registry.GetGauge("tcomp_queue_depth", "", "Ingest queue depth")->Set(42);
  // The sharded engine's labeled per-shard gauges (the label set and its
  // rendering are part of the scrape contract, same as stage="...").
  registry
      .GetGauge("tcomp_shard_queue_depth", "shard=\"0\"",
                "Per-shard task queue depth at sampling time")
      ->Set(0);
  registry
      .GetGauge("tcomp_shard_queue_depth", "shard=\"1\"",
                "Per-shard task queue depth at sampling time")
      ->Set(3);
  // One sample per interesting histogram region: bucket 0, a mid bucket,
  // and the overflow slot.
  sink.RecordStage(Stage::kCluster, 0.5e-6);
  sink.RecordStage(Stage::kCluster, 3e-6);
  sink.RecordStage(Stage::kCluster, 100.0);
  sink.RecordStage(Stage::kSnapshotClose, 1e-3);
  // The sharded C-step stages exist (count 0 when sharding is off); give
  // two of them samples so the rendered buckets are pinned too.
  sink.RecordStage(Stage::kShardCluster, 2e-4);
  sink.RecordStage(Stage::kMergeStitch, 5e-5);
  return registry.ExpositionText();
}

TEST(ExpositionGoldenTest, MatchesGoldenFile) {
  std::string rendered = RenderFixture();
  if (std::getenv("TCOMP_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(GoldenPath());
    out << rendered;
    ASSERT_TRUE(out.good()) << "cannot write " << GoldenPath();
    GTEST_SKIP() << "golden file regenerated";
  }
  std::ifstream in(GoldenPath());
  ASSERT_TRUE(in.good()) << "missing golden file " << GoldenPath();
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(rendered, want.str())
      << "exposition format drifted from the golden file; if intentional, "
         "regenerate with TCOMP_UPDATE_GOLDEN=1 and review the diff";
}

TEST(ExpositionGoldenTest, RenderingIsStableAcrossRepeats) {
  std::string first = RenderFixture();
  for (int i = 0; i < 3; ++i) EXPECT_EQ(RenderFixture(), first);
}

}  // namespace
}  // namespace tcomp
