#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/discoverer.h"
#include "data/group_model.h"
#include "data/trajectory_io.h"
#include "eval/export.h"
#include "service/ingest_queue.h"
#include "service/pipeline.h"
#include "stream/sliding_window.h"

namespace tcomp {
namespace {

constexpr double kSecondsPerSnapshot = 60.0;

GroupDataset ChurnyStream(uint64_t seed) {
  GroupModelOptions options;
  options.num_objects = 80;
  options.num_snapshots = 24;
  options.area_size = 1500.0;
  options.min_group_size = 6;
  options.max_group_size = 12;
  options.split_probability = 0.015;
  options.leave_probability = 0.008;
  options.seed = seed;
  return GenerateGroupStream(options);
}

DiscoveryParams BaseParams() {
  DiscoveryParams params;
  params.cluster.epsilon = 18.0;
  params.cluster.mu = 3;
  params.size_threshold = 5;
  params.duration_threshold = 6;
  return params;
}

std::string CompanionsCsv(const std::vector<Companion>& companions) {
  std::ostringstream out;
  WriteCompanionsCsv(companions, out);
  return out.str();
}

/// The reference: the batch discover path (records → window → discoverer
/// on the caller's thread), exactly as tools/tcomp_cli.cc discover runs.
std::string BatchCsv(Algorithm algorithm,
                     const std::vector<TrajectoryRecord>& records) {
  auto discoverer = MakeDiscoverer(algorithm, BaseParams());
  SlidingWindowOptions wopts;
  wopts.window_length = kSecondsPerSnapshot;
  SlidingWindowSnapshotter window(wopts);
  std::vector<Snapshot> ready;
  for (const TrajectoryRecord& r : records) {
    EXPECT_TRUE(window.Push(r, &ready).ok());
    for (const Snapshot& s : ready) discoverer->ProcessSnapshot(s, nullptr);
    ready.clear();
  }
  window.Flush(&ready);
  for (const Snapshot& s : ready) discoverer->ProcessSnapshot(s, nullptr);
  return CompanionsCsv(discoverer->log().companions());
}

ServicePipelineOptions PipelineOptions(Algorithm algorithm) {
  ServicePipelineOptions opts;
  opts.algorithm = algorithm;
  opts.params = BaseParams();
  opts.window.window_length = kSecondsPerSnapshot;
  // Small on purpose: the feed outruns the discoverer, so kBlock
  // backpressure really engages during the differential runs.
  opts.queue_capacity = 64;
  return opts;
}

class ServiceDifferentialTest : public ::testing::TestWithParam<Algorithm> {
};

/// The daemon path (queue → window → discoverer on the worker) must emit
/// byte-identical companions to the batch path for every algorithm.
TEST_P(ServiceDifferentialTest, MatchesBatchPath) {
  GroupDataset data = ChurnyStream(901);
  std::vector<TrajectoryRecord> records =
      StreamToRecords(data.stream, kSecondsPerSnapshot);
  std::string expected = BatchCsv(GetParam(), records);

  ServicePipeline pipeline(PipelineOptions(GetParam()));
  ASSERT_TRUE(pipeline.Start().ok());
  for (const TrajectoryRecord& r : records) {
    ASSERT_TRUE(pipeline.Ingest(r).ok());
  }
  ASSERT_TRUE(pipeline.Stop().ok());

  EXPECT_EQ(CompanionsCsv(pipeline.Companions()), expected);
  ServiceStats stats = pipeline.Stats();
  EXPECT_EQ(stats.records_ingested,
            static_cast<int64_t>(records.size()));
  EXPECT_EQ(stats.queue.pushed, stats.queue.popped);
  EXPECT_EQ(stats.queue.shed, 0);
  EXPECT_EQ(stats.queue.rejected, 0);
  EXPECT_LE(stats.queue.depth_peak, 64);
  EXPECT_GT(stats.discovery.snapshots, 0);
  EXPECT_FALSE(stats.resumed);
}

INSTANTIATE_TEST_SUITE_P(Algorithms, ServiceDifferentialTest,
                         ::testing::Values(
                             Algorithm::kClusteringIntersection,
                             Algorithm::kSmartClosed, Algorithm::kBuddy),
                         [](const auto& info) {
                           return AlgorithmName(info.param);
                         });

/// Flush is a barrier: afterwards every prior ingest is reflected in
/// queries, including the in-progress window.
TEST(ServicePipelineTest, FlushMakesAllIngestsVisible) {
  GroupDataset data = ChurnyStream(902);
  std::vector<TrajectoryRecord> records =
      StreamToRecords(data.stream, kSecondsPerSnapshot);
  std::string expected = BatchCsv(Algorithm::kBuddy, records);

  ServicePipeline pipeline(PipelineOptions(Algorithm::kBuddy));
  ASSERT_TRUE(pipeline.Start().ok());
  for (const TrajectoryRecord& r : records) {
    ASSERT_TRUE(pipeline.Ingest(r).ok());
  }
  ASSERT_TRUE(pipeline.Flush().ok());
  // No Stop() yet — Flush alone must surface the final window.
  EXPECT_EQ(CompanionsCsv(pipeline.Companions()), expected);
  EXPECT_TRUE(pipeline.Stop().ok());
}

/// Stop → restart with the same checkpoint file resumes the stream with
/// no duplicated or lost companions: feeding the two halves through two
/// pipeline incarnations equals one uninterrupted run. The split falls on
/// a window boundary, which is what the graceful-shutdown window flush
/// guarantees for the live service.
TEST(ServicePipelineTest, CheckpointResumeMatchesUninterrupted) {
  GroupDataset data = ChurnyStream(903);
  std::vector<TrajectoryRecord> records =
      StreamToRecords(data.stream, kSecondsPerSnapshot);
  std::string expected = BatchCsv(Algorithm::kBuddy, records);

  double split_time = 12 * kSecondsPerSnapshot;
  std::string ckpt = ::testing::TempDir() + "/service_resume.ckpt";
  std::remove(ckpt.c_str());

  ServicePipelineOptions opts = PipelineOptions(Algorithm::kBuddy);
  opts.checkpoint_path = ckpt;
  {
    ServicePipeline first(opts);
    ASSERT_TRUE(first.Start().ok());
    EXPECT_FALSE(first.Stats().resumed);
    for (const TrajectoryRecord& r : records) {
      if (r.timestamp < split_time) {
        ASSERT_TRUE(first.Ingest(r).ok());
      }
    }
    ASSERT_TRUE(first.Stop().ok());
    EXPECT_GE(first.Stats().checkpoints_written, 1);
  }
  {
    ServicePipeline second(opts);
    ASSERT_TRUE(second.Start().ok());
    EXPECT_TRUE(second.Stats().resumed);
    for (const TrajectoryRecord& r : records) {
      if (r.timestamp >= split_time) {
        ASSERT_TRUE(second.Ingest(r).ok());
      }
    }
    ASSERT_TRUE(second.Stop().ok());
    EXPECT_EQ(CompanionsCsv(second.Companions()), expected);
  }
  std::remove(ckpt.c_str());
}

/// Auto-checkpointing writes every N snapshots without disturbing the
/// stream results.
TEST(ServicePipelineTest, AutoCheckpointEveryN) {
  GroupDataset data = ChurnyStream(904);
  std::vector<TrajectoryRecord> records =
      StreamToRecords(data.stream, kSecondsPerSnapshot);
  std::string expected = BatchCsv(Algorithm::kSmartClosed, records);

  std::string ckpt = ::testing::TempDir() + "/service_auto.ckpt";
  std::remove(ckpt.c_str());
  ServicePipelineOptions opts = PipelineOptions(Algorithm::kSmartClosed);
  opts.checkpoint_path = ckpt;
  opts.checkpoint_every = 5;
  ServicePipeline pipeline(opts);
  ASSERT_TRUE(pipeline.Start().ok());
  for (const TrajectoryRecord& r : records) {
    ASSERT_TRUE(pipeline.Ingest(r).ok());
  }
  ASSERT_TRUE(pipeline.Stop().ok());
  EXPECT_EQ(CompanionsCsv(pipeline.Companions()), expected);
  // 24 snapshots / every 5 → at least 4 periodic saves + the final one.
  EXPECT_GE(pipeline.Stats().checkpoints_written, 5);
  std::remove(ckpt.c_str());
}

/// Bounded out-of-order arrival: interleave adjacent snapshots' records
/// (each even/odd snapshot pair arrives newest-first). With a watermark
/// lateness covering the jitter, the reorder buffer must reconstruct the
/// timestamp order and reproduce the in-order results exactly.
TEST(ServicePipelineTest, WatermarkAbsorbsOutOfOrderArrival) {
  GroupDataset data = ChurnyStream(905);
  std::vector<TrajectoryRecord> records =
      StreamToRecords(data.stream, kSecondsPerSnapshot);
  std::string expected = BatchCsv(Algorithm::kBuddy, records);

  // Partition by snapshot, then emit each adjacent pair swapped.
  std::vector<std::vector<TrajectoryRecord>> by_snapshot;
  for (const TrajectoryRecord& r : records) {
    size_t index = static_cast<size_t>(r.timestamp / kSecondsPerSnapshot);
    if (index >= by_snapshot.size()) by_snapshot.resize(index + 1);
    by_snapshot[index].push_back(r);
  }
  std::vector<TrajectoryRecord> shuffled;
  for (size_t i = 0; i + 1 < by_snapshot.size(); i += 2) {
    shuffled.insert(shuffled.end(), by_snapshot[i + 1].begin(),
                    by_snapshot[i + 1].end());
    shuffled.insert(shuffled.end(), by_snapshot[i].begin(),
                    by_snapshot[i].end());
  }
  if (by_snapshot.size() % 2 == 1) {
    shuffled.insert(shuffled.end(), by_snapshot.back().begin(),
                    by_snapshot.back().end());
  }
  ASSERT_EQ(shuffled.size(), records.size());

  ServicePipelineOptions opts = PipelineOptions(Algorithm::kBuddy);
  opts.allowed_lateness = kSecondsPerSnapshot;
  ServicePipeline pipeline(opts);
  ASSERT_TRUE(pipeline.Start().ok());
  for (const TrajectoryRecord& r : shuffled) {
    ASSERT_TRUE(pipeline.Ingest(r).ok());
  }
  ASSERT_TRUE(pipeline.Stop().ok());
  EXPECT_EQ(CompanionsCsv(pipeline.Companions()), expected);
  EXPECT_GT(pipeline.Stats().reorder_held_peak, 0);
}

TEST(ServicePipelineTest, RejectsNonFiniteRecords) {
  ServicePipeline pipeline(PipelineOptions(Algorithm::kBuddy));
  ASSERT_TRUE(pipeline.Start().ok());
  TrajectoryRecord bad;
  bad.object = 1;
  bad.timestamp = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(pipeline.Ingest(bad).ok());
  bad.timestamp = 0.0;
  bad.pos.x = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(pipeline.Ingest(bad).ok());
  EXPECT_TRUE(pipeline.Stop().ok());
  EXPECT_EQ(pipeline.Stats().records_invalid, 2);
  EXPECT_EQ(pipeline.Stats().records_ingested, 0);
}

// ---------------------------------------------------------------------
// Backpressure: a producer that outruns a throttled consumer must see
// each policy's contract hold with the queue depth never above capacity.

TrajectoryRecord NumberedRecord(int i) {
  TrajectoryRecord r;
  r.object = static_cast<ObjectId>(i);
  r.timestamp = static_cast<double>(i);
  return r;
}

TEST(IngestQueueTest, BlockModeIsLosslessUnderOverload) {
  IngestQueue queue(4, BackpressureMode::kBlock);
  constexpr int kRecords = 200;
  std::vector<double> consumed;
  std::thread consumer([&] {
    TrajectoryRecord r;
    while (queue.Pop(&r)) {
      consumed.push_back(r.timestamp);
      // Throttle: the producer fills the queue and must block.
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });
  for (int i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(queue.Push(NumberedRecord(i)).ok());
  }
  queue.Close();
  consumer.join();

  ASSERT_EQ(consumed.size(), static_cast<size_t>(kRecords));
  for (int i = 0; i < kRecords; ++i) {
    EXPECT_EQ(consumed[i], static_cast<double>(i));  // FIFO, no loss
  }
  IngestQueueCounters counters = queue.Counters();
  EXPECT_EQ(counters.pushed, kRecords);
  EXPECT_EQ(counters.popped, kRecords);
  EXPECT_EQ(counters.shed, 0);
  EXPECT_EQ(counters.rejected, 0);
  EXPECT_LE(counters.depth_peak, 4);
}

TEST(IngestQueueTest, ShedOldestKeepsNewestUnderOverload) {
  IngestQueue queue(4, BackpressureMode::kShedOldest);
  // No consumer at all: the stalled-pipeline worst case.
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(queue.Push(NumberedRecord(i)).ok());
  }
  EXPECT_EQ(queue.depth(), 4u);
  queue.Close();
  std::vector<double> drained;
  TrajectoryRecord r;
  while (queue.Pop(&r)) drained.push_back(r.timestamp);
  // The *newest* four survive; everything older was shed in order.
  ASSERT_EQ(drained.size(), 4u);
  EXPECT_EQ(drained, (std::vector<double>{96, 97, 98, 99}));
  IngestQueueCounters counters = queue.Counters();
  EXPECT_EQ(counters.pushed, 100);
  EXPECT_EQ(counters.shed, 96);
  EXPECT_EQ(counters.rejected, 0);
  EXPECT_LE(counters.depth_peak, 4);
}

TEST(IngestQueueTest, RejectModeRefusesWhenFullAndRecovers) {
  IngestQueue queue(4, BackpressureMode::kReject);
  int accepted = 0;
  int rejected = 0;
  for (int i = 0; i < 100; ++i) {
    Status s = queue.Push(NumberedRecord(i));
    if (s.ok()) {
      ++accepted;
    } else {
      EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
      ++rejected;
    }
  }
  EXPECT_EQ(accepted, 4);
  EXPECT_EQ(rejected, 96);
  // Draining makes room again: rejection is transient, not sticky.
  TrajectoryRecord r;
  ASSERT_TRUE(queue.Pop(&r));
  EXPECT_TRUE(queue.Push(NumberedRecord(100)).ok());
  IngestQueueCounters counters = queue.Counters();
  EXPECT_EQ(counters.pushed, 5);
  EXPECT_EQ(counters.rejected, 96);
  queue.Close();
}

TEST(IngestQueueTest, PushAfterCloseFailsAndPopDrains) {
  IngestQueue queue(8, BackpressureMode::kBlock);
  ASSERT_TRUE(queue.Push(NumberedRecord(0)).ok());
  ASSERT_TRUE(queue.Push(NumberedRecord(1)).ok());
  queue.Close();
  EXPECT_FALSE(queue.Push(NumberedRecord(2)).ok());
  TrajectoryRecord r;
  EXPECT_TRUE(queue.Pop(&r));
  EXPECT_TRUE(queue.Pop(&r));
  EXPECT_FALSE(queue.Pop(&r));  // closed and drained
}

/// Flush must terminate under kShedOldest even though shed records are
/// never processed: the barrier counts a record as settled when it leaves
/// the queue, whether the worker popped it or the policy dropped it.
/// (Regression: waiting on processed-count alone deadlocked forever after
/// the first shed, wedging protocol FLUSH and SIGTERM shutdown.)
TEST(ServicePipelineTest, FlushCompletesUnderShedOverload) {
  GroupDataset data = ChurnyStream(907);
  std::vector<TrajectoryRecord> records =
      StreamToRecords(data.stream, kSecondsPerSnapshot);
  ServicePipelineOptions opts = PipelineOptions(Algorithm::kBuddy);
  // Capacity 1 with a full-speed feed: every snapshot the worker clusters
  // (80 objects, 24 closures) the producer floods the queue and sheds.
  opts.queue_capacity = 1;
  opts.backpressure = BackpressureMode::kShedOldest;
  ServicePipeline pipeline(opts);
  ASSERT_TRUE(pipeline.Start().ok());
  for (const TrajectoryRecord& r : records) {
    ASSERT_TRUE(pipeline.Ingest(r).ok());  // shed mode always admits
  }
  ASSERT_TRUE(pipeline.Flush().ok());
  ServiceStats stats = pipeline.Stats();
  EXPECT_GT(stats.queue.shed, 0);
  // The barrier implies the queue fully drained: everything pushed was
  // either popped or shed.
  EXPECT_EQ(stats.queue.pushed, stats.queue.popped + stats.queue.shed);
  EXPECT_EQ(stats.records_ingested, static_cast<int64_t>(records.size()));
  ASSERT_TRUE(pipeline.Stop().ok());
}

/// After Stop(), Flush reports not-running instead of re-draining the
/// tail that Stop already flushed and checkpointed.
TEST(ServicePipelineTest, FlushAfterStopIsRejected) {
  ServicePipeline pipeline(PipelineOptions(Algorithm::kBuddy));
  ASSERT_TRUE(pipeline.Start().ok());
  ASSERT_TRUE(pipeline.Ingest(NumberedRecord(0)).ok());
  ASSERT_TRUE(pipeline.Stop().ok());
  Status s = pipeline.Flush();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

/// A Flush racing a concurrent Stop must always return — ok if it beat
/// the stop, not-running if the stop won — never hang the caller (a
/// wedged session thread would in turn wedge server Wait() at shutdown).
TEST(ServicePipelineTest, FlushRacingStopTerminates) {
  GroupDataset data = ChurnyStream(908);
  std::vector<TrajectoryRecord> records =
      StreamToRecords(data.stream, kSecondsPerSnapshot);
  ServicePipeline pipeline(PipelineOptions(Algorithm::kBuddy));
  ASSERT_TRUE(pipeline.Start().ok());
  for (const TrajectoryRecord& r : records) {
    ASSERT_TRUE(pipeline.Ingest(r).ok());
  }
  std::atomic<bool> flusher_exited{false};
  std::thread flusher([&] {
    while (pipeline.Flush().ok()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    flusher_exited.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(pipeline.Stop().ok());
  flusher.join();
  EXPECT_TRUE(flusher_exited.load());
}

/// The pipeline surfaces kReject backpressure to the caller as
/// OutOfRange — the protocol layer turns that into an ERR the client can
/// react to — while never letting the queue depth exceed capacity.
TEST(ServicePipelineTest, RejectBackpressureReachesProducers) {
  GroupDataset data = ChurnyStream(906);
  std::vector<TrajectoryRecord> records =
      StreamToRecords(data.stream, kSecondsPerSnapshot);
  ServicePipelineOptions opts = PipelineOptions(Algorithm::kBuddy);
  opts.queue_capacity = 2;
  opts.backpressure = BackpressureMode::kReject;
  ServicePipeline pipeline(opts);
  ASSERT_TRUE(pipeline.Start().ok());
  int64_t rejections = 0;
  for (const TrajectoryRecord& r : records) {
    Status s = pipeline.Ingest(r);
    if (!s.ok()) {
      ASSERT_EQ(s.code(), StatusCode::kOutOfRange);
      ++rejections;
    }
  }
  ASSERT_TRUE(pipeline.Stop().ok());
  ServiceStats stats = pipeline.Stats();
  EXPECT_EQ(stats.queue.rejected, rejections);
  EXPECT_LE(stats.queue.depth_peak, 2);
  EXPECT_EQ(stats.records_ingested + rejections,
            static_cast<int64_t>(records.size()));
}

// ---------------------------------------------------------------------
// Stats() consistency: every snapshot a reader takes mid-run must be a
// consistent cut, never a torn mix of pre- and post-increment counters.
// The invariants below are exactly the contract documented on
// ServiceStats; TSan additionally checks the locking (tsan label).

TrajectoryRecord TimedRecord(ObjectId id, double t) {
  TrajectoryRecord r;
  r.object = id;
  r.timestamp = t;
  r.pos.x = static_cast<double>(id % 100);
  r.pos.y = t;
  return r;
}

void HammerStatsWhileIngesting(BackpressureMode mode) {
  ServicePipelineOptions opts = PipelineOptions(Algorithm::kBuddy);
  opts.queue_capacity = 8;  // small: the worker lags, depth is often > 0
  opts.backpressure = mode;
  ServicePipeline pipeline(opts);
  ASSERT_TRUE(pipeline.Start().ok());

  constexpr int kProducers = 3;
  constexpr int kPerProducer = 2000;
  std::atomic<bool> done{false};
  std::atomic<int64_t> reads{0};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      ServiceStats s = pipeline.Stats();
      // Exact: depth is sampled in the same critical section as the
      // queue counters, so the flow equation balances at every read.
      EXPECT_EQ(s.queue.pushed, s.queue.popped + s.queue.shed +
                                    s.queue.depth);
      // The single worker has at most one record popped but not yet
      // counted as processed.
      EXPECT_GE(s.queue.popped, s.records_processed);
      EXPECT_LE(s.queue.popped, s.records_processed + 1);
      // A record is counted ingested only after its push succeeded.
      EXPECT_GE(s.queue.pushed, s.records_ingested);
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  });
  // A concurrent Flush barrier stresses the same locks from a third
  // angle (it nests state_mu_ → queue-mu exactly like Stats does).
  std::thread flusher([&] {
    while (!done.load(std::memory_order_acquire)) {
      EXPECT_TRUE(pipeline.Flush().ok());
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        TrajectoryRecord r =
            TimedRecord(static_cast<ObjectId>(p * kPerProducer + i),
                        static_cast<double>(i));
        EXPECT_TRUE(pipeline.Ingest(r).ok());
      }
    });
  }
  for (std::thread& t : producers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();
  flusher.join();
  EXPECT_GT(reads.load(), 0);
  ASSERT_TRUE(pipeline.Stop().ok());

  ServiceStats fin = pipeline.Stats();
  EXPECT_EQ(fin.records_ingested, kProducers * kPerProducer);
  EXPECT_EQ(fin.queue.depth, 0);  // Stop drains the queue
  EXPECT_EQ(fin.queue.pushed, fin.queue.popped + fin.queue.shed);
  EXPECT_EQ(fin.records_processed, fin.queue.popped);
  if (mode == BackpressureMode::kBlock) {
    EXPECT_EQ(fin.queue.shed, 0);  // lossless by contract
  }
}

TEST(ServicePipelineTest, StatsCutIsConsistentUnderBlockBackpressure) {
  HammerStatsWhileIngesting(BackpressureMode::kBlock);
}

TEST(ServicePipelineTest, StatsCutIsConsistentUnderShedBackpressure) {
  HammerStatsWhileIngesting(BackpressureMode::kShedOldest);
}

// ---------------------------------------------------------------------
// Watermark edge accounting: the release rule (DrainReorderBuffer) and
// the late-record rule (WorkerLoop) must agree on the boundary. A record
// with timestamp exactly at the watermark is releasable, hence late.

TEST(ServicePipelineTest, RecordExactlyAtWatermarkCountsLate) {
  ServicePipelineOptions opts = PipelineOptions(Algorithm::kBuddy);
  opts.allowed_lateness = 10.0;
  ServicePipeline pipeline(opts);
  ASSERT_TRUE(pipeline.Start().ok());
  ASSERT_TRUE(pipeline.Ingest(TimedRecord(1, 0.0)).ok());    // first: never late
  ASSERT_TRUE(pipeline.Ingest(TimedRecord(2, 100.0)).ok());  // watermark → 90
  ASSERT_TRUE(pipeline.Ingest(TimedRecord(3, 90.0)).ok());   // == watermark
  ASSERT_TRUE(pipeline.Ingest(TimedRecord(4, 90.5)).ok());   // inside bound
  ASSERT_TRUE(pipeline.Flush().ok());
  EXPECT_EQ(pipeline.Stats().records_late, 1);
  ASSERT_TRUE(pipeline.Stop().ok());
  // Every record was still processed (late ≠ dropped: bounded staleness).
  EXPECT_EQ(pipeline.Stats().records_processed, 4);
}

TEST(ServicePipelineTest, ZeroLatenessNeverCountsLate) {
  ServicePipelineOptions opts = PipelineOptions(Algorithm::kBuddy);
  opts.allowed_lateness = 0.0;  // reorder buffer disabled
  ServicePipeline pipeline(opts);
  ASSERT_TRUE(pipeline.Start().ok());
  ASSERT_TRUE(pipeline.Ingest(TimedRecord(1, 10.0)).ok());
  ASSERT_TRUE(pipeline.Ingest(TimedRecord(2, 0.0)).ok());  // out of order
  ASSERT_TRUE(pipeline.Ingest(TimedRecord(3, 5.0)).ok());
  ASSERT_TRUE(pipeline.Flush().ok());
  ServiceStats stats = pipeline.Stats();
  EXPECT_EQ(stats.records_late, 0);
  EXPECT_EQ(stats.reorder_held_peak, 0);
  EXPECT_EQ(stats.records_processed, 3);
  ASSERT_TRUE(pipeline.Stop().ok());
}

TEST(ServicePipelineTest, NegativeFirstTimestampIsNotSpuriouslyLate) {
  ServicePipelineOptions opts = PipelineOptions(Algorithm::kBuddy);
  opts.allowed_lateness = 5.0;
  ServicePipeline pipeline(opts);
  ASSERT_TRUE(pipeline.Start().ok());
  // Guarding on "any timestamp seen" matters: with max_timestamp_seen_
  // defaulting to 0, a negative-epoch stream would otherwise count its
  // entire prefix as late.
  ASSERT_TRUE(pipeline.Ingest(TimedRecord(1, -100.0)).ok());
  ASSERT_TRUE(pipeline.Ingest(TimedRecord(2, -98.0)).ok());
  ASSERT_TRUE(pipeline.Ingest(TimedRecord(3, -99.0)).ok());  // within bound
  ASSERT_TRUE(pipeline.Flush().ok());
  EXPECT_EQ(pipeline.Stats().records_late, 0);
  // Now cross the boundary: max is -98, watermark is -103.
  ASSERT_TRUE(pipeline.Ingest(TimedRecord(4, -103.0)).ok());
  ASSERT_TRUE(pipeline.Flush().ok());
  EXPECT_EQ(pipeline.Stats().records_late, 1);
  ASSERT_TRUE(pipeline.Stop().ok());
}

/// Serve and batch must agree on snapshots_emitted even when the stream
/// ends in a long gap: empty trailing windows exist in neither path (the
/// empty-window contract documented on SlidingWindowSnapshotter).
TEST(ServicePipelineTest, TrailingGapEmitsSameSnapshotCountAsBatch) {
  std::vector<TrajectoryRecord> records;
  for (int i = 0; i < 5; ++i) {
    records.push_back(TimedRecord(static_cast<ObjectId>(i),
                                  static_cast<double>(i * 10)));
  }
  // One straggler far past the end: the gap spans many whole windows.
  records.push_back(TimedRecord(99, 600.0));

  SlidingWindowOptions wopts;
  wopts.window_length = kSecondsPerSnapshot;
  SlidingWindowSnapshotter window(wopts);
  std::vector<Snapshot> ready;
  for (const TrajectoryRecord& r : records) {
    ASSERT_TRUE(window.Push(r, &ready).ok());
  }
  window.Flush(&ready);
  EXPECT_EQ(window.emitted(), 2);  // [0,60) and the straggler's window

  ServicePipeline pipeline(PipelineOptions(Algorithm::kBuddy));
  ASSERT_TRUE(pipeline.Start().ok());
  for (const TrajectoryRecord& r : records) {
    ASSERT_TRUE(pipeline.Ingest(r).ok());
  }
  ASSERT_TRUE(pipeline.Stop().ok());
  EXPECT_EQ(pipeline.Stats().snapshots_emitted, window.emitted());
}

}  // namespace
}  // namespace tcomp
