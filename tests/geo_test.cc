#include "stream/geo.h"

#include <gtest/gtest.h>

namespace tcomp {
namespace {

// Beijing city center — the GeoLife data's home turf.
constexpr LatLon kBeijing{39.9042, 116.4074};

TEST(GeoTest, HaversineZeroForSamePoint) {
  EXPECT_DOUBLE_EQ(HaversineMeters(kBeijing, kBeijing), 0.0);
}

TEST(GeoTest, HaversineKnownDistance) {
  // One degree of latitude ≈ 111.2 km.
  LatLon a{39.0, 116.0};
  LatLon b{40.0, 116.0};
  EXPECT_NEAR(HaversineMeters(a, b), 111195.0, 200.0);
}

TEST(GeoTest, HaversineSymmetric) {
  LatLon a{39.9, 116.3};
  LatLon b{40.1, 116.6};
  EXPECT_DOUBLE_EQ(HaversineMeters(a, b), HaversineMeters(b, a));
}

TEST(GeoTest, ProjectionRoundTrips) {
  LocalProjection proj(kBeijing);
  LatLon p{39.95, 116.45};
  LatLon back = proj.Unproject(proj.Project(p));
  EXPECT_NEAR(back.lat, p.lat, 1e-9);
  EXPECT_NEAR(back.lon, p.lon, 1e-9);
}

TEST(GeoTest, ProjectionReferenceIsOrigin) {
  LocalProjection proj(kBeijing);
  Point origin = proj.Project(kBeijing);
  EXPECT_DOUBLE_EQ(origin.x, 0.0);
  EXPECT_DOUBLE_EQ(origin.y, 0.0);
}

TEST(GeoTest, ProjectionApproximatesHaversineLocally) {
  LocalProjection proj(kBeijing);
  // Points within a city-scale extent: projected Euclidean distance must
  // track the great-circle distance to well under clustering ε scales.
  LatLon a{39.93, 116.38};
  LatLon b{39.97, 116.44};
  double planar = Distance(proj.Project(a), proj.Project(b));
  double sphere = HaversineMeters(a, b);
  EXPECT_NEAR(planar / sphere, 1.0, 0.002);
}

TEST(GeoTest, NorthIsPositiveYEastIsPositiveX) {
  LocalProjection proj(kBeijing);
  Point north = proj.Project(LatLon{kBeijing.lat + 0.01, kBeijing.lon});
  Point east = proj.Project(LatLon{kBeijing.lat, kBeijing.lon + 0.01});
  EXPECT_GT(north.y, 0.0);
  EXPECT_NEAR(north.x, 0.0, 1e-9);
  EXPECT_GT(east.x, 0.0);
  EXPECT_NEAR(east.y, 0.0, 1e-9);
}

}  // namespace
}  // namespace tcomp
