#!/bin/sh
# End-to-end smoke test of the tcomp CLI: generate → discover (with
# checkpoint round trip) → verify effectiveness output.
set -e
CLI="$1"
DIR="$2"
cd "$DIR"

# On any failure, dump the CLI logs to stderr so the CTest log alone is
# enough to diagnose what broke.
dump_logs_on_failure() {
    status=$?
    if [ "$status" -ne 0 ]; then
        echo "cli_smoke: FAILED (exit $status); CLI logs follow" >&2
        for f in gen.log run1.log run2.log suggest.log; do
            if [ -f "$f" ]; then
                echo "--- $f ---" >&2
                cat "$f" >&2
            else
                echo "--- $f (not written) ---" >&2
            fi
        done
    fi
}
trap dump_logs_on_failure EXIT

"$CLI" generate --dataset d2 --snapshots 40 --out d2.csv --truth d2.truth \
    --seed 7 > gen.log
grep -q "wrote" gen.log

"$CLI" discover --csv d2.csv --algo bu --epsilon 24 --mu 5 \
    --min-size 10 --min-duration 10 --window-seconds 60 --threads 2 \
    --truth d2.truth --timeline --quiet --save-state d2.ckpt \
    --out-json d2.json --out-csv d2_out.csv > run1.log
grep -q "distinct companions" run1.log
grep -q "recall" run1.log
grep -q "companion timeline" run1.log
test -f d2.ckpt
grep -q '"companions"' d2.json
head -1 d2_out.csv | grep -q "duration,snapshot_index,size,objects"

# Parameter suggestion lands near the generator's scale.
"$CLI" suggest --csv d2.csv --window-seconds 60 > suggest.log
grep -q "suggested thresholds" suggest.log

# Resume from the checkpoint (no further input — state must load).
"$CLI" discover --csv d2.csv --algo bu --epsilon 24 --mu 5 \
    --min-size 10 --min-duration 10 --window-seconds 60 \
    --load-state d2.ckpt --quiet > run2.log
grep -q "resumed from" run2.log

# Unknown flags/commands fail loudly.
if "$CLI" frobnicate > /dev/null 2>&1; then exit 1; fi
echo "cli smoke OK"
