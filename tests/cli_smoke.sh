#!/bin/sh
# End-to-end smoke test of the tcomp CLI: generate → discover (with
# checkpoint round trip) → verify effectiveness output.
set -e
CLI="$1"
DIR="$2"
cd "$DIR" || exit 1

# On any failure, dump the CLI logs to stderr so the CTest log alone is
# enough to diagnose what broke. Any background serve process is killed
# so a failed run cannot leave an orphan listener behind.
dump_logs_on_failure() {
    status=$?
    if [ -n "$SERVE_PID" ] && kill -0 "$SERVE_PID" 2>/dev/null; then
        kill -TERM "$SERVE_PID" 2>/dev/null || true
        wait "$SERVE_PID" 2>/dev/null || true
    fi
    if [ "$status" -ne 0 ]; then
        echo "cli_smoke: FAILED (exit $status); CLI logs follow" >&2
        for f in gen.log run1.log run2.log run3.log suggest.log \
                 serve1.log serve2.log serve3.log serve4.log \
                 serve5.log serve6.log blast.log \
                 feed1.log feed2.log feed3.log feed4.log \
                 feed5.log feed6.log; do
            if [ -f "$f" ]; then
                echo "--- $f ---" >&2
                cat "$f" >&2
            else
                echo "--- $f (not written) ---" >&2
            fi
        done
    fi
}
trap dump_logs_on_failure EXIT

# Waits (up to ~10s) for a serve process to write its bound port.
wait_for_port_file() {
    i=0
    while [ ! -s "$1" ] && [ "$i" -lt 100 ]; do
        sleep 0.1
        i=$((i+1))
    done
    test -s "$1"
}

"$CLI" generate --dataset d2 --snapshots 40 --out d2.csv --truth d2.truth \
    --seed 7 > gen.log
grep -q "wrote" gen.log

"$CLI" discover --csv d2.csv --algo bu --epsilon 24 --mu 5 \
    --min-size 10 --min-duration 10 --window-seconds 60 --threads 2 \
    --truth d2.truth --timeline --quiet --save-state d2.ckpt \
    --out-json d2.json --out-csv d2_out.csv \
    --stats-json d2_stats.json > run1.log
grep -q "distinct companions" run1.log
grep -q "recall" run1.log
grep -q "companion timeline" run1.log
test -f d2.ckpt
grep -q '"companions"' d2.json
head -1 d2_out.csv | grep -q "duration,snapshot_index,size,objects"
# The stage-metrics dump holds all three sections and a populated
# snapshot_close histogram (one sample per processed snapshot).
grep -q '"histograms"' d2_stats.json
grep -q '"counters"' d2_stats.json
grep -q 'stage=\\"snapshot_close\\"' d2_stats.json

# Parameter suggestion lands near the generator's scale.
"$CLI" suggest --csv d2.csv --window-seconds 60 > suggest.log
grep -q "suggested thresholds" suggest.log

# Resume from the checkpoint (no further input — state must load).
"$CLI" discover --csv d2.csv --algo bu --epsilon 24 --mu 5 \
    --min-size 10 --min-duration 10 --window-seconds 60 \
    --load-state d2.ckpt --quiet > run2.log
grep -q "resumed from" run2.log

# Unknown flags/commands fail loudly — by name, in every subcommand.
if "$CLI" frobnicate > /dev/null 2>&1; then exit 1; fi
for cmd in "generate --dataset d2 --out x.csv" \
           "discover --csv d2.csv" \
           "suggest --csv d2.csv" \
           "serve" \
           "feed --csv d2.csv --port 1" \
           "blast"; do
    # shellcheck disable=SC2086  # $cmd is a command line, split on purpose
    if "$CLI" $cmd --no-such-flag > /dev/null 2> flag.err; then exit 1; fi
    grep -q -- "unknown flag --no-such-flag" flag.err
done

# Service round trip: serve → feed → query → SIGTERM → resume → compare.
# The stream is split at a window boundary (t = 1200 = snapshot 20 of 40
# at 60 s/window); graceful shutdown closes the open window and writes a
# checkpoint, so the resumed run must reproduce the batch companions
# byte for byte (d2_out.csv from the discover run above).
awk -F, '$2 < 1200'  d2.csv > feed_a.csv
awk -F, '$2 >= 1200' d2.csv > feed_b.csv
rm -f port.txt serve.ckpt

"$CLI" serve --algo bu --epsilon 24 --mu 5 --min-size 10 \
    --min-duration 10 --window-seconds 60 --port-file port.txt \
    --checkpoint serve.ckpt > serve1.log 2>&1 &
SERVE_PID=$!
wait_for_port_file port.txt
PORT=$(cat port.txt)

"$CLI" feed --csv feed_a.csv --port "$PORT" --flush --quiet > feed1.log
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
SERVE_PID=
grep -q "shut down gracefully" serve1.log
test -f serve.ckpt

rm -f port.txt
"$CLI" serve --algo bu --epsilon 24 --mu 5 --min-size 10 \
    --min-duration 10 --window-seconds 60 --port-file port.txt \
    --checkpoint serve.ckpt > serve2.log 2>&1 &
SERVE_PID=$!
wait_for_port_file port.txt
PORT=$(cat port.txt)

# Metrics scrape round trip: two scrapes must expose the same name/label
# sequence (values move between scrapes, the series set must not).
"$CLI" feed --port "$PORT" --query metrics --out metrics1.txt --quiet
"$CLI" feed --port "$PORT" --query metrics --out metrics2.txt --quiet
grep -q "tcomp_stage_seconds_bucket" metrics1.txt
grep -q "tcomp_records_ingested_total" metrics1.txt
grep -q "tcomp_snapshots_processed_total" metrics1.txt
sed 's/ [^ ]*$//' metrics1.txt > metrics1.names
sed 's/ [^ ]*$//' metrics2.txt > metrics2.names
cmp metrics1.names metrics2.names

"$CLI" feed --csv feed_b.csv --port "$PORT" --query companions \
    --out served.csv --shutdown --quiet > feed2.log
wait "$SERVE_PID"
SERVE_PID=
grep -q "resumed from serve.ckpt" serve2.log
cmp d2_out.csv served.csv

# Sharded serve round trip: --shards 3 → SIGTERM mid-stream → resume at
# --shards 8. Checkpoints carry no shard state (nothing survives a
# snapshot close), so resuming at a different shard count must reproduce
# the batch companions byte for byte, exactly like the unsharded path.
"$CLI" discover --csv d2.csv --algo sc --epsilon 24 --mu 5 \
    --min-size 10 --min-duration 10 --window-seconds 60 \
    --out-csv sc_out.csv --quiet > run3.log

rm -f port.txt shard.ckpt
"$CLI" serve --algo sc --shards 3 --epsilon 24 --mu 5 --min-size 10 \
    --min-duration 10 --window-seconds 60 --port-file port.txt \
    --checkpoint shard.ckpt > serve3.log 2>&1 &
SERVE_PID=$!
wait_for_port_file port.txt
PORT=$(cat port.txt)
"$CLI" feed --csv feed_a.csv --port "$PORT" --flush --quiet > feed3.log
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
SERVE_PID=
grep -q "shards 3" serve3.log
grep -q "shut down gracefully" serve3.log
test -f shard.ckpt

rm -f port.txt
"$CLI" serve --algo sc --shards 8 --epsilon 24 --mu 5 --min-size 10 \
    --min-duration 10 --window-seconds 60 --port-file port.txt \
    --checkpoint shard.ckpt > serve4.log 2>&1 &
SERVE_PID=$!
wait_for_port_file port.txt
PORT=$(cat port.txt)

# The sharded metric series exist and the name set is scrape-stable, as
# in the unsharded block above — including the per-shard queue gauges and
# the shard-stage histograms.
"$CLI" feed --port "$PORT" --query metrics --out metrics3.txt --quiet
"$CLI" feed --port "$PORT" --query metrics --out metrics4.txt --quiet
grep -q 'stage="shard_route"' metrics3.txt
grep -q 'stage="shard_cluster"' metrics3.txt
grep -q 'stage="merge_stitch"' metrics3.txt
grep -q 'tcomp_shard_queue_depth{shard="7"}' metrics3.txt
grep -q 'tcomp_shard_queue_depth_peak{shard="1"}' metrics3.txt
grep -q 'tcomp_shard_snapshots_total' metrics3.txt
grep -q 'tcomp_shard_halo_objects_total' metrics3.txt
grep -q 'tcomp_shard_fallback 0' metrics3.txt
sed 's/ [^ ]*$//' metrics3.txt > metrics3.names
sed 's/ [^ ]*$//' metrics4.txt > metrics4.names
cmp metrics3.names metrics4.names

"$CLI" feed --csv feed_b.csv --port "$PORT" --query companions \
    --out shard_served.csv --shutdown --quiet > feed4.log
wait "$SERVE_PID"
SERVE_PID=
grep -q "resumed from shard.ckpt" serve4.log
grep -q "shards 8" serve4.log
cmp sc_out.csv shard_served.csv

# Binary-protocol round trip on the same split: batched binary INGEST →
# SIGTERM → resume → binary feed of the remainder. The binary path must
# reproduce the same batch companions byte for byte as the text path
# above — same port, protocol chosen by the first byte.
rm -f port.txt bserve.ckpt
"$CLI" serve --algo bu --epsilon 24 --mu 5 --min-size 10 \
    --min-duration 10 --window-seconds 60 --port-file port.txt \
    --checkpoint bserve.ckpt > serve5.log 2>&1 &
SERVE_PID=$!
wait_for_port_file port.txt
PORT=$(cat port.txt)

"$CLI" feed --csv feed_a.csv --port "$PORT" --binary --batch 128 \
    --flush > feed5.log
grep -q "record batches" feed5.log
kill -TERM "$SERVE_PID"
wait "$SERVE_PID"
SERVE_PID=
grep -q "shut down gracefully" serve5.log
test -f bserve.ckpt

rm -f port.txt
"$CLI" serve --algo bu --epsilon 24 --mu 5 --min-size 10 \
    --min-duration 10 --window-seconds 60 --port-file port.txt \
    --checkpoint bserve.ckpt > serve6.log 2>&1 &
SERVE_PID=$!
wait_for_port_file port.txt
PORT=$(cat port.txt)

"$CLI" feed --csv feed_b.csv --port "$PORT" --binary --batch 128 \
    --query companions --out bserved.csv --shutdown --quiet > feed6.log
wait "$SERVE_PID"
SERVE_PID=
grep -q "resumed from bserve.ckpt" serve6.log
cmp d2_out.csv bserved.csv

# Blast smoke: a tiny self-hosted saturation run over both protocols.
# The verify pass must report byte-identical products for both, and the
# JSON report must carry both curves with every requested point.
"$CLI" blast --clients 2 --curve 2000,5000 --seconds 0.3 \
    --objects 40 --snapshots 10 --epsilon 20 --mu 2 --min-size 3 \
    --min-duration 2 --json blast.json > blast.log
grep -q "text identical" blast.log
grep -q "binary identical" blast.log
grep -q '"protocol": "text"' blast.json
grep -q '"protocol": "binary"' blast.json
grep -q '"text_identical": true' blast.json
grep -q '"binary_identical": true' blast.json

echo "cli smoke OK"
