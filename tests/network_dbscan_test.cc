#include "network/network_dbscan.h"

#include <gtest/gtest.h>

#include "network/network_gen.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace tcomp {
namespace {

using testing_util::MakeSnapshot;

TEST(NetworkDbscanTest, ClustersAlongOneRoad) {
  RoadGraph g = RoadGraph::Grid(4, 2, 400.0);
  // Five objects strung 20 m apart along the bottom road.
  Snapshot s = MakeSnapshot({{0, 100.0, 2.0},
                             {1, 120.0, -2.0},
                             {2, 140.0, 1.0},
                             {3, 160.0, 0.0},
                             {4, 180.0, -1.0}});
  Clustering c = NetworkDbscan(s, g, DbscanParams{30.0, 3});
  ASSERT_EQ(c.clusters.size(), 1u);
  EXPECT_EQ(c.clusters[0], (ObjectSet{0, 1, 2, 3, 4}));
}

TEST(NetworkDbscanTest, SeparatesParallelAvenues) {
  // The motivating case: two groups Euclidean-close across parallel
  // roads, network-far (must drive around the block).
  RoadGraph g = RoadGraph::Grid(4, 2, 400.0);  // rows at y=0 and y=400
  std::vector<std::tuple<ObjectId, double, double>> items;
  for (int k = 0; k < 4; ++k) {
    items.push_back({static_cast<ObjectId>(k), 150.0 + 20.0 * k, 0.0});
    items.push_back(
        {static_cast<ObjectId>(10 + k), 150.0 + 20.0 * k, 400.0});
  }
  Snapshot s = MakeSnapshot(items);
  DbscanParams params{90.0, 3};

  // Euclidean DBSCAN at ε=90 would still separate y=0 from y=400 here —
  // use a generous ε to make the contrast explicit.
  DbscanParams wide{450.0, 3};
  Clustering euclid = Dbscan(s, wide);
  EXPECT_EQ(euclid.clusters.size(), 1u) << "Euclidean merges the avenues";

  Clustering network = NetworkDbscan(s, g, wide);
  // Network distance between the avenues is ≥ 400 + detour ≥ 700 — with
  // ε=450... the straight-across pair is 150+400+150? Check: object at
  // x=150,y=0 to x=150,y=400: nearest junctions at x=0/x=400:
  // 150+400+150 = 700 > 450 → separate clusters.
  EXPECT_EQ(network.clusters.size(), 2u)
      << "network keeps the avenues apart";
  EXPECT_EQ(network.clusters[0], (ObjectSet{0, 1, 2, 3}));
  EXPECT_EQ(network.clusters[1], (ObjectSet{10, 11, 12, 13}));
  (void)params;
}

TEST(NetworkDbscanTest, ConnectsAroundCorners) {
  // Objects straddling an intersection: Euclidean diagonal distance is
  // large, but along-road distance through the corner is short.
  RoadGraph g = RoadGraph::Grid(3, 3, 400.0);
  Snapshot s = MakeSnapshot({{0, 380.0, 0.0},    // west of corner (400,0)
                             {1, 400.0, 20.0},   // north of the corner
                             {2, 400.0, 45.0},
                             {3, 360.0, 0.0}});
  Clustering c = NetworkDbscan(s, g, DbscanParams{42.0, 2});
  ASSERT_EQ(c.clusters.size(), 1u);
  EXPECT_EQ(c.clusters[0], (ObjectSet{0, 1, 2, 3}));
}

class NetworkDbscanOracleSweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, double, int>> {
};

TEST_P(NetworkDbscanOracleSweep, MatchesBruteForceAcrossParams) {
  auto [seed, eps, mu] = GetParam();
  RoadGraph g = RoadGraph::Grid(5, 4, 300.0);
  Pcg32 rng(seed);
  std::vector<ObjectPosition> pos;
  for (ObjectId o = 0; o < 35; ++o) {
    double x = rng.NextDouble(0, 1200);
    double y = std::floor(rng.NextDouble(0, 4)) * 300.0 +
               rng.NextDouble(-5, 5);
    pos.push_back(ObjectPosition{o, Point{x, y}});
  }
  Snapshot s(pos, 1.0);
  DbscanParams params{eps, mu};
  Clustering got = NetworkDbscan(s, g, params);

  const size_t n = s.size();
  std::vector<NetworkPosition> np(n);
  for (size_t i = 0; i < n; ++i) np[i] = g.Snap(s.pos(i));
  std::vector<std::vector<uint32_t>> nbrs(n);
  for (uint32_t i = 0; i < n; ++i) {
    nbrs[i].push_back(i);
    for (uint32_t j = 0; j < n; ++j) {
      if (j != i &&
          g.NetworkDistance(np[i], np[j], eps) <= eps) {
        nbrs[i].push_back(j);
      }
    }
    std::sort(nbrs[i].begin(), nbrs[i].end());
  }
  std::vector<bool> core(n);
  for (uint32_t i = 0; i < n; ++i) {
    core[i] = nbrs[i].size() >= static_cast<size_t>(mu);
  }
  Clustering want = internal::BuildClusteringFromCores(s, core, nbrs);
  EXPECT_EQ(got.labels, want.labels);
  EXPECT_EQ(got.clusters, want.clusters);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, NetworkDbscanOracleSweep,
    ::testing::Values(std::make_tuple(uint64_t{17}, 100.0, 3),
                      std::make_tuple(uint64_t{18}, 60.0, 2),
                      std::make_tuple(uint64_t{19}, 200.0, 4),
                      std::make_tuple(uint64_t{20}, 350.0, 3),
                      std::make_tuple(uint64_t{21}, 40.0, 2)));

TEST(NetworkDbscanTest, MatchesBruteForceNetworkDistances) {
  // Oracle: neighbors via pairwise NetworkDistance, same core/label spec.
  RoadGraph g = RoadGraph::Grid(5, 4, 300.0);
  Pcg32 rng(17);
  std::vector<ObjectPosition> pos;
  for (ObjectId o = 0; o < 40; ++o) {
    // Points near roads (snap resolves them deterministically).
    double x = rng.NextDouble(0, 1200);
    double y = std::floor(rng.NextDouble(0, 4)) * 300.0 +
               rng.NextDouble(-5, 5);
    pos.push_back(ObjectPosition{o, Point{x, y}});
  }
  Snapshot s(pos, 1.0);
  DbscanParams params{100.0, 3};

  Clustering got = NetworkDbscan(s, g, params);

  // Brute force.
  const size_t n = s.size();
  std::vector<NetworkPosition> np(n);
  for (size_t i = 0; i < n; ++i) np[i] = g.Snap(s.pos(i));
  std::vector<std::vector<uint32_t>> nbrs(n);
  for (uint32_t i = 0; i < n; ++i) {
    nbrs[i].push_back(i);
    for (uint32_t j = 0; j < n; ++j) {
      if (j == i) continue;
      if (g.NetworkDistance(np[i], np[j], params.epsilon) <=
          params.epsilon) {
        nbrs[i].push_back(j);
      }
    }
    std::sort(nbrs[i].begin(), nbrs[i].end());
  }
  std::vector<bool> core(n);
  for (uint32_t i = 0; i < n; ++i) {
    core[i] = nbrs[i].size() >= static_cast<size_t>(params.mu);
  }
  Clustering want = internal::BuildClusteringFromCores(s, core, nbrs);

  EXPECT_EQ(got.core, want.core);
  EXPECT_EQ(got.labels, want.labels);
  EXPECT_EQ(got.clusters, want.clusters);
}

TEST(NetworkDbscanTest, StatsPopulated) {
  RoadGraph g = RoadGraph::Grid(3, 3, 200.0);
  Snapshot s = MakeSnapshot({{0, 10, 0}, {1, 30, 0}, {2, 50, 0}});
  NetworkDbscanStats stats;
  NetworkDbscan(s, g, DbscanParams{30.0, 2}, &stats);
  EXPECT_EQ(stats.snap_operations, 3);
  EXPECT_EQ(stats.expansions, 3);
  EXPECT_GT(stats.distance_evaluations, 0);
}

TEST(NetworkTrafficTest, GeneratorShapeAndDeterminism) {
  NetworkTrafficOptions options;
  options.num_vehicles = 60;
  options.num_snapshots = 20;
  options.seed = 5;
  NetworkTrafficDataset a = GenerateNetworkTraffic(options);
  NetworkTrafficDataset b = GenerateNetworkTraffic(options);
  ASSERT_EQ(a.stream.size(), 20u);
  EXPECT_EQ(a.stream[0].size(), 60u);
  EXPECT_FALSE(a.ground_truth.empty());
  for (size_t t = 0; t < a.stream.size(); ++t) {
    for (size_t i = 0; i < a.stream[t].size(); ++i) {
      EXPECT_DOUBLE_EQ(a.stream[t].pos(i).x, b.stream[t].pos(i).x);
    }
  }
}

TEST(NetworkTrafficTest, PlatoonsStayOnRoadAndTogether) {
  NetworkTrafficOptions options;
  options.num_vehicles = 80;
  options.num_snapshots = 30;
  options.seed = 8;
  NetworkTrafficDataset data = GenerateNetworkTraffic(options);
  // Every position snaps close to a road.
  const Snapshot& s = data.stream[15];
  for (size_t i = 0; i < s.size(); ++i) {
    double d;
    data.graph.Snap(s.pos(i), &d);
    EXPECT_LT(d, 20.0);
  }
  // Follower 1 of the first platoon trails its leader by ≈ headway.
  const ObjectSet& platoon = data.ground_truth[0];
  ASSERT_GE(platoon.size(), 2u);
  Point lead = s.pos(s.IndexOf(platoon[0]));
  Point follow = s.pos(s.IndexOf(platoon[1]));
  EXPECT_LT(Distance(lead, follow), 4.0 * options.headway);
}

TEST(NetworkDiscovererTest, FindsPlatoonsViaNetworkClustering) {
  NetworkTrafficOptions options;
  options.num_vehicles = 120;
  options.num_snapshots = 40;
  options.platoon_size_min = 5;
  options.platoon_size_max = 9;
  options.seed = 12;
  NetworkTrafficDataset data = GenerateNetworkTraffic(options);

  DiscoveryParams params;
  params.cluster.epsilon = 40.0;  // covers headway chains, not strangers
  params.cluster.mu = 3;
  params.size_threshold = 5;
  params.duration_threshold = 12;

  auto discoverer = MakeNetworkDiscoverer(data.graph, params);
  for (const Snapshot& s : data.stream) {
    discoverer->ProcessSnapshot(s, nullptr);
  }
  // Most platoons of qualifying size must be found.
  int qualifying = 0, found = 0;
  for (const ObjectSet& platoon : data.ground_truth) {
    if (platoon.size() < static_cast<size_t>(params.size_threshold)) {
      continue;
    }
    ++qualifying;
    for (const Companion& c : discoverer->log().companions()) {
      if (std::includes(c.objects.begin(), c.objects.end(),
                        platoon.begin(), platoon.end())) {
        ++found;
        break;
      }
    }
  }
  ASSERT_GT(qualifying, 0);
  EXPECT_GE(found * 10, qualifying * 8);  // ≥80%
}

}  // namespace
}  // namespace tcomp
