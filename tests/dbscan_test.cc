#include "core/dbscan.h"

#include <gtest/gtest.h>

#include <map>

#include "tests/test_util.h"
#include "util/random.h"

namespace tcomp {
namespace {

using testing_util::ClusteredSnapshot;
using testing_util::MakeSnapshot;
using testing_util::RandomSnapshot;

TEST(DbscanTest, EmptySnapshot) {
  Clustering c = Dbscan(Snapshot(), DbscanParams{1.0, 3});
  EXPECT_TRUE(c.clusters.empty());
  EXPECT_TRUE(c.labels.empty());
}

TEST(DbscanTest, SingleTightCluster) {
  // Five objects within ε of each other, μ=3: one cluster, all core.
  Snapshot s = MakeSnapshot({{0, 0.0, 0.0},
                             {1, 0.1, 0.0},
                             {2, 0.0, 0.1},
                             {3, 0.1, 0.1},
                             {4, 0.05, 0.05}});
  Clustering c = Dbscan(s, DbscanParams{0.5, 3});
  ASSERT_EQ(c.clusters.size(), 1u);
  EXPECT_EQ(c.clusters[0], (ObjectSet{0, 1, 2, 3, 4}));
  for (size_t i = 0; i < s.size(); ++i) {
    EXPECT_TRUE(c.core[i]);
    EXPECT_EQ(c.labels[i], 0);
  }
}

TEST(DbscanTest, NoisePointsGetMinusOne) {
  Snapshot s = MakeSnapshot({{0, 0.0, 0.0},
                             {1, 0.1, 0.0},
                             {2, 0.2, 0.0},
                             {3, 100.0, 100.0}});
  Clustering c = Dbscan(s, DbscanParams{0.5, 3});
  ASSERT_EQ(c.clusters.size(), 1u);
  EXPECT_EQ(c.clusters[0], (ObjectSet{0, 1, 2}));
  EXPECT_EQ(c.labels[3], -1);
  EXPECT_FALSE(c.core[3]);
}

TEST(DbscanTest, TwoSeparateClusters) {
  Snapshot s = MakeSnapshot({{0, 0.0, 0.0},
                             {1, 0.2, 0.0},
                             {2, 0.4, 0.0},
                             {3, 10.0, 0.0},
                             {4, 10.2, 0.0},
                             {5, 10.4, 0.0}});
  Clustering c = Dbscan(s, DbscanParams{0.5, 3});
  ASSERT_EQ(c.clusters.size(), 2u);
  EXPECT_EQ(c.clusters[0], (ObjectSet{0, 1, 2}));
  EXPECT_EQ(c.clusters[1], (ObjectSet{3, 4, 5}));
}

TEST(DbscanTest, ChainedDensityConnection) {
  // A chain where consecutive points are within ε: all core (μ=2 with
  // self counts 3 along the chain interior), one cluster.
  Snapshot s = MakeSnapshot({{0, 0.0, 0.0},
                             {1, 0.4, 0.0},
                             {2, 0.8, 0.0},
                             {3, 1.2, 0.0},
                             {4, 1.6, 0.0}});
  Clustering c = Dbscan(s, DbscanParams{0.5, 2});
  ASSERT_EQ(c.clusters.size(), 1u);
  EXPECT_EQ(c.clusters[0], (ObjectSet{0, 1, 2, 3, 4}));
}

TEST(DbscanTest, BorderPointAttachesToLowestIndexCore) {
  // Object 4 is a border point within ε of cores from cluster {0,1,2}.
  // With μ=4, object 4 (3 neighbors incl. self) is not core.
  Snapshot s = MakeSnapshot({{0, 0.0, 0.0},
                             {1, 0.1, 0.0},
                             {2, 0.2, 0.0},
                             {3, 0.3, 0.0},
                             {4, 0.75, 0.0}});
  Clustering c = Dbscan(s, DbscanParams{0.5, 4});
  ASSERT_EQ(c.clusters.size(), 1u);
  EXPECT_FALSE(c.core[4]);
  EXPECT_EQ(c.labels[4], 0);
}

TEST(DbscanTest, IndividualSensitivityExample4) {
  // Paper Example 4: a small movement of one object merges two clusters.
  // μ=3. Two clusters of 3, bridge object 6 between them but too far in
  // snapshot 1; in snapshot 2 it moves south and links them.
  auto base = [](double bridge_y) {
    return MakeSnapshot({{0, 0.0, 0.0},
                         {1, 0.4, 0.0},
                         {2, 0.2, 0.3},
                         {3, 2.0, 0.0},
                         {4, 2.4, 0.0},
                         {5, 2.2, 0.3},
                         {6, 1.2, bridge_y}});
  };
  Clustering before = Dbscan(base(5.0), DbscanParams{0.9, 3});
  EXPECT_EQ(before.clusters.size(), 2u);
  Clustering after = Dbscan(base(0.0), DbscanParams{0.9, 3});
  ASSERT_EQ(after.clusters.size(), 1u);
  EXPECT_EQ(after.clusters[0], (ObjectSet{0, 1, 2, 3, 4, 5, 6}));
}

TEST(DbscanTest, CountsDistanceOps) {
  Pcg32 rng(5);
  Snapshot s = RandomSnapshot(20, 10.0, rng);
  int64_t ops = 0;
  Dbscan(s, DbscanParams{1.0, 3}, &ops);
  EXPECT_EQ(ops, 20 * 19 / 2);
}

/// Brute-force reference implementation: core = |N_ε| ≥ μ (with self);
/// clusters = connected components of cores over ≤ε links; borders attach
/// to lowest-index core neighbor.
Clustering ReferenceDbscan(const Snapshot& s, const DbscanParams& p) {
  const size_t n = s.size();
  std::vector<std::vector<uint32_t>> nbrs(n);
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = 0; j < n; ++j) {
      if (Distance(s.pos(i), s.pos(j)) <= p.epsilon) nbrs[i].push_back(j);
    }
  }
  std::vector<bool> core(n);
  for (uint32_t i = 0; i < n; ++i) {
    core[i] = nbrs[i].size() >= static_cast<size_t>(p.mu);
  }
  return internal::BuildClusteringFromCores(s, core, nbrs);
}

class DbscanEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<int, double, int>> {};

TEST_P(DbscanEquivalenceTest, GridMatchesReferenceOnRandomData) {
  auto [n, eps, mu] = GetParam();
  for (uint64_t seed = 100; seed < 106; ++seed) {
    Pcg32 rng(seed);
    Snapshot s = RandomSnapshot(n, 10.0, rng);
    DbscanParams params{eps, mu};
    Clustering ref = ReferenceDbscan(s, params);
    Clustering plain = Dbscan(s, params);
    Clustering grid = DbscanGrid(s, params);
    EXPECT_EQ(plain.labels, ref.labels) << "seed " << seed;
    EXPECT_EQ(plain.clusters, ref.clusters) << "seed " << seed;
    EXPECT_EQ(grid.labels, ref.labels) << "seed " << seed;
    EXPECT_EQ(grid.clusters, ref.clusters) << "seed " << seed;
    EXPECT_EQ(grid.core, ref.core) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DbscanEquivalenceTest,
    ::testing::Values(std::make_tuple(30, 1.0, 3),
                      std::make_tuple(60, 0.8, 2),
                      std::make_tuple(120, 1.5, 4),
                      std::make_tuple(200, 0.5, 5),
                      std::make_tuple(80, 2.5, 3)));

TEST(DbscanTest, GridMatchesPlainOnClusteredData) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Pcg32 rng(seed);
    Snapshot s = ClusteredSnapshot(6, 15, 20, 100.0, 1.0, rng);
    DbscanParams params{2.0, 4};
    Clustering plain = Dbscan(s, params);
    Clustering grid = DbscanGrid(s, params);
    EXPECT_EQ(plain.labels, grid.labels);
    EXPECT_EQ(plain.clusters, grid.clusters);
  }
}

TEST(DbscanTest, ClustersArePartition) {
  Pcg32 rng(77);
  Snapshot s = ClusteredSnapshot(4, 20, 10, 50.0, 1.0, rng);
  Clustering c = Dbscan(s, DbscanParams{2.0, 3});
  std::map<ObjectId, int> seen;
  for (const ObjectSet& cluster : c.clusters) {
    for (ObjectId o : cluster) ++seen[o];
  }
  for (const auto& [oid, count] : seen) {
    EXPECT_EQ(count, 1) << "object " << oid << " in multiple clusters";
  }
  // Labels agree with cluster membership.
  for (size_t i = 0; i < s.size(); ++i) {
    if (c.labels[i] >= 0) {
      const ObjectSet& cluster =
          c.clusters[static_cast<size_t>(c.labels[i])];
      EXPECT_TRUE(std::binary_search(cluster.begin(), cluster.end(),
                                     s.id(i)));
    } else {
      EXPECT_EQ(seen.count(s.id(i)), 0u);
    }
  }
}

}  // namespace
}  // namespace tcomp
