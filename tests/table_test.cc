#include "eval/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace tcomp {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"long-name", "123456"});
  std::ostringstream out;
  table.Print(out);
  std::string text = out.str();
  // Header present, separators drawn, all rows rendered.
  EXPECT_NE(text.find("| name      | value  |"), std::string::npos);
  EXPECT_NE(text.find("| a         | 1      |"), std::string::npos);
  EXPECT_NE(text.find("| long-name | 123456 |"), std::string::npos);
  EXPECT_NE(text.find("+-----------+--------+"), std::string::npos);
}

TEST(TablePrinterTest, EmptyTableStillPrintsHeader) {
  TablePrinter table({"only"});
  std::ostringstream out;
  table.Print(out);
  EXPECT_NE(out.str().find("only"), std::string::npos);
}

TEST(FormatTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(1.23456, 3), "1.235");
  EXPECT_EQ(FormatDouble(2.0, 1), "2.0");
  EXPECT_EQ(FormatDouble(-0.5, 2), "-0.50");
}

TEST(FormatTest, FormatCountScales) {
  EXPECT_EQ(FormatCount(321), "321");
  EXPECT_EQ(FormatCount(99999), "99999");
  EXPECT_EQ(FormatCount(250000), "250.0K");
  EXPECT_EQ(FormatCount(14400000), "14.40M");
  EXPECT_EQ(FormatCount(0), "0");
}

TEST(FormatTest, FormatPercent) {
  EXPECT_EQ(FormatPercent(0.123), "12.3%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
  EXPECT_EQ(FormatPercent(0.0), "0.0%");
}

}  // namespace
}  // namespace tcomp
