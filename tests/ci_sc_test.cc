#include <gtest/gtest.h>

#include <algorithm>

#include "core/clustering_intersection.h"
#include "core/smart_closed.h"
#include "tests/test_util.h"

namespace tcomp {
namespace {

using testing_util::MakeSnapshot;

/// A hand-built 4-snapshot stream mirroring the paper's worked example
/// (Figs. 4 and 6): two clusters that merge, then split into a marching
/// queue of three, with companions {0,1,2,3} and {7,8,9} emerging after
/// four snapshots. Every expected count below is hand-computed in the
/// comments.
SnapshotStream WorkedExampleStream() {
  SnapshotStream stream;
  // s1: cluster A={0..5} (line, spacing 0.5), cluster B={7,8,9}, o6 noise.
  stream.push_back(MakeSnapshot({{0, 0.0, 0.0},
                                 {1, 0.5, 0.0},
                                 {2, 1.0, 0.0},
                                 {3, 1.5, 0.0},
                                 {4, 2.0, 0.0},
                                 {5, 2.5, 0.0},
                                 {6, 50.0, 50.0},
                                 {7, 0.0, 10.0},
                                 {8, 0.5, 10.0},
                                 {9, 1.0, 10.0}},
                                /*duration=*/10.0));
  // s2: everyone merges into one cluster (a single line).
  stream.push_back(MakeSnapshot({{0, 0.0, 0.0},
                                 {1, 0.5, 0.0},
                                 {2, 1.0, 0.0},
                                 {3, 1.5, 0.0},
                                 {4, 2.0, 0.0},
                                 {5, 2.5, 0.0},
                                 {6, 3.0, 0.0},
                                 {7, 3.5, 0.0},
                                 {8, 4.0, 0.0},
                                 {9, 4.5, 0.0}},
                                10.0));
  // s3, s4: queue formation — C1={0,1,2,3}, C2={4,5,6}, C3={7,8,9}.
  for (int rep = 0; rep < 2; ++rep) {
    stream.push_back(MakeSnapshot({{0, 0.0, 0.0},
                                   {1, 0.5, 0.0},
                                   {2, 1.0, 0.0},
                                   {3, 1.5, 0.0},
                                   {4, 0.0, 5.0},
                                   {5, 0.5, 5.0},
                                   {6, 1.0, 5.0},
                                   {7, 0.0, 10.0},
                                   {8, 0.5, 10.0},
                                   {9, 1.0, 10.0}},
                                  10.0));
  }
  return stream;
}

DiscoveryParams ExampleParams() {
  DiscoveryParams p;
  p.cluster.epsilon = 0.6;
  p.cluster.mu = 2;
  p.size_threshold = 3;        // δs = 3 (as in the paper's example)
  p.duration_threshold = 40.0;  // δt = 40 minutes = 4 snapshots
  return p;
}

TEST(WorkedExampleTest, CiTraceMatchesHandComputation) {
  SnapshotStream stream = WorkedExampleStream();
  ClusteringIntersectionDiscoverer ci(ExampleParams());

  // s1: two clusters become candidates; no intersections yet.
  ci.ProcessSnapshot(stream[0], nullptr);
  EXPECT_EQ(ci.stats().intersections, 0);
  EXPECT_EQ(ci.stats().candidate_objects_last, 9);  // {0..5} + {7,8,9}

  // s2: 2 candidates × 1 cluster = 2 intersections; candidates
  // {0..5}@20 (6) + {7,8,9}@20 (3) + new cluster {0..9}@10 (10) = 19.
  ci.ProcessSnapshot(stream[1], nullptr);
  EXPECT_EQ(ci.stats().intersections, 2);
  EXPECT_EQ(ci.stats().candidate_objects_last, 19);

  // s3: 3 candidates × 3 clusters = 9 more (11 total). Surviving products:
  // {0,1,2,3}@30, {7,8,9}@30, {0,1,2,3}@20, {4,5,6}@20, {7,8,9}@20
  // (4+3+4+3+3 = 17) + new clusters 4+3+3 = 10 → 27.
  ci.ProcessSnapshot(stream[2], nullptr);
  EXPECT_EQ(ci.stats().intersections, 11);
  EXPECT_EQ(ci.stats().candidate_objects_last, 27);

  // s4: 8 candidates × 3 clusters = 24 more (35 total); two companions
  // qualify at 40 minutes and *leave* the candidate set (Definition 4:
  // candidates have duration < δt), so 37 stored objects drop to 30.
  std::vector<Companion> newly;
  ci.ProcessSnapshot(stream[3], &newly);
  EXPECT_EQ(ci.stats().intersections, 35);
  EXPECT_EQ(ci.stats().candidate_objects_last, 30);
  EXPECT_EQ(ci.stats().candidate_objects_peak, 30);
  ASSERT_EQ(newly.size(), 2u);
  EXPECT_EQ(newly[0].objects, (ObjectSet{0, 1, 2, 3}));
  EXPECT_EQ(newly[1].objects, (ObjectSet{7, 8, 9}));
  EXPECT_DOUBLE_EQ(newly[0].duration, 40.0);
  EXPECT_EQ(newly[0].snapshot_index, 3);
}

TEST(WorkedExampleTest, ScTraceMatchesHandComputation) {
  SnapshotStream stream = WorkedExampleStream();
  SmartClosedDiscoverer sc(ExampleParams());

  sc.ProcessSnapshot(stream[0], nullptr);
  EXPECT_EQ(sc.stats().intersections, 0);
  EXPECT_EQ(sc.stats().candidate_objects_last, 9);

  sc.ProcessSnapshot(stream[1], nullptr);
  EXPECT_EQ(sc.stats().intersections, 2);
  EXPECT_EQ(sc.stats().candidate_objects_last, 19);

  // s3 smart intersection (first-object cluster probed first): candidate
  // {0..5}@20 is consumed by C1 and stops (only {4,5} remain — below δs,
  // 1 op); {7,8,9}@20 hits its own cluster C3 directly (1 op); {0..9}@10
  // needs all three (3 ops) → 5 more (7 total). All three new clusters
  // are suppressed as non-closed (each equals a product with longer
  // duration): candidates {0123}@30 {789}@30 {0123}@20 {456}@20 {789}@20
  // → 17 objects.
  sc.ProcessSnapshot(stream[2], nullptr);
  EXPECT_EQ(sc.stats().intersections, 7);
  EXPECT_EQ(sc.stats().candidate_objects_last, 17);

  // s4: each of the five candidates is consumed by its own cluster in one
  // op → 5 more — 12 in total, matching the paper's Fig. 6 count.
  std::vector<Companion> newly;
  sc.ProcessSnapshot(stream[3], &newly);
  EXPECT_EQ(sc.stats().intersections, 12);
  ASSERT_EQ(newly.size(), 2u);
  EXPECT_EQ(newly[0].objects, (ObjectSet{0, 1, 2, 3}));
  EXPECT_EQ(newly[1].objects, (ObjectSet{7, 8, 9}));

  // SC's peak stays at the s2 level — below CI's 37 (the paper's point).
  EXPECT_EQ(sc.stats().candidate_objects_peak, 19);
}

TEST(WorkedExampleTest, ScCheaperThanCiButSameCompanions) {
  SnapshotStream stream = WorkedExampleStream();
  ClusteringIntersectionDiscoverer ci(ExampleParams());
  SmartClosedDiscoverer sc(ExampleParams());
  for (const Snapshot& s : stream) {
    ci.ProcessSnapshot(s, nullptr);
    sc.ProcessSnapshot(s, nullptr);
  }
  EXPECT_LT(sc.stats().intersections, ci.stats().intersections);
  EXPECT_LT(sc.stats().candidate_objects_peak,
            ci.stats().candidate_objects_peak);
  ASSERT_EQ(ci.log().size(), sc.log().size());
  for (size_t i = 0; i < ci.log().size(); ++i) {
    EXPECT_EQ(ci.log().companions()[i].objects,
              sc.log().companions()[i].objects);
  }
}

TEST(CiTest, CompanionRequiresDuration) {
  DiscoveryParams p = ExampleParams();
  p.duration_threshold = 50.0;  // five snapshots — stream has four
  SnapshotStream stream = WorkedExampleStream();
  ClusteringIntersectionDiscoverer ci(p);
  for (const Snapshot& s : stream) ci.ProcessSnapshot(s, nullptr);
  EXPECT_EQ(ci.log().size(), 0u);
}

TEST(CiTest, CompanionRequiresSize) {
  DiscoveryParams p = ExampleParams();
  p.size_threshold = 5;  // {0,1,2,3} and {7,8,9} both too small
  SnapshotStream stream = WorkedExampleStream();
  ClusteringIntersectionDiscoverer ci(p);
  for (const Snapshot& s : stream) ci.ProcessSnapshot(s, nullptr);
  EXPECT_EQ(ci.log().size(), 0u);
}

TEST(CiTest, SingleSnapshotQualifiesWhenThresholdTiny) {
  DiscoveryParams p = ExampleParams();
  p.duration_threshold = 10.0;  // one snapshot suffices
  SnapshotStream stream = WorkedExampleStream();
  ClusteringIntersectionDiscoverer ci(p);
  std::vector<Companion> newly;
  ci.ProcessSnapshot(stream[0], &newly);
  ASSERT_EQ(newly.size(), 2u);
  EXPECT_EQ(newly[0].objects, (ObjectSet{0, 1, 2, 3, 4, 5}));
}

TEST(CiTest, ResetDropsAllState) {
  SnapshotStream stream = WorkedExampleStream();
  ClusteringIntersectionDiscoverer ci(ExampleParams());
  for (const Snapshot& s : stream) ci.ProcessSnapshot(s, nullptr);
  ci.Reset();
  EXPECT_EQ(ci.stats().intersections, 0);
  EXPECT_EQ(ci.log().size(), 0u);
  EXPECT_TRUE(ci.candidates().empty());
  // Re-processing from scratch reproduces the original trace.
  for (const Snapshot& s : stream) ci.ProcessSnapshot(s, nullptr);
  EXPECT_EQ(ci.stats().intersections, 35);
}

TEST(ScTest, InterruptedGroupDoesNotQualify) {
  // {7,8,9} scatters at s3 — its chain dies even though it re-forms later.
  DiscoveryParams p = ExampleParams();
  p.duration_threshold = 30.0;
  SnapshotStream stream = WorkedExampleStream();
  // Replace s3 with a snapshot where 7,8,9 are apart.
  stream[2] = MakeSnapshot({{0, 0.0, 0.0},
                            {1, 0.5, 0.0},
                            {2, 1.0, 0.0},
                            {3, 1.5, 0.0},
                            {4, 0.0, 5.0},
                            {5, 0.5, 5.0},
                            {6, 1.0, 5.0},
                            {7, 20.0, 10.0},
                            {8, 40.0, 10.0},
                            {9, 60.0, 10.0}},
                           10.0);
  SmartClosedDiscoverer sc(p);
  for (const Snapshot& s : stream) sc.ProcessSnapshot(s, nullptr);
  std::vector<ObjectSet> reported;
  for (const Companion& c : sc.log().companions()) {
    reported.push_back(c.objects);
  }
  // {0,1,2,3} persists through all four snapshots and qualifies at s3
  // (30 min); no {7,8,9} companion exists.
  EXPECT_TRUE(std::find(reported.begin(), reported.end(),
                        (ObjectSet{0, 1, 2, 3})) != reported.end());
  EXPECT_TRUE(std::find(reported.begin(), reported.end(),
                        (ObjectSet{7, 8, 9})) == reported.end());
}

}  // namespace
}  // namespace tcomp
