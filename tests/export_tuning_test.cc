#include <gtest/gtest.h>

#include <sstream>

#include "core/discoverer.h"
#include "data/synthetic_gen.h"
#include "eval/export.h"
#include "eval/tuning.h"
#include "tests/test_util.h"

namespace tcomp {
namespace {

using testing_util::ClusteredSnapshot;

TEST(ExportTest, CompanionsJsonShape) {
  std::vector<Companion> companions = {
      {{1, 2, 3}, 10.0, 7},
      {{4, 5}, 12.5, 9},
  };
  std::ostringstream out;
  WriteCompanionsJson(companions, out);
  EXPECT_EQ(out.str(),
            "{\"companions\":[{\"objects\":[1,2,3],\"duration\":10,"
            "\"snapshot\":7},{\"objects\":[4,5],\"duration\":12.5,"
            "\"snapshot\":9}]}\n");
}

TEST(ExportTest, EmptyCompanionsJson) {
  std::ostringstream out;
  WriteCompanionsJson({}, out);
  EXPECT_EQ(out.str(), "{\"companions\":[]}\n");
}

TEST(ExportTest, CompanionsCsvShape) {
  std::vector<Companion> companions = {{{1, 2, 3}, 10.0, 7}};
  std::ostringstream out;
  WriteCompanionsCsv(companions, out);
  EXPECT_EQ(out.str(),
            "duration,snapshot_index,size,objects\n10,7,3,1 2 3\n");
}

TEST(ExportTest, StatsJsonHasAllCounters) {
  DiscoveryStats stats;
  stats.snapshots = 5;
  stats.intersections = 42;
  stats.maintain_seconds = 0.25;
  std::ostringstream out;
  WriteStatsJson(stats, out);
  std::string text = out.str();
  EXPECT_NE(text.find("\"snapshots\":5"), std::string::npos);
  EXPECT_NE(text.find("\"intersections\":42"), std::string::npos);
  EXPECT_NE(text.find("\"maintain_seconds\":0.25"), std::string::npos);
  EXPECT_NE(text.find("\"buddy_pairs_pruned\":0"), std::string::npos);
}

TEST(ExportTest, EpisodesJsonShape) {
  std::vector<CompanionEpisode> episodes = {{{1, 2}, 3, 9}};
  std::ostringstream out;
  WriteEpisodesJson(episodes, out);
  EXPECT_EQ(out.str(),
            "{\"episodes\":[{\"objects\":[1,2],\"begin\":3,\"end\":9}]}"
            "\n");
}

TEST(ExportTest, FileWriters) {
  std::vector<Companion> companions = {{{1, 2}, 4.0, 1}};
  std::string json = ::testing::TempDir() + "/c.json";
  std::string csv = ::testing::TempDir() + "/c.csv";
  EXPECT_TRUE(WriteCompanionsJsonFile(companions, json).ok());
  EXPECT_TRUE(WriteCompanionsCsvFile(companions, csv).ok());
  EXPECT_FALSE(
      WriteCompanionsJsonFile(companions, "/no/dir/c.json").ok());
}

TEST(TuningTest, KDistancesSortedAndSized) {
  Pcg32 rng(5);
  Snapshot s = ClusteredSnapshot(4, 20, 5, 200.0, 2.0, rng);
  std::vector<double> kdist = SortedKDistances(s, 4);
  ASSERT_EQ(kdist.size(), s.size());
  EXPECT_TRUE(std::is_sorted(kdist.begin(), kdist.end()));
  EXPECT_GT(kdist.front(), 0.0);
}

TEST(TuningTest, TinySnapshotsGiveInfinity) {
  Pcg32 rng(6);
  Snapshot s = testing_util::RandomSnapshot(3, 10.0, rng);
  std::vector<double> kdist = SortedKDistances(s, 5);
  for (double d : kdist) EXPECT_TRUE(std::isinf(d));
}

TEST(TuningTest, RecoversGroupScaleOnSyntheticData) {
  // The group model's in-group spacing is ~4-6 units (spread 25, ~25
  // members); the suggested ε must land near the preset (20) — same
  // order of magnitude, far below the inter-group distances (hundreds).
  Dataset d3 = MakeSyntheticD3(/*num_snapshots=*/10);
  TuningSuggestion s = SuggestClusterParams(d3.stream, /*k=*/4);
  EXPECT_EQ(s.params.mu, 5);
  EXPECT_GT(s.params.epsilon, 3.0);
  EXPECT_LT(s.params.epsilon, 60.0);
  // ~15% of D3's objects are independent wanderers — they sit past the
  // knee.
  EXPECT_LT(s.noise_fraction, 0.3);

  // The suggestion actually clusters the data into group-sized clusters.
  Clustering c = DbscanGrid(d3.stream[5], s.params);
  size_t biggest = 0;
  for (const ObjectSet& cluster : c.clusters) {
    biggest = std::max(biggest, cluster.size());
  }
  EXPECT_GE(biggest, 10u);
}

TEST(TuningTest, EmptyStreamHandled) {
  TuningSuggestion s = SuggestClusterParams({});
  EXPECT_GT(s.params.epsilon, 0.0);
  EXPECT_EQ(s.params.mu, 5);
}

TEST(TuningTest, DeterministicAcrossCalls) {
  Dataset d3 = MakeSyntheticD3(/*num_snapshots=*/6);
  TuningSuggestion a = SuggestClusterParams(d3.stream, 4);
  TuningSuggestion b = SuggestClusterParams(d3.stream, 4);
  EXPECT_DOUBLE_EQ(a.params.epsilon, b.params.epsilon);
  EXPECT_DOUBLE_EQ(a.noise_fraction, b.noise_fraction);
}

TEST(TuningTest, KneeIgnoresExtremOutlierTail) {
  // A tight blob plus a handful of extreme outliers: the knee must stay
  // at the blob's spacing scale, not the outlier distances.
  std::vector<ObjectPosition> pos;
  Pcg32 rng(12);
  for (ObjectId o = 0; o < 80; ++o) {
    pos.push_back(ObjectPosition{
        o, Point{rng.NextDouble(0, 20), rng.NextDouble(0, 20)}});
  }
  for (ObjectId o = 80; o < 85; ++o) {
    pos.push_back(ObjectPosition{
        o, Point{(o - 79) * 10000.0, (o - 79) * 10000.0}});
  }
  SnapshotStream stream = {Snapshot(pos, 1.0)};
  TuningSuggestion s = SuggestClusterParams(stream, 4);
  EXPECT_LT(s.params.epsilon, 50.0);
}

}  // namespace
}  // namespace tcomp
