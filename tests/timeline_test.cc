#include "core/timeline.h"

#include <gtest/gtest.h>

#include "core/smart_closed.h"
#include "tests/test_util.h"

namespace tcomp {
namespace {

using testing_util::MakeSnapshot;

TEST(TimelineTest, SingleEventMakesOneEpisode) {
  CompanionTimeline tl;
  tl.Observe({1, 2, 3}, 4.0, 10);  // covers [7, 10]
  std::vector<CompanionEpisode> eps = tl.Episodes();
  ASSERT_EQ(eps.size(), 1u);
  EXPECT_EQ(eps[0].begin, 7);
  EXPECT_EQ(eps[0].end, 10);
  EXPECT_EQ(eps[0].length(), 4);
}

TEST(TimelineTest, AdjacentEventsMerge) {
  CompanionTimeline tl;
  tl.Observe({1, 2}, 4.0, 10);  // [7, 10]
  tl.Observe({1, 2}, 4.0, 14);  // [11, 14] — touches → merged
  std::vector<CompanionEpisode> eps = tl.Episodes();
  ASSERT_EQ(eps.size(), 1u);
  EXPECT_EQ(eps[0].begin, 7);
  EXPECT_EQ(eps[0].end, 14);
}

TEST(TimelineTest, GapSplitsEpisodes) {
  CompanionTimeline tl;
  tl.Observe({1, 2}, 3.0, 5);   // [3, 5]
  tl.Observe({1, 2}, 3.0, 20);  // [18, 20] — gap → new episode
  std::vector<CompanionEpisode> eps = tl.Episodes();
  ASSERT_EQ(eps.size(), 2u);
  EXPECT_EQ(eps[0].end, 5);
  EXPECT_EQ(eps[1].begin, 18);
}

TEST(TimelineTest, DistinctSetsTrackedSeparately) {
  CompanionTimeline tl;
  tl.Observe({1, 2}, 2.0, 4);
  tl.Observe({3, 4}, 2.0, 4);
  EXPECT_EQ(tl.distinct_sets(), 2u);
  EXPECT_EQ(tl.Episodes().size(), 2u);
}

TEST(TimelineTest, ActiveAtQueriesIntervals) {
  CompanionTimeline tl;
  tl.Observe({1, 2}, 4.0, 10);   // [7, 10]
  tl.Observe({3, 4}, 2.0, 8);    // [7, 8]
  EXPECT_EQ(tl.ActiveAt(7).size(), 2u);
  EXPECT_EQ(tl.ActiveAt(9).size(), 1u);
  EXPECT_EQ(tl.ActiveAt(11).size(), 0u);
}

TEST(TimelineTest, LongestEpisode) {
  CompanionTimeline tl;
  tl.Observe({1, 2}, 3.0, 5);
  tl.Observe({3, 4}, 7.0, 9);
  CompanionEpisode longest = tl.Longest();
  EXPECT_EQ(longest.objects, (ObjectSet{3, 4}));
  EXPECT_EQ(longest.length(), 7);
  tl.Clear();
  EXPECT_EQ(tl.Longest().length(), 0);
}

TEST(TimelineTest, SinkCanBeReplacedAndSurvivesReset) {
  SnapshotStream stream;
  for (int t = 0; t < 12; ++t) {
    stream.push_back(MakeSnapshot({{0, 0.0, 0.0},
                                   {1, 0.3, 0.0},
                                   {2, 0.6, 0.0}}));
  }
  DiscoveryParams params;
  params.cluster.epsilon = 0.5;
  params.cluster.mu = 2;
  params.size_threshold = 3;
  params.duration_threshold = 4;

  SmartClosedDiscoverer sc(params);
  int calls_a = 0, calls_b = 0;
  sc.set_report_sink([&](const ObjectSet&, double, int64_t) { ++calls_a; });
  sc.ProcessSnapshot(stream[0], nullptr);
  for (int t = 1; t < 6; ++t) sc.ProcessSnapshot(stream[t], nullptr);
  EXPECT_GT(calls_a, 0);

  // Replacing the sink reroutes subsequent reports.
  sc.set_report_sink([&](const ObjectSet&, double, int64_t) { ++calls_b; });
  int before_a = calls_a;
  for (int t = 6; t < 12; ++t) sc.ProcessSnapshot(stream[t], nullptr);
  EXPECT_EQ(calls_a, before_a);
  EXPECT_GT(calls_b, 0);

  // Reset drops stream state but keeps the sink installed.
  sc.Reset();
  int before_b = calls_b;
  for (const Snapshot& s : stream) sc.ProcessSnapshot(s, nullptr);
  EXPECT_GT(calls_b, before_b);
}

TEST(TimelineTest, EndToEndWithDiscoverer) {
  // A pair of groups: one persists all 14 snapshots, the other dissolves
  // after 8 and re-forms at 20 for 8 more.
  SnapshotStream stream;
  for (int t = 0; t < 28; ++t) {
    std::vector<std::tuple<ObjectId, double, double>> items;
    for (ObjectId o = 0; o < 4; ++o) {
      items.push_back({o, o * 0.4, 0.0});  // group A, always together
    }
    bool b_together = t < 8 || t >= 20;
    for (ObjectId o = 10; o < 14; ++o) {
      double x = b_together ? (o - 10) * 0.4 : (o - 10) * 50.0;
      items.push_back({o, x, 100.0});
    }
    stream.push_back(MakeSnapshot(items));
  }

  DiscoveryParams params;
  params.cluster.epsilon = 0.5;
  params.cluster.mu = 3;
  params.size_threshold = 4;
  params.duration_threshold = 5;

  SmartClosedDiscoverer sc(params);
  CompanionTimeline tl;
  tl.Track(&sc);
  for (const Snapshot& s : stream) sc.ProcessSnapshot(s, nullptr);

  // Group A: one long episode covering (nearly) the whole stream; the
  // tail shorter than δt after the last re-qualification is not covered.
  std::vector<CompanionEpisode> a_eps;
  std::vector<CompanionEpisode> b_eps;
  for (const CompanionEpisode& e : tl.Episodes()) {
    if (e.objects == ObjectSet{0, 1, 2, 3}) a_eps.push_back(e);
    if (e.objects == ObjectSet{10, 11, 12, 13}) b_eps.push_back(e);
  }
  ASSERT_EQ(a_eps.size(), 1u);
  EXPECT_EQ(a_eps[0].begin, 0);
  EXPECT_GE(a_eps[0].length(), 25);

  // Group B: two separate episodes around the dissolution gap.
  ASSERT_EQ(b_eps.size(), 2u);
  EXPECT_EQ(b_eps[0].begin, 0);
  EXPECT_LE(b_eps[0].end, 8);
  EXPECT_GE(b_eps[1].begin, 20);
}

TEST(TimelineTest, TracksEveryAlgorithmIdentically) {
  SnapshotStream stream;
  for (int t = 0; t < 20; ++t) {
    stream.push_back(MakeSnapshot({{0, 0.0, 0.0},
                                   {1, 0.3, 0.0},
                                   {2, 0.6, 0.0},
                                   {3, 0.9, 0.0}}));
  }
  DiscoveryParams params;
  params.cluster.epsilon = 0.5;
  params.cluster.mu = 2;
  params.size_threshold = 4;
  params.duration_threshold = 6;

  std::vector<CompanionEpisode> per_algo[3];
  int i = 0;
  for (Algorithm a : {Algorithm::kClusteringIntersection,
                      Algorithm::kSmartClosed, Algorithm::kBuddy}) {
    auto d = MakeDiscoverer(a, params);
    CompanionTimeline tl;
    tl.Track(d.get());
    for (const Snapshot& s : stream) d->ProcessSnapshot(s, nullptr);
    per_algo[i++] = tl.Episodes();
  }
  // SC and BU report on identical δt re-qualification cycles → identical
  // episodes. CI's candidate ladder re-qualifies the set every snapshot,
  // so its episode covers SC's with a tail up to δt−1 snapshots longer.
  ASSERT_EQ(per_algo[1].size(), 1u);
  ASSERT_EQ(per_algo[2].size(), 1u);
  EXPECT_EQ(per_algo[1][0].objects, per_algo[2][0].objects);
  EXPECT_EQ(per_algo[1][0].begin, per_algo[2][0].begin);
  EXPECT_EQ(per_algo[1][0].end, per_algo[2][0].end);

  ASSERT_EQ(per_algo[0].size(), 1u);
  EXPECT_LE(per_algo[0][0].begin, per_algo[1][0].begin);
  EXPECT_GE(per_algo[0][0].end, per_algo[1][0].end);
  EXPECT_LT(per_algo[0][0].end - per_algo[1][0].end,
            static_cast<int64_t>(params.duration_threshold));
}

}  // namespace
}  // namespace tcomp
