/// Differential proof that the incremental clustering layer is exact:
/// IncrementalClusterer must produce byte-identical clusterings to full
/// per-snapshot DBSCAN on every stream we can throw at it — smooth
/// motion, dropout/reappearance, whole-cluster teleports, stale
/// (out-of-order) position reverts, kill-switch toggles mid-stream, and
/// mid-stream checkpoint kill+resume — across thread counts and kernel
/// modes. Also pins the shared eps-boundary convention (satellite: flat,
/// grid, and incremental backends must agree on pairs at exactly ε,
/// including pairs straddling grid cell borders at large coordinates).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "baselines/convoy.h"
#include "core/clustering_intersection.h"
#include "core/dbscan.h"
#include "core/discoverer.h"
#include "core/incremental_cluster.h"
#include "core/snapshot.h"
#include "data/group_model.h"
#include "tests/test_util.h"
#include "util/dense_bitset.h"

namespace tcomp {
namespace {

using testing_util::IncrementalClusteringGuard;
using testing_util::MakeSnapshot;

/// RAII pin for the bitset-kernel switch (mirrors the guard in
/// kernel_differential_test).
class KernelGuard {
 public:
  explicit KernelGuard(bool enabled) : previous_(BitsetKernelsEnabled()) {
    SetBitsetKernelsEnabled(enabled);
  }
  ~KernelGuard() { SetBitsetKernelsEnabled(previous_); }
  KernelGuard(const KernelGuard&) = delete;
  KernelGuard& operator=(const KernelGuard&) = delete;

 private:
  bool previous_;
};

/// Fast, churny stream (same shape as kernel_differential_test): objects
/// move far beyond the stability slack every snapshot, so this exercises
/// the fallback path of the incremental layer.
GroupDataset ChurnyStream(uint64_t seed) {
  GroupModelOptions options;
  options.num_objects = 90;
  options.num_snapshots = 32;
  options.area_size = 1600.0;
  options.min_group_size = 6;
  options.max_group_size = 12;
  options.split_probability = 0.015;
  options.leave_probability = 0.008;
  options.seed = seed;
  return GenerateGroupStream(options);
}

/// Low-speed variant: per-snapshot movement stays well under the
/// clusterer's Δ = ε/2 = 9 slack, so carried state is actually reusable
/// (the default group streams move too fast for that).
GroupDataset CoherentStream(uint64_t seed) {
  GroupModelOptions options;
  options.num_objects = 120;
  options.num_snapshots = 40;
  options.area_size = 1800.0;
  options.min_group_size = 6;
  options.max_group_size = 12;
  options.group_speed = 1.0;
  options.free_speed = 1.5;
  options.member_jitter = 0.8;
  options.seed = seed;
  return GenerateGroupStream(options);
}

DbscanParams ClusterParams() {
  DbscanParams params;
  params.epsilon = 18.0;
  params.mu = 3;
  return params;
}

DiscoveryParams BaseParams() {
  DiscoveryParams params;
  params.cluster = ClusterParams();
  params.size_threshold = 5;
  params.duration_threshold = 7;
  return params;
}

void ExpectSameClustering(const Clustering& want, const Clustering& got,
                          size_t t) {
  EXPECT_EQ(want.labels, got.labels) << "labels diverge at snapshot " << t;
  EXPECT_EQ(want.core, got.core) << "core flags diverge at snapshot " << t;
  ASSERT_EQ(want.clusters.size(), got.clusters.size())
      << "cluster count diverges at snapshot " << t;
  for (size_t k = 0; k < want.clusters.size(); ++k) {
    EXPECT_EQ(want.clusters[k], got.clusters[k])
        << "cluster " << k << " diverges at snapshot " << t;
  }
}

/// Feeds `stream` through an IncrementalClusterer and asserts every
/// snapshot's clustering is identical to full Dbscan. Returns the
/// accumulated delta counters.
ClusterDeltaStats ExpectIncrementalMatchesFull(const SnapshotStream& stream,
                                               const DbscanParams& params) {
  IncrementalClusterer clusterer(params);
  ClusterDeltaStats delta;
  int64_t inc_ops = 0;
  for (size_t t = 0; t < stream.size(); ++t) {
    Clustering got = clusterer.Cluster(stream[t], &inc_ops, &delta);
    Clustering want = Dbscan(stream[t], params);
    ExpectSameClustering(want, got, t);
  }
  // Every object-snapshot is accounted exactly once, as reused or dirty.
  EXPECT_EQ(delta.reuse + delta.dirty, TotalRecords(stream));
  return delta;
}

// ---------------------------------------------------------------------------
// Clusterer-level differential coverage.

class IncrementalClusterTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalClusterTest, MatchesFullDbscanOnChurnyStream) {
  IncrementalClusteringGuard incremental_on(true);
  ExpectIncrementalMatchesFull(ChurnyStream(GetParam()).stream,
                               ClusterParams());
}

TEST_P(IncrementalClusterTest, MatchesFullDbscanOnCoherentStream) {
  IncrementalClusteringGuard incremental_on(true);
  GroupDataset data = CoherentStream(GetParam());
  ClusterDeltaStats delta =
      ExpectIncrementalMatchesFull(data.stream, ClusterParams());
  // The whole point of the layer: on low-speed streams most
  // object-snapshots must be carried over, not re-probed.
  EXPECT_GT(delta.reuse, delta.dirty)
      << "coherent stream should mostly reuse carried state";
  EXPECT_LT(delta.full_rebuilds,
            static_cast<int64_t>(data.stream.size()) / 4);
}

TEST_P(IncrementalClusterTest, DropoutAndReappearance) {
  IncrementalClusteringGuard incremental_on(true);
  GroupDataset data = CoherentStream(GetParam());
  // Objects blink out for a window of snapshots and come back — having
  // kept moving while dark. Deterministic per (id, t) so the stream is
  // reproducible.
  SnapshotStream stream;
  for (size_t t = 0; t < data.stream.size(); ++t) {
    const Snapshot& s = data.stream[t];
    std::vector<ObjectPosition> kept;
    for (size_t i = 0; i < s.size(); ++i) {
      uint64_t h = (static_cast<uint64_t>(s.id(i)) * 2654435761u +
                    static_cast<uint64_t>(t) * 40503u) %
                   11;
      if (t >= 8 && t < 14 && h < 3) continue;  // dark window
      kept.push_back(ObjectPosition{s.id(i), s.pos(i)});
    }
    stream.push_back(Snapshot(std::move(kept), s.duration()));
  }
  ExpectIncrementalMatchesFull(stream, ClusterParams());
}

TEST_P(IncrementalClusterTest, WholeClusterTeleport) {
  IncrementalClusteringGuard incremental_on(true);
  GroupDataset data = CoherentStream(GetParam());
  // At t=12 a third of the population teleports far away (GPS re-fix,
  // ferry hop); at t=20 *everything* shifts, which must trip the churn
  // fallback and still match full DBSCAN.
  SnapshotStream stream;
  for (size_t t = 0; t < data.stream.size(); ++t) {
    const Snapshot& s = data.stream[t];
    std::vector<ObjectPosition> moved;
    for (size_t i = 0; i < s.size(); ++i) {
      Point p = s.pos(i);
      if (t >= 12 && s.id(i) % 3 == 0) {
        p.x += 5e6;
        p.y += 5e6;
      }
      if (t >= 20) {
        p.x -= 3e6;
        p.y += 2e6;
      }
      moved.push_back(ObjectPosition{s.id(i), p});
    }
    stream.push_back(Snapshot(std::move(moved), s.duration()));
  }
  IncrementalClusterer clusterer(ClusterParams());
  ClusterDeltaStats delta;
  for (size_t t = 0; t < stream.size(); ++t) {
    Clustering got = clusterer.Cluster(stream[t], nullptr, &delta);
    ExpectSameClustering(Dbscan(stream[t], ClusterParams()), got, t);
  }
  // t=0 (no state), the partial teleport, and the all-hands shift each
  // force a full re-probe.
  EXPECT_GE(delta.full_rebuilds, 3);
}

TEST_P(IncrementalClusterTest, StalePositionReverts) {
  IncrementalClusteringGuard incremental_on(true);
  GroupDataset data = CoherentStream(GetParam());
  // Out-of-order arrival as seen below the sliding window: a subset of
  // objects report stale positions on odd snapshots (the previous
  // snapshot's fix), so their tracks jump back and forth instead of
  // progressing monotonically.
  SnapshotStream stream;
  stream.push_back(data.stream[0]);
  for (size_t t = 1; t < data.stream.size(); ++t) {
    const Snapshot& s = data.stream[t];
    const Snapshot& prev = data.stream[t - 1];
    std::vector<ObjectPosition> pos;
    for (size_t i = 0; i < s.size(); ++i) {
      Point p = s.pos(i);
      if (t % 2 == 1 && s.id(i) % 4 == 0) {
        size_t back = prev.IndexOf(s.id(i));
        if (back != Snapshot::kNpos) p = prev.pos(back);
      }
      pos.push_back(ObjectPosition{s.id(i), p});
    }
    stream.push_back(Snapshot(std::move(pos), s.duration()));
  }
  ExpectIncrementalMatchesFull(stream, ClusterParams());
}

TEST_P(IncrementalClusterTest, KillSwitchToggleMidStream) {
  IncrementalClusteringGuard guard(true);
  GroupDataset data = CoherentStream(GetParam());
  DbscanParams params = ClusterParams();
  IncrementalClusterer clusterer(params);
  ClusterDeltaStats delta;
  for (size_t t = 0; t < data.stream.size(); ++t) {
    // Off for a window mid-stream; re-enabling must re-probe from
    // scratch, never resurrect pre-toggle state.
    SetIncrementalClusteringEnabled(t < 10 || t >= 18);
    Clustering got = clusterer.Cluster(data.stream[t], nullptr, &delta);
    ExpectSameClustering(Dbscan(data.stream[t], params), got, t);
    if (t >= 10 && t < 18) {
      EXPECT_FALSE(clusterer.has_state()) << "switch off must drop state";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalClusterTest,
                         ::testing::Values(701, 702, 703));

// ---------------------------------------------------------------------------
// Eps-boundary agreement (the shared WithinEps convention, satellite 1).

/// Builds a snapshot of triples A=(b,b), B=(b+ε,b), C=(b,b+ε) for each
/// base b: A–B and A–C are at *exactly* ε (the bases are chosen so b+ε is
/// exactly representable), B–C is at ε·√2. With mu=2 each triple must
/// come out as one all-core cluster — iff both exact-ε pairs count as
/// neighbors, the closed-ball convention every backend now shares.
Snapshot ExactEpsTriples(const std::vector<double>& bases, double eps) {
  std::vector<ObjectPosition> positions;
  ObjectId next = 0;
  for (double base : bases) {
    positions.push_back(ObjectPosition{next++, Point{base, base}});
    positions.push_back(ObjectPosition{next++, Point{base + eps, base}});
    positions.push_back(ObjectPosition{next++, Point{base, base + eps}});
  }
  return Snapshot(std::move(positions), 1.0);
}

void ExpectTriplesAgreeAcrossBackends(const std::vector<double>& bases) {
  const double eps = 18.0;
  DbscanParams params;
  params.epsilon = eps;
  params.mu = 2;  // a single exact-ε pair is already core+core
  Snapshot snapshot = ExactEpsTriples(bases, eps);

  Clustering flat = Dbscan(snapshot, params);
  Clustering grid = DbscanGrid(snapshot, params);
  ExpectSameClustering(flat, grid, 0);

  IncrementalClusteringGuard incremental_on(true);
  IncrementalClusterer clusterer(params);
  ExpectSameClustering(flat, clusterer.Cluster(snapshot, nullptr, nullptr),
                       0);

  // Every triple is exactly one cluster: both exact-ε pairs are
  // neighbors, and triples never bleed into each other.
  ASSERT_EQ(flat.clusters.size(), bases.size());
  for (const ObjectSet& c : flat.clusters) EXPECT_EQ(c.size(), 3u);
  for (size_t i = 0; i < flat.core.size(); ++i) {
    EXPECT_TRUE(flat.core[i]) << "object " << i << " must be core";
  }
}

TEST(EpsBoundaryTest, ExactEpsOnCellBordersAgreesAcrossBackends) {
  // Bases are multiples of ε, so the pair coordinates sit exactly on grid
  // cell borders. Triples are spaced far apart so they cannot merge.
  ExpectTriplesAgreeAcrossBackends({0.0, 5 * 18.0, 1048576.0});
}

TEST(EpsBoundaryTest, ExactEpsAtLargeMagnitudesAgreesAcrossBackends) {
  // Large-coordinate regime, where a naive floor(x/eps) bucketing once
  // risked splitting an exact-ε pair two cells apart. 6·2⁴⁰ has ulp 2⁻¹⁰
  // and 9·2⁴⁹ has ulp 1, so base+ε stays exactly representable and the
  // pair distance is exactly ε.
  ExpectTriplesAgreeAcrossBackends(
      {6.0 * 1099511627776.0 /* 2^40 */, 9.0 * 562949953421312.0 /* 2^49 */});
}

TEST(EpsBoundaryTest, ExactEpsPairsUnderStreamMotion) {
  // A pair oscillating across the exact-ε boundary while carried state is
  // live: the gap alternates ε (neighbors) and just-over-ε (noise), but
  // the motion stays under the stability slack, so the carried list is
  // reused and the exact filter alone must flip the result each snapshot.
  IncrementalClusteringGuard incremental_on(true);
  const double eps = 4.0;
  DbscanParams params;
  params.epsilon = eps;
  params.mu = 2;
  IncrementalClusterer clusterer(params);
  for (int t = 0; t < 10; ++t) {
    const double gap = (t % 2 == 0) ? eps : eps + 0.0625;
    Snapshot s = MakeSnapshot({{1, 0.0, 0.0}, {2, gap, 0.0}});
    Clustering got = clusterer.Cluster(s, nullptr, nullptr);
    ExpectSameClustering(Dbscan(s, params), got, static_cast<size_t>(t));
    if (t % 2 == 0) {
      EXPECT_EQ(got.clusters.size(), 1u) << "exact eps must be neighbors";
    } else {
      EXPECT_TRUE(got.clusters.empty());
    }
  }
}

// ---------------------------------------------------------------------------
// Discoverer-level: incremental mode vs full re-clustering, across kernel
// modes and thread counts, products must be identical.

/// Serialized state reduced to *products*: the clusterer's carried-state
/// section is dropped (it legitimately differs between modes) and the
/// mode-dependent stats fields — distance_ops, the cluster_* counters,
/// and the wall-clock fields — are zeroed.
std::string ProductState(const CompanionDiscoverer& d) {
  std::ostringstream raw;
  Status st = d.SaveState(raw);
  EXPECT_TRUE(st.ok()) << st.ToString();
  std::istringstream in(raw.str());
  std::ostringstream out;
  std::string line;
  uint64_t skip_anchor_lines = 0;
  while (std::getline(in, line)) {
    if (skip_anchor_lines > 0) {
      --skip_anchor_lines;
      continue;
    }
    if (line.rfind("clusterer ", 0) == 0) {
      std::istringstream fields(line);
      std::string tag;
      int has = 0;
      uint64_t count = 0;
      fields >> tag >> has >> count;
      skip_anchor_lines = count;
      continue;
    }
    if (line.rfind("stats ", 0) == 0) {
      std::istringstream fields(line);
      std::vector<std::string> tokens;
      std::string tok;
      while (fields >> tok) tokens.push_back(tok);
      // Layout: "stats" + 11 counters + reuse/dirty/rebuilds + 3 timings.
      EXPECT_EQ(tokens.size(), 18u);
      if (tokens.size() == 18u) {
        const size_t kModeDependent[] = {3, 12, 13, 14, 15, 16, 17};
        for (size_t i : kModeDependent) {
          tokens[i].assign(1, '0');  // `= "0"` trips GCC 12's -Wrestrict
        }
      }
      for (size_t i = 0; i < tokens.size(); ++i) {
        if (i > 0) out << ' ';
        out << tokens[i];
      }
      out << '\n';
      continue;
    }
    out << line << '\n';
  }
  return out.str();
}

std::string RunDiscovererProducts(Algorithm algorithm,
                                  const SnapshotStream& stream,
                                  const DiscoveryParams& params,
                                  bool incremental) {
  IncrementalClusteringGuard mode(incremental);
  std::unique_ptr<CompanionDiscoverer> d = MakeDiscoverer(algorithm, params);
  for (const Snapshot& s : stream) d->ProcessSnapshot(s, nullptr);
  return ProductState(*d);
}

class IncrementalDifferentialTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, bool, int>> {};

TEST_P(IncrementalDifferentialTest, DiscovererProductsIdenticalToFull) {
  const auto [seed, kernels, threads] = GetParam();
  KernelGuard kernel_mode(kernels);
  DiscoveryParams params = BaseParams();
  params.cluster.threads = threads;
  // Both stream regimes: churny exercises the fallback path, coherent the
  // carried-state path.
  const SnapshotStream streams[] = {ChurnyStream(seed).stream,
                                    CoherentStream(seed + 5).stream};
  for (const SnapshotStream& stream : streams) {
    for (Algorithm algorithm :
         {Algorithm::kClusteringIntersection, Algorithm::kSmartClosed,
          Algorithm::kBuddy}) {
      std::string incremental =
          RunDiscovererProducts(algorithm, stream, params, true);
      std::string full =
          RunDiscovererProducts(algorithm, stream, params, false);
      EXPECT_EQ(incremental, full)
          << AlgorithmName(algorithm) << " kernels=" << kernels
          << " threads=" << threads;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Modes, IncrementalDifferentialTest,
    ::testing::Combine(::testing::Values(711, 712),
                       ::testing::Bool(),          // bitset kernels
                       ::testing::Values(1, 4)));  // clustering threads

TEST(IncrementalDifferentialTest, ConvoyBaselineIdenticalToFull) {
  GroupDataset data = CoherentStream(713);
  ConvoyParams params;
  params.cluster.epsilon = 18.0;
  params.cluster.mu = 3;
  params.min_objects = 5;
  params.min_lifetime = 7;

  std::vector<Convoy> incremental;
  std::vector<Convoy> full;
  {
    IncrementalClusteringGuard mode(true);
    incremental = DiscoverConvoys(data.stream, params);
  }
  {
    IncrementalClusteringGuard mode(false);
    full = DiscoverConvoys(data.stream, params);
  }
  EXPECT_FALSE(full.empty()) << "test stream should contain convoys";
  ASSERT_EQ(incremental.size(), full.size());
  for (size_t i = 0; i < full.size(); ++i) {
    EXPECT_EQ(incremental[i].objects, full[i].objects) << "convoy " << i;
    EXPECT_EQ(incremental[i].begin, full[i].begin) << "convoy " << i;
    EXPECT_EQ(incremental[i].end, full[i].end) << "convoy " << i;
  }
}

// ---------------------------------------------------------------------------
// Mid-stream checkpoint kill+resume with carried clusterer state.

/// Full serialized state with only the three wall-clock fields zeroed:
/// unlike ProductState this *keeps* distance_ops, the cluster counters,
/// and the carried anchors — a resumed run must replay bit-for-bit.
std::string ReplayState(const CompanionDiscoverer& d) {
  std::ostringstream raw;
  Status st = d.SaveState(raw);
  EXPECT_TRUE(st.ok()) << st.ToString();
  std::istringstream in(raw.str());
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("stats ", 0) == 0) {
      std::istringstream fields(line);
      std::vector<std::string> tokens;
      std::string tok;
      while (fields >> tok) tokens.push_back(tok);
      EXPECT_GE(tokens.size(), 4u);
      for (size_t i = tokens.size() - 3; i < tokens.size(); ++i) {
        tokens[i].assign(1, '0');
      }
      for (size_t i = 0; i < tokens.size(); ++i) {
        if (i > 0) out << ' ';
        out << tokens[i];
      }
      out << '\n';
    } else {
      out << line << '\n';
    }
  }
  return out.str();
}

TEST(IncrementalCheckpointTest, MidStreamKillResumeReplaysExactly) {
  IncrementalClusteringGuard incremental_on(true);
  GroupDataset data = CoherentStream(721);
  DiscoveryParams params = BaseParams();

  for (Algorithm algorithm :
       {Algorithm::kClusteringIntersection, Algorithm::kSmartClosed}) {
    std::unique_ptr<CompanionDiscoverer> first =
        MakeDiscoverer(algorithm, params);
    const size_t half = data.stream.size() / 2;
    for (size_t t = 0; t < half; ++t) {
      first->ProcessSnapshot(data.stream[t], nullptr);
    }
    // Default-precision stream on purpose: anchors must survive the round
    // trip bit-exactly without the caller opting into setprecision(17).
    std::stringstream checkpoint;
    ASSERT_TRUE(first->SaveState(checkpoint).ok());
    for (size_t t = half; t < data.stream.size(); ++t) {
      first->ProcessSnapshot(data.stream[t], nullptr);
    }

    std::unique_ptr<CompanionDiscoverer> resumed =
        MakeDiscoverer(algorithm, params);
    ASSERT_TRUE(resumed->LoadState(checkpoint).ok());
    for (size_t t = half; t < data.stream.size(); ++t) {
      resumed->ProcessSnapshot(data.stream[t], nullptr);
    }

    // Not just same products: same distance_ops, same reuse/dirty
    // counters, same carried anchors — the resumed run is byte-for-byte
    // the run that never stopped.
    EXPECT_EQ(ReplayState(*first), ReplayState(*resumed))
        << AlgorithmName(algorithm);
    EXPECT_GT(first->stats().cluster_reuse, 0)
        << "stream should exercise carried state, not just fallbacks";
  }
}

TEST(IncrementalCheckpointTest, LoadHonorsCurrentKillSwitchMode) {
  // Saved with the layer on, resumed with it off: the carried state must
  // be dropped, exactly as an uninterrupted run toggled at the same point
  // would have dropped it — and the post-resume runs must match.
  GroupDataset data = CoherentStream(722);
  DiscoveryParams params = BaseParams();
  const size_t half = data.stream.size() / 2;

  IncrementalClusteringGuard outer(true);
  std::unique_ptr<CompanionDiscoverer> saver =
      MakeDiscoverer(Algorithm::kSmartClosed, params);
  for (size_t t = 0; t < half; ++t) {
    saver->ProcessSnapshot(data.stream[t], nullptr);
  }
  std::stringstream checkpoint;
  ASSERT_TRUE(saver->SaveState(checkpoint).ok());

  // Uninterrupted twin: layer switched off at the half-way point.
  SetIncrementalClusteringEnabled(false);
  for (size_t t = half; t < data.stream.size(); ++t) {
    saver->ProcessSnapshot(data.stream[t], nullptr);
  }

  // Killed-and-resumed twin, also with the layer off from the half.
  std::unique_ptr<CompanionDiscoverer> resumed =
      MakeDiscoverer(Algorithm::kSmartClosed, params);
  ASSERT_TRUE(resumed->LoadState(checkpoint).ok());
  for (size_t t = half; t < data.stream.size(); ++t) {
    resumed->ProcessSnapshot(data.stream[t], nullptr);
  }
  EXPECT_EQ(ReplayState(*saver), ReplayState(*resumed));
}

TEST(IncrementalCheckpointTest, RejectsCorruptClustererState) {
  IncrementalClusteringGuard incremental_on(true);
  DiscoveryParams params = BaseParams();
  GroupDataset data = CoherentStream(723);
  ClusteringIntersectionDiscoverer d(params);
  for (size_t t = 0; t < 4; ++t) d.ProcessSnapshot(data.stream[t], nullptr);
  std::ostringstream saved;
  ASSERT_TRUE(d.SaveState(saved).ok());
  const std::string good = saved.str();
  ASSERT_NE(good.find("clusterer 1 "), std::string::npos);

  const std::string bad_cases[] = {
      // Section tag destroyed.
      [&] {
        std::string s = good;
        s.replace(s.find("clusterer"), 9, "clustererX");
        return s;
      }(),
      // Implausible anchor count (and truncated records).
      [&] {
        size_t at = good.find("clusterer 1 ");
        return good.substr(0, at) + "clusterer 1 999999999\n";
      }(),
      // Anchor coordinate that is not a parsable hex float.
      [&] {
        std::string s = good;
        size_t at = s.find("0x", s.find("clusterer 1 "));
        s.replace(at, 2, "zz");
        return s;
      }(),
  };
  for (const std::string& bad : bad_cases) {
    ClusteringIntersectionDiscoverer fresh(params);
    std::istringstream in(bad);
    Status st = fresh.LoadState(in);
    EXPECT_FALSE(st.ok()) << "corrupt state must be rejected";
  }
}

}  // namespace
}  // namespace tcomp
