#include "baselines/convoy.h"

#include <gtest/gtest.h>

#include <set>

#include "baselines/swarm.h"
#include "core/discoverer.h"
#include "data/group_model.h"
#include "tests/test_util.h"

namespace tcomp {
namespace {

using testing_util::MakeSnapshot;

Snapshot TwoGroups(bool b_together) {
  std::vector<std::tuple<ObjectId, double, double>> items;
  for (ObjectId o = 0; o < 3; ++o) items.push_back({o, o * 0.4, 0.0});
  for (ObjectId o = 5; o < 8; ++o) {
    double x = b_together ? (o - 5) * 0.4 : (o - 5) * 50.0;
    items.push_back({o, 10.0 + x, 10.0});
  }
  return MakeSnapshot(items);
}

ConvoyParams SmallParams() {
  ConvoyParams p;
  p.cluster.epsilon = 0.5;
  p.cluster.mu = 2;
  p.min_objects = 3;
  p.min_lifetime = 4;
  return p;
}

TEST(ConvoyTest, FindsConvoyWithExactLifetime) {
  SnapshotStream stream;
  for (int t = 0; t < 6; ++t) stream.push_back(TwoGroups(true));
  std::vector<Convoy> convoys = DiscoverConvoys(stream, SmallParams());
  ASSERT_EQ(convoys.size(), 2u);
  EXPECT_EQ(convoys[0].objects, (ObjectSet{0, 1, 2}));
  EXPECT_EQ(convoys[0].begin, 0);
  EXPECT_EQ(convoys[0].end, 5);
  EXPECT_EQ(convoys[1].objects, (ObjectSet{5, 6, 7}));
  EXPECT_EQ(convoys[1].lifetime(), 6);
}

TEST(ConvoyTest, GapBreaksConvoyButNotSwarm) {
  // Group B together 3 snapshots, apart 1, together 3: too short for a
  // convoy with k=4 (consecutive!) but a valid swarm with mint=4.
  SnapshotStream stream;
  for (int t = 0; t < 3; ++t) stream.push_back(TwoGroups(true));
  stream.push_back(TwoGroups(false));
  for (int t = 0; t < 3; ++t) stream.push_back(TwoGroups(true));

  std::vector<Convoy> convoys = DiscoverConvoys(stream, SmallParams());
  std::set<ObjectSet> convoy_sets;
  for (const Convoy& c : convoys) convoy_sets.insert(c.objects);
  EXPECT_TRUE(convoy_sets.count({0, 1, 2}));   // A unaffected (7 long)
  EXPECT_FALSE(convoy_sets.count({5, 6, 7}));  // B's runs are 3 and 3

  SwarmParams sp;
  sp.cluster = SmallParams().cluster;
  sp.min_objects = 3;
  sp.min_snapshots = 4;
  std::vector<Swarm> swarms = MineClosedSwarms(stream, sp);
  std::set<ObjectSet> swarm_sets;
  for (const Swarm& s : swarms) swarm_sets.insert(s.objects);
  EXPECT_TRUE(swarm_sets.count({5, 6, 7}))
      << "swarms accept non-consecutive support";
}

TEST(ConvoyTest, ShrinkingGroupYieldsNestedIntervals) {
  // Objects {0,1,2,3} together for 4 snapshots; object 3 leaves; {0,1,2}
  // continue for 4 more. Expect convoy {0,1,2,3}@[0,3] and the longer
  // {0,1,2}@[0,7].
  SnapshotStream stream;
  for (int t = 0; t < 8; ++t) {
    std::vector<std::tuple<ObjectId, double, double>> items;
    for (ObjectId o = 0; o < 3; ++o) items.push_back({o, o * 0.4, 0.0});
    items.push_back({3, t < 4 ? 1.2 : 80.0, 0.0});
    stream.push_back(MakeSnapshot(items));
  }
  ConvoyParams p = SmallParams();
  std::vector<Convoy> convoys = DiscoverConvoys(stream, p);
  ASSERT_EQ(convoys.size(), 2u);
  // Sorted by (begin, end): the short wide convoy precedes the long one.
  EXPECT_EQ(convoys[0].objects, (ObjectSet{0, 1, 2, 3}));
  EXPECT_EQ(convoys[0].begin, 0);
  EXPECT_EQ(convoys[0].end, 3);
  EXPECT_EQ(convoys[1].objects, (ObjectSet{0, 1, 2}));
  EXPECT_EQ(convoys[1].begin, 0);
  EXPECT_EQ(convoys[1].end, 7);
}

TEST(ConvoyTest, MaximalityFiltersDominatedResults) {
  SnapshotStream stream;
  for (int t = 0; t < 10; ++t) stream.push_back(TwoGroups(true));
  std::vector<Convoy> convoys = DiscoverConvoys(stream, SmallParams());
  // No convoy may be dominated by another (subset objects + covered
  // interval).
  for (size_t i = 0; i < convoys.size(); ++i) {
    for (size_t j = 0; j < convoys.size(); ++j) {
      if (i == j) continue;
      bool subset = std::includes(convoys[j].objects.begin(),
                                  convoys[j].objects.end(),
                                  convoys[i].objects.begin(),
                                  convoys[i].objects.end());
      bool covered = convoys[j].begin <= convoys[i].begin &&
                     convoys[i].end <= convoys[j].end;
      EXPECT_FALSE(subset && covered)
          << "convoy " << i << " dominated by " << j;
    }
  }
}

TEST(ConvoyTest, LifetimeThresholdRespected) {
  SnapshotStream stream;
  for (int t = 0; t < 3; ++t) stream.push_back(TwoGroups(true));
  ConvoyParams p = SmallParams();  // k = 4 > stream length
  EXPECT_TRUE(DiscoverConvoys(stream, p).empty());
  p.min_lifetime = 3;
  EXPECT_EQ(DiscoverConvoys(stream, p).size(), 2u);
}

TEST(ConvoyTest, CompanionsCoveredByConvoys) {
  // Every streaming companion corresponds to a convoy with lifetime ≥ δt
  // under equal thresholds (companions are the streaming view of the
  // same consecutive-time concept).
  GroupModelOptions options;
  options.num_objects = 80;
  options.num_snapshots = 25;
  options.area_size = 1400.0;
  options.min_group_size = 6;
  options.max_group_size = 12;
  options.seed = 41;
  GroupDataset data = GenerateGroupStream(options);

  DiscoveryParams dp;
  dp.cluster.epsilon = 20.0;
  dp.cluster.mu = 3;
  dp.size_threshold = 5;
  dp.duration_threshold = 6;
  auto sc = MakeDiscoverer(Algorithm::kSmartClosed, dp);
  for (const Snapshot& s : data.stream) sc->ProcessSnapshot(s, nullptr);

  ConvoyParams cp;
  cp.cluster = dp.cluster;
  cp.min_objects = dp.size_threshold;
  cp.min_lifetime = static_cast<int>(dp.duration_threshold);
  std::vector<Convoy> convoys = DiscoverConvoys(data.stream, cp);

  for (const Companion& c : sc->log().companions()) {
    bool covered = false;
    for (const Convoy& v : convoys) {
      if (std::includes(v.objects.begin(), v.objects.end(),
                        c.objects.begin(), c.objects.end())) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "companion of size " << c.objects.size()
                         << " not covered by any convoy";
  }
}

TEST(ConvoyTest, StatsAndEmptyStream) {
  EXPECT_TRUE(DiscoverConvoys({}, SmallParams()).empty());
  SnapshotStream stream;
  for (int t = 0; t < 5; ++t) stream.push_back(TwoGroups(true));
  ConvoyStats stats;
  DiscoverConvoys(stream, SmallParams(), &stats);
  EXPECT_GT(stats.distance_ops, 0);
  EXPECT_GT(stats.intersections, 0);
  EXPECT_GT(stats.peak_candidates, 0);
}

}  // namespace
}  // namespace tcomp
