// Unit tests for util/flags.h: FlagParser parse-shape edge cases and the
// strict numeric getters. The CLI's "a typo never silently runs with a
// default" contract rests on these paths.

#include "util/flags.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace tcomp {
namespace {

FlagParser Parse(const std::vector<const char*>& args) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  FlagParser flags;
  Status s = flags.Parse(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(s.ok()) << s.ToString();
  return flags;
}

TEST(FlagParserTest, EqualsAndSpaceFormsAgree) {
  FlagParser a = Parse({"--epsilon=24.5"});
  FlagParser b = Parse({"--epsilon", "24.5"});
  EXPECT_EQ(a.GetDouble("epsilon", 0.0), 24.5);
  EXPECT_EQ(b.GetDouble("epsilon", 0.0), 24.5);
}

TEST(FlagParserTest, BareFlagIsBooleanTrue) {
  FlagParser flags = Parse({"--quiet"});
  EXPECT_TRUE(flags.GetBool("quiet", false));
}

TEST(FlagParserTest, FlagFollowedByFlagIsBoolean) {
  // `--timeline --quiet`: --timeline must not consume "--quiet" as its
  // value.
  FlagParser flags = Parse({"--timeline", "--quiet"});
  EXPECT_TRUE(flags.GetBool("timeline", false));
  EXPECT_TRUE(flags.GetBool("quiet", false));
}

TEST(FlagParserTest, NegativeNumberIsAValueNotAFlag) {
  // "-5" does not start with "--", so it is consumed as the value.
  FlagParser flags = Parse({"--offset", "-5"});
  EXPECT_EQ(flags.GetInt("offset", 0), -5);
}

TEST(FlagParserTest, PositionalArgumentsCollected) {
  // Note: a space-form flag greedily consumes the next non-`--` token, so
  // the `=` form is required for a flag to precede a positional.
  FlagParser flags = Parse({"input.csv", "--quiet=1", "more.csv"});
  ASSERT_EQ(flags.positional().size(), 2u);
  EXPECT_EQ(flags.positional()[0], "input.csv");
  EXPECT_EQ(flags.positional()[1], "more.csv");
}

TEST(FlagParserTest, SpaceFormFlagConsumesFollowingToken) {
  // Documented greedy consumption: `--quiet more.csv` makes "more.csv"
  // the *value* of --quiet, not a positional.
  FlagParser flags = Parse({"--quiet", "more.csv"});
  EXPECT_EQ(flags.GetString("quiet", ""), "more.csv");
  EXPECT_TRUE(flags.positional().empty());
}

TEST(FlagParserTest, BareDoubleDashIsAnError) {
  const char* argv[] = {"prog", "--"};
  FlagParser flags;
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

TEST(FlagParserTest, EmptyFlagNameIsAnError) {
  const char* argv[] = {"prog", "--=value"};
  FlagParser flags;
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

TEST(FlagParserTest, EmptyValueViaEqualsIsKept) {
  FlagParser flags = Parse({"--out="});
  EXPECT_TRUE(flags.Has("out"));
  EXPECT_EQ(flags.GetString("out", "default"), "");
}

TEST(FlagParserTest, LastOccurrenceWins) {
  FlagParser flags = Parse({"--mu=3", "--mu=7"});
  EXPECT_EQ(flags.GetInt("mu", 0), 7);
}

TEST(FlagParserTest, NamesAreSortedForUnknownFlagRejection) {
  FlagParser flags = Parse({"--zeta=1", "--alpha=2"});
  EXPECT_EQ(flags.names(), (std::vector<std::string>{"alpha", "zeta"}));
}

// ---- strict parsing -------------------------------------------------------

TEST(ParseTextTest, Int64AcceptsExactIntegers) {
  EXPECT_EQ(ParseInt64Text("42").value(), 42);
  EXPECT_EQ(ParseInt64Text("-7").value(), -7);
  EXPECT_EQ(ParseInt64Text("  19 ").value(), 19);   // surrounding space
  EXPECT_EQ(ParseInt64Text("21\r").value(), 21);    // Windows line tail
}

TEST(ParseTextTest, Int64RejectsGarbageAndPrefixes) {
  EXPECT_FALSE(ParseInt64Text("").ok());
  EXPECT_FALSE(ParseInt64Text("abc").ok());
  EXPECT_FALSE(ParseInt64Text("12abc").ok());  // atoi would yield 12
  EXPECT_FALSE(ParseInt64Text("1.5").ok());
  EXPECT_FALSE(ParseInt64Text("1 2").ok());
}

TEST(ParseTextTest, Int64RejectsOverflow) {
  EXPECT_FALSE(ParseInt64Text("9223372036854775808").ok());   // 2^63
  EXPECT_FALSE(ParseInt64Text("-9223372036854775809").ok());
  EXPECT_EQ(ParseInt64Text("9223372036854775807").value(),
            INT64_MAX);
}

TEST(ParseTextTest, DoubleAcceptsUsualForms) {
  EXPECT_EQ(ParseDoubleText("24.5").value(), 24.5);
  EXPECT_EQ(ParseDoubleText("-1e3").value(), -1000.0);
  EXPECT_EQ(ParseDoubleText(" 0.25\t").value(), 0.25);
}

TEST(ParseTextTest, DoubleRejectsGarbageAndPrefixes) {
  EXPECT_FALSE(ParseDoubleText("").ok());
  EXPECT_FALSE(ParseDoubleText("x").ok());
  EXPECT_FALSE(ParseDoubleText("1.2.3").ok());  // strtod stops at "1.2"
  EXPECT_FALSE(ParseDoubleText("24,5").ok());
}

TEST(ParseTextTest, BoolAcceptsCanonicalTokens) {
  EXPECT_TRUE(ParseBoolText("true").value());
  EXPECT_TRUE(ParseBoolText("1").value());
  EXPECT_TRUE(ParseBoolText("yes").value());
  EXPECT_TRUE(ParseBoolText("on").value());
  EXPECT_FALSE(ParseBoolText("false").value());
  EXPECT_FALSE(ParseBoolText("0").value());
  EXPECT_FALSE(ParseBoolText("no").value());
  EXPECT_FALSE(ParseBoolText("off").value());
  EXPECT_FALSE(ParseBoolText("maybe").ok());
  EXPECT_FALSE(ParseBoolText("TRUE").ok());  // case-sensitive by design
}

TEST(FlagParserStrictTest, AbsentFlagYieldsDefault) {
  FlagParser flags = Parse({});
  int mu = -1;
  ASSERT_TRUE(flags.GetStrict("mu", 4, &mu).ok());
  EXPECT_EQ(mu, 4);
}

TEST(FlagParserStrictTest, MalformedValueNamesTheFlag) {
  FlagParser flags = Parse({"--mu", "abc"});
  int mu = -1;
  Status s = flags.GetStrict("mu", 4, &mu);
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("--mu"), std::string::npos) << s.ToString();
  EXPECT_EQ(mu, 4);  // out still holds the default on error
}

TEST(FlagParserStrictTest, IntRangeIsChecked) {
  FlagParser flags = Parse({"--n", "3000000000"});  // > INT_MAX
  int n = 0;
  Status s = flags.GetStrict("n", 1, &n);
  EXPECT_EQ(s.code(), StatusCode::kOutOfRange);
  int64_t wide = 0;
  ASSERT_TRUE(flags.GetStrict("n", int64_t{1}, &wide).ok());
  EXPECT_EQ(wide, 3000000000LL);
}

TEST(FlagParserStrictTest, StrictBoolRejectsJunk) {
  FlagParser flags = Parse({"--flush=perhaps"});
  bool flush = false;
  EXPECT_FALSE(flags.GetStrict("flush", false, &flush).ok());
}

TEST(FlagParserLenientTest, LenientGettersFallBackOnMalformed) {
  // The two-argument getters are documented lenient: used by benches where
  // a bad value should not abort a sweep. Malformed → default, never a
  // best-effort prefix parse.
  FlagParser flags = Parse({"--objects", "12abc"});
  EXPECT_EQ(flags.GetInt("objects", 1000), 1000);
  EXPECT_EQ(flags.GetInt64("objects", int64_t{9}), 9);
  EXPECT_EQ(flags.GetDouble("objects", 2.5), 2.5);
}

}  // namespace
}  // namespace tcomp
