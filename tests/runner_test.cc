#include "eval/runner.h"

#include <gtest/gtest.h>

#include "data/synthetic_gen.h"
#include "tests/test_util.h"
#include "util/logging.h"

namespace tcomp {
namespace {

TEST(RunnerTest, StreamingResultShape) {
  Dataset d = MakeMilitaryD2(/*num_snapshots=*/25);
  RunResult r = RunStreamingAlgorithm(Algorithm::kBuddy,
                                      d.default_params, d.stream);
  EXPECT_EQ(r.algorithm, "BU");
  EXPECT_GT(r.wall_seconds, 0.0);
  EXPECT_GT(r.space_cost, 0);
  EXPECT_EQ(r.stats.snapshots, 25);
  for (const ObjectSet& c : r.companions) {
    EXPECT_GE(c.size(),
              static_cast<size_t>(d.default_params.size_threshold));
  }
}

TEST(RunnerTest, SwarmBaselineResultShape) {
  Dataset d = MakeMilitaryD2(/*num_snapshots=*/25);
  RunResult r =
      RunSwarmBaseline(SwarmParamsFrom(d.default_params), d.stream);
  EXPECT_EQ(r.algorithm, "SW");
  EXPECT_GT(r.space_cost, 0);
  EXPECT_FALSE(r.companions.empty());
}

TEST(RunnerTest, TraClusBaselineResultShape) {
  Dataset d = MakeMilitaryD2(/*num_snapshots=*/25);
  RunResult r =
      RunTraClusBaseline(TraClusParamsFrom(d.default_params), d.stream);
  EXPECT_EQ(r.algorithm, "TC");
  EXPECT_EQ(r.space_cost, 0);  // TC stores no candidates (paper V-B)
  // TC clusters whole marching columns: object groups exist even though
  // they do not match companion semantics.
  EXPECT_FALSE(r.companions.empty());
}

TEST(RunnerTest, ParamDerivations) {
  DiscoveryParams p;
  p.cluster.epsilon = 10.0;
  p.cluster.mu = 5;
  p.size_threshold = 8;
  p.duration_threshold = 12.0;
  SwarmParams sp = SwarmParamsFrom(p);
  EXPECT_EQ(sp.min_objects, 8);
  EXPECT_EQ(sp.min_snapshots, 12);
  EXPECT_DOUBLE_EQ(sp.cluster.epsilon, 10.0);
  TraClusParams tp = TraClusParamsFrom(p);
  EXPECT_DOUBLE_EQ(tp.epsilon, 20.0);
  EXPECT_EQ(tp.min_lines, 5);
  EXPECT_GT(tp.max_segment_length, tp.epsilon);
}

TEST(LoggingTest, SeverityFilter) {
  using internal::LogSeverity;
  internal::LogSeverity before = internal::MinLogSeverity();
  internal::SetMinLogSeverity(LogSeverity::kError);
  EXPECT_EQ(internal::MinLogSeverity(), LogSeverity::kError);
  // INFO below threshold — must not crash, just be swallowed.
  TCOMP_LOG(INFO) << "suppressed";
  TCOMP_LOG(ERROR) << "visible (stderr)";
  internal::SetMinLogSeverity(before);
}

TEST(LoggingTest, ChecksPassOnTrueConditions) {
  TCOMP_CHECK(true) << "never printed";
  TCOMP_CHECK_EQ(2 + 2, 4);
  TCOMP_CHECK_LT(1, 2);
  TCOMP_CHECK_GE(2, 2);
  TCOMP_DCHECK(true);
}

TEST(LoggingDeathTest, CheckFailureAborts) {
  EXPECT_DEATH({ TCOMP_CHECK(false) << "boom"; }, "Check failed");
  EXPECT_DEATH({ TCOMP_CHECK_EQ(1, 2); }, "Check failed");
}

}  // namespace
}  // namespace tcomp
