#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "data/group_model.h"
#include "data/trajectory_io.h"
#include "eval/export.h"
#include "service/binary_protocol.h"
#include "service/connection.h"
#include "service/pipeline.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/socket.h"

namespace tcomp {
namespace {

// ---------------------------------------------------------------------
// LineFramer: byte-stream framing with a hard line cap.

TEST(LineFramerTest, SplitsLinesAcrossFeeds) {
  LineFramer framer;
  std::string line;
  framer.Feed("FLU", 3);
  EXPECT_EQ(framer.Next(&line), LineFramer::Result::kNeedMore);
  EXPECT_TRUE(framer.HasPartial());
  framer.Feed("SH\nQUERY stats\n", 15);
  ASSERT_EQ(framer.Next(&line), LineFramer::Result::kLine);
  EXPECT_EQ(line, "FLUSH");
  ASSERT_EQ(framer.Next(&line), LineFramer::Result::kLine);
  EXPECT_EQ(line, "QUERY stats");
  EXPECT_EQ(framer.Next(&line), LineFramer::Result::kNeedMore);
  EXPECT_FALSE(framer.HasPartial());
}

TEST(LineFramerTest, StripsCarriageReturn) {
  LineFramer framer;
  framer.Feed("SHUTDOWN\r\n", 10);
  std::string line;
  ASSERT_EQ(framer.Next(&line), LineFramer::Result::kLine);
  EXPECT_EQ(line, "SHUTDOWN");
}

TEST(LineFramerTest, OversizedLineIsDiscardedOnceAndFramingRecovers) {
  LineFramer framer(16);
  std::string big(100, 'x');
  big += "\nFLUSH\n";
  framer.Feed(big.data(), big.size());
  std::string line;
  ASSERT_EQ(framer.Next(&line), LineFramer::Result::kOversize);
  ASSERT_EQ(framer.Next(&line), LineFramer::Result::kLine);
  EXPECT_EQ(line, "FLUSH");
}

TEST(LineFramerTest, OversizedLineAcrossManyFeedsReportsOnce) {
  LineFramer framer(16);
  std::string chunk(32, 'y');
  framer.Feed(chunk.data(), chunk.size());
  std::string line;
  ASSERT_EQ(framer.Next(&line), LineFramer::Result::kOversize);
  // The line keeps streaming in: stay quiet (one error per line) and keep
  // memory bounded.
  for (int i = 0; i < 1000; ++i) {
    framer.Feed(chunk.data(), chunk.size());
    EXPECT_EQ(framer.Next(&line), LineFramer::Result::kNeedMore);
  }
  framer.Feed("\nFLUSH\n", 7);
  ASSERT_EQ(framer.Next(&line), LineFramer::Result::kLine);
  EXPECT_EQ(line, "FLUSH");
}

TEST(LineFramerTest, MidLineEndOfStreamIsDetectable) {
  LineFramer framer;
  framer.Feed("INGEST 1 2", 10);  // peer vanished mid-line
  std::string line;
  EXPECT_EQ(framer.Next(&line), LineFramer::Result::kNeedMore);
  EXPECT_TRUE(framer.HasPartial());
}

// ---------------------------------------------------------------------
// ParseRequest: every malformed frame is an error, never a crash.

TEST(ParseRequestTest, ParsesValidRequests) {
  Request r;
  ASSERT_TRUE(ParseRequest("INGEST 7 120.5 3.25 -4.5", &r).ok());
  EXPECT_EQ(r.type, Request::Type::kIngest);
  EXPECT_EQ(r.record.object, 7u);
  EXPECT_EQ(r.record.timestamp, 120.5);
  EXPECT_EQ(r.record.pos.x, 3.25);
  EXPECT_EQ(r.record.pos.y, -4.5);

  ASSERT_TRUE(ParseRequest("QUERY companions", &r).ok());
  EXPECT_EQ(r.type, Request::Type::kQuery);
  EXPECT_EQ(r.query, Request::QueryKind::kCompanions);
  ASSERT_TRUE(ParseRequest("QUERY buddies", &r).ok());
  EXPECT_EQ(r.query, Request::QueryKind::kBuddies);
  ASSERT_TRUE(ParseRequest("FLUSH", &r).ok());
  EXPECT_EQ(r.type, Request::Type::kFlush);
  ASSERT_TRUE(ParseRequest("SHUTDOWN", &r).ok());
  EXPECT_EQ(r.type, Request::Type::kShutdown);
}

TEST(ParseRequestTest, RejectsMalformedFrames) {
  Request r;
  // Truncated / overlong INGEST records.
  EXPECT_FALSE(ParseRequest("INGEST", &r).ok());
  EXPECT_FALSE(ParseRequest("INGEST 1 2.0 3.0", &r).ok());
  EXPECT_FALSE(ParseRequest("INGEST 1 2.0 3.0 4.0 5.0", &r).ok());
  // Non-numeric and non-finite fields.
  EXPECT_FALSE(ParseRequest("INGEST x 2.0 3.0 4.0", &r).ok());
  EXPECT_FALSE(ParseRequest("INGEST -1 2.0 3.0 4.0", &r).ok());
  EXPECT_FALSE(ParseRequest("INGEST 1 nan 3.0 4.0", &r).ok());
  EXPECT_FALSE(ParseRequest("INGEST 1 2.0 inf 4.0", &r).ok());
  EXPECT_FALSE(ParseRequest("INGEST 99999999999 2.0 3.0 4.0", &r).ok());
  // Unknown verbs and queries, wrong arity.
  EXPECT_FALSE(ParseRequest("", &r).ok());
  EXPECT_FALSE(ParseRequest("   ", &r).ok());
  EXPECT_FALSE(ParseRequest("BOGUS", &r).ok());
  EXPECT_FALSE(ParseRequest("QUERY", &r).ok());
  EXPECT_FALSE(ParseRequest("QUERY everything", &r).ok());
  EXPECT_FALSE(ParseRequest("FLUSH now", &r).ok());
  EXPECT_FALSE(ParseRequest("SHUTDOWN please", &r).ok());
  EXPECT_FALSE(ParseRequest("ingest 1 2 3 4", &r).ok());  // case matters
}

TEST(ParseRequestTest, RejectsNonAsciiBytes) {
  Request r;
  // Invalid UTF-8 (lone continuation / overlong lead) and valid UTF-8
  // multibyte are all equally non-protocol.
  EXPECT_FALSE(ParseRequest("INGEST 1 2 3 \xff", &r).ok());
  EXPECT_FALSE(ParseRequest("INGEST 1 2 3 \xc3\xa9", &r).ok());
  EXPECT_FALSE(ParseRequest(std::string("FLUSH\0", 6), &r).ok());
  EXPECT_FALSE(ParseRequest("QUERY \x1b[31mstats", &r).ok());
}

// ---------------------------------------------------------------------
// ProtocolSession: request/response behaviour against a live pipeline.

ServicePipelineOptions SmallPipelineOptions() {
  ServicePipelineOptions opts;
  opts.algorithm = Algorithm::kBuddy;
  opts.params.cluster.epsilon = 18.0;
  opts.params.cluster.mu = 2;
  opts.params.size_threshold = 3;
  opts.params.duration_threshold = 2;
  opts.window.window_length = 60.0;
  return opts;
}

/// Records for a tight 4-object group crossing three snapshots.
std::vector<std::string> GroupIngestLines() {
  std::vector<std::string> lines;
  for (int snap = 0; snap < 3; ++snap) {
    for (int obj = 0; obj < 4; ++obj) {
      std::ostringstream line;
      line << "INGEST " << obj << ' ' << snap * 60.0 << ' '
           << 100.0 + snap * 25.0 + obj << ' ' << 200.0 + obj;
      lines.push_back(line.str());
    }
  }
  return lines;
}

TEST(ProtocolSessionTest, IngestFlushQueryRoundTrip) {
  ServicePipeline pipeline(SmallPipelineOptions());
  ASSERT_TRUE(pipeline.Start().ok());
  ProtocolSession session(&pipeline);
  bool shutdown = false;

  for (const std::string& line : GroupIngestLines()) {
    EXPECT_EQ(session.HandleLine(line, &shutdown), "OK\n");
  }
  EXPECT_EQ(session.HandleLine("FLUSH", &shutdown), "OK flushed\n");

  std::string response = session.HandleLine("QUERY companions", &shutdown);
  // Payload is the batch CSV byte for byte, wrapped in OK <n> ... `.`.
  std::ostringstream expected;
  expected << "OK " << pipeline.Companions().size() << "\n";
  WriteCompanionsCsv(pipeline.Companions(), expected);
  expected << ".\n";
  EXPECT_EQ(response, expected.str());
  EXPECT_GE(pipeline.Companions().size(), 1u);

  std::string stats = session.HandleLine("QUERY stats", &shutdown);
  EXPECT_EQ(stats.rfind("OK ", 0), 0u);
  EXPECT_NE(stats.find("records_ingested=12\n"), std::string::npos);
  EXPECT_NE(stats.find("snapshots=3\n"), std::string::npos);
  EXPECT_TRUE(stats.size() >= 2 &&
              stats.compare(stats.size() - 2, 2, ".\n") == 0);

  std::string buddies = session.HandleLine("QUERY buddies", &shutdown);
  EXPECT_EQ(buddies.rfind("OK ", 0), 0u);
  EXPECT_NE(buddies.find("buddies_total="), std::string::npos);

  EXPECT_FALSE(shutdown);
  EXPECT_EQ(session.parse_errors(), 0);
  EXPECT_TRUE(pipeline.Stop().ok());
}

/// Strips the value (everything after the last space) from a metric
/// line, keeping the name+labels part that must be run-invariant.
std::string NameAndLabels(const std::string& line) {
  size_t space = line.rfind(' ');
  return space == std::string::npos ? line : line.substr(0, space);
}

std::vector<std::string> MetricNameSequence(const std::string& payload) {
  std::vector<std::string> names;
  std::istringstream in(payload);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line == ".") continue;
    if (line.rfind("OK ", 0) == 0) continue;
    if (line.rfind("# HELP", 0) == 0 || line.rfind("# TYPE", 0) == 0) {
      names.push_back(line);  // comment lines carry no values
      continue;
    }
    names.push_back(NameAndLabels(line));
  }
  return names;
}

TEST(ProtocolSessionTest, QueryMetricsReturnsFramedExposition) {
  ServicePipeline pipeline(SmallPipelineOptions());
  ASSERT_TRUE(pipeline.Start().ok());
  ProtocolSession session(&pipeline);
  bool shutdown = false;
  for (const std::string& line : GroupIngestLines()) {
    ASSERT_EQ(session.HandleLine(line, &shutdown), "OK\n");
  }
  ASSERT_EQ(session.HandleLine("FLUSH", &shutdown), "OK flushed\n");

  std::string response = session.HandleLine("QUERY metrics", &shutdown);
  ASSERT_EQ(response.rfind("OK ", 0), 0u);
  ASSERT_TRUE(response.size() >= 2 &&
              response.compare(response.size() - 2, 2, ".\n") == 0);
  // The line count in the OK header matches the payload exactly.
  size_t header_end = response.find('\n');
  long long advertised = std::stoll(response.substr(3, header_end - 3));
  std::string payload =
      response.substr(header_end + 1, response.size() - header_end - 3);
  long long lines = 0;
  for (char c : payload) lines += (c == '\n');
  EXPECT_EQ(advertised, lines);
  // Core series are present, including the per-stage histograms and the
  // counters synced from the pipeline.
  EXPECT_NE(payload.find("tcomp_records_ingested_total 12"),
            std::string::npos);
  EXPECT_NE(payload.find("tcomp_stage_seconds_bucket{stage=\"cluster\""),
            std::string::npos);
  EXPECT_NE(payload.find("tcomp_snapshots_processed_total"),
            std::string::npos);
  // No payload line is a bare "." — the frame terminator stays unique.
  EXPECT_EQ(payload.find("\n.\n"), std::string::npos);
  EXPECT_TRUE(pipeline.Stop().ok());
}

/// Two independent pipelines fed the same stream expose the same
/// name/label sequence — values may differ (timings), names never do.
TEST(ProtocolSessionTest, QueryMetricsNamesAreDeterministicAcrossRuns) {
  std::vector<std::string> runs[2];
  for (int run = 0; run < 2; ++run) {
    ServicePipeline pipeline(SmallPipelineOptions());
    ASSERT_TRUE(pipeline.Start().ok());
    ProtocolSession session(&pipeline);
    bool shutdown = false;
    for (const std::string& line : GroupIngestLines()) {
      ASSERT_EQ(session.HandleLine(line, &shutdown), "OK\n");
    }
    ASSERT_EQ(session.HandleLine("FLUSH", &shutdown), "OK flushed\n");
    runs[run] =
        MetricNameSequence(session.HandleLine("QUERY metrics", &shutdown));
    EXPECT_TRUE(pipeline.Stop().ok());
  }
  ASSERT_FALSE(runs[0].empty());
  EXPECT_EQ(runs[0], runs[1]);
  // Name-sorted at the family level: scrape output order is stable for
  // diffing. Histogram families expand to _bucket/_sum/_count lines, so
  // fold those suffixes back to the family name before comparing.
  auto family_of = [](const std::string& line) {
    std::string name = line.substr(0, line.find_first_of("{ "));
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      size_t len = std::string(suffix).size();
      if (name.size() > len &&
          name.compare(name.size() - len, len, suffix) == 0) {
        std::string base = name.substr(0, name.size() - len);
        // Only strip when the base really is a histogram family (all of
        // ours end in _seconds); plain counters like *_total keep theirs.
        if (base.size() >= 8 &&
            base.compare(base.size() - 8, 8, "_seconds") == 0) {
          return base;
        }
      }
    }
    return name;
  };
  std::string prev_family;
  for (const std::string& line : runs[0]) {
    if (line.rfind("# ", 0) == 0) continue;
    std::string family = family_of(line);
    EXPECT_LE(prev_family, family) << "families out of order at " << line;
    prev_family = family;
  }
}

TEST(ProtocolSessionTest, MalformedLinesErrorButNeverWedgeTheSession) {
  ServicePipeline pipeline(SmallPipelineOptions());
  ASSERT_TRUE(pipeline.Start().ok());
  ProtocolSession session(&pipeline);
  bool shutdown = false;

  const std::vector<std::string> malformed = {
      "",                             // empty frame
      "BOGUS 1 2 3",                  // unknown verb
      "INGEST 1 2.0",                 // truncated record
      "INGEST 1 nan 3.0 4.0",         // non-finite field
      "INGEST \xff\xfe 2.0 3.0 4.0",  // non-UTF8 bytes
      "QUERY everything",             // unknown query
  };
  for (const std::string& line : malformed) {
    std::string response = session.HandleLine(line, &shutdown);
    EXPECT_EQ(response.rfind("ERR ", 0), 0u) << "line: " << line;
    EXPECT_EQ(response.find('\n'), response.size() - 1)
        << "error replies are single-line";
  }
  EXPECT_EQ(session.parse_errors(),
            static_cast<int64_t>(malformed.size()));
  EXPECT_FALSE(shutdown);

  // The session still serves correct requests afterwards.
  EXPECT_EQ(session.HandleLine("INGEST 1 0.0 5.0 5.0", &shutdown), "OK\n");
  EXPECT_EQ(session.HandleLine("FLUSH", &shutdown), "OK flushed\n");
  EXPECT_TRUE(pipeline.Stop().ok());
}

TEST(ProtocolSessionTest, OversizeAndShutdownHandling) {
  ServicePipeline pipeline(SmallPipelineOptions());
  ASSERT_TRUE(pipeline.Start().ok());
  ProtocolSession session(&pipeline);
  bool shutdown = false;

  std::string oversize = session.OversizeResponse();
  EXPECT_EQ(oversize.rfind("ERR ", 0), 0u);
  EXPECT_EQ(session.parse_errors(), 1);

  std::string response = session.HandleLine("SHUTDOWN", &shutdown);
  EXPECT_EQ(response, "OK shutting-down\n");
  EXPECT_TRUE(shutdown);
  EXPECT_TRUE(pipeline.Stop().ok());
}

// ---------------------------------------------------------------------
// BinaryFramer: length-prefixed request framing, fuzzing the boundary
// cases — truncated prefixes, over-cap lengths, magic confusion, and
// pipelined frames split at arbitrary byte positions.

std::vector<TrajectoryRecord> GroupRecords() {
  std::vector<TrajectoryRecord> records;
  for (int snap = 0; snap < 3; ++snap) {
    for (int obj = 0; obj < 4; ++obj) {
      TrajectoryRecord r;
      r.object = static_cast<ObjectId>(obj);
      r.timestamp = snap * 60.0;
      r.pos.x = 100.0 + snap * 25.0 + obj;
      r.pos.y = 200.0 + obj;
      records.push_back(r);
    }
  }
  return records;
}

TEST(BinaryFramerTest, RoundTripsRecordsBitExactAcrossByteWiseFeeds) {
  std::vector<TrajectoryRecord> records = GroupRecords();
  records[0].pos.x = 0.1 + 0.2;  // a value printf round-trips imperfectly
  std::string wire = EncodeIngestBatch(records.data(), records.size());

  BinaryFramer framer;
  BinaryFrame frame;
  std::string error;
  // Feed one byte at a time: every prefix must be kNeedMore (a truncated
  // length prefix or payload never yields a frame or an error).
  for (size_t i = 0; i + 1 < wire.size(); ++i) {
    framer.Feed(&wire[i], 1);
    ASSERT_EQ(framer.Next(&frame, &error), BinaryFramer::Result::kNeedMore)
        << "byte " << i;
    EXPECT_TRUE(framer.HasPartial());
  }
  framer.Feed(&wire[wire.size() - 1], 1);
  ASSERT_EQ(framer.Next(&frame, &error), BinaryFramer::Result::kFrame);
  EXPECT_FALSE(framer.HasPartial());
  EXPECT_EQ(frame.type,
            static_cast<uint8_t>(BinaryRequestType::kIngestBatch));

  std::vector<TrajectoryRecord> decoded;
  ASSERT_TRUE(DecodeIngestPayload(frame.payload, &decoded).ok());
  ASSERT_EQ(decoded.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(decoded[i].object, records[i].object);
    // Bit-exact, not approximately-equal: records travel as raw IEEE-754.
    EXPECT_EQ(decoded[i].timestamp, records[i].timestamp);
    EXPECT_EQ(decoded[i].pos.x, records[i].pos.x);
    EXPECT_EQ(decoded[i].pos.y, records[i].pos.y);
  }
}

TEST(BinaryFramerTest, TruncatedHeaderIsJustPartialNeverAnError) {
  std::string wire = EncodeBinaryRequest(BinaryRequestType::kFlush, 0, "");
  BinaryFramer framer;
  framer.Feed(wire.data(), 3);  // magic + version + type, no length yet
  BinaryFrame frame;
  std::string error;
  EXPECT_EQ(framer.Next(&frame, &error), BinaryFramer::Result::kNeedMore);
  EXPECT_TRUE(framer.HasPartial());
  EXPECT_EQ(framer.buffered_bytes(), 3u);
}

TEST(BinaryFramerTest, OversizedDeclaredLengthPoisonsTheFramer) {
  // A syntactically perfect header whose declared payload length exceeds
  // the cap: the framer must fault immediately (never buffer toward it)
  // and stay faulted — there is no resync point in a binary stream.
  std::string header;
  header.push_back(static_cast<char>(kBinaryRequestMagic));
  header.push_back(static_cast<char>(kBinaryVersion));
  header.push_back(static_cast<char>(BinaryRequestType::kIngestBatch));
  header.push_back(0);
  uint32_t huge = static_cast<uint32_t>(kMaxBinaryPayloadBytes) + 1;
  for (int i = 0; i < 4; ++i) {
    header.push_back(static_cast<char>((huge >> (8 * i)) & 0xFF));
  }
  BinaryFramer framer;
  framer.Feed(header.data(), header.size());
  BinaryFrame frame;
  std::string error;
  ASSERT_EQ(framer.Next(&frame, &error), BinaryFramer::Result::kBad);
  EXPECT_NE(error.find("exceeds"), std::string::npos);
  EXPECT_EQ(framer.buffered_bytes(), 0u);  // nothing buffered toward it

  // Sticky: even a perfectly valid frame afterwards stays rejected.
  std::string good = EncodeBinaryRequest(BinaryRequestType::kFlush, 0, "");
  framer.Feed(good.data(), good.size());
  EXPECT_EQ(framer.Next(&frame, &error), BinaryFramer::Result::kBad);
}

TEST(BinaryFramerTest, MagicAndVersionConfusionAreFatal) {
  BinaryFrame frame;
  std::string error;
  {
    // Text on a binary framer: 'F' is not the request magic.
    BinaryFramer framer;
    framer.Feed("FLUSH\n", 6);
    EXPECT_EQ(framer.Next(&frame, &error), BinaryFramer::Result::kBad);
  }
  {
    // The RESPONSE magic on the request side is equally wrong — a client
    // looped back to itself must not be mistaken for a request stream.
    std::string wire =
        EncodeBinaryResponse(BinaryResponseType::kOk, 0, 0, "");
    BinaryFramer framer;
    framer.Feed(wire.data(), wire.size());
    EXPECT_EQ(framer.Next(&frame, &error), BinaryFramer::Result::kBad);
  }
  {
    // Right magic, wrong version.
    std::string wire = EncodeBinaryRequest(BinaryRequestType::kFlush, 0, "");
    wire[1] = static_cast<char>(kBinaryVersion + 1);
    BinaryFramer framer;
    framer.Feed(wire.data(), wire.size());
    EXPECT_EQ(framer.Next(&frame, &error), BinaryFramer::Result::kBad);
    EXPECT_NE(error.find("version"), std::string::npos);
  }
}

TEST(BinaryFramerTest, PipelinedFramesSplitAtEveryBoundaryDecodeInOrder) {
  std::vector<TrajectoryRecord> records = GroupRecords();
  std::string wire = EncodeIngestBatch(records.data(), 2);
  wire += EncodeBinaryRequest(
      BinaryRequestType::kQuery,
      static_cast<uint8_t>(Request::QueryKind::kStats), "");
  wire += EncodeBinaryRequest(BinaryRequestType::kFlush, 0, "");

  // Split the 3-frame stream at every possible position; framing must
  // reassemble the identical sequence regardless of the cut.
  for (size_t cut = 0; cut <= wire.size(); ++cut) {
    BinaryFramer framer;
    framer.Feed(wire.data(), cut);
    framer.Feed(wire.data() + cut, wire.size() - cut);
    BinaryFrame frame;
    std::string error;
    ASSERT_EQ(framer.Next(&frame, &error), BinaryFramer::Result::kFrame);
    EXPECT_EQ(frame.type,
              static_cast<uint8_t>(BinaryRequestType::kIngestBatch));
    EXPECT_EQ(frame.payload.size(), 2 * kBinaryRecordBytes);
    ASSERT_EQ(framer.Next(&frame, &error), BinaryFramer::Result::kFrame);
    EXPECT_EQ(frame.type, static_cast<uint8_t>(BinaryRequestType::kQuery));
    ASSERT_EQ(framer.Next(&frame, &error), BinaryFramer::Result::kFrame);
    EXPECT_EQ(frame.type, static_cast<uint8_t>(BinaryRequestType::kFlush));
    EXPECT_EQ(framer.Next(&frame, &error), BinaryFramer::Result::kNeedMore);
    EXPECT_FALSE(framer.HasPartial());
  }
}

TEST(BinaryProtocolTest, IngestPayloadMustBeARecordMultiple) {
  std::vector<TrajectoryRecord> decoded;
  std::string ragged(kBinaryRecordBytes + 1, '\0');
  EXPECT_FALSE(DecodeIngestPayload(ragged, &decoded).ok());
  EXPECT_TRUE(DecodeIngestPayload("", &decoded).ok());  // empty batch is OK
  EXPECT_TRUE(decoded.empty());
}

TEST(BinaryResponseReaderTest, RoundTripsAndPoisonsLikeTheRequestSide) {
  std::string wire =
      EncodeBinaryResponse(BinaryResponseType::kOk, 0, 42, "payload");
  BinaryResponseReader reader;
  reader.Feed(wire.data(), wire.size() - 1);
  BinaryResponse response;
  std::string error;
  EXPECT_EQ(reader.Next(&response, &error),
            BinaryResponseReader::Result::kNeedMore);
  reader.Feed(wire.data() + wire.size() - 1, 1);
  ASSERT_EQ(reader.Next(&response, &error),
            BinaryResponseReader::Result::kFrame);
  EXPECT_EQ(response.type, static_cast<uint8_t>(BinaryResponseType::kOk));
  EXPECT_EQ(response.value, 42u);
  EXPECT_EQ(response.payload, "payload");

  // Request magic on the response side is confusion, not a frame.
  std::string confused = EncodeBinaryRequest(BinaryRequestType::kFlush, 0, "");
  BinaryResponseReader bad;
  bad.Feed(confused.data(), confused.size());
  EXPECT_EQ(bad.Next(&response, &error),
            BinaryResponseReader::Result::kBad);
}

// ---------------------------------------------------------------------
// ServiceConnection: the transport-free state machine, driven directly.

/// Drains every complete response frame out of a connection's output.
std::vector<BinaryResponse> DrainResponses(ServiceConnection* conn) {
  BinaryResponseReader reader;
  reader.Feed(conn->out().data(), conn->out().size());
  conn->out().clear();
  std::vector<BinaryResponse> responses;
  for (;;) {
    BinaryResponse response;
    std::string error;
    BinaryResponseReader::Result r = reader.Next(&response, &error);
    if (r != BinaryResponseReader::Result::kFrame) break;
    responses.push_back(response);
  }
  return responses;
}

TEST(ServiceConnectionTest, BinaryBatchQueryMatchesTextQueryByteForByte) {
  ServicePipeline pipeline(SmallPipelineOptions());
  ASSERT_TRUE(pipeline.Start().ok());

  // Binary connection: one batch, flush, query companions — pipelined in
  // a single Consume() call.
  std::vector<TrajectoryRecord> records = GroupRecords();
  std::string wire = EncodeIngestBatch(records.data(), records.size());
  wire += EncodeBinaryRequest(BinaryRequestType::kFlush, 0, "");
  wire += EncodeBinaryRequest(
      BinaryRequestType::kQuery,
      static_cast<uint8_t>(Request::QueryKind::kCompanions), "");
  ServiceConnection binary(&pipeline);
  binary.Consume(wire.data(), wire.size());
  EXPECT_EQ(binary.protocol(), WireProtocol::kBinary);
  EXPECT_FALSE(binary.fatal());

  std::vector<BinaryResponse> responses = DrainResponses(&binary);
  ASSERT_EQ(responses.size(), 3u);  // responses stay in request order
  EXPECT_EQ(responses[0].type,
            static_cast<uint8_t>(BinaryResponseType::kOk));
  EXPECT_EQ(responses[0].value, records.size());  // all admitted
  EXPECT_EQ(responses[1].type,
            static_cast<uint8_t>(BinaryResponseType::kOk));

  // Text connection against the same pipeline state.
  ServiceConnection text(&pipeline);
  std::string query = "QUERY companions\n";
  text.Consume(query.data(), query.size());
  EXPECT_EQ(text.protocol(), WireProtocol::kText);
  std::string text_out = text.out();
  // Strip the `OK <n>\n` header and trailing `.\n` to get the body.
  size_t header_end = text_out.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  std::string text_body = text_out.substr(
      header_end + 1, text_out.size() - header_end - 1 - 2);

  EXPECT_EQ(responses[2].payload, text_body);
  EXPECT_GT(responses[2].value, 0u);
  EXPECT_TRUE(pipeline.Stop().ok());
}

TEST(ServiceConnectionTest, BadFrameAnswersOneErrorFrameAndTurnsFatal) {
  ServicePipeline pipeline(SmallPipelineOptions());
  ASSERT_TRUE(pipeline.Start().ok());
  ServiceConnection conn(&pipeline);

  // Valid frame, then garbage where the next magic should be.
  std::string wire = EncodeBinaryRequest(BinaryRequestType::kFlush, 0, "");
  wire += "QUERY stats\n";  // text mid-stream = magic confusion
  conn.Consume(wire.data(), wire.size());

  std::vector<BinaryResponse> responses = DrainResponses(&conn);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].type,
            static_cast<uint8_t>(BinaryResponseType::kOk));
  EXPECT_EQ(responses[1].type,
            static_cast<uint8_t>(BinaryResponseType::kErr));
  EXPECT_TRUE(conn.fatal());
  EXPECT_EQ(conn.parse_errors(), 1);

  // A fatal connection ignores further input rather than resyncing.
  std::string more = EncodeBinaryRequest(BinaryRequestType::kFlush, 0, "");
  conn.Consume(more.data(), more.size());
  EXPECT_TRUE(DrainResponses(&conn).empty());
  EXPECT_TRUE(pipeline.Stop().ok());
}

TEST(ServiceConnectionTest, MidFrameShutdownEmitsOneCleanShutdownFrame) {
  ServicePipeline pipeline(SmallPipelineOptions());
  ASSERT_TRUE(pipeline.Start().ok());
  ServiceConnection conn(&pipeline);

  // A fully-delivered batch followed by a truncated one.
  std::vector<TrajectoryRecord> records = GroupRecords();
  std::string wire = EncodeIngestBatch(records.data(), records.size());
  std::string partial = EncodeIngestBatch(records.data(), records.size());
  partial.resize(partial.size() / 2);
  wire += partial;
  conn.Consume(wire.data(), wire.size());
  EXPECT_TRUE(conn.has_partial_request());

  conn.PrepareShutdown();
  std::vector<BinaryResponse> responses = DrainResponses(&conn);
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(responses[0].type,
            static_cast<uint8_t>(BinaryResponseType::kOk));
  EXPECT_EQ(responses[0].value, records.size());
  // The partial frame gets a complete SHUTDOWN frame telling the client
  // to re-send it — never a truncated response, never a silent drop.
  EXPECT_EQ(responses[1].type,
            static_cast<uint8_t>(BinaryResponseType::kShutdown));
  EXPECT_NE(responses[1].payload.find("re-send"), std::string::npos);
  EXPECT_TRUE(pipeline.Stop().ok());
}

// ---------------------------------------------------------------------
// CompanionServer: the same protocol over a real loopback socket, with
// multi-client sessions, oversized wire frames, and mid-line disconnects.

class LineClient {
 public:
  void Connect(uint16_t port) {
    ASSERT_TRUE(StreamSocket::Connect(port, 2000, &sock_).ok());
  }
  void Send(const std::string& data) {
    ASSERT_TRUE(sock_.WriteAll(data, 2000).ok());
  }
  std::string ReadLine() {
    std::string line;
    for (;;) {
      LineFramer::Result r = framer_.Next(&line);
      if (r == LineFramer::Result::kLine) return line;
      EXPECT_NE(r, LineFramer::Result::kOversize);
      char buf[4096];
      size_t n = 0;
      Status s = sock_.Read(buf, sizeof(buf), 5000, &n);
      EXPECT_TRUE(s.ok()) << s.ToString();
      if (!s.ok() || n == 0) return line;
      framer_.Feed(buf, n);
    }
  }
  void Close() { sock_.Close(); }

 private:
  StreamSocket sock_;
  LineFramer framer_{1 << 20};
};

TEST(CompanionServerTest, ServesMultipleClientsAndCountsBadFrames) {
  ServicePipeline pipeline(SmallPipelineOptions());
  ASSERT_TRUE(pipeline.Start().ok());
  ServerOptions sopts;
  sopts.port = 0;  // ephemeral
  CompanionServer server(&pipeline, sopts);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  // Client 1 ingests a well-formed stream plus an oversized line.
  LineClient feeder;
  feeder.Connect(server.port());
  for (const std::string& line : GroupIngestLines()) {
    feeder.Send(line + "\n");
    EXPECT_EQ(feeder.ReadLine(), "OK");
  }
  std::string big = "INGEST " + std::string(2 * kMaxRequestLineBytes, '7');
  feeder.Send(big + "\n");
  EXPECT_EQ(feeder.ReadLine().rfind("ERR ", 0), 0u);
  feeder.Send("FLUSH\n");
  EXPECT_EQ(feeder.ReadLine(), "OK flushed");

  // Client 2 queries concurrently with client 1's open session.
  LineClient querier;
  querier.Connect(server.port());
  querier.Send("QUERY stats\n");
  std::string header = querier.ReadLine();
  EXPECT_EQ(header.rfind("OK ", 0), 0u);
  bool saw_ingested = false;
  for (;;) {
    std::string line = querier.ReadLine();
    if (line == "." || line.empty()) break;
    if (line == "records_ingested=12") saw_ingested = true;
  }
  EXPECT_TRUE(saw_ingested);

  // Client 3 disconnects mid-line; the server must account for it and
  // keep serving everyone else.
  LineClient rude;
  rude.Connect(server.port());
  rude.Send("INGEST 3 180.0 1");  // no newline
  rude.Close();
  // Wait for the rude session to be reaped before shutting down, so the
  // mid-line accounting below is not racing the stop flag.
  for (int i = 0; i < 100 && server.Counters().sessions_closed < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }

  querier.Send("SHUTDOWN\n");
  EXPECT_EQ(querier.ReadLine(), "OK shutting-down");
  server.Wait();
  EXPECT_TRUE(pipeline.Stop().ok());

  ServerCounters counters = server.Counters();
  EXPECT_EQ(counters.sessions_opened, 3);
  EXPECT_EQ(counters.sessions_closed, 3);
  EXPECT_EQ(counters.parse_errors, 1);  // the oversized frame
  EXPECT_EQ(counters.midline_disconnects, 1);
}

/// A long-running daemon must not accumulate dead session threads: once
/// a client disconnects, the accept loop joins and discards its handle
/// while the server keeps serving.
TEST(CompanionServerTest, FinishedSessionsAreReapedWhileRunning) {
  ServicePipeline pipeline(SmallPipelineOptions());
  ASSERT_TRUE(pipeline.Start().ok());
  ServerOptions sopts;
  sopts.port = 0;
  CompanionServer server(&pipeline, sopts);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kClients = 5;
  for (int i = 0; i < kClients; ++i) {
    LineClient client;
    client.Connect(server.port());
    client.Send("FLUSH\n");
    EXPECT_EQ(client.ReadLine(), "OK flushed");
    client.Close();
  }
  // The accept loop reaps on every poll iteration; all five handles must
  // disappear without any shutdown being requested.
  for (int i = 0; i < 250 && server.SessionHandles() > 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_EQ(server.SessionHandles(), 0u);
  ServerCounters counters = server.Counters();
  EXPECT_EQ(counters.sessions_opened, kClients);
  EXPECT_EQ(counters.sessions_closed, kClients);

  server.RequestStop();
  server.Wait();
  EXPECT_TRUE(pipeline.Stop().ok());
}

TEST(CompanionServerTest, StopsViaRequestStopWithoutClients) {
  ServicePipeline pipeline(SmallPipelineOptions());
  ASSERT_TRUE(pipeline.Start().ok());
  ServerOptions sopts;
  sopts.port = 0;
  CompanionServer server(&pipeline, sopts);
  ASSERT_TRUE(server.Start().ok());
  server.RequestStop();
  server.Wait();
  EXPECT_TRUE(pipeline.Stop().ok());
  EXPECT_EQ(server.Counters().sessions_opened, 0);
}

}  // namespace
}  // namespace tcomp
