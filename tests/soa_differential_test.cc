/// Differential proof that the SoA snapshot layout and the batched
/// ε-filter kernels (util/eps_filter.h, ROADMAP item 4) are a pure
/// optimization: with SetSoAKernelsEnabled() toggled on vs. off, the
/// kernels accept exactly the lanes the scalar WithinEps walk accepts
/// (exact-ε boundary coordinates included), DbscanGrid produces the
/// identical Clustering with the identical distance_ops count, and CI,
/// SC, BU, and the convoy baseline produce byte-identical serialized
/// state. Only wall-clock timings may differ, so those fields of the
/// "stats" line are zeroed before comparison. Also pins the incremental
/// clusterer's steady-state no-heap-growth invariant: the per-snapshot
/// scratch arena stops growing once the workload's high-water mark has
/// been seen.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/convoy.h"
#include "core/dbscan.h"
#include "core/discoverer.h"
#include "core/incremental_cluster.h"
#include "core/snapshot.h"
#include "data/group_model.h"
#include "test_util.h"
#include "util/eps_filter.h"
#include "util/random.h"

namespace tcomp {
namespace {

using testing_util::ClusteredSnapshot;

/// Restores the process-wide SoA toggle no matter how a test exits, so a
/// failing assertion can't leak "SoA off" into later tests.
class SoAToggleGuard {
 public:
  SoAToggleGuard() : saved_(SoAKernelsEnabled()) {}
  ~SoAToggleGuard() { SetSoAKernelsEnabled(saved_); }
  SoAToggleGuard(const SoAToggleGuard&) = delete;
  SoAToggleGuard& operator=(const SoAToggleGuard&) = delete;

 private:
  bool saved_;
};

// ---------------------------------------------------------------------
// Kernel-level differentials: EpsFilterBatch / EpsFilterGather against
// the scalar WithinEps walk, lane for lane.

std::vector<uint32_t> ScalarRange(const std::vector<double>& xs,
                                  const std::vector<double>& ys,
                                  uint32_t begin, uint32_t end, double qx,
                                  double qy, double eps2) {
  std::vector<uint32_t> out;
  for (uint32_t i = begin; i < end; ++i) {
    if (WithinEps(Point{xs[i], ys[i]}, Point{qx, qy}, eps2)) {
      out.push_back(i);
    }
  }
  return out;
}

std::vector<uint32_t> ScalarGather(const std::vector<double>& xs,
                                   const std::vector<double>& ys,
                                   const std::vector<uint32_t>& cand,
                                   double qx, double qy, double eps2) {
  std::vector<uint32_t> out;
  for (uint32_t i : cand) {
    if (WithinEps(Point{xs[i], ys[i]}, Point{qx, qy}, eps2)) {
      out.push_back(i);
    }
  }
  return out;
}

/// Sizes straddling both kernel structure boundaries: the scalar cutover
/// (16) and the chunk width (256).
const uint32_t kSizes[] = {0, 1, 3, 8, 15, 16, 17, 64, 255, 256, 257, 777};

TEST(EpsFilterKernelTest, BatchMatchesScalarWalkAcrossSizes) {
  Pcg32 rng(901);
  for (uint32_t n : kSizes) {
    std::vector<double> xs(n), ys(n);
    for (uint32_t i = 0; i < n; ++i) {
      xs[i] = rng.NextDouble(0.0, 200.0);
      ys[i] = rng.NextDouble(0.0, 200.0);
    }
    std::vector<uint32_t> out(n);
    for (int trial = 0; trial < 8; ++trial) {
      const double qx = rng.NextDouble(0.0, 200.0);
      const double qy = rng.NextDouble(0.0, 200.0);
      const double eps = rng.NextDouble(1.0, 40.0);
      const double eps2 = eps * eps;
      // Random sub-windows exercise nonzero `begin` (the grid backends
      // always pass cell-aligned interior ranges).
      const uint32_t begin = n == 0 ? 0 : rng.NextBounded(n);
      const uint32_t end =
          begin + (n == begin ? 0 : rng.NextBounded(n - begin + 1));
      const size_t got =
          EpsFilterBatch(xs.data(), ys.data(), begin, end, qx, qy, eps2,
                         out.data());
      const std::vector<uint32_t> want =
          ScalarRange(xs, ys, begin, end, qx, qy, eps2);
      ASSERT_EQ(got, want.size()) << "n=" << n << " trial=" << trial;
      for (size_t k = 0; k < got; ++k) {
        EXPECT_EQ(out[k], want[k]) << "n=" << n << " lane " << k;
      }
    }
  }
}

TEST(EpsFilterKernelTest, GatherMatchesScalarWalkAcrossSizes) {
  Pcg32 rng(902);
  const uint32_t kUniverse = 1024;
  std::vector<double> xs(kUniverse), ys(kUniverse);
  for (uint32_t i = 0; i < kUniverse; ++i) {
    xs[i] = rng.NextDouble(0.0, 200.0);
    ys[i] = rng.NextDouble(0.0, 200.0);
  }
  for (uint32_t n : kSizes) {
    // Scattered, unordered, duplicate-bearing candidate lists — the
    // carried-neighbor shape the incremental clusterer feeds the kernel.
    std::vector<uint32_t> cand(n);
    for (uint32_t& c : cand) c = rng.NextBounded(kUniverse);
    std::vector<uint32_t> out(n);
    for (int trial = 0; trial < 8; ++trial) {
      const double qx = rng.NextDouble(0.0, 200.0);
      const double qy = rng.NextDouble(0.0, 200.0);
      const double eps2 = rng.NextDouble(1.0, 1600.0);
      const size_t got =
          EpsFilterGather(xs.data(), ys.data(), cand.data(), cand.size(),
                          qx, qy, eps2, out.data());
      const std::vector<uint32_t> want =
          ScalarGather(xs, ys, cand, qx, qy, eps2);
      ASSERT_EQ(got, want.size()) << "n=" << n << " trial=" << trial;
      for (size_t k = 0; k < got; ++k) {
        EXPECT_EQ(out[k], want[k]) << "n=" << n << " lane " << k;
      }
    }
  }
}

/// Exact-ε boundary coordinates. The contract says the kernels evaluate
/// literally `dx*dx + dy*dy <= eps2` with scalar IEEE rounding — a lost
/// -ffp-contract=off on the kernel TU (which would let the AVX2 clones
/// fuse the expression) shows up here as a boundary lane flipping.
TEST(EpsFilterKernelTest, ExactBoundaryCoordinatesMatchScalarWalk) {
  const double eps = 5.0;
  const double eps2 = eps * eps;
  const double qx = 1000.0;
  const double qy = -250.0;
  std::vector<double> xs, ys;
  auto add = [&](double dx, double dy) {
    xs.push_back(qx + dx);
    ys.push_back(qy + dy);
  };
  // Exactly on the closed ball's boundary: axis-aligned and the 3-4-5
  // triangle (both exact in binary floating point — must be accepted).
  add(5.0, 0.0);
  add(0.0, -5.0);
  add(3.0, 4.0);
  add(-4.0, 3.0);
  // Just outside along each axis (must be rejected). The nudge is well
  // above ulp(qx + 5) ≈ 1.1e-13, so it survives the coordinate addition
  // — a bare nextafter(5.0, 6.0) would be rounded away at this magnitude
  // and land back on the boundary.
  add(5.0 + 1e-11, 0.0);
  add(0.0, -(5.0 + 1e-11));
  // Just inside (must be accepted).
  add(5.0 - 1e-11, 0.0);
  // Large-magnitude offsets where the subtraction qx+dx-qx is inexact and
  // the sum-of-squares rounding decides membership either way; the point
  // is lane-for-lane agreement with the scalar walk, whatever it decides.
  for (double mag : {1e8, 1e12, 1e15}) {
    xs.push_back(mag + 3.0);
    ys.push_back(mag + 4.0);
    xs.push_back(mag);
    ys.push_back(mag);
  }
  // Tile the adversarial set past the chunk width so the vectorized path
  // (not just the small-range scalar cutover) sees every case.
  const size_t pattern = xs.size();
  while (xs.size() < 3 * 256 + 7) {
    xs.push_back(xs[xs.size() % pattern]);
    ys.push_back(ys[ys.size() % pattern]);
  }
  const uint32_t n = static_cast<uint32_t>(xs.size());

  std::vector<uint32_t> out(n);
  for (auto [qpx, qpy] : {std::pair{qx, qy}, std::pair{1e8, 1e8},
                          std::pair{1e12, 1e12}, std::pair{1e15, 1e15}}) {
    // Full range (chunked path) and a leading 8-lane window (scalar
    // cutover path) must both agree with the reference walk.
    for (uint32_t end : {n, std::min<uint32_t>(8, n)}) {
      const size_t got = EpsFilterBatch(xs.data(), ys.data(), 0, end, qpx,
                                        qpy, eps2, out.data());
      const std::vector<uint32_t> want =
          ScalarRange(xs, ys, 0, end, qpx, qpy, eps2);
      ASSERT_EQ(got, want.size()) << "query (" << qpx << ", " << qpy << ")";
      for (size_t k = 0; k < got; ++k) EXPECT_EQ(out[k], want[k]);

      std::vector<uint32_t> cand(end);
      for (uint32_t i = 0; i < end; ++i) cand[i] = i;
      const size_t ggot =
          EpsFilterGather(xs.data(), ys.data(), cand.data(), cand.size(),
                          qpx, qpy, eps2, out.data());
      ASSERT_EQ(ggot, want.size());
      for (size_t k = 0; k < ggot; ++k) EXPECT_EQ(out[k], want[k]);
    }
  }
  // The boundary rows themselves: exact-distance points accepted, one-ulp
  // outside rejected (sanity that the fixture tests what it claims).
  const std::vector<uint32_t> accepted =
      ScalarRange(xs, ys, 0, static_cast<uint32_t>(pattern), qx, qy, eps2);
  EXPECT_GE(accepted.size(), 5u);
  for (uint32_t k : accepted) EXPECT_NE(k, 4u) << "ulp-outside accepted";
}

// ---------------------------------------------------------------------
// DbscanGrid: the SoA forward plane-sweep must reproduce the scalar
// hash-grid branch exactly — labels, core flags, cluster sets, and the
// logical distance_ops counter (the sweep evaluates each unordered pair
// once and counts it twice; see src/core/dbscan.cc).

void ExpectSameClustering(const Clustering& a, const Clustering& b,
                          const char* what) {
  EXPECT_EQ(a.labels, b.labels) << what;
  EXPECT_EQ(a.core, b.core) << what;
  ASSERT_EQ(a.clusters.size(), b.clusters.size()) << what;
  for (size_t k = 0; k < a.clusters.size(); ++k) {
    EXPECT_EQ(a.clusters[k], b.clusters[k]) << what << " cluster " << k;
  }
}

TEST(DbscanGridSoATest, MatchesScalarGridAcrossSnapshotShapes) {
  SoAToggleGuard guard;
  Pcg32 rng(903);
  DbscanParams params;
  params.epsilon = 18.0;
  params.mu = 3;

  std::vector<std::pair<std::string, Snapshot>> cases;
  cases.emplace_back("clustered",
                     ClusteredSnapshot(5, 40, 30, 800.0, 10.0, rng));
  cases.emplace_back("dense_blobs",
                     ClusteredSnapshot(2, 150, 0, 400.0, 12.0, rng));
  cases.emplace_back("sparse",
                     testing_util::RandomSnapshot(120, 5000.0, rng));
  cases.emplace_back("empty", Snapshot({}, 1.0));
  cases.emplace_back("single",
                     testing_util::MakeSnapshot({{7, 10.0, 10.0}}));
  {
    // Collocated points: one grid cell holding everything — the sweep's
    // own-cell tail does all the work, spanning multiple 256-lane chunks.
    std::vector<ObjectPosition> pos;
    for (ObjectId i = 0; i < 600; ++i) {
      pos.push_back(ObjectPosition{i, Point{50.0, 50.0}});
    }
    cases.emplace_back("collocated", Snapshot(std::move(pos), 1.0));
  }

  for (const auto& [name, snapshot] : cases) {
    SetSoAKernelsEnabled(true);
    int64_t ops_on = 0;
    Clustering on = DbscanGrid(snapshot, params, &ops_on);
    SetSoAKernelsEnabled(false);
    int64_t ops_off = 0;
    Clustering off = DbscanGrid(snapshot, params, &ops_off);
    ExpectSameClustering(on, off, name.c_str());
    EXPECT_EQ(ops_on, ops_off) << name;
  }
}

// ---------------------------------------------------------------------
// End-to-end differentials: full discoverer runs, byte-identical
// serialized state across SoA modes.

GroupDataset ChurnyStream(uint64_t seed) {
  GroupModelOptions options;
  options.num_objects = 90;
  options.num_snapshots = 32;
  options.area_size = 1600.0;
  options.min_group_size = 6;
  options.max_group_size = 12;
  options.split_probability = 0.015;
  options.leave_probability = 0.008;
  options.seed = seed;
  return GenerateGroupStream(options);
}

DiscoveryParams BaseParams() {
  DiscoveryParams params;
  params.cluster.epsilon = 18.0;
  params.cluster.mu = 3;
  params.size_threshold = 5;
  params.duration_threshold = 7;
  return params;
}

/// Serialized discoverer state with the wall-clock fields (the last three
/// tokens of the "stats" line) zeroed; everything else must match bit for
/// bit between SoA modes.
std::string NormalizedState(const CompanionDiscoverer& d) {
  std::ostringstream raw;
  Status st = d.SaveState(raw);
  EXPECT_TRUE(st.ok()) << st.ToString();
  std::istringstream in(raw.str());
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("stats ", 0) == 0) {
      std::istringstream fields(line);
      std::vector<std::string> tokens;
      std::string tok;
      while (fields >> tok) tokens.push_back(tok);
      EXPECT_GE(tokens.size(), 4u);
      for (size_t i = tokens.size() - 3; i < tokens.size(); ++i) {
        tokens[i].assign(1, '0');
      }
      for (size_t i = 0; i < tokens.size(); ++i) {
        if (i > 0) out << ' ';
        out << tokens[i];
      }
      out << '\n';
    } else {
      out << line << '\n';
    }
  }
  return out.str();
}

std::unique_ptr<CompanionDiscoverer> MakeGridBacked(
    Algorithm algorithm, const DiscoveryParams& params) {
  std::unique_ptr<CompanionDiscoverer> d = MakeDiscoverer(algorithm, params);
  d->SetClusterProvider(
      [params](const Snapshot& s, int64_t* distance_ops) {
        return DbscanGrid(s, params.cluster, distance_ops);
      });
  return d;
}

struct RunResult {
  std::string state;
  int64_t distance_ops = 0;
  size_t log_size = 0;
};

RunResult RunDiscoverer(Algorithm algorithm, const SnapshotStream& stream,
                        const DiscoveryParams& params, bool soa,
                        bool grid_provider) {
  SetSoAKernelsEnabled(soa);
  std::unique_ptr<CompanionDiscoverer> d =
      grid_provider ? MakeGridBacked(algorithm, params)
                    : MakeDiscoverer(algorithm, params);
  for (const Snapshot& s : stream) d->ProcessSnapshot(s, nullptr);
  RunResult r;
  r.state = NormalizedState(*d);
  r.distance_ops = d->stats().distance_ops;
  r.log_size = d->log().companions().size();
  return r;
}

class SoADifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SoADifferentialTest, DiscoverersByteIdenticalAcrossSoAModes) {
  SoAToggleGuard guard;
  GroupDataset data = ChurnyStream(GetParam());
  DiscoveryParams params = BaseParams();

  for (Algorithm algorithm :
       {Algorithm::kClusteringIntersection, Algorithm::kSmartClosed,
        Algorithm::kBuddy}) {
    RunResult on = RunDiscoverer(algorithm, data.stream, params, true, false);
    RunResult off =
        RunDiscoverer(algorithm, data.stream, params, false, false);
    EXPECT_GT(on.log_size, 0u) << "test wants companions";
    EXPECT_EQ(on.state, off.state) << AlgorithmName(algorithm);
    EXPECT_EQ(on.distance_ops, off.distance_ops) << AlgorithmName(algorithm);
  }
}

TEST_P(SoADifferentialTest, GridProviderByteIdenticalAcrossSoAModes) {
  SoAToggleGuard guard;
  GroupDataset data = ChurnyStream(GetParam());
  DiscoveryParams params = BaseParams();

  // DbscanGrid injected as the cluster provider: this is the forward
  // plane-sweep inside a full pipeline, counter accounting included.
  RunResult on = RunDiscoverer(Algorithm::kSmartClosed, data.stream, params,
                               true, true);
  RunResult off = RunDiscoverer(Algorithm::kSmartClosed, data.stream, params,
                                false, true);
  EXPECT_GT(on.log_size, 0u) << "test wants companions";
  EXPECT_EQ(on.state, off.state);
  EXPECT_EQ(on.distance_ops, off.distance_ops);
}

TEST_P(SoADifferentialTest, ConvoyBaselineIdenticalAcrossSoAModes) {
  SoAToggleGuard guard;
  GroupDataset data = ChurnyStream(GetParam());
  ConvoyParams params;
  params.cluster.epsilon = 18.0;
  params.cluster.mu = 3;
  params.min_objects = 5;
  params.min_lifetime = 7;

  SetSoAKernelsEnabled(true);
  ConvoyStats stats_on;
  std::vector<Convoy> on = DiscoverConvoys(data.stream, params, &stats_on);
  SetSoAKernelsEnabled(false);
  ConvoyStats stats_off;
  std::vector<Convoy> off = DiscoverConvoys(data.stream, params, &stats_off);

  EXPECT_FALSE(on.empty()) << "test wants convoys";
  ASSERT_EQ(on.size(), off.size());
  for (size_t i = 0; i < on.size(); ++i) {
    EXPECT_EQ(on[i].objects, off[i].objects) << "convoy " << i;
    EXPECT_EQ(on[i].begin, off[i].begin) << "convoy " << i;
    EXPECT_EQ(on[i].end, off[i].end) << "convoy " << i;
  }
  EXPECT_EQ(stats_on.distance_ops, stats_off.distance_ops);
  EXPECT_EQ(stats_on.intersections, stats_off.intersections);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoADifferentialTest,
                         ::testing::Values(901, 902, 903));

/// Flipping the kill switch between snapshots must be invisible: SoA mode
/// is per-snapshot derived computation, never carried state, so a run
/// that toggles off and back on mid-stream matches the all-on run.
TEST(SoAMidStreamToggleTest, ToggleTimelineDoesNotPerturbState) {
  SoAToggleGuard guard;
  GroupDataset data = ChurnyStream(904);
  DiscoveryParams params = BaseParams();
  const size_t third = data.stream.size() / 3;

  SetSoAKernelsEnabled(true);
  std::unique_ptr<CompanionDiscoverer> steady =
      MakeGridBacked(Algorithm::kSmartClosed, params);
  for (const Snapshot& s : data.stream) steady->ProcessSnapshot(s, nullptr);

  std::unique_ptr<CompanionDiscoverer> toggled =
      MakeGridBacked(Algorithm::kSmartClosed, params);
  for (size_t t = 0; t < data.stream.size(); ++t) {
    SetSoAKernelsEnabled(t < third || t >= 2 * third);
    toggled->ProcessSnapshot(data.stream[t], nullptr);
  }

  EXPECT_EQ(NormalizedState(*steady), NormalizedState(*toggled));
}

/// Checkpoints written under one SoA mode must load and continue
/// identically under the other: the SoA view and its arena are derived
/// per-snapshot state, never serialized.
TEST(SoACheckpointTest, StateRoundTripsAcrossSoAModes) {
  SoAToggleGuard guard;
  GroupDataset data = ChurnyStream(905);
  DiscoveryParams params = BaseParams();

  for (Algorithm algorithm :
       {Algorithm::kClusteringIntersection, Algorithm::kSmartClosed,
        Algorithm::kBuddy}) {
    SetSoAKernelsEnabled(true);
    std::unique_ptr<CompanionDiscoverer> first =
        MakeDiscoverer(algorithm, params);
    const size_t half = data.stream.size() / 2;
    for (size_t t = 0; t < half; ++t) {
      first->ProcessSnapshot(data.stream[t], nullptr);
    }
    std::stringstream checkpoint;
    ASSERT_TRUE(first->SaveState(checkpoint).ok());
    for (size_t t = half; t < data.stream.size(); ++t) {
      first->ProcessSnapshot(data.stream[t], nullptr);
    }

    SetSoAKernelsEnabled(false);
    std::unique_ptr<CompanionDiscoverer> resumed =
        MakeDiscoverer(algorithm, params);
    ASSERT_TRUE(resumed->LoadState(checkpoint).ok());
    for (size_t t = half; t < data.stream.size(); ++t) {
      resumed->ProcessSnapshot(data.stream[t], nullptr);
    }

    EXPECT_EQ(NormalizedState(*first), NormalizedState(*resumed))
        << AlgorithmName(algorithm);
  }
}

// ---------------------------------------------------------------------
// Arena steady state: once the incremental clusterer has seen the
// workload's high-water snapshot, further snapshots of the same
// population must not grow the scratch arena — the per-snapshot SoA
// views, cell index, and edge buffers all come out of recycled capacity.

TEST(ScratchArenaTest, SteadyStateStopsGrowingHeap) {
  GroupModelOptions options;
  options.num_objects = 120;
  options.num_snapshots = 48;
  options.area_size = 1800.0;
  options.min_group_size = 8;
  options.max_group_size = 14;
  options.split_probability = 0.0;
  options.leave_probability = 0.0;
  options.seed = 906;
  GroupDataset data = GenerateGroupStream(options);

  DbscanParams params;
  params.epsilon = 18.0;
  params.mu = 3;
  IncrementalClusterer clusterer(params);

  // Warm-up pass: play the entire stream once, so the high-water snapshot
  // — wherever in the stream it falls — has been seen.
  for (const Snapshot& s : data.stream) {
    clusterer.Cluster(s, nullptr, nullptr);
  }
  const size_t steady = clusterer.ScratchArenaBytes();
  EXPECT_GT(steady, 0u) << "arena is not being used at all";
  // Second pass over the same snapshots (the wrap-around discontinuity
  // forces a full rebuild, the worst-case scratch user): every byte must
  // come out of recycled capacity.
  for (size_t t = 0; t < data.stream.size(); ++t) {
    clusterer.Cluster(data.stream[t], nullptr, nullptr);
    EXPECT_EQ(clusterer.ScratchArenaBytes(), steady)
        << "arena grew at snapshot " << t
        << " — per-snapshot scratch is leaking into fresh allocations";
  }
}

}  // namespace
}  // namespace tcomp
