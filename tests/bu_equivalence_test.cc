#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/buddy_discovery.h"
#include "core/discoverer.h"
#include "core/smart_closed.h"
#include "data/group_model.h"
#include "data/military_gen.h"
#include "tests/test_util.h"

namespace tcomp {
namespace {

std::set<ObjectSet> ReportedSets(const CompanionDiscoverer& d) {
  std::set<ObjectSet> out;
  for (const Companion& c : d.log().companions()) {
    out.insert(c.objects);
  }
  return out;
}

/// The paper's Section V-D claim, as an executable property: BU and SC
/// output identical companions (clusterings are identical and the atom
/// algebra exactly encodes the object-set algebra).
void ExpectBuEqualsSc(const SnapshotStream& stream,
                      const DiscoveryParams& params) {
  SmartClosedDiscoverer sc(params);
  BuddyDiscoverer bu(params);
  for (const Snapshot& s : stream) {
    sc.ProcessSnapshot(s, nullptr);
    bu.ProcessSnapshot(s, nullptr);
  }
  EXPECT_EQ(ReportedSets(sc), ReportedSets(bu));
}

TEST(BuEquivalenceTest, GroupModelSmall) {
  GroupModelOptions options;
  options.num_objects = 120;
  options.num_snapshots = 40;
  options.area_size = 2000.0;
  options.min_group_size = 8;
  options.max_group_size = 15;
  options.seed = 5;
  GroupDataset data = GenerateGroupStream(options);

  DiscoveryParams params;
  params.cluster.epsilon = 12.0;
  params.cluster.mu = 4;
  params.size_threshold = 6;
  params.duration_threshold = 8;
  ExpectBuEqualsSc(data.stream, params);
}

class BuEquivalenceSweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, double, int>> {};

TEST_P(BuEquivalenceSweep, GroupModelWithChurn) {
  auto [seed, leave_prob, size_threshold] = GetParam();
  GroupModelOptions options;
  options.num_objects = 100;
  options.num_snapshots = 30;
  options.area_size = 1500.0;
  options.min_group_size = 6;
  options.max_group_size = 12;
  options.leave_probability = leave_prob;
  options.split_probability = 0.02;  // aggressive churn
  options.seed = seed;
  GroupDataset data = GenerateGroupStream(options);

  DiscoveryParams params;
  params.cluster.epsilon = 12.0;
  params.cluster.mu = 3;
  params.size_threshold = size_threshold;
  params.duration_threshold = 6;
  ExpectBuEqualsSc(data.stream, params);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BuEquivalenceSweep,
    ::testing::Values(std::make_tuple(uint64_t{101}, 0.001, 5),
                      std::make_tuple(uint64_t{102}, 0.01, 4),
                      std::make_tuple(uint64_t{103}, 0.02, 6),
                      std::make_tuple(uint64_t{104}, 0.005, 3),
                      std::make_tuple(uint64_t{105}, 0.03, 5)));

TEST(BuEquivalenceTest, MilitaryScenario) {
  MilitaryOptions options;
  options.num_units = 120;
  options.num_teams = 5;
  options.num_snapshots = 40;
  MilitaryDataset data = GenerateMilitary(options);

  DiscoveryParams params;
  params.cluster.epsilon = 16.0;
  params.cluster.mu = 5;
  params.size_threshold = 10;
  params.duration_threshold = 10;
  ExpectBuEqualsSc(data.stream, params);
}

TEST(BuEquivalenceTest, BuCheaperOnStructuredData) {
  // This test asserts the paper's Lemma 2–4 cost relation against SC's
  // *full* per-snapshot re-clustering; pin the incremental layer off so
  // the comparison stays the one the paper makes.
  testing_util::IncrementalClusteringGuard incremental_off(false);
  GroupModelOptions options;
  options.num_objects = 300;
  options.num_snapshots = 30;
  options.area_size = 5000.0;
  options.seed = 77;
  GroupDataset data = GenerateGroupStream(options);

  // ε is several× the in-group nearest-neighbor spacing, as in the
  // paper's setups — that is what gives buddies multiple members and the
  // lemmas leverage.
  DiscoveryParams params;
  params.cluster.epsilon = 20.0;
  params.cluster.mu = 4;
  params.size_threshold = 10;
  params.duration_threshold = 10;

  SmartClosedDiscoverer sc(params);
  BuddyDiscoverer bu(params);
  for (const Snapshot& s : data.stream) {
    sc.ProcessSnapshot(s, nullptr);
    bu.ProcessSnapshot(s, nullptr);
  }
  EXPECT_EQ(ReportedSets(sc), ReportedSets(bu));
  // BU does far less distance work (Lemmas 2–4). Space is comparable to
  // SC at this scale (the paper's large space wins are vs CI and SW).
  EXPECT_LT(bu.stats().distance_ops, sc.stats().distance_ops / 2);
  EXPECT_LT(bu.stats().candidate_objects_peak,
            sc.stats().candidate_objects_peak * 12 / 10);
}

TEST(BuddyDiscovererTest, ResetRestoresFreshState) {
  GroupModelOptions options;
  options.num_objects = 60;
  options.num_snapshots = 15;
  options.area_size = 1000.0;
  options.seed = 3;
  GroupDataset data = GenerateGroupStream(options);

  DiscoveryParams params;
  params.cluster.epsilon = 12.0;
  params.cluster.mu = 3;
  params.size_threshold = 5;
  params.duration_threshold = 5;

  BuddyDiscoverer bu(params);
  for (const Snapshot& s : data.stream) bu.ProcessSnapshot(s, nullptr);
  auto first = ReportedSets(bu);
  int64_t first_intersections = bu.stats().intersections;
  bu.Reset();
  EXPECT_EQ(bu.log().size(), 0u);
  for (const Snapshot& s : data.stream) bu.ProcessSnapshot(s, nullptr);
  EXPECT_EQ(ReportedSets(bu), first);
  EXPECT_EQ(bu.stats().intersections, first_intersections);
}

TEST(BuddyDiscovererTest, DefaultsBuddyRadiusToHalfEpsilon) {
  DiscoveryParams params;
  params.cluster.epsilon = 10.0;
  BuddyDiscoverer bu(params);
  EXPECT_DOUBLE_EQ(bu.buddy_radius(), 5.0);
  params.buddy_radius = 2.0;
  BuddyDiscoverer bu2(params);
  EXPECT_DOUBLE_EQ(bu2.buddy_radius(), 2.0);
}

TEST(DiscovererFactoryTest, MakesAllThree) {
  DiscoveryParams params;
  params.cluster.epsilon = 1.0;
  params.cluster.mu = 3;
  for (Algorithm a : {Algorithm::kClusteringIntersection,
                      Algorithm::kSmartClosed, Algorithm::kBuddy}) {
    auto d = MakeDiscoverer(a, params);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->algorithm(), a);
  }
  EXPECT_EQ(std::string(AlgorithmName(Algorithm::kBuddy)), "BU");
  EXPECT_EQ(std::string(AlgorithmName(Algorithm::kSmartClosed)), "SC");
  EXPECT_EQ(
      std::string(AlgorithmName(Algorithm::kClusteringIntersection)),
      "CI");
}

}  // namespace
}  // namespace tcomp
