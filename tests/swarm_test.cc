#include "baselines/swarm.h"

#include <gtest/gtest.h>

#include <set>

#include "core/discoverer.h"
#include "data/group_model.h"
#include "tests/test_util.h"

namespace tcomp {
namespace {

using testing_util::MakeSnapshot;

/// Two groups clustered in every snapshot; group B skips snapshot 2 —
/// swarms tolerate the gap (non-consecutive support), companions do not.
SnapshotStream GappedStream() {
  SnapshotStream stream;
  auto both = MakeSnapshot({{0, 0.0, 0.0},
                            {1, 0.4, 0.0},
                            {2, 0.8, 0.0},
                            {5, 10.0, 0.0},
                            {6, 10.4, 0.0},
                            {7, 10.8, 0.0}});
  auto b_scattered = MakeSnapshot({{0, 0.0, 0.0},
                                   {1, 0.4, 0.0},
                                   {2, 0.8, 0.0},
                                   {5, 10.0, 0.0},
                                   {6, 40.0, 0.0},
                                   {7, 70.0, 0.0}});
  stream.push_back(both);
  stream.push_back(both);
  stream.push_back(b_scattered);
  stream.push_back(both);
  stream.push_back(both);
  return stream;
}

SwarmParams GappedParams() {
  SwarmParams p;
  p.cluster.epsilon = 0.5;
  p.cluster.mu = 2;
  p.min_objects = 3;
  p.min_snapshots = 4;
  return p;
}

TEST(SwarmTest, FindsNonConsecutiveSupport) {
  std::vector<Swarm> swarms =
      MineClosedSwarms(GappedStream(), GappedParams());
  ASSERT_EQ(swarms.size(), 2u);
  EXPECT_EQ(swarms[0].objects, (ObjectSet{0, 1, 2}));
  EXPECT_EQ(swarms[0].snapshots,
            (std::vector<int32_t>{0, 1, 2, 3, 4}));
  EXPECT_EQ(swarms[1].objects, (ObjectSet{5, 6, 7}));
  // Group B's support skips snapshot 2 — exactly the swarm relaxation.
  EXPECT_EQ(swarms[1].snapshots, (std::vector<int32_t>{0, 1, 3, 4}));
}

TEST(SwarmTest, MintFiltersShortSupport) {
  SwarmParams p = GappedParams();
  p.min_snapshots = 5;
  std::vector<Swarm> swarms = MineClosedSwarms(GappedStream(), p);
  ASSERT_EQ(swarms.size(), 1u);  // only {0,1,2} spans all five
  EXPECT_EQ(swarms[0].objects, (ObjectSet{0, 1, 2}));
}

TEST(SwarmTest, MinoFiltersSmallSets) {
  SwarmParams p = GappedParams();
  p.min_objects = 4;
  EXPECT_TRUE(MineClosedSwarms(GappedStream(), p).empty());
}

TEST(SwarmTest, ClosednessSuppressesSubsets) {
  // {0,1,2} co-clustered everywhere: no subset like {0,1} may appear.
  SwarmParams p = GappedParams();
  p.min_objects = 2;
  std::vector<Swarm> swarms = MineClosedSwarms(GappedStream(), p);
  std::set<ObjectSet> sets;
  for (const Swarm& s : swarms) sets.insert(s.objects);
  EXPECT_TRUE(sets.count({0, 1, 2}));
  EXPECT_FALSE(sets.count({0, 1}));
  EXPECT_FALSE(sets.count({1, 2}));
  EXPECT_FALSE(sets.count({0, 2}));
}

TEST(SwarmTest, SplitSupportProducesDistinctSwarms) {
  // Objects {0,1,2,3} together in snapshots 0-3; {0,1} split off with
  // {4} in snapshots 4-7. Expect swarms {0,1,2,3} (support 0-3) and
  // {0,1,4}? No — 4 only joins later; {0,1} alone has support 0-7.
  SnapshotStream stream;
  for (int t = 0; t < 4; ++t) {
    stream.push_back(MakeSnapshot({{0, 0.0, 0.0},
                                   {1, 0.4, 0.0},
                                   {2, 0.8, 0.0},
                                   {3, 1.2, 0.0},
                                   {4, 30.0, 0.0},
                                   {5, 30.4, 0.0},
                                   {6, 30.8, 0.0}}));
  }
  for (int t = 0; t < 4; ++t) {
    stream.push_back(MakeSnapshot({{0, 0.0, 0.0},
                                   {1, 0.4, 0.0},
                                   {4, 0.8, 0.0},
                                   {2, 30.0, 0.0},
                                   {3, 30.4, 0.0},
                                   {5, 60.0, 0.0},
                                   {6, 60.4, 0.0}}));
  }
  SwarmParams p;
  p.cluster.epsilon = 0.5;
  p.cluster.mu = 2;
  p.min_objects = 2;
  p.min_snapshots = 4;
  std::vector<Swarm> swarms = MineClosedSwarms(stream, p);
  std::set<ObjectSet> sets;
  for (const Swarm& s : swarms) sets.insert(s.objects);
  EXPECT_TRUE(sets.count({0, 1, 2, 3}));   // support {0..3}
  EXPECT_TRUE(sets.count({0, 1}));          // support {0..7}, closed
  EXPECT_TRUE(sets.count({2, 3}));          // support {0..7}
  EXPECT_TRUE(sets.count({0, 1, 4}));       // support {4..7}
  EXPECT_TRUE(sets.count({5, 6}));
}

TEST(SwarmTest, SwarmsAreSupersetOfCompanions) {
  // On a churning group stream, every companion the streaming algorithm
  // reports must be covered by some closed swarm (swarm ⊇ companion with
  // the same thresholds) — the paper's "superset" observation.
  GroupModelOptions options;
  options.num_objects = 80;
  options.num_snapshots = 25;
  options.area_size = 1200.0;
  options.min_group_size = 6;
  options.max_group_size = 12;
  options.split_probability = 0.01;
  options.seed = 31;
  GroupDataset data = GenerateGroupStream(options);

  DiscoveryParams dp;
  dp.cluster.epsilon = 20.0;
  dp.cluster.mu = 3;
  dp.size_threshold = 5;
  dp.duration_threshold = 6;

  auto discoverer = MakeDiscoverer(Algorithm::kSmartClosed, dp);
  for (const Snapshot& s : data.stream) {
    discoverer->ProcessSnapshot(s, nullptr);
  }

  SwarmParams sp;
  sp.cluster = dp.cluster;
  sp.min_objects = dp.size_threshold;
  sp.min_snapshots = static_cast<int>(dp.duration_threshold);
  std::vector<Swarm> swarms = MineClosedSwarms(data.stream, sp);

  for (const Companion& c : discoverer->log().companions()) {
    bool covered = false;
    for (const Swarm& s : swarms) {
      if (std::includes(s.objects.begin(), s.objects.end(),
                        c.objects.begin(), c.objects.end())) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "companion of size " << c.objects.size()
                         << " not covered by any closed swarm";
  }
}

TEST(SwarmTest, StatsArePopulated) {
  SwarmStats stats;
  MineClosedSwarms(GappedStream(), GappedParams(), &stats);
  EXPECT_GT(stats.distance_ops, 0);
  EXPECT_GT(stats.nodes_explored, 0);
  EXPECT_GT(stats.peak_candidate_objects, 0);
}

TEST(SwarmTest, EmptyStream) {
  EXPECT_TRUE(MineClosedSwarms({}, GappedParams()).empty());
}

}  // namespace
}  // namespace tcomp
