#include "data/degrade.h"

#include <gtest/gtest.h>

#include "data/synthetic_gen.h"
#include "tests/test_util.h"
#include "util/sorted_ops.h"

namespace tcomp {
namespace {

SnapshotStream ConstantStream(int objects, int snapshots) {
  SnapshotStream stream;
  for (int t = 0; t < snapshots; ++t) {
    std::vector<ObjectPosition> pos;
    for (int o = 0; o < objects; ++o) {
      pos.push_back(ObjectPosition{static_cast<ObjectId>(o),
                                   Point{o * 10.0, t * 1.0}});
    }
    stream.push_back(Snapshot(std::move(pos), 1.0));
  }
  return stream;
}

TEST(DropReportsTest, ZeroFractionIsIdentity) {
  SnapshotStream stream = ConstantStream(20, 10);
  SnapshotStream out = DropReports(stream, 0.0, 1);
  EXPECT_EQ(TotalRecords(out), TotalRecords(stream));
}

TEST(DropReportsTest, FractionApproximatelyRespected) {
  SnapshotStream stream = ConstantStream(100, 400);
  SnapshotStream out = DropReports(stream, 0.10, 7);
  double kept = static_cast<double>(TotalRecords(out)) /
                static_cast<double>(TotalRecords(stream));
  EXPECT_NEAR(kept, 0.90, 0.03);
}

TEST(DropReportsTest, OutagesAreBursty) {
  // Count outage run lengths for one object; bursts must span 2-6.
  SnapshotStream stream = ConstantStream(50, 600);
  SnapshotStream out = DropReports(stream, 0.15, 3);
  int max_run = 0;
  int multi_runs = 0;
  for (ObjectId o = 0; o < 50; ++o) {
    int run = 0;
    for (const Snapshot& s : out) {
      if (!s.Contains(o)) {
        ++run;
      } else {
        if (run > 1) ++multi_runs;
        max_run = std::max(max_run, run);
        run = 0;
      }
    }
  }
  EXPECT_GE(max_run, 2);
  EXPECT_LE(max_run, 18);  // adjacent outages can concatenate
  EXPECT_GT(multi_runs, 10);
}

TEST(DropReportsTest, Deterministic) {
  SnapshotStream stream = ConstantStream(30, 50);
  SnapshotStream a = DropReports(stream, 0.2, 9);
  SnapshotStream b = DropReports(stream, 0.2, 9);
  ASSERT_EQ(a.size(), b.size());
  for (size_t t = 0; t < a.size(); ++t) {
    EXPECT_EQ(a[t].ids(), b[t].ids());
  }
  SnapshotStream c = DropReports(stream, 0.2, 10);
  bool differs = false;
  for (size_t t = 0; t < a.size(); ++t) {
    if (a[t].ids() != c[t].ids()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(DropReportsTest, PreservesDurations) {
  SnapshotStream stream;
  stream.push_back(Snapshot({{0, Point{0, 0}}}, 7.0));
  SnapshotStream out = DropReports(stream, 0.1, 1);
  EXPECT_DOUBLE_EQ(out[0].duration(), 7.0);
}

TEST(JitterReportsTest, ZeroDelayIsIdentity) {
  SnapshotStream stream = ConstantStream(10, 5);
  SnapshotStream out = JitterReports(stream, 0.0, 1);
  ASSERT_EQ(out.size(), stream.size());
  for (size_t t = 0; t < out.size(); ++t) {
    EXPECT_EQ(out[t].ids(), stream[t].ids());
  }
}

TEST(JitterReportsTest, DelaysMoveReportsLater) {
  SnapshotStream stream = ConstantStream(40, 30);
  SnapshotStream out = JitterReports(stream, 3.0, 5);
  ASSERT_EQ(out.size(), stream.size());
  // Record conservation is not exact (collisions keep the freshest), but
  // nothing is invented and every snapshot stays deduplicated.
  EXPECT_LE(TotalRecords(out), TotalRecords(stream));
  for (const Snapshot& s : out) {
    EXPECT_TRUE(IsSortedUnique(s.ids()));
  }
}

TEST(JitterReportsTest, EmptyStream) {
  EXPECT_TRUE(JitterReports({}, 2.0, 1).empty());
  EXPECT_TRUE(DropReports({}, 0.5, 1).empty());
}

}  // namespace
}  // namespace tcomp
