#include "stream/sliding_window.h"

#include <gtest/gtest.h>

#include <limits>

namespace tcomp {
namespace {

TrajectoryRecord R(ObjectId o, double ts, double x, double y) {
  return TrajectoryRecord{o, ts, Point{x, y}};
}

TEST(SlidingWindowTest, EqualLengthBatchesByTime) {
  SlidingWindowOptions options;
  options.mode = WindowMode::kEqualLength;
  options.window_length = 60.0;
  SlidingWindowSnapshotter win(options);
  std::vector<Snapshot> out;

  ASSERT_TRUE(win.Push(R(1, 0.0, 1.0, 1.0), &out).ok());
  ASSERT_TRUE(win.Push(R(2, 30.0, 2.0, 2.0), &out).ok());
  EXPECT_TRUE(out.empty());
  // Crossing the 60 s boundary closes the first window.
  ASSERT_TRUE(win.Push(R(1, 61.0, 5.0, 5.0), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].size(), 2u);
  EXPECT_TRUE(out[0].Contains(1));
  EXPECT_TRUE(out[0].Contains(2));
  out.clear();
  win.Flush(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].size(), 1u);
}

TEST(SlidingWindowTest, MultiReportAveraged) {
  // Paper Fig. 22: multiple reports in one span → mean position.
  SlidingWindowOptions options;
  options.window_length = 60.0;
  SlidingWindowSnapshotter win(options);
  std::vector<Snapshot> out;
  ASSERT_TRUE(win.Push(R(7, 1.0, 0.0, 0.0), &out).ok());
  ASSERT_TRUE(win.Push(R(7, 20.0, 10.0, 4.0), &out).ok());
  ASSERT_TRUE(win.Push(R(7, 40.0, 2.0, 2.0), &out).ok());
  win.Flush(&out);
  ASSERT_EQ(out.size(), 1u);
  size_t idx = out[0].IndexOf(7);
  ASSERT_NE(idx, Snapshot::kNpos);
  EXPECT_DOUBLE_EQ(out[0].pos(idx).x, 4.0);
  EXPECT_DOUBLE_EQ(out[0].pos(idx).y, 2.0);
}

TEST(SlidingWindowTest, GapSkipsEmptyWindows) {
  SlidingWindowOptions options;
  options.window_length = 10.0;
  SlidingWindowSnapshotter win(options);
  std::vector<Snapshot> out;
  ASSERT_TRUE(win.Push(R(1, 0.0, 0.0, 0.0), &out).ok());
  // Jump over 5 empty windows: only the one real window is emitted.
  ASSERT_TRUE(win.Push(R(1, 65.0, 1.0, 1.0), &out).ok());
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(win.emitted(), 1);
}

TEST(SlidingWindowTest, LateRecordFoldsIntoCurrentWindow) {
  SlidingWindowOptions options;
  options.window_length = 10.0;
  SlidingWindowSnapshotter win(options);
  std::vector<Snapshot> out;
  ASSERT_TRUE(win.Push(R(1, 12.0, 0.0, 0.0), &out).ok());
  // Timestamp 3.0 is older than the current window; it is folded in
  // rather than dropped.
  ASSERT_TRUE(win.Push(R(2, 3.0, 5.0, 5.0), &out).ok());
  win.Flush(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].size(), 2u);
}

TEST(SlidingWindowTest, OutOfOrderWithinWindowIsFine) {
  SlidingWindowOptions options;
  options.window_length = 60.0;
  SlidingWindowSnapshotter win(options);
  std::vector<Snapshot> out;
  ASSERT_TRUE(win.Push(R(1, 50.0, 1.0, 0.0), &out).ok());
  ASSERT_TRUE(win.Push(R(2, 10.0, 2.0, 0.0), &out).ok());
  ASSERT_TRUE(win.Push(R(3, 30.0, 3.0, 0.0), &out).ok());
  win.Flush(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].size(), 3u);
}

TEST(SlidingWindowTest, EqualWidthEmitsOnObjectCount) {
  SlidingWindowOptions options;
  options.mode = WindowMode::kEqualWidth;
  options.min_objects = 3;
  SlidingWindowSnapshotter win(options);
  std::vector<Snapshot> out;
  ASSERT_TRUE(win.Push(R(1, 0.0, 0.0, 0.0), &out).ok());
  ASSERT_TRUE(win.Push(R(1, 1.0, 0.0, 0.0), &out).ok());  // same object
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(win.Push(R(2, 2.0, 0.0, 0.0), &out).ok());
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(win.Push(R(3, 3.0, 0.0, 0.0), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].size(), 3u);
}

TEST(SlidingWindowTest, RejectsNonFiniteTimestamp) {
  SlidingWindowSnapshotter win(SlidingWindowOptions{});
  std::vector<Snapshot> out;
  TrajectoryRecord r = R(1, 0.0, 0.0, 0.0);
  r.timestamp = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(win.Push(r, &out).ok());
}

TEST(SlidingWindowTest, RejectsNonFinitePosition) {
  // A NaN coordinate that reached the grid clusterer would be UB
  // (floor(NaN) cast to int64_t); the ingest boundary must reject it.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  SlidingWindowSnapshotter win(SlidingWindowOptions{});
  std::vector<Snapshot> out;
  for (Point p : {Point{nan, 0.0}, Point{0.0, nan}, Point{inf, 0.0},
                  Point{0.0, -inf}}) {
    TrajectoryRecord r = R(1, 0.0, p.x, p.y);
    Status s = win.Push(r, &out);
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument)
        << "(" << p.x << ", " << p.y << ")";
  }
  // The rejected records left no trace: a finite record still works and
  // the snapshot contains only it.
  ASSERT_TRUE(win.Push(R(2, 1.0, 3.0, 4.0), &out).ok());
  win.Flush(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].size(), 1u);
  EXPECT_TRUE(out[0].Contains(2));
}

// ---------------------------------------------------------------------
// Empty-window contract (see the class comment): empty windows never
// become snapshots and never advance emitted(), at end-of-stream exactly
// as mid-stream. These pin the stream-end edge the serve-vs-batch
// differential relies on.

TEST(SlidingWindowTest, TrailingGapEmitsNoEmptyWindows) {
  SlidingWindowOptions options;
  options.window_length = 10.0;
  SlidingWindowSnapshotter win(options);
  std::vector<Snapshot> out;
  ASSERT_TRUE(win.Push(R(1, 0.0, 0.0, 0.0), &out).ok());
  // The straggler is 6 windows ahead: exactly one snapshot (window 0)
  // closes; the 5 empty windows in between leave no trace.
  ASSERT_TRUE(win.Push(R(1, 65.0, 1.0, 1.0), &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(win.emitted(), 1);
  // Flush emits only the straggler's (non-empty) window — the trailing
  // stretch from 65.0 to the window edge does not round up to more.
  win.Flush(&out);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(win.emitted(), 2);
  EXPECT_EQ(out[1].size(), 1u);
}

TEST(SlidingWindowTest, FlushWithNothingBufferedEmitsNothing) {
  SlidingWindowOptions options;
  options.window_length = 10.0;
  SlidingWindowSnapshotter win(options);
  std::vector<Snapshot> out;
  // Flush before any record: no snapshot, no count.
  win.Flush(&out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(win.emitted(), 0);
  ASSERT_TRUE(win.Push(R(1, 0.0, 0.0, 0.0), &out).ok());
  win.Flush(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(win.emitted(), 1);
  // A second Flush right after: the window is already drained, so this
  // must be a no-op, not a duplicate or empty snapshot.
  win.Flush(&out);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(win.emitted(), 1);
}

TEST(SlidingWindowTest, StreamResumesCleanlyAfterFlush) {
  // Flush re-anchors the window: a record pushed afterwards starts a
  // fresh window at its own span, exactly like a first record would.
  SlidingWindowOptions options;
  options.window_length = 10.0;
  SlidingWindowSnapshotter win(options);
  std::vector<Snapshot> out;
  ASSERT_TRUE(win.Push(R(1, 3.0, 0.0, 0.0), &out).ok());
  win.Flush(&out);
  ASSERT_TRUE(win.Push(R(2, 103.0, 0.0, 0.0), &out).ok());
  EXPECT_EQ(out.size(), 1u);  // the gap across the flush emits nothing
  win.Flush(&out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[1].size(), 1u);
  EXPECT_TRUE(out[1].Contains(2));
  EXPECT_EQ(win.emitted(), 2);
}

TEST(SlidingWindowTest, SnapshotDurationPropagates) {
  SlidingWindowOptions options;
  options.window_length = 10.0;
  options.snapshot_duration = 5.0;
  SlidingWindowSnapshotter win(options);
  std::vector<Snapshot> out;
  ASSERT_TRUE(win.Push(R(1, 0.0, 0.0, 0.0), &out).ok());
  win.Flush(&out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out[0].duration(), 5.0);
}

}  // namespace
}  // namespace tcomp
