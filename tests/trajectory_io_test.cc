#include "data/trajectory_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "data/synthetic_gen.h"

namespace tcomp {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(TrajectoryIoTest, CsvRoundTrip) {
  std::vector<TrajectoryRecord> records = {
      {1, 0.0, {1.5, 2.5}},
      {2, 60.0, {-3.25, 4.0}},
      {1, 120.0, {7.0, 8.0}},
  };
  std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(WriteRecordCsv(path, records).ok());

  std::vector<TrajectoryRecord> back;
  ASSERT_TRUE(ReadRecordCsv(path, &back).ok());
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back[0].object, 1u);
  EXPECT_DOUBLE_EQ(back[0].pos.x, 1.5);
  EXPECT_DOUBLE_EQ(back[1].pos.x, -3.25);
  EXPECT_DOUBLE_EQ(back[2].timestamp, 120.0);
}

TEST(TrajectoryIoTest, ReadMissingFileFails) {
  std::vector<TrajectoryRecord> records;
  Status s = ReadRecordCsv("/nonexistent/really/not.csv", &records);
  EXPECT_EQ(s.code(), StatusCode::kIoError);
}

TEST(TrajectoryIoTest, RejectsTrailingGarbageInNumericField) {
  // Regression: ParseDouble used to accept any numeric *prefix*, so
  // "7.5oops" silently loaded as 7.5 — a corrupt dataset read back OK.
  std::string path = TempPath("trailing_garbage.csv");
  {
    std::ofstream out(path);
    out << "1,0.0,7.5oops,2.0\n";
  }
  std::vector<TrajectoryRecord> records;
  Status s = ReadRecordCsv(path, &records);
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
}

TEST(TrajectoryIoTest, RejectsDoubleDecimalField) {
  // "1.2.3" is a strtod prefix parse ("1.2"); it must be Corruption.
  std::string path = TempPath("double_decimal.csv");
  {
    std::ofstream out(path);
    out << "1,0.0,1.2.3,2.0\n";
  }
  std::vector<TrajectoryRecord> records;
  Status s = ReadRecordCsv(path, &records);
  EXPECT_EQ(s.code(), StatusCode::kCorruption) << s.ToString();
}

TEST(TrajectoryIoTest, AcceptsWindowsLineEndings) {
  // The strict full-field parse must still tolerate "\r"-terminated rows.
  std::string path = TempPath("crlf.csv");
  {
    std::ofstream out(path);
    out << "1,0.0,1.5,2.5\r\n2,60.0,3.0,4.0\r\n";
  }
  std::vector<TrajectoryRecord> records;
  ASSERT_TRUE(ReadRecordCsv(path, &records).ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_DOUBLE_EQ(records[0].pos.y, 2.5);
  EXPECT_DOUBLE_EQ(records[1].timestamp, 60.0);
}

TEST(TrajectoryIoTest, MalformedRowReportsCorruption) {
  std::string path = TempPath("bad.csv");
  {
    std::ofstream out(path);
    out << "1,2.0,3.0\n";  // only three fields
  }
  std::vector<TrajectoryRecord> records;
  Status s = ReadRecordCsv(path, &records);
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(TrajectoryIoTest, SkipsCommentsAndHeaders) {
  std::string path = TempPath("hdr.csv");
  {
    std::ofstream out(path);
    out << "# comment line\n";
    out << "object_id,timestamp,x,y\n";
    out << "4,1.0,2.0,3.0\n";
  }
  std::vector<TrajectoryRecord> records;
  ASSERT_TRUE(ReadRecordCsv(path, &records).ok());
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].object, 4u);
}

TEST(TrajectoryIoTest, GeoLifePltParses) {
  std::string path = TempPath("traj.plt");
  {
    std::ofstream out(path);
    // Six header lines, as in real .plt files.
    out << "Geolife trajectory\nWGS 84\nAltitude is in Feet\nReserved 3\n"
        << "0,2,255,My Track,0,0,2,8421376\n0\n";
    out << "39.906631,116.385564,0,492,39745.1,2008-10-24,02:09:59\n";
    out << "39.906554,116.385625,0,492,39745.2,2008-10-24,02:10:00\n";
  }
  std::vector<GpsRecord> records;
  ASSERT_TRUE(ReadGeoLifePlt(path, /*object=*/17, &records).ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].object, 17u);
  EXPECT_NEAR(records[0].pos.lat, 39.906631, 1e-9);
  EXPECT_NEAR(records[0].pos.lon, 116.385564, 1e-9);
  EXPECT_NEAR(records[1].timestamp - records[0].timestamp, 0.1 * 86400.0,
              1e-3);
}

TEST(TrajectoryIoTest, TDriveParses) {
  std::string path = TempPath("taxi.txt");
  {
    std::ofstream out(path);
    out << "1131,2008-02-02 13:30:44,116.35022,39.88902\n";
    out << "1131,2008-02-02 13:35:44,116.34542,39.88790\n";
  }
  std::vector<GpsRecord> records;
  ASSERT_TRUE(ReadTDriveTxt(path, &records).ok());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].object, 1131u);
  EXPECT_NEAR(records[0].pos.lon, 116.35022, 1e-9);
  EXPECT_NEAR(records[0].pos.lat, 39.88902, 1e-9);
  // Five minutes apart.
  EXPECT_DOUBLE_EQ(records[1].timestamp - records[0].timestamp, 300.0);
}

TEST(TrajectoryIoTest, TDriveEpochMath) {
  // 1970-01-01 00:00:00 is epoch zero; a day later is 86400.
  std::string path = TempPath("epoch.txt");
  {
    std::ofstream out(path);
    out << "1,1970-01-01 00:00:00,0.0,0.0\n";
    out << "1,1970-01-02 00:00:01,0.0,0.0\n";
    out << "1,2000-03-01 12:00:00,0.0,0.0\n";
  }
  std::vector<GpsRecord> records;
  ASSERT_TRUE(ReadTDriveTxt(path, &records).ok());
  EXPECT_DOUBLE_EQ(records[0].timestamp, 0.0);
  EXPECT_DOUBLE_EQ(records[1].timestamp, 86401.0);
  // 2000-03-01 (leap year Feb had 29 days): verified against `date -u`.
  EXPECT_DOUBLE_EQ(records[2].timestamp, 951912000.0);
}

TEST(TrajectoryIoTest, TDriveRejectsMalformed) {
  std::string path = TempPath("bad_taxi.txt");
  {
    std::ofstream out(path);
    out << "1131,2008-13-45 99:99:99,116.0,39.0\n";
  }
  std::vector<GpsRecord> records;
  EXPECT_EQ(ReadTDriveTxt(path, &records).code(),
            StatusCode::kCorruption);
}

TEST(TrajectoryIoTest, ProjectGpsRecordsUsesFirstAsReference) {
  std::vector<GpsRecord> gps = {
      {1, 0.0, {39.90, 116.40}},
      {1, 60.0, {39.91, 116.40}},
  };
  std::vector<TrajectoryRecord> projected = ProjectGpsRecords(gps);
  ASSERT_EQ(projected.size(), 2u);
  EXPECT_DOUBLE_EQ(projected[0].pos.x, 0.0);
  EXPECT_DOUBLE_EQ(projected[0].pos.y, 0.0);
  EXPECT_NEAR(projected[1].pos.y, 1112.0, 5.0);  // 0.01° lat ≈ 1.1 km
}

TEST(TrajectoryIoTest, StreamToRecordsFlattens) {
  Dataset d = MakeTaxiD1(/*num_snapshots=*/3);
  std::vector<TrajectoryRecord> records =
      StreamToRecords(d.stream, /*seconds_per_snapshot=*/300.0);
  EXPECT_EQ(records.size(), 1500u);
  EXPECT_DOUBLE_EQ(records[0].timestamp, 0.0);
  EXPECT_DOUBLE_EQ(records.back().timestamp, 600.0);
}

TEST(TrajectoryIoTest, GeneratedDatasetRoundTripsThroughCsv) {
  Dataset d = MakeTaxiD1(/*num_snapshots=*/2);
  std::vector<TrajectoryRecord> records = StreamToRecords(d.stream, 300.0);
  std::string path = TempPath("dataset.csv");
  ASSERT_TRUE(WriteRecordCsv(path, records).ok());
  std::vector<TrajectoryRecord> back;
  ASSERT_TRUE(ReadRecordCsv(path, &back).ok());
  ASSERT_EQ(back.size(), records.size());
  for (size_t i = 0; i < back.size(); ++i) {
    EXPECT_EQ(back[i].object, records[i].object);
    EXPECT_NEAR(back[i].pos.x, records[i].pos.x, 1e-3);
  }
}

}  // namespace
}  // namespace tcomp
