#include "eval/metrics.h"

#include <gtest/gtest.h>

namespace tcomp {
namespace {

TEST(JaccardTest, BasicValues) {
  EXPECT_DOUBLE_EQ(Jaccard({1, 2, 3}, {1, 2, 3}), 1.0);
  EXPECT_DOUBLE_EQ(Jaccard({1, 2}, {3, 4}), 0.0);
  EXPECT_DOUBLE_EQ(Jaccard({1, 2, 3}, {2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(Jaccard({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(Jaccard({1}, {}), 0.0);
}

TEST(ScoreTest, PerfectRetrieval) {
  std::vector<ObjectSet> truth = {{1, 2, 3}, {4, 5, 6}};
  EffectivenessResult r = ScoreCompanions(truth, truth);
  EXPECT_DOUBLE_EQ(r.precision, 1.0);
  EXPECT_DOUBLE_EQ(r.recall, 1.0);
  EXPECT_EQ(r.matched, 2);
}

TEST(ScoreTest, RedundantDuplicatesCostPrecision) {
  // The CI failure mode: many redundant sets per true group. One-to-one
  // matching means only one can count.
  std::vector<ObjectSet> truth = {{1, 2, 3, 4}};
  std::vector<ObjectSet> retrieved = {
      {1, 2, 3, 4}, {1, 2, 3}, {2, 3, 4}, {1, 2, 4}};
  EffectivenessResult r = ScoreCompanions(retrieved, truth);
  EXPECT_EQ(r.matched, 1);
  EXPECT_DOUBLE_EQ(r.precision, 0.25);
  EXPECT_DOUBLE_EQ(r.recall, 1.0);
}

TEST(ScoreTest, MissedGroupCostsRecall) {
  std::vector<ObjectSet> truth = {{1, 2, 3}, {4, 5, 6}, {7, 8, 9}};
  std::vector<ObjectSet> retrieved = {{1, 2, 3}};
  EffectivenessResult r = ScoreCompanions(retrieved, truth);
  EXPECT_DOUBLE_EQ(r.precision, 1.0);
  EXPECT_NEAR(r.recall, 1.0 / 3.0, 1e-12);
}

TEST(ScoreTest, ThresholdGatesWeakMatches) {
  std::vector<ObjectSet> truth = {{1, 2, 3, 4, 5, 6, 7, 8}};
  std::vector<ObjectSet> retrieved = {{1, 2, 3}};  // Jaccard = 3/8
  EffectivenessResult strict = ScoreCompanions(retrieved, truth, 0.5);
  EXPECT_EQ(strict.matched, 0);
  EffectivenessResult loose = ScoreCompanions(retrieved, truth, 0.3);
  EXPECT_EQ(loose.matched, 1);
}

TEST(ScoreTest, BestMatchWins) {
  std::vector<ObjectSet> truth = {{1, 2, 3, 4}};
  std::vector<ObjectSet> retrieved = {{1, 2}, {1, 2, 3, 4}};
  EffectivenessResult r = ScoreCompanions(retrieved, truth);
  EXPECT_EQ(r.matched, 1);
  EXPECT_DOUBLE_EQ(r.precision, 0.5);  // the weaker duplicate is unmatched
}

TEST(ScoreTest, EmptyEdgeCases) {
  EffectivenessResult none = ScoreCompanions({}, {{1, 2}});
  EXPECT_DOUBLE_EQ(none.precision, 0.0);
  EXPECT_DOUBLE_EQ(none.recall, 0.0);
  EffectivenessResult no_truth = ScoreCompanions({{1, 2}}, {});
  EXPECT_DOUBLE_EQ(no_truth.recall, 0.0);
  EXPECT_DOUBLE_EQ(no_truth.precision, 0.0);
}

TEST(ScoreTest, OneToOneAcrossMultipleGroups) {
  // A single retrieved superset spanning two teams can match only one.
  std::vector<ObjectSet> truth = {{1, 2, 3}, {4, 5, 6}};
  std::vector<ObjectSet> retrieved = {{1, 2, 3, 4, 5, 6}};
  EffectivenessResult r = ScoreCompanions(retrieved, truth, 0.4);
  EXPECT_EQ(r.matched, 1);
  EXPECT_DOUBLE_EQ(r.recall, 0.5);
}

}  // namespace
}  // namespace tcomp
