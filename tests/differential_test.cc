#include <gtest/gtest.h>

#include <set>

#include "core/buddy_discovery.h"
#include "core/clustering_intersection.h"
#include "core/smart_closed.h"
#include "data/group_model.h"
#include "tests/test_util.h"

namespace tcomp {
namespace {

std::set<ObjectSet> Reported(const CompanionDiscoverer& d) {
  std::set<ObjectSet> out;
  for (const Companion& c : d.log().companions()) out.insert(c.objects);
  return out;
}

GroupDataset ChurnyStream(uint64_t seed) {
  GroupModelOptions options;
  options.num_objects = 90;
  options.num_snapshots = 32;
  options.area_size = 1600.0;
  options.min_group_size = 6;
  options.max_group_size = 12;
  options.split_probability = 0.015;
  options.leave_probability = 0.008;
  options.seed = seed;
  return GenerateGroupStream(options);
}

DiscoveryParams BaseParams() {
  DiscoveryParams params;
  params.cluster.epsilon = 18.0;
  params.cluster.mu = 3;
  params.size_threshold = 5;
  params.duration_threshold = 7;
  return params;
}

/// δγ is a performance knob, not a semantic one: BU must report the same
/// companions at every buddy radius (Lemmas 2–4 are exact, the atom
/// algebra is an exact encoding).
class BuddyRadiusInvarianceTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BuddyRadiusInvarianceTest, ResultsIndependentOfGamma) {
  GroupDataset data = ChurnyStream(GetParam());
  DiscoveryParams params = BaseParams();

  std::set<ObjectSet> reference;
  bool have_reference = false;
  for (double frac : {0.1, 0.25, 0.5}) {
    params.buddy_radius = params.cluster.epsilon * frac;
    BuddyDiscoverer bu(params);
    for (const Snapshot& s : data.stream) bu.ProcessSnapshot(s, nullptr);
    std::set<ObjectSet> got = Reported(bu);
    if (!have_reference) {
      reference = got;
      have_reference = true;
      EXPECT_FALSE(reference.empty()) << "test wants companions";
    } else {
      EXPECT_EQ(got, reference) << "gamma fraction " << frac;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BuddyRadiusInvarianceTest,
                         ::testing::Values(301, 302, 303, 304));

/// Containment chain: every companion SC reports, CI reports too (SC
/// prunes only dominated work), and SC ≡ BU.
class ContainmentTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ContainmentTest, ScSubsetOfCiAndEqualToBu) {
  GroupDataset data = ChurnyStream(GetParam());
  DiscoveryParams params = BaseParams();

  ClusteringIntersectionDiscoverer ci(params);
  SmartClosedDiscoverer sc(params);
  BuddyDiscoverer bu(params);
  for (const Snapshot& s : data.stream) {
    ci.ProcessSnapshot(s, nullptr);
    sc.ProcessSnapshot(s, nullptr);
    bu.ProcessSnapshot(s, nullptr);
  }
  std::set<ObjectSet> ci_sets = Reported(ci);
  std::set<ObjectSet> sc_sets = Reported(sc);
  std::set<ObjectSet> bu_sets = Reported(bu);

  EXPECT_EQ(sc_sets, bu_sets);
  for (const ObjectSet& s : sc_sets) {
    EXPECT_TRUE(ci_sets.count(s))
        << "SC reported a set CI did not (size " << s.size() << ")";
  }
  // And every CI companion is dominated by (subset of) some SC companion.
  for (const ObjectSet& c : ci_sets) {
    bool covered = false;
    for (const ObjectSet& s : sc_sets) {
      if (std::includes(s.begin(), s.end(), c.begin(), c.end())) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "CI set of size " << c.size()
                         << " not dominated by any SC companion";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContainmentTest,
                         ::testing::Values(311, 312, 313, 314, 315));

/// Snapshot-duration scaling: expressing δt in minutes with 10-minute
/// snapshots must behave identically to unit snapshots with δt in
/// snapshot counts.
TEST(DurationUnitsTest, ScalingSnapshotDurationsIsEquivalent) {
  GroupDataset data = ChurnyStream(99);
  // Rebuild the stream with 10-minute snapshots.
  SnapshotStream scaled;
  for (const Snapshot& s : data.stream) {
    std::vector<ObjectPosition> pos;
    for (size_t i = 0; i < s.size(); ++i) {
      pos.push_back(ObjectPosition{s.id(i), s.pos(i)});
    }
    scaled.push_back(Snapshot(std::move(pos), 10.0));
  }

  DiscoveryParams unit = BaseParams();           // δt = 7 snapshots
  DiscoveryParams minutes = BaseParams();
  minutes.duration_threshold = 70.0;             // δt = 70 minutes

  SmartClosedDiscoverer a(unit);
  SmartClosedDiscoverer b(minutes);
  for (size_t t = 0; t < data.stream.size(); ++t) {
    a.ProcessSnapshot(data.stream[t], nullptr);
    b.ProcessSnapshot(scaled[t], nullptr);
  }
  EXPECT_EQ(Reported(a), Reported(b));
  EXPECT_EQ(a.stats().intersections, b.stats().intersections);
}

}  // namespace
}  // namespace tcomp
