#include "core/buddy_clustering.h"

#include <gtest/gtest.h>

#include "core/dbscan.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace tcomp {
namespace {

using testing_util::ClusteredSnapshot;
using testing_util::MakeSnapshot;
using testing_util::RandomSnapshot;

/// The central correctness property of Algorithm 4: buddy-based clustering
/// produces exactly the reference DBSCAN clustering — Lemmas 2–4 are
/// pruning rules, not approximations.
void ExpectMatchesDbscan(const Snapshot& s, const DbscanParams& params,
                         double buddy_radius) {
  BuddySet buddies(buddy_radius);
  buddies.Initialize(s);
  BuddyClusteringStats stats;
  Clustering got = BuddyBasedClustering(s, buddies, params, &stats);
  Clustering want = Dbscan(s, params);
  EXPECT_EQ(got.core, want.core);
  EXPECT_EQ(got.labels, want.labels);
  EXPECT_EQ(got.clusters, want.clusters);
}

TEST(BuddyClusteringTest, MatchesDbscanOnTinyExample) {
  Snapshot s = MakeSnapshot({{0, 0.0, 0.0},
                             {1, 0.4, 0.0},
                             {2, 0.8, 0.0},
                             {3, 5.0, 5.0},
                             {4, 5.4, 5.0},
                             {5, 5.8, 5.0},
                             {6, 20.0, 20.0}});
  ExpectMatchesDbscan(s, DbscanParams{0.5, 3}, 0.25);
}

TEST(BuddyClusteringTest, MatchesDbscanAfterMaintenance) {
  // Run maintenance over a drifting population, then compare clusterings
  // (the buddy set is in its realistic mid-stream state, with conservative
  // radii from merges).
  Pcg32 rng(5);
  const int n = 60;
  std::vector<Point> pos(n);
  for (int i = 0; i < n; ++i) {
    pos[i] = Point{rng.NextDouble(0, 30), rng.NextDouble(0, 30)};
  }
  auto snap = [&]() {
    std::vector<ObjectPosition> p;
    for (int i = 0; i < n; ++i) {
      p.push_back(ObjectPosition{static_cast<ObjectId>(i), pos[i]});
    }
    return Snapshot(std::move(p), 1.0);
  };
  BuddySet buddies(1.0);
  Snapshot s = snap();
  buddies.Initialize(s);
  DbscanParams params{2.0, 3};
  for (int t = 0; t < 15; ++t) {
    for (int i = 0; i < n; ++i) {
      pos[i].x += rng.NextDouble(-0.8, 0.8);
      pos[i].y += rng.NextDouble(-0.8, 0.8);
    }
    s = snap();
    buddies.Update(s, nullptr);
    Clustering got = BuddyBasedClustering(s, buddies, params);
    Clustering want = Dbscan(s, params);
    EXPECT_EQ(got.labels, want.labels) << "snapshot " << t;
    EXPECT_EQ(got.clusters, want.clusters) << "snapshot " << t;
  }
}

class BuddyClusteringSweep
    : public ::testing::TestWithParam<
          std::tuple<int, double, int, double>> {};

TEST_P(BuddyClusteringSweep, EqualsDbscanOnRandomSnapshots) {
  auto [n, eps, mu, gamma_frac] = GetParam();
  for (uint64_t seed = 50; seed < 56; ++seed) {
    Pcg32 rng(seed);
    Snapshot s = RandomSnapshot(n, 12.0, rng);
    DbscanParams params{eps, mu};
    ExpectMatchesDbscan(s, params, eps * gamma_frac);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BuddyClusteringSweep,
    ::testing::Values(std::make_tuple(40, 1.0, 3, 0.5),
                      std::make_tuple(80, 0.8, 2, 0.5),
                      std::make_tuple(120, 1.2, 4, 0.25),
                      std::make_tuple(150, 0.6, 5, 0.1),
                      std::make_tuple(60, 2.0, 3, 0.5)));

TEST(BuddyClusteringTest, EqualsDbscanOnClusteredData) {
  for (uint64_t seed = 61; seed < 66; ++seed) {
    Pcg32 rng(seed);
    Snapshot s = ClusteredSnapshot(5, 18, 15, 80.0, 1.2, rng);
    ExpectMatchesDbscan(s, DbscanParams{2.5, 4}, 1.25);
  }
}

TEST(BuddyClusteringTest, Lemma3PrunesFarPairs) {
  // Two dense blobs far apart: most cross-buddy pairs must be pruned
  // without object-level distance work.
  Pcg32 rng(8);
  Snapshot s = ClusteredSnapshot(8, 12, 0, 400.0, 1.0, rng);
  BuddySet buddies(1.0);
  buddies.Initialize(s);
  BuddyClusteringStats stats;
  BuddyBasedClustering(s, buddies, DbscanParams{2.0, 3}, &stats);
  ASSERT_GT(stats.pairs_checked, 0);
  double prune_rate = static_cast<double>(stats.pairs_pruned) /
                      static_cast<double>(stats.pairs_checked);
  // The paper reports >80% pruning; well-separated blobs prune nearly all.
  EXPECT_GT(prune_rate, 0.8);
}

TEST(BuddyClusteringTest, Lemma2MarksTightBuddiesCore) {
  // One tight buddy of 6 objects (radius << ε/2), μ=4: Lemma 2 applies and
  // no object-level core counting is needed for them.
  Snapshot s = MakeSnapshot({{0, 0.00, 0.0},
                             {1, 0.05, 0.0},
                             {2, 0.10, 0.0},
                             {3, 0.00, 0.05},
                             {4, 0.05, 0.05},
                             {5, 0.10, 0.05}});
  BuddySet buddies(0.5);
  buddies.Initialize(s);
  ASSERT_EQ(buddies.buddies().size(), 1u);
  BuddyClusteringStats stats;
  Clustering c = BuddyBasedClustering(s, buddies, DbscanParams{1.0, 4},
                                      &stats);
  EXPECT_EQ(stats.lemma2_buddies, 1);
  ASSERT_EQ(c.clusters.size(), 1u);
  for (size_t i = 0; i < s.size(); ++i) EXPECT_TRUE(c.core[i]);
}

TEST(BuddyClusteringTest, DistanceOpsBelowQuadratic) {
  // The headline efficiency claim: buddy clustering does far fewer
  // object-level distance computations than the O(n²) baseline on
  // clustered data.
  Pcg32 rng(9);
  Snapshot s = ClusteredSnapshot(10, 20, 20, 500.0, 1.0, rng);
  BuddySet buddies(1.25);
  buddies.Initialize(s);
  BuddyClusteringStats stats;
  BuddyBasedClustering(s, buddies, DbscanParams{2.5, 4}, &stats);
  int64_t quadratic =
      static_cast<int64_t>(s.size()) * (static_cast<int64_t>(s.size()) - 1) /
      2;
  EXPECT_LT(stats.distance_ops, quadratic / 4);
}

TEST(BuddyClusteringTest, EmptySnapshot) {
  BuddySet buddies(1.0);
  Snapshot s;
  buddies.Initialize(s);
  Clustering c = BuddyBasedClustering(s, buddies, DbscanParams{1.0, 3});
  EXPECT_TRUE(c.clusters.empty());
}

}  // namespace
}  // namespace tcomp
