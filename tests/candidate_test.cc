#include "core/candidate.h"

#include <gtest/gtest.h>

namespace tcomp {
namespace {

TEST(CompanionLogTest, DedupsByObjectSet) {
  CompanionLog log;
  EXPECT_TRUE(log.Report({1, 2, 3}, 4.0, 10));
  EXPECT_FALSE(log.Report({1, 2, 3}, 5.0, 11));
  ASSERT_EQ(log.size(), 1u);
  EXPECT_DOUBLE_EQ(log.companions()[0].duration, 5.0);
  EXPECT_EQ(log.companions()[0].snapshot_index, 10);
}

TEST(CompanionLogTest, KeepsLongestDuration) {
  CompanionLog log;
  log.Report({1, 2}, 9.0, 3);
  log.Report({1, 2}, 7.0, 4);  // shorter report does not shrink it
  EXPECT_DOUBLE_EQ(log.companions()[0].duration, 9.0);
}

TEST(CompanionLogTest, DistinctSetsKeptSeparately) {
  CompanionLog log;
  EXPECT_TRUE(log.Report({1, 2}, 4.0, 0));
  EXPECT_TRUE(log.Report({1, 2, 3}, 4.0, 0));
  EXPECT_TRUE(log.Report({2, 3}, 4.0, 1));
  EXPECT_EQ(log.size(), 3u);
}

TEST(CompanionLogTest, ClearEmpties) {
  CompanionLog log;
  log.Report({1}, 1.0, 0);
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_TRUE(log.Report({1}, 1.0, 0));
}

TEST(ClosedCandidateTest, SupersetWithLongerDurationSuppresses) {
  std::vector<Candidate> against = {{{1, 2, 3, 4}, 30.0}};
  EXPECT_FALSE(IsClosedAgainst({1, 2, 3}, 10.0, against));
  EXPECT_FALSE(IsClosedAgainst({1, 2, 3, 4}, 10.0, against));
}

TEST(ClosedCandidateTest, EqualDurationSupersetSuppresses) {
  std::vector<Candidate> against = {{{1, 2, 3, 4}, 10.0}};
  EXPECT_FALSE(IsClosedAgainst({1, 2, 3, 4}, 10.0, against));
}

TEST(ClosedCandidateTest, ShorterSupersetDoesNotSuppress) {
  std::vector<Candidate> against = {{{1, 2, 3, 4}, 5.0}};
  EXPECT_TRUE(IsClosedAgainst({1, 2, 3}, 10.0, against));
}

TEST(ClosedCandidateTest, NonSupersetDoesNotSuppress) {
  std::vector<Candidate> against = {{{1, 2, 4}, 30.0}};
  EXPECT_TRUE(IsClosedAgainst({1, 2, 3}, 10.0, against));
}

TEST(ClosedCandidateTest, EmptyAgainstIsClosed) {
  EXPECT_TRUE(IsClosedAgainst({1, 2, 3}, 10.0, {}));
}

TEST(CandidateTest, TotalObjectsSums) {
  std::vector<Candidate> r = {{{1, 2, 3}, 1.0}, {{4, 5}, 2.0}};
  EXPECT_EQ(TotalCandidateObjects(r), 5);
  EXPECT_EQ(TotalCandidateObjects({}), 0);
}

}  // namespace
}  // namespace tcomp
