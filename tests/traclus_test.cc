#include "baselines/traclus.h"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/segment.h"
#include "tests/test_util.h"

namespace tcomp {
namespace {

Segment Seg(double x1, double y1, double x2, double y2, ObjectId o = 0) {
  return Segment{{x1, y1}, {x2, y2}, o};
}

TEST(SegmentDistanceTest, IdenticalSegmentsZero) {
  SegmentDistanceComponents d =
      SegmentDistance(Seg(0, 0, 10, 0), Seg(0, 0, 10, 0));
  EXPECT_DOUBLE_EQ(d.perpendicular, 0.0);
  EXPECT_DOUBLE_EQ(d.parallel, 0.0);
  EXPECT_DOUBLE_EQ(d.angular, 0.0);
}

TEST(SegmentDistanceTest, ParallelOffsetGivesPerpendicular) {
  SegmentDistanceComponents d =
      SegmentDistance(Seg(0, 0, 10, 0), Seg(0, 2, 10, 2));
  EXPECT_DOUBLE_EQ(d.perpendicular, 2.0);  // (4+4)/(2+2)
  EXPECT_DOUBLE_EQ(d.parallel, 0.0);
  EXPECT_DOUBLE_EQ(d.angular, 0.0);
}

TEST(SegmentDistanceTest, CollinearGapGivesParallel) {
  SegmentDistanceComponents d =
      SegmentDistance(Seg(0, 0, 10, 0), Seg(13, 0, 15, 0));
  EXPECT_DOUBLE_EQ(d.perpendicular, 0.0);
  EXPECT_DOUBLE_EQ(d.parallel, 3.0);  // nearer endpoint overhang
  EXPECT_DOUBLE_EQ(d.angular, 0.0);
}

TEST(SegmentDistanceTest, PerpendicularOrientationGivesAngular) {
  // The shorter segment at 90°: dθ = its full length.
  SegmentDistanceComponents d =
      SegmentDistance(Seg(0, 0, 10, 0), Seg(5, 0, 5, 4));
  EXPECT_DOUBLE_EQ(d.angular, 4.0);
}

TEST(SegmentDistanceTest, FortyFiveDegreesGivesSinTheta) {
  SegmentDistanceComponents d =
      SegmentDistance(Seg(0, 0, 10, 0), Seg(0, 0, 3, 3));
  double len = std::sqrt(18.0);
  EXPECT_NEAR(d.angular, len * std::sin(M_PI / 4.0), 1e-9);
}

TEST(SegmentDistanceTest, SymmetricInArguments) {
  Segment a = Seg(0, 0, 10, 0);
  Segment b = Seg(2, 3, 5, 4);
  SegmentDistanceComponents ab = SegmentDistance(a, b);
  SegmentDistanceComponents ba = SegmentDistance(b, a);
  EXPECT_DOUBLE_EQ(ab.perpendicular, ba.perpendicular);
  EXPECT_DOUBLE_EQ(ab.parallel, ba.parallel);
  EXPECT_DOUBLE_EQ(ab.angular, ba.angular);
}

TEST(PartitionTest, StraightLineCollapsesToOneSegment) {
  std::vector<Point> points;
  for (int i = 0; i <= 20; ++i) points.push_back({i * 1.0, 0.0});
  std::vector<size_t> cps = PartitionTrajectory(points);
  ASSERT_EQ(cps.size(), 2u);
  EXPECT_EQ(cps.front(), 0u);
  EXPECT_EQ(cps.back(), 20u);
}

TEST(PartitionTest, SharpCornerBecomesCharacteristicPoint) {
  // L-shaped path: out along x, then up along y.
  std::vector<Point> points;
  for (int i = 0; i <= 10; ++i) points.push_back({i * 10.0, 0.0});
  for (int i = 1; i <= 10; ++i) points.push_back({100.0, i * 10.0});
  std::vector<size_t> cps = PartitionTrajectory(points);
  ASSERT_GE(cps.size(), 3u);
  // Some characteristic point must sit at (or next to) the corner.
  bool corner_found = false;
  for (size_t idx : cps) {
    if (idx >= 9 && idx <= 11) corner_found = true;
  }
  EXPECT_TRUE(corner_found);
}

TEST(PartitionTest, DegenerateInputs) {
  EXPECT_TRUE(PartitionTrajectory({}).empty());
  EXPECT_EQ(PartitionTrajectory({{1.0, 1.0}}).size(), 1u);
  std::vector<size_t> two = PartitionTrajectory({{0.0, 0.0}, {1.0, 0.0}});
  EXPECT_EQ(two, (std::vector<size_t>{0, 1}));
}

TEST(TraClusTest, FindsSharedCorridor) {
  // Eight objects traverse the same west→east corridor (small lateral
  // offsets); four wander far away, each alone.
  SnapshotStream stream;
  for (int t = 0; t <= 20; ++t) {
    std::vector<ObjectPosition> pos;
    for (ObjectId o = 0; o < 8; ++o) {
      pos.push_back(
          ObjectPosition{o, Point{t * 20.0, o * 2.0}});
    }
    for (ObjectId o = 8; o < 12; ++o) {
      // Disperse radially so their headings differ.
      double angle = 0.5 + o;
      pos.push_back(ObjectPosition{
          o, Point{2000.0 + t * 30.0 * std::cos(angle),
                   2000.0 + t * 30.0 * std::sin(angle)}});
    }
    stream.push_back(Snapshot(std::move(pos), 1.0));
  }
  TraClusParams params;
  params.epsilon = 30.0;
  params.min_lines = 5;
  params.max_segment_length = 150.0;
  TraClusStats stats;
  std::vector<SegmentCluster> clusters = RunTraClus(stream, params, &stats);
  ASSERT_GE(clusters.size(), 1u);
  // The corridor cluster contains all eight corridor objects.
  bool corridor_found = false;
  for (const SegmentCluster& c : clusters) {
    if (c.objects == ObjectSet{0, 1, 2, 3, 4, 5, 6, 7}) {
      corridor_found = true;
    }
  }
  EXPECT_TRUE(corridor_found);
  EXPECT_GT(stats.segments_total, 0);
  EXPECT_GT(stats.characteristic_points, 0);
}

TEST(TraClusTest, DirectionBlindnessMixesOpposingCompanions) {
  // The paper's critique: two distinct companions moving through the same
  // corridor in opposite directions at different times. A density cluster
  // per snapshot separates them, but TraClus (time-free, and with the
  // angular distance treating θ≥90° by length only — here segments
  // overlap spatially) merges or at least fails to separate them by time.
  SnapshotStream stream;
  for (int t = 0; t <= 20; ++t) {
    std::vector<ObjectPosition> pos;
    for (ObjectId o = 0; o < 5; ++o) {
      pos.push_back(ObjectPosition{o, Point{t * 20.0, o * 2.0}});
    }
    for (ObjectId o = 5; o < 10; ++o) {
      // Same corridor, same direction, 200 m behind: the two groups are
      // never within clustering range in any snapshot, but their
      // sub-trajectories overlap spatially over [0, 200].
      pos.push_back(ObjectPosition{
          o, Point{t * 20.0 - 200.0, (o - 5) * 2.0}});
    }
    stream.push_back(Snapshot(std::move(pos), 1.0));
  }
  TraClusParams params;
  params.epsilon = 30.0;
  params.min_lines = 5;
  params.max_segment_length = 150.0;
  std::vector<SegmentCluster> clusters = RunTraClus(stream, params);
  // TraClus sees one shared corridor: some cluster mixes objects of both
  // groups even though they never travel together.
  bool mixed = false;
  for (const SegmentCluster& c : clusters) {
    bool has_a = false, has_b = false;
    for (ObjectId o : c.objects) {
      has_a |= (o < 5);
      has_b |= (o >= 5);
    }
    if (has_a && has_b) mixed = true;
  }
  EXPECT_TRUE(mixed);
}

TEST(TraClusTest, EmptyStream) {
  EXPECT_TRUE(RunTraClus({}, TraClusParams{}).empty());
}

}  // namespace
}  // namespace tcomp
