/// Differential proof that the word-parallel bitset kernels are a pure
/// optimization: with SetBitsetKernelsEnabled() toggled on vs. off, CI,
/// SC, BU, and the convoy baseline must produce byte-identical state —
/// same companions in the same order, same candidate sets, same
/// intersection counters. Only wall-clock timings may differ, so those
/// three fields of the serialized "stats" line are zeroed before
/// comparison.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "baselines/convoy.h"
#include "core/discoverer.h"
#include "data/group_model.h"
#include "obs/metrics.h"
#include "obs/stage_timer.h"
#include "util/dense_bitset.h"

namespace tcomp {
namespace {

/// Restores the process-wide kernel toggle no matter how a test exits, so
/// a failing assertion can't leak "kernels off" into later tests.
class KernelToggleGuard {
 public:
  KernelToggleGuard() : saved_(BitsetKernelsEnabled()) {}
  ~KernelToggleGuard() { SetBitsetKernelsEnabled(saved_); }
  KernelToggleGuard(const KernelToggleGuard&) = delete;
  KernelToggleGuard& operator=(const KernelToggleGuard&) = delete;

 private:
  bool saved_;
};

GroupDataset ChurnyStream(uint64_t seed) {
  GroupModelOptions options;
  options.num_objects = 90;
  options.num_snapshots = 32;
  options.area_size = 1600.0;
  options.min_group_size = 6;
  options.max_group_size = 12;
  options.split_probability = 0.015;
  options.leave_probability = 0.008;
  options.seed = seed;
  return GenerateGroupStream(options);
}

DiscoveryParams BaseParams() {
  DiscoveryParams params;
  params.cluster.epsilon = 18.0;
  params.cluster.mu = 3;
  params.size_threshold = 5;
  params.duration_threshold = 7;
  return params;
}

/// Spreads the dense generator ids across a huge sparse universe. With
/// ids this sparse BitsetProfitable() rejects the bitset path, so this
/// stream exercises the merge fallback under the kernels-on toggle.
SnapshotStream SparsifyIds(const SnapshotStream& stream, ObjectId stride) {
  SnapshotStream out;
  out.reserve(stream.size());
  for (const Snapshot& s : stream) {
    std::vector<ObjectPosition> pos;
    pos.reserve(s.size());
    for (size_t i = 0; i < s.size(); ++i) {
      pos.push_back(ObjectPosition{s.id(i) * stride, s.pos(i)});
    }
    out.push_back(Snapshot(std::move(pos), s.duration()));
  }
  return out;
}

/// Serialized discoverer state with the three wall-clock fields (the last
/// tokens of the "stats" line) zeroed; everything else must match bit for
/// bit between kernel modes.
std::string NormalizedState(const CompanionDiscoverer& d) {
  std::ostringstream raw;
  Status st = d.SaveState(raw);
  EXPECT_TRUE(st.ok()) << st.ToString();
  std::istringstream in(raw.str());
  std::ostringstream out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("stats ", 0) == 0) {
      std::istringstream fields(line);
      std::vector<std::string> tokens;
      std::string tok;
      while (fields >> tok) tokens.push_back(tok);
      EXPECT_GE(tokens.size(), 4u);
      for (size_t i = tokens.size() - 3; i < tokens.size(); ++i) {
        tokens[i].assign(1, '0');  // plain `= "0"` trips GCC 12's -Wrestrict
      }
      for (size_t i = 0; i < tokens.size(); ++i) {
        if (i > 0) out << ' ';
        out << tokens[i];
      }
      out << '\n';
    } else {
      out << line << '\n';
    }
  }
  return out.str();
}

struct RunResult {
  std::string state;
  int64_t intersections = 0;
  int64_t companions_reported = 0;
  size_t log_size = 0;
};

RunResult RunDiscoverer(Algorithm algorithm, const SnapshotStream& stream,
              const DiscoveryParams& params, bool kernels) {
  SetBitsetKernelsEnabled(kernels);
  std::unique_ptr<CompanionDiscoverer> d = MakeDiscoverer(algorithm, params);
  // Stage timing rides along on the kernels-on side only: the comparison
  // then also proves the observability sink never perturbs results (the
  // two sides differ in instrumentation, yet must stay byte-identical).
  MetricsRegistry registry;
  MetricsStageSink sink(&registry);
  if (kernels) d->set_stage_sink(&sink);
  for (const Snapshot& s : stream) d->ProcessSnapshot(s, nullptr);
  RunResult r;
  r.state = NormalizedState(*d);
  r.intersections = d->stats().intersections;
  r.companions_reported = d->stats().companions_reported;
  r.log_size = d->log().companions().size();
  return r;
}

class KernelDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KernelDifferentialTest, DiscoverersByteIdenticalAcrossKernelModes) {
  KernelToggleGuard guard;
  GroupDataset data = ChurnyStream(GetParam());
  DiscoveryParams params = BaseParams();

  for (Algorithm algorithm :
       {Algorithm::kClusteringIntersection, Algorithm::kSmartClosed,
        Algorithm::kBuddy}) {
    RunResult on = RunDiscoverer(algorithm, data.stream, params, true);
    RunResult off = RunDiscoverer(algorithm, data.stream, params, false);
    EXPECT_GT(on.log_size, 0u) << "test wants companions";
    EXPECT_EQ(on.state, off.state) << AlgorithmName(algorithm);
    EXPECT_EQ(on.intersections, off.intersections) << AlgorithmName(algorithm);
    EXPECT_EQ(on.companions_reported, off.companions_reported)
        << AlgorithmName(algorithm);
  }
}

TEST_P(KernelDifferentialTest, SparseIdStreamsByteIdentical) {
  KernelToggleGuard guard;
  // Stride pushes the id universe to ~10^7 for 90 objects — far below the
  // 1-member-per-word density bound, so kernels-on must take the merge
  // fallback and still match exactly.
  SnapshotStream sparse =
      SparsifyIds(ChurnyStream(GetParam()).stream, 120'001);
  DiscoveryParams params = BaseParams();

  for (Algorithm algorithm :
       {Algorithm::kClusteringIntersection, Algorithm::kSmartClosed,
        Algorithm::kBuddy}) {
    RunResult on = RunDiscoverer(algorithm, sparse, params, true);
    RunResult off = RunDiscoverer(algorithm, sparse, params, false);
    EXPECT_GT(on.log_size, 0u) << "test wants companions";
    EXPECT_EQ(on.state, off.state) << AlgorithmName(algorithm);
    EXPECT_EQ(on.intersections, off.intersections) << AlgorithmName(algorithm);
  }
}

TEST_P(KernelDifferentialTest, ConvoyBaselineIdenticalAcrossKernelModes) {
  KernelToggleGuard guard;
  GroupDataset data = ChurnyStream(GetParam());
  ConvoyParams params;
  params.cluster.epsilon = 18.0;
  params.cluster.mu = 3;
  params.min_objects = 5;
  params.min_lifetime = 7;

  // Instrumented on one side only — see RunDiscoverer.
  MetricsRegistry registry;
  MetricsStageSink sink(&registry);
  SetBitsetKernelsEnabled(true);
  ConvoyStats stats_on;
  std::vector<Convoy> on =
      DiscoverConvoys(data.stream, params, &stats_on, &sink);
  SetBitsetKernelsEnabled(false);
  ConvoyStats stats_off;
  std::vector<Convoy> off = DiscoverConvoys(data.stream, params, &stats_off);

  EXPECT_FALSE(on.empty()) << "test wants convoys";
  ASSERT_EQ(on.size(), off.size());
  for (size_t i = 0; i < on.size(); ++i) {
    EXPECT_EQ(on[i].objects, off[i].objects) << "convoy " << i;
    EXPECT_EQ(on[i].begin, off[i].begin) << "convoy " << i;
    EXPECT_EQ(on[i].end, off[i].end) << "convoy " << i;
  }
  EXPECT_EQ(stats_on.intersections, stats_off.intersections);
  EXPECT_EQ(stats_on.peak_candidates, stats_off.peak_candidates);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelDifferentialTest,
                         ::testing::Values(401, 402, 403, 404, 405));

/// Checkpoints written under one kernel mode must load and continue
/// identically under the other: the signature/bitset layer is derived
/// state, never serialized.
TEST(KernelCheckpointTest, StateRoundTripsAcrossKernelModes) {
  KernelToggleGuard guard;
  GroupDataset data = ChurnyStream(406);
  DiscoveryParams params = BaseParams();

  for (Algorithm algorithm :
       {Algorithm::kClusteringIntersection, Algorithm::kSmartClosed,
        Algorithm::kBuddy}) {
    // Run the first half with kernels on, checkpoint...
    SetBitsetKernelsEnabled(true);
    std::unique_ptr<CompanionDiscoverer> first =
        MakeDiscoverer(algorithm, params);
    const size_t half = data.stream.size() / 2;
    for (size_t t = 0; t < half; ++t) {
      first->ProcessSnapshot(data.stream[t], nullptr);
    }
    std::stringstream checkpoint;
    ASSERT_TRUE(first->SaveState(checkpoint).ok());

    // ...finish in the same process with kernels on...
    for (size_t t = half; t < data.stream.size(); ++t) {
      first->ProcessSnapshot(data.stream[t], nullptr);
    }

    // ...and finish from the checkpoint with kernels off.
    SetBitsetKernelsEnabled(false);
    std::unique_ptr<CompanionDiscoverer> resumed =
        MakeDiscoverer(algorithm, params);
    ASSERT_TRUE(resumed->LoadState(checkpoint).ok());
    for (size_t t = half; t < data.stream.size(); ++t) {
      resumed->ProcessSnapshot(data.stream[t], nullptr);
    }

    EXPECT_EQ(NormalizedState(*first), NormalizedState(*resumed))
        << AlgorithmName(algorithm);
  }
}

/// Regression for the BuddyIndex signature cache at checkpoint load: the
/// rebuild must honor the *current* kernel mode, not the mode at save
/// time. The timeline that catches a stale load-time-composed signature:
/// save under kernels-on, resume under kernels-off (no signatures may be
/// composed here), then re-enable kernels mid-stream — from that point on
/// the Bloom prefilter is live again and any signature minted during the
/// off window would prune differently than the uninterrupted twin run
/// with the exact same toggle timeline.
TEST(KernelCheckpointTest, ResumedSignaturesHonorCurrentKernelMode) {
  KernelToggleGuard guard;
  GroupDataset data = ChurnyStream(407);
  DiscoveryParams params = BaseParams();
  const size_t half = data.stream.size() / 2;
  const size_t three_quarters = data.stream.size() * 3 / 4;

  // Uninterrupted twin: kernels on → off at half → on again at 3/4.
  SetBitsetKernelsEnabled(true);
  std::unique_ptr<CompanionDiscoverer> first =
      MakeDiscoverer(Algorithm::kBuddy, params);
  for (size_t t = 0; t < half; ++t) {
    first->ProcessSnapshot(data.stream[t], nullptr);
  }
  std::stringstream checkpoint;
  ASSERT_TRUE(first->SaveState(checkpoint).ok());
  SetBitsetKernelsEnabled(false);
  for (size_t t = half; t < three_quarters; ++t) {
    first->ProcessSnapshot(data.stream[t], nullptr);
  }
  SetBitsetKernelsEnabled(true);
  for (size_t t = three_quarters; t < data.stream.size(); ++t) {
    first->ProcessSnapshot(data.stream[t], nullptr);
  }

  // Killed-and-resumed twin: load happens with kernels off, then the same
  // off window and the same re-enable point.
  SetBitsetKernelsEnabled(false);
  std::unique_ptr<CompanionDiscoverer> resumed =
      MakeDiscoverer(Algorithm::kBuddy, params);
  ASSERT_TRUE(resumed->LoadState(checkpoint).ok());
  for (size_t t = half; t < three_quarters; ++t) {
    resumed->ProcessSnapshot(data.stream[t], nullptr);
  }
  SetBitsetKernelsEnabled(true);
  for (size_t t = three_quarters; t < data.stream.size(); ++t) {
    resumed->ProcessSnapshot(data.stream[t], nullptr);
  }

  EXPECT_EQ(NormalizedState(*first), NormalizedState(*resumed));
}

}  // namespace
}  // namespace tcomp
