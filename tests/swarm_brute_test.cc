#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "baselines/swarm.h"
#include "core/dbscan.h"
#include "tests/test_util.h"
#include "util/random.h"

namespace tcomp {
namespace {

/// Brute-force closed-swarm miner for tiny instances: enumerate every
/// object subset, compute its support, and keep the (O, T)-closed ones.
std::vector<Swarm> BruteForceClosedSwarms(const SnapshotStream& stream,
                                          const SwarmParams& params) {
  // Cluster labels per snapshot per object.
  ObjectId max_id = 0;
  for (const Snapshot& s : stream) {
    if (!s.empty()) max_id = std::max(max_id, s.id(s.size() - 1));
  }
  std::vector<std::vector<int32_t>> labels;
  for (const Snapshot& s : stream) {
    Clustering c = Dbscan(s, params.cluster);
    std::vector<int32_t> row(max_id + 1, -1);
    for (size_t i = 0; i < s.size(); ++i) row[s.id(i)] = c.labels[i];
    labels.push_back(std::move(row));
  }
  const int n = static_cast<int>(max_id) + 1;

  auto support_of = [&](const ObjectSet& set) {
    std::vector<int32_t> support;
    for (size_t t = 0; t < labels.size(); ++t) {
      int32_t label = labels[t][set[0]];
      if (label < 0) continue;
      bool together = true;
      for (ObjectId o : set) {
        if (labels[t][o] != label) together = false;
      }
      if (together) support.push_back(static_cast<int32_t>(t));
    }
    return support;
  };

  std::vector<Swarm> result;
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    ObjectSet set;
    for (int o = 0; o < n; ++o) {
      if (mask & (1u << o)) set.push_back(static_cast<ObjectId>(o));
    }
    if (set.size() < static_cast<size_t>(params.min_objects)) continue;
    std::vector<int32_t> support = support_of(set);
    if (support.size() < static_cast<size_t>(params.min_snapshots)) {
      continue;
    }
    // Object-closed: no strict superset has the same support.
    bool closed = true;
    for (int o = 0; o < n && closed; ++o) {
      if (mask & (1u << o)) continue;
      ObjectSet bigger = set;
      bigger.push_back(static_cast<ObjectId>(o));
      std::sort(bigger.begin(), bigger.end());
      if (support_of(bigger) == support) closed = false;
    }
    if (closed) result.push_back(Swarm{std::move(set), std::move(support)});
  }
  return result;
}

std::set<ObjectSet> Sets(const std::vector<Swarm>& swarms) {
  std::set<ObjectSet> out;
  for (const Swarm& s : swarms) out.insert(s.objects);
  return out;
}

class SwarmBruteForceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SwarmBruteForceTest, ObjectGrowthMatchesExhaustiveEnumeration) {
  // 10 objects, 8 snapshots, random clustered placements — small enough
  // to enumerate all 2^10 subsets, structured enough to form swarms.
  Pcg32 rng(GetParam());
  SnapshotStream stream;
  for (int t = 0; t < 8; ++t) {
    std::vector<ObjectPosition> pos;
    // Three anchor points; each object sticks to one anchor with
    // occasional defections, so cluster memberships vary over time.
    Point anchors[3] = {{0.0, 0.0}, {30.0, 0.0}, {0.0, 30.0}};
    for (ObjectId o = 0; o < 10; ++o) {
      int base = o % 3;
      if (rng.NextBernoulli(0.2)) base = rng.NextInt(0, 2);
      Point p = anchors[base];
      p.x += rng.NextDouble(-1.0, 1.0);
      p.y += rng.NextDouble(-1.0, 1.0);
      pos.push_back(ObjectPosition{o, p});
    }
    stream.push_back(Snapshot(std::move(pos), 1.0));
  }

  SwarmParams params;
  params.cluster.epsilon = 3.0;
  params.cluster.mu = 2;
  params.min_objects = 2;
  params.min_snapshots = 3;

  std::vector<Swarm> mined = MineClosedSwarms(stream, params);
  std::vector<Swarm> brute = BruteForceClosedSwarms(stream, params);

  EXPECT_EQ(Sets(mined), Sets(brute));
  // Supports must agree set-by-set.
  for (const Swarm& m : mined) {
    for (const Swarm& b : brute) {
      if (m.objects == b.objects) {
        EXPECT_EQ(m.snapshots, b.snapshots);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SwarmBruteForceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace tcomp
