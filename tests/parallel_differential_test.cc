#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <mutex>
#include <set>
#include <vector>

#include "core/buddy_discovery.h"
#include "core/dbscan.h"
#include "core/smart_closed.h"
#include "data/group_model.h"
#include "tests/test_util.h"
#include "util/thread_pool.h"

namespace tcomp {
namespace {

// ---------------------------------------------------------------------------
// Thread-pool mechanics.

TEST(ThreadPoolTest, EveryShardRunsExactlyOnce) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.num_workers(), 3);
  for (int num_shards = 1; num_shards <= 4; ++num_shards) {
    std::vector<std::atomic<int>> hits(num_shards);
    for (auto& h : hits) h = 0;
    pool.RunShards(num_shards, [&](int shard, int total) {
      EXPECT_EQ(total, num_shards);
      ASSERT_GE(shard, 0);
      ASSERT_LT(shard, num_shards);
      ++hits[shard];
    });
    for (int s = 0; s < num_shards; ++s) EXPECT_EQ(hits[s], 1) << s;
  }
}

TEST(ThreadPoolTest, ReusableAcrossManyRegions) {
  ThreadPool pool(2);
  int64_t sum = 0;
  std::mutex mu;
  for (int round = 0; round < 100; ++round) {
    pool.RunShards(3, [&](int shard, int) {
      std::lock_guard<std::mutex> lock(mu);
      sum += shard;
    });
  }
  EXPECT_EQ(sum, 100 * (0 + 1 + 2));
}

TEST(ThreadPoolTest, EffectiveShardsClampsToWorkSize) {
  EXPECT_EQ(EffectiveShards(4, 100), 4);
  EXPECT_EQ(EffectiveShards(4, 2), 2);
  EXPECT_EQ(EffectiveShards(4, 0), 1);
  EXPECT_EQ(EffectiveShards(1, 100), 1);
  EXPECT_EQ(EffectiveShards(0, 100), 1);
  EXPECT_EQ(EffectiveShards(-3, 100), 1);
}

TEST(ThreadPoolTest, ParallelForShardsInlineWhenSingleThreaded) {
  // threads <= 1 must run on the calling thread (the pool is bypassed).
  std::thread::id caller = std::this_thread::get_id();
  int calls = 0;
  ParallelForShards(1, [&](int shard, int total) {
    EXPECT_EQ(shard, 0);
    EXPECT_EQ(total, 1);
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, ParallelForPartitionsWholeRange) {
  for (int threads : {1, 2, 3, 4, 8}) {
    for (size_t n : {size_t{0}, size_t{1}, size_t{7}, size_t{64}}) {
      std::vector<std::atomic<int>> seen(n);
      for (auto& s : seen) s = 0;
      ParallelFor(threads, n, [&](size_t begin, size_t end, int shard) {
        EXPECT_LE(begin, end);
        EXPECT_GE(shard, 0);
        for (size_t i = begin; i < end; ++i) ++seen[i];
      });
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(seen[i], 1) << "threads=" << threads << " n=" << n
                              << " i=" << i;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Differential: parallel clustering ≡ serial clustering, bit for bit.

void ExpectSameClustering(const Clustering& a, const Clustering& b,
                          const char* what) {
  EXPECT_EQ(a.labels, b.labels) << what;
  EXPECT_EQ(a.core, b.core) << what;
  EXPECT_EQ(a.clusters, b.clusters) << what;
}

class ParallelDbscanTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelDbscanTest, DbscanMatchesSerialAtEveryThreadCount) {
  Pcg32 rng(GetParam());
  for (int round = 0; round < 4; ++round) {
    Snapshot snap = testing_util::ClusteredSnapshot(
        /*clusters=*/6, /*per_cluster=*/20, /*noise=*/40,
        /*extent=*/800.0, /*spread=*/6.0, rng);
    DbscanParams params{/*epsilon=*/15.0, /*mu=*/4};

    int64_t serial_ops = 0;
    Clustering serial = Dbscan(snap, params, &serial_ops);

    for (int threads : {2, 4, 8}) {
      DbscanParams p = params;
      p.threads = threads;
      int64_t ops = 0;
      Clustering got = Dbscan(snap, p, &ops);
      ExpectSameClustering(got, serial, "Dbscan");
      EXPECT_EQ(ops, serial_ops) << "threads=" << threads;
    }
  }
}

TEST_P(ParallelDbscanTest, DbscanGridMatchesSerialAtEveryThreadCount) {
  Pcg32 rng(GetParam() + 17);
  for (int round = 0; round < 4; ++round) {
    Snapshot snap = testing_util::RandomSnapshot(/*n=*/300, /*extent=*/400.0,
                                                 rng);
    DbscanParams params{/*epsilon=*/12.0, /*mu=*/3};

    int64_t serial_ops = 0;
    Clustering serial = DbscanGrid(snap, params, &serial_ops);

    for (int threads : {2, 4, 8}) {
      DbscanParams p = params;
      p.threads = threads;
      int64_t ops = 0;
      Clustering got = DbscanGrid(snap, p, &ops);
      ExpectSameClustering(got, serial, "DbscanGrid");
      EXPECT_EQ(ops, serial_ops) << "threads=" << threads;
    }
  }
}

TEST_P(ParallelDbscanTest, GridStillMatchesReferenceWhenParallel) {
  Pcg32 rng(GetParam() + 41);
  Snapshot snap = testing_util::ClusteredSnapshot(4, 25, 30, 500.0, 5.0, rng);
  DbscanParams params{/*epsilon=*/14.0, /*mu=*/4};
  params.threads = 4;
  Clustering reference = Dbscan(snap, DbscanParams{14.0, 4});
  Clustering grid = DbscanGrid(snap, params);
  ExpectSameClustering(grid, reference, "DbscanGrid vs Dbscan");
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDbscanTest,
                         ::testing::Values(501, 502, 503));

// ---------------------------------------------------------------------------
// Differential: full discovery runs with threads=4 ≡ threads=1 — identical
// companion logs (objects, duration, snapshot index, order) and identical
// cost counters.

GroupDataset ChurnyStream(uint64_t seed) {
  GroupModelOptions options;
  options.num_objects = 90;
  options.num_snapshots = 32;
  options.area_size = 1600.0;
  options.min_group_size = 6;
  options.max_group_size = 12;
  options.split_probability = 0.015;
  options.leave_probability = 0.008;
  options.seed = seed;
  return GenerateGroupStream(options);
}

DiscoveryParams BaseParams(int threads) {
  DiscoveryParams params;
  params.cluster.epsilon = 18.0;
  params.cluster.mu = 3;
  params.cluster.threads = threads;
  params.size_threshold = 5;
  params.duration_threshold = 7;
  return params;
}

void ExpectSameRun(const CompanionDiscoverer& serial,
                   const CompanionDiscoverer& parallel) {
  const std::vector<Companion>& a = serial.log().companions();
  const std::vector<Companion>& b = parallel.log().companions();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_FALSE(a.empty()) << "test wants companions";
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].objects, b[i].objects) << "companion " << i;
    EXPECT_EQ(a[i].duration, b[i].duration) << "companion " << i;
    EXPECT_EQ(a[i].snapshot_index, b[i].snapshot_index) << "companion " << i;
  }

  const DiscoveryStats& s = serial.stats();
  const DiscoveryStats& p = parallel.stats();
  EXPECT_EQ(s.snapshots, p.snapshots);
  EXPECT_EQ(s.intersections, p.intersections);
  EXPECT_EQ(s.distance_ops, p.distance_ops);
  EXPECT_EQ(s.candidate_objects_peak, p.candidate_objects_peak);
  EXPECT_EQ(s.candidate_objects_last, p.candidate_objects_last);
  EXPECT_EQ(s.companions_reported, p.companions_reported);
  EXPECT_EQ(s.buddy_pairs_checked, p.buddy_pairs_checked);
  EXPECT_EQ(s.buddy_pairs_pruned, p.buddy_pairs_pruned);
  EXPECT_EQ(s.buddies_total, p.buddies_total);
  EXPECT_EQ(s.buddies_unchanged, p.buddies_unchanged);
  EXPECT_EQ(s.buddy_member_sum, p.buddy_member_sum);
  // The incremental clustering layer is serial by contract, so its
  // counters may never depend on the thread count either.
  EXPECT_EQ(s.cluster_reuse, p.cluster_reuse);
  EXPECT_EQ(s.cluster_dirty, p.cluster_dirty);
  EXPECT_EQ(s.cluster_full_rebuilds, p.cluster_full_rebuilds);
}

class ParallelDiscoveryTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelDiscoveryTest, BuddyDiscoveryIdenticalAcrossThreadCounts) {
  GroupDataset data = ChurnyStream(GetParam());
  BuddyDiscoverer serial(BaseParams(1));
  BuddyDiscoverer parallel(BaseParams(4));
  // The per-event report sequence (pre-dedup) must match too, not just the
  // deduplicated log.
  std::vector<std::pair<ObjectSet, int64_t>> serial_events, parallel_events;
  serial.set_report_sink([&](const ObjectSet& o, double, int64_t idx) {
    serial_events.emplace_back(o, idx);
  });
  parallel.set_report_sink([&](const ObjectSet& o, double, int64_t idx) {
    parallel_events.emplace_back(o, idx);
  });
  for (const Snapshot& s : data.stream) {
    serial.ProcessSnapshot(s, nullptr);
    parallel.ProcessSnapshot(s, nullptr);
  }
  ExpectSameRun(serial, parallel);
  EXPECT_EQ(serial_events, parallel_events);
}

TEST_P(ParallelDiscoveryTest, SmartClosedIdenticalAcrossThreadCounts) {
  GroupDataset data = ChurnyStream(GetParam() + 7);
  SmartClosedDiscoverer serial(BaseParams(1));
  SmartClosedDiscoverer parallel(BaseParams(4));
  for (const Snapshot& s : data.stream) {
    serial.ProcessSnapshot(s, nullptr);
    parallel.ProcessSnapshot(s, nullptr);
  }
  ExpectSameRun(serial, parallel);
}

TEST_P(ParallelDiscoveryTest, ParallelBuddyStillEqualsSmartClosed) {
  // The cross-algorithm equivalence (SC ≡ BU) must survive threading.
  GroupDataset data = ChurnyStream(GetParam() + 13);
  SmartClosedDiscoverer sc(BaseParams(4));
  BuddyDiscoverer bu(BaseParams(4));
  for (const Snapshot& s : data.stream) {
    sc.ProcessSnapshot(s, nullptr);
    bu.ProcessSnapshot(s, nullptr);
  }
  std::set<ObjectSet> sc_sets, bu_sets;
  for (const Companion& c : sc.log().companions()) sc_sets.insert(c.objects);
  for (const Companion& c : bu.log().companions()) bu_sets.insert(c.objects);
  EXPECT_FALSE(sc_sets.empty());
  EXPECT_EQ(sc_sets, bu_sets);
}

TEST_P(ParallelDiscoveryTest, IncrementalClusteringIdenticalAcrossThreads) {
  // Carried-state clustering across --threads: the layer itself is
  // serial, but it feeds parallel consumers; the whole run (products,
  // distance_ops, reuse/dirty counters) must be thread-count-invariant.
  testing_util::IncrementalClusteringGuard incremental_on(true);
  GroupModelOptions options;
  options.num_objects = 120;
  options.num_snapshots = 40;
  options.area_size = 1800.0;
  options.min_group_size = 6;
  options.max_group_size = 12;
  options.group_speed = 1.0;  // below the Δ = ε/2 slack: reuse path runs
  options.free_speed = 1.5;
  options.member_jitter = 0.8;
  options.seed = GetParam() + 19;
  GroupDataset data = GenerateGroupStream(options);

  SmartClosedDiscoverer serial(BaseParams(1));
  SmartClosedDiscoverer parallel(BaseParams(8));
  for (const Snapshot& s : data.stream) {
    serial.ProcessSnapshot(s, nullptr);
    parallel.ProcessSnapshot(s, nullptr);
  }
  ExpectSameRun(serial, parallel);
  EXPECT_GT(serial.stats().cluster_reuse, 0)
      << "stream should exercise the carried-state path, not fallbacks";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDiscoveryTest,
                         ::testing::Values(601, 602, 603, 604));

}  // namespace
}  // namespace tcomp
