#include "util/sorted_ops.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace tcomp {
namespace {

using IntVec = std::vector<int>;

TEST(SortedOpsTest, IsSortedUnique) {
  EXPECT_TRUE(IsSortedUnique(IntVec{}));
  EXPECT_TRUE(IsSortedUnique(IntVec{1}));
  EXPECT_TRUE(IsSortedUnique(IntVec{1, 2, 5}));
  EXPECT_FALSE(IsSortedUnique(IntVec{1, 1}));
  EXPECT_FALSE(IsSortedUnique(IntVec{2, 1}));
}

TEST(SortedOpsTest, IntersectBasic) {
  EXPECT_EQ(SortedIntersect(IntVec{1, 3, 5}, IntVec{2, 3, 5, 7}),
            (IntVec{3, 5}));
  EXPECT_EQ(SortedIntersect(IntVec{}, IntVec{1, 2}), IntVec{});
  EXPECT_EQ(SortedIntersect(IntVec{1, 2}, IntVec{}), IntVec{});
  EXPECT_EQ(SortedIntersect(IntVec{1, 2}, IntVec{3, 4}), IntVec{});
}

TEST(SortedOpsTest, UnionBasic) {
  EXPECT_EQ(SortedUnion(IntVec{1, 3}, IntVec{2, 3, 4}),
            (IntVec{1, 2, 3, 4}));
  EXPECT_EQ(SortedUnion(IntVec{}, IntVec{}), IntVec{});
}

TEST(SortedOpsTest, DifferenceBasic) {
  EXPECT_EQ(SortedDifference(IntVec{1, 2, 3, 4}, IntVec{2, 4}),
            (IntVec{1, 3}));
  EXPECT_EQ(SortedDifference(IntVec{1, 2}, IntVec{1, 2}), IntVec{});
}

TEST(SortedOpsTest, SubtractInPlace) {
  IntVec a{1, 2, 3, 4, 5};
  SortedSubtractInPlace(&a, IntVec{1, 3, 5});
  EXPECT_EQ(a, (IntVec{2, 4}));
}

TEST(SortedOpsTest, SubtractInPlaceNeverReallocates) {
  IntVec a{1, 2, 3, 4, 5, 6, 7, 8};
  const int* storage = a.data();
  SortedSubtractInPlace(&a, IntVec{2, 4, 6, 100});
  EXPECT_EQ(a, (IntVec{1, 3, 5, 7, 8}));
  EXPECT_EQ(a.data(), storage);
  SortedSubtractInPlace(&a, IntVec{1, 3, 5, 7, 8});
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(a.data(), storage);  // erase keeps capacity
  SortedSubtractInPlace(&a, IntVec{1});  // empty lhs: no-op
  EXPECT_TRUE(a.empty());
}

TEST(SortedOpsTest, IntersectSizeBasic) {
  EXPECT_EQ(SortedIntersectSize(IntVec{1, 3, 5}, IntVec{2, 3, 5, 7}), 2u);
  EXPECT_EQ(SortedIntersectSize(IntVec{}, IntVec{1, 2}), 0u);
  EXPECT_EQ(SortedIntersectSize(IntVec{1, 2}, IntVec{3, 4}), 0u);
  EXPECT_EQ(SortedIntersectSize(IntVec{7}, IntVec{7}), 1u);
}

TEST(SortedOpsTest, ReusableOutputOverloadsClearFirst) {
  IntVec out{99, 98, 97};  // stale contents must be discarded
  SortedIntersect(IntVec{1, 3, 5}, IntVec{3, 5, 7}, &out);
  EXPECT_EQ(out, (IntVec{3, 5}));
  SortedUnion(IntVec{1, 3}, IntVec{2}, &out);
  EXPECT_EQ(out, (IntVec{1, 2, 3}));
  SortedIntersect(IntVec{}, IntVec{1}, &out);
  EXPECT_EQ(out, IntVec{});
}

TEST(SortedOpsTest, SubsetChecks) {
  EXPECT_TRUE(SortedIsSubset(IntVec{}, IntVec{1}));
  EXPECT_TRUE(SortedIsSubset(IntVec{2, 4}, IntVec{1, 2, 3, 4}));
  EXPECT_FALSE(SortedIsSubset(IntVec{2, 5}, IntVec{1, 2, 3, 4}));
  EXPECT_TRUE(SortedIsSubset(IntVec{1, 2}, IntVec{1, 2}));
}

TEST(SortedOpsTest, IntersectsEarlyExit) {
  EXPECT_TRUE(SortedIntersects(IntVec{1, 9}, IntVec{9}));
  EXPECT_FALSE(SortedIntersects(IntVec{1, 3}, IntVec{2, 4}));
  EXPECT_FALSE(SortedIntersects(IntVec{}, IntVec{2}));
}

TEST(SortedOpsTest, ContainsBinarySearch) {
  EXPECT_TRUE(SortedContains(IntVec{1, 5, 9}, 5));
  EXPECT_FALSE(SortedContains(IntVec{1, 5, 9}, 4));
}

TEST(SortedOpsTest, SortUniqueNormalizes) {
  IntVec v{5, 1, 3, 1, 5};
  SortUnique(&v);
  EXPECT_EQ(v, (IntVec{1, 3, 5}));
}

/// Property sweep: set algebra agrees with a naive reference on random
/// inputs.
class SortedOpsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(SortedOpsPropertyTest, MatchesNaiveReference) {
  Pcg32 rng(GetParam());
  for (int round = 0; round < 50; ++round) {
    IntVec a, b;
    for (int i = 0; i < 40; ++i) {
      if (rng.NextBernoulli(0.4)) a.push_back(i);
      if (rng.NextBernoulli(0.4)) b.push_back(i);
    }
    IntVec inter_ref, union_ref, diff_ref;
    for (int i = 0; i < 40; ++i) {
      bool in_a = SortedContains(a, i);
      bool in_b = SortedContains(b, i);
      if (in_a && in_b) inter_ref.push_back(i);
      if (in_a || in_b) union_ref.push_back(i);
      if (in_a && !in_b) diff_ref.push_back(i);
    }
    EXPECT_EQ(SortedIntersect(a, b), inter_ref);
    EXPECT_EQ(SortedUnion(a, b), union_ref);
    EXPECT_EQ(SortedDifference(a, b), diff_ref);
    EXPECT_EQ(SortedIntersects(a, b), !inter_ref.empty());
    EXPECT_EQ(SortedIsSubset(a, b), diff_ref.empty());
    EXPECT_EQ(SortedIntersectSize(a, b), inter_ref.size());

    IntVec scratch;
    SortedIntersect(a, b, &scratch);
    EXPECT_EQ(scratch, inter_ref);
    SortedUnion(a, b, &scratch);
    EXPECT_EQ(scratch, union_ref);

    IntVec mut = a;
    SortedSubtractInPlace(&mut, b);
    EXPECT_EQ(mut, diff_ref);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SortedOpsPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace tcomp
