#include <gtest/gtest.h>

#include <set>

#include "core/dbscan.h"
#include "data/group_model.h"
#include "data/military_gen.h"
#include "data/synthetic_gen.h"
#include "data/taxi_gen.h"

namespace tcomp {
namespace {

TEST(GroupModelTest, ShapeAndDeterminism) {
  GroupModelOptions options;
  options.num_objects = 200;
  options.num_snapshots = 25;
  options.seed = 9;
  GroupDataset a = GenerateGroupStream(options);
  GroupDataset b = GenerateGroupStream(options);
  ASSERT_EQ(a.stream.size(), 25u);
  for (size_t t = 0; t < a.stream.size(); ++t) {
    ASSERT_EQ(a.stream[t].size(), 200u);
    for (size_t i = 0; i < a.stream[t].size(); ++i) {
      EXPECT_EQ(a.stream[t].id(i), b.stream[t].id(i));
      EXPECT_DOUBLE_EQ(a.stream[t].pos(i).x, b.stream[t].pos(i).x);
      EXPECT_DOUBLE_EQ(a.stream[t].pos(i).y, b.stream[t].pos(i).y);
    }
  }
}

TEST(GroupModelTest, DifferentSeedsDiffer) {
  GroupModelOptions options;
  options.num_objects = 50;
  options.num_snapshots = 3;
  options.seed = 1;
  GroupDataset a = GenerateGroupStream(options);
  options.seed = 2;
  GroupDataset b = GenerateGroupStream(options);
  bool any_diff = false;
  for (size_t i = 0; i < a.stream[0].size(); ++i) {
    if (a.stream[0].pos(i).x != b.stream[0].pos(i).x) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(GroupModelTest, GroupsAreSpatiallyCoherent) {
  GroupModelOptions options;
  options.num_objects = 300;
  options.num_snapshots = 10;
  options.seed = 4;
  GroupDataset data = GenerateGroupStream(options);
  // Density clustering at the preset ε must find group-sized clusters.
  Clustering c = DbscanGrid(data.stream[5], DbscanParams{20.0, 4});
  size_t biggest = 0;
  for (const ObjectSet& cluster : c.clusters) {
    biggest = std::max(biggest, cluster.size());
  }
  EXPECT_GE(biggest, static_cast<size_t>(options.min_group_size));
}

TEST(MilitaryGenTest, GroundTruthPartitionsUnits) {
  MilitaryOptions options;
  options.num_snapshots = 20;
  MilitaryDataset data = GenerateMilitary(options);
  ASSERT_EQ(data.ground_truth.size(), 30u);
  std::set<ObjectId> seen;
  size_t total = 0;
  for (const ObjectSet& team : data.ground_truth) {
    EXPECT_GE(team.size(), 25u);
    EXPECT_LE(team.size(), 30u);
    total += team.size();
    for (ObjectId o : team) {
      EXPECT_TRUE(seen.insert(o).second) << "unit in two teams";
    }
  }
  EXPECT_EQ(total, 780u);
  ASSERT_EQ(data.stream.size(), 20u);
  EXPECT_EQ(data.stream[0].size(), 780u);
}

TEST(MilitaryGenTest, TeamsClusterTogetherMidMarch) {
  MilitaryOptions options;
  options.num_snapshots = 180;
  options.detachments_per_team = 0.0;  // clean march for this check
  MilitaryDataset data = GenerateMilitary(options);
  const Snapshot& mid = data.stream[90];
  Clustering c = DbscanGrid(mid, DbscanParams{24.0, 5});
  // Every team must map to exactly one cluster containing (at least) its
  // own members — teams are 900 m apart, far beyond ε.
  int well_separated = 0;
  for (const ObjectSet& team : data.ground_truth) {
    std::set<int32_t> labels;
    for (ObjectId o : team) {
      size_t idx = mid.IndexOf(o);
      ASSERT_NE(idx, Snapshot::kNpos);
      labels.insert(c.labels[idx]);
    }
    if (labels.size() == 1 && *labels.begin() >= 0) ++well_separated;
  }
  EXPECT_GE(well_separated, 28);  // stragglers may cost the odd unit
}

TEST(MilitaryGenTest, DetachmentsDisturbOnlyAFewTeamsAtATime) {
  MilitaryOptions options;
  options.num_snapshots = 180;  // detachments on (default rate)
  MilitaryDataset data = GenerateMilitary(options);
  const Snapshot& mid = data.stream[90];
  Clustering c = DbscanGrid(mid, DbscanParams{24.0, 5});
  int well_separated = 0;
  for (const ObjectSet& team : data.ground_truth) {
    std::set<int32_t> labels;
    for (ObjectId o : team) {
      labels.insert(c.labels[mid.IndexOf(o)]);
    }
    if (labels.size() == 1 && *labels.begin() >= 0) ++well_separated;
  }
  // Most teams are intact at any instant; a handful host events.
  EXPECT_GE(well_separated, 20);
  EXPECT_LE(well_separated, 30);
}

TEST(TaxiGenTest, ShapeAndBounds) {
  TaxiOptions options;
  options.num_taxis = 100;
  options.num_snapshots = 10;
  SnapshotStream stream = GenerateTaxi(options);
  ASSERT_EQ(stream.size(), 10u);
  double extent = options.block_size * options.grid_blocks;
  for (const Snapshot& s : stream) {
    ASSERT_EQ(s.size(), 100u);
    for (size_t i = 0; i < s.size(); ++i) {
      // Positions stay near the city (GPS noise can leak slightly out).
      EXPECT_GT(s.pos(i).x, -200.0);
      EXPECT_LT(s.pos(i).x, extent + 200.0);
    }
  }
}

TEST(TaxiGenTest, Deterministic) {
  TaxiOptions options;
  options.num_taxis = 50;
  options.num_snapshots = 5;
  SnapshotStream a = GenerateTaxi(options);
  SnapshotStream b = GenerateTaxi(options);
  for (size_t t = 0; t < a.size(); ++t) {
    for (size_t i = 0; i < a[t].size(); ++i) {
      EXPECT_DOUBLE_EQ(a[t].pos(i).x, b[t].pos(i).x);
    }
  }
}

TEST(DatasetPresetsTest, PaperScaleShapes) {
  Dataset d1 = MakeTaxiD1(5);
  EXPECT_EQ(d1.stream.size(), 5u);
  EXPECT_EQ(d1.stream[0].size(), 500u);
  EXPECT_TRUE(d1.ground_truth.empty());

  Dataset d2 = MakeMilitaryD2(5);
  EXPECT_EQ(d2.stream[0].size(), 780u);
  EXPECT_EQ(d2.ground_truth.size(), 30u);

  Dataset d3 = MakeSyntheticD3(3);
  EXPECT_EQ(d3.stream[0].size(), 1000u);

  Dataset d4 = MakeSyntheticD4(2);
  EXPECT_EQ(d4.stream[0].size(), 10000u);
}

TEST(DatasetPresetsTest, FullScaleRecordCounts) {
  // Record-count math of Fig. 14 (streams themselves are generated at
  // reduced length here; the count formula is what matters).
  EXPECT_EQ(500 * kD1Snapshots, 25000);
  EXPECT_EQ(780 * kD2Snapshots, 140400);
  EXPECT_EQ(1000 * kD3Snapshots, 1440000);
  EXPECT_EQ(10000 * kD4Snapshots, 14400000);
}

}  // namespace
}  // namespace tcomp
